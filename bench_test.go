// Package lattol's root benchmark harness: one benchmark per paper exhibit
// (Tables 1–4, Figures 4–11, the Section 8 sensitivity study) plus the
// ablation benchmarks called out in DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigureN / BenchmarkTableN regenerates the full exhibit per
// iteration; the validation benchmarks use shortened simulation horizons so
// the suite completes in minutes (use cmd/paperfigs -full for paper-length
// runs).
package lattol

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"lattol/internal/access"
	lattolclient "lattol/internal/client"
	"lattol/internal/cluster"
	"lattol/internal/experiments"
	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/replicate"
	"lattol/internal/serve"
	"lattol/internal/simmms"
	"lattol/internal/surrogate"
	"lattol/internal/tolerance"
	"lattol/internal/topology"
)

func benchErr(b *testing.B, err error) {
	if err != nil {
		b.Fatal(err)
	}
}

// ---- Paper exhibits -------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.DefaultConfigTable().String()
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Figure4()
		benchErr(b, err)
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Figure5()
		benchErr(b, err)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Table2()
		benchErr(b, err)
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Figure6()
		benchErr(b, err)
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Figure7()
		benchErr(b, err)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Table3()
		benchErr(b, err)
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Figure8()
		benchErr(b, err)
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Table4()
		benchErr(b, err)
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Figure9()
		benchErr(b, err)
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Figure10()
		benchErr(b, err)
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Figure11(experiments.ValidationOptions{
			Seed: int64(i), Warmup: 3000, Duration: 25000, Threads: []int{2, 6, 10},
		})
		benchErr(b, err)
	}
}

func BenchmarkValidationDet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ValidationDeterministic(experiments.ValidationOptions{
			Seed: int64(i), Warmup: 3000, Duration: 25000, Threads: []int{4, 8},
		})
		benchErr(b, err)
	}
}

// ---- Extension studies -----------------------------------------------------

func BenchmarkExtensionMemoryPorts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtensionMemoryPorts()
		benchErr(b, err)
	}
}

func BenchmarkExtensionLocalPriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtensionLocalPriority(experiments.ValidationOptions{
			Seed: int64(i), Warmup: 3000, Duration: 25000,
		})
		benchErr(b, err)
	}
}

func BenchmarkExtensionFiniteBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtensionFiniteBuffers(experiments.ValidationOptions{
			Seed: int64(i), Warmup: 3000, Duration: 25000,
		})
		benchErr(b, err)
	}
}

func BenchmarkExtensionPipelinedSwitches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtensionPipelinedSwitches()
		benchErr(b, err)
	}
}

func BenchmarkExtensionHotSpot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtensionHotSpot()
		benchErr(b, err)
	}
}

func BenchmarkExtensionImbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtensionImbalance()
		benchErr(b, err)
	}
}

func BenchmarkExtensionMeshVsTorus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtensionMeshVsTorus()
		benchErr(b, err)
	}
}

func BenchmarkExtensionBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.ExtensionBarrier(experiments.ValidationOptions{
			Seed: int64(i), Warmup: 2000, Duration: 15000,
		})
		benchErr(b, err)
	}
}

func BenchmarkDeviationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.DeviationStudy(experiments.ValidationOptions{
			Seed: int64(i), Warmup: 2000, Duration: 15000,
		})
		benchErr(b, err)
	}
}

// ---- Ablations (DESIGN.md §6) ----------------------------------------------

// BenchmarkAblationSymmetric measures the symmetric fast path against the
// general multiclass AMVA on the same 8×8 system (64 classes, 256 stations).
func BenchmarkAblationSymmetric(b *testing.B) {
	cfg := mms.DefaultConfig()
	cfg.K = 8
	model, err := mms.Build(cfg)
	benchErr(b, err)
	b.Run("symmetric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := model.Solve(mms.SolveOptions{Solver: mms.SymmetricAMVA})
			benchErr(b, err)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := model.Solve(mms.SolveOptions{Solver: mms.FullAMVA})
			benchErr(b, err)
		}
	})
}

// BenchmarkAblationExactMVA compares the exact multiclass recursion with the
// approximate solver on the largest system where exact is feasible.
func BenchmarkAblationExactMVA(b *testing.B) {
	cfg := mms.Config{K: 2, Threads: 2, Runlength: 10, MemoryTime: 10, SwitchTime: 10, PRemote: 0.4, Psw: 0.5}
	model, err := mms.Build(cfg)
	benchErr(b, err)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := model.Solve(mms.SolveOptions{Solver: mms.ExactMVA})
			benchErr(b, err)
		}
	})
	b.Run("approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := model.Solve(mms.SolveOptions{Solver: mms.SymmetricAMVA})
			benchErr(b, err)
		}
	})
}

// BenchmarkAblationPattern compares the paper's per-distance geometric
// normalization with the per-node variant and the uniform pattern.
func BenchmarkAblationPattern(b *testing.B) {
	for _, variant := range []struct {
		name string
		cfg  func() mms.Config
	}{
		{"per-distance", func() mms.Config { return mms.DefaultConfig() }},
		{"per-node", func() mms.Config {
			cfg := mms.DefaultConfig()
			cfg.GeometricMode = access.PerNode
			return cfg
		}},
		{"uniform", func() mms.Config {
			cfg := mms.DefaultConfig()
			cfg.Pattern = access.MustUniform(topology.MustTorus(cfg.K))
			return cfg
		}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := variant.cfg()
			for i := 0; i < b.N; i++ {
				_, err := tolerance.NetworkIndex(cfg)
				benchErr(b, err)
			}
		})
	}
}

// BenchmarkAblationEngines compares the two simulation substrates on an
// identical workload and horizon.
func BenchmarkAblationEngines(b *testing.B) {
	cfg := mms.DefaultConfig()
	for _, eng := range []simmms.EngineKind{simmms.Direct, simmms.STPN} {
		b.Run(eng.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := simmms.Run(cfg, simmms.Options{
					Engine: eng, Seed: int64(i), Warmup: 2000, Duration: 20000,
				})
				benchErr(b, err)
			}
		})
	}
}

// ---- Replication engine (DESIGN.md §17) ------------------------------------

// BenchmarkReplicateSingle measures one replication through a reused
// Replicator — the replication runner's steady-state unit of work: reset and
// replay the prebuilt simulator, no model rebuild, zero allocations. Its ratio
// to BenchmarkAblationEngines (which rebuilds per run, the pre-replication
// path) plus the engine work per event is the single-replication speedup the
// parallel runner multiplies by its worker count.
func BenchmarkReplicateSingle(b *testing.B) {
	cfg := mms.DefaultConfig()
	for _, eng := range []simmms.EngineKind{simmms.Direct, simmms.STPN} {
		b.Run(eng.String(), func(b *testing.B) {
			rep, err := simmms.NewReplicator(cfg, simmms.Options{
				Engine: eng, Warmup: 2000, Duration: 20000,
			})
			benchErr(b, err)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = rep.Replicate(int64(i))
			}
		})
	}
}

// BenchmarkReplicate measures the parallel replication runner end to end: a
// fixed budget of 16 replications per op, at 1 worker and at 8. The
// estimates are bit-identical at both settings (the runner's invariance
// contract), so the ratio of the two timings is pure parallel speedup —
// acceptance asks ≥3× at 8 workers on an 8-way host (a 1-CPU CI box will
// honestly show ~1×).
func BenchmarkReplicate(b *testing.B) {
	cfg := mms.DefaultConfig()
	// Sub-benchmark names must not end in "-<digits>": go test already
	// appends -GOMAXPROCS, and scripts/benchjson strips trailing numeric
	// suffixes when aggregating, which would merge the two settings.
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "sequential", 8: "eightworkers"}[workers], func(b *testing.B) {
			opts := replicate.Options{
				Sim:     simmms.Options{Engine: simmms.Direct, Seed: 1, Warmup: 2000, Duration: 20000},
				MinReps: 16,
				Workers: workers,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := replicate.Run(context.Background(), cfg, opts)
				benchErr(b, err)
				if res.Reps != 16 {
					b.Fatalf("ran %d reps, want 16", res.Reps)
				}
			}
		})
	}
}

// ---- Warm-start and acceleration (DESIGN.md §12) ---------------------------

// figure4SnakeModels prebuilds the Figure 4 operating grid (R = 10,
// n_t = 1..10 × p_remote = 0.05..0.90) in snake order — the traversal the
// sweep runner hands a warm-starting worker — so the benchmark measures
// solving only, not model construction.
func figure4SnakeModels(b *testing.B) []*mms.Model {
	b.Helper()
	var models []*mms.Model
	for nt := 1; nt <= 10; nt++ {
		for c := 5; c <= 90; c += 5 {
			p := float64(c) / 100
			if nt%2 == 0 {
				p = float64(95-c) / 100
			}
			cfg := mms.DefaultConfig()
			cfg.Threads = nt
			cfg.PRemote = p
			model, err := mms.Build(cfg)
			benchErr(b, err)
			models = append(models, model)
		}
	}
	return models
}

// BenchmarkAMVAColdVsWarm measures continuation sweeps: one op solves the
// whole 180-point Figure 4 grid through a single reused workspace. "cold" is
// the pre-continuation behavior (every solve from the uniform seed, plain
// iteration); "warm" seeds each solve from the neighboring point's converged
// solution; "warm-anderson" adds Anderson mixing on top — the configuration
// the sweep paths actually run. The iters/solve metric is the mean AMVA
// iteration count per grid point.
func BenchmarkAMVAColdVsWarm(b *testing.B) {
	models := figure4SnakeModels(b)
	for _, mode := range []struct {
		name string
		opts mms.SolveOptions
	}{
		{"cold", mms.SolveOptions{}},
		{"warm", mms.SolveOptions{WarmStart: true}},
		{"warm-anderson", mms.SolveOptions{WarmStart: true, Accel: mva.AccelAnderson}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ws := new(mms.Workspace)
			opts := mode.opts
			opts.Workspace = ws
			var iters, solves int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, model := range models {
					met, err := model.Solve(opts)
					benchErr(b, err)
					iters += int64(met.Iterations)
					solves++
				}
			}
			b.ReportMetric(float64(iters)/float64(solves), "iters/solve")
		})
	}
}

// BenchmarkAMVAAccel compares the fixed-point acceleration schemes on a
// single cold solve of a congested operating point (high thread count and
// remote fraction, where plain Bard–Schweitzer converges slowest).
func BenchmarkAMVAAccel(b *testing.B) {
	cfg := mms.DefaultConfig()
	cfg.Threads = 10
	cfg.PRemote = 0.9
	model, err := mms.Build(cfg)
	benchErr(b, err)
	for _, accel := range []mva.Accel{mva.AccelNone, mva.AccelAitken, mva.AccelAnderson} {
		b.Run(accel.String(), func(b *testing.B) {
			ws := new(mms.Workspace)
			var iters int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				met, err := model.Solve(mms.SolveOptions{Workspace: ws, Accel: accel})
				benchErr(b, err)
				iters += int64(met.Iterations)
			}
			b.ReportMetric(float64(iters)/float64(b.N), "iters/solve")
		})
	}
}

// ---- Component microbenchmarks ---------------------------------------------

func BenchmarkSolveDefault(b *testing.B) {
	model, err := mms.Build(mms.DefaultConfig())
	benchErr(b, err)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := model.Solve(mms.SolveOptions{})
		benchErr(b, err)
	}
}

func BenchmarkSolveK10(b *testing.B) {
	cfg := mms.DefaultConfig()
	cfg.K = 10
	model, err := mms.Build(cfg)
	benchErr(b, err)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := model.Solve(mms.SolveOptions{})
		benchErr(b, err)
	}
}

// BenchmarkSolveK10Workspace is BenchmarkSolveK10 with an explicit reused
// workspace, the configuration sweep workers run in: steady state must be
// allocation-free.
func BenchmarkSolveK10Workspace(b *testing.B) {
	cfg := mms.DefaultConfig()
	cfg.K = 10
	model, err := mms.Build(cfg)
	benchErr(b, err)
	ws := new(mms.Workspace)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := model.Solve(mms.SolveOptions{Workspace: ws})
		benchErr(b, err)
	}
}

func BenchmarkBuildModelK10(b *testing.B) {
	cfg := mms.DefaultConfig()
	cfg.K = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := mms.Build(cfg)
		benchErr(b, err)
	}
}

// BenchmarkServeSolveCached measures the daemon's cache-hit path: request
// canonicalization, shard lookup and LRU touch, with the solver never running
// after the priming call. The whole path must stay allocation-free.
func BenchmarkServeSolveCached(b *testing.B) {
	eval := serve.NewEvaluator(serve.Config{})
	defer eval.Close()
	req := serve.ModelRequest{
		K: 4, Threads: 8, Runlength: 10, MemoryTime: 10, SwitchTime: 10,
		PRemote: 0.2, Psw: 0.5,
	}
	ctx := context.Background()
	if _, _, err := eval.Solve(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := eval.Solve(ctx, req)
		benchErr(b, err)
	}
}

// BenchmarkServeSolveMiss measures the daemon's cache-miss path end to end:
// canonicalization, leadership election and a full solver run per request.
// Every iteration queries a fresh operating point scattered over the
// (runlength, p_remote) plane by golden-ratio stepping, so no request repeats
// (always a miss) and the worker's warm start gets no free lunch from
// near-identical neighbors — this is the cold-traffic path the surrogate tier
// replaces, and its ratio to BenchmarkServeSolveSurrogate is the headline
// speedup.
func BenchmarkServeSolveMiss(b *testing.B) {
	eval := serve.NewEvaluator(serve.Config{})
	defer eval.Close()
	req := serve.ModelRequest{
		K: 10, Threads: 4, Runlength: 10, MemoryTime: 10, SwitchTime: 10,
		PRemote: 0.2, Psw: 0.5,
	}
	ctx := context.Background()
	const phi = 0.6180339887498949
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := math.Mod(float64(i)*phi, 1)
		fp := math.Mod(float64(i)*phi*phi, 1)
		req.Runlength = 5 + 25*fr
		req.PRemote = 0.05 + 0.85*fp
		_, _, err := eval.Solve(ctx, req)
		benchErr(b, err)
	}
}

// benchSurrogateSpec is the serve benchmark grid: small enough to build
// quickly, wide enough that the benchmark query interpolates mid-cell on both
// continuous axes. It pins the paper's larger 10×10 torus — the regime where
// precomputation pays — so the miss/surrogate pair measures the same
// workload; lookup cost itself is independent of K.
func benchSurrogateSpec() surrogate.Spec {
	return surrogate.Spec{
		Solver:     mva.SolverVersion,
		MemoryTime: 10,
		SwitchTime: 10,
		K:          []int{10},
		NT:         []int{2, 4, 8},
		R:          []float64{10, 15, 20},
		PRemote:    []float64{0.1, 0.2, 0.3, 0.4},
		Psw:        []float64{0.5},
	}
}

// BenchmarkServeSolveSurrogate measures the surrogate-hit path: a max_error
// request interpolated mid-cell from the precomputed grid, never touching the
// LRU (the result is not cached) or the solver. Must stay at 0 allocs/op and
// ≥100x faster than BenchmarkServeSolveMiss.
func BenchmarkServeSolveSurrogate(b *testing.B) {
	grid, err := surrogate.Build(benchSurrogateSpec(), surrogate.BuildOptions{})
	benchErr(b, err)
	eval := serve.NewEvaluator(serve.Config{})
	defer eval.Close()
	eval.SetSurrogate(grid)
	req := serve.ModelRequest{
		K: 10, Threads: 4, Runlength: 12.5, MemoryTime: 10, SwitchTime: 10,
		PRemote: 0.25, Psw: 0.5, MaxError: 0.9,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, err := eval.SolveBounded(ctx, req)
		benchErr(b, err)
	}
}

// ---- Batched SoA solve path (DESIGN.md §13) --------------------------------

// reportPointsPerSec converts whole-grid iterations into an aggregate
// operating-points-per-second rate, the unit the batch path is judged in.
func reportPointsPerSec(b *testing.B, points float64) {
	b.ReportMetric(points*float64(b.N)/b.Elapsed().Seconds(), "points/sec")
}

// BenchmarkBatchVsLooped measures the SoA batch kernel against looped scalar
// solves on the 180-point Figure 4–5 operating grid (prebuilt models, snake
// order, one reused workspace each, so both sides measure solving only).
// "looped-cold" solves each point from the uniform seed; "looped-warm" is the
// best scalar configuration (continuation warm start + Anderson mixing);
// "batch" runs all 180 points through SolveBatchInto in lockstep. The batch
// steady state must stay at 0 allocs/op.
func BenchmarkBatchVsLooped(b *testing.B) {
	models := figure4SnakeModels(b)
	points := float64(len(models))
	b.Run("looped-cold", func(b *testing.B) {
		ws := new(mms.Workspace)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, model := range models {
				_, err := model.Solve(mms.SolveOptions{Workspace: ws})
				benchErr(b, err)
			}
		}
		reportPointsPerSec(b, points)
	})
	b.Run("looped-warm", func(b *testing.B) {
		ws := new(mms.Workspace)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, model := range models {
				_, err := model.Solve(mms.SolveOptions{Workspace: ws, WarmStart: true, Accel: mva.AccelAnderson})
				benchErr(b, err)
			}
		}
		reportPointsPerSec(b, points)
	})
	b.Run("batch", func(b *testing.B) {
		items := make([]mms.BatchItem, len(models))
		for i, m := range models {
			items[i] = mms.BatchItem{Model: m}
		}
		dst := make([]mms.BatchResult, len(items))
		opts := mms.SolveOptions{Workspace: new(mms.Workspace)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mms.SolveBatchInto(dst, items, opts)
			if dst[0].Err != nil {
				b.Fatal(dst[0].Err)
			}
		}
		reportPointsPerSec(b, points)
	})
}

// BenchmarkServeBatchCached measures the daemon's all-hit batch path: 16
// items canonicalized, looked up and copied out of the cache with the solver
// never running after the priming call.
func BenchmarkServeBatchCached(b *testing.B) {
	eval := serve.NewEvaluator(serve.Config{})
	defer eval.Close()
	items := make([]serve.BatchItemRequest, 16)
	for i := range items {
		items[i] = serve.BatchItemRequest{ModelRequest: serve.ModelRequest{
			K: 4, Threads: 1 + i%10, Runlength: 10, MemoryTime: 10, SwitchTime: 10,
			PRemote: 0.2, Psw: 0.5,
		}}
		if i >= 10 {
			items[i].Op = "tolerance"
		}
	}
	out := make([]serve.BatchOutcome, len(items))
	ctx := context.Background()
	if err := eval.Batch(ctx, items, out); err != nil {
		b.Fatal(err)
	}
	for i := range out {
		if out[i].Err != nil {
			b.Fatal(out[i].Err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eval.Batch(ctx, items, out); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Cluster and client paths ---------------------------------------------

// BenchmarkClusterForwardHit measures the full cross-node cache-hit path: an
// HTTP request enters the NON-owner of its key, is forwarded over loopback to
// the owner (where it hits the cache), and the answer is relayed back
// verbatim. The delta to BenchmarkServeSolveCached is the price of one
// network hop plus the forward/relay plumbing — the cost a client pays for
// not knowing the ring.
func BenchmarkClusterForwardHit(b *testing.B) {
	var srvs [2]*serve.Server
	var urls [2]string
	for i := range srvs {
		srvs[i] = serve.NewServer(serve.Config{Workers: 1})
		ts := httptest.NewServer(srvs[i].Handler())
		urls[i] = ts.URL
		defer ts.Close()
		defer srvs[i].Close()
	}
	for i := range srvs {
		cl, err := cluster.New(urls[i], []string{urls[1-i]}, cluster.Options{})
		benchErr(b, err)
		srvs[i].SetCluster(cl)
	}

	// Probe for a request whose canonical key the OTHER node owns.
	var body []byte
	for threads := 1; threads <= 64 && body == nil; threads++ {
		req := serve.ModelRequest{
			K: 2, Threads: threads, Runlength: 10, MemoryTime: 8, SwitchTime: 2,
			PRemote: 0.2, Psw: 0.5,
		}
		k, err := serve.SolveKey(req)
		benchErr(b, err)
		if srvs[0].Cluster().Ring().Owner(k.Hash()) == urls[1] {
			body, err = json.Marshal(req)
			benchErr(b, err)
		}
	}
	if body == nil {
		b.Fatal("no probed key owned by the peer node")
	}

	post := func() *http.Response {
		resp, err := http.Post(urls[0]+"/v1/solve", "application/json", bytes.NewReader(body))
		benchErr(b, err)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		return resp
	}
	// Prime: the owner solves once and caches; every timed iteration below is
	// a forwarded hit.
	resp := post()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := post()
		if i == 0 && resp.Header.Get("X-Lattold-Cache") != "hit" {
			b.Fatalf("X-Lattold-Cache = %q, want hit", resp.Header.Get("X-Lattold-Cache"))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkClientHedged measures lattolclient's full request path with
// hedging armed — latency-window bookkeeping, hedge timer arm/cancel, JSON
// round trip — over the daemon's cache-hit solve. The delta to
// BenchmarkServeSolveCached is the client library's per-call overhead.
func BenchmarkClientHedged(b *testing.B) {
	srv := serve.NewServer(serve.Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := lattolclient.New(ts.URL, lattolclient.Options{
		Retries:         -1,
		HedgeQuantile:   0.99,
		HedgeMinSamples: 8,
		ClientID:        "bench",
	})
	req := lattolclient.ModelRequest{
		K: 4, Threads: 8, Runlength: 10, MemoryTime: 10, SwitchTime: 10,
		PRemote: 0.2, Psw: 0.5,
	}
	ctx := context.Background()
	// Prime the server cache and fill the latency window past HedgeMinSamples
	// so the hedge machinery is live for every timed iteration.
	for i := 0; i < 16; i++ {
		_, err := c.Solve(ctx, req)
		benchErr(b, err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := c.Solve(ctx, req)
		benchErr(b, err)
	}
}
