package petri

import (
	"math"
	"testing"

	"lattol/internal/stats"
)

// cycle builds the closed two-transition net
// ready --proc(delay R)--> pending --mem(delay L)--> ready
// with n tokens: the single-PE machine-repairman model.
func cycle(seed int64, n int, r, l stats.Dist) (*Net, TransitionID, TransitionID) {
	net := New(seed)
	ready := net.AddPlace("ready")
	pending := net.AddPlace("pending")
	proc := net.MustAddTransition(Transition{
		Name: "proc", Inputs: []PlaceID{ready}, Delay: r,
		Fire: func(f *Firing) []Output { return []Output{{Place: pending, Data: f.Tokens[0].Data}} },
	})
	mem := net.MustAddTransition(Transition{
		Name: "mem", Inputs: []PlaceID{pending}, Delay: l,
		Fire: func(f *Firing) []Output { return []Output{{Place: ready, Data: f.Tokens[0].Data}} },
	})
	for i := 0; i < n; i++ {
		net.Put(ready, i)
	}
	return net, proc, mem
}

func TestClosedCycleMatchesExactMVA(t *testing.T) {
	// Two balanced exponential stations with n=8 tokens: exact MVA gives
	// U = n/(n+1) = 8/9 per station.
	net, proc, mem := cycle(11, 8, stats.Exponential{M: 10}, stats.Exponential{M: 10})
	net.Run(50000)
	net.ResetStats()
	net.Run(500000)
	for name, tr := range map[string]TransitionID{"proc": proc, "mem": mem} {
		u := net.Utilization(tr)
		if math.Abs(u-8.0/9.0) > 0.01 {
			t.Errorf("%s utilization %v, want ~%v", name, u, 8.0/9.0)
		}
	}
}

func TestTokenConservation(t *testing.T) {
	net, _, _ := cycle(3, 5, stats.Exponential{M: 1}, stats.Exponential{M: 2})
	net.Run(1000)
	total := net.Marking(0) + net.Marking(1) + net.TokensInTransit()
	if total != 5 {
		t.Errorf("tokens %d, want 5", total)
	}
}

func TestDeterministicCycleTiming(t *testing.T) {
	// One token, deterministic delays 3 and 2: each full cycle takes 5.
	net, proc, mem := cycle(1, 1, stats.Deterministic{V: 3}, stats.Deterministic{V: 2})
	net.Run(50)
	// In 50 time units: 10 full cycles.
	if net.Served(proc) != 10 || net.Served(mem) != 10 {
		t.Errorf("served proc=%d mem=%d, want 10 each", net.Served(proc), net.Served(mem))
	}
	if u := net.Utilization(proc); math.Abs(u-0.6) > 0.01 {
		t.Errorf("proc utilization %v, want 0.6", u)
	}
}

func TestColoredTokensPreserved(t *testing.T) {
	net := New(1)
	in := net.AddPlace("in")
	out := net.AddPlace("out")
	net.MustAddTransition(Transition{
		Name: "pass", Inputs: []PlaceID{in}, Delay: stats.Deterministic{V: 1},
		Fire: func(f *Firing) []Output {
			return []Output{{Place: out, Data: f.Tokens[0].Data.(int) * 2}}
		},
	})
	net.Put(in, 21)
	net.Run(10)
	if net.Marking(out) != 1 {
		t.Fatal("token did not arrive")
	}
}

func TestProbabilisticRouting(t *testing.T) {
	// Fire flips a 30/70 coin; frequencies must match.
	net := New(9)
	src := net.AddPlace("src")
	a := net.AddPlace("a")
	b := net.AddPlace("b")
	net.MustAddTransition(Transition{
		Name: "route", Inputs: []PlaceID{src}, Delay: stats.Deterministic{V: 0.001},
		Fire: func(f *Firing) []Output {
			if f.Rand.Float64() < 0.3 {
				return []Output{{Place: a, Data: nil}}
			}
			return []Output{{Place: b, Data: nil}}
		},
	})
	const n = 100000
	for i := 0; i < n; i++ {
		net.Put(src, nil)
	}
	net.Run(1e9)
	fa := float64(net.Marking(a)) / n
	if math.Abs(fa-0.3) > 0.01 {
		t.Errorf("branch frequency %v, want 0.3", fa)
	}
	if net.Marking(a)+net.Marking(b) != n {
		t.Error("tokens lost in routing")
	}
}

func TestSynchronizingTransition(t *testing.T) {
	// A transition with two input places fires only when both hold tokens
	// (fork-join synchronization).
	net := New(1)
	left := net.AddPlace("left")
	right := net.AddPlace("right")
	joined := net.AddPlace("joined")
	join := net.MustAddTransition(Transition{
		Name: "join", Inputs: []PlaceID{left, right}, Delay: stats.Deterministic{V: 1},
		Fire: func(f *Firing) []Output { return []Output{{Place: joined, Data: nil}} },
	})
	net.Put(left, nil)
	net.Run(5)
	if net.Served(join) != 0 {
		t.Error("join fired with one input empty")
	}
	// Second token arrives via a custom event.
	net.Engine().Schedule(6, func() { net.Put(right, nil) })
	net.Run(10)
	if net.Served(join) != 1 || net.Marking(joined) != 1 {
		t.Error("join did not fire after both inputs filled")
	}
}

func TestSingleServerSemantics(t *testing.T) {
	// Ten tokens through a deterministic transition of delay 1 take 10 time
	// units end to end: services serialize.
	net := New(1)
	in := net.AddPlace("in")
	out := net.AddPlace("out")
	tr := net.MustAddTransition(Transition{
		Name: "srv", Inputs: []PlaceID{in}, Delay: stats.Deterministic{V: 1},
		Fire: func(f *Firing) []Output { return []Output{{Place: out, Data: nil}} },
	})
	for i := 0; i < 10; i++ {
		net.Put(in, nil)
	}
	net.Run(9.5)
	if net.Marking(out) != 9 {
		t.Errorf("after 9.5 units: %d out, want 9", net.Marking(out))
	}
	net.Run(10.5)
	if net.Marking(out) != 10 || net.Served(tr) != 10 {
		t.Error("all tokens should be through by 10.5")
	}
}

func TestPreselectionOrder(t *testing.T) {
	// Two transitions compete for one place: registration order wins while
	// the first is free.
	net := New(1)
	src := net.AddPlace("src")
	a := net.AddPlace("a")
	b := net.AddPlace("b")
	net.MustAddTransition(Transition{
		Name: "first", Inputs: []PlaceID{src}, Delay: stats.Deterministic{V: 10},
		Fire: func(f *Firing) []Output { return []Output{{Place: a, Data: nil}} },
	})
	net.MustAddTransition(Transition{
		Name: "second", Inputs: []PlaceID{src}, Delay: stats.Deterministic{V: 10},
		Fire: func(f *Firing) []Output { return []Output{{Place: b, Data: nil}} },
	})
	net.Put(src, nil) // taken by "first"
	net.Put(src, nil) // "first" busy -> taken by "second"
	net.Run(20)
	if net.Marking(a) != 1 || net.Marking(b) != 1 {
		t.Errorf("markings a=%d b=%d, want 1/1", net.Marking(a), net.Marking(b))
	}
}

func TestMeanWaitAndMarking(t *testing.T) {
	// Deterministic single server, two tokens: waits 0 and 1.
	net := New(1)
	in := net.AddPlace("in")
	net.MustAddTransition(Transition{
		Name: "sink", Inputs: []PlaceID{in}, Delay: stats.Deterministic{V: 1},
	})
	net.Put(in, nil)
	net.Put(in, nil)
	net.Run(10)
	if w := net.MeanWait(in); math.Abs(w-0.5) > 1e-9 {
		t.Errorf("mean wait %v, want 0.5", w)
	}
	if c := net.WaitCount(in); c != 2 {
		t.Errorf("wait count %d", c)
	}
}

func TestValidationErrors(t *testing.T) {
	net := New(1)
	p := net.AddPlace("p")
	if _, err := net.AddTransition(Transition{Name: "noin", Delay: stats.Deterministic{V: 1}}); err == nil {
		t.Error("want error for no inputs")
	}
	if _, err := net.AddTransition(Transition{Name: "nodelay", Inputs: []PlaceID{p}}); err == nil {
		t.Error("want error for no delay")
	}
	if _, err := net.AddTransition(Transition{Name: "badplace", Inputs: []PlaceID{99}, Delay: stats.Deterministic{V: 1}}); err == nil {
		t.Error("want error for bad place")
	}
	net.Run(1)
	if _, err := net.AddTransition(Transition{Name: "late", Inputs: []PlaceID{p}, Delay: stats.Deterministic{V: 1}}); err == nil {
		t.Error("want error for AddTransition after Run")
	}
}

func TestResetStats(t *testing.T) {
	net, proc, _ := cycle(5, 2, stats.Exponential{M: 1}, stats.Exponential{M: 1})
	net.Run(100)
	net.ResetStats()
	if net.Served(proc) != 0 {
		t.Error("served not reset")
	}
	net.Run(200)
	if net.Served(proc) == 0 {
		t.Error("no services after reset")
	}
}

func TestAbsorbingTransition(t *testing.T) {
	// nil Fire absorbs tokens.
	net := New(1)
	in := net.AddPlace("in")
	tr := net.MustAddTransition(Transition{Name: "sink", Inputs: []PlaceID{in}, Delay: stats.Deterministic{V: 1}})
	net.Put(in, nil)
	net.Run(5)
	if net.Served(tr) != 1 || net.Marking(in) != 0 {
		t.Error("absorbing transition misbehaved")
	}
}
