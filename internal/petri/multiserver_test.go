package petri

import (
	"math"
	"testing"

	"lattol/internal/stats"
)

func TestMultiServerTransitionParallelism(t *testing.T) {
	// A 2-server deterministic transition drains 4 tokens in two service
	// times.
	net := New(1)
	in := net.AddPlace("in")
	out := net.AddPlace("out")
	net.MustAddTransition(Transition{
		Name: "srv", Inputs: []PlaceID{in}, Delay: stats.Deterministic{V: 5}, Servers: 2,
		Fire: func(f *Firing) []Output { return []Output{{Place: out, Data: nil}} },
	})
	for i := 0; i < 4; i++ {
		net.Put(in, nil)
	}
	net.Run(10.5)
	if got := net.Marking(out); got != 4 {
		t.Errorf("drained %d tokens by t=10.5, want 4", got)
	}
}

func TestMultiServerUtilizationIsPerServer(t *testing.T) {
	// One token circulating through a 2-server transition keeps only half
	// the capacity busy.
	net := New(2)
	loop := net.AddPlace("loop")
	tr := net.MustAddTransition(Transition{
		Name: "srv", Inputs: []PlaceID{loop}, Delay: stats.Deterministic{V: 1}, Servers: 2,
		Fire: func(f *Firing) []Output { return []Output{{Place: loop, Data: nil}} },
	})
	net.Put(loop, nil)
	net.Run(1000)
	if u := net.Utilization(tr); math.Abs(u-0.5) > 0.01 {
		t.Errorf("utilization %v, want 0.5", u)
	}
}

func TestMultiServerMatchesMVAClosedCycle(t *testing.T) {
	// Closed cycle: 4 tokens through a 2-server exponential stage (mean 10)
	// and a single-server exponential stage (mean 10). Cross-checked against
	// the shadow-approximation MVA elsewhere; here just sanity: throughput
	// must exceed the single-server-everywhere variant.
	run := func(servers int) float64 {
		net := New(3)
		a := net.AddPlace("a")
		b := net.AddPlace("b")
		stage := net.MustAddTransition(Transition{
			Name: "multi", Inputs: []PlaceID{a}, Delay: stats.Exponential{M: 10}, Servers: servers,
			Fire: func(f *Firing) []Output { return []Output{{Place: b, Data: nil}} },
		})
		net.MustAddTransition(Transition{
			Name: "single", Inputs: []PlaceID{b}, Delay: stats.Exponential{M: 10},
			Fire: func(f *Firing) []Output { return []Output{{Place: a, Data: nil}} },
		})
		for i := 0; i < 4; i++ {
			net.Put(a, nil)
		}
		net.Run(20000)
		net.ResetStats()
		net.Run(220000)
		return float64(net.Served(stage)) / 200000
	}
	single := run(1)
	double := run(2)
	if double <= single*1.05 {
		t.Errorf("2-server throughput %v not clearly above 1-server %v", double, single)
	}
}
