// Package petri implements stochastic timed Petri nets (STPN) with colored
// tokens — the modeling substrate the paper uses to validate its analytical
// results (Section 8).
//
// Semantics: places hold FIFO queues of tokens; a timed transition is
// enabled when every input place is nonempty. An enabled, idle transition
// immediately *starts* a firing: it removes the head token of each input
// place, samples a firing delay from its distribution, and completes the
// firing after that delay by invoking its Fire function, which maps the
// consumed tokens to output tokens on output places. Each transition has a
// bounded number of servers (one by default): at most that many firings are
// in progress at a time, so a transition with a delay models an FCFS service
// center — the paper's subsystem model, with multi-server variants for
// multiported memories and pipelined switches. When several transitions
// share an input place,
// the one registered first is started first (deterministic preselection);
// probabilistic routing is expressed inside Fire, which receives the random
// stream.
package petri

import (
	"fmt"
	"math/rand"

	"lattol/internal/des"
	"lattol/internal/stats"
)

// PlaceID identifies a place.
type PlaceID int

// TransitionID identifies a transition.
type TransitionID int

// Token is a colored token: Data carries the color (any payload), Deposited
// records when it entered its current place.
type Token struct {
	Data      interface{}
	Deposited float64
}

// Output is a token deposited on a place when a firing completes.
type Output struct {
	Place PlaceID
	Data  interface{}
}

// Firing is the context passed to a transition's Fire function.
type Firing struct {
	// Now is the completion time of the firing.
	Now float64
	// Started is when the firing started (tokens were consumed).
	Started float64
	// Rand is the net's random stream, for probabilistic routing.
	Rand *rand.Rand
	// Tokens are the consumed tokens, one per input place, in input order.
	Tokens []Token
}

// Transition describes a timed transition.
type Transition struct {
	Name string
	// Inputs lists the places from which one token each is consumed.
	Inputs []PlaceID
	// Delay is the firing-delay distribution (use stats.Deterministic{0} for
	// an immediate transition).
	Delay stats.Dist
	// Servers is the maximum number of concurrent firings; 0 means 1
	// (single-server, the paper's subsystem model). Larger values model
	// multiported memories or pipelined switches.
	Servers int
	// Fire maps consumed tokens to outputs. A nil Fire absorbs the tokens.
	Fire func(f *Firing) []Output
}

func (t Transition) servers() int {
	if t.Servers < 1 {
		return 1
	}
	return t.Servers
}

type place struct {
	name string
	fifo []Token
	// consumers are transitions with this place among their inputs, in
	// registration order.
	consumers []TransitionID
	// Wait accumulates token waiting times in this place.
	wait stats.Summary
	// marking tracks the time-average token count.
	marking stats.TimeWeighted
}

type transition struct {
	def      Transition
	inFlight int
	busyTW   stats.TimeWeighted
	served   int64
}

// Net is a stochastic timed Petri net bound to a simulation engine.
type Net struct {
	engine      *des.Engine
	places      []*place
	transitions []*transition
	sealed      bool
}

// New creates an empty net with its own engine and random stream.
func New(seed int64) *Net {
	return &Net{engine: des.NewEngine(seed)}
}

// Engine exposes the underlying engine (for Now and custom events).
func (n *Net) Engine() *des.Engine { return n.engine }

// AddPlace adds a place and returns its ID.
func (n *Net) AddPlace(name string) PlaceID {
	if n.sealed {
		panic("petri: AddPlace after Run")
	}
	p := &place{name: name}
	p.marking.Set(n.engine.Now(), 0)
	n.places = append(n.places, p)
	return PlaceID(len(n.places) - 1)
}

// AddTransition adds a transition and returns its ID. Inputs must reference
// existing places and there must be at least one.
func (n *Net) AddTransition(def Transition) (TransitionID, error) {
	if n.sealed {
		return 0, fmt.Errorf("petri: AddTransition after Run")
	}
	if len(def.Inputs) == 0 {
		return 0, fmt.Errorf("petri: transition %q has no inputs", def.Name)
	}
	if def.Delay == nil {
		return 0, fmt.Errorf("petri: transition %q has no delay distribution", def.Name)
	}
	for _, in := range def.Inputs {
		if int(in) < 0 || int(in) >= len(n.places) {
			return 0, fmt.Errorf("petri: transition %q input place %d out of range", def.Name, in)
		}
	}
	t := &transition{def: def}
	t.busyTW.Set(n.engine.Now(), 0)
	n.transitions = append(n.transitions, t)
	id := TransitionID(len(n.transitions) - 1)
	for _, in := range def.Inputs {
		n.places[in].consumers = append(n.places[in].consumers, id)
	}
	return id, nil
}

// MustAddTransition is AddTransition for known-good definitions.
func (n *Net) MustAddTransition(def Transition) TransitionID {
	id, err := n.AddTransition(def)
	if err != nil {
		panic(err)
	}
	return id
}

// Put deposits a token with the given color on a place at the current time
// and starts any transition it enables.
func (n *Net) Put(p PlaceID, data interface{}) {
	n.deposit(p, data)
}

func (n *Net) deposit(pid PlaceID, data interface{}) {
	p := n.places[pid]
	p.fifo = append(p.fifo, Token{Data: data, Deposited: n.engine.Now()})
	p.marking.Set(n.engine.Now(), float64(len(p.fifo)))
	for _, tid := range p.consumers {
		if n.tryStart(tid) {
			break
		}
	}
}

// tryStart begins a firing of transition tid if it has a free server and is
// enabled.
func (n *Net) tryStart(tid TransitionID) bool {
	t := n.transitions[tid]
	if t.inFlight >= t.def.servers() {
		return false
	}
	for _, in := range t.def.Inputs {
		if len(n.places[in].fifo) == 0 {
			return false
		}
	}
	now := n.engine.Now()
	tokens := make([]Token, len(t.def.Inputs))
	for i, in := range t.def.Inputs {
		p := n.places[in]
		tok := p.fifo[0]
		p.fifo = p.fifo[1:]
		p.marking.Set(now, float64(len(p.fifo)))
		p.wait.Add(now - tok.Deposited)
		tokens[i] = tok
	}
	t.inFlight++
	t.busyTW.Set(now, float64(t.inFlight)/float64(t.def.servers()))
	delay := t.def.Delay.Sample(n.engine.Rand)
	n.engine.After(delay, func() { n.complete(tid, now, tokens) })
	return true
}

func (n *Net) complete(tid TransitionID, started float64, tokens []Token) {
	t := n.transitions[tid]
	now := n.engine.Now()
	t.served++
	var outs []Output
	if t.def.Fire != nil {
		outs = t.def.Fire(&Firing{Now: now, Started: started, Rand: n.engine.Rand, Tokens: tokens})
	}
	t.inFlight--
	t.busyTW.Set(now, float64(t.inFlight)/float64(t.def.servers()))
	for _, o := range outs {
		n.deposit(o.Place, o.Data)
	}
	// The freed server may be enabled again by tokens that queued during the
	// firing.
	n.tryStart(tid)
}

// Run advances the simulation until the horizon.
func (n *Net) Run(horizon float64) {
	n.sealed = true
	n.engine.Run(horizon)
}

// Marking returns the number of tokens currently waiting in place p
// (excluding tokens consumed by in-progress firings).
func (n *Net) Marking(p PlaceID) int { return len(n.places[p].fifo) }

// TokensInTransit returns the number of firings currently in progress.
func (n *Net) TokensInTransit() int {
	c := 0
	for _, t := range n.transitions {
		c += t.inFlight
	}
	return c
}

// Utilization returns the busy fraction of a transition (servers in use /
// servers, time-averaged) up to now.
func (n *Net) Utilization(t TransitionID) float64 {
	return n.transitions[t].busyTW.MeanAt(n.engine.Now())
}

// Served returns the number of completed firings of a transition since the
// last ResetStats.
func (n *Net) Served(t TransitionID) int64 { return n.transitions[t].served }

// MeanWait returns the mean token waiting time in a place (time from deposit
// to consumption) since the last ResetStats.
func (n *Net) MeanWait(p PlaceID) float64 { return n.places[p].wait.Mean() }

// WaitCount returns how many tokens have been consumed from a place since
// the last ResetStats.
func (n *Net) WaitCount(p PlaceID) int64 { return n.places[p].wait.Count() }

// MeanMarking returns the time-average token count of a place.
func (n *Net) MeanMarking(p PlaceID) float64 {
	return n.places[p].marking.MeanAt(n.engine.Now())
}

// ResetStats discards statistics gathered so far (warm-up removal) without
// disturbing the net's state.
func (n *Net) ResetStats() {
	now := n.engine.Now()
	for _, p := range n.places {
		p.wait = stats.Summary{}
		p.marking.Reset(now)
	}
	for _, t := range n.transitions {
		t.busyTW.Reset(now)
		t.served = 0
	}
}
