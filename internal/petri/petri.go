// Package petri implements stochastic timed Petri nets (STPN) with colored
// tokens — the modeling substrate the paper uses to validate its analytical
// results (Section 8).
//
// Semantics: places hold FIFO queues of tokens; a timed transition is
// enabled when every input place is nonempty. An enabled, idle transition
// immediately *starts* a firing: it removes the head token of each input
// place, samples a firing delay from its distribution, and completes the
// firing after that delay by invoking its Fire function, which maps the
// consumed tokens to output tokens on output places. Each transition has a
// bounded number of servers (one by default): at most that many firings are
// in progress at a time, so a transition with a delay models an FCFS service
// center — the paper's subsystem model, with multi-server variants for
// multiported memories and pipelined switches. When several transitions
// share an input place,
// the one registered first is started first (deterministic preselection);
// probabilistic routing is expressed inside Fire, which receives the random
// stream.
package petri

import (
	"fmt"

	"lattol/internal/des"
	"lattol/internal/stats"
)

// PlaceID identifies a place.
type PlaceID int

// TransitionID identifies a transition.
type TransitionID int

// Token is a colored token: Data carries the color (any payload), Deposited
// records when it entered its current place.
type Token struct {
	Data      interface{}
	Deposited float64
}

// Output is a token deposited on a place when a firing completes.
type Output struct {
	Place PlaceID
	Data  interface{}
}

// Firing is the context passed to a transition's Fire function. The context
// and its Tokens slice are owned by the net and recycled after Fire returns:
// Fire must not retain the *Firing or the Tokens slice beyond the call
// (copy Token.Data out if it must escape).
type Firing struct {
	// Now is the completion time of the firing.
	Now float64
	// Started is when the firing started (tokens were consumed).
	Started float64
	// Rand is the net's random stream, for probabilistic routing.
	Rand *stats.RNG
	// Tokens are the consumed tokens, one per input place, in input order.
	Tokens []Token

	// out accumulates outputs emitted via Out into a buffer reused across
	// firings, so hot Fire functions need not allocate a return slice.
	out []Output
}

// Out deposits a token on a place when the firing completes, like returning
// an Output from Fire but without allocating a slice: the entries land in a
// net-owned buffer reused across firings. Outputs emitted with Out are
// deposited before any returned by Fire's return value; a Fire function may
// use either or both.
func (f *Firing) Out(p PlaceID, data interface{}) {
	f.out = append(f.out, Output{Place: p, Data: data})
}

// Transition describes a timed transition.
type Transition struct {
	Name string
	// Inputs lists the places from which one token each is consumed.
	Inputs []PlaceID
	// Delay is the firing-delay distribution (use stats.Deterministic{0} for
	// an immediate transition).
	Delay stats.Dist
	// Servers is the maximum number of concurrent firings; 0 means 1
	// (single-server, the paper's subsystem model). Larger values model
	// multiported memories or pipelined switches.
	Servers int
	// Fire maps consumed tokens to outputs. A nil Fire absorbs the tokens.
	Fire func(f *Firing) []Output
}

func (t Transition) servers() int {
	if t.Servers < 1 {
		return 1
	}
	return t.Servers
}

// tokenRing is a FIFO of tokens backed by a circular buffer, so the
// steady-state deposit/consume cycle neither allocates nor slides a slice
// window off its backing array.
type tokenRing struct {
	buf  []Token
	head int
	n    int
}

func (r *tokenRing) len() int { return r.n }

func (r *tokenRing) push(t Token) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = t
	r.n++
}

func (r *tokenRing) pop() Token {
	t := r.buf[r.head]
	r.buf[r.head] = Token{} // release the Data reference
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return t
}

// clear empties the ring, dropping token Data references but keeping the
// backing buffer for reuse.
func (r *tokenRing) clear() {
	for i := range r.buf {
		r.buf[i] = Token{}
	}
	r.head, r.n = 0, 0
}

func (r *tokenRing) grow() {
	nb := make([]Token, 2*len(r.buf)+4)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		nb[i] = r.buf[j]
	}
	r.buf = nb
	r.head = 0
}

type place struct {
	name string
	fifo tokenRing
	// consumers are transitions with this place among their inputs, in
	// registration order.
	consumers []TransitionID
	// Wait accumulates token waiting times in this place.
	wait stats.Mean
	// marking tracks the time-average token count.
	marking stats.TimeWeighted
}

type transition struct {
	def Transition
	// delay is def.Delay compiled into a direct-dispatch sampler.
	delay    stats.Sampler
	inFlight int
	busyTW   stats.TimeWeighted
	served   int64
}

// firing is an in-flight firing record: the consumed tokens parked between
// service start and completion. Records are recycled through the net's
// free list so steady-state firing costs no allocation.
type firing struct {
	tid     TransitionID
	started float64
	tokens  []Token
	next    *firing // free-list link
}

// Net is a stochastic timed Petri net bound to a simulation engine.
type Net struct {
	engine      *des.Engine
	places      []*place
	transitions []*transition
	sealed      bool

	// freeFirings is the recycled-record free list; fctx and outBuf are the
	// Firing context and output buffer reused across completions.
	freeFirings *firing
	fctx        Firing
	outBuf      []Output
}

// New creates an empty net with its own engine and random stream.
func New(seed int64) *Net {
	return &Net{engine: des.NewEngine(seed)}
}

// Engine exposes the underlying engine (for Now and custom events).
func (n *Net) Engine() *des.Engine { return n.engine }

// AddPlace adds a place and returns its ID.
func (n *Net) AddPlace(name string) PlaceID {
	if n.sealed {
		panic("petri: AddPlace after Run")
	}
	p := &place{name: name}
	p.marking.Set(n.engine.Now(), 0)
	n.places = append(n.places, p)
	return PlaceID(len(n.places) - 1)
}

// AddTransition adds a transition and returns its ID. Inputs must reference
// existing places and there must be at least one.
func (n *Net) AddTransition(def Transition) (TransitionID, error) {
	if n.sealed {
		return 0, fmt.Errorf("petri: AddTransition after Run")
	}
	if len(def.Inputs) == 0 {
		return 0, fmt.Errorf("petri: transition %q has no inputs", def.Name)
	}
	if def.Delay == nil {
		return 0, fmt.Errorf("petri: transition %q has no delay distribution", def.Name)
	}
	for _, in := range def.Inputs {
		if int(in) < 0 || int(in) >= len(n.places) {
			return 0, fmt.Errorf("petri: transition %q input place %d out of range", def.Name, in)
		}
	}
	t := &transition{def: def, delay: stats.MakeSampler(def.Delay)}
	t.busyTW.Set(n.engine.Now(), 0)
	n.transitions = append(n.transitions, t)
	id := TransitionID(len(n.transitions) - 1)
	for _, in := range def.Inputs {
		n.places[in].consumers = append(n.places[in].consumers, id)
	}
	return id, nil
}

// MustAddTransition is AddTransition for known-good definitions.
func (n *Net) MustAddTransition(def Transition) TransitionID {
	id, err := n.AddTransition(def)
	if err != nil {
		panic(err)
	}
	return id
}

// Put deposits a token with the given color on a place at the current time
// and starts any transition it enables.
func (n *Net) Put(p PlaceID, data interface{}) {
	n.deposit(p, data)
}

func (n *Net) deposit(pid PlaceID, data interface{}) {
	p := n.places[pid]
	p.fifo.push(Token{Data: data, Deposited: n.engine.Now()})
	p.marking.Set(n.engine.Now(), float64(p.fifo.len()))
	for _, tid := range p.consumers {
		if n.tryStart(tid) {
			break
		}
	}
}

// getFiring pops a record off the free list (or allocates one) with room for
// k tokens.
func (n *Net) getFiring(k int) *firing {
	f := n.freeFirings
	if f == nil {
		f = &firing{}
	} else {
		n.freeFirings = f.next
		f.next = nil
	}
	if cap(f.tokens) < k {
		f.tokens = make([]Token, k)
	}
	f.tokens = f.tokens[:k]
	return f
}

func (n *Net) putFiring(f *firing) {
	for i := range f.tokens {
		f.tokens[i] = Token{}
	}
	f.tokens = f.tokens[:0]
	f.next = n.freeFirings
	n.freeFirings = f
}

// fireHandler completes a firing; Actor is the net, Data the firing record.
func fireHandler(_ *des.Engine, ev des.Event) {
	ev.Actor.(*Net).complete(ev.Data.(*firing))
}

// tryStart begins a firing of transition tid if it has a free server and is
// enabled.
func (n *Net) tryStart(tid TransitionID) bool {
	t := n.transitions[tid]
	if t.inFlight >= t.def.servers() {
		return false
	}
	for _, in := range t.def.Inputs {
		if n.places[in].fifo.len() == 0 {
			return false
		}
	}
	now := n.engine.Now()
	rec := n.getFiring(len(t.def.Inputs))
	rec.tid = tid
	rec.started = now
	for i, in := range t.def.Inputs {
		p := n.places[in]
		tok := p.fifo.pop()
		p.marking.Set(now, float64(p.fifo.len()))
		p.wait.Add(now - tok.Deposited)
		rec.tokens[i] = tok
	}
	t.inFlight++
	t.busyTW.Set(now, float64(t.inFlight)/float64(t.def.servers()))
	delay := t.delay.Sample(&n.engine.Rand)
	n.engine.AfterEvent(delay, fireHandler, des.Event{Actor: n, Data: rec})
	return true
}

func (n *Net) complete(rec *firing) {
	t := n.transitions[rec.tid]
	now := n.engine.Now()
	t.served++
	var outs, buffered []Output
	if t.def.Fire != nil {
		n.fctx = Firing{Now: now, Started: rec.started, Rand: &n.engine.Rand,
			Tokens: rec.tokens, out: n.outBuf[:0]}
		outs = t.def.Fire(&n.fctx)
		buffered = n.fctx.out
		n.outBuf = n.fctx.out[:0] // reclaim (possibly grown) buffer for the next firing
	}
	t.inFlight--
	t.busyTW.Set(now, float64(t.inFlight)/float64(t.def.servers()))
	// Outputs emitted via Firing.Out first, then any returned slice. deposit
	// never re-enters complete synchronously (a newly enabled firing
	// completes through a future engine event), so the buffer is stable
	// while we drain it.
	for _, o := range buffered {
		n.deposit(o.Place, o.Data)
	}
	for _, o := range outs {
		n.deposit(o.Place, o.Data)
	}
	tid := rec.tid
	n.putFiring(rec)
	// The freed server may be enabled again by tokens that queued during the
	// firing.
	n.tryStart(tid)
}

// Run advances the simulation until the horizon.
func (n *Net) Run(horizon float64) {
	n.sealed = true
	n.engine.Run(horizon)
}

// Marking returns the number of tokens currently waiting in place p
// (excluding tokens consumed by in-progress firings).
func (n *Net) Marking(p PlaceID) int { return n.places[p].fifo.len() }

// TokensInTransit returns the number of firings currently in progress.
func (n *Net) TokensInTransit() int {
	c := 0
	for _, t := range n.transitions {
		c += t.inFlight
	}
	return c
}

// Utilization returns the busy fraction of a transition (servers in use /
// servers, time-averaged) up to now.
func (n *Net) Utilization(t TransitionID) float64 {
	return n.transitions[t].busyTW.MeanAt(n.engine.Now())
}

// Served returns the number of completed firings of a transition since the
// last ResetStats.
func (n *Net) Served(t TransitionID) int64 { return n.transitions[t].served }

// MeanWait returns the mean token waiting time in a place (time from deposit
// to consumption) since the last ResetStats.
func (n *Net) MeanWait(p PlaceID) float64 { return n.places[p].wait.Mean() }

// WaitCount returns how many tokens have been consumed from a place since
// the last ResetStats.
func (n *Net) WaitCount(p PlaceID) int64 { return n.places[p].wait.Count() }

// MeanMarking returns the time-average token count of a place.
func (n *Net) MeanMarking(p PlaceID) float64 {
	return n.places[p].marking.MeanAt(n.engine.Now())
}

// Reset empties the net — pending engine events, tokens, in-flight firings,
// and all statistics — and reseeds its random stream, keeping the structure
// (places, transitions, compiled samplers) and every backing buffer. A Reset
// net replayed with the same seed and deposits reproduces the identical
// trajectory as a freshly built one, which is what lets a replication worker
// reuse one net across replications at zero allocation.
func (n *Net) Reset(seed int64) {
	n.engine.Reset(seed)
	for _, p := range n.places {
		p.fifo.clear()
		p.wait = stats.Mean{}
		p.marking = stats.TimeWeighted{}
		p.marking.Set(0, 0)
	}
	for _, t := range n.transitions {
		// In-flight firing records are dropped with the engine's calendar;
		// their token buffers are unreachable now, but records were recycled
		// through freeFirings only on completion, so just forget the list —
		// getFiring re-allocates lazily and reaches steady state again within
		// one warm-up.
		t.inFlight = 0
		t.busyTW = stats.TimeWeighted{}
		t.busyTW.Set(0, 0)
		t.served = 0
	}
	n.freeFirings = nil
}

// ResetStats discards statistics gathered so far (warm-up removal) without
// disturbing the net's state.
func (n *Net) ResetStats() {
	now := n.engine.Now()
	for _, p := range n.places {
		p.wait = stats.Mean{}
		p.marking.Reset(now)
	}
	for _, t := range n.transitions {
		t.busyTW.Reset(now)
		t.served = 0
	}
}
