package surrogate

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Store is a minimal content-addressed blob store on a local directory,
// upspin-shaped: immutable blobs named by the hex sha256 of their content
// under blobs/, plus mutable named refs under refs/ pointing at a blob.
//
//	<dir>/blobs/<64-hex sha256>   immutable content
//	<dir>/refs/<name>             text file holding one blob hash
//
// Writes are atomic (temp file + rename in the same directory), so a crash
// mid-write leaves at worst a stray .tmp file, never a half blob under its
// final name. Get re-hashes what it reads: a corrupted blob is detected at
// load, not served.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "blobs"), filepath.Join(dir, "refs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("surrogate: opening store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func isHexHash(h string) bool {
	if len(h) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func validRefName(name string) error {
	if name == "" || len(name) > 128 || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("surrogate: invalid ref name %q", name)
	}
	return nil
}

// writeAtomic writes data to path via a temp file in the same directory and
// an atomic rename.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Put stores a blob and returns its content hash. Storing bytes that already
// exist is a no-op (content addressing: same bytes, same name).
func (s *Store) Put(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	h := hex.EncodeToString(sum[:])
	path := filepath.Join(s.dir, "blobs", h)
	// An existing blob is only a no-op when its bytes actually match; a
	// damaged file squatting on the name is healed by rewriting.
	if old, err := os.ReadFile(path); err == nil && bytes.Equal(old, data) {
		return h, nil
	}
	if err := writeAtomic(path, data); err != nil {
		return "", fmt.Errorf("surrogate: storing blob: %w", err)
	}
	return h, nil
}

// Get loads a blob by hash, verifying the content matches its name. A
// mismatch reports ErrCorrupt.
func (s *Store) Get(h string) ([]byte, error) {
	if !isHexHash(h) {
		return nil, fmt.Errorf("surrogate: %w: malformed blob hash %q", ErrCorrupt, h)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, "blobs", h))
	if err != nil {
		return nil, err
	}
	if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != h {
		return nil, fmt.Errorf("surrogate: %w: blob %s fails its checksum", ErrCorrupt, h[:12])
	}
	return data, nil
}

// Link points the named ref at a blob hash (atomically replacing any
// previous target).
func (s *Store) Link(name, h string) error {
	if err := validRefName(name); err != nil {
		return err
	}
	if !isHexHash(h) {
		return fmt.Errorf("surrogate: linking %q: malformed blob hash %q", name, h)
	}
	if err := writeAtomic(filepath.Join(s.dir, "refs", name), []byte(h+"\n")); err != nil {
		return fmt.Errorf("surrogate: linking %q: %w", name, err)
	}
	return nil
}

// Resolve returns the blob hash a named ref points at; fs.ErrNotExist when
// the ref was never written, ErrCorrupt when its content is not a hash.
func (s *Store) Resolve(name string) (string, error) {
	if err := validRefName(name); err != nil {
		return "", err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, "refs", name))
	if err != nil {
		return "", err
	}
	h := strings.TrimSpace(string(data))
	if !isHexHash(h) {
		return "", fmt.Errorf("surrogate: %w: ref %q does not hold a blob hash", ErrCorrupt, name)
	}
	return h, nil
}

// SaveGrid persists a grid: the encoded blob under its content hash, plus
// the spec-derived ref pointing at it. Returns the blob hash.
func SaveGrid(s *Store, g *Grid) (string, error) {
	h, err := s.Put(g.Encode())
	if err != nil {
		return "", err
	}
	if err := s.Link(g.spec.RefName(), h); err != nil {
		return "", err
	}
	return h, nil
}

// LoadGrid loads the persisted grid of the given spec. It reports
// fs.ErrNotExist when no grid was ever saved for the spec, ErrVersion when a
// persisted artifact exists but was written by a different format, and
// ErrCorrupt for damaged artifacts. The decoded spec must match the
// requested one bit-for-bit; since the ref name commits to only a hash
// prefix, the full spec encoding is compared after decode.
func LoadGrid(s *Store, spec Spec) (*Grid, error) {
	h, err := s.Resolve(spec.RefName())
	if err != nil {
		return nil, err
	}
	data, err := s.Get(h)
	if err != nil {
		return nil, err
	}
	g, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(appendSpec(nil, g.spec), appendSpec(nil, spec)) {
		return nil, fmt.Errorf("surrogate: %w: stored grid's spec differs from the requested one", ErrCorrupt)
	}
	return g, nil
}

// OpenGrid loads the persisted grid for spec, or builds and persists it when
// none is loadable. Damaged or version-mismatched artifacts are reported
// through logf (a log.Printf-shaped sink; nil discards) and replaced — the
// tier starts cold but never crashes and never serves a stale grid. A plain
// cache miss (nothing persisted yet) builds silently.
func OpenGrid(s *Store, spec Spec, logf func(format string, args ...any)) (*Grid, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	g, err := LoadGrid(s, spec)
	switch {
	case err == nil:
		return g, nil
	case errors.Is(err, fs.ErrNotExist):
		// Cold start: nothing persisted for this spec yet.
	default:
		logf("surrogate: persisted grid unusable, rebuilding cold: %v", err)
	}
	g, err = Build(spec, BuildOptions{})
	if err != nil {
		return nil, err
	}
	if _, err := SaveGrid(s, g); err != nil {
		logf("surrogate: persisting rebuilt grid failed (serving from memory): %v", err)
	}
	return g, nil
}
