package surrogate

import (
	"context"

	"lattol/internal/access"
	"lattol/internal/eval"
	"lattol/internal/mms"
)

// Evaluator adapts a Grid onto the uniform eval.Evaluator interface: a
// configuration the grid covers, evaluated with a positive MaxError the
// cell's certified bound satisfies, is answered by interpolation in sub-µs;
// everything else falls through to the next evaluator. Tolerance-index
// requests always fall through (the grid holds single-system measures only).
//
// It is the same tiering the serving layer applies between its LRU and its
// worker pool, packaged as a composable evaluator for in-process users (the
// inverse planners, batch drivers).
type Evaluator struct {
	grid *Grid
	next eval.Evaluator
}

// NewEvaluator layers grid over next. next must be non-nil; grid may be nil
// (every evaluation falls through).
func NewEvaluator(grid *Grid, next eval.Evaluator) *Evaluator {
	return &Evaluator{grid: grid, next: next}
}

// query maps a configuration onto the grid's query space. Only
// configurations matching everything the grid holds fixed qualify: plain
// symmetric-AMVA solves under the default geometric/per-distance pattern, no
// context-switch overhead, single-ported stations, and the grid's memory and
// switch times (the serving layer applies the identical test to its
// canonical keys).
func (e *Evaluator) query(cfg eval.Config) (Query, bool) {
	m := cfg.Model
	if e.grid == nil || cfg.Solver != mms.SymmetricAMVA ||
		m.Pattern != nil || m.GeometricMode != access.PerDistance ||
		m.ContextSwitch != 0 || m.MemoryPorts > 1 || m.SwitchPorts > 1 ||
		m.MemoryTime != e.grid.spec.MemoryTime || m.SwitchTime != e.grid.spec.SwitchTime {
		return Query{}, false
	}
	return Query{K: m.K, NT: m.Threads, R: m.Runlength, PRemote: m.PRemote, Psw: m.Psw}, true
}

// Evaluate serves from the grid when the request states a MaxError, asks for
// no tolerance indices, and the certified cell bound is within it; every
// other evaluation goes to the next evaluator unchanged.
func (e *Evaluator) Evaluate(ctx context.Context, cfg eval.Config, opts eval.Options) (eval.Metrics, error) {
	if opts.MaxError > 0 && !opts.TolNetwork && !opts.TolMemory {
		if q, ok := e.query(cfg); ok {
			if met, bound, st := e.grid.Lookup(q, opts.MaxError); st == Hit {
				return eval.Metrics{Metrics: met, Bound: bound}, nil
			}
		}
	}
	return e.next.Evaluate(ctx, cfg, opts)
}
