package surrogate

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/validate"
)

// smallSpec is a fast-to-build grid exercising a degenerate (single-value)
// Psw axis alongside real interpolation axes.
func smallSpec() Spec {
	return Spec{
		Solver:     mva.SolverVersion,
		MemoryTime: 10,
		SwitchTime: 10,
		K:          []int{4},
		NT:         []int{2, 4, 8},
		R:          []float64{10, 15, 20},
		PRemote:    []float64{0.1, 0.2, 0.3, 0.4},
		Psw:        []float64{0.5},
	}
}

func buildSmall(t testing.TB) *Grid {
	t.Helper()
	g, err := Build(smallSpec(), BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// solveRef solves a query's configuration exactly, for comparison.
func solveRef(t testing.TB, s Spec, q Query) mms.Metrics {
	t.Helper()
	m, err := mms.Build(mms.Config{
		K: q.K, Threads: q.NT, Runlength: q.R,
		MemoryTime: s.MemoryTime, SwitchTime: s.SwitchTime,
		PRemote: q.PRemote, Psw: q.Psw,
	})
	if err != nil {
		t.Fatalf("Build(%+v): %v", q, err)
	}
	met, err := m.Solve(mms.SolveOptions{})
	if err != nil {
		t.Fatalf("Solve(%+v): %v", q, err)
	}
	return met
}

// maxFieldRelErr returns the worst per-field relative error of got against
// want over the interpolated fields.
func maxFieldRelErr(got, want mms.Metrics) float64 {
	var gf, wf [numFields]float64
	fieldsOf(got, &gf)
	fieldsOf(want, &wf)
	worst := 0.0
	for i := range gf {
		d := math.Abs(gf[i] - wf[i])
		if wf[i] != 0 {
			d /= math.Abs(wf[i])
		}
		worst = math.Max(worst, d)
	}
	return worst
}

func TestLookupAtNodesIsExact(t *testing.T) {
	s := smallSpec()
	g := buildSmall(t)
	for _, nt := range s.NT {
		for _, r := range s.R {
			for _, p := range s.PRemote {
				q := Query{K: 4, NT: nt, R: r, PRemote: p, Psw: 0.5}
				met, bound, st := g.Lookup(q, 0) // maxRel 0: only exact answers qualify
				if st != Hit {
					t.Fatalf("Lookup(%+v, 0) = %v, want Hit", q, st)
				}
				if bound != 0 {
					t.Errorf("Lookup(%+v) bound = %v, want 0 on a lattice node", q, bound)
				}
				if rel := maxFieldRelErr(met, solveRef(t, s, q)); rel > 1e-9 {
					t.Errorf("Lookup(%+v) diverges from fresh solve by %.3g", q, rel)
				}
				if met.Iterations != 0 {
					t.Errorf("interpolated Iterations = %d, want 0", met.Iterations)
				}
			}
		}
	}
}

func TestLookupWithinCertifiedBound(t *testing.T) {
	s := smallSpec()
	g := buildSmall(t)
	rng := rand.New(rand.NewSource(7))
	hits := 0
	for i := 0; i < 300; i++ {
		q := Query{
			K:       4,
			NT:      s.NT[rng.Intn(len(s.NT))],
			R:       s.R[0] + rng.Float64()*(s.R[len(s.R)-1]-s.R[0]),
			PRemote: s.PRemote[0] + rng.Float64()*(s.PRemote[len(s.PRemote)-1]-s.PRemote[0]),
			Psw:     0.5,
		}
		met, bound, st := g.Lookup(q, math.Inf(1))
		if st != Hit {
			t.Fatalf("Lookup(%+v, +Inf) = %v (bound %v), want Hit", q, st, bound)
		}
		if rel := maxFieldRelErr(met, solveRef(t, s, q)); rel > bound {
			t.Errorf("Lookup(%+v): relative error %.3g exceeds certified bound %.3g", q, rel, bound)
		}
		hits++
	}
	if hits == 0 {
		t.Fatal("no in-grid queries exercised")
	}
}

func TestLookupIneligible(t *testing.T) {
	g := buildSmall(t)
	for _, q := range []Query{
		{K: 8, NT: 4, R: 12, PRemote: 0.2, Psw: 0.5},  // K off-lattice
		{K: 4, NT: 3, R: 12, PRemote: 0.2, Psw: 0.5},  // NT off-lattice
		{K: 4, NT: 4, R: 42, PRemote: 0.2, Psw: 0.5},  // R out of range
		{K: 4, NT: 4, R: 12, PRemote: 0.05, Psw: 0.5}, // PRemote out of range
		{K: 4, NT: 4, R: 12, PRemote: 0.2, Psw: 0.6},  // Psw off the degenerate axis
		{K: 4, NT: 4, R: math.NaN(), PRemote: 0.2, Psw: 0.5},
	} {
		if _, _, st := g.Lookup(q, math.Inf(1)); st != Ineligible {
			t.Errorf("Lookup(%+v) = %v, want Ineligible", q, st)
		}
	}
}

func TestLookupBoundExceeded(t *testing.T) {
	g := buildSmall(t)
	q := Query{K: 4, NT: 4, R: 12.5, PRemote: 0.25, Psw: 0.5}
	_, bound, st := g.Lookup(q, 1e-12)
	if st != BoundExceeded {
		t.Fatalf("Lookup(%+v, 1e-12) = %v, want BoundExceeded", q, st)
	}
	if !(bound > 1e-12) {
		t.Errorf("reported bound = %v, want > 1e-12", bound)
	}
}

func TestLookupZeroAllocs(t *testing.T) {
	g := buildSmall(t)
	q := Query{K: 4, NT: 4, R: 12.5, PRemote: 0.25, Psw: 0.5}
	if n := testing.AllocsPerRun(200, func() {
		g.Lookup(q, math.Inf(1))
	}); n != 0 {
		t.Errorf("Lookup allocates %v per run, want 0", n)
	}
}

func TestRefineTightensBound(t *testing.T) {
	g := buildSmall(t)
	q := Query{K: 4, NT: 4, R: 12.5, PRemote: 0.25, Psw: 0.5}
	_, before, st := g.Lookup(q, math.Inf(1))
	if st != Hit {
		t.Fatalf("pre-refinement Lookup = %v, want Hit", st)
	}

	done := make(chan error, 1)
	r := NewRefiner(g, BuildOptions{})
	r.onRefined = func(cell int, err error) { done <- err }
	defer r.Close()
	if !r.Request(q) {
		t.Fatal("Request returned false for a fresh in-grid cell")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("refinement failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("refinement timed out")
	}

	met, after, st := g.Lookup(q, math.Inf(1))
	if st != Hit {
		t.Fatalf("post-refinement Lookup = %v, want Hit", st)
	}
	if !(after < before) {
		t.Errorf("refined bound %v, want tighter than %v", after, before)
	}
	if rel := maxFieldRelErr(met, solveRef(t, smallSpec(), q)); rel > after {
		t.Errorf("refined answer off by %.3g, certified %.3g", rel, after)
	}
	if g.Refined() != 1 {
		t.Errorf("Refined() = %d, want 1", g.Refined())
	}
	// A second request for the same cell is a no-op.
	if r.Request(q) {
		t.Error("Request succeeded on an already-refined cell")
	}
}

func TestRefinerClosedRejects(t *testing.T) {
	g := buildSmall(t)
	r := NewRefiner(g, BuildOptions{})
	r.Close()
	r.Close() // idempotent
	if r.Request(Query{K: 4, NT: 4, R: 12.5, PRemote: 0.25, Psw: 0.5}) {
		t.Error("Request succeeded on a closed refiner")
	}
}

func TestSpecValidate(t *testing.T) {
	base := smallSpec()
	mutate := func(f func(*Spec)) Spec {
		s := base
		s.K = append([]int(nil), base.K...)
		s.NT = append([]int(nil), base.NT...)
		s.R = append([]float64(nil), base.R...)
		s.PRemote = append([]float64(nil), base.PRemote...)
		s.Psw = append([]float64(nil), base.Psw...)
		f(&s)
		return s
	}
	cases := []struct {
		name  string
		spec  Spec
		field string
	}{
		{"empty solver", mutate(func(s *Spec) { s.Solver = "" }), "Solver"},
		{"negative L", mutate(func(s *Spec) { s.MemoryTime = -1 }), "MemoryTime"},
		{"empty NT", mutate(func(s *Spec) { s.NT = nil }), "NT"},
		{"K below 2", mutate(func(s *Spec) { s.K = []int{1} }), "K"},
		{"unsorted R", mutate(func(s *Spec) { s.R = []float64{10, 10} }), "R"},
		{"PRemote above 1", mutate(func(s *Spec) { s.PRemote = []float64{0.5, 1.5} }), "PRemote"},
		{"Psw zero", mutate(func(s *Spec) { s.Psw = []float64{0} }), "Psw"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
			continue
		}
		if got := validate.Field(err); got != tc.field {
			t.Errorf("%s: offending field %q, want %q (err: %v)", tc.name, got, tc.field, err)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := DefaultSpec().Validate(); err != nil {
		t.Errorf("DefaultSpec rejected: %v", err)
	}
}

func TestBoundsNeverServeNonPositiveCells(t *testing.T) {
	// All metrics of the paper's model are strictly positive on this grid,
	// so every cell must carry a finite bound; this pins the +Inf escape
	// hatch to what it is — an escape hatch.
	g := buildSmall(t)
	for i := 0; i < g.Cells(); i++ {
		if math.IsInf(g.CellBound(i), 1) {
			t.Errorf("cell %d has +Inf bound on an all-positive grid", i)
		}
	}
}
