package surrogate

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
)

// On-disk grid format (all integers little-endian, all floats IEEE 754 bits):
//
//	magic "LTSG" | u32 format version
//	spec: str Solver | f64 MemoryTime | f64 SwitchTime
//	      | axis K (u32 n, i64 each) | axis NT
//	      | axis R (u32 n, f64 each) | axis PRemote | axis Psw
//	u32 numFields | u64 len(vals) | f64 each
//	u64 len(bounds) | f64 each | u64 len(curvs) | f64 each
//
// The encoding is a pure function of the grid: fixed field order, no maps,
// no timestamps, floats written as exact bit patterns. Two builds of the same
// spec by the same solver version produce byte-identical artifacts — the
// property the nightly determinism job asserts, and what makes the content
// address (sha256 of these bytes) stable.

const (
	gridMagic = "LTSG"
	// FormatVersion is the grid encoding version. Bump on any layout change;
	// old artifacts then fail to load with ErrVersion and are rebuilt.
	FormatVersion = 1
)

// ErrCorrupt marks an artifact that cannot be decoded: wrong magic,
// truncated, trailing bytes, or failing its own checksum.
var ErrCorrupt = errors.New("corrupt or truncated artifact")

// ErrVersion marks an artifact written by a different format or solver
// version. It is not an error in the data — just not trustworthy now.
var ErrVersion = errors.New("artifact version mismatch")

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// appendSpec encodes a spec deterministically; it is both the persisted
// header and the content hashed by Spec.Hash.
func appendSpec(b []byte, s Spec) []byte {
	b = append(b, gridMagic...)
	b = appendU32(b, FormatVersion)
	b = appendStr(b, s.Solver)
	b = appendF64(b, s.MemoryTime)
	b = appendF64(b, s.SwitchTime)
	for _, ax := range [][]int{s.K, s.NT} {
		b = appendU32(b, uint32(len(ax)))
		for _, v := range ax {
			b = appendU64(b, uint64(int64(v)))
		}
	}
	for _, ax := range [][]float64{s.R, s.PRemote, s.Psw} {
		b = appendU32(b, uint32(len(ax)))
		for _, v := range ax {
			b = appendF64(b, v)
		}
	}
	return b
}

// Hash returns the hex sha256 of the spec's canonical encoding. Because the
// encoding leads with the format version and the spec carries the solver
// version, the hash names exactly one reproducible artifact.
func (s Spec) Hash() string {
	sum := sha256.Sum256(appendSpec(nil, s))
	return hex.EncodeToString(sum[:])
}

// RefName returns the store ref name a grid of this spec is linked under.
func (s Spec) RefName() string { return "grid-" + s.Hash()[:16] }

// Encode serializes the grid. The output is byte-identical across builds of
// the same spec (deterministic solves, deterministic layout).
func (g *Grid) Encode() []byte {
	n := len(g.vals) + len(g.bounds) + len(g.curvs)
	b := make([]byte, 0, 128+16*len(g.spec.R)+8*n)
	b = appendSpec(b, g.spec)
	b = appendU32(b, numFields)
	b = appendU64(b, uint64(len(g.vals)))
	for _, v := range g.vals {
		b = appendF64(b, v)
	}
	b = appendU64(b, uint64(len(g.bounds)))
	for _, v := range g.bounds {
		b = appendF64(b, v)
	}
	b = appendU64(b, uint64(len(g.curvs)))
	for _, v := range g.curvs {
		b = appendF64(b, v)
	}
	return b
}

// reader is a cursor over an encoded artifact that latches the first
// truncation instead of panicking; callers check err once at the end of a
// fixed-layout section.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) || n < 0 {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrCorrupt, n, r.off, len(r.b)-r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if s := r.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := r.u32()
	if n > 1<<10 {
		r.err = fmt.Errorf("%w: string length %d", ErrCorrupt, n)
		return ""
	}
	return string(r.take(int(n)))
}

// maxAxisLen rejects absurd axis lengths before they size an allocation.
const maxAxisLen = 1 << 16

func (r *reader) intAxis() []int {
	n := r.u32()
	if n > maxAxisLen {
		r.err = fmt.Errorf("%w: axis length %d", ErrCorrupt, n)
		return nil
	}
	out := make([]int, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		out = append(out, int(int64(r.u64())))
	}
	return out
}

func (r *reader) floatAxis() []float64 {
	n := r.u32()
	if n > maxAxisLen {
		r.err = fmt.Errorf("%w: axis length %d", ErrCorrupt, n)
		return nil
	}
	out := make([]float64, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		out = append(out, r.f64())
	}
	return out
}

func (r *reader) floats(want int) []float64 {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if int(n) != want {
		r.err = fmt.Errorf("%w: section holds %d floats, spec implies %d", ErrCorrupt, n, want)
		return nil
	}
	out := make([]float64, 0, want)
	for i := 0; i < want && r.err == nil; i++ {
		out = append(out, r.f64())
	}
	return out
}

// Decode parses an encoded grid, distinguishing version mismatches
// (ErrVersion — rebuild) from corruption (ErrCorrupt — rebuild and warn
// louder). The decoded grid revalidates its spec and all section lengths;
// trailing bytes are corruption, never ignored.
func Decode(data []byte) (*Grid, error) {
	r := &reader{b: data}
	if string(r.take(len(gridMagic))) != gridMagic {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("%w: bad magic, not a surrogate grid", ErrCorrupt)
	}
	if v := r.u32(); r.err == nil && v != FormatVersion {
		return nil, fmt.Errorf("%w: grid format v%d, this build reads v%d", ErrVersion, v, FormatVersion)
	}
	var spec Spec
	spec.Solver = r.str()
	spec.MemoryTime = r.f64()
	spec.SwitchTime = r.f64()
	spec.K = r.intAxis()
	spec.NT = r.intAxis()
	spec.R = r.floatAxis()
	spec.PRemote = r.floatAxis()
	spec.Psw = r.floatAxis()
	if r.err != nil {
		return nil, r.err
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: decoded spec invalid: %v", ErrCorrupt, err)
	}
	if nf := r.u32(); r.err == nil && nf != numFields {
		return nil, fmt.Errorf("%w: grid has %d fields per node, this build reads %d", ErrVersion, nf, numFields)
	}
	g := &Grid{spec: spec}
	g.vals = r.floats(spec.nodes() * numFields)
	g.bounds = r.floats(spec.cells())
	g.curvs = r.floats(spec.cells())
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-r.off)
	}
	return g, nil
}
