package surrogate

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := buildSmall(t)
	data := g.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got.Encode(), data) {
		t.Error("re-encoded grid differs from the original bytes")
	}
	if got.Nodes() != g.Nodes() || got.Cells() != g.Cells() {
		t.Errorf("decoded shape (%d nodes, %d cells), want (%d, %d)",
			got.Nodes(), got.Cells(), g.Nodes(), g.Cells())
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	a := buildSmall(t)
	b := buildSmall(t)
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Error("two builds of the same spec produce different bytes")
	}
}

func TestSaveLoadGrid(t *testing.T) {
	s := newTestStore(t)
	g := buildSmall(t)
	h, err := SaveGrid(s, g)
	if err != nil {
		t.Fatalf("SaveGrid: %v", err)
	}
	if got, err := s.Resolve(g.Spec().RefName()); err != nil || got != h {
		t.Fatalf("Resolve = (%q, %v), want (%q, nil)", got, err, h)
	}
	loaded, err := LoadGrid(s, smallSpec())
	if err != nil {
		t.Fatalf("LoadGrid: %v", err)
	}
	if !bytes.Equal(loaded.Encode(), g.Encode()) {
		t.Error("loaded grid differs from the saved one")
	}
}

func TestLoadGridMissingIsNotExist(t *testing.T) {
	if _, err := LoadGrid(newTestStore(t), smallSpec()); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("LoadGrid on empty store = %v, want fs.ErrNotExist", err)
	}
}

func TestSolverVersionChangesRefName(t *testing.T) {
	// A grid persisted by a different solver version must be invisible to
	// this one: the spec hash — and so the ref name — moves with the tag.
	s := newTestStore(t)
	old := smallSpec()
	old.Solver = "amva/0-test"
	g, err := Build(old, BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := SaveGrid(s, g); err != nil {
		t.Fatalf("SaveGrid: %v", err)
	}
	if _, err := LoadGrid(s, smallSpec()); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("LoadGrid under a new solver version = %v, want fs.ErrNotExist (cold start)", err)
	}
}

// corruptBlob flips one byte in the middle of the stored blob for spec's ref.
func corruptBlob(t *testing.T, s *Store, spec Spec) {
	t.Helper()
	h, err := s.Resolve(spec.RefName())
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	path := filepath.Join(s.Dir(), "blobs", h)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

func TestLoadGridCorruptBlob(t *testing.T) {
	s := newTestStore(t)
	if _, err := SaveGrid(s, buildSmall(t)); err != nil {
		t.Fatalf("SaveGrid: %v", err)
	}
	corruptBlob(t, s, smallSpec())
	if _, err := LoadGrid(s, smallSpec()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("LoadGrid on corrupt blob = %v, want ErrCorrupt", err)
	}
}

func TestLoadGridTruncatedBlob(t *testing.T) {
	s := newTestStore(t)
	if _, err := SaveGrid(s, buildSmall(t)); err != nil {
		t.Fatalf("SaveGrid: %v", err)
	}
	h, _ := s.Resolve(smallSpec().RefName())
	path := filepath.Join(s.Dir(), "blobs", h)
	if err := os.Truncate(path, 100); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if _, err := LoadGrid(s, smallSpec()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("LoadGrid on truncated blob = %v, want ErrCorrupt", err)
	}
}

func TestLoadGridCorruptRef(t *testing.T) {
	s := newTestStore(t)
	spec := smallSpec()
	path := filepath.Join(s.Dir(), "refs", spec.RefName())
	if err := os.WriteFile(path, []byte("not a hash\n"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := LoadGrid(s, spec); !errors.Is(err, ErrCorrupt) {
		t.Errorf("LoadGrid on corrupt ref = %v, want ErrCorrupt", err)
	}
}

func TestDecodeVersionMismatch(t *testing.T) {
	data := buildSmall(t).Encode()
	// The u32 format version sits right after the 4-byte magic.
	data[len(gridMagic)] = 99
	if _, err := Decode(data); !errors.Is(err, ErrVersion) {
		t.Errorf("Decode with format v99 = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := append(buildSmall(t).Encode(), 0xde, 0xad)
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Decode with trailing bytes = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsWrongMagic(t *testing.T) {
	if _, err := Decode([]byte("JUNKdata and more")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Decode of junk = %v, want ErrCorrupt", err)
	}
}

func TestOpenGridColdBuildsSilently(t *testing.T) {
	s := newTestStore(t)
	var logs []string
	logf := func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) }
	g, err := OpenGrid(s, smallSpec(), logf)
	if err != nil {
		t.Fatalf("OpenGrid: %v", err)
	}
	if g == nil || g.Nodes() == 0 {
		t.Fatal("OpenGrid returned no grid")
	}
	if len(logs) != 0 {
		t.Errorf("cold OpenGrid warned: %q", logs)
	}
	// The rebuilt grid was persisted: a second open loads identical bytes.
	g2, err := OpenGrid(s, smallSpec(), logf)
	if err != nil {
		t.Fatalf("second OpenGrid: %v", err)
	}
	if !bytes.Equal(g.Encode(), g2.Encode()) {
		t.Error("reloaded grid differs from the built one")
	}
}

func TestOpenGridWarnsAndRebuildsOnCorruption(t *testing.T) {
	s := newTestStore(t)
	g, err := OpenGrid(s, smallSpec(), nil)
	if err != nil {
		t.Fatalf("OpenGrid: %v", err)
	}
	corruptBlob(t, s, smallSpec())
	var logs []string
	logf := func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) }
	g2, err := OpenGrid(s, smallSpec(), logf)
	if err != nil {
		t.Fatalf("OpenGrid after corruption: %v", err)
	}
	if !bytes.Equal(g.Encode(), g2.Encode()) {
		t.Error("rebuilt grid differs from the original build")
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "rebuilding cold") {
			found = true
		}
	}
	if !found {
		t.Errorf("no corruption warning logged, got %q", logs)
	}
	// The rebuild re-persisted a good blob.
	if _, err := LoadGrid(s, smallSpec()); err != nil {
		t.Errorf("LoadGrid after rebuild: %v", err)
	}
}

func TestStoreRejectsBadRefNames(t *testing.T) {
	s := newTestStore(t)
	h, err := s.Put([]byte("x"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	for _, name := range []string{"", "../escape", "a/b", ".hidden", strings.Repeat("x", 200)} {
		if err := s.Link(name, h); err == nil {
			t.Errorf("Link(%q) accepted", name)
		}
		if _, err := s.Resolve(name); err == nil {
			t.Errorf("Resolve(%q) accepted", name)
		}
	}
}
