package surrogate

import (
	"math"
	"sync"

	"lattol/internal/mms"
)

// Cell refinement: when a query lands in a cell whose certified bound is
// wider than the client asked for, the caller solves exactly (correctness is
// never at stake) and may hand the cell to a Refiner. The Refiner solves a
// one-level 3×3×3 midpoint sub-lattice over the cell (27 nodes, one batch),
// splitting it into 8 subcells with their own corner spreads. Halving the
// step along each axis quarters the curvature margin, so a smooth cell's
// certified bound shrinks ~4x per refinement level; one level is enough to
// move most of the paper's surface under a 1e-2..1e-3 tolerance ask.
//
// Refined overlays are published copy-on-write through an atomic map pointer:
// lookups stay lock-free and allocation-free, and a cell is refined at most
// once (further misses keep falling through to the exact solver, which is
// the correct answer anyway).

// overlay is one refined cell: the sub-lattice values in (r, p, s) row-major
// order with stride 3, and the 8 subcell relative bounds.
type overlay struct {
	vals   [27 * numFields]float64
	bounds [8]float64
}

// lookup interpolates within the refined cell. The incoming fractions are
// cell-relative; they split into a subcell choice plus subcell-relative
// fractions.
func (ov *overlay) lookup(fr, fp, fs, maxRel float64) (mms.Metrics, float64, Status) {
	br, fr2 := splitHalf(fr)
	bp, fp2 := splitHalf(fp)
	bs, fs2 := splitHalf(fs)
	bound := ov.bounds[(br*2+bp)*2+bs]
	if !(bound <= maxRel) {
		return mms.Metrics{}, bound, BoundExceeded
	}
	base := (br*3+bp)*3 + bs
	met := interp3(ov.vals[:], base, 9, 3, 1, fr2, fp2, fs2)
	return met, bound, Hit
}

// splitHalf maps a cell fraction to (subcell index, subcell fraction).
func splitHalf(f float64) (int, float64) {
	if f <= 0.5 {
		return 0, 2 * f
	}
	return 1, 2*f - 1
}

// subAxis returns the (lo, mid, hi) axis values of a cell along one axis; a
// degenerate axis repeats its single value.
func subAxis(vals []float64, c int) [3]float64 {
	if len(vals) == 1 {
		return [3]float64{vals[0], vals[0], vals[0]}
	}
	lo, hi := vals[c], vals[c+1]
	return [3]float64{lo, lo + 0.5*(hi-lo), hi}
}

// cellCoords inverts cellIndex.
func (g *Grid) cellCoords(cell int) (ki, ni, cr, cp, cs int) {
	s := &g.spec
	cR, cP, cS := cellsPerAxis(len(s.R)), cellsPerAxis(len(s.PRemote)), cellsPerAxis(len(s.Psw))
	cs = cell % cS
	cell /= cS
	cp = cell % cP
	cell /= cP
	cr = cell % cR
	cell /= cR
	ni = cell % len(s.NT)
	ki = cell / len(s.NT)
	return
}

// refineCell solves the midpoint sub-lattice of one cell and derives the 8
// subcell bounds with the same cell-local machinery as computeBounds, run on
// the sub-lattice: corner spread, edge monotonicity, and a curvature margin
// from the sub-lattice's own second differences (three nodes per axis give
// one triple per corner line, at half the parent step — so the margin
// naturally lands near a quarter of the parent's). Each subcell bound is
// additionally capped at the parent cell's bound, which remains valid on
// every subcell, so refinement can never loosen what the grid already
// certified.
func (g *Grid) refineCell(cell int, opts BuildOptions) (*overlay, error) {
	ki, ni, cr, cp, cs := g.cellCoords(cell)
	rv := subAxis(g.spec.R, cr)
	pv := subAxis(g.spec.PRemote, cp)
	sv := subAxis(g.spec.Psw, cs)
	var items [27]mms.BatchItem
	for ir := 0; ir < 3; ir++ {
		for ip := 0; ip < 3; ip++ {
			for is := 0; is < 3; is++ {
				items[(ir*3+ip)*3+is] = mms.BatchItem{Config: mms.Config{
					K:          g.spec.K[ki],
					Threads:    g.spec.NT[ni],
					Runlength:  rv[ir],
					MemoryTime: g.spec.MemoryTime,
					SwitchTime: g.spec.SwitchTime,
					PRemote:    pv[ip],
					Psw:        sv[is],
				}}
			}
		}
	}
	results := mms.SolveBatch(items[:], mms.SolveOptions{
		Tolerance:     opts.Tolerance,
		MaxIterations: opts.MaxIterations,
		Workspace:     new(mms.Workspace),
	})
	ov := new(overlay)
	var f [numFields]float64
	for i, res := range results {
		if res.Err != nil {
			return nil, res.Err
		}
		fieldsOf(res.Metrics, &f)
		copy(ov.vals[i*numFields:(i+1)*numFields], f[:])
	}
	sub := func(fi, ir, ip, is int) float64 {
		return ov.vals[((ir*3+ip)*3+is)*numFields+fi]
	}
	// Monotonicity slack from the sub-lattice magnitude, as in computeBounds.
	var slack [numFields]float64
	for fi := 0; fi < numFields; fi++ {
		scale := 0.0
		for i := 0; i < 27; i++ {
			if a := math.Abs(ov.vals[i*numFields+fi]); a > scale {
				scale = a
			}
		}
		slack[fi] = monoSlack * scale
	}
	degenerate := [3]bool{len(g.spec.R) == 1, len(g.spec.PRemote) == 1, len(g.spec.Psw) == 1}
	parent := g.bounds[cell]
	for br := 0; br < 2; br++ {
		for bp := 0; bp < 2; bp++ {
			for bs := 0; bs < 2; bs++ {
				blo := [3]int{br, bp, bs}
				at := func(fi, ax, t, du, dw int) float64 {
					switch ax {
					case 0:
						return sub(fi, t, bp+du, bs+dw)
					case 1:
						return sub(fi, br+du, t, bs+dw)
					default:
						return sub(fi, br+du, bp+dw, t)
					}
				}
				worst := 0.0
				for fi := 0; fi < numFields; fi++ {
					mn, mx := math.Inf(1), math.Inf(-1)
					for dr := 0; dr < 2; dr++ {
						for dp := 0; dp < 2; dp++ {
							for ds := 0; ds < 2; ds++ {
								v := sub(fi, br+dr, bp+dp, bs+ds)
								mn = math.Min(mn, v)
								mx = math.Max(mx, v)
							}
						}
					}
					spread := mx - mn

					monotone := true
					curvSum := 0.0
					for ax := 0; ax < 3; ax++ {
						if degenerate[ax] {
							continue
						}
						dir, maxD2 := 0.0, 0.0
						for du := 0; du < 2; du++ {
							for dw := 0; dw < 2; dw++ {
								d := at(fi, ax, blo[ax]+1, du, dw) - at(fi, ax, blo[ax], du, dw)
								if math.Abs(d) > math.Abs(dir) {
									dir = d
								}
							}
						}
						for du := 0; du < 2; du++ {
							for dw := 0; dw < 2; dw++ {
								d := at(fi, ax, blo[ax]+1, du, dw) - at(fi, ax, blo[ax], du, dw)
								if d*dir < 0 && math.Abs(d) > slack[fi] {
									monotone = false
								}
								d2 := math.Abs(at(fi, ax, 0, du, dw) - 2*at(fi, ax, 1, du, dw) + at(fi, ax, 2, du, dw))
								if d2 > maxD2 {
									maxD2 = d2
								}
							}
						}
						curvSum += maxD2
					}
					abs := 0.25 * curvSum

					var b float64
					if monotone {
						b = math.Min(spread, abs)
					} else {
						b = spread + abs
					}
					rel := math.Inf(1)
					if b == 0 {
						rel = 0
					} else if mn > 0 {
						rel = b / mn
					}
					worst = math.Max(worst, rel)
				}
				ov.bounds[(br*2+bp)*2+bs] = math.Min(worst, parent)
			}
		}
	}
	return ov, nil
}

// publish installs a refined overlay copy-on-write; concurrent lookups see
// either the old map or the new one, never a partial state.
func (g *Grid) publish(cell int, ov *overlay) {
	for {
		old := g.refined.Load()
		var m map[int]*overlay
		if old == nil {
			m = map[int]*overlay{cell: ov}
		} else {
			m = make(map[int]*overlay, len(*old)+1)
			for k, v := range *old {
				m[k] = v
			}
			m[cell] = ov
		}
		if g.refined.CompareAndSwap(old, &m) {
			return
		}
	}
}

// Refined reports how many cells carry a refinement overlay.
func (g *Grid) Refined() int {
	if m := g.refined.Load(); m != nil {
		return len(*m)
	}
	return 0
}

// Refiner refines cells in the background, one at a time, deduplicating
// requests. Request never blocks the serving path: a full queue or duplicate
// request is simply dropped (the exact solver already answered the client).
type Refiner struct {
	g    *Grid
	opts BuildOptions

	mu      sync.Mutex
	ch      chan int
	pending map[int]struct{}
	closed  bool
	wg      sync.WaitGroup

	// onRefined, when set before the first Request, observes each completed
	// refinement (tests).
	onRefined func(cell int, err error)
}

// NewRefiner starts the background refinement worker for a grid.
func NewRefiner(g *Grid, opts BuildOptions) *Refiner {
	r := &Refiner{
		g:       g,
		opts:    opts,
		ch:      make(chan int, 64),
		pending: make(map[int]struct{}),
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Request asks for the cell containing q to be refined. It returns false —
// without blocking — when the query is outside the grid, the cell is already
// refined or queued, the queue is full, or the refiner is closed.
func (r *Refiner) Request(q Query) bool {
	cell, ok := r.g.cellOf(q)
	if !ok {
		return false
	}
	if m := r.g.refined.Load(); m != nil {
		if _, done := (*m)[cell]; done {
			return false
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	if _, dup := r.pending[cell]; dup {
		return false
	}
	select {
	case r.ch <- cell:
		r.pending[cell] = struct{}{}
		return true
	default:
		return false
	}
}

func (r *Refiner) loop() {
	defer r.wg.Done()
	for cell := range r.ch {
		ov, err := r.g.refineCell(cell, r.opts)
		if err == nil {
			r.g.publish(cell, ov)
		}
		r.mu.Lock()
		delete(r.pending, cell)
		hook := r.onRefined
		r.mu.Unlock()
		if hook != nil {
			hook(cell, err)
		}
	}
}

// Close stops the worker after draining queued requests and waits for it.
// Safe to call more than once.
func (r *Refiner) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.ch)
	}
	r.mu.Unlock()
	r.wg.Wait()
}
