package surrogate

import (
	"context"
	"math"
	"testing"

	"lattol/internal/eval"
	"lattol/internal/mms"
)

var (
	_ eval.Evaluator      = (*Evaluator)(nil)
	_ eval.BatchEvaluator = (*eval.Solver)(nil)
)

// gridCfg is an in-cell configuration the small grid covers.
func gridCfg() mms.Config {
	cfg := mms.DefaultConfig()
	cfg.Threads = 4
	cfg.Runlength = 12
	cfg.PRemote = 0.25
	cfg.Psw = 0.5
	return cfg
}

// TestEvaluatorHit verifies the grid tier answers eligible loose-bound
// requests with a certified approximation instead of a solve.
func TestEvaluatorHit(t *testing.T) {
	e := NewEvaluator(buildSmall(t), failEvaluator{t})
	got, err := e.Evaluate(context.Background(), eval.Config{Model: gridCfg()}, eval.Options{MaxError: 0.5})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if got.Bound <= 0 || got.Bound > 0.5 {
		t.Errorf("Bound = %v, want in (0, 0.5]", got.Bound)
	}
	if got.Solves != 0 {
		t.Errorf("Solves = %d, want 0 for a grid hit", got.Solves)
	}
	exact, err := mms.Solve(gridCfg())
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(got.Up - exact.Up)
	if exact.Up != 0 {
		rel /= math.Abs(exact.Up)
	}
	if rel > got.Bound {
		t.Errorf("Up off by %v, beyond certified bound %v", rel, got.Bound)
	}
}

// TestEvaluatorFallThrough verifies every request the grid cannot certify
// reaches the next evaluator: exact requests, tolerance-index requests,
// ineligible configurations, and out-of-grid points.
func TestEvaluatorFallThrough(t *testing.T) {
	offGrid := gridCfg()
	offGrid.Runlength = 100 // outside the small grid's R axis

	ineligible := gridCfg()
	ineligible.ContextSwitch = 1

	cases := []struct {
		name string
		cfg  mms.Config
		opts eval.Options
	}{
		{"exact", gridCfg(), eval.Options{}},
		{"tolerance", gridCfg(), eval.Options{MaxError: 0.5, TolNetwork: true}},
		{"ineligible", ineligible, eval.Options{MaxError: 0.5}},
		{"out-of-grid", offGrid, eval.Options{MaxError: 0.5}},
		{"tight-bound", gridCfg(), eval.Options{MaxError: 1e-12}},
	}
	grid := buildSmall(t)
	solver := eval.NewSolver()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEvaluator(grid, solver)
			got, err := e.Evaluate(context.Background(), eval.Config{Model: tc.cfg}, tc.opts)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if got.Solves == 0 {
				t.Error("request served from grid, want fall-through to solver")
			}
			if got.Bound != 0 {
				t.Errorf("Bound = %v, want 0 from the exact tier", got.Bound)
			}
		})
	}
}

// TestEvaluatorNilGrid verifies a nil grid degenerates to the next tier.
func TestEvaluatorNilGrid(t *testing.T) {
	e := NewEvaluator(nil, eval.NewSolver())
	got, err := e.Evaluate(context.Background(), eval.Config{Model: gridCfg()}, eval.Options{MaxError: 0.5})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if got.Solves == 0 {
		t.Error("nil grid served a hit")
	}
}

// failEvaluator fails the test if reached.
type failEvaluator struct{ t *testing.T }

func (f failEvaluator) Evaluate(context.Context, eval.Config, eval.Options) (eval.Metrics, error) {
	f.t.Fatal("fell through to next evaluator; want grid hit")
	return eval.Metrics{}, nil
}
