// Package surrogate answers solve requests by interpolation instead of
// iteration: a dense golden grid of converged AMVA solutions is precomputed
// once (through the mms batch kernel), and a query inside the grid is served
// by multilinear interpolation over the cell that contains it — a few hundred
// nanoseconds and zero allocations instead of a solver run.
//
// What makes the tier usable at all is that every answer carries a certified
// relative error bound. The paper's surfaces (Figures 4–7) are smooth and
// coordinate-wise monotone in the thread count, runlength and remote fraction
// — the same structure the conformance suite's monotonicity checks pin down —
// and for a coordinate-wise monotone function both the true value and the
// multilinear interpolant lie between the smallest and largest cell corner.
// The per-cell corner spread is therefore a rigorous bound on the
// interpolation error; a curvature margin estimated from lattice second
// differences tightens it on smooth cells and widens it where a lattice line
// is not monotone (see bounds.go for the derivation). A client states its
// tolerance as a relative max_error; the grid serves the query only when the
// cell's certified bound is within it, and reports BoundExceeded otherwise so
// the caller can fall back to the exact solver and request refinement of the
// offending cell (see refine.go).
//
// Grids persist to disk under content-addressed, versioned keys (store.go):
// restarts are warm, and a grid built by a different solver version is never
// trusted.
package surrogate

import (
	"fmt"
	"math"
	"sync/atomic"

	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/validate"
)

// numFields is the number of interpolated metric fields per grid node; see
// fieldsOf for the order.
const numFields = 9

// fieldsOf flattens the interpolated metrics into the grid's field order.
func fieldsOf(m mms.Metrics, out *[numFields]float64) {
	out[0] = m.Up
	out[1] = m.LambdaProc
	out[2] = m.LambdaNet
	out[3] = m.SObs
	out[4] = m.LObs
	out[5] = m.CycleTime
	out[6] = m.MemUtilization
	out[7] = m.OutUtilization
	out[8] = m.InUtilization
}

// metricsOf is the inverse of fieldsOf. Iterations is zero: an interpolated
// answer runs no solver.
func metricsOf(f *[numFields]float64) mms.Metrics {
	return mms.Metrics{
		Up:             f[0],
		LambdaProc:     f[1],
		LambdaNet:      f[2],
		SObs:           f[3],
		LObs:           f[4],
		CycleTime:      f[5],
		MemUtilization: f[6],
		OutUtilization: f[7],
		InUtilization:  f[8],
	}
}

// Spec defines a grid: the five lattice axes (k, n_t, R, p_remote, p_sw) and
// the parameters held fixed across the whole grid. Everything else about the
// model is pinned to the paper's defaults — geometric access pattern with
// per-distance normalization, zero context-switch overhead, single-ported
// memory and switches, symmetric AMVA — and the serving layer only routes a
// request to the grid when its canonical key matches those defaults.
//
// K and NT are exact-match axes (integer knobs are not interpolated); R,
// PRemote and Psw are interpolation axes. All axes must be strictly
// increasing.
type Spec struct {
	// Solver is the solver-version tag the grid values were computed by
	// (mva.SolverVersion). It participates in the spec hash, so a solver
	// change orphans persisted grids instead of silently serving stale
	// numbers.
	Solver string

	// MemoryTime and SwitchTime are the fixed L and S of every node.
	MemoryTime float64
	SwitchTime float64

	K       []int
	NT      []int
	R       []float64
	PRemote []float64
	Psw     []float64
}

// DefaultSpec covers the paper's operating region (Figures 4–7) on the 4×4
// torus: every thread count of the figures, runlengths 5–30, the full
// p_remote sweep at cell width 0.05 and five locality settings.
func DefaultSpec() Spec {
	return Spec{
		Solver:     mva.SolverVersion,
		MemoryTime: 10,
		SwitchTime: 10,
		K:          []int{4},
		NT:         []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		R:          []float64{5, 10, 15, 20, 25, 30},
		PRemote: []float64{
			0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45,
			0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90,
		},
		Psw: []float64{0.2, 0.35, 0.5, 0.65, 0.8},
	}
}

// maxNodes bounds a grid build; beyond it the spec is rejected rather than
// silently consuming gigabytes.
const maxNodes = 1 << 22

// Validate reports the first invalid spec component as a field-named error.
func (s Spec) Validate() error {
	if s.Solver == "" {
		return validate.Fieldf("surrogate.Spec", "Solver", "is empty, want a solver version tag (mva.SolverVersion)")
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"MemoryTime", s.MemoryTime}, {"SwitchTime", s.SwitchTime}} {
		if p.v < 0 || math.IsNaN(p.v) || math.IsInf(p.v, 0) {
			return validate.Fieldf("surrogate.Spec", p.name, "= %v, want finite >= 0", p.v)
		}
	}
	if len(s.K) == 0 {
		return validate.Fieldf("surrogate.Spec", "K", "is empty")
	}
	for i, k := range s.K {
		if k < 2 {
			return validate.Fieldf("surrogate.Spec", "K", "[%d] = %d, want >= 2 (K = 1 has no network to interpolate)", i, k)
		}
		if i > 0 && k <= s.K[i-1] {
			return validate.Fieldf("surrogate.Spec", "K", "[%d] = %d, want strictly increasing", i, k)
		}
	}
	if len(s.NT) == 0 {
		return validate.Fieldf("surrogate.Spec", "NT", "is empty")
	}
	for i, nt := range s.NT {
		if nt < 1 {
			return validate.Fieldf("surrogate.Spec", "NT", "[%d] = %d, want >= 1", i, nt)
		}
		if i > 0 && nt <= s.NT[i-1] {
			return validate.Fieldf("surrogate.Spec", "NT", "[%d] = %d, want strictly increasing", i, nt)
		}
	}
	for _, ax := range []struct {
		name     string
		vals     []float64
		min, max float64
	}{
		{"R", s.R, math.SmallestNonzeroFloat64, math.MaxFloat64},
		{"PRemote", s.PRemote, math.SmallestNonzeroFloat64, 1},
		{"Psw", s.Psw, math.SmallestNonzeroFloat64, 1},
	} {
		if len(ax.vals) == 0 {
			return validate.Fieldf("surrogate.Spec", ax.name, "is empty")
		}
		for i, v := range ax.vals {
			if math.IsNaN(v) || v < ax.min || v > ax.max {
				return validate.Fieldf("surrogate.Spec", ax.name, "[%d] = %v, want in (0,%v]", i, v, ax.max)
			}
			if i > 0 && v <= ax.vals[i-1] {
				return validate.Fieldf("surrogate.Spec", ax.name, "[%d] = %v, want strictly increasing", i, v)
			}
		}
	}
	if n := s.nodes(); n > maxNodes {
		return validate.Fieldf("surrogate.Spec", "K", "spec has %d lattice nodes, want <= %d", n, maxNodes)
	}
	return nil
}

// nodes is the lattice node count.
func (s Spec) nodes() int {
	return len(s.K) * len(s.NT) * len(s.R) * len(s.PRemote) * len(s.Psw)
}

// cellsPerAxis returns the cell count along an axis of the given length; a
// single-value (exact-match) axis contributes one degenerate cell.
func cellsPerAxis(n int) int {
	if n <= 1 {
		return 1
	}
	return n - 1
}

// cells is the interpolation cell count.
func (s Spec) cells() int {
	return len(s.K) * len(s.NT) * cellsPerAxis(len(s.R)) * cellsPerAxis(len(s.PRemote)) * cellsPerAxis(len(s.Psw))
}

// config assembles the model configuration of one lattice node.
func (s Spec) config(ki, ni, ri, pi, si int) mms.Config {
	return mms.Config{
		K:          s.K[ki],
		Threads:    s.NT[ni],
		Runlength:  s.R[ri],
		MemoryTime: s.MemoryTime,
		SwitchTime: s.SwitchTime,
		PRemote:    s.PRemote[pi],
		Psw:        s.Psw[si],
	}
}

// Query is one lookup point. K and NT must equal a lattice value exactly; R,
// PRemote and Psw may lie anywhere inside their axis ranges.
type Query struct {
	K, NT           int
	R, PRemote, Psw float64
}

// Status classifies a lookup outcome.
type Status uint8

const (
	// Hit: the query is inside the grid and the cell's certified bound is
	// within the requested tolerance; the interpolated metrics are valid.
	Hit Status = iota
	// Ineligible: the query lies outside the lattice (axis value not
	// covered). The caller must solve.
	Ineligible
	// BoundExceeded: the query is inside the grid but the cell's certified
	// bound is wider than the requested tolerance. The caller must solve,
	// and may request refinement of the cell.
	BoundExceeded
)

func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Ineligible:
		return "ineligible"
	default:
		return "bound-exceeded"
	}
}

// Grid is an immutable precomputed lattice plus its certified per-cell error
// bounds. The only mutable state is the refinement overlay map, swapped
// atomically by a Refiner; Grid is safe for concurrent lookups.
type Grid struct {
	spec Spec

	// vals holds the converged metrics, node-major in the axis order
	// (K, NT, R, PRemote, Psw), numFields floats per node.
	vals []float64
	// bounds holds one certified relative error bound per cell (the maximum
	// over metric fields); +Inf marks a cell the grid refuses to serve.
	bounds []float64
	// curvs holds the per-cell relative curvature margin, kept so cell
	// refinement can scale it with the halved step (see refine.go).
	curvs []float64

	// refined maps cell index → one-level subdivision overlay. Copy-on-write:
	// lookups load the map pointer once and never lock.
	refined atomic.Pointer[map[int]*overlay]
}

// BuildOptions tunes a grid build. The zero value selects the solver
// defaults, which is what persisted grids must use: the build must be a pure
// function of the spec for content addressing to mean anything.
type BuildOptions struct {
	Tolerance     float64
	MaxIterations int
}

// Build solves every lattice node through the batch kernel (one lockstep
// batch per station shape, continuation-seeded in node order) and derives the
// per-cell certified bounds. Building the DefaultSpec grid (5400 nodes) takes
// well under a second.
func Build(spec Spec, opts BuildOptions) (*Grid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.nodes()
	items := make([]mms.BatchItem, 0, n)
	for ki := range spec.K {
		for ni := range spec.NT {
			for ri := range spec.R {
				for pi := range spec.PRemote {
					for si := range spec.Psw {
						items = append(items, mms.BatchItem{Config: spec.config(ki, ni, ri, pi, si)})
					}
				}
			}
		}
	}
	results := mms.SolveBatch(items, mms.SolveOptions{
		Tolerance:     opts.Tolerance,
		MaxIterations: opts.MaxIterations,
		Workspace:     new(mms.Workspace),
	})
	g := &Grid{spec: spec, vals: make([]float64, n*numFields)}
	var f [numFields]float64
	for i, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("surrogate: building node %d (%+v): %w", i, items[i].Config, res.Err)
		}
		fieldsOf(res.Metrics, &f)
		copy(g.vals[i*numFields:(i+1)*numFields], f[:])
	}
	g.bounds, g.curvs = computeBounds(spec, g.vals)
	return g, nil
}

// Spec returns the grid's spec. The slices are shared — callers must not
// mutate them.
func (g *Grid) Spec() Spec { return g.spec }

// Nodes returns the lattice node count.
func (g *Grid) Nodes() int { return g.spec.nodes() }

// Cells returns the interpolation cell count.
func (g *Grid) Cells() int { return g.spec.cells() }

// CellBound returns the certified relative bound of cell i (for tooling and
// tests; the serving path reads it through Lookup).
func (g *Grid) CellBound(i int) float64 { return g.bounds[i] }

// findInt returns the index of x in vals, or -1.
func findInt(vals []int, x int) int {
	for i, v := range vals {
		if v == x {
			return i
		}
	}
	return -1
}

// locate finds the cell-lo index and the in-cell fraction of x along an
// axis. A single-value axis requires an exact match (fraction 0); on a
// multi-value axis x must lie within [first, last].
func locate(vals []float64, x float64) (int, float64, bool) {
	n := len(vals)
	if n == 1 {
		if x == vals[0] {
			return 0, 0, true
		}
		return 0, 0, false
	}
	if !(x >= vals[0] && x <= vals[n-1]) { // NaN fails too
		return 0, 0, false
	}
	// Linear scan: axes hold at most a few dozen values, where a
	// branch-predictable scan beats binary search.
	i := 0
	for i+2 < n && x >= vals[i+1] {
		i++
	}
	return i, (x - vals[i]) / (vals[i+1] - vals[i]), true
}

// nodeIndex maps lattice coordinates to the node-major index.
func (g *Grid) nodeIndex(ki, ni, ri, pi, si int) int {
	s := &g.spec
	return (((ki*len(s.NT)+ni)*len(s.R)+ri)*len(s.PRemote)+pi)*len(s.Psw) + si
}

// cellIndex maps cell coordinates to the cell-major index.
func (g *Grid) cellIndex(ki, ni, cr, cp, cs int) int {
	s := &g.spec
	cR, cP, cS := cellsPerAxis(len(s.R)), cellsPerAxis(len(s.PRemote)), cellsPerAxis(len(s.Psw))
	_ = cR
	return (((ki*len(s.NT)+ni)*cR+cr)*cP+cp)*cS + cs
}

// cellOf locates the cell containing a query (for refinement requests).
func (g *Grid) cellOf(q Query) (int, bool) {
	ki := findInt(g.spec.K, q.K)
	ni := findInt(g.spec.NT, q.NT)
	if ki < 0 || ni < 0 {
		return 0, false
	}
	ri, _, okR := locate(g.spec.R, q.R)
	pi, _, okP := locate(g.spec.PRemote, q.PRemote)
	si, _, okS := locate(g.spec.Psw, q.Psw)
	if !okR || !okP || !okS {
		return 0, false
	}
	return g.cellIndex(ki, ni, ri, pi, si), true
}

// Lookup answers a query by multilinear interpolation when the certified
// relative error bound of the containing cell (or refined subcell) is within
// maxRel. It returns the interpolated metrics, the certified bound and the
// outcome status; on BoundExceeded the bound reports how tight the cell
// currently is, and on Ineligible it is zero. Lookup allocates nothing and
// takes a few hundred nanoseconds — the serving layer's sub-µs tier.
func (g *Grid) Lookup(q Query, maxRel float64) (mms.Metrics, float64, Status) {
	ki := findInt(g.spec.K, q.K)
	ni := findInt(g.spec.NT, q.NT)
	if ki < 0 || ni < 0 {
		return mms.Metrics{}, 0, Ineligible
	}
	ri, fr, okR := locate(g.spec.R, q.R)
	pi, fp, okP := locate(g.spec.PRemote, q.PRemote)
	si, fs, okS := locate(g.spec.Psw, q.Psw)
	if !okR || !okP || !okS {
		return mms.Metrics{}, 0, Ineligible
	}
	exact := (fr == 0 || fr == 1) && (fp == 0 || fp == 1) && (fs == 0 || fs == 1)
	cell := g.cellIndex(ki, ni, ri, pi, si)
	if m := g.refined.Load(); !exact && m != nil {
		if ov := (*m)[cell]; ov != nil {
			return ov.lookup(fr, fp, fs, maxRel)
		}
	}
	bound := g.bounds[cell]
	if exact {
		// The query sits on a lattice node: all interpolation weights are 0
		// or 1 and the answer reproduces a converged solve bit-for-bit.
		bound = 0
	}
	if !(bound <= maxRel) { // NaN/+Inf bounds are exceeded by construction
		return mms.Metrics{}, bound, BoundExceeded
	}
	s := &g.spec
	nR, nP, nS := len(s.R), len(s.PRemote), len(s.Psw)
	base := g.nodeIndex(ki, ni, ri, pi, si)
	// Strides to the hi corner per axis; zero on single-value axes (their
	// fraction is 0, so the hi corner carries no weight and must not step
	// out of bounds).
	dR, dP, dS := nP*nS, nS, 1
	if nR == 1 {
		dR = 0
	}
	if nP == 1 {
		dP = 0
	}
	if nS == 1 {
		dS = 0
	}
	met := interp3(g.vals, base, dR, dP, dS, fr, fp, fs)
	return met, bound, Hit
}

// interp3 trilinearly interpolates all metric fields from the 8 corners at
// base + {0,dR}+{0,dP}+{0,dS}, with fractions (fr, fp, fs) toward the hi
// corners. vals is node-major with numFields floats per node.
func interp3(vals []float64, base, dR, dP, dS int, fr, fp, fs float64) mms.Metrics {
	wR := [2]float64{1 - fr, fr}
	wP := [2]float64{1 - fp, fp}
	wS := [2]float64{1 - fs, fs}
	var acc [numFields]float64
	for cr := 0; cr < 2; cr++ {
		if wR[cr] == 0 {
			continue
		}
		for cp := 0; cp < 2; cp++ {
			if wP[cp] == 0 {
				continue
			}
			wrp := wR[cr] * wP[cp]
			for cs := 0; cs < 2; cs++ {
				w := wrp * wS[cs]
				if w == 0 {
					continue
				}
				off := (base + cr*dR + cp*dP + cs*dS) * numFields
				row := vals[off : off+numFields : off+numFields]
				for f, v := range row {
					acc[f] += w * v
				}
			}
		}
	}
	return metricsOf(&acc)
}
