package surrogate

import "math"

// This file derives the certified per-cell error bounds.
//
// The multilinear interpolant I over a cell is a convex combination of the
// 2^d corner values, so min(corners) <= I <= max(corners) everywhere in the
// cell. When the true surface f is coordinate-wise monotone along each
// interpolation axis across the cell box — checked on the lattice with a
// small relative slack — f is likewise trapped between the corner extremes:
// walking from any interior point to a corner one coordinate at a time moves
// f monotonically, ending at the minimizing (resp. maximizing) corner. Both I
// and f in [min, max] gives the rigorous bound
//
//	|I - f| <= spread = max(corners) - min(corners).
//
// For a positive field, dividing by min(corners) <= f turns it into a
// relative bound: |I - f| / f <= spread / min(corners).
//
// Two refinements, both conservative and both strictly cell-local — an early
// version assessed monotonicity and curvature over the whole (k, n_t) plane,
// which let one coarse axis (R, step 5) bleed its curvature into every cell
// and pushed even tight p_remote cells past any useful tolerance:
//
//  1. Curvature margin. On a smooth cell the spread wildly overestimates the
//     interpolation error, which scales with the second derivative:
//     |I - f| <= sum_axis h_a² max|∂²f/∂x_a²| / 8 for linear interpolation
//     axis by axis. The lattice second difference v[t-1] - 2v[t] + v[t+1]
//     estimates h² ∂²f; per axis we take the max over the (at most two)
//     triples whose support overlaps the cell interval, evaluated on each of
//     the cell's corner lines, and double the 1/8 factor to 1/4, absorbing
//     the gap between a finite difference and a true derivative bound.
//     Monotone cells certify min(spread, curvature): the spread is rigorous,
//     the curvature term tightens it where the surface is flat but tilted.
//
//  2. Non-monotone cells. If any cell edge along an axis opposes the
//     direction of the cell's other edges on that axis (beyond the slack),
//     the corner-trapping argument fails for f — the surface may hump
//     between corners. The bound degrades to spread + curvature, the corner
//     envelope widened by the estimated overshoot of the hump.
//
// A cell whose smallest corner is not strictly positive gets a +Inf bound
// (no relative statement is possible) and is simply never served.

// monoSlack is the relative slack for monotonicity detection, mirroring
// conformance.DefaultBands().Monotone: adjacent converged values closer than
// this are numerically equal, not a direction change.
const monoSlack = 1e-6

// computeBounds derives the per-cell certified relative bounds and curvature
// margins for a node lattice. vals is node-major with numFields floats per
// node, in the Spec axis order.
func computeBounds(spec Spec, vals []float64) (bounds, curvs []float64) {
	nK, nN := len(spec.K), len(spec.NT)
	nR, nP, nS := len(spec.R), len(spec.PRemote), len(spec.Psw)
	cR, cP, cS := cellsPerAxis(nR), cellsPerAxis(nP), cellsPerAxis(nS)
	bounds = make([]float64, nK*nN*cR*cP*cS)
	curvs = make([]float64, len(bounds))

	node := func(ki, ni, ri, pi, si int) int {
		return (((ki*nN+ni)*nR+ri)*nP+pi)*nS + si
	}

	axisLens := [3]int{nR, nP, nS}
	for ki := 0; ki < nK; ki++ {
		for ni := 0; ni < nN; ni++ {
			val := func(f, ri, pi, si int) float64 {
				return vals[node(ki, ni, ri, pi, si)*numFields+f]
			}
			// Plane magnitude scale per field, for the monotonicity slack.
			var slack [numFields]float64
			for f := 0; f < numFields; f++ {
				scale := 0.0
				for ri := 0; ri < nR; ri++ {
					for pi := 0; pi < nP; pi++ {
						for si := 0; si < nS; si++ {
							if a := math.Abs(val(f, ri, pi, si)); a > scale {
								scale = a
							}
						}
					}
				}
				slack[f] = monoSlack * scale
			}

			for cr := 0; cr < cR; cr++ {
				for cp := 0; cp < cP; cp++ {
					for cs := 0; cs < cS; cs++ {
						cell := (((ki*nN+ni)*cR+cr)*cP+cp)*cS + cs
						lo := [3]int{cr, cp, cs}
						// hiOff is the per-axis corner offset cap: 0 on a
						// single-value (degenerate) axis.
						var hiOff [3]int
						for ax := 0; ax < 3; ax++ {
							if axisLens[ax] > 1 {
								hiOff[ax] = 1
							}
						}
						// at reads the lattice at position t along axis ax,
						// the other two axes pinned to cell corner offsets.
						at := func(f, ax, t, du, dw int) float64 {
							switch ax {
							case 0:
								return val(f, t, cp+du, cs+dw)
							case 1:
								return val(f, cr+du, t, cs+dw)
							default:
								return val(f, cr+du, cp+dw, t)
							}
						}

						worstB, worstC := 0.0, 0.0
						for f := 0; f < numFields; f++ {
							mn, mx := math.Inf(1), math.Inf(-1)
							for dr := 0; dr <= hiOff[0]; dr++ {
								for dp := 0; dp <= hiOff[1]; dp++ {
									for ds := 0; ds <= hiOff[2]; ds++ {
										v := val(f, cr+dr, cp+dp, cs+ds)
										mn = math.Min(mn, v)
										mx = math.Max(mx, v)
									}
								}
							}
							spread := mx - mn

							monotone := true
							curvSum := 0.0
							// curvKnown: every interpolated axis produced a
							// second-difference estimate. A 2-node axis has no
							// interior triple; its curvature is unknowable at
							// this resolution and the curvature term must not
							// be allowed to undercut the rigorous spread.
							curvKnown := true
							for ax := 0; ax < 3; ax++ {
								n := axisLens[ax]
								if n < 2 {
									continue // degenerate axis: exact match, no error term
								}
								if n < 3 {
									curvKnown = false
								}
								u, w := (ax+1)%3, (ax+2)%3
								// Cell edges along ax: direction of the
								// largest, violations against it.
								dir, maxD2 := 0.0, 0.0
								for du := 0; du <= hiOff[u]; du++ {
									for dw := 0; dw <= hiOff[w]; dw++ {
										d := at(f, ax, lo[ax]+1, du, dw) - at(f, ax, lo[ax], du, dw)
										if math.Abs(d) > math.Abs(dir) {
											dir = d
										}
									}
								}
								for du := 0; du <= hiOff[u]; du++ {
									for dw := 0; dw <= hiOff[w]; dw++ {
										d := at(f, ax, lo[ax]+1, du, dw) - at(f, ax, lo[ax], du, dw)
										if d*dir < 0 && math.Abs(d) > slack[f] {
											monotone = false
										}
										// Second differences whose support
										// overlaps the cell interval.
										for t := lo[ax]; t <= lo[ax]+1; t++ {
											if t < 1 || t+1 >= n {
												continue
											}
											d2 := math.Abs(at(f, ax, t-1, du, dw) - 2*at(f, ax, t, du, dw) + at(f, ax, t+1, du, dw))
											if d2 > maxD2 {
												maxD2 = d2
											}
										}
									}
								}
								curvSum += maxD2
							}
							// h² M₂ / 8 per axis, doubled: the finite
							// difference is an estimate, not a bound.
							abs := 0.25 * curvSum

							var b float64
							switch {
							case monotone && curvKnown:
								b = math.Min(spread, abs)
							case monotone:
								b = spread
							default:
								b = spread + abs
							}
							relB, relC := math.Inf(1), math.Inf(1)
							if b == 0 {
								relB = 0
							} else if mn > 0 {
								relB = b / mn
							}
							if abs == 0 {
								relC = 0
							} else if mn > 0 {
								relC = abs / mn
							}
							worstB = math.Max(worstB, relB)
							worstC = math.Max(worstC, relC)
						}
						bounds[cell] = worstB
						curvs[cell] = worstC
					}
				}
			}
		}
	}
	return bounds, curvs
}
