// Package bottleneck implements the paper's "simple bottleneck analysis":
// closed-form saturation rates and critical workload parameters that explain
// the knees of the solved performance curves.
//
//   - Eq. 4: the network saturates at λ_net,sat = 1/(2·d_avg·S) messages per
//     unit time per processor — each remote access and its response each
//     traverse d_avg switches of delay S.
//   - Eq. 5: the processor stays busy while its access rate stays below the
//     combined response rate of memory and network; the network-side
//     condition gives the critical p_remote = R/(2·(d_avg+1)·S) beyond which
//     U_p must fall, and the memory-side condition requires
//     (1-p_remote)·L ≤ R.
package bottleneck

import (
	"fmt"
	"math"

	"lattol/internal/mms"
)

// Analysis holds the closed-form bottleneck quantities for a configuration.
type Analysis struct {
	// DAvg is the mean hop distance of a remote access.
	DAvg float64
	// NetSaturationRate is λ_net,sat = 1/(2·d_avg·S) (paper Eq. 4). Inf when
	// there is no network traffic or S = 0.
	NetSaturationRate float64
	// CriticalPRemote is the largest p_remote for which the network can
	// return responses as fast as a fully busy processor issues them:
	// R/(2·(d_avg+1)·S) (paper Eq. 5). Values above 1 mean the network is
	// never the limit at this R.
	CriticalPRemote float64
	// SaturationPRemote is the p_remote at which λ_net = p/R reaches
	// NetSaturationRate for a fully busy processor: R/(2·d_avg·S). The paper
	// quotes 0.3 (R=10) and 0.6 (R=20) for the default system.
	SaturationPRemote float64
	// MemoryBound reports whether the local-memory condition
	// (1-p_remote)·L > R prevents full processor utilization by itself.
	MemoryBound bool
	// RoundTripSwitchTime is 2·(d_avg+1)·S: the no-contention network round
	// trip of a remote access (on/off the IN plus d_avg hops each way).
	RoundTripSwitchTime float64
	// UpUpperBound is an asymptotic (n_t → ∞) upper bound on U_p from
	// per-station service rates: the processor cannot cycle faster than its
	// slowest downstream subsystem allows.
	UpUpperBound float64
}

// Analyze computes the closed forms for a configuration.
func Analyze(cfg mms.Config) (Analysis, error) {
	model, err := mms.Build(cfg)
	if err != nil {
		return Analysis{}, err
	}
	a := Analysis{DAvg: model.MeanDistance()}
	r := cfg.Runlength + cfg.ContextSwitch
	p := cfg.PRemote
	a.NetSaturationRate = math.Inf(1)
	a.CriticalPRemote = 1
	a.SaturationPRemote = 1
	a.RoundTripSwitchTime = 2 * (a.DAvg + 1) * cfg.SwitchTime
	if p > 0 && cfg.SwitchTime > 0 && a.DAvg > 0 {
		a.NetSaturationRate = 1 / (2 * a.DAvg * cfg.SwitchTime)
		a.CriticalPRemote = math.Min(1, r/a.RoundTripSwitchTime)
		a.SaturationPRemote = math.Min(1, r/(2*a.DAvg*cfg.SwitchTime))
	}
	a.MemoryBound = (1-p)*cfg.MemoryTime > r

	// Asymptotic U_p bound: U_p = λ·R with λ limited by every station's
	// service rate divided by its visits per cycle. Memory: visits 1,
	// rate 1/L. Outbound switch: visits 2p, rate 1/S. Inbound: 2p·d_avg/P per
	// switch on average is not the binding term — by symmetry each inbound
	// switch carries 2p·d_avg visits per cycle of one class; with P classes
	// the per-switch utilization is λ·S·2p·d_avg, so the inbound bound is
	// λ ≤ 1/(S·2p·d_avg), which is exactly Eq. 4 scaled by p.
	a.UpUpperBound = 1
	if cfg.MemoryTime > 0 {
		a.UpUpperBound = math.Min(a.UpUpperBound, r/cfg.MemoryTime)
	}
	if p > 0 && cfg.SwitchTime > 0 {
		a.UpUpperBound = math.Min(a.UpUpperBound, r/(cfg.SwitchTime*2*p))
		if a.DAvg > 0 {
			a.UpUpperBound = math.Min(a.UpUpperBound, r/(cfg.SwitchTime*2*p*a.DAvg))
		}
	}
	return a, nil
}

// Regime is the paper's three-zone partition of p_remote (Section 5).
type Regime int

const (
	// ProcessorBusy: p_remote below the critical value; responses arrive
	// before the processor runs out of work and U_p stays high.
	ProcessorBusy Regime = iota
	// LatencyLimited: between the critical and saturation values; rising
	// S_obs delays remote accesses and U_p falls with p_remote.
	LatencyLimited
	// NetworkSaturated: beyond the saturation value; the IN is the
	// bottleneck and U_p is low.
	NetworkSaturated
)

func (r Regime) String() string {
	switch r {
	case ProcessorBusy:
		return "processor-busy"
	case LatencyLimited:
		return "latency-limited"
	case NetworkSaturated:
		return "network-saturated"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// ClassifyRegime places a configuration's p_remote in its regime.
func (a Analysis) ClassifyRegime(pRemote float64) Regime {
	switch {
	case pRemote <= a.CriticalPRemote:
		return ProcessorBusy
	case pRemote <= a.SaturationPRemote:
		return LatencyLimited
	default:
		return NetworkSaturated
	}
}
