package bottleneck

import (
	"math"
	"testing"

	"lattol/internal/mms"
)

// asymptoteCases are the configurations the asymptote tests sweep: the paper's
// default system plus longer runlengths, extreme p_remote (up to 1.0, every
// access remote), a two-dimensional torus, a slow network, and a memory-bound
// point where the r/L term of Eq. 5 — not the network — caps utilization.
func asymptoteCases() []struct {
	name string
	cfg  mms.Config
} {
	mk := func(mut func(*mms.Config)) mms.Config {
		cfg := mms.DefaultConfig()
		mut(&cfg)
		return cfg
	}
	return []struct {
		name string
		cfg  mms.Config
	}{
		{"default", mk(func(*mms.Config) {})},
		{"R=20", mk(func(c *mms.Config) { c.Runlength = 20 })},
		{"p=0.5", mk(func(c *mms.Config) { c.PRemote = 0.5 })},
		{"p=0.9", mk(func(c *mms.Config) { c.PRemote = 0.9 })},
		{"p=1.0", mk(func(c *mms.Config) { c.PRemote = 1.0 })},
		{"K=2 p=0.7", mk(func(c *mms.Config) { c.K = 2; c.PRemote = 0.7 })},
		{"S=5 p=0.6", mk(func(c *mms.Config) { c.SwitchTime = 5; c.PRemote = 0.6 })},
		{"L=30 p=0.05", mk(func(c *mms.Config) { c.MemoryTime = 30; c.PRemote = 0.05 })},
	}
}

func solveAt(t *testing.T, cfg mms.Config, nt int) mms.Metrics {
	t.Helper()
	cfg.Threads = nt
	met, err := mms.Solve(cfg)
	if err != nil {
		t.Fatalf("%+v: %v", cfg, err)
	}
	return met
}

// TestUpApproachesClosedFormBound cross-checks the Eq. 5 closed forms against
// the AMVA solution in its asymptotic regime: as n_t grows the solved U_p must
// approach min(1, UpUpperBound) from below — never exceed it (it is a hard
// per-station service-rate bound), climb monotonically along the thread
// ladder, and land within 1% of it by n_t = 1024. The table includes the
// extreme p_remote = 1.0 point (bound R/(2·d_avg·S)·(1/1) with every access
// remote) and a memory-bound point where the binding term is r/L = 1/3.
func TestUpApproachesClosedFormBound(t *testing.T) {
	ladder := []int{64, 256, 1024}
	for _, c := range asymptoteCases() {
		a, err := Analyze(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		bound := math.Min(1, a.UpUpperBound)
		prev := 0.0
		for _, nt := range ladder {
			met := solveAt(t, c.cfg, nt)
			if met.Up > bound*(1+1e-9) {
				t.Errorf("%s n_t=%d: U_p %v exceeds closed-form bound %v", c.name, nt, met.Up, bound)
			}
			if met.Up < prev*(1-1e-9) {
				t.Errorf("%s n_t=%d: U_p %v fell below the value at the previous rung %v", c.name, nt, met.Up, prev)
			}
			prev = met.Up
		}
		// prev now holds U_p at the top rung.
		if ratio := prev / bound; ratio < 0.99 {
			t.Errorf("%s: U_p at n_t=1024 reaches only %.4f of the closed-form bound %v", c.name, ratio, bound)
		}
	}
}

// TestLambdaNetApproachesEq4 cross-checks Eq. 4 the same way: the solved
// network rate never exceeds λ_net,sat at any thread count, and in the
// network-saturated regime (p_remote ≥ SaturationPRemote) it converges to the
// saturation rate — within 1% at n_t = 1024. Outside that regime the network
// must stay visibly below saturation even with unbounded threads, because the
// processor or memory saturates first.
func TestLambdaNetApproachesEq4(t *testing.T) {
	for _, c := range asymptoteCases() {
		a, err := Analyze(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var top mms.Metrics
		for _, nt := range []int{64, 256, 1024} {
			top = solveAt(t, c.cfg, nt)
			if top.LambdaNet > a.NetSaturationRate*(1+1e-9) {
				t.Errorf("%s n_t=%d: λ_net %v exceeds Eq. 4 rate %v", c.name, nt, top.LambdaNet, a.NetSaturationRate)
			}
		}
		saturated := c.cfg.PRemote >= a.SaturationPRemote
		ratio := top.LambdaNet / a.NetSaturationRate
		if saturated && ratio < 0.99 {
			t.Errorf("%s: network-saturated (p=%v ≥ %v) but λ_net at n_t=1024 reaches only %.4f of λ_net,sat",
				c.name, c.cfg.PRemote, a.SaturationPRemote, ratio)
		}
		if !saturated && ratio > 0.97 {
			t.Errorf("%s: p=%v below saturation %v yet λ_net at n_t=1024 is %.4f of λ_net,sat",
				c.name, c.cfg.PRemote, a.SaturationPRemote, ratio)
		}
	}
}

// TestAsymptoticRegimeSeparation pins the zone boundaries of Eq. 5 to solved
// behavior at a moderate thread count: below the critical p_remote the
// processor stays essentially fully utilized, past the saturation p_remote it
// is clearly throttled, with the bound itself predicting the plateau.
func TestAsymptoticRegimeSeparation(t *testing.T) {
	base := mms.DefaultConfig()
	a, err := Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	busy := base
	busy.PRemote = a.CriticalPRemote * 0.5
	if met := solveAt(t, busy, 64); met.Up < 0.95 {
		t.Errorf("p=%v (processor-busy zone) at n_t=64: U_p %v, want ≥ 0.95", busy.PRemote, met.Up)
	}
	sat := base
	sat.PRemote = math.Min(1, a.SaturationPRemote*1.7)
	satA, err := Analyze(sat)
	if err != nil {
		t.Fatal(err)
	}
	met := solveAt(t, sat, 64)
	if met.Up > 0.7 {
		t.Errorf("p=%v (network-saturated zone) at n_t=64: U_p %v, want clearly below 1", sat.PRemote, met.Up)
	}
	if met.Up > math.Min(1, satA.UpUpperBound)*(1+1e-9) {
		t.Errorf("p=%v: U_p %v exceeds its own closed-form plateau %v", sat.PRemote, met.Up, satA.UpUpperBound)
	}
}

// TestMemoryBoundAsymptote isolates the r/L term of Eq. 5: with L = 3·R and
// near-zero network traffic the asymptotic plateau is R/L = 1/3, which the
// solved model must approach tightly (the probe measured 0.9999 of the bound
// at n_t = 1024) while the network stays far from saturation.
func TestMemoryBoundAsymptote(t *testing.T) {
	cfg := mms.DefaultConfig()
	cfg.MemoryTime = 30
	cfg.PRemote = 0.05
	a, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.MemoryBound {
		t.Fatal("L=30, R=10 should be memory bound")
	}
	if math.Abs(a.UpUpperBound-1.0/3) > 1e-12 {
		t.Fatalf("UpUpperBound = %v, want r/L = 1/3", a.UpUpperBound)
	}
	met := solveAt(t, cfg, 1024)
	if met.Up > a.UpUpperBound*(1+1e-9) || met.Up < 0.995*a.UpUpperBound {
		t.Errorf("U_p at n_t=1024 = %v, want within [0.995, 1]·(r/L = %v)", met.Up, a.UpUpperBound)
	}
	if met.LambdaNet > 0.5*a.NetSaturationRate {
		t.Errorf("memory-bound point drives λ_net to %v, ≥ half of λ_net,sat %v", met.LambdaNet, a.NetSaturationRate)
	}
}
