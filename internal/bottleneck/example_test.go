package bottleneck_test

import (
	"fmt"

	"lattol/internal/bottleneck"
	"lattol/internal/mms"
)

// Reproduce the paper's Eq. 4 and Eq. 5 closed forms for the default system.
func ExampleAnalyze() {
	a, err := bottleneck.Analyze(mms.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("lambda_net saturation = %.4f (Eq. 4)\n", a.NetSaturationRate)
	fmt.Printf("critical p_remote     = %.3f (Eq. 5)\n", a.CriticalPRemote)
	fmt.Printf("IN saturates at p     = %.3f\n", a.SaturationPRemote)
	fmt.Printf("regime at p=0.2       = %s\n", a.ClassifyRegime(0.2))
	// Output:
	// lambda_net saturation = 0.0288 (Eq. 4)
	// critical p_remote     = 0.183 (Eq. 5)
	// IN saturates at p     = 0.288
	// regime at p=0.2       = latency-limited
}
