package bottleneck

import (
	"math"
	"testing"

	"lattol/internal/mms"
)

func TestPaperEq4SaturationRate(t *testing.T) {
	// Paper: λ_net,sat = 1/(2·d_avg·S) = 0.029 for p_sw = 0.5, S = 10, k = 4.
	a, err := Analyze(mms.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.NetSaturationRate-0.028846153846153844) > 1e-12 {
		t.Errorf("λ_net,sat = %v, want 0.0288", a.NetSaturationRate)
	}
}

func TestPaperEq5CriticalPRemote(t *testing.T) {
	// Paper: critical p_remote ≈ 0.18 at R = 10 and ≈ 0.37 at R = 20.
	cfg := mms.DefaultConfig()
	a, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.CriticalPRemote-10.0/(2*(1.7333333333333334+1)*10)) > 1e-12 {
		t.Errorf("critical p = %v", a.CriticalPRemote)
	}
	if a.CriticalPRemote < 0.17 || a.CriticalPRemote > 0.19 {
		t.Errorf("critical p = %v, want ≈0.18", a.CriticalPRemote)
	}
	cfg.Runlength = 20
	a, err = Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CriticalPRemote < 0.35 || a.CriticalPRemote > 0.38 {
		t.Errorf("critical p at R=20 = %v, want ≈0.37", a.CriticalPRemote)
	}
}

func TestPaperSaturationPRemote(t *testing.T) {
	// Paper: λ_net saturates at p_remote = 0.3 (R=10) and 0.6 (R=20).
	cfg := mms.DefaultConfig()
	a, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SaturationPRemote < 0.28 || a.SaturationPRemote > 0.30 {
		t.Errorf("saturation p at R=10 = %v, want ≈0.29", a.SaturationPRemote)
	}
	cfg.Runlength = 20
	a, err = Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SaturationPRemote < 0.56 || a.SaturationPRemote > 0.60 {
		t.Errorf("saturation p at R=20 = %v, want ≈0.58", a.SaturationPRemote)
	}
}

func TestRegimes(t *testing.T) {
	a, err := Analyze(mms.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    float64
		want Regime
	}{
		{0.05, ProcessorBusy},
		{0.18, ProcessorBusy},
		{0.25, LatencyLimited},
		{0.5, NetworkSaturated},
		{0.9, NetworkSaturated},
	}
	for _, c := range cases {
		if got := a.ClassifyRegime(c.p); got != c.want {
			t.Errorf("p=%v: regime %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRegimeBoundariesMatchModelKnees(t *testing.T) {
	// The solved U_p should be near its maximum below critical p and clearly
	// lower past saturation.
	cfg := mms.DefaultConfig()
	a, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	up := func(p float64) float64 {
		cfg.PRemote = p
		met, err := mms.Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return met.Up
	}
	low := up(a.CriticalPRemote * 0.5)
	crit := up(a.CriticalPRemote)
	sat := up(math.Min(1, a.SaturationPRemote*1.8))
	if crit < 0.9*low {
		t.Errorf("U_p fell >10%% already at critical p: %v vs %v", crit, low)
	}
	if sat > 0.8*crit {
		t.Errorf("U_p past saturation (%v) not clearly below critical (%v)", sat, crit)
	}
}

func TestSaturationRateBoundsModel(t *testing.T) {
	// λ_net from the solved model must respect Eq. 4.
	cfg := mms.DefaultConfig()
	cfg.PRemote = 0.8
	cfg.Threads = 10
	a, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	met, err := mms.Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.LambdaNet > a.NetSaturationRate*1.0001 {
		t.Errorf("λ_net %v exceeds Eq. 4 bound %v", met.LambdaNet, a.NetSaturationRate)
	}
	// At heavy traffic the model should approach the bound closely.
	if met.LambdaNet < 0.85*a.NetSaturationRate {
		t.Errorf("λ_net %v far below saturation bound %v at heavy load", met.LambdaNet, a.NetSaturationRate)
	}
}

func TestMemoryBound(t *testing.T) {
	cfg := mms.DefaultConfig()
	cfg.MemoryTime = 30
	cfg.PRemote = 0.1
	a, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.MemoryBound {
		t.Error("L=30, R=10 should be memory bound")
	}
	cfg.MemoryTime = 10
	a, err = Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MemoryBound {
		t.Error("L=10, R=10, p=0.1 should not be memory bound")
	}
}

func TestNoNetworkTraffic(t *testing.T) {
	cfg := mms.DefaultConfig()
	cfg.PRemote = 0
	a, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a.NetSaturationRate, 1) {
		t.Errorf("λ_net,sat = %v, want +Inf", a.NetSaturationRate)
	}
	if a.CriticalPRemote != 1 || a.SaturationPRemote != 1 {
		t.Errorf("critical/saturation p = %v/%v, want 1/1", a.CriticalPRemote, a.SaturationPRemote)
	}
}

func TestUpUpperBoundHolds(t *testing.T) {
	for _, p := range []float64{0.1, 0.3, 0.6} {
		for _, nt := range []int{2, 8, 16} {
			cfg := mms.DefaultConfig()
			cfg.PRemote = p
			cfg.Threads = nt
			a, err := Analyze(cfg)
			if err != nil {
				t.Fatal(err)
			}
			met, err := mms.Solve(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if met.Up > a.UpUpperBound*1.0001 {
				t.Errorf("p=%v n_t=%d: U_p %v exceeds bound %v", p, nt, met.Up, a.UpUpperBound)
			}
		}
	}
}

func TestAnalyzeRejectsBadConfig(t *testing.T) {
	cfg := mms.DefaultConfig()
	cfg.K = -1
	if _, err := Analyze(cfg); err == nil {
		t.Error("want error")
	}
}

func TestRegimeString(t *testing.T) {
	if ProcessorBusy.String() != "processor-busy" || LatencyLimited.String() != "latency-limited" ||
		NetworkSaturated.String() != "network-saturated" || Regime(9).String() != "Regime(9)" {
		t.Error("regime strings")
	}
}
