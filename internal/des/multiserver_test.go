package des

import (
	"math"
	"testing"

	"lattol/internal/stats"
)

// TestStationMM2 checks an M/M/2 queue against the Erlang-C closed form:
// λ=1.2, μ=1 per server, ρ=0.6 ⇒ P(wait)=0.45, W = 1 + P(wait)/(2μ-λ) = 1.5625.
func TestStationMM2(t *testing.T) {
	e := NewEngine(21)
	st := &Station{Name: "srv", Service: stats.Exponential{M: 1}, Servers: 2}
	st.Attach(e)
	lambda := 1.2
	var arrive func()
	arrive = func() {
		st.Arrive(nil)
		e.After(e.Rand.ExpFloat64()/lambda, arrive)
	}
	e.Schedule(0, arrive)
	e.Run(20000)
	st.ResetStats()
	e.Run(400000)
	want := 1.0 + 0.45/(2-1.2)
	if math.Abs(st.Residence.Mean()-want) > 0.08 {
		t.Errorf("M/M/2 residence %v, want ~%v", st.Residence.Mean(), want)
	}
	// Utilization is per-server: ρ = λ/(2μ) = 0.6.
	if math.Abs(st.Utilization()-0.6) > 0.02 {
		t.Errorf("utilization %v, want ~0.6", st.Utilization())
	}
}

func TestMultiServerParallelism(t *testing.T) {
	// Two deterministic servers drain 4 jobs in 2 service times, not 4.
	e := NewEngine(1)
	done := 0
	st := &Station{Service: stats.Deterministic{V: 5}, Servers: 2,
		Done: func(Job, float64, float64) { done++ }}
	st.Attach(e)
	e.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			st.Arrive(nil)
		}
	})
	e.Run(10.5)
	if done != 4 {
		t.Errorf("served %d jobs by t=10.5, want 4", done)
	}
}

func TestPrioritySelection(t *testing.T) {
	// Jobs are ints; higher value = higher priority. With one server busy,
	// the queued jobs must come out in priority order, FIFO among equals.
	e := NewEngine(1)
	var order []int
	st := &Station{
		Service:  stats.Deterministic{V: 1},
		Priority: func(j Job) int { return j.(int) },
		Done:     func(j Job, _, _ float64) { order = append(order, j.(int)) },
	}
	st.Attach(e)
	e.Schedule(0, func() {
		st.Arrive(0) // starts service immediately
		st.Arrive(1)
		st.Arrive(3)
		st.Arrive(2)
		st.Arrive(3)
	})
	e.Run(100)
	want := []int{0, 3, 3, 2, 1}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestPriorityStarvation(t *testing.T) {
	// A continuously-fed high-priority stream starves low-priority work
	// until the feed stops: documents the non-preemptive priority semantics.
	e := NewEngine(2)
	var lowDone float64 = -1
	st := &Station{
		Service:  stats.Deterministic{V: 1},
		Priority: func(j Job) int { return j.(int) },
		Done: func(j Job, _, now float64) {
			if j.(int) == 0 && lowDone < 0 {
				lowDone = now
			}
		},
	}
	st.Attach(e)
	e.Schedule(0, func() { st.Arrive(1) })   // occupies the server
	e.Schedule(0.1, func() { st.Arrive(0) }) // queues behind it
	// High-priority arrivals every 0.9 keep the queue nonempty (service
	// takes 1, so the backlog grows); the low-priority job waits them out.
	for i := 0; i < 20; i++ {
		at := 0.5 + 0.9*float64(i)
		e.Schedule(at, func() { st.Arrive(1) })
	}
	e.Run(100)
	if lowDone < 20 {
		t.Errorf("low-priority job finished at %v, want after the high-priority burst", lowDone)
	}
}
