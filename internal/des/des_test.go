package des

import (
	"math"
	"sort"
	"testing"

	"lattol/internal/stats"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run(10)
	if !sort.IntsAreSorted(order) || len(order) != 3 {
		t.Errorf("order %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("clock %v, want 10 (advanced to horizon)", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v", order)
		}
	}
}

func TestHorizonStopsProcessing(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(5, func() { fired = true })
	n := e.Run(4)
	if fired || n != 0 {
		t.Error("event past horizon fired")
	}
	if e.Now() != 4 {
		t.Errorf("clock %v, want 4", e.Now())
	}
	// Event remains pending and fires on a later run.
	if e.Run(6) != 1 || !fired {
		t.Error("pending event did not fire on resumed run")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5, func() {})
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Error("want panic on scheduling in the past")
		}
	}()
	e.Schedule(1, func() {})
}

func TestCascadingEvents(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(1, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run(100)
	if count != 10 {
		t.Errorf("count %d", count)
	}
	if e.Pending() != 0 {
		t.Errorf("pending %d", e.Pending())
	}
}

func TestStep(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Error("first step")
	}
	if !e.Step() || n != 2 {
		t.Error("second step")
	}
	if e.Step() {
		t.Error("step on empty calendar")
	}
}

// TestStationMM1 drives a station as an M/M/1 queue and checks the
// steady-state residence time W = 1/(μ-λ) and utilization ρ.
func TestStationMM1(t *testing.T) {
	e := NewEngine(42)
	st := &Station{Name: "srv", Service: stats.Exponential{M: 1}} // μ = 1
	st.Attach(e)
	lambda := 0.5
	var arrive func()
	arrive = func() {
		st.Arrive(nil)
		e.After(e.Rand.ExpFloat64()/lambda, arrive)
	}
	e.Schedule(0, arrive)
	e.Run(20000)
	st.ResetStats()
	e.Run(300000)

	rho := st.Utilization()
	if math.Abs(rho-0.5) > 0.02 {
		t.Errorf("utilization %v, want ~0.5", rho)
	}
	w := st.Residence.Mean()
	if math.Abs(w-2) > 0.15 {
		t.Errorf("residence %v, want ~2 (M/M/1 W=1/(μ-λ))", w)
	}
	l := st.MeanQueueLen()
	if math.Abs(l-1) > 0.08 {
		t.Errorf("queue length %v, want ~1 (L=ρ/(1-ρ))", l)
	}
	// Little's law inside the simulation: L ≈ λ·W.
	if math.Abs(l-lambda*w) > 0.1 {
		t.Errorf("Little's law: L=%v λW=%v", l, lambda*w)
	}
}

// TestStationMD1 checks the Pollaczek–Khinchine mean for deterministic
// service: W_q = ρ/(2μ(1-ρ)), half the M/M/1 queueing delay.
func TestStationMD1(t *testing.T) {
	e := NewEngine(7)
	st := &Station{Name: "srv", Service: stats.Deterministic{V: 1}}
	st.Attach(e)
	lambda := 0.5
	var arrive func()
	arrive = func() {
		st.Arrive(nil)
		e.After(e.Rand.ExpFloat64()/lambda, arrive)
	}
	e.Schedule(0, arrive)
	e.Run(20000)
	st.ResetStats()
	e.Run(300000)
	want := 1 + 0.5/(2*(1-0.5)) // service + Wq = 1.5
	if math.Abs(st.Residence.Mean()-want) > 0.1 {
		t.Errorf("residence %v, want ~%v", st.Residence.Mean(), want)
	}
}

func TestStationDoneCallback(t *testing.T) {
	e := NewEngine(1)
	var seen []float64
	st := &Station{
		Service: stats.Deterministic{V: 2},
		Done: func(job Job, arrived, now float64) {
			seen = append(seen, now-arrived)
		},
	}
	st.Attach(e)
	e.Schedule(0, func() { st.Arrive("a"); st.Arrive("b") })
	e.Run(10)
	if len(seen) != 2 {
		t.Fatalf("served %d jobs", len(seen))
	}
	// First job: residence 2; second queues behind it: residence 4.
	if seen[0] != 2 || seen[1] != 4 {
		t.Errorf("residences %v, want [2 4]", seen)
	}
	if st.Served != 2 {
		t.Errorf("Served = %d", st.Served)
	}
}

func TestStationTandem(t *testing.T) {
	// Jobs flow a -> b; conservation of jobs.
	e := NewEngine(3)
	b := &Station{Service: stats.Exponential{M: 0.3}}
	b.Attach(e)
	done := 0
	b.Done = func(Job, float64, float64) { done++ }
	a := &Station{Service: stats.Exponential{M: 0.5}}
	a.Attach(e)
	a.Done = func(j Job, _, _ float64) { b.Arrive(j) }
	for i := 0; i < 50; i++ {
		e.Schedule(0, func() { a.Arrive(nil) })
	}
	e.Run(1e6)
	if done != 50 {
		t.Errorf("jobs through tandem %d, want 50", done)
	}
}

func TestResetStatsKeepsQueue(t *testing.T) {
	e := NewEngine(1)
	st := &Station{Service: stats.Deterministic{V: 5}}
	st.Attach(e)
	e.Schedule(0, func() { st.Arrive(nil); st.Arrive(nil) })
	e.Run(1) // first job in service, second queued
	st.ResetStats()
	e.Run(20)
	if st.Served != 2 {
		t.Errorf("served %d after reset, want 2 (queue preserved)", st.Served)
	}
}
