package des

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// The tests in this file check the hand-rolled 4-ary calendar against the
// straightforward container/heap implementation it replaced: under randomized
// schedules full of ties, both must dispatch the exact same (time, FIFO)
// sequence — the engine's determinism guarantee.

type refEvent struct {
	at  float64
	seq uint64
	id  int
}

type refCalendar []refEvent

func (c refCalendar) Len() int { return len(c) }
func (c refCalendar) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	return c[i].seq < c[j].seq
}
func (c refCalendar) Swap(i, j int) { c[i], c[j] = c[j], c[i] }
func (c *refCalendar) Push(x any)   { *c = append(*c, x.(refEvent)) }
func (c *refCalendar) Pop() any {
	old := *c
	n := len(old) - 1
	ev := old[n]
	*c = old[:n]
	return ev
}

// refEngine is the oracle: a minimal event loop over container/heap with the
// same (at, seq) order.
type refEngine struct {
	now float64
	cal refCalendar
	seq uint64
}

func (e *refEngine) schedule(at float64, id int) {
	e.seq++
	heap.Push(&e.cal, refEvent{at: at, seq: e.seq, id: id})
}

func (e *refEngine) step() (int, bool) {
	if len(e.cal) == 0 {
		return 0, false
	}
	ev := heap.Pop(&e.cal).(refEvent)
	e.now = ev.at
	return ev.id, true
}

// program is a pre-generated workload: when event id fires it schedules
// len(children[id]) new events after the given delays (zero delays included,
// so same-time FIFO ordering is exercised). Ids beyond the program are leaves.
type program struct {
	initial  []float64 // schedule times of the seed events (ids 0..len-1)
	children [][]float64
}

func makeProgram(rng *rand.Rand, seeds, spawners int) program {
	p := program{
		initial:  make([]float64, seeds),
		children: make([][]float64, spawners),
	}
	for i := range p.initial {
		// Coarse grid => many exact ties.
		p.initial[i] = float64(rng.Intn(10)) / 2
	}
	for i := range p.children {
		kids := make([]float64, rng.Intn(3))
		for k := range kids {
			kids[k] = float64(rng.Intn(8)) / 2 // delay 0 included
		}
		p.children[i] = kids
	}
	return p
}

type firing struct {
	id int
	at float64
}

// runEngine replays the program on the production Engine. step=true drives it
// one Step at a time, otherwise a single Run to exhaustion.
func runEngine(p program, step bool) []firing {
	e := NewEngine(0)
	var log []firing
	nextID := len(p.initial)
	var fire Handler
	fire = func(e *Engine, ev Event) {
		id := int(ev.T)
		log = append(log, firing{id: id, at: e.Now()})
		if id < len(p.children) {
			for _, d := range p.children[id] {
				cid := nextID
				nextID++
				e.AfterEvent(d, fire, Event{T: float64(cid)})
			}
		}
	}
	for id, at := range p.initial {
		e.ScheduleEvent(at, fire, Event{T: float64(id)})
	}
	if step {
		for e.Step() {
		}
	} else {
		e.Run(math.Inf(1))
	}
	if e.Pending() != 0 {
		panic("pending events after drain")
	}
	return log
}

// runRef replays the program on the container/heap oracle.
func runRef(p program) []firing {
	e := &refEngine{}
	var log []firing
	nextID := len(p.initial)
	for id, at := range p.initial {
		e.schedule(at, id)
	}
	for {
		id, ok := e.step()
		if !ok {
			break
		}
		log = append(log, firing{id: id, at: e.now})
		if id < len(p.children) {
			for _, d := range p.children[id] {
				e.schedule(e.now+d, nextID)
				nextID++
			}
		}
	}
	return log
}

func diffLogs(t *testing.T, want, got []firing, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: fired %d events, oracle fired %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: dispatch %d differs: engine fired id=%d at %v, oracle id=%d at %v",
				label, i, got[i].id, got[i].at, want[i].id, want[i].at)
		}
	}
}

func TestCalendarMatchesContainerHeap(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := makeProgram(rng, 64, 1500)
		want := runRef(p)
		if len(want) < 64 {
			t.Fatalf("seed %d: oracle fired only %d events", seed, len(want))
		}
		diffLogs(t, want, runEngine(p, false), "Run")
		diffLogs(t, want, runEngine(p, true), "Step")
	}
}

// TestCalendarInterleavedHorizons drives the engine through many short Run
// horizons with fresh events injected between them — mixing external
// schedules (which can land in a freshly vacated root hole) with horizon
// stops — and checks the total dispatch order and Pending() against the
// oracle fed the identical injection schedule.
func TestCalendarInterleavedHorizons(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEngine(0)
	ref := &refEngine{}
	var gotLog, wantLog []firing
	var fire Handler = func(e *Engine, ev Event) {
		gotLog = append(gotLog, firing{id: int(ev.T), at: e.Now()})
	}
	id := 0
	for round := 0; round < 40; round++ {
		horizon := float64(round+1) * 3
		n := rng.Intn(6)
		for k := 0; k < n; k++ {
			at := e.Now() + float64(rng.Intn(20))/2
			e.ScheduleEvent(at, fire, Event{T: float64(id)})
			ref.schedule(at, id)
			id++
		}
		e.Run(horizon)
		for len(ref.cal) > 0 && ref.cal[0].at <= horizon {
			rid, _ := ref.step()
			wantLog = append(wantLog, firing{id: rid, at: ref.now})
		}
		if ref.now < horizon {
			ref.now = horizon
		}
		if got, want := e.Pending(), len(ref.cal); got != want {
			t.Fatalf("round %d: Pending() = %d, oracle has %d", round, got, want)
		}
	}
	diffLogs(t, wantLog, gotLog, "interleaved")
}
