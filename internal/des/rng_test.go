package des

import (
	"testing"
)

// TestEngineRNGGoldenStream pins the engine's embedded random stream to
// golden values: the RNG is part of the simulators' reproducibility contract
// (replication runs are addressed by seed), so a silent algorithm change must
// fail loudly, not shift every recorded result.
func TestEngineRNGGoldenStream(t *testing.T) {
	e := NewEngine(12345)
	wantU := []uint64{0xbe6a36374160d49b, 0x214aaa0637a688c6, 0xf69d16de9954d388, 0x0c60048c4e96e033}
	for i, w := range wantU {
		if got := e.Rand.Uint64(); got != w {
			t.Errorf("Uint64 draw %d = %#016x, want %#016x", i, got, w)
		}
	}
	e.Rand.Seed(12345)
	wantF := []float64{0.74380816315658937, 0.13004553462783452, 0.96333449301285445, 0.048340114836345816}
	for i, w := range wantF {
		if got := e.Rand.Float64(); got != w {
			t.Errorf("Float64 draw %d = %.17g, want %.17g", i, got, w)
		}
	}
}

// TestEngineResetReplaysTrace: Reset(seed) must make a reused engine replay
// the exact event trace of a fresh one — same dispatch times, same random
// draws — which is what lets a Replicator reuse its engine across
// replications without changing any result.
func TestEngineResetReplaysTrace(t *testing.T) {
	trace := func(e *Engine) []float64 {
		var out []float64
		var tick Handler
		tick = func(e *Engine, ev Event) {
			out = append(out, e.Now())
			if e.Now() < 400 {
				e.AfterEvent(0.1+e.Rand.ExpFloat64()*5, tick, ev)
			}
		}
		for i := 0; i < 8; i++ {
			e.AfterEvent(e.Rand.Float64(), tick, Event{})
		}
		e.Run(500)
		return out
	}

	fresh := trace(NewEngine(99))
	e := NewEngine(99)
	// Dirty the engine with an unrelated run, then Reset and replay.
	trace(e)
	e.Reset(99)
	replay := trace(e)

	if len(fresh) == 0 {
		t.Fatal("trace produced no events")
	}
	if len(replay) != len(fresh) {
		t.Fatalf("replay produced %d events, fresh %d", len(replay), len(fresh))
	}
	for i := range fresh {
		if fresh[i] != replay[i] {
			t.Fatalf("event %d dispatched at %v on replay, %v fresh", i, replay[i], fresh[i])
		}
	}
}

// TestEngineResetDiscardsPending: events scheduled before Reset must never
// fire after it.
func TestEngineResetDiscardsPending(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.AfterEvent(10, func(*Engine, Event) { fired = true }, Event{})
	e.Reset(1)
	if n := e.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after Reset, want 0", n)
	}
	e.Run(100)
	if fired {
		t.Error("event scheduled before Reset fired after it")
	}
}

// BenchmarkDESRng measures the per-draw cost of the engine's inline RNG —
// the price every service-time sample pays.
func BenchmarkDESRng(b *testing.B) {
	e := NewEngine(1)
	b.Run("Uint64", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += e.Rand.Uint64()
		}
		_ = sink
	})
	b.Run("Float64", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += e.Rand.Float64()
		}
		_ = sink
	})
	b.Run("ExpFloat64", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += e.Rand.ExpFloat64()
		}
		_ = sink
	})
}
