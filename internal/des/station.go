package des

import (
	"lattol/internal/stats"
)

// Job is an opaque customer passing through stations.
type Job interface{}

// Station is an FCFS queue with one or more parallel servers and a
// service-time distribution — the building block matching the paper's
// subsystem model (multiple servers model multiported memories and pipelined
// switches). When a job finishes service the station's Done callback
// receives it along with the time it arrived at the station, so callers can
// accumulate residence times.
type Station struct {
	Name    string
	Service stats.Dist
	// Servers is the number of parallel servers; 0 means 1.
	Servers int
	// Priority, when non-nil, ranks waiting jobs: at each service-start the
	// highest-priority waiting job is selected (FIFO among equals). A nil
	// Priority gives plain FCFS.
	Priority func(job Job) int
	// Done is invoked at service completion with the job, its arrival time
	// at this station, and the completion time.
	Done func(job Job, arrived, now float64)

	engine *Engine
	queue  jobRing
	inUse  int
	// nsrv caches servers() (set by Attach) so the hot path skips the branch;
	// invSrv is its reciprocal so the busy-fraction update multiplies instead
	// of dividing.
	nsrv   int
	invSrv float64
	// svc is Service compiled into a direct-dispatch sampler (set by Attach)
	// so drawing a service time costs no interface call per event.
	svc stats.Sampler

	// stat tracks the busy fraction and time-average number in system.
	stat     track
	inSystem int
	// Residence accumulates per-job residence times (queueing + service).
	Residence stats.Mean
	// Served counts completed services since the last ResetStats.
	Served int64
}

type queuedJob struct {
	job     Job
	arrived float64
}

// track accumulates the station's two time-weighted statistics — busy
// fraction and number in system — through one shared timestamp chain, so the
// per-event bookkeeping pays one dt computation and one set of stores instead
// of driving two independent stats.TimeWeighted accumulators. Both signals
// change at the same event times, which is what makes the fusion lossless.
type track struct {
	lastT    float64
	busy     float64
	inSys    float64
	busyArea float64
	sysArea  float64
	duration float64
}

// set records that the station holds the given busy fraction and
// number-in-system from time t onward. Non-increasing timestamps contribute
// nothing (multiple updates within one event instant collapse).
func (w *track) set(t, busy, inSys float64) {
	dt := t - w.lastT
	if dt > 0 {
		w.busyArea += w.busy * dt
		w.sysArea += w.inSys * dt
		w.duration += dt
	}
	w.lastT, w.busy, w.inSys = t, busy, inSys
}

// resetStats discards accumulated areas but keeps the current values, so
// measurement can start after a warm-up period.
func (w *track) resetStats(t float64) {
	w.busyArea, w.sysArea, w.duration = 0, 0, 0
	w.lastT = t
}

// meansAt returns the two time-averages over the observed span, closing the
// open segment at time t. With no observed span it returns zeros.
func (w *track) meansAt(t float64) (busy, inSys float64) {
	bArea, sArea, dur := w.busyArea, w.sysArea, w.duration
	if dt := t - w.lastT; dt > 0 {
		bArea += w.busy * dt
		sArea += w.inSys * dt
		dur += dt
	}
	if dur <= 0 {
		return 0, 0
	}
	return bArea / dur, sArea / dur
}

// jobRing is a FIFO of queued jobs backed by a circular buffer: the
// steady-state arrive/serve cycle neither allocates nor memmoves the
// remaining queue, unlike a slice whose head is repeatedly cut off.
type jobRing struct {
	buf  []queuedJob
	head int
	n    int
}

func (r *jobRing) idx(i int) int {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return j
}

func (r *jobRing) at(i int) *queuedJob { return &r.buf[r.idx(i)] }

func (r *jobRing) push(j queuedJob) {
	if r.n == len(r.buf) {
		nb := make([]queuedJob, 2*len(r.buf)+4)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[r.idx(i)]
		}
		r.buf = nb
		r.head = 0
	}
	r.buf[r.idx(r.n)] = j
	r.n++
}

// removeAt removes and returns the i-th queued job (0 = head), preserving
// the FIFO order of the rest. Removing the head is O(1); interior removals
// (priority selection) shift the elements before i back by one. The vacated
// slot is not zeroed — the stale job reference lingers until the slot is
// reused, which only pins long-lived simulation objects; skipping the clear
// saves a pointer-bearing store (and its write barrier) per service start.
// Station.Reset clears the buffer wholesale.
func (r *jobRing) removeAt(i int) queuedJob {
	out := r.buf[r.idx(i)]
	for k := i; k > 0; k-- {
		r.buf[r.idx(k)] = r.buf[r.idx(k-1)]
	}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return out
}

func (s *Station) servers() int {
	if s.Servers < 1 {
		return 1
	}
	return s.Servers
}

// Attach binds the station to an engine. It must be called before Arrive,
// and after Service/Servers are set (it compiles both into the hot path).
func (s *Station) Attach(e *Engine) {
	s.engine = e
	s.nsrv = s.servers()
	s.invSrv = 1 / float64(s.nsrv)
	s.svc = stats.MakeSampler(s.Service)
	s.stat = track{lastT: e.Now()}
}

// note records the station's occupancy (busy fraction, number in system) as
// of time now; called once at the end of each state-changing entry point.
func (s *Station) note(now float64) {
	s.stat.set(now, float64(s.inUse)*s.invSrv, float64(s.inSystem))
}

// Reset empties the station — queue, in-service count, and all statistics —
// so it can be reused for a fresh replication after Engine.Reset. The engine
// binding and compiled service sampler are kept. Any in-flight serviceDone
// events must already have been discarded (Engine.Reset does that).
func (s *Station) Reset() {
	s.queue.head, s.queue.n = 0, 0
	clearJobs(s.queue.buf)
	s.inUse = 0
	s.inSystem = 0
	s.stat = track{lastT: s.engine.Now()}
	s.Residence = stats.Mean{}
	s.Served = 0
}

// clearJobs zeroes a job buffer so stale references don't pin dead jobs.
func clearJobs(buf []queuedJob) {
	for i := range buf {
		buf[i] = queuedJob{}
	}
}

// Arrive enqueues a job at the current simulation time. When a server is
// free and nothing is waiting, the job starts service immediately without a
// round-trip through the queue buffer.
func (s *Station) Arrive(job Job) {
	now := s.engine.Now()
	s.inSystem++
	if s.inUse < s.nsrv && s.queue.n == 0 {
		s.startJob(job, now, now)
		s.note(now)
		return
	}
	s.queue.push(queuedJob{job: job, arrived: now})
	if s.inUse < s.nsrv {
		s.startNext(now)
	}
	s.note(now)
}

// pickNext removes and returns the next job to serve: the head of the queue,
// or the highest-priority job when a Priority function is set.
func (s *Station) pickNext() queuedJob {
	if s.Priority == nil {
		return s.queue.removeAt(0)
	}
	best := 0
	bestPrio := s.Priority(s.queue.at(0).job)
	for i := 1; i < s.queue.n; i++ {
		if p := s.Priority(s.queue.at(i).job); p > bestPrio {
			best, bestPrio = i, p
		}
	}
	return s.queue.removeAt(best)
}

func (s *Station) startNext(now float64) {
	if s.queue.n == 0 || s.inUse >= s.nsrv {
		return
	}
	head := s.pickNext()
	s.startJob(head.job, head.arrived, now)
}

// startJob seizes a server for job (which arrived at `arrived`) and schedules
// its completion. The caller notes the occupancy change afterwards.
func (s *Station) startJob(job Job, arrived, now float64) {
	s.inUse++
	delay := s.svc.Sample(&s.engine.Rand)
	s.engine.AfterEvent(delay, serviceDone, Event{Actor: s, Data: job, T: arrived})
}

// serviceDone is the dispatch target for service completions: Actor is the
// station, Data the job, T its arrival time. A package-level handler keeps
// the per-service schedule allocation-free.
func serviceDone(e *Engine, ev Event) {
	s := ev.Actor.(*Station)
	now := e.Now()
	s.inUse--
	s.inSystem--
	s.Residence.Add(now - ev.T)
	s.Served++
	// Hand the job off before starting the next service so downstream
	// arrivals at this instant queue behind the new service start in a
	// deterministic order.
	if s.Done != nil {
		s.Done(ev.Data, ev.T, now)
	}
	s.startNext(now)
	// note re-reads the counters, so a Done callback that re-entered this
	// station is already reflected (same-instant updates collapse anyway).
	s.note(now)
}

// ResetStats discards accumulated statistics (for warm-up) without touching
// the queue state.
func (s *Station) ResetStats() {
	s.stat.resetStats(s.engine.Now())
	s.Residence = stats.Mean{}
	s.Served = 0
}

// Utilization returns the measured busy fraction (servers in use / servers)
// up to the current time.
func (s *Station) Utilization() float64 {
	busy, _ := s.stat.meansAt(s.engine.Now())
	return busy
}

// MeanQueueLen returns the time-average number in system.
func (s *Station) MeanQueueLen() float64 {
	_, inSys := s.stat.meansAt(s.engine.Now())
	return inSys
}

// Waiting returns the number of jobs queued (not in service) right now.
func (s *Station) Waiting() int { return s.queue.n }
