package des

import (
	"lattol/internal/stats"
)

// Job is an opaque customer passing through stations.
type Job interface{}

// Station is an FCFS queue with one or more parallel servers and a
// service-time distribution — the building block matching the paper's
// subsystem model (multiple servers model multiported memories and pipelined
// switches). When a job finishes service the station's Done callback
// receives it along with the time it arrived at the station, so callers can
// accumulate residence times.
type Station struct {
	Name    string
	Service stats.Dist
	// Servers is the number of parallel servers; 0 means 1.
	Servers int
	// Priority, when non-nil, ranks waiting jobs: at each service-start the
	// highest-priority waiting job is selected (FIFO among equals). A nil
	// Priority gives plain FCFS.
	Priority func(job Job) int
	// Done is invoked at service completion with the job, its arrival time
	// at this station, and the completion time.
	Done func(job Job, arrived, now float64)

	engine *Engine
	queue  []queuedJob
	inUse  int

	// Busy tracks the fraction of servers in use; QueueLen tracks the
	// time-average number in system (queue + service).
	Busy     stats.TimeWeighted
	QueueLen stats.TimeWeighted
	inSystem int
	// Residence accumulates per-job residence times (queueing + service).
	Residence stats.Summary
	// Served counts completed services since the last ResetStats.
	Served int64
}

type queuedJob struct {
	job     Job
	arrived float64
}

func (s *Station) servers() int {
	if s.Servers < 1 {
		return 1
	}
	return s.Servers
}

// Attach binds the station to an engine. It must be called before Arrive.
func (s *Station) Attach(e *Engine) {
	s.engine = e
	s.Busy.Set(e.Now(), 0)
	s.QueueLen.Set(e.Now(), 0)
}

// Arrive enqueues a job at the current simulation time.
func (s *Station) Arrive(job Job) {
	now := s.engine.Now()
	s.inSystem++
	s.QueueLen.Set(now, float64(s.inSystem))
	s.queue = append(s.queue, queuedJob{job: job, arrived: now})
	if s.inUse < s.servers() {
		s.startNext()
	}
}

// pickNext removes and returns the next job to serve: the head of the queue,
// or the highest-priority job when a Priority function is set.
func (s *Station) pickNext() queuedJob {
	best := 0
	if s.Priority != nil {
		bestPrio := s.Priority(s.queue[0].job)
		for i := 1; i < len(s.queue); i++ {
			if p := s.Priority(s.queue[i].job); p > bestPrio {
				best, bestPrio = i, p
			}
		}
	}
	head := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return head
}

func (s *Station) startNext() {
	if len(s.queue) == 0 || s.inUse >= s.servers() {
		s.Busy.Set(s.engine.Now(), float64(s.inUse)/float64(s.servers()))
		return
	}
	head := s.pickNext()
	s.inUse++
	s.Busy.Set(s.engine.Now(), float64(s.inUse)/float64(s.servers()))
	delay := s.Service.Sample(s.engine.Rand)
	s.engine.After(delay, func() {
		now := s.engine.Now()
		s.inUse--
		s.inSystem--
		s.QueueLen.Set(now, float64(s.inSystem))
		s.Residence.Add(now - head.arrived)
		s.Served++
		// Hand the job off before starting the next service so downstream
		// arrivals at this instant queue behind the new service start in a
		// deterministic order.
		if s.Done != nil {
			s.Done(head.job, head.arrived, now)
		}
		s.startNext()
	})
}

// ResetStats discards accumulated statistics (for warm-up) without touching
// the queue state.
func (s *Station) ResetStats() {
	now := s.engine.Now()
	s.Busy.Reset(now)
	s.QueueLen.Reset(now)
	s.Residence = stats.Summary{}
	s.Served = 0
}

// Utilization returns the measured busy fraction (servers in use / servers)
// up to the current time.
func (s *Station) Utilization() float64 {
	return s.Busy.MeanAt(s.engine.Now())
}

// MeanQueueLen returns the time-average number in system.
func (s *Station) MeanQueueLen() float64 {
	return s.QueueLen.MeanAt(s.engine.Now())
}

// Waiting returns the number of jobs queued (not in service) right now.
func (s *Station) Waiting() int { return len(s.queue) }
