// Package des is a small discrete-event-simulation kernel: a simulation
// clock, a 4-ary min-heap event calendar with deterministic FIFO
// tie-breaking, and a single-server FCFS station primitive. The MMS
// simulators (direct and Petri-net based) are built on it.
//
// The calendar stores events by value (no per-event allocation) and
// dispatches through a (handler, Event) pair instead of a closure, so the
// steady-state simulation loop — ScheduleEvent, Run, handler, ScheduleEvent —
// performs zero heap allocations once the calendar has grown to its working
// size (pre-size it with Reserve). The closure-based Schedule/After entry
// points remain for convenience; they cost nothing extra per event because a
// func value is pointer-shaped and boxes into Event.Data without allocating
// (the closure itself still allocates at its creation site if it captures).
package des

import (
	"fmt"
	"math/rand"
)

// Handler processes a dispatched event. Handlers are typically package-level
// functions (or method expressions) that recover their receiver from
// Event.Actor, so scheduling an event captures no closure.
type Handler func(e *Engine, ev Event)

// Event is the compact payload carried by a calendar entry: an actor (the
// object the event concerns, e.g. a *Station), an opaque data word (e.g. the
// job in service), and an auxiliary time. All fields are optional; unused
// fields are zero. Actor and Data hold pointer-shaped values without
// allocating.
type Event struct {
	Actor any
	Data  any
	// T is an auxiliary timestamp payload (e.g. a job's arrival time).
	T float64
}

// Engine drives a simulation: schedule events, run until a horizon.
//
// The calendar is split into a heap of compact 24-byte keys (time, sequence,
// slot index) and a parallel stable slot array holding the (handler, Event)
// payloads, so sifting moves only keys — the payload is written once at
// schedule time and read once at dispatch.
type Engine struct {
	now   float64
	keys  []key     // 4-ary min-heap ordered by (at, seq)
	slots []payload // stable payload storage, indexed by key.slot
	free  []int32   // recycled slot indices
	seq   uint64
	// hole marks a deferred root removal: keys[0] has been dispatched but
	// not yet removed, so the next push can fill it with a single sift-down
	// instead of a remove-last-and-sift plus a sift-up. (at, seq) is a total
	// order, so the pop sequence is independent of the heap's internal
	// layout and the deferral cannot change event order.
	hole bool
	Rand *rand.Rand
}

// key is a heap entry: the event's time and FIFO tie-break sequence, plus
// the index of its payload slot.
type key struct {
	at   float64
	seq  uint64
	slot int32
}

// payload is the dispatch half of a calendar entry.
type payload struct {
	h  Handler
	ev Event
}

// NewEngine creates an engine with its own random stream.
func NewEngine(seed int64) *Engine {
	return &Engine{Rand: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Reserve grows the calendar's backing arrays to hold at least n pending
// events without reallocating. Simulators that know their concurrency bound
// (e.g. total thread count plus in-flight services) call it once at setup so
// the steady-state loop never grows the heap.
func (e *Engine) Reserve(n int) {
	if cap(e.keys) < n {
		grown := make([]key, len(e.keys), n)
		copy(grown, e.keys)
		e.keys = grown
	}
	if cap(e.free) < n {
		grown := make([]int32, len(e.free), n)
		copy(grown, e.free)
		e.free = grown
	}
	if cap(e.slots) < n {
		grown := make([]payload, len(e.slots), n)
		copy(grown, e.slots)
		e.slots = grown
	}
}

// ScheduleEvent dispatches h(e, ev) at time `at` (>= Now). Events at equal
// times fire in scheduling order. It panics on attempts to schedule in the
// past, which always indicates a model bug.
func (e *Engine) ScheduleEvent(at float64, h Handler, ev Event) {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	if h == nil {
		panic("des: ScheduleEvent with nil handler")
	}
	e.seq++
	var slot int32
	if k := len(e.free); k > 0 {
		slot = e.free[k-1]
		e.free = e.free[:k-1]
	} else {
		e.slots = append(e.slots, payload{})
		slot = int32(len(e.slots) - 1)
	}
	e.slots[slot] = payload{h: h, ev: ev}
	e.push(key{at: at, seq: e.seq, slot: slot})
}

// AfterEvent dispatches h(e, ev) after a delay from now.
func (e *Engine) AfterEvent(delay float64, h Handler, ev Event) {
	e.ScheduleEvent(e.now+delay, h, ev)
}

// runClosure is the dispatch shim behind the closure-based Schedule/After
// convenience API.
func runClosure(_ *Engine, ev Event) { ev.Data.(func())() }

// Schedule runs fn at time `at` (>= Now). Events at equal times fire in
// scheduling order.
func (e *Engine) Schedule(at float64, fn func()) {
	e.ScheduleEvent(at, runClosure, Event{Data: fn})
}

// After runs fn after a delay from now.
func (e *Engine) After(delay float64, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Run processes events until the calendar is empty or the clock passes
// horizon; it returns the number of events processed. The clock is left at
// the last processed event (or at horizon if the calendar drained early —
// callers measuring time averages want a definite end time, so Run advances
// the clock to horizon when it exhausts events before it). An event
// scheduled exactly at the horizon fires.
func (e *Engine) Run(horizon float64) int {
	n := 0
	for len(e.keys) > 0 {
		if e.keys[0].at > horizon {
			e.now = horizon
			return n
		}
		h, ev := e.dispatchMin()
		h(e, ev)
		if e.hole {
			e.fixHole()
		}
		n++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return n
}

// Step processes exactly one event if any is pending and reports whether one
// was processed. Step takes no horizon: consistently with Run's
// empty-calendar behavior being the only thing that stops it, Step fires the
// next pending event unconditionally, even one past the horizon of an
// earlier Run call, and advances the clock to the event's timestamp.
func (e *Engine) Step() bool {
	if len(e.keys) == 0 {
		return false
	}
	h, ev := e.dispatchMin()
	h(e, ev)
	if e.hole {
		e.fixHole()
	}
	return true
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int {
	n := len(e.keys)
	if e.hole {
		n--
	}
	return n
}

// The calendar is a 4-ary min-heap ordered by (at, seq): children of node i
// live at 4i+1..4i+4. A wider node fans the tree out to ~half the depth of a
// binary heap, trading slightly more comparisons per level for fewer levels
// and fewer cache misses — the classic d-ary layout for event calendars with
// cheap comparisons. (at, seq) is a total order (seq is unique), so the pop
// sequence is fully deterministic.

func (a *key) less(b *key) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(k key) {
	if e.hole {
		// Fill the deferred root removal directly: the new key sinks from
		// the root, replacing the dispatched entry in one sift instead of a
		// remove-last-and-sift plus a sift-up.
		e.hole = false
		e.siftDown(k)
		return
	}
	i := len(e.keys)
	e.keys = append(e.keys, k)
	for i > 0 {
		p := (i - 1) / 4
		if !k.less(&e.keys[p]) {
			break
		}
		e.keys[i] = e.keys[p]
		i = p
	}
	e.keys[i] = k
}

// dispatchMin advances the clock to the minimum calendar entry, recycles its
// payload slot, marks the root as a pending hole (see Engine.hole) and
// returns the handler and payload. The slot is not zeroed — the stale
// (handler, Event) lingers until the slot is reused, which is fine because
// events only reference long-lived simulation objects; skipping the clear
// saves a pointer-bearing store (and its write barriers) per event.
func (e *Engine) dispatchMin() (Handler, Event) {
	min := e.keys[0]
	p := e.slots[min.slot]
	e.free = append(e.free, min.slot)
	e.hole = true
	e.now = min.at
	return p.h, p.ev
}

// fixHole completes a deferred root removal that no push filled: the last
// key replaces the dispatched root and sinks to its place.
func (e *Engine) fixHole() {
	e.hole = false
	n := len(e.keys) - 1
	last := e.keys[n]
	e.keys = e.keys[:n]
	if n > 0 {
		e.siftDown(last)
	}
}

// siftDown places `hole` (the former last element) starting from the root,
// sliding smaller children up until the heap order holds. The current
// minimum child's (at, seq) is kept in registers so the inner scan does one
// indexed load per child instead of re-reading keys[min].
func (e *Engine) siftDown(hole key) {
	ks := e.keys
	n := len(ks)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		end := first + 4
		if end > n {
			end = n
		}
		min := first
		minAt, minSeq := ks[first].at, ks[first].seq
		for j := first + 1; j < end; j++ {
			at := ks[j].at
			if at < minAt || (at == minAt && ks[j].seq < minSeq) {
				min, minAt, minSeq = j, at, ks[j].seq
			}
		}
		if minAt > hole.at || (minAt == hole.at && minSeq >= hole.seq) {
			break
		}
		ks[i] = ks[min]
		i = min
	}
	ks[i] = hole
}
