// Package des is a small discrete-event-simulation kernel: a simulation
// clock, a 4-ary min-heap event calendar with deterministic FIFO
// tie-breaking, and a single-server FCFS station primitive. The MMS
// simulators (direct and Petri-net based) are built on it.
//
// The calendar stores events by value (no per-event allocation) and
// dispatches through a (handler, Event) pair instead of a closure, so the
// steady-state simulation loop — ScheduleEvent, Run, handler, ScheduleEvent —
// performs zero heap allocations once the calendar has grown to its working
// size (pre-size it with Reserve). The closure-based Schedule/After entry
// points remain for convenience; they cost nothing extra per event because a
// func value is pointer-shaped and boxes into Event.Data without allocating
// (the closure itself still allocates at its creation site if it captures).
package des

import (
	"fmt"
	"math"
	"math/bits"

	"lattol/internal/stats"
)

// Handler processes a dispatched event. Handlers are typically package-level
// functions (or method expressions) that recover their receiver from
// Event.Actor, so scheduling an event captures no closure.
type Handler func(e *Engine, ev Event)

// Event is the compact payload carried by a calendar entry: an actor (the
// object the event concerns, e.g. a *Station), an opaque data word (e.g. the
// job in service), and an auxiliary time. All fields are optional; unused
// fields are zero. Actor and Data hold pointer-shaped values without
// allocating.
type Event struct {
	Actor any
	Data  any
	// T is an auxiliary timestamp payload (e.g. a job's arrival time).
	T float64
}

// Engine drives a simulation: schedule events, run until a horizon.
//
// The calendar is split into a heap of compact 16-byte keys (time, packed
// sequence+slot) and a parallel stable slot array holding the (handler,
// Event) payloads, so sifting moves only keys — the payload is written once
// at schedule time and read once at dispatch. Rand is embedded by value: the
// per-event variate draws are direct calls on an inline xoshiro256** state,
// with no pointer chase and no math/rand interface dispatch.
type Engine struct {
	now   float64
	keys  []key     // padded 4-ary min-heap ordered by (at, ord); see heapBase
	n     int       // logical heap size (keys holds n+heapBase entries when n > 0)
	slots []payload // stable payload storage, indexed by the key's slot bits
	free  []int32   // recycled slot indices
	seq   uint64
	// hole marks a deferred root removal: the root has been dispatched but
	// not yet removed, so the next push can fill it with a single sift-down
	// instead of a remove-last-and-sift plus a sift-up. (at, seq) is a total
	// order, so the pop sequence is independent of the heap's internal
	// layout and the deferral cannot change event order. holeSlot is the
	// dispatched root's payload slot: the common dispatch→schedule cycle
	// hands it straight to the next ScheduleEvent without a free-list
	// round-trip; only fixHole (no push came) banks it in the free list.
	hole     bool
	holeSlot int32
	Rand     stats.RNG
}

// key is a heap entry: the event's time plus its FIFO tie-break sequence and
// payload-slot index packed into one word (seq in the high bits, slot in the
// low ordSlotBits). Packing shrinks a key to 16 bytes so a 4-ary sift level
// touches one cache line instead of two, and since the sequence occupies the
// high bits, comparing ord compares seq — slots only differ when seqs do.
type key struct {
	at  float64
	ord uint64
}

const (
	// ordSlotBits caps concurrent pending events at 2^24 (16.7M) and event
	// sequence numbers at 2^40 (1.1e12); ScheduleEvent panics past either
	// limit rather than silently corrupting the event order.
	ordSlotBits = 24
	ordSlotMask = 1<<ordSlotBits - 1
	maxSeq      = 1 << (64 - ordSlotBits)
)

func (k key) slot() int32 { return int32(k.ord & ordSlotMask) }

// heapBase pads the key array with 3 unused leading entries so that logical
// heap node l lives at physical index l+heapBase. Children of logical l are
// logical 4l+1..4l+4, i.e. physical 4l+4..4l+7 — a block whose byte offset is
// 64(l+1). With a 64-byte-aligned backing array (which Go's allocator gives
// any key slice past a few cache lines), every 4-child block a sift inspects
// lands on exactly one cache line instead of straddling two.
const heapBase = 3

// payload is the dispatch half of a calendar entry.
type payload struct {
	h  Handler
	ev Event
}

// NewEngine creates an engine with its own random stream.
func NewEngine(seed int64) *Engine {
	return &Engine{Rand: stats.NewRNG(seed)}
}

// Reset returns the engine to its just-constructed state with the given seed
// while keeping the calendar's backing arrays. A replication worker builds
// one engine, Reserves it once, and then Resets between replications — the
// steady-state loop never re-grows the heap, and the per-replication
// allocation cost drops to zero. A Reset engine with the same seed produces
// the identical event trace as a fresh NewEngine(seed).
func (e *Engine) Reset(seed int64) {
	e.now = 0
	e.keys = e.keys[:0]
	e.n = 0
	e.free = e.free[:0]
	// Dropping the slots' length (not just the free list) releases stale
	// payloads for reuse; ScheduleEvent re-appends within capacity.
	e.slots = e.slots[:0]
	e.seq = 0
	e.hole = false
	e.Rand.Seed(seed)
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Reserve grows the calendar's backing arrays to hold at least n pending
// events without reallocating. Simulators that know their concurrency bound
// (e.g. total thread count plus in-flight services) call it once at setup so
// the steady-state loop never grows the heap.
func (e *Engine) Reserve(n int) {
	if cap(e.keys) < n+heapBase {
		grown := make([]key, len(e.keys), n+heapBase)
		copy(grown, e.keys)
		e.keys = grown
	}
	if cap(e.free) < n {
		grown := make([]int32, len(e.free), n)
		copy(grown, e.free)
		e.free = grown
	}
	if cap(e.slots) < n {
		grown := make([]payload, len(e.slots), n)
		copy(grown, e.slots)
		e.slots = grown
	}
}

// ScheduleEvent dispatches h(e, ev) at time `at` (>= Now). Events at equal
// times fire in scheduling order. It panics on attempts to schedule in the
// past, which always indicates a model bug.
func (e *Engine) ScheduleEvent(at float64, h Handler, ev Event) {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	if h == nil {
		panic("des: ScheduleEvent with nil handler")
	}
	// Normalize -0.0 to +0.0: heap comparisons order times by their IEEE
	// bits (valid for non-negative values, which simulation time always is —
	// the clock starts at 0 and only moves forward), and a negative zero
	// would sort as if it were huge.
	at += 0.0
	e.seq++
	if e.seq >= maxSeq {
		panic("des: event sequence number overflow (2^40 events); Reset the engine")
	}
	var slot int32
	if e.hole {
		slot = e.holeSlot // reuse the just-dispatched root's slot in place
	} else if k := len(e.free); k > 0 {
		slot = e.free[k-1]
		e.free = e.free[:k-1]
	} else {
		if len(e.slots) >= ordSlotMask {
			panic("des: too many pending events (2^24)")
		}
		e.slots = append(e.slots, payload{})
		slot = int32(len(e.slots) - 1)
	}
	e.slots[slot] = payload{h: h, ev: ev}
	e.push(key{at: at, ord: e.seq<<ordSlotBits | uint64(slot)})
}

// AfterEvent dispatches h(e, ev) after a delay from now.
func (e *Engine) AfterEvent(delay float64, h Handler, ev Event) {
	e.ScheduleEvent(e.now+delay, h, ev)
}

// runClosure is the dispatch shim behind the closure-based Schedule/After
// convenience API.
func runClosure(_ *Engine, ev Event) { ev.Data.(func())() }

// Schedule runs fn at time `at` (>= Now). Events at equal times fire in
// scheduling order.
func (e *Engine) Schedule(at float64, fn func()) {
	e.ScheduleEvent(at, runClosure, Event{Data: fn})
}

// After runs fn after a delay from now.
func (e *Engine) After(delay float64, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Run processes events until the calendar is empty or the clock passes
// horizon; it returns the number of events processed. The clock is left at
// the last processed event (or at horizon if the calendar drained early —
// callers measuring time averages want a definite end time, so Run advances
// the clock to horizon when it exhausts events before it). An event
// scheduled exactly at the horizon fires.
func (e *Engine) Run(horizon float64) int {
	n := 0
	for e.n > 0 {
		if e.keys[heapBase].at > horizon {
			e.now = horizon
			return n
		}
		h, ev := e.dispatchMin()
		h(e, ev)
		if e.hole {
			e.fixHole()
		}
		n++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return n
}

// Step processes exactly one event if any is pending and reports whether one
// was processed. Step takes no horizon: consistently with Run's
// empty-calendar behavior being the only thing that stops it, Step fires the
// next pending event unconditionally, even one past the horizon of an
// earlier Run call, and advances the clock to the event's timestamp.
func (e *Engine) Step() bool {
	if e.n == 0 {
		return false
	}
	h, ev := e.dispatchMin()
	h(e, ev)
	if e.hole {
		e.fixHole()
	}
	return true
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int {
	n := e.n
	if e.hole {
		n--
	}
	return n
}

// The calendar is a 4-ary min-heap ordered by (at, ord): children of logical
// node l live at logical 4l+1..4l+4, with logical node l stored at physical
// index l+heapBase so sibling blocks are cache-line aligned. A wider node fans
// the tree out to ~half the depth of a binary heap, trading slightly more
// comparisons per level for fewer levels and fewer cache misses — the classic
// d-ary layout for event calendars with cheap comparisons. (at, seq) is a
// total order (seq is unique), so the pop sequence is fully deterministic.

// less orders keys by (at, ord) with a branchless 128-bit unsigned compare:
// for non-negative floats the IEEE bit pattern is order-isomorphic to the
// value, so (Float64bits(at), ord) compared as one 128-bit integer — two
// subtract-with-borrow instructions — equals the lexicographic (at, ord)
// order. Event times are random draws, so a compare-and-branch here would
// mispredict about half the time; the borrow chain never branches.
func (a *key) less(b *key) bool {
	_, borrow := bits.Sub64(a.ord, b.ord, 0)
	_, borrow = bits.Sub64(math.Float64bits(a.at), math.Float64bits(b.at), borrow)
	return borrow != 0
}

func (e *Engine) push(k key) {
	if e.hole {
		// Fill the deferred root removal directly: the new key sinks from
		// the root, replacing the dispatched entry in one sift instead of a
		// remove-last-and-sift plus a sift-up.
		e.hole = false
		e.siftDown(k)
		return
	}
	l := e.n
	e.n++
	if len(e.keys) == 0 {
		e.keys = append(e.keys, key{}, key{}, key{})
	}
	e.keys = append(e.keys, key{})
	ks := e.keys
	for l > 0 {
		p := (l - 1) / 4
		if !k.less(&ks[p+heapBase]) {
			break
		}
		ks[l+heapBase] = ks[p+heapBase]
		l = p
	}
	ks[l+heapBase] = k
}

// dispatchMin advances the clock to the minimum calendar entry, recycles its
// payload slot, marks the root as a pending hole (see Engine.hole) and
// returns the handler and payload. The slot is not zeroed — the stale
// (handler, Event) lingers until the slot is reused, which is fine because
// events only reference long-lived simulation objects; skipping the clear
// saves a pointer-bearing store (and its write barriers) per event.
func (e *Engine) dispatchMin() (Handler, Event) {
	min := e.keys[heapBase]
	slot := min.slot()
	p := e.slots[slot]
	e.hole = true
	e.holeSlot = slot
	e.now = min.at
	return p.h, p.ev
}

// fixHole completes a deferred root removal that no push filled: the last
// key replaces the dispatched root and sinks to its place.
func (e *Engine) fixHole() {
	e.hole = false
	e.free = append(e.free, e.holeSlot)
	e.n--
	last := e.keys[e.n+heapBase]
	e.keys = e.keys[:e.n+heapBase]
	if e.n > 0 {
		e.siftDown(last)
	}
}

// siftDown replaces the vacated root with `hole` using bottom-up deletion
// (Wegener): first the vacancy sinks to a leaf along the min-child path —
// per level one unrolled branch-free min-of-4 (borrow-chain compares, mask
// selects) and an unconditional move, with no hole comparison and no
// unpredictable early-exit branch — then `hole` is placed at the vacant leaf
// and bubbles up. Keys arriving here are fresh random draws that are usually
// near-maximal, so the bubble-up loop almost always exits immediately; the
// classic top-down sift would instead pay two extra borrow chains plus a
// ~50/50 branch per level to detect early termination that rarely happens.
// Indices are physical: node at physical i has its child block at physical
// 4i-8 (= 4(i-3)+1, shifted by heapBase), keeping each block on one cache
// line.
func (e *Engine) siftDown(hole key) {
	ks := e.keys
	n := len(ks)
	i := heapBase
	for {
		first := 4*i - 8
		if first+3 >= n {
			// Ragged or missing last node: pick the min of what's there.
			if first >= n {
				break
			}
			min := first
			for j := first + 1; j < n; j++ {
				if ks[j].less(&ks[min]) {
					min = j
				}
			}
			ks[i] = ks[min]
			i = min
			break
		}
		c := ks[first : first+4 : first+4]
		min := first
		minAt, minOrd := math.Float64bits(c[0].at), c[0].ord
		at, ord := math.Float64bits(c[1].at), c[1].ord
		_, bo := bits.Sub64(ord, minOrd, 0)
		_, bo = bits.Sub64(at, minAt, bo)
		m := -bo // all-ones when child 1 < running min
		minAt = minAt&^m | at&m
		minOrd = minOrd&^m | ord&m
		min = min&^int(m) | (first+1)&int(m)
		at, ord = math.Float64bits(c[2].at), c[2].ord
		_, bo = bits.Sub64(ord, minOrd, 0)
		_, bo = bits.Sub64(at, minAt, bo)
		m = -bo
		minAt = minAt&^m | at&m
		minOrd = minOrd&^m | ord&m
		min = min&^int(m) | (first+2)&int(m)
		at, ord = math.Float64bits(c[3].at), c[3].ord
		_, bo = bits.Sub64(ord, minOrd, 0)
		_, bo = bits.Sub64(at, minAt, bo)
		m = -bo
		minAt = minAt&^m | at&m
		minOrd = minOrd&^m | ord&m
		min = min&^int(m) | (first+3)&int(m)
		ks[i] = ks[min]
		i = min
	}
	// Bubble the hole key up from the vacant leaf toward the root.
	for i > heapBase {
		p := (i-heapBase-1)/4 + heapBase
		if !hole.less(&ks[p]) {
			break
		}
		ks[i] = ks[p]
		i = p
	}
	ks[i] = hole
}
