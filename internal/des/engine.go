// Package des is a small discrete-event-simulation kernel: a simulation
// clock, a binary-heap event calendar with deterministic FIFO tie-breaking,
// and a single-server FCFS station primitive. The MMS simulators (direct and
// Petri-net based) are built on it.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Engine drives a simulation: schedule events, run until a horizon.
type Engine struct {
	now    float64
	queue  eventHeap
	seq    uint64
	Rand   *rand.Rand
	nextID int
}

// NewEngine creates an engine with its own random stream.
func NewEngine(seed int64) *Engine {
	return &Engine{Rand: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn at time `at` (>= Now). Events at equal times fire in
// scheduling order. It panics on attempts to schedule in the past, which
// always indicates a model bug.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After runs fn after a delay from now.
func (e *Engine) After(delay float64, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Run processes events until the calendar is empty or the clock passes
// horizon; it returns the number of events processed. The clock is left at
// the last processed event (or at horizon if the calendar drained early —
// callers measuring time averages want a definite end time, so Run advances
// the clock to horizon when it exhausts events before it).
func (e *Engine) Run(horizon float64) int {
	n := 0
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.at > horizon {
			e.now = horizon
			return n
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return n
}

// Step processes exactly one event if any is pending and reports whether one
// was processed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
