package des

import (
	"testing"
)

// BenchmarkEngineSchedule measures the raw schedule+dispatch cycle: batches of
// events pushed into a pre-sized calendar and drained with a no-op handler.
// Steady state must be allocation-free.
func BenchmarkEngineSchedule(b *testing.B) {
	const batch = 1024
	e := NewEngine(1)
	e.Reserve(batch)
	drop := func(_ *Engine, _ Event) {}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		base := e.Now()
		for i := 0; i < batch; i++ {
			// 97 is coprime to the batch size, so insertion order is far from
			// sorted and the heap does real sifting work.
			e.ScheduleEvent(base+float64(i%97), drop, Event{})
		}
		if got := e.Run(base + 97); got != batch {
			b.Fatalf("drained %d events, want %d", got, batch)
		}
	}
}

// BenchmarkEngineRun measures the steady-state event loop the simulators sit
// on: a population of self-rescheduling handlers, exactly like stations
// rescheduling service completions. Must report 0 allocs/op.
func BenchmarkEngineRun(b *testing.B) {
	const population = 256
	e := NewEngine(1)
	e.Reserve(population + 1)
	var tick Handler
	tick = func(e *Engine, ev Event) {
		e.AfterEvent(0.1+e.Rand.Float64()*10, tick, ev)
	}
	for i := 0; i < population; i++ {
		e.AfterEvent(e.Rand.Float64()*10, tick, Event{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	horizon := e.Now()
	for done < b.N {
		horizon += 1000
		done += e.Run(horizon)
	}
}
