package experiments

import (
	"context"
	"fmt"
	"strings"

	"lattol/internal/access"
	"lattol/internal/mms"
	"lattol/internal/report"
	"lattol/internal/sweep"
	"lattol/internal/tolerance"
	"lattol/internal/topology"
)

// ScalingCurves holds Figure 9: tol_network vs n_t for several machine sizes
// and both remote-access distributions, at R = 10 and R = 20.
//
// The tolerance here uses the ZeroDelay ideal (S = 0): Section 7 compares
// against "an ideal (very fast) network" explicitly, which is how the paper
// exposes the network-as-pipelined-buffer effect.
type ScalingCurves struct {
	Runlengths []float64
	Ks         []int
	Threads    []int
	// Curves[ri] holds, for runlength Runlengths[ri], one series per
	// (k, distribution) pair.
	Curves [][]report.Series
}

// Figure9 sweeps k = 2..10, n_t = 1..10 for geometric and uniform patterns.
func Figure9() (*ScalingCurves, error) {
	out := &ScalingCurves{
		Runlengths: []float64{10, 20},
		Ks:         []int{2, 4, 6, 8, 10},
		Threads:    sweep.IntRange(1, 10, 1),
	}
	type point struct {
		r       float64
		k       int
		uniform bool
		nt      int
	}
	var pts []point
	for _, r := range out.Runlengths {
		for _, k := range out.Ks {
			for _, uni := range []bool{true, false} {
				for _, nt := range out.Threads {
					pts = append(pts, point{r, k, uni, nt})
				}
			}
		}
	}
	tols, err := sweep.RunWithWorker(context.Background(), pts, sweepOptions(),
		func() *mms.Workspace { return new(mms.Workspace) },
		func(ws *mms.Workspace, p point) (float64, error) {
			cfg := mms.DefaultConfig()
			cfg.Runlength = p.r
			cfg.K = p.k
			cfg.Threads = p.nt
			if p.uniform {
				u, err := access.NewUniform(topology.MustTorus(p.k))
				if err != nil {
					return 0, err
				}
				cfg.Pattern = u
			}
			idx, err := tolerance.Compute(cfg, tolerance.Network, tolerance.ZeroDelay, mms.SolveOptions{Workspace: ws})
			return idx.Tol, err
		})
	if err != nil {
		return nil, err
	}
	i := 0
	for range out.Runlengths {
		var curves []report.Series
		for _, k := range out.Ks {
			for _, uni := range []bool{true, false} {
				name := fmt.Sprintf("k=%d geometric", k)
				if uni {
					name = fmt.Sprintf("k=%d uniform", k)
				}
				s := report.Series{Name: name}
				for _, nt := range out.Threads {
					s.X = append(s.X, float64(nt))
					s.Y = append(s.Y, tols[i])
					i++
				}
				curves = append(curves, s)
			}
		}
		out.Curves = append(out.Curves, curves)
	}
	return out, nil
}

// Render prints one block per runlength.
func (s *ScalingCurves) Render() string {
	var b strings.Builder
	for ri, r := range s.Runlengths {
		b.WriteString(report.RenderSeries(
			fmt.Sprintf("tol_network (ideal = zero-delay IN) vs n_t at R = %g", r),
			"n_t", 3, s.Curves[ri]...))
		b.WriteByte('\n')
	}
	return b.String()
}

// ThroughputScaling holds Figure 10: system throughput P·U_p and the
// observed latencies vs machine size for an ideal network, the geometric
// pattern and the uniform pattern, at n_t = 8, R = 10, p_remote = 0.2.
type ThroughputScaling struct {
	Ps []int // machine sizes (P = k²)
	// Throughput series: linear reference, ideal network, geometric, uniform.
	Linear, Ideal, Geometric, Uniform []float64
	// Latency panels: S_obs and L_obs per variant (S_obs is 0 for the ideal
	// network).
	SObsGeometric, SObsUniform            []float64
	LObsIdeal, LObsGeometric, LObsUniform []float64
}

// Figure10 sweeps k = 2..10.
func Figure10() (*ThroughputScaling, error) {
	ks := []int{2, 4, 6, 8, 10}
	type sizePoint struct {
		geo, ideal, uni mms.Metrics
	}
	points, err := sweep.Run(context.Background(), ks, sweepOptions(), func(k int) (sizePoint, error) {
		base := mms.DefaultConfig()
		base.K = k

		geo, err := mms.Solve(base)
		if err != nil {
			return sizePoint{}, err
		}
		idealCfg := base
		idealCfg.SwitchTime = 0
		ideal, err := mms.Solve(idealCfg)
		if err != nil {
			return sizePoint{}, err
		}
		uniCfg := base
		u, err := access.NewUniform(topology.MustTorus(k))
		if err != nil {
			return sizePoint{}, err
		}
		uniCfg.Pattern = u
		uni, err := mms.Solve(uniCfg)
		if err != nil {
			return sizePoint{}, err
		}
		return sizePoint{geo: geo, ideal: ideal, uni: uni}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &ThroughputScaling{}
	for i, k := range ks {
		pt := points[i]
		p := float64(k * k)
		out.Ps = append(out.Ps, k*k)
		out.Linear = append(out.Linear, p)
		out.Ideal = append(out.Ideal, geoThroughput(pt.ideal, p))
		out.Geometric = append(out.Geometric, geoThroughput(pt.geo, p))
		out.Uniform = append(out.Uniform, geoThroughput(pt.uni, p))
		out.SObsGeometric = append(out.SObsGeometric, pt.geo.SObs)
		out.SObsUniform = append(out.SObsUniform, pt.uni.SObs)
		out.LObsIdeal = append(out.LObsIdeal, pt.ideal.LObs)
		out.LObsGeometric = append(out.LObsGeometric, pt.geo.LObs)
		out.LObsUniform = append(out.LObsUniform, pt.uni.LObs)
	}
	return out, nil
}

func geoThroughput(m mms.Metrics, p float64) float64 { return p * m.Up }

// Render prints the throughput panel and the latency panel.
func (t *ThroughputScaling) Render() string {
	xs := make([]float64, len(t.Ps))
	for i, p := range t.Ps {
		xs[i] = float64(p)
	}
	var b strings.Builder
	b.WriteString(report.RenderSeries(
		"Figure 10a: system throughput P·U_p vs machine size (n_t=8, R=10, p_remote=0.2)",
		"P", 2,
		report.Series{Name: "linear", X: xs, Y: t.Linear},
		report.Series{Name: "ideal network", X: xs, Y: t.Ideal},
		report.Series{Name: "geometric", X: xs, Y: t.Geometric},
		report.Series{Name: "uniform", X: xs, Y: t.Uniform},
	))
	b.WriteByte('\n')
	b.WriteString(report.RenderSeries(
		"Figure 10b: observed network and memory latencies vs machine size",
		"P", 1,
		report.Series{Name: "S_obs geometric", X: xs, Y: t.SObsGeometric},
		report.Series{Name: "S_obs uniform", X: xs, Y: t.SObsUniform},
		report.Series{Name: "L_obs ideal-IN", X: xs, Y: t.LObsIdeal},
		report.Series{Name: "L_obs geometric", X: xs, Y: t.LObsGeometric},
		report.Series{Name: "L_obs uniform", X: xs, Y: t.LObsUniform},
	))
	return b.String()
}
