package experiments

import (
	"context"
	"fmt"
	"strings"

	"lattol/internal/mms"
	"lattol/internal/report"
	"lattol/internal/simmms"
	"lattol/internal/sweep"
	"lattol/internal/topology"
)

// Extensions returns the studies that go beyond the paper's own exhibits:
// they implement the implications and footnotes its evaluation left
// unexplored (memory multiporting, local-priority memory scheduling, finite
// network buffering, pipelined switches, hot-spot traffic).
func Extensions() []Exhibit {
	return []Exhibit{
		{"ext-memports", "Extension: memory multiporting (paper §7 implication)", func() (string, error) {
			d, err := ExtensionMemoryPorts()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"ext-priority", "Extension: local-priority memory scheduling (EM-4 note)", func() (string, error) {
			d, err := ExtensionLocalPriority(ValidationOptions{})
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"ext-buffers", "Extension: finite network buffering (paper footnote 3)", func() (string, error) {
			d, err := ExtensionFiniteBuffers(ValidationOptions{})
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"ext-pipelined", "Extension: pipelined switches (paper switch-model assumption)", func() (string, error) {
			d, err := ExtensionPipelinedSwitches()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"ext-hotspot", "Extension: hot-spot traffic (asymmetric workload)", func() (string, error) {
			d, err := ExtensionHotSpot()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"ext-imbalance", "Extension: load imbalance (the even-load assumption)", func() (string, error) {
			d, err := ExtensionImbalance()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"ext-mesh", "Extension: mesh vs torus (what the wraparound links buy)", func() (string, error) {
			d, err := ExtensionMeshVsTorus()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"ext-barrier", "Extension: barrier synchronization (do-all supersteps)", func() (string, error) {
			d, err := ExtensionBarrier(ValidationOptions{})
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
		{"ext-deviation", "Deviation study: finite vs ideal network (the paper's tol > 1 claim)", func() (string, error) {
			d, err := DeviationStudy(ValidationOptions{})
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		}},
	}
}

// MemoryPortsRow is one analytical operating point of the multiporting study.
type MemoryPortsRow struct {
	IdealNetwork bool
	Ports        int
	Up           float64
	LObs         float64
	MemUtil      float64
}

// MemoryPortsData holds the memory-multiporting study.
type MemoryPortsData struct{ Rows []MemoryPortsRow }

// ExtensionMemoryPorts evaluates the paper's Section 7 suggestion that a
// very fast network needs multiported/pipelined memory: it sweeps 1–4
// memory ports under the real network and under an ideal (zero-delay)
// network at the default operating point.
func ExtensionMemoryPorts() (*MemoryPortsData, error) {
	out := &MemoryPortsData{}
	for _, ideal := range []bool{false, true} {
		for _, portCount := range []int{1, 2, 4} {
			cfg := mms.DefaultConfig()
			cfg.MemoryPorts = portCount
			if ideal {
				cfg.SwitchTime = 0
			}
			met, err := mms.Solve(cfg)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, MemoryPortsRow{
				IdealNetwork: ideal, Ports: portCount,
				Up: met.Up, LObs: met.LObs, MemUtil: met.MemUtilization,
			})
		}
	}
	return out, nil
}

// Gain returns U_p(ports)/U_p(1 port) for the chosen network variant.
func (d *MemoryPortsData) Gain(ideal bool, portCount int) float64 {
	var base, v float64
	for _, r := range d.Rows {
		if r.IdealNetwork == ideal && r.Ports == 1 {
			base = r.Up
		}
		if r.IdealNetwork == ideal && r.Ports == portCount {
			v = r.Up
		}
	}
	if base == 0 {
		return 0
	}
	return v / base
}

// Render prints the multiporting table.
func (d *MemoryPortsData) Render() string {
	t := report.NewTable(
		"Memory multiporting (analytical, n_t=8, R=10, L=10, p_remote=0.2)",
		"network", "mem ports", "U_p", "L_obs", "mem util")
	for _, r := range d.Rows {
		network := "real (S=10)"
		if r.IdealNetwork {
			network = "ideal (S=0)"
		}
		t.Add(network, fmt.Sprintf("%d", r.Ports),
			report.Float(r.Up, 3), report.Float(r.LObs, 1), report.Float(r.MemUtil, 3))
	}
	return t.String() +
		fmt.Sprintf("U_p gain from 4 ports: ideal network %.1f%%, real network %.1f%% — a fast IN needs fast memory\n",
			(d.Gain(true, 4)-1)*100, (d.Gain(false, 4)-1)*100)
}

// PriorityRow compares FCFS with local-priority memory scheduling at one
// operating point (simulation).
type PriorityRow struct {
	IdealNetwork bool
	Priority     bool
	Up           float64
	LObsLocal    float64
	LObsRemote   float64
}

// PriorityData holds the local-priority study.
type PriorityData struct{ Rows []PriorityRow }

// ExtensionLocalPriority measures the EM-4 design choice the paper mentions:
// serving local memory requests ahead of remote ones. The effect is largest
// with a very fast network flooding remote memories.
func ExtensionLocalPriority(opts ValidationOptions) (*PriorityData, error) {
	opts = opts.withDefaults()
	type variant struct {
		ideal, prio bool
	}
	var pts []variant
	for _, ideal := range []bool{false, true} {
		for _, prio := range []bool{false, true} {
			pts = append(pts, variant{ideal, prio})
		}
	}
	// All four variants share one seed (common random numbers), so the
	// scheduling-discipline effect is a paired comparison.
	seed := sweep.DeriveSeed(opts.Seed, 17)
	rows, err := sweep.Run(context.Background(), pts, sweepOptions(), func(v variant) (PriorityRow, error) {
		cfg := mms.DefaultConfig()
		cfg.PRemote = 0.4 // enough remote traffic for scheduling to matter
		if v.ideal {
			cfg.SwitchTime = 0
		}
		r, err := simmms.Run(cfg, simmms.Options{
			Engine: simmms.Direct, Seed: seed,
			Warmup: opts.Warmup, Duration: opts.Duration,
			LocalMemPriority: v.prio,
		})
		if err != nil {
			return PriorityRow{}, err
		}
		return PriorityRow{
			IdealNetwork: v.ideal, Priority: v.prio,
			Up: r.Up, LObsLocal: r.LObsLocal, LObsRemote: r.LObsRemote,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &PriorityData{Rows: rows}, nil
}

// Up returns the measured U_p for a variant.
func (d *PriorityData) Up(ideal, priority bool) float64 {
	for _, r := range d.Rows {
		if r.IdealNetwork == ideal && r.Priority == priority {
			return r.Up
		}
	}
	return 0
}

// LObsLocalAt returns the local-access memory residence for a variant.
func (d *PriorityData) LObsLocalAt(ideal, priority bool) float64 {
	for _, r := range d.Rows {
		if r.IdealNetwork == ideal && r.Priority == priority {
			return r.LObsLocal
		}
	}
	return 0
}

// Render prints the priority table.
func (d *PriorityData) Render() string {
	t := report.NewTable(
		"Local-priority memory scheduling (Direct DES, p_remote=0.4, n_t=8)",
		"network", "memory discipline", "U_p", "L_obs local", "L_obs remote")
	for _, r := range d.Rows {
		network := "real (S=10)"
		if r.IdealNetwork {
			network = "ideal (S=0)"
		}
		disc := "FCFS"
		if r.Priority {
			disc = "local first"
		}
		t.Add(network, disc, report.Float(r.Up, 3),
			report.Float(r.LObsLocal, 1), report.Float(r.LObsRemote, 1))
	}
	return t.String() +
		"Local priority shields a PE's own accesses (local residence drops sharply) at the cost of\n" +
		"remote ones; in a symmetric SPMD workload the U_p effect is near-neutral because every\n" +
		"deprioritized remote access belongs to some other processor's thread. The EM-4 benefit\n" +
		"needs local work on the critical path, not symmetry.\n"
}

// BufferSeries is S_obs vs n_t for one injection-window size.
type BufferSeries struct {
	Window int // 0 = unbounded
	SObs   []float64
	Up     []float64
}

// BuffersData holds the finite-buffering study.
type BuffersData struct {
	Threads []int
	Series  []BufferSeries
}

// ExtensionFiniteBuffers implements the paper's footnote 3: with limited
// network buffering (modeled as an injection window per PE), S_obs
// saturates with n_t instead of growing without bound.
func ExtensionFiniteBuffers(opts ValidationOptions) (*BuffersData, error) {
	opts = opts.withDefaults()
	out := &BuffersData{Threads: sweep.IntRange(1, 10, 1)}
	windows := []int{0, 4, 2, 1}
	type point struct {
		window, nt int
	}
	var pts []point
	for _, window := range windows {
		for _, nt := range out.Threads {
			pts = append(pts, point{window, nt})
		}
	}
	results, err := sweep.Run(context.Background(), pts, sweepOptions(), func(p point) (simmms.Result, error) {
		cfg := mms.DefaultConfig()
		cfg.PRemote = 0.5
		cfg.Threads = p.nt
		return simmms.Run(cfg, simmms.Options{
			Engine: simmms.Direct, Seed: sweep.DeriveSeed(opts.Seed, int64(p.window), int64(p.nt)),
			Warmup: opts.Warmup, Duration: opts.Duration,
			NetworkWindow: p.window,
		})
	})
	if err != nil {
		return nil, err
	}
	i := 0
	for _, window := range windows {
		series := BufferSeries{Window: window}
		for range out.Threads {
			series.SObs = append(series.SObs, results[i].SObs)
			series.Up = append(series.Up, results[i].Up)
			i++
		}
		out.Series = append(out.Series, series)
	}
	return out, nil
}

// Render prints S_obs vs n_t per window.
func (d *BuffersData) Render() string {
	xs := make([]float64, len(d.Threads))
	for i, nt := range d.Threads {
		xs[i] = float64(nt)
	}
	var series []report.Series
	for _, s := range d.Series {
		name := "window=inf"
		if s.Window > 0 {
			name = fmt.Sprintf("window=%d", s.Window)
		}
		series = append(series, report.Series{Name: name, X: xs, Y: s.SObs})
	}
	var b strings.Builder
	b.WriteString(report.RenderSeries(
		"S_obs vs n_t under injection-window flow control (Direct DES, p_remote=0.5)",
		"n_t", 1, series...))
	b.WriteString("With finite buffering S_obs saturates in n_t (paper footnote 3); unbounded buffering grows linearly.\n")
	return b.String()
}

// PipelinedRow is one operating point of the pipelined-switch study.
type PipelinedRow struct {
	PRemote float64
	Ports   int
	Up      float64
	SObs    float64
}

// PipelinedData holds the pipelined-switch study.
type PipelinedData struct{ Rows []PipelinedRow }

// ExtensionPipelinedSwitches revisits the paper's non-pipelined-switch
// assumption: modeling a pipelined switch as a multi-server station shows
// how much latency and utilization the assumption costs at light vs heavy
// network load.
func ExtensionPipelinedSwitches() (*PipelinedData, error) {
	out := &PipelinedData{}
	for _, p := range []float64{0.1, 0.3, 0.6} {
		for _, portCount := range []int{1, 2, 4} {
			cfg := mms.DefaultConfig()
			cfg.PRemote = p
			cfg.SwitchPorts = portCount
			met, err := mms.Solve(cfg)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, PipelinedRow{PRemote: p, Ports: portCount, Up: met.Up, SObs: met.SObs})
		}
	}
	return out, nil
}

// At returns (U_p, S_obs) for one operating point.
func (d *PipelinedData) At(p float64, portCount int) (float64, float64) {
	for _, r := range d.Rows {
		if r.PRemote == p && r.Ports == portCount {
			return r.Up, r.SObs
		}
	}
	return 0, 0
}

// Render prints the pipelined-switch table.
func (d *PipelinedData) Render() string {
	t := report.NewTable(
		"Pipelined switches as multi-server stations (analytical, n_t=8, R=10)",
		"p_remote", "switch ports", "U_p", "S_obs")
	for _, r := range d.Rows {
		t.Add(report.Float(r.PRemote, -1), fmt.Sprintf("%d", r.Ports),
			report.Float(r.Up, 3), report.Float(r.SObs, 1))
	}
	return t.String() +
		"Below saturation pipelining mostly trims S_obs; past saturation it buys back bandwidth and U_p.\n"
}

// HotSpotRow is one hot-spot fraction's outcome.
type HotSpotRow struct {
	Fraction   float64
	MinUp      float64
	MeanUp     float64
	MaxUp      float64
	HotMemUtil float64
}

// HotSpotData holds the hot-spot study.
type HotSpotData struct{ Rows []HotSpotRow }

// ExtensionHotSpot concentrates a growing fraction of every PE's remote
// accesses on memory module 0 and solves the asymmetric system with the
// full multiclass AMVA.
func ExtensionHotSpot() (*HotSpotData, error) {
	out := &HotSpotData{}
	for _, f := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		cfg := mms.DefaultConfig()
		cfg.PRemote = 0.4
		h, err := mms.BuildHotSpot(cfg, 0, f)
		if err != nil {
			return nil, err
		}
		met, err := h.Solve(mms.SolveOptions{})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, HotSpotRow{
			Fraction: f, MinUp: met.MinUp, MeanUp: met.MeanUp, MaxUp: met.MaxUp,
			HotMemUtil: met.HotMemUtilization,
		})
	}
	return out, nil
}

// Render prints the hot-spot table.
func (d *HotSpotData) Render() string {
	t := report.NewTable(
		"Hot-spot traffic toward memory 0 (full multiclass AMVA, p_remote=0.4, n_t=8)",
		"hot fraction", "min U_p", "mean U_p", "max U_p", "hot mem util")
	for _, r := range d.Rows {
		t.Add(report.Float(r.Fraction, -1),
			report.Float(r.MinUp, 3), report.Float(r.MeanUp, 3), report.Float(r.MaxUp, 3),
			report.Float(r.HotMemUtil, 3))
	}
	return t.String() +
		"Concentrated sharing saturates one module and drags every PE down — locality in the *pattern*, not just distance, decides tolerance.\n"
}

// ImbalanceRow is one thread-distribution spread's outcome.
type ImbalanceRow struct {
	Spread          int
	MinUp           float64
	MeanUp          float64
	MaxUp           float64
	TotalThroughput float64
}

// ImbalanceData holds the load-imbalance study.
type ImbalanceData struct{ Rows []ImbalanceRow }

// ExtensionImbalance keeps the machine-wide thread count fixed (16 PEs × 8
// threads) and skews the distribution checkerboard-style: half the PEs gain
// `spread` threads, half lose them. It quantifies the paper's even-load
// (SPMD) assumption: U_p is concave in n_t, so imbalance always costs total
// throughput.
func ExtensionImbalance() (*ImbalanceData, error) {
	cfg := mms.DefaultConfig()
	tor := topology.MustTorus(cfg.K)
	out := &ImbalanceData{}
	for _, spread := range []int{0, 2, 4, 6, 8} {
		threads, err := mms.Imbalance(tor, tor.Nodes()*cfg.Threads, spread)
		if err != nil {
			return nil, err
		}
		h, err := mms.BuildHeterogeneous(cfg, threads)
		if err != nil {
			return nil, err
		}
		met, err := h.Solve(mms.SolveOptions{})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ImbalanceRow{
			Spread: spread, MinUp: met.MinUp, MeanUp: met.MeanUp, MaxUp: met.MaxUp,
			TotalThroughput: met.TotalThroughput,
		})
	}
	return out, nil
}

// Render prints the imbalance table.
func (d *ImbalanceData) Render() string {
	t := report.NewTable(
		"Load imbalance at fixed total threads (128 over 16 PEs, p_remote=0.2, R=10)",
		"spread (±threads)", "min U_p", "mean U_p", "max U_p", "total P·U_p")
	for _, r := range d.Rows {
		t.Add(fmt.Sprintf("%d", r.Spread),
			report.Float(r.MinUp, 3), report.Float(r.MeanUp, 3), report.Float(r.MaxUp, 3),
			report.Float(r.TotalThroughput, 2))
	}
	return t.String() +
		"U_p is concave in n_t: threads moved from starved PEs help loaded PEs less than they hurt,\n" +
		"so any imbalance costs machine throughput — the paper's SPMD assumption is load-bearing.\n"
}

// MeshRow compares one machine size on both topologies.
type MeshRow struct {
	K            int
	Topology     string
	MeanDistance float64
	MeanUp       float64
	MinUp        float64
	MaxUp        float64
	MeanSObs     float64
}

// MeshData holds the mesh-vs-torus study.
type MeshData struct{ Rows []MeshRow }

// ExtensionMeshVsTorus solves the default workload on a 2-D mesh (no
// wraparound links) and on the paper's torus for several machine sizes. The
// mesh loses twice: routes are longer on average (higher d_avg and S_obs)
// and it is not vertex-transitive, so center switches concentrate traffic
// and per-PE utilization spreads out.
func ExtensionMeshVsTorus() (*MeshData, error) {
	out := &MeshData{}
	for _, k := range []int{4, 6, 8} {
		for _, meshTopo := range []bool{false, true} {
			cfg := mms.DefaultConfig()
			cfg.PRemote = 0.4
			var net topology.Network
			if meshTopo {
				net = topology.MustMesh(k)
			} else {
				net = topology.MustTorus(k)
			}
			model, err := mms.BuildOnTopology(cfg, net)
			if err != nil {
				return nil, err
			}
			met, err := model.Solve(mms.SolveOptions{})
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, MeshRow{
				K: k, Topology: net.Name(), MeanDistance: met.MeanDistance,
				MeanUp: met.MeanUp, MinUp: met.MinUp, MaxUp: met.MaxUp, MeanSObs: met.MeanSObs,
			})
		}
	}
	return out, nil
}

// Render prints the mesh-vs-torus table.
func (d *MeshData) Render() string {
	t := report.NewTable(
		"Mesh vs torus under the default workload (p_remote=0.4, n_t=8, R=10)",
		"k", "topology", "d_avg", "mean U_p", "min U_p", "max U_p", "S_obs")
	for _, r := range d.Rows {
		t.Add(fmt.Sprintf("%d", r.K), r.Topology,
			report.Float(r.MeanDistance, 2),
			report.Float(r.MeanUp, 3), report.Float(r.MinUp, 3), report.Float(r.MaxUp, 3),
			report.Float(r.MeanSObs, 1))
	}
	return t.String() +
		"Wraparound links keep d_avg bounded and every PE equivalent; the mesh pays in\n" +
		"longer routes and a corner-to-center utilization spread.\n"
}

// BarrierRow is one barrier-interval operating point (simulation).
type BarrierRow struct {
	Interval int // accesses per thread per superstep; 0 = free running
	Up       float64
	SObs     float64
}

// BarrierData holds the barrier-synchronization study.
type BarrierData struct{ Rows []BarrierRow }

// ExtensionBarrier measures the cost of the synchronization the paper's
// free-running thread model leaves out: real do-all loops separate parallel
// phases with machine-wide barriers. Each row runs the direct simulator with
// a barrier after `interval` accesses per thread.
func ExtensionBarrier(opts ValidationOptions) (*BarrierData, error) {
	opts = opts.withDefaults()
	// Every interval runs on the same seed (common random numbers), so the
	// superstep granularity is the only thing that varies between rows.
	seed := sweep.DeriveSeed(opts.Seed, 91)
	rows, err := sweep.Run(context.Background(), []int{0, 1, 2, 4, 8, 16, 32}, sweepOptions(), func(interval int) (BarrierRow, error) {
		cfg := mms.DefaultConfig()
		cfg.PRemote = 0.3
		r, err := simmms.Run(cfg, simmms.Options{
			Engine: simmms.Direct, Seed: seed,
			Warmup: opts.Warmup, Duration: opts.Duration,
			BarrierInterval: interval,
		})
		if err != nil {
			return BarrierRow{}, err
		}
		return BarrierRow{Interval: interval, Up: r.Up, SObs: r.SObs}, nil
	})
	if err != nil {
		return nil, err
	}
	return &BarrierData{Rows: rows}, nil
}

// Render prints the barrier table.
func (d *BarrierData) Render() string {
	t := report.NewTable(
		"Barrier synchronization between do-all supersteps (Direct DES, p_remote=0.3, n_t=8)",
		"accesses per superstep", "U_p", "S_obs")
	for _, r := range d.Rows {
		label := fmt.Sprintf("%d", r.Interval)
		if r.Interval == 0 {
			label = "free running"
		}
		t.Add(label, report.Float(r.Up, 3), report.Float(r.SObs, 1))
	}
	return t.String() +
		"Machine-wide barriers wait for the slowest of all threads; frequent synchronization\n" +
		"halves U_p, and even 32 accesses per superstep keep a visible tail — the paper's\n" +
		"free-running model is an upper bound on what a real do-all loop achieves.\n"
}
