package experiments

import (
	"lattol/internal/simmms"
	"strings"
	"testing"
)

func TestExtensionsRegistered(t *testing.T) {
	ext := Extensions()
	if len(ext) != 9 {
		t.Fatalf("%d extensions, want 9", len(ext))
	}
	ids := map[string]bool{}
	for _, e := range ext {
		if e.ID == "" || e.Render == nil {
			t.Errorf("incomplete extension %+v", e)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"ext-memports", "ext-priority", "ext-buffers", "ext-pipelined", "ext-hotspot", "ext-imbalance", "ext-mesh", "ext-barrier", "ext-deviation"} {
		if !ids[want] {
			t.Errorf("missing extension %q", want)
		}
	}
}

func TestExtensionMemoryPorts(t *testing.T) {
	d, err := ExtensionMemoryPorts()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 6 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	// Multiporting helps both networks, the ideal network at least as much
	// (its memories carry the raw contention the switches would otherwise
	// absorb).
	if d.Gain(true, 4) < 1.05 {
		t.Errorf("ideal-network gain %v, want > 5%%", d.Gain(true, 4))
	}
	if d.Gain(false, 4) < 1.03 {
		t.Errorf("real-network gain %v, want > 3%%", d.Gain(false, 4))
	}
	if d.Gain(true, 4) < d.Gain(false, 4)-0.02 {
		t.Errorf("ideal gain %v should be at least the real gain %v", d.Gain(true, 4), d.Gain(false, 4))
	}
	if !strings.Contains(d.Render(), "mem ports") {
		t.Error("render missing column")
	}
}

func TestExtensionLocalPriority(t *testing.T) {
	d, err := ExtensionLocalPriority(fastValidation())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 4 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	for _, ideal := range []bool{false, true} {
		if d.LObsLocalAt(ideal, true) >= d.LObsLocalAt(ideal, false) {
			t.Errorf("ideal=%v: priority local residence %v not below FCFS %v",
				ideal, d.LObsLocalAt(ideal, true), d.LObsLocalAt(ideal, false))
		}
	}
}

func TestExtensionFiniteBuffers(t *testing.T) {
	opts := fastValidation()
	d, err := ExtensionFiniteBuffers(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 4 {
		t.Fatalf("%d series", len(d.Series))
	}
	last := len(d.Threads) - 1
	for _, s := range d.Series {
		growth := s.SObs[last] / s.SObs[3] // n_t=10 vs n_t=4
		if s.Window == 0 && growth < 1.3 {
			t.Errorf("unbounded growth %v, want clearly increasing", growth)
		}
		if s.Window == 1 && growth > 1.1 {
			t.Errorf("window-1 growth %v, want saturated", growth)
		}
	}
}

func TestExtensionPipelinedSwitches(t *testing.T) {
	d, err := ExtensionPipelinedSwitches()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 9 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	// Below saturation (p=0.1): pipelining trims S_obs but barely moves U_p.
	up1, s1 := d.At(0.1, 1)
	up4, s4 := d.At(0.1, 4)
	if s4 >= s1 {
		t.Errorf("p=0.1: S_obs with 4 ports %v not below 1 port %v", s4, s1)
	}
	if up4-up1 > 0.02 {
		t.Errorf("p=0.1: U_p gain %v, want negligible below saturation", up4-up1)
	}
	// Past saturation (p=0.6): pipelining buys back substantial U_p.
	up1, _ = d.At(0.6, 1)
	up4, _ = d.At(0.6, 4)
	if up4 < 1.3*up1 {
		t.Errorf("p=0.6: 4-port U_p %v, want well above %v", up4, up1)
	}
}

func TestExtensionHotSpot(t *testing.T) {
	d, err := ExtensionHotSpot()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 5 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	// Mean U_p degrades monotonically with the hot fraction; the hot module
	// saturates.
	for i := 1; i < len(d.Rows); i++ {
		if d.Rows[i].MeanUp > d.Rows[i-1].MeanUp+1e-9 {
			t.Errorf("mean U_p rose from %v to %v at fraction %v",
				d.Rows[i-1].MeanUp, d.Rows[i].MeanUp, d.Rows[i].Fraction)
		}
	}
	lastRow := d.Rows[len(d.Rows)-1]
	if lastRow.HotMemUtil < 0.95 {
		t.Errorf("hot module utilization %v at fraction 0.5, want near 1", lastRow.HotMemUtil)
	}
	if d.Rows[0].MaxUp-d.Rows[0].MinUp > 1e-6 {
		t.Error("fraction 0 should be symmetric")
	}
}

func TestExtensionExhibitsRenderLight(t *testing.T) {
	// Render the analytical extensions end to end (the simulation-backed
	// ones are covered with fast options above).
	for _, e := range Extensions() {
		switch e.ID {
		case "ext-priority", "ext-buffers", "ext-barrier", "ext-deviation":
			continue
		}
		out, err := e.Render()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) < 40 {
			t.Errorf("%s: short output", e.ID)
		}
	}
}

func TestExtensionImbalance(t *testing.T) {
	d, err := ExtensionImbalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 5 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	// Total throughput decreases monotonically with spread; spread 0 is
	// symmetric.
	for i := 1; i < len(d.Rows); i++ {
		if d.Rows[i].TotalThroughput > d.Rows[i-1].TotalThroughput+1e-9 {
			t.Errorf("throughput rose with spread %d", d.Rows[i].Spread)
		}
	}
	if d.Rows[0].MaxUp-d.Rows[0].MinUp > 1e-6 {
		t.Error("spread 0 should be symmetric")
	}
	last := d.Rows[len(d.Rows)-1]
	if last.TotalThroughput > 0.8*d.Rows[0].TotalThroughput {
		t.Errorf("extreme imbalance throughput %v not clearly below balanced %v",
			last.TotalThroughput, d.Rows[0].TotalThroughput)
	}
}

func TestExtensionMeshVsTorus(t *testing.T) {
	d, err := ExtensionMeshVsTorus()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 6 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	byK := map[int]map[string]MeshRow{}
	for _, r := range d.Rows {
		if byK[r.K] == nil {
			byK[r.K] = map[string]MeshRow{}
		}
		kind := "torus"
		if strings.HasPrefix(r.Topology, "mesh") {
			kind = "mesh"
		}
		byK[r.K][kind] = r
	}
	for k, rows := range byK {
		mesh, torus := rows["mesh"], rows["torus"]
		if mesh.MeanUp >= torus.MeanUp {
			t.Errorf("k=%d: mesh U_p %v not below torus %v", k, mesh.MeanUp, torus.MeanUp)
		}
		if mesh.MeanDistance <= torus.MeanDistance {
			t.Errorf("k=%d: mesh d_avg %v not above torus %v", k, mesh.MeanDistance, torus.MeanDistance)
		}
		if mesh.MaxUp-mesh.MinUp < torus.MaxUp-torus.MinUp {
			t.Errorf("k=%d: mesh spread below torus spread", k)
		}
	}
}

func TestDeviationStudy(t *testing.T) {
	d, err := DeviationStudy(ValidationOptions{Seed: 3, Warmup: 4000, Duration: 40000})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 8 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	for _, r := range d.Rows {
		// Memory-contention relief holds in every configuration.
		if r.LObsFinite >= r.LObsIdeal {
			t.Errorf("k=%d psw=%g %v: L_obs finite %v not below ideal %v",
				r.K, r.Psw, r.SwitchDist, r.LObsFinite, r.LObsIdeal)
		}
		if r.Tol <= 0.5 || r.Tol > 1.05 {
			t.Errorf("k=%d psw=%g %v: tol %v out of plausible band", r.K, r.Psw, r.SwitchDist, r.Tol)
		}
	}
	// Deterministic switch service closes the gap relative to exponential
	// at matched (k, psw).
	tolOf := func(k int, psw float64, dist simmms.DistKind) float64 {
		for _, r := range d.Rows {
			if r.K == k && r.Psw == psw && r.SwitchDist == dist {
				return r.Tol
			}
		}
		t.Fatalf("missing row k=%d psw=%g %v", k, psw, dist)
		return 0
	}
	for _, k := range []int{4, 8} {
		for _, psw := range []float64{0.3, 0.5} {
			if tolOf(k, psw, simmms.DetDist) <= tolOf(k, psw, simmms.ExpDist) {
				t.Errorf("k=%d psw=%g: deterministic tol %v not above exponential %v",
					k, psw, tolOf(k, psw, simmms.DetDist), tolOf(k, psw, simmms.ExpDist))
			}
		}
	}
}

func TestExtensionBarrier(t *testing.T) {
	d, err := ExtensionBarrier(fastValidation())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 7 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	free := d.Rows[0].Up
	// Monotone recovery with coarser supersteps; frequent barriers cost a
	// lot.
	prev := 0.0
	for _, r := range d.Rows[1:] {
		if r.Up < prev-0.02 {
			t.Errorf("U_p fell from %v to %v at interval %d", prev, r.Up, r.Interval)
		}
		prev = r.Up
	}
	if d.Rows[1].Up > 0.7*free {
		t.Errorf("barrier-per-access U_p %v not well below free %v", d.Rows[1].Up, free)
	}
}
