package experiments

import (
	"context"
	"fmt"

	"lattol/internal/mms"
	"lattol/internal/report"
	"lattol/internal/simmms"
	"lattol/internal/sweep"
)

// DeviationRow is one simulated comparison of a finite network against the
// ideal (zero-delay) network.
type DeviationRow struct {
	K          int
	Psw        float64
	SwitchDist simmms.DistKind
	UpFinite   float64
	UpIdeal    float64
	Tol        float64 // UpFinite / UpIdeal
	LObsFinite float64
	LObsIdeal  float64
}

// DeviationData holds the study of the one documented deviation from the
// paper: its claim that tol_network exceeds 1 (up to ~1.05) for geometric
// traffic on large machines.
type DeviationData struct{ Rows []DeviationRow }

// DeviationStudy measures, by simulation, how close a finite network comes
// to (or surpasses) the ideal zero-delay network. Exponential switch service
// matches the analytical model (tol < 1 always, by product-form
// monotonicity); deterministic switch service maximizes the
// arrival-smoothing ("network as pipeline") effect the paper credits for its
// tol > 1 observation. The memory-contention relief (L_obs gap) is visible
// in every configuration.
func DeviationStudy(opts ValidationOptions) (*DeviationData, error) {
	opts = opts.withDefaults()
	type point struct {
		k    int
		psw  float64
		dist simmms.DistKind
	}
	var pts []point
	for _, k := range []int{4, 8} {
		for _, psw := range []float64{0.3, 0.5} {
			for _, dist := range []simmms.DistKind{simmms.ExpDist, simmms.DetDist} {
				pts = append(pts, point{k, psw, dist})
			}
		}
	}
	rows, err := sweep.Run(context.Background(), pts, sweepOptions(), func(p point) (DeviationRow, error) {
		cfg := mms.DefaultConfig()
		cfg.K = p.k
		cfg.Psw = p.psw
		// The seed depends on (k, psw) only: the finite and ideal networks
		// — and both switch-service distributions — run on common random
		// numbers, so their ratio isolates the network effect.
		seed := sweep.DeriveSeed(opts.Seed, int64(p.k), int64(p.psw*100))
		run := func(s float64) (simmms.Result, error) {
			c := cfg
			c.SwitchTime = s
			return simmms.Run(c, simmms.Options{
				Engine: simmms.Direct, Seed: seed,
				Warmup: opts.Warmup, Duration: opts.Duration,
				SwitchDist: p.dist,
			})
		}
		finite, err := run(cfg.SwitchTime)
		if err != nil {
			return DeviationRow{}, err
		}
		ideal, err := run(0)
		if err != nil {
			return DeviationRow{}, err
		}
		row := DeviationRow{
			K: p.k, Psw: p.psw, SwitchDist: p.dist,
			UpFinite: finite.Up, UpIdeal: ideal.Up,
			LObsFinite: finite.LObs, LObsIdeal: ideal.LObs,
		}
		if ideal.Up > 0 {
			row.Tol = finite.Up / ideal.Up
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &DeviationData{Rows: rows}, nil
}

// Render prints the deviation study.
func (d *DeviationData) Render() string {
	t := report.NewTable(
		"Deviation study: finite vs ideal network by simulation (n_t=8, R=10, p_remote=0.2)",
		"k", "p_sw", "switch service", "U_p finite", "U_p ideal", "tol", "L_obs finite", "L_obs ideal")
	for _, r := range d.Rows {
		t.Add(
			fmt.Sprintf("%d", r.K),
			report.Float(r.Psw, -1),
			r.SwitchDist.String(),
			report.Float(r.UpFinite, 3),
			report.Float(r.UpIdeal, 3),
			report.Float(r.Tol, 3),
			report.Float(r.LObsFinite, 1),
			report.Float(r.LObsIdeal, 1),
		)
	}
	return t.String() +
		"The finite network always relieves memory contention (L_obs finite < L_obs ideal) and\n" +
		"deterministic switch service (maximal pipelining) closes most of the remaining U_p gap;\n" +
		"in our exponential product-form world tol stays below 1 where the paper reports up to 1.05.\n"
}
