package experiments

import (
	"context"
	"fmt"
	"strings"

	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/report"
	"lattol/internal/sweep"
	"lattol/internal/tolerance"
)

// WorkloadSurfaces holds the four panels of the paper's Figures 4 and 5:
// U_p, S_obs, λ_net and tol_network as functions of n_t × p_remote at a
// fixed runlength.
type WorkloadSurfaces struct {
	Runlength float64
	Threads   []int
	PRemote   []float64
	// Panels indexed [ti][pi].
	Up     [][]float64
	SObs   [][]float64
	LamNet [][]float64
	TolNet [][]float64
}

// workloadGrid is the reconstructed axis grid of Figures 4/5: n_t = 1..10,
// p_remote = 0.05..0.90 in steps of 0.05 (computed as exact hundredths so
// axis labels print cleanly).
func workloadGrid() ([]int, []float64) {
	var ps []float64
	for c := 5; c <= 90; c += 5 {
		ps = append(ps, float64(c)/100)
	}
	return sweep.IntRange(1, 10, 1), ps
}

// Figure4 computes the panels at R = 10.
func Figure4() (*WorkloadSurfaces, error) { return workloadSurfaces(10) }

// Figure5 computes the panels at R = 20.
func Figure5() (*WorkloadSurfaces, error) { return workloadSurfaces(20) }

func workloadSurfaces(r float64) (*WorkloadSurfaces, error) {
	threads, ps := workloadGrid()
	w := &WorkloadSurfaces{Runlength: r, Threads: threads, PRemote: ps}
	type cell struct{ up, sobs, lnet, tol float64 }
	// Each sweep worker owns one solver workspace, reused across all its
	// grid cells (and inside tolerance.Compute's real + ideal solves). The
	// snake traversal hands every worker a contiguous path of adjacent
	// operating points, so each warm-started solve continues from its
	// neighbor's converged solution; Anderson mixing accelerates whatever
	// iterations remain.
	opts := sweepOptions()
	opts.Traversal = sweep.Snake
	z, err := sweep.Grid2DCtxWithWorker(context.Background(), ps, threads, opts,
		func() *mms.Workspace { return new(mms.Workspace) },
		func(ws *mms.Workspace, p float64, nt int) (cell, error) {
			cfg := mms.DefaultConfig()
			cfg.Runlength = r
			cfg.Threads = nt
			cfg.PRemote = p
			solveOpts := mms.SolveOptions{Workspace: ws, WarmStart: true, Accel: mva.AccelAnderson}
			model, err := mms.Build(cfg)
			if err != nil {
				return cell{}, err
			}
			met, err := model.Solve(solveOpts)
			if err != nil {
				return cell{}, err
			}
			idx, err := tolerance.Compute(cfg, tolerance.Network, tolerance.ZeroRemote, solveOpts)
			if err != nil {
				return cell{}, err
			}
			return cell{up: met.Up, sobs: met.SObs, lnet: met.LambdaNet, tol: idx.Tol}, nil
		})
	if err != nil {
		return nil, err
	}
	for ti := range threads {
		row := z[ti]
		up := make([]float64, len(ps))
		so := make([]float64, len(ps))
		ln := make([]float64, len(ps))
		tl := make([]float64, len(ps))
		for pi := range ps {
			up[pi], so[pi], ln[pi], tl[pi] = row[pi].up, row[pi].sobs, row[pi].lnet, row[pi].tol
		}
		w.Up = append(w.Up, up)
		w.SObs = append(w.SObs, so)
		w.LamNet = append(w.LamNet, ln)
		w.TolNet = append(w.TolNet, tl)
	}
	return w, nil
}

// Render prints the four panels as value grids.
func (w *WorkloadSurfaces) Render() string {
	ys := make([]float64, len(w.Threads))
	for i, nt := range w.Threads {
		ys[i] = float64(nt)
	}
	var b strings.Builder
	for _, panel := range []struct {
		name string
		z    [][]float64
		prec int
	}{
		{"U_p", w.Up, 3},
		{"S_obs", w.SObs, 1},
		{"lambda_net", w.LamNet, 4},
		{"tol_network", w.TolNet, 3},
	} {
		s := &report.Surface{
			Title:  fmt.Sprintf("%s at R = %g", panel.name, w.Runlength),
			XLabel: "p_remote", YLabel: "n_t",
			Xs: w.PRemote, Ys: ys, Z: panel.z, Prec: panel.prec,
		}
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// MatchedRow is one row of Table 2: an operating point chosen so that S_obs
// matches a target while (n_t, R, p_remote) differ, demonstrating that S_obs
// alone does not determine tolerance.
type MatchedRow struct {
	R       float64
	Threads int
	PRemote float64
	LObs    float64
	SObs    float64
	LamNet  float64
	Up      float64
	TolNet  float64
	Zone    tolerance.Zone
}

// Table2Data holds the matched-S_obs rows for R = 10 and R = 20.
type Table2Data struct {
	Rows []MatchedRow
}

// Table2 reproduces the paper's Table 2 construction: for each runlength it
// picks several thread counts and, for each, searches the p_remote that
// makes S_obs land on a common target (53 cycles at R = 10, 56 at R = 20 —
// the values quoted in the paper), then reports the very different tolerance
// indices at those matched latencies.
func Table2() (*Table2Data, error) {
	type pt struct {
		r      float64
		target float64
		nt     int
	}
	var pts []pt
	for _, grp := range []struct {
		r      float64
		target float64
		nts    []int
	}{
		{10, 53, []int{3, 5, 8, 10}},
		{20, 56, []int{3, 4, 6, 8}},
	} {
		for _, nt := range grp.nts {
			pts = append(pts, pt{grp.r, grp.target, nt})
		}
	}
	rows, err := sweep.Run(context.Background(), pts, sweepOptions(), func(p pt) (MatchedRow, error) {
		return matchSObs(p.r, p.nt, p.target)
	})
	if err != nil {
		return nil, err
	}
	return &Table2Data{Rows: rows}, nil
}

// matchSObs binary-searches p_remote in (0, 0.95] so the solved S_obs hits
// the target; S_obs is monotone in p_remote until network saturation, where
// it plateaus — the search returns the plateau point in that case.
func matchSObs(r float64, nt int, target float64) (MatchedRow, error) {
	cfg := mms.DefaultConfig()
	cfg.Runlength = r
	cfg.Threads = nt
	lo, hi := 0.01, 0.95
	var best mms.Metrics
	bestP := hi
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		cfg.PRemote = mid
		met, err := mms.Solve(cfg)
		if err != nil {
			return MatchedRow{}, err
		}
		best, bestP = met, mid
		if met.SObs < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	cfg.PRemote = bestP
	idx, err := tolerance.NetworkIndex(cfg)
	if err != nil {
		return MatchedRow{}, err
	}
	return MatchedRow{
		R: r, Threads: nt, PRemote: bestP,
		LObs: best.LObs, SObs: best.SObs, LamNet: best.LambdaNet,
		Up: best.Up, TolNet: idx.Tol, Zone: idx.Zone(),
	}, nil
}

// Render prints Table 2.
func (d *Table2Data) Render() string {
	t := report.NewTable(
		"Table 2: network latency tolerance at matched S_obs — same latency, different tolerance",
		"R", "n_t", "p_remote", "L_obs", "S_obs", "lambda_net", "U_p", "tol_network", "zone")
	for _, r := range d.Rows {
		t.Add(
			report.Float(r.R, -1),
			fmt.Sprintf("%d", r.Threads),
			report.Float(r.PRemote, 3),
			report.Float(r.LObs, 1),
			report.Float(r.SObs, 1),
			report.Float(r.LamNet, 4),
			report.Float(r.Up, 3),
			report.Float(r.TolNet, 3),
			r.Zone.String(),
		)
	}
	return t.String()
}
