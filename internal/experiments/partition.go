package experiments

import (
	"context"
	"fmt"
	"strings"

	"lattol/internal/mms"
	"lattol/internal/report"
	"lattol/internal/sweep"
	"lattol/internal/tolerance"
)

// TolSurfaces holds tol_network (Figure 6) or tol_memory (Figure 8) over the
// n_t × R plane for two values of a secondary parameter.
type TolSurfaces struct {
	Metric    string // "tol_network" or "tol_memory"
	Secondary string // "p_remote" or "L"
	Values    []float64
	Threads   []int
	Runs      []float64
	// Z[vi][ti][ri]
	Z [][][]float64
}

// partitionGrid is the reconstructed n_t × R grid of Figures 6 and 8.
func partitionGrid() ([]int, []float64) {
	return sweep.IntRange(1, 10, 1), []float64{2, 5, 10, 15, 20, 25, 30, 35, 40}
}

// Figure6 computes tol_network over n_t × R for p_remote ∈ {0.2, 0.4}.
func Figure6() (*TolSurfaces, error) {
	threads, runs := partitionGrid()
	out := &TolSurfaces{
		Metric: "tol_network", Secondary: "p_remote",
		Values: []float64{0.2, 0.4}, Threads: threads, Runs: runs,
	}
	for _, p := range out.Values {
		z, err := sweep.Grid2DCtx(context.Background(), runs, threads, sweepOptions(), func(r float64, nt int) (float64, error) {
			cfg := mms.DefaultConfig()
			cfg.Runlength = r
			cfg.Threads = nt
			cfg.PRemote = p
			idx, err := tolerance.NetworkIndex(cfg)
			return idx.Tol, err
		})
		if err != nil {
			return nil, err
		}
		out.Z = append(out.Z, z)
	}
	return out, nil
}

// Figure8 computes tol_memory over n_t × R for L ∈ {10, 20} at
// p_remote = 0.2.
func Figure8() (*TolSurfaces, error) {
	threads, runs := partitionGrid()
	out := &TolSurfaces{
		Metric: "tol_memory", Secondary: "L",
		Values: []float64{10, 20}, Threads: threads, Runs: runs,
	}
	for _, l := range out.Values {
		z, err := sweep.Grid2DCtx(context.Background(), runs, threads, sweepOptions(), func(r float64, nt int) (float64, error) {
			cfg := mms.DefaultConfig()
			cfg.Runlength = r
			cfg.Threads = nt
			cfg.MemoryTime = l
			idx, err := tolerance.MemoryIndex(cfg)
			return idx.Tol, err
		})
		if err != nil {
			return nil, err
		}
		out.Z = append(out.Z, z)
	}
	return out, nil
}

// Render prints one grid per secondary value.
func (s *TolSurfaces) Render() string {
	ys := make([]float64, len(s.Threads))
	for i, nt := range s.Threads {
		ys[i] = float64(nt)
	}
	var b strings.Builder
	for vi, v := range s.Values {
		sur := &report.Surface{
			Title:  fmt.Sprintf("%s with %s = %g", s.Metric, s.Secondary, v),
			XLabel: "R", YLabel: "n_t",
			Xs: s.Runs, Ys: ys, Z: s.Z[vi], Prec: 3,
		}
		b.WriteString(sur.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// PartitionCurves holds Figure 7: tol_network along iso-work curves
// n_t·R = const, as a function of R, for two p_remote values.
type PartitionCurves struct {
	PRemote []float64
	Works   []int
	// Curves[pi][wi] is the series for work = Works[wi] at
	// p_remote = PRemote[pi].
	Curves [][]report.Series
}

// Figure7 evaluates the paper's thread-partitioning strategy: expose a fixed
// amount of computation n_t·R ∈ {20, 40, 60, 80, 100} and trade thread count
// against runlength.
func Figure7() (*PartitionCurves, error) {
	out := &PartitionCurves{
		PRemote: []float64{0.2, 0.4},
		Works:   []int{20, 40, 60, 80, 100},
	}
	for _, p := range out.PRemote {
		var curves []report.Series
		for _, work := range out.Works {
			splits := workSplits(work)
			tols, err := sweep.RunWithWorker(context.Background(), splits, sweepOptions(),
				func() *mms.Workspace { return new(mms.Workspace) },
				func(ws *mms.Workspace, s [2]int) (float64, error) {
					cfg := mms.DefaultConfig()
					cfg.Threads = s[0]
					cfg.Runlength = float64(s[1])
					cfg.PRemote = p
					idx, err := tolerance.Compute(cfg, tolerance.Network, tolerance.ZeroRemote, mms.SolveOptions{Workspace: ws})
					return idx.Tol, err
				})
			if err != nil {
				return nil, err
			}
			series := report.Series{Name: fmt.Sprintf("n_t x R = %d", work)}
			for i, s := range splits {
				series.X = append(series.X, float64(s[1]))
				series.Y = append(series.Y, tols[i])
			}
			curves = append(curves, series)
		}
		out.Curves = append(out.Curves, curves)
	}
	return out, nil
}

// workSplits enumerates (n_t, R) integer factorizations of work with
// n_t >= 1, R >= 2, ordered by increasing R.
func workSplits(work int) [][2]int {
	var out [][2]int
	for r := 2; r <= work; r++ {
		if work%r == 0 {
			out = append(out, [2]int{work / r, r})
		}
	}
	return out
}

// Render prints one block per p_remote.
func (c *PartitionCurves) Render() string {
	var b strings.Builder
	for pi, p := range c.PRemote {
		b.WriteString(report.RenderSeries(
			fmt.Sprintf("tol_network for thread partitioning at p_remote = %g", p),
			"R", 3, c.Curves[pi]...))
		b.WriteByte('\n')
	}
	return b.String()
}

// PartitionRow is one row of Tables 3 and 4: an (n_t, R) split of fixed
// work with all the paper's measures.
type PartitionRow struct {
	PRemote float64
	L       float64
	Threads int
	R       float64
	LObs    float64
	SObs    float64
	LamNet  float64
	Up      float64
	TolNet  float64
	TolMem  float64
}

// PartitionTable holds Table 3 or Table 4.
type PartitionTable struct {
	Title   string
	Columns []string
	Rows    []PartitionRow
}

// Table3 reproduces the thread-partitioning rows with n_t·R = 40 at
// p_remote ∈ {0.2, 0.4}.
func Table3() (*PartitionTable, error) {
	out := &PartitionTable{
		Title:   "Table 3: thread partitioning (n_t·R = 40) and network latency tolerance",
		Columns: []string{"p_remote", "n_t", "R", "L_obs", "S_obs", "lambda_net", "U_p", "tol_network"},
	}
	type pt struct {
		p     float64
		split [2]int
	}
	var pts []pt
	for _, p := range []float64{0.2, 0.4} {
		for _, s := range workSplits(40) {
			pts = append(pts, pt{p, s})
		}
	}
	rows, err := sweep.Run(context.Background(), pts, sweepOptions(), func(c pt) (PartitionRow, error) {
		cfg := mms.DefaultConfig()
		cfg.PRemote = c.p
		cfg.Threads = c.split[0]
		cfg.Runlength = float64(c.split[1])
		met, tolNet, tolMem, err := solveWithTol(cfg)
		if err != nil {
			return PartitionRow{}, err
		}
		return PartitionRow{
			PRemote: c.p, L: cfg.MemoryTime, Threads: c.split[0], R: float64(c.split[1]),
			LObs: met.LObs, SObs: met.SObs, LamNet: met.LambdaNet,
			Up: met.Up, TolNet: tolNet, TolMem: tolMem,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// Table4 reproduces the memory-latency-tolerance rows with n_t·R = 40,
// p_remote = 0.2, L ∈ {10, 20}.
func Table4() (*PartitionTable, error) {
	out := &PartitionTable{
		Title:   "Table 4: thread partitioning (n_t·R = 40) and memory latency tolerance, p_remote = 0.2",
		Columns: []string{"L", "n_t", "R", "L_obs", "S_obs", "U_p", "tol_memory"},
	}
	type pt struct {
		l     float64
		split [2]int
	}
	var pts []pt
	for _, l := range []float64{10, 20} {
		for _, s := range workSplits(40) {
			pts = append(pts, pt{l, s})
		}
	}
	rows, err := sweep.Run(context.Background(), pts, sweepOptions(), func(c pt) (PartitionRow, error) {
		cfg := mms.DefaultConfig()
		cfg.MemoryTime = c.l
		cfg.Threads = c.split[0]
		cfg.Runlength = float64(c.split[1])
		met, tolNet, tolMem, err := solveWithTol(cfg)
		if err != nil {
			return PartitionRow{}, err
		}
		return PartitionRow{
			PRemote: cfg.PRemote, L: c.l, Threads: c.split[0], R: float64(c.split[1]),
			LObs: met.LObs, SObs: met.SObs, LamNet: met.LambdaNet,
			Up: met.Up, TolNet: tolNet, TolMem: tolMem,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// Render prints the table.
func (p *PartitionTable) Render() string {
	t := report.NewTable(p.Title, p.Columns...)
	memTable := p.Columns[0] == "L"
	for _, r := range p.Rows {
		if memTable {
			t.Add(
				report.Float(r.L, -1),
				fmt.Sprintf("%d", r.Threads),
				report.Float(r.R, -1),
				report.Float(r.LObs, 1),
				report.Float(r.SObs, 1),
				report.Float(r.Up, 3),
				report.Float(r.TolMem, 3),
			)
		} else {
			t.Add(
				report.Float(r.PRemote, -1),
				fmt.Sprintf("%d", r.Threads),
				report.Float(r.R, -1),
				report.Float(r.LObs, 1),
				report.Float(r.SObs, 1),
				report.Float(r.LamNet, 4),
				report.Float(r.Up, 3),
				report.Float(r.TolNet, 3),
			)
		}
	}
	return t.String()
}
