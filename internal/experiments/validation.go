package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"lattol/internal/mms"
	"lattol/internal/report"
	"lattol/internal/simmms"
	"lattol/internal/sweep"
)

// ValidationOptions tunes the simulation effort of the Section 8
// experiments. The zero value selects horizons long enough for a few percent
// of sampling noise while staying fast; Full selects the paper's horizon.
type ValidationOptions struct {
	Seed     int64
	Warmup   float64 // default 20000
	Duration float64 // default 150000; the paper simulates 1e6 time units
	Threads  []int   // default 1..10
}

func (o ValidationOptions) withDefaults() ValidationOptions {
	if o.Warmup <= 0 {
		o.Warmup = 20000
	}
	if o.Duration <= 0 {
		o.Duration = 150000
	}
	if len(o.Threads) == 0 {
		o.Threads = sweep.IntRange(1, 10, 1)
	}
	return o
}

// ValidationPoint compares the analytical model with both simulators at one
// operating point.
type ValidationPoint struct {
	Threads   int
	S         float64
	Model     mms.Metrics
	STPN      simmms.Result
	Direct    simmms.Result
	LamNetErr float64 // |model - STPN| / STPN
	SObsErr   float64
}

// ValidationData holds Figure 11: λ_net and S_obs vs n_t, model vs
// simulation, at p_remote = 0.5 and S ∈ {10, 20}.
type ValidationData struct {
	Points []ValidationPoint
}

// Figure11 runs the Section 8 validation study.
func Figure11(opts ValidationOptions) (*ValidationData, error) {
	opts = opts.withDefaults()
	type pt struct {
		nt int
		s  float64
	}
	var pts []pt
	for _, s := range []float64{10, 20} {
		for _, nt := range opts.Threads {
			pts = append(pts, pt{nt, s})
		}
	}
	points, err := sweep.Run(context.Background(), pts, sweepOptions(), func(p pt) (ValidationPoint, error) {
		cfg := mms.DefaultConfig()
		cfg.PRemote = 0.5
		cfg.SwitchTime = p.s
		cfg.Threads = p.nt
		model, err := mms.Solve(cfg)
		if err != nil {
			return ValidationPoint{}, err
		}
		// Seeds depend on n_t but not on S: the S = 10 and S = 20 curves
		// run on common random numbers, per engine.
		stpn, err := simmms.Run(cfg, simmms.Options{
			Engine: simmms.STPN, Seed: sweep.DeriveSeed(opts.Seed, int64(p.nt)), Warmup: opts.Warmup, Duration: opts.Duration,
		})
		if err != nil {
			return ValidationPoint{}, err
		}
		direct, err := simmms.Run(cfg, simmms.Options{
			Engine: simmms.Direct, Seed: sweep.DeriveSeed(opts.Seed, int64(p.nt), 1), Warmup: opts.Warmup, Duration: opts.Duration,
		})
		if err != nil {
			return ValidationPoint{}, err
		}
		v := ValidationPoint{Threads: p.nt, S: p.s, Model: model, STPN: stpn, Direct: direct}
		if stpn.LambdaNet > 0 {
			v.LamNetErr = math.Abs(model.LambdaNet-stpn.LambdaNet) / stpn.LambdaNet
		}
		if stpn.SObs > 0 {
			v.SObsErr = math.Abs(model.SObs-stpn.SObs) / stpn.SObs
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	return &ValidationData{Points: points}, nil
}

// MaxErrors returns the largest relative deviations of the model from the
// STPN simulation over all points (λ_net, S_obs). The paper reports ≤2% and
// ≤5% respectively.
func (d *ValidationData) MaxErrors() (lamNet, sObs float64) {
	for _, p := range d.Points {
		if p.LamNetErr > lamNet {
			lamNet = p.LamNetErr
		}
		if p.SObsErr > sObs {
			sObs = p.SObsErr
		}
	}
	return lamNet, sObs
}

// Render prints the validation table.
func (d *ValidationData) Render() string {
	t := report.NewTable(
		"Figure 11: validation at p_remote = 0.5 — analytical model vs STPN and direct DES simulation",
		"S", "n_t",
		"lam_net model", "lam_net stpn", "lam_net des",
		"S_obs model", "S_obs stpn", "S_obs des",
		"err lam_net", "err S_obs")
	for _, p := range d.Points {
		t.Add(
			report.Float(p.S, -1),
			fmt.Sprintf("%d", p.Threads),
			report.Float(p.Model.LambdaNet, 4),
			report.Float(p.STPN.LambdaNet, 4),
			report.Float(p.Direct.LambdaNet, 4),
			report.Float(p.Model.SObs, 1),
			report.Float(p.STPN.SObs, 1),
			report.Float(p.Direct.SObs, 1),
			fmt.Sprintf("%.1f%%", p.LamNetErr*100),
			fmt.Sprintf("%.1f%%", p.SObsErr*100),
		)
	}
	lam, sobs := d.MaxErrors()
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "max model-vs-STPN deviation: lambda_net %.1f%%, S_obs %.1f%% (paper: ~2%%, ~5%%)\n",
		lam*100, sobs*100)
	return b.String()
}

// DetSensitivity holds the Section 8 service-distribution sensitivity study:
// S_obs with deterministic (and Erlang) memory service relative to the
// exponential baseline. The paper reports deviations within 10%.
type DetSensitivity struct {
	Rows []DetSensitivityRow
}

// DetSensitivityRow compares one memory-service distribution against the
// exponential baseline at one thread count.
type DetSensitivityRow struct {
	Threads  int
	Dist     simmms.DistKind
	SObs     float64
	Baseline float64
	RelDiff  float64
}

// ValidationDeterministic reruns the STPN simulation with deterministic and
// Erlang-4 memory service at p_remote = 0.5.
func ValidationDeterministic(opts ValidationOptions) (*DetSensitivity, error) {
	opts = opts.withDefaults()
	threads := opts.Threads
	if len(threads) > 4 {
		threads = []int{2, 4, 6, 8}
	}
	perThread, err := sweep.Run(context.Background(), threads, sweepOptions(), func(nt int) ([]DetSensitivityRow, error) {
		cfg := mms.DefaultConfig()
		cfg.PRemote = 0.5
		cfg.Threads = nt
		// One seed per thread count, shared by the baseline and both
		// alternative distributions: a paired (common-random-numbers)
		// comparison isolates the distribution effect.
		seed := sweep.DeriveSeed(opts.Seed, int64(nt))
		base, err := simmms.Run(cfg, simmms.Options{
			Engine: simmms.STPN, Seed: seed, Warmup: opts.Warmup, Duration: opts.Duration,
		})
		if err != nil {
			return nil, err
		}
		var rows []DetSensitivityRow
		for _, dist := range []simmms.DistKind{simmms.DetDist, simmms.Erlang4Dist} {
			r, err := simmms.Run(cfg, simmms.Options{
				Engine: simmms.STPN, Seed: seed, Warmup: opts.Warmup, Duration: opts.Duration,
				MemDist: dist,
			})
			if err != nil {
				return nil, err
			}
			row := DetSensitivityRow{Threads: nt, Dist: dist, SObs: r.SObs, Baseline: base.SObs}
			if base.SObs > 0 {
				row.RelDiff = math.Abs(r.SObs-base.SObs) / base.SObs
			}
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	out := &DetSensitivity{}
	for _, rows := range perThread {
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// MaxRelDiff returns the largest deviation across rows.
func (d *DetSensitivity) MaxRelDiff() float64 {
	max := 0.0
	for _, r := range d.Rows {
		if r.RelDiff > max {
			max = r.RelDiff
		}
	}
	return max
}

// Render prints the sensitivity table.
func (d *DetSensitivity) Render() string {
	t := report.NewTable(
		"Section 8 sensitivity: S_obs under non-exponential memory service (p_remote = 0.5, STPN)",
		"n_t", "memory service", "S_obs", "S_obs exp baseline", "rel diff")
	for _, r := range d.Rows {
		t.Add(
			fmt.Sprintf("%d", r.Threads),
			r.Dist.String(),
			report.Float(r.SObs, 1),
			report.Float(r.Baseline, 1),
			fmt.Sprintf("%.1f%%", r.RelDiff*100),
		)
	}
	return t.String() + fmt.Sprintf("max deviation: %.1f%% (paper: within 10%%)\n", d.MaxRelDiff()*100)
}
