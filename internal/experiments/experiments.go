// Package experiments regenerates every table and figure of the paper's
// evaluation: one driver per exhibit, each returning structured data plus a
// textual rendering. cmd/paperfigs prints them all; bench_test.go at the
// repository root exposes one benchmark per exhibit.
//
// Figures are rendered as value grids or aligned series (the textual
// counterpart of the paper's 3-D surface and line plots); tables are rendered
// directly. Axis ranges lost to OCR in the source text are reconstructed
// from the prose (see DESIGN.md §3).
package experiments

import (
	"fmt"
	"sync/atomic"

	"lattol/internal/mms"
	"lattol/internal/report"
	"lattol/internal/sweep"
	"lattol/internal/tolerance"
)

// progress holds the optional live-progress callback shared by every sweep
// in this package; cmd/paperfigs installs one to draw stderr counters.
var progress atomic.Pointer[func(done, total int)]

// SetProgress installs fn as the callback invoked after every finished
// sweep point of every driver, with the finished count and the point total
// of the current sweep. nil uninstalls it. Calls are serialized by the
// sweep runner; fn must not block.
func SetProgress(fn func(done, total int)) {
	if fn == nil {
		progress.Store(nil)
		return
	}
	progress.Store(&fn)
}

// sweepOptions returns the runner options shared by the drivers in this
// package: abort on the first failing point (the exhibits are
// all-or-nothing) and report live progress when a callback is installed.
func sweepOptions() sweep.Options {
	opts := sweep.Options{FailFast: true}
	if p := progress.Load(); p != nil {
		opts.OnPoint = *p
	}
	return opts
}

// Exhibit is one reproducible paper exhibit.
type Exhibit struct {
	// ID is the exhibit identifier, e.g. "figure4" or "table2".
	ID string
	// Title describes what the exhibit shows.
	Title string
	// Render regenerates the exhibit and returns its textual form.
	Render func() (string, error)
}

// All returns every exhibit in paper order.
func All() []Exhibit {
	return []Exhibit{
		{"table1", "Default settings for model parameters", func() (string, error) {
			return DefaultConfigTable().String(), nil
		}},
		{"figure4", "Effect of workload parameters at R = 10", func() (string, error) {
			f, err := Figure4()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"figure5", "Effect of workload parameters at R = 20", func() (string, error) {
			f, err := Figure5()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"table2", "Network latency tolerance at matched S_obs (R = 10 and 20)", func() (string, error) {
			t, err := Table2()
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"figure6", "tol_network vs n_t × R at p_remote = 0.2 and 0.4", func() (string, error) {
			f, err := Figure6()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"figure7", "Thread partitioning: tol_network along n_t·R = const", func() (string, error) {
			f, err := Figure7()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"table3", "Thread partitioning strategy and network latency tolerance (n_t·R = 40)", func() (string, error) {
			t, err := Table3()
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"figure8", "tol_memory vs n_t × R at L = 10 and 20", func() (string, error) {
			f, err := Figure8()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"table4", "Thread partitioning and memory latency tolerance (n_t·R = 40, p_remote = 0.2)", func() (string, error) {
			t, err := Table4()
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"figure9", "Scaling: tol_network vs n_t for k = 2..10, geometric vs uniform", func() (string, error) {
			f, err := Figure9()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"figure10", "Scaling: throughput and latencies vs P for ideal/geometric/uniform", func() (string, error) {
			f, err := Figure10()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"figure11", "Validation: λ_net and S_obs, model vs STPN and DES simulation", func() (string, error) {
			f, err := Figure11(ValidationOptions{})
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
		{"validation-det", "Sensitivity: deterministic vs exponential memory service", func() (string, error) {
			f, err := ValidationDeterministic(ValidationOptions{})
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		}},
	}
}

// DefaultConfigTable reproduces Table 1: the default parameter settings.
func DefaultConfigTable() *report.Table {
	cfg := mms.DefaultConfig()
	model, err := mms.Build(cfg)
	davg := 0.0
	if err == nil {
		davg = model.MeanDistance()
	}
	t := report.NewTable("Table 1: default settings for model parameters", "parameter", "value")
	t.Add("n_t (threads per processor)", fmt.Sprintf("%d (varied 1..10)", cfg.Threads))
	t.Add("p_remote", fmt.Sprintf("%g (varied; also 0.4)", cfg.PRemote))
	t.Add("R (thread runlength)", fmt.Sprintf("%g (also 20)", cfg.Runlength))
	t.Add("p_sw (locality)", fmt.Sprintf("%g (=> d_avg = %.3f)", cfg.Psw, davg))
	t.Add("L (memory access time)", report.Float(cfg.MemoryTime, -1))
	t.Add("S (switch delay)", report.Float(cfg.SwitchTime, -1))
	t.Add("k (PEs per dimension)", fmt.Sprintf("%d (scaling: 2..10)", cfg.K))
	t.Add("C (context switch)", report.Float(cfg.ContextSwitch, -1))
	return t
}

// solveWithTol returns the metrics of cfg plus tol_network (ZeroRemote
// ideal, the paper's preferred measurement mode) and tol_memory (ZeroDelay).
func solveWithTol(cfg mms.Config) (mms.Metrics, float64, float64, error) {
	met, err := mms.Solve(cfg)
	if err != nil {
		return mms.Metrics{}, 0, 0, err
	}
	netIdx, err := tolerance.NetworkIndex(cfg)
	if err != nil {
		return mms.Metrics{}, 0, 0, err
	}
	memIdx, err := tolerance.MemoryIndex(cfg)
	if err != nil {
		return mms.Metrics{}, 0, 0, err
	}
	return met, netIdx.Tol, memIdx.Tol, nil
}
