package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"lattol/internal/tolerance"
)

func TestAllExhibitsRegistered(t *testing.T) {
	ex := All()
	if len(ex) != 13 {
		t.Fatalf("%d exhibits, want 13", len(ex))
	}
	seen := map[string]bool{}
	for _, e := range ex {
		if e.ID == "" || e.Title == "" || e.Render == nil {
			t.Errorf("incomplete exhibit %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate exhibit id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"table1", "figure4", "figure5", "table2", "figure6",
		"figure7", "table3", "figure8", "table4", "figure9", "figure10", "figure11", "validation-det"} {
		if !seen[want] {
			t.Errorf("missing exhibit %q", want)
		}
	}
}

func TestDefaultConfigTable(t *testing.T) {
	out := DefaultConfigTable().String()
	for _, want := range []string{"n_t", "p_remote", "1.733", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Shapes(t *testing.T) {
	f, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Up) != len(f.Threads) || len(f.Up[0]) != len(f.PRemote) {
		t.Fatalf("panel shape %dx%d", len(f.Up), len(f.Up[0]))
	}
	// U_p decreasing in p_remote for every n_t row.
	for ti := range f.Threads {
		for pi := 1; pi < len(f.PRemote); pi++ {
			if f.Up[ti][pi] > f.Up[ti][pi-1]+1e-9 {
				t.Fatalf("U_p not decreasing in p at n_t=%d", f.Threads[ti])
			}
		}
	}
	// U_p increasing in n_t for every p column.
	for pi := range f.PRemote {
		for ti := 1; ti < len(f.Threads); ti++ {
			if f.Up[ti][pi] < f.Up[ti-1][pi]-1e-9 {
				t.Fatalf("U_p not increasing in n_t at p=%g", f.PRemote[pi])
			}
		}
	}
	// λ_net saturates near 0.029 (paper Eq. 4) at high p and n_t.
	last := f.LamNet[len(f.Threads)-1][len(f.PRemote)-1]
	if last < 0.025 || last > 0.0289 {
		t.Errorf("λ_net at saturation = %v, want ≈0.029", last)
	}
	// S_obs increases with n_t at fixed p (paper observation 2).
	pi := len(f.PRemote) / 2
	if f.SObs[9][pi] <= f.SObs[2][pi] {
		t.Errorf("S_obs not increasing with n_t: %v vs %v", f.SObs[9][pi], f.SObs[2][pi])
	}
	// tol_network tolerated at low p / n_t=8, not tolerated at very high p.
	if f.TolNet[7][0] < 0.8 {
		t.Errorf("tol at n_t=8, p=%g is %v, want tolerated", f.PRemote[0], f.TolNet[7][0])
	}
	if f.TolNet[7][len(f.PRemote)-1] >= 0.8 {
		t.Errorf("tol at n_t=8, p=%g is %v, want below 0.8", f.PRemote[len(f.PRemote)-1], f.TolNet[7][len(f.PRemote)-1])
	}
}

func TestFigure5HigherRunlengthToleratesMore(t *testing.T) {
	f4, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// At every grid point, R=20 tolerates at least as well as R=10 (small
	// numerical slack).
	for ti := range f4.Threads {
		for pi := range f4.PRemote {
			if f5.TolNet[ti][pi] < f4.TolNet[ti][pi]-0.02 {
				t.Fatalf("tol at R=20 below R=10 at n_t=%d p=%g: %v vs %v",
					f4.Threads[ti], f4.PRemote[pi], f5.TolNet[ti][pi], f4.TolNet[ti][pi])
			}
		}
	}
	// The U_p knee moves right: at p=0.4, n_t=8, R=20 clearly beats R=10.
	pi := indexOfClosest(f4.PRemote, 0.4)
	if f5.Up[7][pi] < f4.Up[7][pi]+0.05 {
		t.Errorf("U_p at p=0.4: R=20 %v vs R=10 %v", f5.Up[7][pi], f4.Up[7][pi])
	}
}

func indexOfClosest(xs []float64, v float64) int {
	best, bi := math.Inf(1), 0
	for i, x := range xs {
		if d := math.Abs(x - v); d < best {
			best, bi = d, i
		}
	}
	return bi
}

func TestTable2MatchedLatencyDifferentTolerance(t *testing.T) {
	d, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 8 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	// Rows within each R group share S_obs within ~15% of the target, yet
	// tolerance spans the zones (the paper's point: S_obs does not determine
	// tol_network).
	for _, grp := range []struct {
		r      float64
		target float64
	}{{10, 53}, {20, 56}} {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range d.Rows {
			if row.R != grp.r {
				continue
			}
			if math.Abs(row.SObs-grp.target)/grp.target > 0.15 {
				t.Errorf("R=%g n_t=%d: S_obs %v not matched to %v", grp.r, row.Threads, row.SObs, grp.target)
			}
			lo = math.Min(lo, row.TolNet)
			hi = math.Max(hi, row.TolNet)
		}
		if hi-lo < 0.10 {
			t.Errorf("R=%g: tolerance range [%v, %v] too narrow — matched S_obs should still separate zones", grp.r, lo, hi)
		}
	}
	// The paper's headline pair: n_t=8 tolerates S_obs≈53 at R=10, n_t=3
	// does not reach the tolerated zone.
	var tol8, tol3 float64
	for _, row := range d.Rows {
		if row.R == 10 && row.Threads == 8 {
			tol8 = row.TolNet
		}
		if row.R == 10 && row.Threads == 3 {
			tol3 = row.TolNet
		}
	}
	if tol8 < tolerance.ToleratedThreshold {
		t.Errorf("R=10 n_t=8: tol %v, want tolerated", tol8)
	}
	if tol3 >= tolerance.ToleratedThreshold {
		t.Errorf("R=10 n_t=3: tol %v, want below tolerated", tol3)
	}
}

func TestFigure6HigherPRemoteLowersTolerance(t *testing.T) {
	f, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Z) != 2 {
		t.Fatalf("%d surfaces", len(f.Z))
	}
	for ti := range f.Threads {
		for ri := range f.Runs {
			if f.Z[1][ti][ri] > f.Z[0][ti][ri]+1e-6 {
				t.Fatalf("tol at p=0.4 above p=0.2 at n_t=%d R=%g", f.Threads[ti], f.Runs[ri])
			}
		}
	}
	// Tolerance improves with R at fixed n_t (n_t = 4 row).
	row := f.Z[0][3]
	if row[len(row)-1] <= row[0] {
		t.Errorf("tol not improving with R: %v", row)
	}
}

func TestFigure7ThreadPartitioning(t *testing.T) {
	f, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Curves) != 2 || len(f.Curves[0]) != 5 {
		t.Fatalf("curve shape %dx%d", len(f.Curves), len(f.Curves[0]))
	}
	tolAt := func(pi, work int, r float64) float64 {
		for _, curve := range f.Curves[pi] {
			if curve.Name != "n_t x R = "+strconv.Itoa(work) {
				continue
			}
			for i, x := range curve.X {
				if x == r {
					return curve.Y[i]
				}
			}
		}
		t.Fatalf("missing point work=%d R=%g", work, r)
		return 0
	}
	// Paper Table 3 narrative at p = 0.2: tol_network is fairly constant for
	// R >= L, and "surprisingly high" for R <= L (both real and ideal systems
	// become memory-bound).
	if d := math.Abs(tolAt(0, 40, 10) - tolAt(0, 40, 40)); d > 0.1 {
		t.Errorf("p=0.2: tol along n_t·R=40 varies by %v, paper says fairly constant", d)
	}
	if tolAt(0, 40, 2) < 0.9 {
		t.Errorf("p=0.2: tol at R=2 (memory-bound) is %v, paper says surprisingly high", tolAt(0, 40, 2))
	}
	// Paper: "tol_network (and U_p) reaches its maximum even at n_t = 2" —
	// in the network-bound regime (p = 0.4, large work), n_t = 2 beats both
	// a finer split (n_t = 4) and full coalescing (n_t = 1).
	for _, work := range []int{60, 80} {
		n2 := tolAt(1, work, float64(work/2))
		n4 := tolAt(1, work, float64(work/4))
		n1 := tolAt(1, work, float64(work))
		if n2 <= n4 {
			t.Errorf("p=0.4 work=%d: tol(n_t=2)=%v not above tol(n_t=4)=%v", work, n2, n4)
		}
		if n1 >= n2 {
			t.Errorf("p=0.4 work=%d: tol(n_t=1)=%v should drop below tol(n_t=2)=%v", work, n1, n2)
		}
	}
	// At work = 100 the maximum sits at a small thread count and still drops
	// when fully coalesced to one thread.
	if n2, n1 := tolAt(1, 100, 50), tolAt(1, 100, 100); n1 >= n2 {
		t.Errorf("p=0.4 work=100: tol(n_t=1)=%v should drop below tol(n_t=2)=%v", n1, n2)
	}
	// Higher exposed work tolerates better: n_t·R=100 above n_t·R=20 at R=10.
	if tolAt(0, 100, 10) <= tolAt(0, 20, 10) {
		t.Error("more exposed work should tolerate better")
	}
}

func TestTable3Structure(t *testing.T) {
	d, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		if row.Threads*int(row.R) != 40 {
			t.Errorf("row n_t=%d R=%g: product %d != 40", row.Threads, row.R, row.Threads*int(row.R))
		}
	}
	out := d.Render()
	if !strings.Contains(out, "tol_network") {
		t.Error("render missing tol_network column")
	}
}

func TestFigure8MemoryTolerance(t *testing.T) {
	f, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	// L = 20 tolerates less than L = 10 everywhere.
	for ti := range f.Threads {
		for ri := range f.Runs {
			if f.Z[1][ti][ri] > f.Z[0][ti][ri]+1e-6 {
				t.Fatalf("tol_memory at L=20 above L=10 at n_t=%d R=%g", f.Threads[ti], f.Runs[ri])
			}
		}
	}
	// Paper: for R >= 2L and moderate n_t, tol_memory saturates near 1.
	ti := 3 // n_t = 4
	ri := len(f.Runs) - 1
	if f.Z[0][ti][ri] < 0.9 {
		t.Errorf("tol_memory at L=10, R=%g, n_t=4 is %v, want ~1", f.Runs[ri], f.Z[0][ti][ri])
	}
}

func TestTable4MemoryRows(t *testing.T) {
	d, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// Doubling L lowers tol_memory for matched (n_t, R).
	tolOf := func(l float64, nt int) float64 {
		for _, row := range d.Rows {
			if row.L == l && row.Threads == nt {
				return row.TolMem
			}
		}
		t.Fatalf("missing row L=%g n_t=%d", l, nt)
		return 0
	}
	for _, nt := range []int{2, 4, 8, 20} {
		if tolOf(20, nt) >= tolOf(10, nt) {
			t.Errorf("n_t=%d: tol_memory at L=20 (%v) not below L=10 (%v)", nt, tolOf(20, nt), tolOf(10, nt))
		}
	}
}

func TestFigure9GeometricBeatsUniform(t *testing.T) {
	f, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	// Pair up (k, uniform) and (k, geometric) series per runlength.
	for ri := range f.Runlengths {
		byName := map[string]int{}
		for ci, c := range f.Curves[ri] {
			byName[c.Name] = ci
		}
		for _, k := range f.Ks {
			uni := f.Curves[ri][byName[fmt.Sprintf("k=%d uniform", k)]]
			geo := f.Curves[ri][byName[fmt.Sprintf("k=%d geometric", k)]]
			for i := range uni.X {
				if geo.Y[i] < uni.Y[i]-1e-6 {
					t.Fatalf("R=%g k=%d n_t=%g: geometric %v below uniform %v",
						f.Runlengths[ri], k, uni.X[i], geo.Y[i], uni.Y[i])
				}
			}
		}
		// At k = 2 the distributions coincide (all remote nodes are at
		// distance <= 2 and symmetric): curves must be near-identical.
		uni := f.Curves[ri][byName["k=2 uniform"]]
		geo := f.Curves[ri][byName["k=2 geometric"]]
		for i := range uni.X {
			if math.Abs(uni.Y[i]-geo.Y[i]) > 0.03 {
				t.Errorf("R=%g k=2: distributions should nearly coincide: %v vs %v",
					f.Runlengths[ri], geo.Y[i], uni.Y[i])
			}
		}
		// Uniform at k = 10 does not tolerate the network latency even at
		// n_t = 10 (R = 10 block).
		if ri == 0 {
			u10 := f.Curves[ri][byName["k=10 uniform"]]
			if u10.Y[len(u10.Y)-1] >= 0.8 {
				t.Errorf("uniform k=10 tol %v, want below 0.8", u10.Y[len(u10.Y)-1])
			}
			// Geometric at k = 10 approaches 1 with many threads.
			g10 := f.Curves[ri][byName["k=10 geometric"]]
			if g10.Y[len(g10.Y)-1] < 0.85 {
				t.Errorf("geometric k=10 tol %v, want > 0.85", g10.Y[len(g10.Y)-1])
			}
		}
	}
}

func TestFigure10ScalingShapes(t *testing.T) {
	f, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	last := len(f.Ps) - 1
	// Geometric throughput scales nearly linearly (within 25% of linear at
	// P=100); uniform collapses well below.
	if f.Geometric[last] < 0.7*f.Linear[last] {
		t.Errorf("geometric throughput %v at P=%d, want near-linear (%v)", f.Geometric[last], f.Ps[last], f.Linear[last])
	}
	if f.Uniform[last] > 0.75*f.Geometric[last] {
		t.Errorf("uniform throughput %v not well below geometric %v", f.Uniform[last], f.Geometric[last])
	}
	// Geometric stays close to the ideal-network system (paper: slightly
	// better than ideal; product form gives slightly below — within 10%).
	if f.Geometric[last] < 0.88*f.Ideal[last] {
		t.Errorf("geometric %v not close to ideal %v", f.Geometric[last], f.Ideal[last])
	}
	// The memory-contention-relief effect: at P=100 the ideal network sees
	// *higher* memory latency than the finite geometric network.
	if f.LObsIdeal[last] <= f.LObsGeometric[last] {
		t.Errorf("L_obs ideal %v not above geometric %v — contention relief missing",
			f.LObsIdeal[last], f.LObsGeometric[last])
	}
	// Uniform network latency grows much faster than geometric.
	if f.SObsUniform[last] < 2*f.SObsGeometric[last] {
		t.Errorf("S_obs uniform %v vs geometric %v", f.SObsUniform[last], f.SObsGeometric[last])
	}
}

func fastValidation() ValidationOptions {
	return ValidationOptions{Seed: 1, Warmup: 4000, Duration: 40000, Threads: []int{2, 6, 10}}
}

func TestFigure11ModelMatchesSimulations(t *testing.T) {
	d, err := Figure11(fastValidation())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 6 { // 3 thread counts × 2 switch delays
		t.Fatalf("%d points", len(d.Points))
	}
	lam, sobs := d.MaxErrors()
	// Short horizons: allow more noise than the paper's 2%/5%.
	if lam > 0.10 {
		t.Errorf("max λ_net error %.1f%%, want < 10%%", lam*100)
	}
	if sobs > 0.15 {
		t.Errorf("max S_obs error %.1f%%, want < 15%%", sobs*100)
	}
	out := d.Render()
	if !strings.Contains(out, "max model-vs-STPN deviation") {
		t.Error("render missing summary line")
	}
}

func TestValidationDeterministic(t *testing.T) {
	d, err := ValidationDeterministic(ValidationOptions{Seed: 2, Warmup: 4000, Duration: 40000, Threads: []int{4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 4 { // 2 thread counts × 2 distributions
		t.Fatalf("%d rows", len(d.Rows))
	}
	if d.MaxRelDiff() > 0.15 {
		t.Errorf("service-distribution sensitivity %.1f%%, paper says within ~10%%", d.MaxRelDiff()*100)
	}
}

func TestLightExhibitsRender(t *testing.T) {
	for _, e := range All() {
		switch e.ID {
		case "figure11", "validation-det":
			continue // exercised with fast options above
		}
		out, err := e.Render()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short output %q", e.ID, out)
		}
	}
}
