package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := NewTable("demo", "a", "bb")
	tab.Add("1", "2")
	tab.Add("333")
	out := tab.String()
	if !strings.HasPrefix(out, "demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("lines: %q", lines)
	}
	if !strings.Contains(lines[1], "a") || !strings.Contains(lines[1], "bb") {
		t.Errorf("header %q", lines[1])
	}
	// Missing cell padded blank, extra-wide cell aligns.
	if !strings.Contains(lines[4], "333") {
		t.Errorf("row %q", lines[4])
	}
}

func TestTableAddDropsExtras(t *testing.T) {
	tab := NewTable("", "only")
	tab.Add("x", "dropped")
	if len(tab.Rows[0]) != 1 || tab.Rows[0][0] != "x" {
		t.Errorf("rows %v", tab.Rows)
	}
}

func TestTableAddF(t *testing.T) {
	tab := NewTable("", "v1", "v2")
	tab.AddF(2, 1.234, 5.678)
	if tab.Rows[0][0] != "1.23" || tab.Rows[0][1] != "5.68" {
		t.Errorf("rows %v", tab.Rows)
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := NewTable("t", "x", "y")
	tab.Add(`a,b`, `say "hi"`)
	csv := tab.CSV()
	want := "x,y\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

func TestFloat(t *testing.T) {
	if Float(1.23456, 2) != "1.23" {
		t.Error("fixed precision")
	}
	if Float(1.5, -1) != "1.5" {
		t.Error("compact format")
	}
	if Float(2, -1) != "2" {
		t.Error("compact integer")
	}
}

func TestSurfaceString(t *testing.T) {
	s := &Surface{
		Title: "U_p", XLabel: "p", YLabel: "nt",
		Xs: []float64{0.1, 0.2},
		Ys: []float64{1, 2},
		Z:  [][]float64{{0.5, 0.4}, {0.7, 0.6}},
	}
	out := s.String()
	for _, want := range []string{"U_p", "0.1", "0.2", "0.500", "0.600"} {
		if !strings.Contains(out, want) {
			t.Errorf("surface missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeriesShared(t *testing.T) {
	out := RenderSeries("fig", "x", 2,
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
	)
	for _, want := range []string{"fig", "a", "b", "10.00", "40.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// One shared block: only one header rule line.
	if n := countRuleLines(out); n != 1 {
		t.Errorf("expected one block, got %d rules:\n%s", n, out)
	}
}

func countRuleLines(s string) int {
	n := 0
	for _, line := range strings.Split(s, "\n") {
		if line != "" && strings.Trim(line, "-") == "" {
			n++
		}
	}
	return n
}

func TestRenderSeriesDisjoint(t *testing.T) {
	out := RenderSeries("fig", "x", 2,
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "b", X: []float64{3}, Y: []float64{30}},
	)
	if strings.Count(out, "value") != 2 {
		t.Errorf("expected two blocks:\n%s", out)
	}
}

func TestRenderSeriesEmpty(t *testing.T) {
	out := RenderSeries("fig", "x", 2)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty render: %q", out)
	}
}
