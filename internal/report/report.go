// Package report renders experiment output as aligned ASCII tables, CSV, 2-D
// surfaces (the paper's 3-D plots, shown as value grids) and line series —
// everything cmd/paperfigs prints.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; missing cells are blank, extras are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddF appends a row of floats formatted with the given precision per cell.
func (t *Table) AddF(prec int, values ...float64) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = Float(v, prec)
	}
	t.Add(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(t.Columns)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (title omitted; cells with
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Float formats a float with the given number of decimals, trimming
// needless trailing zeros only when prec < 0 (then %g is used).
func Float(v float64, prec int) string {
	if prec < 0 {
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// Surface is a sampled function of two variables — the textual counterpart
// of the paper's 3-D plots. Z[yi][xi] corresponds to (Xs[xi], Ys[yi]).
type Surface struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Ys     []float64
	Z      [][]float64
	Prec   int
}

// String renders the surface as a grid: one row per Y value, one column per
// X value.
func (s *Surface) String() string {
	prec := s.Prec
	if prec == 0 {
		prec = 3
	}
	t := NewTable(fmt.Sprintf("%s  (rows: %s, cols: %s)", s.Title, s.YLabel, s.XLabel))
	t.Columns = append(t.Columns, s.YLabel+`\`+s.XLabel)
	for _, x := range s.Xs {
		t.Columns = append(t.Columns, Float(x, -1))
	}
	for yi, y := range s.Ys {
		cells := []string{Float(y, -1)}
		for xi := range s.Xs {
			cells = append(cells, Float(s.Z[yi][xi], prec))
		}
		t.Add(cells...)
	}
	return t.String()
}

// Series is one named line of a plot.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// RenderSeries renders several series sharing an X grid as one aligned
// table; series with differing X values are rendered as separate blocks.
func RenderSeries(title, xLabel string, prec int, series ...Series) string {
	if len(series) == 0 {
		return title + "\n(no data)\n"
	}
	if prec == 0 {
		prec = 3
	}
	shared := true
	for _, s := range series[1:] {
		if !sameGrid(series[0].X, s.X) {
			shared = false
			break
		}
	}
	if shared {
		t := NewTable(title, xLabel)
		for _, s := range series {
			t.Columns = append(t.Columns, s.Name)
		}
		for i, x := range series[0].X {
			cells := []string{Float(x, -1)}
			for _, s := range series {
				cells = append(cells, Float(s.Y[i], prec))
			}
			t.Add(cells...)
		}
		return t.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, s := range series {
		t := NewTable(s.Name, xLabel, "value")
		for i, x := range s.X {
			t.Add(Float(x, -1), Float(s.Y[i], prec))
		}
		b.WriteString(t.String())
	}
	return b.String()
}

func sameGrid(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
