package replicate

import (
	"context"
	"math"

	"lattol/internal/eval"
	"lattol/internal/mms"
	"lattol/internal/sweep"
	"lattol/internal/tolerance"
)

// Evaluator serves replicated simulation estimates through the uniform
// eval.Evaluator interface, so everything written against it — the inverse
// planner, frontier sweeps, the conformance harness — can run on a simulated
// backend instead of the analytical solvers.
//
// Every evaluation derives its seed from the configuration's own field bits
// (seedFor), so Evaluate is a pure function of its arguments: identical
// configurations replay identical random-number streams (common random
// numbers across evaluators and across probes), and a fresh Evaluator
// reproduces another's answers bit for bit. That purity is what lets
// conformance.CheckPlanOn certify a simulated plan against fresh forward
// evaluations with a tight agreement band.
//
// Tolerance indices replicate the ideal system too (Definition 4.3 as a
// ratio of two simulated utilizations). Ideal results are memoized on the
// ideal configuration — planner probe sequences that share an ideal system
// (e.g. a premote knob under the ZeroRemote ideal) pay for it once.
//
// Bound reports the achieved relative confidence half-width of U_p. Unlike
// the solver tiers' certified bounds it is statistical — a Student-t
// confidence statement, not a guarantee. Options.MaxError, when positive,
// tightens the replication precision target to it.
//
// An Evaluator is not safe for concurrent use (the replication runner
// parallelizes internally); give each goroutine its own.
type Evaluator struct {
	opts  Options
	ideal map[mms.Config]idealEstimate
}

type idealEstimate struct {
	up     float64
	solves int
}

// NewEvaluator returns a simulation-backed evaluator. opts.Sim.Seed is the
// base seed: two evaluators with equal Options agree bit for bit.
func NewEvaluator(opts Options) *Evaluator {
	return &Evaluator{opts: opts, ideal: make(map[mms.Config]idealEstimate)}
}

// seedFor mixes the base seed with the configuration's field bits, giving
// each operating point its own deterministic seed coordinate.
func seedFor(base int64, cfg mms.Config) int64 {
	return sweep.DeriveSeed(base,
		int64(cfg.K),
		int64(cfg.Threads),
		int64(math.Float64bits(cfg.Runlength)),
		int64(math.Float64bits(cfg.ContextSwitch)),
		int64(math.Float64bits(cfg.MemoryTime)),
		int64(math.Float64bits(cfg.SwitchTime)),
		int64(math.Float64bits(cfg.PRemote)),
		int64(math.Float64bits(cfg.Psw)),
		int64(cfg.GeometricMode),
		int64(cfg.MemoryPorts),
		int64(cfg.SwitchPorts),
	)
}

// run replicates one configuration with its derived seed.
func (e *Evaluator) run(ctx context.Context, cfg mms.Config, precision float64) (Result, error) {
	opts := e.opts
	opts.Sim.Seed = seedFor(e.opts.Sim.Seed, cfg)
	opts.Precision = precision
	return Run(ctx, cfg, opts)
}

// idealUp returns the replicated U_p of an ideal configuration, memoized so
// repeated probes sharing an ideal system simulate it once.
func (e *Evaluator) idealUp(ctx context.Context, cfg mms.Config, precision float64) (idealEstimate, error) {
	if est, ok := e.ideal[cfg]; ok {
		return est, nil
	}
	res, err := e.run(ctx, cfg, precision)
	if err != nil {
		return idealEstimate{}, err
	}
	est := idealEstimate{up: res.Up.Mean, solves: res.Reps}
	e.ideal[cfg] = est
	return est, nil
}

// Evaluate implements eval.Evaluator by replication. The Solver field of cfg
// is ignored: the "solution procedure" here is always simulation.
func (e *Evaluator) Evaluate(ctx context.Context, cfg eval.Config, opts eval.Options) (eval.Metrics, error) {
	precision := e.opts.Precision
	if opts.MaxError > 0 && (precision <= 0 || opts.MaxError < precision) {
		precision = opts.MaxError
	}
	res, err := e.run(ctx, cfg.Model, precision)
	if err != nil {
		return eval.Metrics{}, err
	}
	m := eval.Metrics{
		Metrics: res.Metrics(cfg.Model),
		Solves:  res.Reps,
		Bound:   res.Up.Rel(),
	}
	if opts.TolNetwork {
		idealCfg, err := tolerance.IdealConfig(cfg.Model, tolerance.Network, tolerance.ZeroRemote)
		if err != nil {
			return eval.Metrics{}, err
		}
		est, err := e.idealUp(ctx, idealCfg, precision)
		if err != nil {
			return eval.Metrics{}, err
		}
		m.TolNetwork = tolerance.Ratio(res.Up.Mean, est.up)
		m.Solves += est.solves
	}
	if opts.TolMemory {
		idealCfg, err := tolerance.IdealConfig(cfg.Model, tolerance.Memory, tolerance.ZeroDelay)
		if err != nil {
			return eval.Metrics{}, err
		}
		est, err := e.idealUp(ctx, idealCfg, precision)
		if err != nil {
			return eval.Metrics{}, err
		}
		m.TolMemory = tolerance.Ratio(res.Up.Mean, est.up)
		m.Solves += est.solves
	}
	return m, nil
}

// EvaluateBatch implements eval.BatchEvaluator positionally. Each element is
// replicated independently (the parallelism lives inside the replication
// runner); a failing element never affects its neighbors.
func (e *Evaluator) EvaluateBatch(ctx context.Context, cfgs []eval.Config, opts eval.Options, out []eval.Outcome) {
	for i, cfg := range cfgs {
		m, err := e.Evaluate(ctx, cfg, opts)
		out[i] = eval.Outcome{Metrics: m, Err: err}
	}
}

// Compile-time interface checks.
var (
	_ eval.Evaluator      = (*Evaluator)(nil)
	_ eval.BatchEvaluator = (*Evaluator)(nil)
)
