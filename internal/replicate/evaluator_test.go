package replicate

import (
	"context"
	"reflect"
	"testing"

	"lattol/internal/eval"
	"lattol/internal/simmms"
)

func testEvalOpts() Options {
	return Options{Sim: testSimOpts(simmms.Direct), MinReps: 4, Workers: 2}
}

// TestEvaluatorPure: a fresh Evaluator reproduces another's answers bit for
// bit — the property CheckPlanOn's fresh-forward-solve certification rests
// on.
func TestEvaluatorPure(t *testing.T) {
	ctx := context.Background()
	cfg := eval.Config{Model: testConfig()}
	opts := eval.Options{TolNetwork: true, TolMemory: true}
	a, err := NewEvaluator(testEvalOpts()).Evaluate(ctx, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEvaluator(testEvalOpts()).Evaluate(ctx, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fresh evaluator disagrees:\n got %+v\nwant %+v", b, a)
	}
	if a.TolNetwork <= 0 || a.TolNetwork > 1.2 {
		t.Errorf("TolNetwork %v outside plausible range", a.TolNetwork)
	}
	if a.TolMemory <= 0 || a.TolMemory > 1.2 {
		t.Errorf("TolMemory %v outside plausible range", a.TolMemory)
	}
	if a.Solves <= 0 {
		t.Errorf("Solves %d, want > 0 (replication accounting)", a.Solves)
	}
}

// TestEvaluatorSeparatesConfigs: different operating points get different
// seed coordinates, hence (almost surely) different noise.
func TestEvaluatorSeparatesConfigs(t *testing.T) {
	ctx := context.Background()
	ev := NewEvaluator(testEvalOpts())
	a, err := ev.Evaluate(ctx, eval.Config{Model: testConfig()}, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig()
	cfg2.Threads = 3
	b, err := ev.Evaluate(ctx, eval.Config{Model: cfg2}, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Up == b.Up {
		t.Errorf("distinct configs produced identical Up %v", a.Up)
	}
	if b.Up <= a.Up {
		t.Errorf("more threads lowered utilization: nt=2 %v, nt=3 %v", a.Up, b.Up)
	}
}

// TestEvaluatorMemoizesIdeal: two configurations differing only in PRemote
// share the ZeroRemote ideal system; it must be simulated once.
func TestEvaluatorMemoizesIdeal(t *testing.T) {
	ctx := context.Background()
	ev := NewEvaluator(testEvalOpts())
	cfgA := testConfig()
	cfgB := testConfig()
	cfgB.PRemote = 0.4
	for _, c := range []eval.Config{{Model: cfgA}, {Model: cfgB}} {
		if _, err := ev.Evaluate(ctx, c, eval.Options{TolNetwork: true}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ev.ideal); got != 1 {
		t.Errorf("ideal memo holds %d entries, want 1 (shared ZeroRemote ideal)", got)
	}
}

// TestEvaluatorBatchMatchesScalar: the positional batch path must agree with
// element-wise Evaluate on a fresh evaluator.
func TestEvaluatorBatchMatchesScalar(t *testing.T) {
	ctx := context.Background()
	cfgs := []eval.Config{{Model: testConfig()}}
	cfg2 := testConfig()
	cfg2.Runlength = 20
	cfgs = append(cfgs, eval.Config{Model: cfg2})
	opts := eval.Options{TolNetwork: true}

	out := make([]eval.Outcome, len(cfgs))
	NewEvaluator(testEvalOpts()).EvaluateBatch(ctx, cfgs, opts, out)
	for i, cfg := range cfgs {
		want, err := NewEvaluator(testEvalOpts()).Evaluate(ctx, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if out[i].Err != nil {
			t.Fatalf("batch element %d: %v", i, out[i].Err)
		}
		if !reflect.DeepEqual(out[i].Metrics, want) {
			t.Errorf("batch element %d:\n got %+v\nwant %+v", i, out[i].Metrics, want)
		}
	}
}

// TestEvaluatorMaxErrorTightens: Options.MaxError below the configured
// precision must tighten the replication target.
func TestEvaluatorMaxErrorTightens(t *testing.T) {
	ctx := context.Background()
	o := testEvalOpts()
	o.MinReps = 2
	o.MaxReps = 32
	o.Precision = 0.5 // loose: 2 reps suffice
	loose, err := NewEvaluator(o).Evaluate(ctx, eval.Config{Model: testConfig()}, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewEvaluator(o).Evaluate(ctx, eval.Config{Model: testConfig()}, eval.Options{MaxError: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Solves <= loose.Solves {
		t.Errorf("MaxError 0.05 ran %d reps, loose target ran %d — want more", tight.Solves, loose.Solves)
	}
	if tight.Bound > 0.05 && tight.Solves < 32 {
		t.Errorf("Bound %v > MaxError without exhausting MaxReps", tight.Bound)
	}
}
