// Package replicate runs independent simulation replications in parallel and
// aggregates them into confidence-bounded estimates, making the simulators
// (package simmms) servable through the same evaluation interfaces as the
// analytical solvers.
//
// The runner fans N replications over a bounded pool of persistent workers.
// Each worker owns one simmms.Replicator — the model is built once per worker
// and replayed with per-replication seeds — so steady-state replication costs
// no allocation and no rebuild. Replication i always runs with seed
// sweep.DeriveSeed(base, i), and results are folded into the per-metric
// accumulators in replication-index order at round boundaries, so the
// estimates are bit-identical for any worker count.
//
// Stopping is adaptive: at least MinReps replications run, then rounds of
// Round more are added until the Student-t confidence half-width of U_p,
// relative to its mean, reaches Precision — or MaxReps caps the budget.
package replicate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"

	"lattol/internal/mms"
	"lattol/internal/simmms"
	"lattol/internal/stats"
	"lattol/internal/sweep"
)

// Options configures a replication run.
type Options struct {
	// Sim configures the simulator replayed by every replication. Sim.Seed is
	// the base seed; replication i derives its own stream via
	// sweep.DeriveSeed(Sim.Seed, i), so overlapping streams across
	// replications are statistically impossible rather than merely unlikely.
	Sim simmms.Options
	// MinReps is the number of replications always run (default 8; at least
	// 2, the minimum for a variance estimate).
	MinReps int
	// MaxReps caps the total number of replications (default 64).
	MaxReps int
	// Round is how many replications each adaptive round adds after MinReps
	// (default: the worker count, so every round keeps the pool full).
	Round int
	// Workers bounds the worker pool (default runtime.GOMAXPROCS(0)).
	// The results are bit-identical for any value.
	Workers int
	// Precision, when positive, is the target relative confidence half-width
	// of U_p: replication stops once HalfCI/Mean <= Precision. Zero runs
	// exactly MinReps replications.
	Precision float64
	// Confidence is the two-sided confidence level for all intervals
	// (default 0.95).
	Confidence float64
}

func (o Options) withDefaults() Options {
	if o.MinReps <= 0 {
		o.MinReps = 8
	}
	if o.MinReps < 2 {
		o.MinReps = 2
	}
	if o.MaxReps <= 0 {
		o.MaxReps = 64
	}
	if o.MaxReps < o.MinReps {
		o.MaxReps = o.MinReps
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Round <= 0 {
		o.Round = o.Workers
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	return o
}

// Metric is one replicated estimate: the across-replication mean with its
// Student-t confidence half-width (each replication contributes one
// observation, so the intervals are valid without batch-means assumptions).
type Metric struct {
	Mean   float64
	HalfCI float64
	StdDev float64
	N      int64
}

// Rel returns the relative half-width HalfCI/|Mean| (0 when the interval is
// degenerate, +Inf when the mean is zero but the interval is not).
func (m Metric) Rel() float64 {
	if m.HalfCI == 0 {
		return 0
	}
	if m.Mean == 0 {
		return math.Inf(1)
	}
	return m.HalfCI / math.Abs(m.Mean)
}

// Result aggregates a replication run.
type Result struct {
	Up         Metric
	LambdaProc Metric
	LambdaNet  Metric
	SObs       Metric
	LObs       Metric
	LObsLocal  Metric
	LObsRemote Metric

	// Reps is the number of replications folded into the estimates.
	Reps int
	// Converged reports whether the Precision target was met (always true
	// when no target was requested).
	Converged bool
}

// Metrics maps the replicated means onto the analytical solver's metric
// struct, so simulation results flow through code written against
// mms.Metrics. The cycle time follows from Little's law on the closed
// per-processor population: n_t threads circulate at rate λ_proc.
func (r Result) Metrics(cfg mms.Config) mms.Metrics {
	m := mms.Metrics{
		Up:         r.Up.Mean,
		LambdaProc: r.LambdaProc.Mean,
		LambdaNet:  r.LambdaNet.Mean,
		SObs:       r.SObs.Mean,
		LObs:       r.LObs.Mean,
	}
	if m.LambdaProc > 0 {
		m.CycleTime = float64(cfg.Threads) / m.LambdaProc
	}
	return m
}

// PanicError reports a replication that panicked; the panic is contained to
// its worker and surfaced as an error with the captured stack.
type PanicError struct {
	Rep   int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("replicate: replication %d panicked: %v\n%s", e.Rep, e.Value, e.Stack)
}

// accum folds per-replication results in index order.
type accum struct {
	up, lambdaProc, lambdaNet, sObs, lObs, lObsLocal, lObsRemote stats.Welford
}

func (a *accum) add(r simmms.Result) {
	a.up.Add(r.Up)
	a.lambdaProc.Add(r.LambdaProc)
	a.lambdaNet.Add(r.LambdaNet)
	a.sObs.Add(r.SObs)
	a.lObs.Add(r.LObs)
	a.lObsLocal.Add(r.LObsLocal)
	a.lObsRemote.Add(r.LObsRemote)
}

func metricOf(w *stats.Welford, confidence float64) Metric {
	return Metric{Mean: w.Mean(), HalfCI: w.HalfCI(confidence), StdDev: w.StdDev(), N: w.Count()}
}

func (a *accum) result(confidence float64, reps int, converged bool) Result {
	return Result{
		Up:         metricOf(&a.up, confidence),
		LambdaProc: metricOf(&a.lambdaProc, confidence),
		LambdaNet:  metricOf(&a.lambdaNet, confidence),
		SObs:       metricOf(&a.sObs, confidence),
		LObs:       metricOf(&a.lObs, confidence),
		LObsLocal:  metricOf(&a.lObsLocal, confidence),
		LObsRemote: metricOf(&a.lObsRemote, confidence),
		Reps:       reps,
		Converged:  converged,
	}
}

// pool is the persistent worker pool for one Run: Workers goroutines, each
// owning one lazily built Replicator, fed half-open index ranges per round.
// Worker w takes indices congruent to w modulo the pool size, so the
// index→result mapping — and therefore the folded estimates — do not depend
// on scheduling.
type pool struct {
	cfg     mms.Config
	opts    Options
	results []simmms.Result
	reps    []*simmms.Replicator
	jobs    []chan [2]int // per-worker round ranges
	done    chan error    // one message per worker per round
}

func newPool(cfg mms.Config, opts Options, capacity int) *pool {
	p := &pool{
		cfg:     cfg,
		opts:    opts,
		results: make([]simmms.Result, 0, capacity),
		reps:    make([]*simmms.Replicator, opts.Workers),
		jobs:    make([]chan [2]int, opts.Workers),
		done:    make(chan error, opts.Workers),
	}
	for w := range p.jobs {
		p.jobs[w] = make(chan [2]int)
	}
	return p
}

func (p *pool) start(ctx context.Context) {
	for w := 0; w < p.opts.Workers; w++ {
		go p.worker(ctx, w)
	}
}

func (p *pool) stop() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

func (p *pool) worker(ctx context.Context, w int) {
	for rng := range p.jobs[w] {
		p.done <- p.runRange(ctx, w, rng[0], rng[1])
	}
}

// runRange executes this worker's share of one round: replications
// start+w, start+w+Workers, ... below end. A panic in the simulator is
// converted to a *PanicError instead of tearing the process down.
func (p *pool) runRange(ctx context.Context, w, start, end int) (err error) {
	i := start + w
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Rep: i, Value: r, Stack: debug.Stack()}
		}
	}()
	if i < end && p.reps[w] == nil {
		rep, rerr := simmms.NewReplicator(p.cfg, p.opts.Sim)
		if rerr != nil {
			return rerr
		}
		p.reps[w] = rep
	}
	for ; i < end; i += p.opts.Workers {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("replicate: replication %d: %w", i, cerr)
		}
		p.results[i] = p.reps[w].Replicate(sweep.DeriveSeed(p.opts.Sim.Seed, int64(i)))
	}
	return nil
}

// round runs replications [start, end) across the pool and waits for all
// workers. It returns the joined worker errors, if any.
func (p *pool) round(start, end int) error {
	if cap(p.results) >= end {
		p.results = p.results[:end]
	} else {
		p.results = append(p.results, make([]simmms.Result, end-len(p.results))...)
	}
	for _, ch := range p.jobs {
		ch <- [2]int{start, end}
	}
	errs := make([]error, 0, p.opts.Workers)
	for range p.jobs {
		if err := <-p.done; err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Run replicates the configured simulation until the precision target (or a
// replication cap) is reached and returns the aggregated estimates. The
// result is a pure function of (cfg, opts.Sim, opts.MinReps, opts.MaxReps,
// opts.Round, opts.Precision, opts.Confidence) — Workers only changes the
// wall-clock time.
func Run(ctx context.Context, cfg mms.Config, opts Options) (Result, error) {
	opts = opts.withDefaults()
	// Validate eagerly so configuration errors surface once, not per worker;
	// worker 0 inherits the instance instead of building its own.
	first, err := simmms.NewReplicator(cfg, opts.Sim)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	p := newPool(cfg, opts, opts.MinReps)
	p.reps[0] = first
	p.start(ctx)
	defer p.stop()

	ran := 0
	target := opts.MinReps
	for {
		if err := p.round(ran, target); err != nil {
			return Result{}, err
		}
		ran = target

		// Fold in index order: bit-identical for any worker count.
		var acc accum
		for i := 0; i < ran; i++ {
			acc.add(p.results[i])
		}
		up := metricOf(&acc.up, opts.Confidence)
		converged := opts.Precision <= 0 || up.Rel() <= opts.Precision
		if converged || ran >= opts.MaxReps {
			return acc.result(opts.Confidence, ran, converged), nil
		}
		target = ran + opts.Round
		if target > opts.MaxReps {
			target = opts.MaxReps
		}
	}
}
