package replicate

import (
	"context"
	"math"
	"reflect"
	"testing"

	"lattol/internal/mms"
	"lattol/internal/simmms"
)

// testConfig is a small 2×2 torus system that simulates quickly.
func testConfig() mms.Config {
	return mms.Config{K: 2, Threads: 2, Runlength: 10, MemoryTime: 10, SwitchTime: 10, PRemote: 0.2, Psw: 0.5}
}

func testSimOpts(engine simmms.EngineKind) simmms.Options {
	return simmms.Options{Engine: engine, Seed: 42, Warmup: 500, Duration: 2000}
}

// TestRunWorkerInvariance is the runner's core contract: the folded estimates
// are bit-identical for any worker count, on both engines.
func TestRunWorkerInvariance(t *testing.T) {
	for _, engine := range []simmms.EngineKind{simmms.Direct, simmms.STPN} {
		t.Run(engine.String(), func(t *testing.T) {
			var base Result
			for i, workers := range []int{1, 3, 8} {
				res, err := Run(context.Background(), testConfig(), Options{
					Sim:     testSimOpts(engine),
					MinReps: 6,
					Workers: workers,
				})
				if err != nil {
					t.Fatalf("Run(workers=%d): %v", workers, err)
				}
				if res.Reps != 6 {
					t.Fatalf("Run(workers=%d): ran %d reps, want 6", workers, res.Reps)
				}
				if i == 0 {
					base = res
					continue
				}
				if !reflect.DeepEqual(res, base) {
					t.Errorf("workers=%d: result differs from workers=1:\n got %+v\nwant %+v", workers, res, base)
				}
			}
			if base.Up.Mean <= 0 || base.Up.Mean > 1 {
				t.Errorf("replicated Up mean %v outside (0, 1]", base.Up.Mean)
			}
			if base.Up.HalfCI <= 0 {
				t.Errorf("replicated Up half-CI %v, want > 0", base.Up.HalfCI)
			}
		})
	}
}

// TestRunRoundInvariance: the adaptive round size must not change the
// estimates either — replication i always gets the same seed.
func TestRunRoundInvariance(t *testing.T) {
	run := func(round int) Result {
		t.Helper()
		res, err := Run(context.Background(), testConfig(), Options{
			Sim:       testSimOpts(simmms.Direct),
			MinReps:   4,
			MaxReps:   12,
			Round:     round,
			Precision: 1e-9, // unreachable: force the run to MaxReps
			Workers:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(5)
	if a.Reps != 12 || b.Reps != 12 {
		t.Fatalf("reps %d and %d, want both 12 (MaxReps)", a.Reps, b.Reps)
	}
	if a.Converged || b.Converged {
		t.Error("unreachable precision target reported as converged")
	}
	a.Converged, b.Converged = true, true
	if !reflect.DeepEqual(a, b) {
		t.Errorf("round size changed estimates:\n got %+v\nwant %+v", b, a)
	}
}

// TestRunAdaptiveStops: a loose precision target stops at MinReps; no target
// is always "converged".
func TestRunAdaptiveStops(t *testing.T) {
	res, err := Run(context.Background(), testConfig(), Options{
		Sim:       testSimOpts(simmms.Direct),
		MinReps:   4,
		MaxReps:   64,
		Precision: 0.9, // trivially satisfied
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 4 || !res.Converged {
		t.Errorf("loose target: reps %d converged %v, want 4 true", res.Reps, res.Converged)
	}
	if got := res.Up.Rel(); got > 0.9 {
		t.Errorf("achieved relative half-width %v > requested 0.9", got)
	}

	res, err = Run(context.Background(), testConfig(), Options{
		Sim:     testSimOpts(simmms.Direct),
		MinReps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("no precision target: want Converged true")
	}
}

// TestRunAdaptiveTightens: a moderate target must run more than MinReps when
// the initial interval is too wide, and the achieved width must then satisfy
// the target (or the run caps out honestly).
func TestRunAdaptiveTightens(t *testing.T) {
	opts := Options{
		Sim:       testSimOpts(simmms.Direct),
		MinReps:   2, // deliberately too few for the target
		MaxReps:   64,
		Round:     4,
		Precision: 0.02,
	}
	res, err := Run(context.Background(), testConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps <= 2 {
		t.Errorf("ran only %d reps; a 2-rep t-interval cannot meet 2%% precision", res.Reps)
	}
	if res.Converged && res.Up.Rel() > opts.Precision {
		t.Errorf("converged but relative half-width %v > %v", res.Up.Rel(), opts.Precision)
	}
	if !res.Converged && res.Reps != opts.MaxReps {
		t.Errorf("not converged after %d reps, but MaxReps is %d", res.Reps, opts.MaxReps)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.PRemote = 2 // invalid probability
	if _, err := Run(context.Background(), cfg, Options{Sim: testSimOpts(simmms.Direct)}); err == nil {
		t.Error("invalid config: want error")
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testConfig(), Options{Sim: testSimOpts(simmms.Direct)}); err == nil {
		t.Error("canceled context: want error")
	}
}

func TestRunZeroThreads(t *testing.T) {
	cfg := testConfig()
	cfg.Threads = 0
	res, err := Run(context.Background(), cfg, Options{Sim: testSimOpts(simmms.Direct), MinReps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Up.Mean != 0 || res.Up.HalfCI != 0 {
		t.Errorf("zero threads: Up %+v, want all-zero", res.Up)
	}
	if !res.Converged {
		t.Error("zero threads: want Converged (degenerate zero interval)")
	}
}

// TestRunBracketsAnalytic: the replicated mean should land near the
// analytical solution — a loose sanity bound here; the strict CI-bracketing
// statement lives in the conformance harness.
func TestRunBracketsAnalytic(t *testing.T) {
	cfg := testConfig()
	res, err := Run(context.Background(), cfg, Options{
		Sim:     simmms.Options{Engine: simmms.Direct, Seed: 7, Warmup: 2000, Duration: 20000},
		MinReps: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := mms.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := model.Solve(mms.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.Up.Mean - analytic.Up); diff > 0.05 {
		t.Errorf("replicated Up %v vs analytic %v: |diff| %v > 0.05", res.Up.Mean, analytic.Up, diff)
	}
}

func TestMetricRel(t *testing.T) {
	cases := []struct {
		m    Metric
		want float64
	}{
		{Metric{Mean: 2, HalfCI: 0.1}, 0.05},
		{Metric{Mean: -2, HalfCI: 0.1}, 0.05},
		{Metric{Mean: 0, HalfCI: 0}, 0},
		{Metric{Mean: 0, HalfCI: 1}, math.Inf(1)},
	}
	for _, c := range cases {
		if got := c.m.Rel(); got != c.want {
			t.Errorf("Rel(%+v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestResultMetricsMapping(t *testing.T) {
	r := Result{}
	r.Up.Mean = 0.5
	r.LambdaProc.Mean = 0.04
	r.LambdaNet.Mean = 0.01
	r.SObs.Mean = 30
	r.LObs.Mean = 12
	cfg := testConfig()
	m := r.Metrics(cfg)
	if m.Up != 0.5 || m.LambdaProc != 0.04 || m.LambdaNet != 0.01 || m.SObs != 30 || m.LObs != 12 {
		t.Errorf("Metrics mapping dropped a field: %+v", m)
	}
	want := float64(cfg.Threads) / 0.04
	if m.CycleTime != want {
		t.Errorf("CycleTime %v, want Threads/LambdaProc = %v", m.CycleTime, want)
	}
}
