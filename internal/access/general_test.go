package access

import (
	"math"
	"testing"

	"lattol/internal/topology"
)

func TestGeometricOnTorusMatchesGeometric(t *testing.T) {
	// On a vertex-transitive network the per-origin construction must
	// reproduce the translation-invariant one exactly.
	tor := topology.MustTorus(4)
	a := MustGeometric(tor, 0.5, PerDistance)
	b, err := NewGeometricOn(tor, 0.5, PerDistance)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < tor.Nodes(); src++ {
		for dst := 0; dst < tor.Nodes(); dst++ {
			pa := a.Prob(topology.Node(src), topology.Node(dst))
			pb := b.Prob(topology.Node(src), topology.Node(dst))
			if math.Abs(pa-pb) > 1e-12 {
				t.Fatalf("Prob(%d,%d): %v vs %v", src, dst, pa, pb)
			}
		}
	}
	if math.Abs(a.MeanDistance()-b.MeanDistance()) > 1e-12 {
		t.Errorf("d_avg %v vs %v", a.MeanDistance(), b.MeanDistance())
	}
}

func TestGeometricOnMeshSumsToOne(t *testing.T) {
	mesh := topology.MustMesh(4)
	for _, mode := range []GeometricMode{PerDistance, PerNode} {
		g, err := NewGeometricOn(mesh, 0.5, mode)
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < mesh.Nodes(); src++ {
			var sum float64
			for dst := 0; dst < mesh.Nodes(); dst++ {
				sum += g.Prob(topology.Node(src), topology.Node(dst))
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("mode %v src %d: probs sum to %v", mode, src, sum)
			}
		}
	}
}

func TestGeometricOnMeshPerOriginDiffers(t *testing.T) {
	// The mesh is not vertex-transitive: a corner's mean remote distance
	// exceeds the center's.
	mesh := topology.MustMesh(5)
	g, err := NewGeometricOn(mesh, 0.5, PerDistance)
	if err != nil {
		t.Fatal(err)
	}
	corner := g.MeanDistanceFrom(0)
	center := g.MeanDistanceFrom(mesh.NodeAt(2, 2))
	if corner <= center {
		t.Errorf("corner d_avg %v not above center %v", corner, center)
	}
	// The average sits between.
	if g.MeanDistance() < center || g.MeanDistance() > corner {
		t.Errorf("mean d_avg %v outside [%v, %v]", g.MeanDistance(), center, corner)
	}
}

func TestGeometricOnValidation(t *testing.T) {
	mesh := topology.MustMesh(2)
	if _, err := NewGeometricOn(topology.MustMesh(1), 0.5, PerDistance); err == nil {
		t.Error("want error for 1-node network")
	}
	if _, err := NewGeometricOn(mesh, 0, PerDistance); err == nil {
		t.Error("want error for p_sw=0")
	}
	if _, err := NewGeometricOn(mesh, 0.5, GeometricMode(9)); err == nil {
		t.Error("want error for bad mode")
	}
}

func TestUniformOnMesh(t *testing.T) {
	mesh := topology.MustMesh(4)
	u, err := NewUniformOn(mesh)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for dst := 0; dst < mesh.Nodes(); dst++ {
		sum += u.Prob(0, topology.Node(dst))
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probs sum to %v", sum)
	}
	if math.Abs(u.MeanDistance()-mesh.MeanDistanceUniform()) > 1e-12 {
		t.Errorf("d_avg %v vs %v", u.MeanDistance(), mesh.MeanDistanceUniform())
	}
	if _, err := NewUniformOn(topology.MustMesh(1)); err == nil {
		t.Error("want error for 1-node network")
	}
}

func TestGeneralNames(t *testing.T) {
	mesh := topology.MustMesh(3)
	g, err := NewGeometricOn(mesh, 0.5, PerDistance)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "geometric(p_sw=0.5, per-distance) on mesh 3x3" {
		t.Errorf("name %q", g.Name())
	}
	u, err := NewUniformOn(mesh)
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "uniform on mesh 3x3" {
		t.Errorf("name %q", u.Name())
	}
}
