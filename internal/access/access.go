// Package access models the remote-memory-access patterns of the paper's
// program workload: which remote memory module a thread's shared-memory
// access targets, as a function of hop distance on the interconnection
// network.
//
// The paper characterizes locality with a geometric distribution governed by
// the switch-locality parameter p_sw: the probability of accessing a module
// at distance h falls by a factor p_sw per hop. It compares against a uniform
// distribution over all P-1 remote modules. Both are provided here, plus an
// arbitrary per-node pattern for experimentation.
package access

import (
	"fmt"
	"math"

	"lattol/internal/topology"
)

// Pattern gives, for a fixed origin PE, the probability that a *remote*
// access from that PE targets each other node. Probabilities are conditional
// on the access being remote: they exclude the origin and sum to 1.
type Pattern interface {
	// Prob returns the probability that a remote access from src targets dst.
	// Prob(src, src) is 0.
	Prob(src, dst topology.Node) float64
	// MeanDistance returns d_avg, the average hop count of a remote access.
	MeanDistance() float64
	// Name identifies the pattern in reports.
	Name() string
}

// GeometricMode selects how the geometric weight p_sw^h is normalized.
type GeometricMode int

const (
	// PerDistance assigns probability p_sw^h/a to *distance class* h
	// (a = Σ_{h=1..dmax} p_sw^h), split evenly among the nodes at that
	// distance. This is the paper's formulation: it reproduces
	// d_avg = Σ h·p_sw^h/a = 1.733 for k=4, p_sw=0.5 and the asymptote
	// 1/(1-p_sw) for large systems.
	PerDistance GeometricMode = iota
	// PerNode assigns weight p_sw^h to each *node* at distance h and
	// normalizes over nodes, so distance classes with more nodes receive
	// proportionally more traffic (d_avg = 1.66 for k=4, p_sw=0.5). Kept as
	// an ablation of the modeling choice.
	PerNode
)

func (m GeometricMode) String() string {
	switch m {
	case PerDistance:
		return "per-distance"
	case PerNode:
		return "per-node"
	default:
		return fmt.Sprintf("GeometricMode(%d)", int(m))
	}
}

// Geometric is the paper's locality-aware remote access pattern.
type Geometric struct {
	torus *topology.Torus
	psw   float64
	mode  GeometricMode

	// probByDist[h] is the probability that a remote access targets one
	// particular node at distance h (0 for h=0 or empty classes).
	probByDist []float64
	dAvg       float64
}

// NewGeometric builds a geometric pattern with locality parameter psw in
// (0, 1] on the given torus. The torus must have at least 2 nodes.
func NewGeometric(t *topology.Torus, psw float64, mode GeometricMode) (*Geometric, error) {
	if t.Nodes() < 2 {
		return nil, fmt.Errorf("access: geometric pattern needs >= 2 nodes, torus has %d", t.Nodes())
	}
	if psw <= 0 || psw > 1 || math.IsNaN(psw) {
		return nil, fmt.Errorf("access: p_sw = %v, want 0 < p_sw <= 1", psw)
	}
	if mode != PerDistance && mode != PerNode {
		return nil, fmt.Errorf("access: unknown geometric mode %d", int(mode))
	}
	g := &Geometric{torus: t, psw: psw, mode: mode}
	hist := t.DistanceHistogram()
	dmax := len(hist) - 1
	g.probByDist = make([]float64, dmax+1)
	var norm, dsum float64
	switch mode {
	case PerDistance:
		for h := 1; h <= dmax; h++ {
			if hist[h] == 0 {
				continue
			}
			w := math.Pow(psw, float64(h))
			norm += w
			dsum += float64(h) * w
		}
		for h := 1; h <= dmax; h++ {
			if hist[h] == 0 {
				continue
			}
			g.probByDist[h] = math.Pow(psw, float64(h)) / norm / float64(hist[h])
		}
	case PerNode:
		for h := 1; h <= dmax; h++ {
			w := math.Pow(psw, float64(h)) * float64(hist[h])
			norm += w
			dsum += float64(h) * w
		}
		for h := 1; h <= dmax; h++ {
			g.probByDist[h] = math.Pow(psw, float64(h)) / norm
		}
	}
	g.dAvg = dsum / norm
	return g, nil
}

// MustGeometric is NewGeometric for known-good parameters; it panics on error.
func MustGeometric(t *topology.Torus, psw float64, mode GeometricMode) *Geometric {
	g, err := NewGeometric(t, psw, mode)
	if err != nil {
		panic(err)
	}
	return g
}

// Prob implements Pattern.
func (g *Geometric) Prob(src, dst topology.Node) float64 {
	if src == dst {
		return 0
	}
	return g.probByDist[g.torus.Distance(src, dst)]
}

// MeanDistance implements Pattern.
func (g *Geometric) MeanDistance() float64 { return g.dAvg }

// Name implements Pattern.
func (g *Geometric) Name() string {
	return fmt.Sprintf("geometric(p_sw=%g, %s)", g.psw, g.mode)
}

// Psw returns the locality parameter.
func (g *Geometric) Psw() float64 { return g.psw }

// Uniform targets each of the P-1 remote modules with equal probability.
type Uniform struct {
	torus *topology.Torus
	dAvg  float64
}

// NewUniform builds a uniform pattern on the given torus (>= 2 nodes).
func NewUniform(t *topology.Torus) (*Uniform, error) {
	if t.Nodes() < 2 {
		return nil, fmt.Errorf("access: uniform pattern needs >= 2 nodes, torus has %d", t.Nodes())
	}
	return &Uniform{torus: t, dAvg: t.MeanDistanceUniform()}, nil
}

// MustUniform is NewUniform for known-good tori; it panics on error.
func MustUniform(t *topology.Torus) *Uniform {
	u, err := NewUniform(t)
	if err != nil {
		panic(err)
	}
	return u
}

// Prob implements Pattern.
func (u *Uniform) Prob(src, dst topology.Node) float64 {
	if src == dst {
		return 0
	}
	return 1 / float64(u.torus.Nodes()-1)
}

// MeanDistance implements Pattern.
func (u *Uniform) MeanDistance() float64 { return u.dAvg }

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// Custom is an arbitrary translation-invariant pattern specified by one
// probability row for origin node 0; rows for other origins are obtained by
// torus translation. It lets users plug measured access patterns into the
// model.
type Custom struct {
	torus *topology.Torus
	row   []float64 // row[d] = P(remote access from node 0 targets node d)
	dAvg  float64
	name  string
}

// NewCustom validates and wraps a probability row for origin node 0.
// row[0] must be 0 and the row must sum to 1 (within 1e-9).
func NewCustom(t *topology.Torus, name string, row []float64) (*Custom, error) {
	if len(row) != t.Nodes() {
		return nil, fmt.Errorf("access: custom row has %d entries, torus has %d nodes", len(row), t.Nodes())
	}
	if row[0] != 0 {
		return nil, fmt.Errorf("access: custom row targets the origin with probability %v", row[0])
	}
	var sum, dsum float64
	for n, p := range row {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("access: custom row[%d] = %v, want >= 0", n, p)
		}
		sum += p
		dsum += p * float64(t.Distance(0, topology.Node(n)))
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("access: custom row sums to %v, want 1", sum)
	}
	c := &Custom{torus: t, row: append([]float64(nil), row...), dAvg: dsum, name: name}
	return c, nil
}

// Prob implements Pattern. The probability is translation-invariant:
// Prob(src, dst) = row[dst - src] in torus coordinates.
func (c *Custom) Prob(src, dst topology.Node) float64 {
	if src == dst {
		return 0
	}
	sx, sy := c.torus.Coord(src)
	dx, dy := c.torus.Coord(dst)
	return c.row[int(c.torus.NodeAt(dx-sx, dy-sy))]
}

// MeanDistance implements Pattern.
func (c *Custom) MeanDistance() float64 { return c.dAvg }

// Name implements Pattern.
func (c *Custom) Name() string { return c.name }
