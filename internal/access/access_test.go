package access

import (
	"math"
	"testing"
	"testing/quick"

	"lattol/internal/topology"
)

func sumProbs(p Pattern, t *topology.Torus, src topology.Node) float64 {
	var sum float64
	for n := 0; n < t.Nodes(); n++ {
		sum += p.Prob(src, topology.Node(n))
	}
	return sum
}

func TestGeometricPaperDavg(t *testing.T) {
	// The paper's headline value: k=4, p_sw=0.5, per-distance => d_avg=1.733.
	tor := topology.MustTorus(4)
	g := MustGeometric(tor, 0.5, PerDistance)
	want := 1.7333333333333334 // (0.5 + 2*0.25 + 3*0.125 + 4*0.0625) / 0.9375
	if math.Abs(g.MeanDistance()-want) > 1e-12 {
		t.Errorf("d_avg = %v, want %v", g.MeanDistance(), want)
	}
}

func TestGeometricPerNodeDavg(t *testing.T) {
	// Ablation variant: weights scaled by class size. k=4, p_sw=0.5.
	tor := topology.MustTorus(4)
	g := MustGeometric(tor, 0.5, PerNode)
	want := 6.75 / 4.0625
	if math.Abs(g.MeanDistance()-want) > 1e-12 {
		t.Errorf("d_avg = %v, want %v", g.MeanDistance(), want)
	}
}

func TestGeometricAsymptote(t *testing.T) {
	// As the torus grows, per-distance d_avg approaches 1/(1-p_sw) = 2 for
	// p_sw = 0.5 (paper Section 7).
	tor := topology.MustTorus(20)
	g := MustGeometric(tor, 0.5, PerDistance)
	if d := g.MeanDistance(); math.Abs(d-2) > 0.01 {
		t.Errorf("d_avg = %v, want ~2", d)
	}
}

func TestGeometricSumsToOne(t *testing.T) {
	for _, mode := range []GeometricMode{PerDistance, PerNode} {
		for _, k := range []int{2, 3, 4, 7} {
			tor := topology.MustTorus(k)
			g := MustGeometric(tor, 0.4, mode)
			for src := 0; src < tor.Nodes(); src++ {
				if s := sumProbs(g, tor, topology.Node(src)); math.Abs(s-1) > 1e-9 {
					t.Errorf("mode=%v k=%d src=%d: probs sum to %v", mode, k, src, s)
				}
			}
		}
	}
}

func TestGeometricLocalityOrdering(t *testing.T) {
	// Nearer nodes must be at least as likely as farther ones for psw < 1.
	tor := topology.MustTorus(6)
	g := MustGeometric(tor, 0.5, PerNode)
	near := g.Prob(0, tor.NodeAt(1, 0))
	far := g.Prob(0, tor.NodeAt(3, 3))
	if near <= far {
		t.Errorf("near prob %v <= far prob %v", near, far)
	}
}

func TestGeometricRejectsBadParams(t *testing.T) {
	tor := topology.MustTorus(4)
	for _, psw := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := NewGeometric(tor, psw, PerDistance); err == nil {
			t.Errorf("p_sw=%v: want error", psw)
		}
	}
	if _, err := NewGeometric(topology.MustTorus(1), 0.5, PerDistance); err == nil {
		t.Error("1-node torus: want error")
	}
	if _, err := NewGeometric(tor, 0.5, GeometricMode(9)); err == nil {
		t.Error("bad mode: want error")
	}
}

func TestGeometricPswOne(t *testing.T) {
	// p_sw = 1 per-node degenerates to uniform.
	tor := topology.MustTorus(4)
	g := MustGeometric(tor, 1, PerNode)
	u := MustUniform(tor)
	for n := 1; n < tor.Nodes(); n++ {
		if math.Abs(g.Prob(0, topology.Node(n))-u.Prob(0, topology.Node(n))) > 1e-12 {
			t.Fatalf("node %d: geometric(1) %v != uniform %v",
				n, g.Prob(0, topology.Node(n)), u.Prob(0, topology.Node(n)))
		}
	}
	if math.Abs(g.MeanDistance()-u.MeanDistance()) > 1e-12 {
		t.Errorf("d_avg: geometric(1) %v != uniform %v", g.MeanDistance(), u.MeanDistance())
	}
}

func TestUniformProperties(t *testing.T) {
	tor := topology.MustTorus(4)
	u := MustUniform(tor)
	if s := sumProbs(u, tor, 0); math.Abs(s-1) > 1e-12 {
		t.Errorf("probs sum to %v", s)
	}
	if p := u.Prob(3, 3); p != 0 {
		t.Errorf("self prob = %v", p)
	}
	want := 32.0 / 15.0
	if math.Abs(u.MeanDistance()-want) > 1e-12 {
		t.Errorf("d_avg = %v, want %v", u.MeanDistance(), want)
	}
}

func TestUniformRejectsTinyTorus(t *testing.T) {
	if _, err := NewUniform(topology.MustTorus(1)); err == nil {
		t.Error("want error for 1-node torus")
	}
}

func TestPatternsAreTranslationInvariant(t *testing.T) {
	// Prob(src,dst) must depend only on the coordinate offset. The symmetric
	// MMS solver depends on this.
	tor := topology.MustTorus(5)
	pats := []Pattern{
		MustGeometric(tor, 0.5, PerDistance),
		MustGeometric(tor, 0.3, PerNode),
		MustUniform(tor),
	}
	f := func(aRaw, bRaw, sRaw uint16) bool {
		a := topology.Node(int(aRaw) % tor.Nodes())
		b := topology.Node(int(bRaw) % tor.Nodes())
		sx, sy := tor.Coord(topology.Node(int(sRaw) % tor.Nodes()))
		ax, ay := tor.Coord(a)
		bx, by := tor.Coord(b)
		a2 := tor.NodeAt(ax+sx, ay+sy)
		b2 := tor.NodeAt(bx+sx, by+sy)
		for _, p := range pats {
			if math.Abs(p.Prob(a, b)-p.Prob(a2, b2)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCustomValidation(t *testing.T) {
	tor := topology.MustTorus(2) // 4 nodes
	if _, err := NewCustom(tor, "bad-len", []float64{1}); err == nil {
		t.Error("want error for wrong length")
	}
	if _, err := NewCustom(tor, "self", []float64{0.5, 0.5, 0, 0}); err == nil {
		t.Error("want error for nonzero self probability")
	}
	if _, err := NewCustom(tor, "neg", []float64{0, -1, 1, 1}); err == nil {
		t.Error("want error for negative probability")
	}
	if _, err := NewCustom(tor, "sum", []float64{0, 0.5, 0.2, 0.2}); err == nil {
		t.Error("want error for sum != 1")
	}
}

func TestCustomMatchesUniform(t *testing.T) {
	tor := topology.MustTorus(3)
	row := make([]float64, tor.Nodes())
	for i := 1; i < tor.Nodes(); i++ {
		row[i] = 1 / float64(tor.Nodes()-1)
	}
	c, err := NewCustom(tor, "uniform-as-custom", row)
	if err != nil {
		t.Fatal(err)
	}
	u := MustUniform(tor)
	for a := 0; a < tor.Nodes(); a++ {
		for b := 0; b < tor.Nodes(); b++ {
			if math.Abs(c.Prob(topology.Node(a), topology.Node(b))-u.Prob(topology.Node(a), topology.Node(b))) > 1e-12 {
				t.Fatalf("Prob(%d,%d) differs", a, b)
			}
		}
	}
	if math.Abs(c.MeanDistance()-u.MeanDistance()) > 1e-12 {
		t.Errorf("d_avg %v != %v", c.MeanDistance(), u.MeanDistance())
	}
}

func TestNames(t *testing.T) {
	tor := topology.MustTorus(4)
	if got := MustGeometric(tor, 0.5, PerDistance).Name(); got != "geometric(p_sw=0.5, per-distance)" {
		t.Errorf("geometric name = %q", got)
	}
	if got := MustUniform(tor).Name(); got != "uniform" {
		t.Errorf("uniform name = %q", got)
	}
}
