package access

import (
	"fmt"
	"math"

	"lattol/internal/topology"
)

// GeometricOn builds a geometric pattern on an arbitrary topology.Network.
// Unlike Geometric (which exploits the torus's vertex transitivity), it
// normalizes per origin: node i's distance histogram determines its own
// distribution, so it works on non-transitive networks such as the mesh.
// MeanDistance is the average of the per-origin means over all origins.
type GeometricOn struct {
	net  topology.Network
	psw  float64
	mode GeometricMode
	// probByDist[src][h] is the probability of one particular node at
	// distance h from src.
	probByDist [][]float64
	// dAvgBySrc[src] is the per-origin mean remote distance.
	dAvgBySrc []float64
	dAvg      float64
}

// NewGeometricOn builds the per-origin geometric pattern.
func NewGeometricOn(net topology.Network, psw float64, mode GeometricMode) (*GeometricOn, error) {
	if net.Nodes() < 2 {
		return nil, fmt.Errorf("access: geometric pattern needs >= 2 nodes, network has %d", net.Nodes())
	}
	if psw <= 0 || psw > 1 || math.IsNaN(psw) {
		return nil, fmt.Errorf("access: p_sw = %v, want 0 < p_sw <= 1", psw)
	}
	if mode != PerDistance && mode != PerNode {
		return nil, fmt.Errorf("access: unknown geometric mode %d", int(mode))
	}
	g := &GeometricOn{net: net, psw: psw, mode: mode}
	n := net.Nodes()
	dmax := net.MaxDistance()
	g.probByDist = make([][]float64, n)
	g.dAvgBySrc = make([]float64, n)
	var dSum float64
	for src := 0; src < n; src++ {
		hist := make([]int, dmax+1)
		for dst := 0; dst < n; dst++ {
			hist[net.Distance(topology.Node(src), topology.Node(dst))]++
		}
		row := make([]float64, dmax+1)
		var norm, dsum float64
		switch mode {
		case PerDistance:
			for h := 1; h <= dmax; h++ {
				if hist[h] == 0 {
					continue
				}
				w := math.Pow(psw, float64(h))
				norm += w
				dsum += float64(h) * w
			}
			for h := 1; h <= dmax; h++ {
				if hist[h] == 0 {
					continue
				}
				row[h] = math.Pow(psw, float64(h)) / norm / float64(hist[h])
			}
		case PerNode:
			for h := 1; h <= dmax; h++ {
				w := math.Pow(psw, float64(h)) * float64(hist[h])
				norm += w
				dsum += float64(h) * w
			}
			for h := 1; h <= dmax; h++ {
				row[h] = math.Pow(psw, float64(h)) / norm
			}
		}
		g.probByDist[src] = row
		g.dAvgBySrc[src] = dsum / norm
		dSum += g.dAvgBySrc[src]
	}
	g.dAvg = dSum / float64(n)
	return g, nil
}

// Prob implements Pattern.
func (g *GeometricOn) Prob(src, dst topology.Node) float64 {
	if src == dst {
		return 0
	}
	return g.probByDist[src][g.net.Distance(src, dst)]
}

// MeanDistance implements Pattern (averaged over origins).
func (g *GeometricOn) MeanDistance() float64 { return g.dAvg }

// MeanDistanceFrom returns the per-origin mean remote distance.
func (g *GeometricOn) MeanDistanceFrom(src topology.Node) float64 { return g.dAvgBySrc[src] }

// Name implements Pattern.
func (g *GeometricOn) Name() string {
	return fmt.Sprintf("geometric(p_sw=%g, %s) on %s", g.psw, g.mode, g.net.Name())
}

// UniformOn is the uniform pattern on an arbitrary network (identical to
// Uniform on a torus; provided for interface completeness on meshes).
type UniformOn struct {
	net  topology.Network
	dAvg float64
}

// NewUniformOn builds a uniform pattern on the given network (>= 2 nodes).
func NewUniformOn(net topology.Network) (*UniformOn, error) {
	if net.Nodes() < 2 {
		return nil, fmt.Errorf("access: uniform pattern needs >= 2 nodes, network has %d", net.Nodes())
	}
	n := net.Nodes()
	sum := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			sum += net.Distance(topology.Node(a), topology.Node(b))
		}
	}
	return &UniformOn{net: net, dAvg: float64(sum) / float64(n*(n-1))}, nil
}

// Prob implements Pattern.
func (u *UniformOn) Prob(src, dst topology.Node) float64 {
	if src == dst {
		return 0
	}
	return 1 / float64(u.net.Nodes()-1)
}

// MeanDistance implements Pattern.
func (u *UniformOn) MeanDistance() float64 { return u.dAvg }

// Name implements Pattern.
func (u *UniformOn) Name() string { return "uniform on " + u.net.Name() }
