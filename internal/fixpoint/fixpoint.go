// Package fixpoint implements safeguarded acceleration schemes for damped
// successive-substitution iterations x ← G(x) on nonnegative vectors, shared
// by the multiclass AMVA solver (internal/mva) and the symmetric
// single-class solver (internal/mms).
//
// The accelerator never evaluates the map itself: the caller evaluates
// g = G(x), tests its own convergence criterion on the raw residual g − x,
// and only then asks the accelerator where to evaluate next. Acceleration
// therefore changes the evaluation points, never the map or the stopping
// test, so an accelerated iteration converges to exactly the same fixed
// point as the plain one — just in fewer evaluations.
package fixpoint

import "math"

// Scheme selects an acceleration scheme.
type Scheme int

const (
	// None takes the plain step x ← g.
	None Scheme = iota
	// Aitken applies Aitken Δ² extrapolation in its Irons–Tuck vector form
	// every other step: two plain steps produce consecutive residuals whose
	// projection estimates the dominant contraction factor μ, and the
	// geometric tail Σ μᵏ is summed in closed form. When μ falls outside
	// (−1, 1) or the extrapolated iterate leaves [0, upper], the step keeps
	// the plain update.
	Aitken
	// Anderson runs depth-m Anderson mixing: the next iterate combines the
	// last m residual differences through a least-squares step. When the LS
	// system is ill-conditioned or the mixed iterate leaves [0, upper], the
	// step falls back to the plain iteration and the history restarts.
	Anderson
)

// DefaultAndersonDepth is the Anderson mixing depth used when the caller
// does not choose one.
const DefaultAndersonDepth = 3

// Accelerator holds the state and scratch buffers of one accelerated
// iteration. The zero value is unusable; call Reset before the first
// Advance. Buffers are retained across Resets, so a reused accelerator
// allocates nothing in steady state.
type Accelerator struct {
	scheme Scheme
	depth  int

	// Aitken: xPrev is the iterate two evaluations ago; havePrev marks the
	// second leg of the extrapolation cycle.
	xPrev    []float64
	havePrev bool

	// Anderson: f is the current residual g−x; fPrev/gPrev the previous
	// residual and map value (valid iff haveRes); dF/dG the depth×n
	// difference histories (flattened row-major, ring-indexed); gram, rhs
	// and gamma the normal-equations system.
	f, fPrev, gPrev  []float64
	dF, dG           []float64
	gram, rhs, gamma []float64
	haveRes          bool
	histLen, histPos int
}

// Reset prepares the accelerator for a fresh iteration over vectors of
// length n. depth is the Anderson mixing depth; values < 1 select
// DefaultAndersonDepth. Schemes other than the selected one keep no state.
func (a *Accelerator) Reset(scheme Scheme, depth, n int) {
	a.scheme = scheme
	if depth < 1 {
		depth = DefaultAndersonDepth
	}
	a.depth = depth
	a.havePrev = false
	a.haveRes = false
	a.histLen, a.histPos = 0, 0
	switch scheme {
	case Aitken:
		a.xPrev = resize(a.xPrev, n)
	case Anderson:
		a.f = resize(a.f, n)
		a.fPrev = resize(a.fPrev, n)
		a.gPrev = resize(a.gPrev, n)
		a.dF = resize(a.dF, depth*n)
		a.dG = resize(a.dG, depth*n)
		a.gram = resize(a.gram, depth*depth)
		a.rhs = resize(a.rhs, depth)
		a.gamma = resize(a.gamma, depth)
	}
}

// Advance consumes one map evaluation g = G(x) and writes the next iterate
// into x (g is not modified). upper[i] is the feasibility bound of component
// i: any accelerated candidate outside [0, upper[i]] (or non-finite) is
// rejected in favor of the plain step. len(x), len(g) and len(upper) must
// equal the n passed to Reset.
func (a *Accelerator) Advance(x, g, upper []float64) {
	switch a.scheme {
	case Aitken:
		a.advanceAitken(x, g, upper)
	case Anderson:
		a.advanceAnderson(x, g, upper)
	default:
		copy(x, g)
	}
}

func (a *Accelerator) advanceAitken(x, g, upper []float64) {
	if !a.havePrev {
		// First leg of the cycle: take the plain step, remember where it
		// started.
		copy(a.xPrev, x)
		copy(x, g)
		a.havePrev = true
		return
	}
	// Second leg: x = G(xPrev) and g = G(x), so r1 = x − xPrev and
	// r2 = g − x are consecutive residuals of the plain iteration. Near the
	// fixed point r2 ≈ μ·r1 along the dominant eigendirection; projecting
	// estimates μ, and summing the remaining geometric tail in closed form
	// gives the Irons–Tuck vector Δ² extrapolation
	//
	//	x* = g + μ/(1−μ) · (g − x).
	//
	// (Componentwise Δ² is NOT used: with several mixed eigendirections it
	// can settle into a limit cycle whose extrapolant is a fixed point of
	// the acceleration map but not of G.)
	a.havePrev = false
	var r1r1, r1r2 float64
	for i := range x {
		r1 := x[i] - a.xPrev[i]
		r2 := g[i] - x[i]
		r1r1 += r1 * r1
		r1r2 += r1 * r2
	}
	if !(r1r1 > 0) || math.IsNaN(r1r2) || math.IsInf(r1r2, 0) {
		copy(x, g)
		return
	}
	mu := r1r2 / r1r1
	if !(mu > -1 && mu < 1) {
		// Not a contraction estimate; extrapolating would be a wild guess.
		copy(x, g)
		return
	}
	fac := mu / (1 - mu)
	for i := range x {
		x[i] = g[i] + fac*(g[i]-x[i])
	}
	if !feasible(x, upper) {
		copy(x, g)
	}
}

func (a *Accelerator) advanceAnderson(x, g, upper []float64) {
	n := len(x)
	f := a.f
	for i := 0; i < n; i++ {
		f[i] = g[i] - x[i]
	}
	if a.haveRes {
		col := a.histPos * n
		for i := 0; i < n; i++ {
			a.dF[col+i] = f[i] - a.fPrev[i]
			a.dG[col+i] = g[i] - a.gPrev[i]
		}
		a.histPos = (a.histPos + 1) % a.depth
		if a.histLen < a.depth {
			a.histLen++
		}
	}
	copy(a.fPrev, f)
	copy(a.gPrev, g)
	a.haveRes = true

	if a.histLen == 0 || !a.mix(x, g) || !feasible(x, upper) {
		// No history yet, the LS step was ill-conditioned, or the mixed
		// iterate left the feasible region: plain step, restart the history.
		copy(x, g)
		a.histLen, a.histPos = 0, 0
	}
}

// mix solves the least-squares problem γ = argmin ‖f − ΔF·γ‖₂ over the
// histLen stored difference columns via the normal equations and writes the
// mixed iterate x = g − ΔG·γ. It reports false — leaving x untouched — when
// the system is singular or ill-conditioned (a pivot below 1e-12 of the
// largest Gram diagonal).
func (a *Accelerator) mix(x, g []float64) bool {
	n := len(x)
	mk := a.histLen
	dF, dG := a.dF, a.dG
	gram, rhs, gamma := a.gram, a.rhs, a.gamma

	maxDiag := 0.0
	for j := 0; j < mk; j++ {
		for k := j; k < mk; k++ {
			var s float64
			for i := 0; i < n; i++ {
				s += dF[j*n+i] * dF[k*n+i]
			}
			gram[j*mk+k] = s
			gram[k*mk+j] = s
		}
		if d := gram[j*mk+j]; d > maxDiag {
			maxDiag = d
		}
		var s float64
		for i := 0; i < n; i++ {
			s += dF[j*n+i] * a.f[i]
		}
		rhs[j] = s
	}
	if maxDiag == 0 || math.IsNaN(maxDiag) || math.IsInf(maxDiag, 0) {
		return false
	}

	// Gaussian elimination with partial pivoting on the mk×mk system.
	for col := 0; col < mk; col++ {
		piv := col
		for rw := col + 1; rw < mk; rw++ {
			if math.Abs(gram[rw*mk+col]) > math.Abs(gram[piv*mk+col]) {
				piv = rw
			}
		}
		if math.Abs(gram[piv*mk+col]) <= 1e-12*maxDiag {
			return false
		}
		if piv != col {
			for k := col; k < mk; k++ {
				gram[col*mk+k], gram[piv*mk+k] = gram[piv*mk+k], gram[col*mk+k]
			}
			rhs[col], rhs[piv] = rhs[piv], rhs[col]
		}
		for rw := col + 1; rw < mk; rw++ {
			fct := gram[rw*mk+col] / gram[col*mk+col]
			if fct == 0 {
				continue
			}
			for k := col; k < mk; k++ {
				gram[rw*mk+k] -= fct * gram[col*mk+k]
			}
			rhs[rw] -= fct * rhs[col]
		}
	}
	for j := mk - 1; j >= 0; j-- {
		s := rhs[j]
		for k := j + 1; k < mk; k++ {
			s -= gram[j*mk+k] * gamma[k]
		}
		gamma[j] = s / gram[j*mk+j]
	}

	for i := 0; i < n; i++ {
		xi := g[i]
		for j := 0; j < mk; j++ {
			xi -= gamma[j] * dG[j*n+i]
		}
		x[i] = xi
	}
	return true
}

// feasible reports whether every component is finite, non-negative and at
// most its bound.
func feasible(x, upper []float64) bool {
	for i, v := range x {
		if math.IsNaN(v) || v < 0 || v > upper[i] {
			return false
		}
	}
	return true
}

func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
