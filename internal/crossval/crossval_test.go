// Package crossval holds end-to-end cross-validation tests: the analytical
// solvers (exact MVA, load-dependent MVA, convolution) against the two
// simulation substrates (des stations and stochastic timed Petri nets) on
// randomly generated closed networks. Agreement here validates every layer
// at once — if the event engine, the station semantics, the Petri-net
// semantics or a solver recursion were wrong, these would diverge.
//
// Invariant checking and the agreement bands live in internal/conformance;
// this package supplies the network generators and the simulation adapters.
// Every randomized trial derives its own generator stream from
// (crossvalSeed, trial), so a failure message naming the trial index is a
// complete reproduction recipe: no trial depends on the random draws of the
// trials before it.
package crossval

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lattol/internal/conformance"
	"lattol/internal/des"
	"lattol/internal/mva"
	"lattol/internal/petri"
	"lattol/internal/queueing"
	"lattol/internal/stats"
	"lattol/internal/sweep"
)

// crossvalSeed is the base seed of every randomized trial in this package.
// Network generation for trial i uses stream DeriveSeed(crossvalSeed, i, 0);
// the DES and Petri simulations use streams 1 and 2 of the same pair.
const crossvalSeed = 99

// simAgreement is the relative throughput band for the event simulators
// against the exact load-dependent answer at the horizons used below. It is
// tighter than conformance's DiffOptions sim bands because these cyclic
// networks are simulated exactly (no shadow-server approximation on either
// side) and the horizon is longer.
const simAgreement = 0.06

// trialNet regenerates trial i's network from its own derived stream.
func trialNet(trial int) *queueing.Network {
	rng := rand.New(rand.NewSource(sweep.DeriveSeed(crossvalSeed, int64(trial), 0)))
	return randomCycle(rng)
}

// randomCycle generates a random closed cyclic network: N jobs visit
// stations 0..M-1 in order (all visit ratios 1). Station kinds, service
// times and server counts are randomized.
func randomCycle(rng *rand.Rand) *queueing.Network {
	m := 2 + rng.Intn(3)
	stations := make([]queueing.Station, m)
	visits := make([]float64, m)
	for i := range stations {
		stations[i] = queueing.Station{
			Name:        "s",
			Kind:        queueing.FCFS,
			ServiceTime: 0.5 + 4*rng.Float64(),
		}
		switch rng.Intn(4) {
		case 0:
			stations[i].Kind = queueing.Delay
		case 1:
			stations[i].Servers = 2
		}
		visits[i] = 1
	}
	return &queueing.Network{
		Stations: stations,
		Classes:  []queueing.Class{{Name: "c", Population: 2 + rng.Intn(6), Visits: visits}},
	}
}

// simulateCycleDES runs the cyclic network on des stations and returns the
// measured throughput.
func simulateCycleDES(t *testing.T, net *queueing.Network, seed int64, horizon float64) float64 {
	t.Helper()
	e := des.NewEngine(seed)
	m := len(net.Stations)
	stations := make([]*des.Station, m)
	completed := 0
	for i, st := range net.Stations {
		service := stats.Dist(stats.Exponential{M: st.ServiceTime})
		servers := st.ServerCount()
		if st.Kind == queueing.Delay {
			// Approximate an infinite server with one per customer.
			servers = net.Classes[0].Population
		}
		i := i
		stations[i] = &des.Station{
			Name:    st.Name,
			Service: service,
			Servers: servers,
			Done: func(job des.Job, _, _ float64) {
				if i == m-1 {
					completed++
					stations[0].Arrive(job)
				} else {
					stations[i+1].Arrive(job)
				}
			},
		}
	}
	for _, st := range stations {
		st.Attach(e)
	}
	for k := 0; k < net.Classes[0].Population; k++ {
		stations[0].Arrive(k)
	}
	warmup := horizon / 5
	e.Run(warmup)
	completed = 0
	e.Run(warmup + horizon)
	return float64(completed) / horizon
}

// simulateCyclePetri runs the same network as a Petri net and returns the
// measured throughput.
func simulateCyclePetri(t *testing.T, net *queueing.Network, seed int64, horizon float64) float64 {
	t.Helper()
	pn := petri.New(seed)
	m := len(net.Stations)
	places := make([]petri.PlaceID, m)
	for i := range places {
		places[i] = pn.AddPlace("q")
	}
	var last petri.TransitionID
	for i, st := range net.Stations {
		next := places[(i+1)%m]
		servers := st.ServerCount()
		if st.Kind == queueing.Delay {
			servers = net.Classes[0].Population
		}
		last = pn.MustAddTransition(petri.Transition{
			Name:    "t",
			Inputs:  []petri.PlaceID{places[i]},
			Delay:   stats.Exponential{M: st.ServiceTime},
			Servers: servers,
			Fire: func(f *petri.Firing) []petri.Output {
				return []petri.Output{{Place: next, Data: f.Tokens[0].Data}}
			},
		})
	}
	for k := 0; k < net.Classes[0].Population; k++ {
		pn.Put(places[0], k)
	}
	pn.Run(horizon / 5)
	pn.ResetStats()
	pn.Run(horizon/5 + horizon)
	return float64(pn.Served(last)) / horizon
}

func TestRandomCyclesSolversVsSimulators(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation cross-validation skipped in -short mode")
	}
	// The trials are independent — each regenerates its network from its own
	// derived seed — and fan out over the sweep runner; results are identical
	// at any worker count.
	trials := []int{0, 1, 2, 3, 4, 5}
	type outcome struct {
		want, conv, des, petri float64
	}
	outcomes, err := sweep.Run(context.Background(), trials, sweep.Options{}, func(trial int) (outcome, error) {
		net := trialNet(trial)
		exact, err := mva.ExactSingleClassLD(net)
		if err != nil {
			return outcome{}, err
		}
		// The exact answer must itself satisfy the operational laws before
		// it serves as the reference for everything else.
		if err := conformance.CheckResult(net, exact, conformance.Bands{}); err != nil {
			return outcome{}, fmt.Errorf("trial %d (seed %d): exact LD MVA: %w", trial, crossvalSeed, err)
		}
		x, err := mva.Convolution(net)
		if err != nil {
			return outcome{}, err
		}
		const horizon = 60000.0
		return outcome{
			want:  exact.Throughput[0],
			conv:  x,
			des:   simulateCycleDES(t, net, sweep.DeriveSeed(crossvalSeed, int64(trial), 1), horizon),
			petri: simulateCyclePetri(t, net, sweep.DeriveSeed(crossvalSeed, int64(trial), 2), horizon),
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial, o := range outcomes {
		// Convolution must agree analytically.
		if math.Abs(o.conv-o.want) > 1e-9*(1+o.want) {
			t.Errorf("trial %d (seed %d): convolution %v != LD MVA %v", trial, crossvalSeed, o.conv, o.want)
		}
		for name, got := range map[string]float64{"des": o.des, "petri": o.petri} {
			if rel := math.Abs(got-o.want) / o.want; rel > simAgreement {
				t.Errorf("trial %d (seed %d) (%+v): %s throughput %v vs exact %v (rel %.3f)",
					trial, crossvalSeed, trialNet(trial).Stations, name, got, o.want, rel)
			}
		}
	}
}

func TestAMVAOnRandomCycles(t *testing.T) {
	// The approximate solver tracks the exact load-dependent answer within
	// Bard–Schweitzer error on single-server networks. With multi-server
	// stations it additionally carries the shadow-server approximation,
	// which is always *pessimistic* and can undershoot by ~30% when a
	// 2-server station is the bottleneck at small population — the two
	// regimes are the documented AMVAvsExact and AMVAvsExactMulti bands.
	bands := conformance.DefaultBands()
	trials := make([]int, 25)
	for i := range trials {
		trials[i] = i
	}
	type outcome struct {
		multi         bool
		exact, approx float64
	}
	outcomes, err := sweep.Run(context.Background(), trials, sweep.Options{}, func(trial int) (outcome, error) {
		net := trialNet(trial)
		var o outcome
		for _, st := range net.Stations {
			if st.Kind == queueing.FCFS && st.ServerCount() > 1 {
				o.multi = true
			}
		}
		exact, err := mva.ExactSingleClassLD(net)
		if err != nil {
			return o, fmt.Errorf("trial %d (seed %d): exact LD MVA: %w", trial, crossvalSeed, err)
		}
		approx, err := mva.ApproxMultiClass(net, mva.AMVAOptions{})
		if err != nil {
			return o, fmt.Errorf("trial %d (seed %d): AMVA: %w", trial, crossvalSeed, err)
		}
		// The converged AMVA answer must satisfy every invariant the
		// conformance library checks, including the fixed-point identity.
		if err := conformance.CheckResult(net, approx, bands); err != nil {
			return o, fmt.Errorf("trial %d (seed %d): %w", trial, crossvalSeed, err)
		}
		o.exact = exact.Throughput[0]
		o.approx = approx.Throughput[0]
		return o, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial, o := range outcomes {
		rel := math.Abs(o.approx-o.exact) / o.exact
		if o.multi {
			if rel > bands.AMVAvsExactMulti {
				t.Errorf("trial %d (seed %d): shadow+AMVA error %.1f%% on %+v",
					trial, crossvalSeed, rel*100, trialNet(trial).Stations)
			}
			if o.approx > o.exact*1.05 {
				t.Errorf("trial %d (seed %d): shadow approximation should be pessimistic: %v > %v",
					trial, crossvalSeed, o.approx, o.exact)
			}
		} else if rel > bands.AMVAvsExact {
			t.Errorf("trial %d (seed %d): AMVA error %.1f%% on %+v",
				trial, crossvalSeed, rel*100, trialNet(trial).Stations)
		}
	}
}
