package mva

import (
	"fmt"

	"lattol/internal/queueing"
)

// ExactSingleClass solves a single-class closed network with population n by
// exact MVA recursion. It requires the network to have exactly one class.
func ExactSingleClass(net *queueing.Network) (*Result, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if len(net.Classes) != 1 {
		return nil, fmt.Errorf("mva: ExactSingleClass on network with %d classes", len(net.Classes))
	}
	n := net.Classes[0].Population
	m := len(net.Stations)
	q := make([]float64, m) // queue lengths at population k
	w := make([]float64, m)
	var lambda float64
	for k := 1; k <= n; k++ {
		var cycle float64
		for j := 0; j < m; j++ {
			w[j] = residence(net.Stations[j], q[j])
			cycle += net.Classes[0].Visits[j] * w[j]
		}
		if cycle == 0 {
			return nil, fmt.Errorf("mva: class %q has zero total demand", net.Classes[0].Name)
		}
		lambda = float64(k) / cycle
		for j := 0; j < m; j++ {
			q[j] = lambda * net.Classes[0].Visits[j] * w[j]
		}
	}
	r := newResult(1, m)
	r.Method = MethodExact
	if n == 0 {
		return r, nil
	}
	r.Throughput[0] = lambda
	copy(r.Wait[0], w)
	copy(r.QueueLen[0], q)
	r.CycleTime[0] = float64(n) / lambda
	return r, nil
}

// ExactMultiClass solves a closed multiclass network by the exact MVA
// recursion over the full population lattice. The state space has
// Π_c (N_c + 1) points, so this is only feasible for small populations; it
// exists mainly to quantify the accuracy of the approximate solver.
// MaxStates guards against accidental blow-up; 0 means the default of 2^22.
func ExactMultiClass(net *queueing.Network, maxStates int) (*Result, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if maxStates <= 0 {
		maxStates = 1 << 22
	}
	nc := len(net.Classes)
	nm := len(net.Stations)

	// The lattice is indexed mixed-radix: class c contributes a digit in
	// [0, N_c].
	radix := make([]int, nc)
	states := 1
	for c, cl := range net.Classes {
		radix[c] = cl.Population + 1
		if states > maxStates/radix[c] {
			return nil, fmt.Errorf("mva: exact state space exceeds %d states", maxStates)
		}
		states *= radix[c]
	}

	// queue[idx*nm + m] is the total queue length at station m for the
	// population vector encoded by idx. We fill the lattice in order of
	// increasing total population; mixed-radix increasing index order is a
	// valid topological order because removing a customer always decreases
	// the index.
	queue := make([]float64, states*nm)
	pop := make([]int, nc)
	w := make([][]float64, nc)
	lambda := make([]float64, nc)
	for c := range w {
		w[c] = make([]float64, nm)
	}

	stride := make([]int, nc) // index delta for one customer of class c
	s := 1
	for c := 0; c < nc; c++ {
		stride[c] = s
		s *= radix[c]
	}

	for idx := 1; idx < states; idx++ {
		decode(idx, radix, pop)
		// Solve for population vector pop.
		for c := 0; c < nc; c++ {
			lambda[c] = 0
			if pop[c] == 0 {
				continue
			}
			prev := idx - stride[c] // population with one class-c customer removed
			var cycle float64
			for m := 0; m < nm; m++ {
				w[c][m] = residence(net.Stations[m], queue[prev*nm+m])
				cycle += net.Classes[c].Visits[m] * w[c][m]
			}
			if cycle == 0 {
				return nil, fmt.Errorf("mva: class %q has zero total demand", net.Classes[c].Name)
			}
			lambda[c] = float64(pop[c]) / cycle
		}
		for m := 0; m < nm; m++ {
			var q float64
			for c := 0; c < nc; c++ {
				if pop[c] > 0 {
					q += lambda[c] * net.Classes[c].Visits[m] * w[c][m]
				}
			}
			queue[idx*nm+m] = q
		}
	}

	// Final solve at the full population reuses the last iteration's w and
	// lambda, which correspond to idx = states-1 (the full vector) — but only
	// if every class has positive population. Recompute explicitly to keep
	// the logic obvious and correct for zero-population classes.
	full := states - 1
	r := newResult(nc, nm)
	r.Method = MethodExact
	for c := 0; c < nc; c++ {
		if net.Classes[c].Population == 0 {
			continue
		}
		prev := full - stride[c]
		var cycle float64
		for m := 0; m < nm; m++ {
			wt := residence(net.Stations[m], queue[prev*nm+m])
			r.Wait[c][m] = wt
			cycle += net.Classes[c].Visits[m] * wt
		}
		r.Throughput[c] = float64(net.Classes[c].Population) / cycle
		r.CycleTime[c] = cycle
		for m := 0; m < nm; m++ {
			r.QueueLen[c][m] = r.Throughput[c] * net.Classes[c].Visits[m] * r.Wait[c][m]
		}
	}
	return r, nil
}

// StationResidence exposes the MVA residence-time step for external
// consistency checks: internal/conformance re-derives every waiting time of a
// converged solution from the reported queue lengths and compares, so a
// mutation of the waiting-time term inside a solver cannot survive unnoticed.
func StationResidence(st queueing.Station, seen float64) float64 {
	return residence(st, seen)
}

// residence is the MVA residence-time step for one station given the queue
// length seen on arrival: s·(1+q) at a single-server FCFS station, s at a
// delay station, and the shadow-server approximation
// (s/m)·(1+q) + s·(m-1)/m for an m-server FCFS station (exact at m = 1,
// pure delay as m → ∞).
func residence(st queueing.Station, seen float64) float64 {
	if st.Kind == queueing.Delay {
		return st.ServiceTime
	}
	m := float64(st.ServerCount())
	if m == 1 {
		return st.ServiceTime * (1 + seen)
	}
	return st.ServiceTime/m*(1+seen) + st.ServiceTime*(m-1)/m
}

// decode writes the mixed-radix digits of idx into out.
func decode(idx int, radix, out []int) {
	for c, r := range radix {
		out[c] = idx % r
		idx /= r
	}
}
