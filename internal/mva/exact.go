package mva

import (
	"fmt"

	"lattol/internal/queueing"
)

// ExactSingleClass solves a single-class closed network with population n by
// exact MVA recursion. It requires the network to have exactly one class.
func ExactSingleClass(net *queueing.Network) (*Result, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if len(net.Classes) != 1 {
		return nil, fmt.Errorf("mva: ExactSingleClass on network with %d classes", len(net.Classes))
	}
	n := net.Classes[0].Population
	m := len(net.Stations)
	q := make([]float64, m) // queue lengths at population k
	w := make([]float64, m)
	var lambda float64
	for k := 1; k <= n; k++ {
		var cycle float64
		for j := 0; j < m; j++ {
			w[j] = residence(net.Stations[j], q[j])
			cycle += net.Classes[0].Visits[j] * w[j]
		}
		if cycle == 0 {
			return nil, fmt.Errorf("mva: class %q has zero total demand", net.Classes[0].Name)
		}
		lambda = float64(k) / cycle
		for j := 0; j < m; j++ {
			q[j] = lambda * net.Classes[0].Visits[j] * w[j]
		}
	}
	r := newResult(1, m)
	r.Method = MethodExact
	if n == 0 {
		return r, nil
	}
	r.Throughput[0] = lambda
	copy(r.Wait[0], w)
	copy(r.QueueLen[0], q)
	r.CycleTime[0] = float64(n) / lambda
	return r, nil
}

// ExactMultiClass solves a closed multiclass network by the exact MVA
// recursion over the full population lattice. The state space has
// Π_c (N_c + 1) points, so this is only feasible for small populations; it
// exists mainly to quantify the accuracy of the approximate solver.
// MaxStates guards against accidental blow-up; 0 means the default of 2^22.
//
// The returned Result is freshly allocated and owned by the caller. For
// repeated solves that should reuse the lattice and scratch buffers, use
// (*Workspace).ExactMultiClass.
func ExactMultiClass(net *queueing.Network, maxStates int) (*Result, error) {
	var ws Workspace
	return ws.ExactMultiClass(net, maxStates)
}

// ExactMultiClass runs the exact MVA recursion using the workspace's
// buffers: the population lattice is walked as an iterative DP with a
// mixed-radix odometer (no per-state index decoding), and every buffer —
// including the states×stations queue-length table — is reused across
// solves, so a warmed workspace solves with zero allocations. The returned
// Result aliases the workspace and is valid until the next solve on it; see
// the Workspace reuse contract.
func (ws *Workspace) ExactMultiClass(net *queueing.Network, maxStates int) (*Result, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if maxStates <= 0 {
		maxStates = 1 << 22
	}
	nc := len(net.Classes)
	nm := len(net.Stations)

	// The lattice is indexed mixed-radix: class c contributes a digit in
	// [0, N_c].
	ws.radix = resizeInt(ws.radix, nc)
	ws.stride = resizeInt(ws.stride, nc)
	radix, stride := ws.radix, ws.stride
	states := 1
	for c, cl := range net.Classes {
		radix[c] = cl.Population + 1
		if states > maxStates/radix[c] {
			return nil, fmt.Errorf("mva: exact state space exceeds %d states", maxStates)
		}
		stride[c] = states // index delta for one customer of class c
		states *= radix[c]
	}

	// Per-station residence coefficients: w = a·(1+q) + c reproduces
	// residence() exactly (FCFS: a = s/m, c = s·(m-1)/m with c = 0 at m = 1;
	// delay: a = 0, c = s) without branching in the per-state loop.
	ws.resA = resizeF(ws.resA, nm)
	ws.resC = resizeF(ws.resC, nm)
	for m, st := range net.Stations {
		if st.Kind == queueing.Delay {
			ws.resA[m] = 0
			ws.resC[m] = st.ServiceTime
			continue
		}
		srv := float64(st.ServerCount())
		ws.resA[m] = st.ServiceTime / srv
		if srv == 1 {
			ws.resC[m] = 0
		} else {
			ws.resC[m] = st.ServiceTime * (srv - 1) / srv
		}
	}

	// lattice[idx*nm + m] is the total queue length at station m for the
	// population vector encoded by idx. We fill the lattice in order of
	// increasing index; that is a valid topological order because removing a
	// customer always decreases the index. Only row 0 (the empty network)
	// needs zeroing — every other row is fully overwritten.
	ws.lattice = resizeF(ws.lattice, states*nm)
	lat := ws.lattice
	for m := 0; m < nm; m++ {
		lat[m] = 0
	}
	ws.pop = resizeInt(ws.pop, nc)
	pop := ws.pop
	for c := range pop {
		pop[c] = 0
	}
	// Per-class visit-weighted coefficients fold the visit ratios into the
	// residence step once, outside the state loop:
	//
	//	v_m·w_m = v_m·(a_m·(1+q_m) + c_m) = vac_m + va_m·q_m
	//
	// with va_m = v_m·a_m and vac_m = v_m·(a_m + c_m), so the cycle time is
	// base_c + va·q (one dot product) and each queue-length update is two
	// fused multiply-adds per station.
	ws.va = resizeF(ws.va, nc*nm)
	ws.vac = resizeF(ws.vac, nc*nm)
	ws.base = resizeF(ws.base, nc)
	for c, cl := range net.Classes {
		vaRow := ws.va[c*nm : c*nm+nm]
		vacRow := ws.vac[c*nm : c*nm+nm]
		var base float64
		for m, v := range cl.Visits {
			vaRow[m] = v * ws.resA[m]
			vacRow[m] = v*ws.resA[m] + v*ws.resC[m]
			base += vacRow[m]
		}
		ws.base[c] = base
	}
	va, vac, baseC := ws.va, ws.vac, ws.base

	for idx := 1; idx < states; idx++ {
		// Odometer increment: pop is the mixed-radix decomposition of idx.
		for c := 0; c < nc; c++ {
			pop[c]++
			if pop[c] < radix[c] {
				break
			}
			pop[c] = 0
		}
		// Solve for population vector pop. Classes accumulate into the row in
		// ascending order (the first active class writes, the rest add) —
		// idx > 0 guarantees at least one active class.
		row := lat[idx*nm : idx*nm+nm]
		first := true
		for c := 0; c < nc; c++ {
			if pop[c] == 0 {
				continue
			}
			// Population with one class-c customer removed.
			prev := lat[(idx-stride[c])*nm : (idx-stride[c])*nm+nm]
			vaRow := va[c*nm : c*nm+nm]
			vacRow := vac[c*nm : c*nm+nm]
			// Four-way unrolled dot product va·prev: independent partial sums
			// break the floating-point add dependency chain.
			var s0, s1, s2, s3 float64
			m := 0
			for ; m+3 < nm; m += 4 {
				s0 += vaRow[m] * prev[m]
				s1 += vaRow[m+1] * prev[m+1]
				s2 += vaRow[m+2] * prev[m+2]
				s3 += vaRow[m+3] * prev[m+3]
			}
			for ; m < nm; m++ {
				s0 += vaRow[m] * prev[m]
			}
			cycle := baseC[c] + (s0 + s1) + (s2 + s3)
			if cycle == 0 {
				return nil, fmt.Errorf("mva: class %q has zero total demand", net.Classes[c].Name)
			}
			lam := float64(pop[c]) / cycle
			if first {
				for m, pm := range prev {
					row[m] = lam * (vacRow[m] + vaRow[m]*pm)
				}
				first = false
			} else {
				for m, pm := range prev {
					row[m] += lam * (vacRow[m] + vaRow[m]*pm)
				}
			}
		}
	}

	// Final solve at the full population recomputes the per-class waiting
	// times explicitly (in residence() form, off the hot path) — correct for
	// zero-population classes too, whose rows stay zero.
	full := states - 1
	resA, resC := ws.resA, ws.resC
	r := ws.ensure(nc, nm, false)
	// The exact solve overwrote q; the next warm-started approximate solve
	// must fall back to the cold seed.
	ws.warmOK = false
	r.Method = MethodExact
	for c := 0; c < nc; c++ {
		if net.Classes[c].Population == 0 {
			continue
		}
		prev := lat[(full-stride[c])*nm:]
		var cycle float64
		for m := 0; m < nm; m++ {
			wt := resA[m]*(1+prev[m]) + resC[m]
			r.Wait[c][m] = wt
			cycle += net.Classes[c].Visits[m] * wt
		}
		r.Throughput[c] = float64(net.Classes[c].Population) / cycle
		r.CycleTime[c] = cycle
		for m := 0; m < nm; m++ {
			r.QueueLen[c][m] = r.Throughput[c] * net.Classes[c].Visits[m] * r.Wait[c][m]
		}
	}
	return r, nil
}

// StationResidence exposes the MVA residence-time step for external
// consistency checks: internal/conformance re-derives every waiting time of a
// converged solution from the reported queue lengths and compares, so a
// mutation of the waiting-time term inside a solver cannot survive unnoticed.
func StationResidence(st queueing.Station, seen float64) float64 {
	return residence(st, seen)
}

// residence is the MVA residence-time step for one station given the queue
// length seen on arrival: s·(1+q) at a single-server FCFS station, s at a
// delay station, and the shadow-server approximation
// (s/m)·(1+q) + s·(m-1)/m for an m-server FCFS station (exact at m = 1,
// pure delay as m → ∞).
func residence(st queueing.Station, seen float64) float64 {
	if st.Kind == queueing.Delay {
		return st.ServiceTime
	}
	m := float64(st.ServerCount())
	if m == 1 {
		return st.ServiceTime * (1 + seen)
	}
	return st.ServiceTime/m*(1+seen) + st.ServiceTime*(m-1)/m
}
