package mva

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lattol/internal/queueing"
)

// batchLane is one operating point of the batch tests: a single-class closed
// network over a fixed station count.
type batchLane struct {
	visits  []float64
	service []float64
	servers []float64
	pop     int
}

func randomBatchLane(rng *rand.Rand, n int) batchLane {
	l := batchLane{
		visits:  make([]float64, n),
		service: make([]float64, n),
		servers: make([]float64, n),
		pop:     1 + rng.Intn(16),
	}
	for i := 0; i < n; i++ {
		l.visits[i] = 0.1 + 2*rng.Float64()
		l.service[i] = 0.5 + 5*rng.Float64()
		l.servers[i] = 1
		if rng.Intn(3) == 0 {
			l.servers[i] = float64(1 + rng.Intn(4))
		}
	}
	return l
}

func (l batchLane) network() *queueing.Network {
	n := len(l.visits)
	net := &queueing.Network{
		Stations: make([]queueing.Station, n),
		Classes:  make([]queueing.Class, 1),
	}
	for i := 0; i < n; i++ {
		net.Stations[i] = queueing.Station{
			Kind:        queueing.FCFS,
			ServiceTime: l.service[i],
			Servers:     int(l.servers[i]),
		}
	}
	net.Classes[0] = queueing.Class{Population: l.pop, Visits: l.visits}
	return net
}

// fillBatch loads lanes into a workspace with singleton groups (the plain
// single-class degenerate case of the grouped iteration).
func fillBatch(bw *BatchWorkspace, lanes []batchLane) {
	n := len(lanes[0].visits)
	bw.Reset(len(lanes), n, n)
	for i := 0; i < n; i++ {
		bw.SetGroup(i, i)
	}
	for b, l := range lanes {
		bw.SetPopulation(b, float64(l.pop))
		for i := 0; i < n; i++ {
			bw.Set(i, b, l.visits[i], l.service[i], l.servers[i])
		}
	}
}

// TestBatchMatchesScalarSingleClass pins the batch kernel to the scalar
// Bard–Schweitzer solver: every lane's throughput and residence times must
// agree with an independent single-class ApproxMultiClass solve at 1e-9 when
// both iterate to a 1e-12 residual.
func TestBatchMatchesScalarSingleClass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const B, n = 17, 6
	lanes := make([]batchLane, B)
	for b := range lanes {
		lanes[b] = randomBatchLane(rng, n)
	}
	var bw BatchWorkspace
	fillBatch(&bw, lanes)
	bw.Run(BatchOptions{Tolerance: 1e-12})

	var sw Workspace
	for b, l := range lanes {
		if err := bw.Err(b); err != nil {
			t.Fatalf("lane %d: %v", b, err)
		}
		res, err := sw.ApproxMultiClass(l.network(), AMVAOptions{Tolerance: 1e-12})
		if err != nil {
			t.Fatalf("scalar lane %d: %v", b, err)
		}
		if d := relDiff(bw.Lambda(b), res.Throughput[0]); d > 1e-9 {
			t.Errorf("lane %d: batch λ=%v scalar λ=%v (rel %g)", b, bw.Lambda(b), res.Throughput[0], d)
		}
		for i := 0; i < n; i++ {
			if d := relDiff(bw.Residence(i, b), res.Wait[0][i]); d > 1e-9 {
				t.Errorf("lane %d station %d: batch w=%v scalar w=%v (rel %g)",
					b, i, bw.Residence(i, b), res.Wait[0][i], d)
			}
		}
		if bw.Iterations(b) <= 0 {
			t.Errorf("lane %d: iterations = %d, want > 0", b, bw.Iterations(b))
		}
	}
}

// TestBatchWarmContinuation reruns an identical batch: the warm seed (the
// previous batch's converged solution) must not change the fixed point and
// must converge in fewer total iterations than the cold run.
func TestBatchWarmContinuation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const B, n = 9, 5
	lanes := make([]batchLane, B)
	for b := range lanes {
		lanes[b] = randomBatchLane(rng, n)
	}
	var bw BatchWorkspace
	fillBatch(&bw, lanes)
	bw.Run(BatchOptions{})
	coldIters := 0
	coldLambda := make([]float64, B)
	for b := 0; b < B; b++ {
		if err := bw.Err(b); err != nil {
			t.Fatalf("cold lane %d: %v", b, err)
		}
		coldIters += bw.Iterations(b)
		coldLambda[b] = bw.Lambda(b)
	}

	fillBatch(&bw, lanes)
	bw.Run(BatchOptions{})
	warmIters := 0
	for b := 0; b < B; b++ {
		if err := bw.Err(b); err != nil {
			t.Fatalf("warm lane %d: %v", b, err)
		}
		warmIters += bw.Iterations(b)
		if d := relDiff(bw.Lambda(b), coldLambda[b]); d > 1e-9 {
			t.Errorf("lane %d: warm λ=%v cold λ=%v (rel %g)", b, bw.Lambda(b), coldLambda[b], d)
		}
	}
	if warmIters >= coldIters {
		t.Errorf("warm run took %d total iterations, cold took %d; want fewer", warmIters, coldIters)
	}
}

// TestBatchLaneFailureIsolation plants two broken lanes — an invalid
// population and a zero-demand lane that happens to be the would-be pilot —
// between healthy ones: the bad lanes fail positionally, the healthy lanes
// still match the scalar solver.
func TestBatchLaneFailureIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const B, n = 5, 4
	lanes := make([]batchLane, B)
	for b := range lanes {
		lanes[b] = randomBatchLane(rng, n)
	}
	// Lane 0 has no demand at all: the pilot must fail over to lane 1.
	for i := range lanes[0].visits {
		lanes[0].visits[i] = 0
	}
	var bw BatchWorkspace
	fillBatch(&bw, lanes)
	bw.SetPopulation(3, 0) // lane 3: invalid population

	bw.Run(BatchOptions{Tolerance: 1e-12})
	if err := bw.Err(0); err == nil {
		t.Error("zero-demand lane 0 converged, want error")
	}
	if err := bw.Err(3); err == nil {
		t.Error("zero-population lane 3 converged, want error")
	}
	var sw Workspace
	for _, b := range []int{1, 2, 4} {
		if err := bw.Err(b); err != nil {
			t.Fatalf("healthy lane %d: %v", b, err)
		}
		res, err := sw.ApproxMultiClass(lanes[b].network(), AMVAOptions{Tolerance: 1e-12})
		if err != nil {
			t.Fatalf("scalar lane %d: %v", b, err)
		}
		if d := relDiff(bw.Lambda(b), res.Throughput[0]); d > 1e-9 {
			t.Errorf("lane %d: batch λ=%v scalar λ=%v (rel %g)", b, bw.Lambda(b), res.Throughput[0], d)
		}
		if !math.IsInf(bw.Lambda(b), 0) && math.IsNaN(bw.Lambda(b)) {
			t.Errorf("lane %d: λ = %v", b, bw.Lambda(b))
		}
	}
}

// TestBatchNonConvergence caps the budget at one iteration: every lane must
// report a NonConvergenceError carrying that count.
func TestBatchNonConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lanes := make([]batchLane, 3)
	for b := range lanes {
		lanes[b] = randomBatchLane(rng, 4)
	}
	var bw BatchWorkspace
	fillBatch(&bw, lanes)
	bw.Run(BatchOptions{MaxIterations: 1})
	for b := range lanes {
		var nc *NonConvergenceError
		if err := bw.Err(b); !errors.As(err, &nc) {
			t.Fatalf("lane %d: err = %v, want NonConvergenceError", b, err)
		} else if nc.Iterations != 1 {
			t.Errorf("lane %d: Iterations = %d, want 1", b, nc.Iterations)
		}
	}
}

// TestBatchRunAllocates0 pins the steady-state allocation contract: refilling
// and rerunning a reused workspace allocates nothing.
func TestBatchRunAllocates0(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const B, n = 8, 5
	lanes := make([]batchLane, B)
	for b := range lanes {
		lanes[b] = randomBatchLane(rng, n)
	}
	var bw BatchWorkspace
	fillBatch(&bw, lanes)
	bw.Run(BatchOptions{})
	allocs := testing.AllocsPerRun(50, func() {
		fillBatch(&bw, lanes)
		bw.Run(BatchOptions{})
		if err := bw.Err(0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("batch run allocates %v allocs/op, want 0", allocs)
	}
}
