package mva

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lattol/internal/queueing"
)

func ldNet(pop int, stations []queueing.Station, visits []float64) *queueing.Network {
	return &queueing.Network{
		Stations: stations,
		Classes:  []queueing.Class{{Name: "c", Population: pop, Visits: visits}},
	}
}

func TestLDMatchesExactForSingleServers(t *testing.T) {
	// With all single-server stations the load-dependent recursion must
	// reproduce the plain exact MVA bit for bit (same arithmetic).
	net := ldNet(6,
		[]queueing.Station{
			{Name: "a", Kind: queueing.FCFS, ServiceTime: 3},
			{Name: "b", Kind: queueing.FCFS, ServiceTime: 7},
			{Name: "c", Kind: queueing.FCFS, ServiceTime: 0.5},
		},
		[]float64{1, 0.4, 2})
	plain, err := ExactSingleClass(net)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := ExactSingleClassLD(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Throughput[0]-ld.Throughput[0]) > 1e-12 {
		t.Errorf("λ plain %v != LD %v", plain.Throughput[0], ld.Throughput[0])
	}
	for m := range net.Stations {
		if math.Abs(plain.Wait[0][m]-ld.Wait[0][m]) > 1e-10 {
			t.Errorf("w[%d] plain %v != LD %v", m, plain.Wait[0][m], ld.Wait[0][m])
		}
	}
}

func TestLDDelayStation(t *testing.T) {
	// Machine repairman with think time: N=2, Z=10 (delay), s=1 FCFS:
	// exact λ = 11/61 (hand recursion in exact_test.go).
	net := ldNet(2,
		[]queueing.Station{
			{Name: "think", Kind: queueing.Delay, ServiceTime: 10},
			{Name: "srv", Kind: queueing.FCFS, ServiceTime: 1},
		},
		[]float64{1, 1})
	ld, err := ExactSingleClassLD(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ld.Throughput[0]-11.0/61.0) > 1e-12 {
		t.Errorf("λ = %v, want 11/61", ld.Throughput[0])
	}
}

func TestLDMultiServerMatchesInfiniteServerLimit(t *testing.T) {
	// A station with as many servers as customers behaves exactly like a
	// delay station.
	popN := 5
	multi := ldNet(popN,
		[]queueing.Station{
			{Name: "ms", Kind: queueing.FCFS, ServiceTime: 4, Servers: popN},
			{Name: "srv", Kind: queueing.FCFS, ServiceTime: 2},
		},
		[]float64{1, 1})
	delay := ldNet(popN,
		[]queueing.Station{
			{Name: "ms", Kind: queueing.Delay, ServiceTime: 4},
			{Name: "srv", Kind: queueing.FCFS, ServiceTime: 2},
		},
		[]float64{1, 1})
	a, err := ExactSingleClassLD(multi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExactSingleClassLD(delay)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Throughput[0]-b.Throughput[0]) > 1e-12 {
		t.Errorf("m=N station λ %v != delay station λ %v", a.Throughput[0], b.Throughput[0])
	}
}

func TestLDZeroPopulation(t *testing.T) {
	net := ldNet(0, []queueing.Station{{Name: "s", Kind: queueing.FCFS, ServiceTime: 1}}, []float64{1})
	r, err := ExactSingleClassLD(net)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput[0] != 0 {
		t.Errorf("λ = %v", r.Throughput[0])
	}
}

func TestLDRejectsMulticlass(t *testing.T) {
	net := ldNet(1, []queueing.Station{{Name: "s", Kind: queueing.FCFS, ServiceTime: 1}}, []float64{1})
	net.Classes = append(net.Classes, queueing.Class{Name: "d", Population: 1, Visits: []float64{1}})
	if _, err := ExactSingleClassLD(net); err == nil {
		t.Error("want error")
	}
}

func TestLDLittleAndConservation(t *testing.T) {
	net := ldNet(7,
		[]queueing.Station{
			{Name: "m2", Kind: queueing.FCFS, ServiceTime: 6, Servers: 2},
			{Name: "m3", Kind: queueing.FCFS, ServiceTime: 9, Servers: 3},
			{Name: "s1", Kind: queueing.FCFS, ServiceTime: 1},
		},
		[]float64{1, 0.5, 2})
	r, err := ExactSingleClassLD(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckLittle(net, 1e-9); err != nil {
		t.Error(err)
	}
	var total float64
	for m := range net.Stations {
		total += r.QueueLen[0][m]
	}
	if math.Abs(total-7) > 1e-9 {
		t.Errorf("queue lengths sum to %v, want 7", total)
	}
}

func TestShadowApproximationErrorBounded(t *testing.T) {
	// The shadow-server approximation used by the fast solvers should stay
	// within ~12% of the exact load-dependent solution on a machine-
	// repairman-like configuration (the approximation is pessimistic at
	// mid-load).
	for _, servers := range []int{2, 4} {
		net := ldNet(8,
			[]queueing.Station{
				{Name: "cpu", Kind: queueing.FCFS, ServiceTime: 10},
				{Name: "mem", Kind: queueing.FCFS, ServiceTime: 10, Servers: servers},
			},
			[]float64{1, 1})
		exact, err := ExactSingleClassLD(net)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := ExactSingleClass(net) // uses the shadow residence
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(approx.Throughput[0]-exact.Throughput[0]) / exact.Throughput[0]
		if rel > 0.12 {
			t.Errorf("m=%d: shadow approximation error %.1f%%", servers, rel*100)
		}
		// The shadow model adds a fixed delay, so it must be pessimistic.
		if approx.Throughput[0] > exact.Throughput[0]+1e-12 {
			t.Errorf("m=%d: shadow approximation optimistic (%v > %v)", servers, approx.Throughput[0], exact.Throughput[0])
		}
	}
}

func TestConvolutionMatchesMVA(t *testing.T) {
	// Buzen's algorithm and exact MVA are independent derivations of the
	// same product-form solution: throughputs must agree to high precision.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		st := make([]queueing.Station, m)
		visits := make([]float64, m)
		for i := range st {
			kind := queueing.FCFS
			if rng.Intn(4) == 0 {
				kind = queueing.Delay
			}
			st[i] = queueing.Station{Name: "s", Kind: kind, ServiceTime: 0.2 + 3*rng.Float64()}
			visits[i] = 0.1 + rng.Float64()
		}
		net := ldNet(1+rng.Intn(8), st, visits)
		mvaRes, err := ExactSingleClass(net)
		if err != nil {
			return false
		}
		x, err := Convolution(net)
		if err != nil {
			return false
		}
		return math.Abs(x-mvaRes.Throughput[0]) < 1e-9*(1+x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConvolutionMultiServerMatchesLD(t *testing.T) {
	// For load-dependent (multi-server) stations, convolution must agree
	// with the exact load-dependent MVA.
	net := ldNet(6,
		[]queueing.Station{
			{Name: "m2", Kind: queueing.FCFS, ServiceTime: 5, Servers: 2},
			{Name: "s1", Kind: queueing.FCFS, ServiceTime: 3},
			{Name: "think", Kind: queueing.Delay, ServiceTime: 10},
		},
		[]float64{1, 1, 1})
	ld, err := ExactSingleClassLD(net)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Convolution(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-ld.Throughput[0]) > 1e-9 {
		t.Errorf("convolution %v != LD MVA %v", x, ld.Throughput[0])
	}
}

func TestConvolutionZeroPopulation(t *testing.T) {
	net := ldNet(0, []queueing.Station{{Name: "s", Kind: queueing.FCFS, ServiceTime: 1}}, []float64{1})
	x, err := Convolution(net)
	if err != nil || x != 0 {
		t.Errorf("x=%v err=%v", x, err)
	}
}

func TestConvolutionRejectsMulticlass(t *testing.T) {
	net := ldNet(1, []queueing.Station{{Name: "s", Kind: queueing.FCFS, ServiceTime: 1}}, []float64{1})
	net.Classes = append(net.Classes, queueing.Class{Name: "d", Population: 1, Visits: []float64{1}})
	if _, err := Convolution(net); err == nil {
		t.Error("want error")
	}
}
