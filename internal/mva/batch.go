package mva

import (
	"fmt"
	"math"
)

// BatchOptions tunes a batch solve. The zero value selects the same defaults
// as the scalar solver: Tolerance DefaultTolerance, MaxIterations
// DefaultMaxIterations. The convergence test is the scalar solver's raw
// residual ‖G(n) − n‖∞ < Tolerance, applied per lane, so every lane lands on
// the identical fixed point the scalar Bard–Schweitzer iteration would reach.
type BatchOptions struct {
	Tolerance     float64
	MaxIterations int
}

// BatchWorkspace iterates the Bard–Schweitzer fixed point (the paper's
// Figure 3, steps 2a–4) of B independent operating points in lockstep. All
// lanes must share one station shape: the same station count and the same
// station→group assignment, where a group is a set of stations whose queue
// lengths are summed to form the customers-seen term (the symmetric MMS
// solver's role totals; singleton groups degenerate to the plain single-class
// iteration).
//
// Layout is struct-of-arrays, station-major and lane-minor: the iterate of
// station i in lane b lives at q[i*B+b], so each inner loop walks B adjacent
// elements with no per-lane indirection — the flat row-major layout the
// scalar Workspace established, widened by one lane axis. Residence times use
// the precomputed two-coefficient form
//
//	w = (s/srv)·seen + s
//
// (algebraically identical to s/srv·(1+seen) + s·(srv−1)/srv), which removes
// both divisions from the hot loop. The lockstep loop itself is a single wide
// pass per sweep: cycle times come from an exact per-lane regrouping of
// Σ e·μ·w into group-total scalars (see Run), and residence times are
// materialized only on the sweep a lane retires.
//
// A station row may stand for several identical physical stations: SetWeight
// gives row i in lane b a physical multiplicity μ, and the group totals
// (Σ μ·q) and cycle times (Σ μ·e·w) weight the row accordingly while the
// per-station update q ← λ·e·w is untouched — identical physical stations
// hold identical queue lengths at every iterate, so one representative row
// carries them all. Callers with symmetric topologies (the MMS model's
// role-homogeneous memories and switches) collapse their station set this
// way and shrink every inner loop by the dedup factor.
//
// Per-lane convergence drives physical lane compaction, not masking: the
// still-iterating lanes are packed into the leading columns, and a lane that
// converges (or fails: invalid population, degenerate zero cycle time)
// retires by swapping its column behind the live window, its q, w and λ left
// exactly as published by the iteration it converged in (accessors map the
// caller's lane index through the permutation). The wide loops therefore run
// dense over contiguous leading columns — branch-free, prefetch-friendly and
// with Σ_b iters(b) total lane-sweeps rather than B·max_b iters(b).
//
// The lockstep loop is accelerated per lane by the same safeguarded vector
// Aitken Δ² (Irons–Tuck) scheme as internal/fixpoint: two plain sweeps
// estimate the dominant contraction factor μ from consecutive residuals and
// the geometric tail is summed in closed form, x* = g + μ/(1−μ)·(g−x).
// Acceleration only moves the point the next sweep is evaluated at — the map
// and the raw-residual stopping test are unchanged, so the fixed point is
// exactly the plain iteration's. A lane whose μ estimate is not a contraction
// or whose extrapolant leaves [0, population] takes the plain step instead.
//
// Seeding implements shared warm-start continuation. On a cold batch, the
// first healthy lane is pilot-solved alone (a strided scalar loop — the wide
// loops never run with a single live lane) and its converged solution seeds
// every other lane. Across Run calls the workspace keeps the last converged
// lane's solution and, when the next batch has the same station count, seeds
// all of its lanes from it — the batched analogue of the scalar WarmStart
// contract.
//
// The zero value is ready to use. A BatchWorkspace may be used by one
// goroutine at a time; Run performs no allocations in steady state (error
// construction on failed lanes aside).
type BatchWorkspace struct {
	lanes    int
	stations int
	groups   int

	group          []int // station → group, shared by every lane
	e, s, srv, pop []float64
	mult           []float64 // physical stations represented, per (station, lane)

	a          []float64 // s/srv per (station, lane), derived in Run
	em         []float64 // e·mult per (station, lane), derived in Run
	es, ea     []float64 // e·s and e·a per (station, lane), derived in Run
	q, w       []float64
	xPrev      []float64 // Aitken: iterate two sweeps back (leg 1 snapshot)
	gq         []float64 // Aitken: leg-2 sweep output G(x), kept apart from x
	groupTot   []float64 // ping-pong group totals Σ μ·q, tot(x) and tot(x')
	groupTot2  []float64
	gema       []float64 // Σ_{i∈G} e·μ·a per (group, lane), derived in Run
	sAcc       []float64 // per-lane moment S = Σ e·μ·a·q of the current iterate
	ems        []float64 // per-lane constant Σ e·μ·s, derived in Run
	lambda     []float64
	invPop     []float64
	maxDelta   []float64
	r1r1, r1r2 []float64 // per-lane Aitken residual projections
	lane       []int     // packed slot → original lane
	slot       []int     // original lane → packed slot
	iters      []int
	errs       []error

	// Cross-batch continuation state: warmQ holds the q column of the last
	// converged lane of the previous Run iff warmOK and the station count
	// still matches.
	warmOK bool
	warmN  int
	warmQ  []float64
}

// Reset sizes the workspace for a batch of `lanes` operating points over
// `stations` stations in `groups` queue-length groups, and clears per-lane
// results. The caller must then fill every station's group (SetGroup), every
// (station, lane) parameter triple (Set) and every lane population
// (SetPopulation) before Run: buffer contents are otherwise unspecified.
// Station weights reset to 1; SetWeight overrides them per (station, lane).
func (ws *BatchWorkspace) Reset(lanes, stations, groups int) {
	ws.lanes, ws.stations, ws.groups = lanes, stations, groups
	n := lanes * stations
	ws.e = resizeF(ws.e, n)
	ws.s = resizeF(ws.s, n)
	ws.srv = resizeF(ws.srv, n)
	ws.mult = resizeF(ws.mult, n)
	ws.a = resizeF(ws.a, n)
	ws.em = resizeF(ws.em, n)
	ws.q = resizeF(ws.q, n)
	ws.w = resizeF(ws.w, n)
	ws.xPrev = resizeF(ws.xPrev, n)
	ws.gq = resizeF(ws.gq, n)
	ws.es = resizeF(ws.es, n)
	ws.ea = resizeF(ws.ea, n)
	ws.group = resizeInt(ws.group, stations)
	ws.pop = resizeF(ws.pop, lanes)
	ws.groupTot = resizeF(ws.groupTot, groups*lanes)
	ws.groupTot2 = resizeF(ws.groupTot2, groups*lanes)
	ws.gema = resizeF(ws.gema, groups*lanes)
	ws.sAcc = resizeF(ws.sAcc, lanes)
	ws.ems = resizeF(ws.ems, lanes)
	ws.lambda = resizeF(ws.lambda, lanes)
	ws.invPop = resizeF(ws.invPop, lanes)
	ws.maxDelta = resizeF(ws.maxDelta, lanes)
	ws.r1r1 = resizeF(ws.r1r1, lanes)
	ws.r1r2 = resizeF(ws.r1r2, lanes)
	ws.lane = resizeInt(ws.lane, lanes)
	ws.slot = resizeInt(ws.slot, lanes)
	ws.iters = resizeInt(ws.iters, lanes)
	for b := 0; b < lanes; b++ {
		ws.lane[b], ws.slot[b] = b, b
	}
	for i := range ws.mult {
		ws.mult[i] = 1
	}
	if cap(ws.errs) < lanes {
		ws.errs = make([]error, lanes)
	}
	ws.errs = ws.errs[:lanes]
	for b := range ws.errs {
		ws.errs[b] = nil
	}
}

// SetGroup assigns station i to queue-length group g (0 <= g < groups). The
// assignment is shared by every lane.
func (ws *BatchWorkspace) SetGroup(i, g int) { ws.group[i] = g }

// Set fills the parameters of station i in lane b: visit ratio, mean service
// time and parallel-server count. All values must be finite, visit and
// service non-negative, servers >= 1.
func (ws *BatchWorkspace) Set(i, b int, visit, service, servers float64) {
	at := i*ws.lanes + b
	ws.e[at] = visit
	ws.s[at] = service
	ws.srv[at] = servers
}

// SetWeight declares station i in lane b to represent `weight` identical
// physical stations (>= 1; Reset defaults every weight to 1). The row's
// queue length counts `weight` times into its group total and its demand
// `weight` times into the cycle time, exactly as `weight` symmetric copies
// of the station would.
func (ws *BatchWorkspace) SetWeight(i, b int, weight float64) {
	ws.mult[i*ws.lanes+b] = weight
}

// SetPopulation fills lane b's closed population (> 0 and finite, or the lane
// fails with an error).
func (ws *BatchWorkspace) SetPopulation(b int, pop float64) { ws.pop[b] = pop }

// Lanes returns the lane count of the last Reset.
func (ws *BatchWorkspace) Lanes() int { return ws.lanes }

// Lambda returns lane b's converged throughput. Defined only when Err(b) is
// nil.
func (ws *BatchWorkspace) Lambda(b int) float64 { return ws.lambda[ws.slot[b]] }

// Residence returns the converged residence time of station i in lane b
// (the scalar solver's w vector). Defined only when Err(b) is nil.
func (ws *BatchWorkspace) Residence(i, b int) float64 { return ws.w[i*ws.lanes+ws.slot[b]] }

// Visit returns the visit ratio of station i in lane b as loaded by Set.
func (ws *BatchWorkspace) Visit(i, b int) float64 { return ws.e[i*ws.lanes+ws.slot[b]] }

// Weight returns the physical multiplicity of station i in lane b.
func (ws *BatchWorkspace) Weight(i, b int) float64 { return ws.mult[i*ws.lanes+ws.slot[b]] }

// Iterations returns the number of fixed-point iterations lane b consumed
// (pilot iterations included for the pilot lane).
func (ws *BatchWorkspace) Iterations(b int) int { return ws.iters[b] }

// Err returns lane b's failure, or nil when the lane converged.
func (ws *BatchWorkspace) Err(b int) error { return ws.errs[b] }

// Run iterates every lane to convergence (or failure). Results are read off
// the accessors; lane failures are positional and independent — one bad lane
// never poisons its neighbors.
func (ws *BatchWorkspace) Run(opts BatchOptions) {
	B, n := ws.lanes, ws.stations
	if B == 0 {
		return
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = DefaultTolerance
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}

	// Derived coefficients and per-lane admission. The residence coefficient
	// a = s/srv and the cycle weight e·μ are hoisted out of the fixed-point
	// loop entirely, as are the regrouped-cycle constants: per lane the
	// cycle time Σ e·μ·w expands exactly to
	//
	//	Σ_G GEMA_G·tot_G − S/pop + EMS
	//
	// with GEMA_G = Σ_{i∈G} e·μ·a, EMS = Σ e·μ·s and S = Σ e·μ·a·q, so the
	// lockstep loop never sweeps stations to form cycle times at all.
	for i, sv := range ws.s {
		av := sv / ws.srv[i]
		ws.a[i] = av
		ws.em[i] = ws.e[i] * ws.mult[i]
		ws.es[i] = ws.e[i] * sv
		ws.ea[i] = ws.e[i] * av
	}
	for b := 0; b < B; b++ {
		ws.ems[b] = 0
	}
	for g := 0; g < ws.groups*B; g++ {
		ws.gema[g] = 0
	}
	for i := 0; i < n; i++ {
		base := i * B
		g := ws.group[i] * B
		for b := 0; b < B; b++ {
			ws.ems[b] += ws.em[base+b] * ws.s[base+b]
			ws.gema[g+b] += ws.em[base+b] * ws.a[base+b]
		}
	}
	for b := 0; b < B; b++ {
		ws.lane[b], ws.slot[b] = b, b
		ws.iters[b] = 0
		ws.lambda[b] = 0
		p := ws.pop[b]
		if !(p > 0) || math.IsInf(p, 0) {
			ws.errs[b] = fmt.Errorf("mva: batch lane %d: population = %v, want finite > 0", b, p)
			ws.invPop[b] = 0
			continue
		}
		ws.errs[b] = nil
		ws.invPop[b] = 1 / p
	}
	// Residence times are (re)computed from scratch; stale contents of a
	// reused buffer must not leak into lanes that converge on their first
	// sweep.
	for i := range ws.w {
		ws.w[i] = 0
	}

	warm := ws.warmOK && ws.warmN == n
	// The iterate is in flux until this batch completes; a failed Run must
	// not seed the next one.
	ws.warmOK = false
	pilot := -1
	if warm {
		// Continuation across batches: every lane starts from the previous
		// batch\'s last converged solution.
		for i := 0; i < n; i++ {
			v := ws.warmQ[i]
			row := ws.q[i*B : (i+1)*B]
			for b := range row {
				row[b] = v
			}
		}
	} else {
		// Cold entry: pilot-solve the first healthy lane alone, then cascade
		// its converged solution into every other lane as the seed. Should
		// the pilot itself fail, the next healthy lane takes over.
		for p := 0; p < B; p++ {
			if ws.errs[p] != nil {
				continue
			}
			ws.seedUniform(p)
			ws.pilotSolve(p, tol, maxIter)
			if ws.errs[p] == nil {
				pilot = p
				break
			}
		}
		if pilot < 0 {
			return // every lane is already resolved (all failed)
		}
		for i := 0; i < n; i++ {
			row := ws.q[i*B : (i+1)*B]
			v := row[pilot]
			for b := range row {
				row[b] = v
			}
		}
	}
	// A lane\'s unvisited stations must read as zero regardless of the seed
	// (their update is identically zero; zeroing keeps the first residence
	// times sane, matching the scalar warm-start path).
	for i := 0; i < n; i++ {
		row := ws.q[i*B : (i+1)*B]
		ev := ws.e[i*B : (i+1)*B]
		for b := range row {
			if ev[b] == 0 {
				row[b] = 0
			}
		}
	}

	// Pack the lanes that still need iterating into the leading columns: the
	// pilot (if any) is already converged and admission-failed lanes are
	// resolved, so both retire to the tail before the wide loops start.
	live := B
	for c := 0; c < live; {
		if b := ws.lane[c]; ws.errs[b] != nil || b == pilot {
			live = ws.retire(c, live)
			continue
		}
		c++
	}

	ws.iterate(tol, maxIter, live)

	// Save the last converged lane as the next batch\'s continuation seed.
	for b := B - 1; b >= 0; b-- {
		if ws.errs[b] != nil {
			continue
		}
		ws.warmQ = resizeF(ws.warmQ, n)
		sl := ws.slot[b]
		for i := 0; i < n; i++ {
			ws.warmQ[i] = ws.q[i*B+sl]
		}
		ws.warmOK, ws.warmN = true, n
		break
	}
}

// retire removes the lane in packed column c from the live window [0, live)
// by swapping columns c and live-1 across every per-lane buffer (group totals
// included — they persist between iterations now that their accumulation is
// fused into the update passes) and updating the lane↔slot permutation; it returns the shrunk live count. Retired
// columns sit untouched behind the window with the lane\'s published q, w and
// λ, read back through the permutation by the accessors. iters and errs stay
// indexed by the caller\'s lane numbers and never move.
func (ws *BatchWorkspace) retire(c, live int) int {
	d := live - 1
	if c != d {
		B := ws.lanes
		q, w, xp, gq := ws.q, ws.w, ws.xPrev, ws.gq
		e, s, av, em, mu := ws.e, ws.s, ws.a, ws.em, ws.mult
		es, ea := ws.es, ws.ea
		for base := 0; base < len(q); base += B {
			i, j := base+c, base+d
			q[i], q[j] = q[j], q[i]
			w[i], w[j] = w[j], w[i]
			xp[i], xp[j] = xp[j], xp[i]
			gq[i], gq[j] = gq[j], gq[i]
			e[i], e[j] = e[j], e[i]
			s[i], s[j] = s[j], s[i]
			av[i], av[j] = av[j], av[i]
			em[i], em[j] = em[j], em[i]
			mu[i], mu[j] = mu[j], mu[i]
			es[i], es[j] = es[j], es[i]
			ea[i], ea[j] = ea[j], ea[i]
		}
		// srv is consumed deriving a in Run's prologue and never read again,
		// so it alone stays put; Reset requires a full refill anyway.
		gt, gt2, gm := ws.groupTot, ws.groupTot2, ws.gema
		for base := 0; base < len(gt); base += B {
			i, j := base+c, base+d
			gt[i], gt[j] = gt[j], gt[i]
			gt2[i], gt2[j] = gt2[j], gt2[i]
			gm[i], gm[j] = gm[j], gm[i]
		}
		ws.pop[c], ws.pop[d] = ws.pop[d], ws.pop[c]
		ws.invPop[c], ws.invPop[d] = ws.invPop[d], ws.invPop[c]
		ws.lambda[c], ws.lambda[d] = ws.lambda[d], ws.lambda[c]
		ws.sAcc[c], ws.sAcc[d] = ws.sAcc[d], ws.sAcc[c]
		ws.ems[c], ws.ems[d] = ws.ems[d], ws.ems[c]
		ws.maxDelta[c], ws.maxDelta[d] = ws.maxDelta[d], ws.maxDelta[c]
		ws.r1r1[c], ws.r1r1[d] = ws.r1r1[d], ws.r1r1[c]
		ws.r1r2[c], ws.r1r2[d] = ws.r1r2[d], ws.r1r2[c]
		lc, ld := ws.lane[c], ws.lane[d]
		ws.lane[c], ws.lane[d] = ld, lc
		ws.slot[lc], ws.slot[ld] = d, c
	}
	return d
}

// seedUniform spreads lane b\'s population uniformly over its visited
// physical stations (the scalar solvers\' cold initial guess, weights
// counted).
func (ws *BatchWorkspace) seedUniform(b int) {
	B, n := ws.lanes, ws.stations
	visited := 0.0
	for i := 0; i < n; i++ {
		if ws.e[i*B+b] > 0 {
			visited += ws.mult[i*B+b]
		}
	}
	var each float64
	if visited > 0 {
		each = ws.pop[b] / visited
	}
	for i := 0; i < n; i++ {
		if ws.e[i*B+b] > 0 {
			ws.q[i*B+b] = each
		} else {
			ws.q[i*B+b] = 0
		}
	}
}

// pilotSolve iterates a single lane to convergence with strided scalar
// loops. Running the B-wide lockstep loops with one live lane would cost
// B× the work of the lane actually iterating, so the cold pilot gets its own
// narrow path; the main loop then starts with every remaining lane seeded.
func (ws *BatchWorkspace) pilotSolve(b int, tol float64, maxIter int) {
	B, n := ws.lanes, ws.stations
	pop := ws.pop[b]
	inv := ws.invPop[b]
	lastDelta := math.Inf(1)
	for iter := 1; iter <= maxIter; iter++ {
		for g := 0; g < ws.groups; g++ {
			ws.groupTot[g*B+b] = 0
		}
		for i := 0; i < n; i++ {
			at := i*B + b
			ws.groupTot[ws.group[i]*B+b] += ws.mult[at] * ws.q[at]
		}
		var cycle float64
		for i := 0; i < n; i++ {
			at := i*B + b
			seen := ws.groupTot[ws.group[i]*B+b] - ws.q[at]*inv
			wv := ws.a[at]*seen + ws.s[at]
			ws.w[at] = wv
			cycle += ws.em[at] * wv
		}
		if !(cycle > 0) || math.IsInf(cycle, 0) {
			ws.errs[b] = fmt.Errorf("mva: batch lane %d: degenerate zero total demand", b)
			ws.lambda[b] = 0
			return
		}
		lambda := pop / cycle
		ws.lambda[b] = lambda
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			at := i*B + b
			nNew := lambda * ws.e[at] * ws.w[at]
			if d := math.Abs(nNew - ws.q[at]); d > maxDelta {
				maxDelta = d
			}
			ws.q[at] = nNew
		}
		ws.iters[b]++
		lastDelta = maxDelta
		if maxDelta < tol {
			return
		}
	}
	ws.errs[b] = &NonConvergenceError{Iterations: ws.iters[b], MaxDelta: lastDelta, Tolerance: tol}
}

// iterate runs the lockstep fixed-point loop over the packed live columns
// [0, live). Each iteration is ONE wide pass over the stations plus O(groups)
// scalar work per lane: the cycle time comes from the regrouped form
// Σ_G GEMA_G·tot_G − S/pop + EMS (see Run), and the update pass publishes the
// next iterate while accumulating its group totals and S moment in the same
// sweep — the group totals ping-pong between two buffers so the totals of the
// point being consumed stay intact. Residence times are materialized per lane
// only when it retires, from the totals its converging sweep consumed, which
// reproduces exactly the w vector the two-pass form would have published.
//
// Sweeps alternate Aitken legs. Leg 1 takes the plain step in place,
// snapshotting the pre-sweep iterate into xPrev. Leg 2 writes the sweep
// output into gq so x survives, projects the two consecutive residuals per
// lane, then commits the safeguarded Irons–Tuck extrapolant optimistically in
// one pass — lanes whose extrapolant leaves [0, population] (a NaN factor
// included) are repaired column-wise to the plain step afterwards. A lane
// that converges (raw residual below tol) or fails retires its column behind
// the live window (see retire).
func (ws *BatchWorkspace) iterate(tol float64, maxIter int, live int) {
	B, n := ws.lanes, ws.stations
	md := ws.maxDelta
	inv := ws.invPop
	lam := ws.lambda
	pop := ws.pop
	r11 := ws.r1r1
	r12 := ws.r1r2
	sa := ws.sAcc
	totA, totB := ws.groupTot, ws.groupTot2

	// Group totals and S moment of the seed; every later pass folds the
	// accumulation of the point it publishes into the same sweep.
	for b := range sa[:live] {
		sa[b] = 0
	}
	for g := 0; g < ws.groups; g++ {
		tot := totA[g*B : g*B+live]
		for b := range tot {
			tot[b] = 0
		}
	}
	for i := 0; i < n; i++ {
		base := i * B
		g := ws.group[i] * B
		tot := totA[g : g+live]
		row := ws.q[base : base+live]
		mi := ws.mult[base : base+live]
		eai := ws.ea[base : base+live]
		for b := range row {
			tn := mi[b] * row[b]
			tot[b] += tn
			sa[b] += eai[b] * tn
		}
	}
	for iter := 0; iter < maxIter && live > 0; iter++ {
		// Steps 2b–3 collapsed to per-lane scalars: cycle time from the
		// regrouped form, with the scalar solver\'s degeneracy guard applied
		// per lane — a failing lane retires before the update, so no NaN
		// ever enters a live column.
		for c := 0; c < live; {
			cycle := ws.ems[c] - sa[c]*inv[c]
			for g := 0; g < ws.groups; g++ {
				cycle += ws.gema[g*B+c] * totA[g*B+c]
			}
			if !(cycle > 0) || math.IsInf(cycle, 0) {
				b := ws.lane[c]
				ws.errs[b] = fmt.Errorf("mva: batch lane %d: degenerate zero total demand", b)
				lam[c] = 0
				live = ws.retire(c, live)
				continue
			}
			lam[c] = pop[c] / cycle
			md[c] = 0
			c++
		}
		if live == 0 {
			break
		}
		if iter%2 == 0 {
			// Step 4, Aitken leg 1: plain step in place, remembering where
			// it started; group totals and S of the published point ride
			// the same sweep into the spare buffer.
			for g := 0; g < ws.groups; g++ {
				tot := totB[g*B : g*B+live]
				for b := range tot {
					tot[b] = 0
				}
			}
			for b := range sa[:live] {
				sa[b] = 0
			}
			for i := 0; i < n; i++ {
				base := i * B
				g := ws.group[i] * B
				told := totA[g : g+live]
				tnew := totB[g : g+live]
				row := ws.q[base : base+live]
				mi := ws.mult[base : base+live]
				esi := ws.es[base : base+live]
				eai := ws.ea[base : base+live]
				xp := ws.xPrev[base : base+live]
				for b := range row {
					x := row[b]
					u := told[b] - x*inv[b]
					qn := lam[b] * (esi[b] + eai[b]*u)
					if d := math.Abs(qn - x); d > md[b] {
						md[b] = d
					}
					xp[b] = x
					row[b] = qn
					tn := mi[b] * qn
					tnew[b] += tn
					sa[b] += eai[b] * tn
				}
			}
			// Converged lanes materialize w from the totals their sweep
			// consumed and retire; a column swapped in from the window end
			// is rescanned at the same slot.
			for c := 0; c < live; {
				ws.iters[ws.lane[c]]++
				if md[c] < tol {
					ws.materializeW(c, totA, ws.xPrev)
					live = ws.retire(c, live)
					continue
				}
				c++
			}
			totA, totB = totB, totA
			continue
		}
		// Step 4, Aitken leg 2: x = G(xPrev) is current, so evaluating
		// g = G(x) into gq gives consecutive plain residuals r1 = x − xPrev
		// and r2 = g − x; project per lane to estimate the contraction
		// factor μ.
		for b := range r11[:live] {
			r11[b] = 0
			r12[b] = 0
		}
		for i := 0; i < n; i++ {
			base := i * B
			g := ws.group[i] * B
			told := totA[g : g+live]
			row := ws.q[base : base+live]
			esi := ws.es[base : base+live]
			eai := ws.ea[base : base+live]
			xp := ws.xPrev[base : base+live]
			gi := ws.gq[base : base+live]
			for b := range row {
				x := row[b]
				u := told[b] - x*inv[b]
				qn := lam[b] * (esi[b] + eai[b]*u)
				r2 := qn - x
				if d := math.Abs(r2); d > md[b] {
					md[b] = d
				}
				r1 := x - xp[b]
				r11[b] += r1 * r1
				r12[b] += r1 * r2
				gi[b] = qn
			}
		}
		// Converged lanes materialize w(x), publish g and retire; survivors
		// pick their factor fac = μ/(1−μ), with NaN marking "take the plain
		// step" (r1r1 is reused as the factor and r1r2, re-zeroed here, as
		// the feasibility flag below).
		for c := 0; c < live; {
			ws.iters[ws.lane[c]]++
			if md[c] < tol {
				ws.materializeW(c, totA, ws.q)
				for i := 0; i < n; i++ {
					ws.q[i*B+c] = ws.gq[i*B+c]
				}
				live = ws.retire(c, live)
				continue
			}
			fac := math.NaN()
			if rr := r11[c]; rr > 0 {
				if mu := r12[c] / rr; mu > -1 && mu < 1 {
					fac = mu / (1 - mu)
				}
			}
			r11[c] = fac
			r12[c] = 0
			c++
		}
		// Commit x* = g + fac·(g−x) optimistically in one pass, accumulating
		// the published group totals and S and flagging lanes whose
		// extrapolant leaves [0, population] — a NaN fac fails the bound
		// check too, folding the plain-step fallback into the same flag.
		for g := 0; g < ws.groups; g++ {
			tot := totB[g*B : g*B+live]
			for b := range tot {
				tot[b] = 0
			}
		}
		for b := range sa[:live] {
			sa[b] = 0
		}
		for i := 0; i < n; i++ {
			base := i * B
			g := ws.group[i] * B
			tnew := totB[g : g+live]
			row := ws.q[base : base+live]
			gi := ws.gq[base : base+live]
			mi := ws.mult[base : base+live]
			eai := ws.ea[base : base+live]
			for b := range row {
				g0 := gi[b]
				cand := g0 + r11[b]*(g0-row[b])
				if !(cand >= 0 && cand <= pop[b]) {
					r12[b] = 1
				}
				row[b] = cand
				tn := mi[b] * cand
				tnew[b] += tn
				sa[b] += eai[b] * tn
			}
		}
		// Repair flagged lanes column-wise: republish the plain step g and
		// rebuild the lane\'s totals and S from scratch (a NaN candidate has
		// poisoned them, so incremental patching won\'t do). The safeguard
		// trips on few lanes past the first sweeps, so the strided repair is
		// far cheaper than a separate candidate pass.
		for c := 0; c < live; c++ {
			if r12[c] == 0 {
				continue
			}
			sa[c] = 0
			for g := 0; g < ws.groups; g++ {
				totB[g*B+c] = 0
			}
			for i := 0; i < n; i++ {
				at := i*B + c
				v := ws.gq[at]
				ws.q[at] = v
				tn := ws.mult[at] * v
				totB[ws.group[i]*B+c] += tn
				sa[c] += ws.ea[at] * tn
			}
		}
		totA, totB = totB, totA
	}
	for c := 0; c < live; c++ {
		b := ws.lane[c]
		ws.errs[b] = &NonConvergenceError{Iterations: ws.iters[b], MaxDelta: md[c], Tolerance: tol}
	}
}

// materializeW publishes the residence times of the lane in packed column c:
// w = a·seen + s evaluated at the iterate x its converging sweep consumed,
// with tot the group totals of that same point — exactly the w vector the
// explicit residence sweep would have stored.
func (ws *BatchWorkspace) materializeW(c int, tot, x []float64) {
	B := ws.lanes
	ic := ws.invPop[c]
	for i := 0; i < ws.stations; i++ {
		at := i*B + c
		seen := tot[ws.group[i]*B+c] - x[at]*ic
		ws.w[at] = ws.a[at]*seen + ws.s[at]
	}
}
