package mva

import (
	"errors"
	"math"
	"testing"

	"lattol/internal/queueing"
	"lattol/internal/validate"
)

// relDiff is |a-b| / max(|a|,|b|,1).
func relDiff(a, b float64) float64 {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / scale
}

// compareResults asserts two solves agree on every measure within relTol.
func compareResults(t *testing.T, label string, got, want *Result, relTol float64) {
	t.Helper()
	for c := range want.Throughput {
		if d := relDiff(got.Throughput[c], want.Throughput[c]); d > relTol {
			t.Errorf("%s: Throughput[%d] = %.17g, want %.17g (rel %.3g)", label, c, got.Throughput[c], want.Throughput[c], d)
		}
		if d := relDiff(got.CycleTime[c], want.CycleTime[c]); d > relTol {
			t.Errorf("%s: CycleTime[%d] = %.17g, want %.17g (rel %.3g)", label, c, got.CycleTime[c], want.CycleTime[c], d)
		}
		for m := range want.Wait[c] {
			if d := relDiff(got.Wait[c][m], want.Wait[c][m]); d > relTol {
				t.Errorf("%s: Wait[%d][%d] = %.17g, want %.17g (rel %.3g)", label, c, m, got.Wait[c][m], want.Wait[c][m], d)
			}
			if d := relDiff(got.QueueLen[c][m], want.QueueLen[c][m]); d > relTol {
				t.Errorf("%s: QueueLen[%d][%d] = %.17g, want %.17g (rel %.3g)", label, c, m, got.QueueLen[c][m], want.QueueLen[c][m], d)
			}
		}
	}
}

// copyResult snapshots a workspace-aliased result.
func copyResult(r *Result) *Result {
	out := newResult(len(r.Throughput), len(r.Wait[0]))
	copy(out.Throughput, r.Throughput)
	copy(out.CycleTime, r.CycleTime)
	for c := range r.Wait {
		copy(out.Wait[c], r.Wait[c])
		copy(out.QueueLen[c], r.QueueLen[c])
	}
	out.Iterations = r.Iterations
	out.Method = r.Method
	return out
}

// accelTestNets enumerates networks spanning the structural cases: multiple
// classes, delay and multi-server stations, zero-population and
// zero-visit-everywhere-but-one classes.
func accelTestNets() map[string]*queueing.Network {
	multi := &queueing.Network{
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.FCFS, ServiceTime: 1},
			{Name: "think", Kind: queueing.Delay, ServiceTime: 5},
			{Name: "disk", Kind: queueing.FCFS, ServiceTime: 2, Servers: 2},
			{Name: "net", Kind: queueing.FCFS, ServiceTime: 0.5},
		},
		Classes: []queueing.Class{
			{Name: "a", Population: 6, Visits: []float64{1, 0.5, 0.4, 0.2}},
			{Name: "b", Population: 3, Visits: []float64{1, 0, 0.1, 1.5}},
			{Name: "idle", Population: 0, Visits: []float64{1, 0, 0, 0}},
		},
	}
	congested := &queueing.Network{
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.FCFS, ServiceTime: 1},
			{Name: "disk", Kind: queueing.FCFS, ServiceTime: 9},
		},
		Classes: []queueing.Class{
			{Name: "a", Population: 20, Visits: []float64{1, 1}},
			{Name: "b", Population: 10, Visits: []float64{1, 0.8}},
		},
	}
	return map[string]*queueing.Network{
		"twoClass":  twoClassNet(),
		"mixed":     multi,
		"congested": congested,
	}
}

// TestAccelMatchesPlain: aitken and anderson converge to the plain
// Bard–Schweitzer fixed point within 1e-9 on every test network. Both sides
// solve at 1e-12 so the comparison tolerance is not eaten by the
// convergence-to-fixed-point gap.
func TestAccelMatchesPlain(t *testing.T) {
	for name, net := range accelTestNets() {
		plain, err := ApproxMultiClass(net, AMVAOptions{Tolerance: 1e-12})
		if err != nil {
			t.Fatalf("%s: plain: %v", name, err)
		}
		for _, accel := range []Accel{AccelAitken, AccelAnderson} {
			res, err := ApproxMultiClass(net, AMVAOptions{Tolerance: 1e-12, Accel: accel})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, accel, err)
			}
			compareResults(t, name+"/"+accel.String(), res, plain, 1e-9)
			if res.Iterations <= 0 {
				t.Errorf("%s/%s: Iterations = %d, want > 0", name, accel, res.Iterations)
			}
		}
	}
}

// TestAccelFewerIterations: on the congested network (slow plain
// convergence) both schemes need strictly fewer sweeps.
func TestAccelFewerIterations(t *testing.T) {
	net := accelTestNets()["congested"]
	plain, err := ApproxMultiClass(net, AMVAOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for _, accel := range []Accel{AccelAitken, AccelAnderson} {
		res, err := ApproxMultiClass(net, AMVAOptions{Tolerance: 1e-10, Accel: accel})
		if err != nil {
			t.Fatalf("%s: %v", accel, err)
		}
		if res.Iterations >= plain.Iterations {
			t.Errorf("%s: %d iterations, plain needs %d — no speedup", accel, res.Iterations, plain.Iterations)
		}
	}
}

// TestWarmStartMatchesCold: a warm-started re-solve of a perturbed network
// converges to the same fixed point (within 1e-9) in fewer iterations, under
// every acceleration mode.
func TestWarmStartMatchesCold(t *testing.T) {
	base := twoClassNet()
	perturbed := &queueing.Network{
		Stations: append([]queueing.Station(nil), base.Stations...),
		Classes: []queueing.Class{
			{Name: "a", Population: 3, Visits: []float64{1, 0.55, 0.2}},
			{Name: "b", Population: 2, Visits: []float64{1, 0.1, 1.4}},
		},
	}
	for _, accel := range []Accel{AccelNone, AccelAitken, AccelAnderson} {
		opts := AMVAOptions{Tolerance: 1e-12, Accel: accel}
		cold, err := ApproxMultiClass(perturbed, opts)
		if err != nil {
			t.Fatalf("%s: cold: %v", accel, err)
		}

		var ws Workspace
		if _, err := ws.ApproxMultiClass(base, opts); err != nil {
			t.Fatalf("%s: seed solve: %v", accel, err)
		}
		warmOpts := opts
		warmOpts.WarmStart = true
		warm, err := ws.ApproxMultiClass(perturbed, warmOpts)
		if err != nil {
			t.Fatalf("%s: warm: %v", accel, err)
		}
		compareResults(t, accel.String()+"/warm-vs-cold", warm, cold, 1e-9)
		if warm.Iterations >= cold.Iterations {
			t.Errorf("%s: warm start took %d iterations, cold %d — no continuation win",
				accel, warm.Iterations, cold.Iterations)
		}
	}
}

// TestWarmStartShapeMismatchFallsBack: warm-starting after a solve of a
// different shape silently falls back to the cold uniform seed and produces
// the bit-identical cold trajectory.
func TestWarmStartShapeMismatchFallsBack(t *testing.T) {
	single := &queueing.Network{
		Stations: []queueing.Station{{Name: "cpu", Kind: queueing.FCFS, ServiceTime: 1}},
		Classes:  []queueing.Class{{Name: "a", Population: 2, Visits: []float64{1}}},
	}
	net := twoClassNet()
	opts := AMVAOptions{WarmStart: true}

	cold, err := ApproxMultiClass(net, opts)
	if err != nil {
		t.Fatal(err)
	}

	var ws Workspace
	if _, err := ws.ApproxMultiClass(single, AMVAOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := ws.ApproxMultiClass(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != cold.Iterations {
		t.Errorf("mismatched warm start took %d iterations, cold takes %d — fallback is not bit-identical",
			got.Iterations, cold.Iterations)
	}
	compareResults(t, "mismatch-fallback", got, cold, 0)
}

// TestWarmStartInvalidatedByExact: an exact solve scrambles the workspace
// iterate, so the next warm-started approximate solve must fall back to the
// cold seed (bit-identical to a fresh workspace).
func TestWarmStartInvalidatedByExact(t *testing.T) {
	net := twoClassNet()
	cold, err := ApproxMultiClass(net, AMVAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	if _, err := ws.ApproxMultiClass(net, AMVAOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.ExactMultiClass(net, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ws.ApproxMultiClass(net, AMVAOptions{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != cold.Iterations {
		t.Errorf("warm solve after exact took %d iterations, cold takes %d — exact did not invalidate the seed",
			got.Iterations, cold.Iterations)
	}
}

// TestAMVAOptionsValidate covers the new knobs and the negative-Tolerance
// bugfix: a negative tolerance used to be silently replaced by the default.
func TestAMVAOptionsValidate(t *testing.T) {
	cases := []struct {
		name  string
		opts  AMVAOptions
		field string // empty = valid
	}{
		{"zero value", AMVAOptions{}, ""},
		{"negative tolerance", AMVAOptions{Tolerance: -1e-9}, "Tolerance"},
		{"NaN tolerance", AMVAOptions{Tolerance: math.NaN()}, "Tolerance"},
		{"unknown accel", AMVAOptions{Accel: Accel(42)}, "Accel"},
		{"negative depth", AMVAOptions{AndersonDepth: -1}, "AndersonDepth"},
		{"valid accel", AMVAOptions{Accel: AccelAnderson, AndersonDepth: 5}, ""},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.field == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		var fe *validate.FieldError
		if !errors.As(err, &fe) || fe.Field != tc.field {
			t.Errorf("%s: Validate() = %v, want FieldError on %s", tc.name, err, tc.field)
		}
	}
	// The solver itself must reject, not sanitize.
	if _, err := ApproxMultiClass(twoClassNet(), AMVAOptions{Tolerance: -1}); validate.Field(err) != "Tolerance" {
		t.Errorf("ApproxMultiClass(Tolerance=-1) err = %v, want FieldError on Tolerance", err)
	}
}

func TestParseAccel(t *testing.T) {
	for name, want := range map[string]Accel{"": AccelNone, "none": AccelNone, "aitken": AccelAitken, "anderson": AccelAnderson} {
		got, err := ParseAccel(name)
		if err != nil || got != want {
			t.Errorf("ParseAccel(%q) = %v, %v; want %v, nil", name, got, err, want)
		}
	}
	if _, err := ParseAccel("broyden"); validate.Field(err) != "Accel" {
		t.Errorf("ParseAccel(broyden) err = %v, want FieldError on Accel", err)
	}
}

// TestExactWorkspaceMatchesFreeFunction: the workspace DP rewrite must be
// bit-identical to a fresh solve, and reusing the workspace across differing
// networks must not leak state.
func TestExactWorkspaceMatchesFreeFunction(t *testing.T) {
	nets := accelTestNets()
	var ws Workspace
	// Solve each network twice through one workspace, interleaved, so stale
	// lattice contents from a bigger network would corrupt a smaller one if
	// resizing were wrong.
	order := []string{"twoClass", "mixed", "twoClass", "congested", "mixed"}
	for _, name := range order {
		net := nets[name]
		if name == "congested" {
			// 21×11 = 231 states is fine; keep as is.
			_ = net
		}
		want, err := ExactMultiClass(net, 0)
		if err != nil {
			t.Fatalf("%s: fresh: %v", name, err)
		}
		got, err := ws.ExactMultiClass(net, 0)
		if err != nil {
			t.Fatalf("%s: workspace: %v", name, err)
		}
		compareResults(t, name+"/exact-ws", got, want, 0)
		if got.Method != MethodExact {
			t.Errorf("%s: Method = %q, want %q", name, got.Method, MethodExact)
		}
	}
}

// TestExactWorkspaceAllocFree: a warmed workspace solves with zero
// allocations.
func TestExactWorkspaceAllocFree(t *testing.T) {
	net := twoClassNet()
	var ws Workspace
	if _, err := ws.ExactMultiClass(net, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ws.ExactMultiClass(net, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed exact solve allocates %.1f times per run, want 0", allocs)
	}
}

// TestApproxWorkspaceAllocFreeWithAccel: the accelerated paths stay
// allocation-free on a warmed workspace too.
func TestApproxWorkspaceAllocFreeWithAccel(t *testing.T) {
	net := twoClassNet()
	for _, accel := range []Accel{AccelNone, AccelAitken, AccelAnderson} {
		var ws Workspace
		opts := AMVAOptions{Accel: accel, WarmStart: true}
		if _, err := ws.ApproxMultiClass(net, opts); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := ws.ApproxMultiClass(net, opts); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warmed approx solve allocates %.1f times per run, want 0", accel, allocs)
		}
	}
}
