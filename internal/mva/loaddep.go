package mva

import (
	"fmt"

	"lattol/internal/queueing"
)

// ExactSingleClassLD solves a single-class closed network *exactly* for
// load-dependent stations using Reiser's marginal-probability MVA recursion.
// Station service rates depend on the queue length: an FCFS station with m
// servers serves at rate min(j, m)/s when j customers are present, so
// multi-server stations are handled exactly here (unlike the shadow-server
// approximation used by the other solvers). Delay stations are treated as
// infinitely many servers.
//
// The recursion tracks, for every station, the marginal queue-length
// distribution p_m(j | n):
//
//	w_m(n)    = Σ_{j=1..n} (j / μ_m(j)) · p_m(j-1 | n-1)
//	X(n)      = n / Σ_m v_m · w_m(n)
//	p_m(j|n)  = (X(n) · v_m / μ_m(j)) · p_m(j-1 | n-1),  j ≥ 1
//	p_m(0|n)  = 1 − Σ_{j≥1} p_m(j|n)
//
// Cost is O(N²·M) time and O(N·M) space.
func ExactSingleClassLD(net *queueing.Network) (*Result, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if len(net.Classes) != 1 {
		return nil, fmt.Errorf("mva: ExactSingleClassLD on network with %d classes", len(net.Classes))
	}
	n := net.Classes[0].Population
	nm := len(net.Stations)
	visits := net.Classes[0].Visits

	// rate(m, j) is the service rate of station m with j customers present.
	rate := func(m, j int) float64 {
		st := net.Stations[m]
		if st.ServiceTime == 0 {
			return 0 // zero-delay station: handled specially below
		}
		if st.Kind == queueing.Delay {
			return float64(j) / st.ServiceTime
		}
		c := st.ServerCount()
		if j < c {
			return float64(j) / st.ServiceTime
		}
		return float64(c) / st.ServiceTime
	}

	// p[m][j] = p_m(j | k) for the current population k; starts at k = 0
	// with all mass on j = 0.
	p := make([][]float64, nm)
	for m := range p {
		p[m] = make([]float64, n+1)
		p[m][0] = 1
	}
	w := make([]float64, nm)
	var x float64

	r := newResult(1, nm)
	if n == 0 {
		return r, nil
	}

	for k := 1; k <= n; k++ {
		var cycle float64
		for m := 0; m < nm; m++ {
			if net.Stations[m].ServiceTime == 0 {
				w[m] = 0
				continue
			}
			var sum float64
			for j := 1; j <= k; j++ {
				sum += float64(j) / rate(m, j) * p[m][j-1]
			}
			w[m] = sum
			cycle += visits[m] * w[m]
		}
		if cycle == 0 {
			return nil, fmt.Errorf("mva: class %q has zero total demand", net.Classes[0].Name)
		}
		x = float64(k) / cycle
		// Update marginals for population k (descending j uses the k-1
		// values of lower indices, so go top-down over a copy pattern:
		// p[m][j] depends on old p[m][j-1], so compute descending).
		for m := 0; m < nm; m++ {
			if net.Stations[m].ServiceTime == 0 {
				continue
			}
			var tail float64
			for j := k; j >= 1; j-- {
				p[m][j] = x * visits[m] / rate(m, j) * p[m][j-1]
				tail += p[m][j]
			}
			p[m][0] = 1 - tail
			if p[m][0] < 0 {
				// Numerical guard: tiny negative from cancellation.
				if p[m][0] < -1e-9 {
					return nil, fmt.Errorf("mva: marginal probability underflow at station %d (%v)", m, p[m][0])
				}
				p[m][0] = 0
			}
		}
	}

	r.Throughput[0] = x
	copy(r.Wait[0], w)
	for m := 0; m < nm; m++ {
		r.QueueLen[0][m] = x * visits[m] * w[m]
	}
	r.CycleTime[0] = float64(n) / x
	return r, nil
}
