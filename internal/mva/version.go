package mva

// SolverVersion names the numeric behavior of the AMVA/MVA solvers. It is
// part of every content-addressed surrogate-grid and cache-snapshot key: a
// persisted artifact is only trusted when it was produced by the solver
// version that would recompute it today.
//
// Bump the tag whenever a change can move converged numbers at all — a new
// residence-time formula, a different stopping rule or default tolerance, a
// reordering of floating-point accumulation. Pure refactors that are
// bit-identical (verified against the golden corpus at 1e-9) keep the tag.
// Stale artifacts are not migrated: a version mismatch at load time falls
// back to a cold build/solve, which regenerates them.
const SolverVersion = "amva/1"
