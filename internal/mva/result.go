// Package mva solves closed multiclass queueing networks by Mean Value
// Analysis: exact MVA for small populations, the Bard–Schweitzer approximate
// MVA of the paper's Figure 3 for large systems, and asymptotic bounds for
// sanity checks.
package mva

import (
	"fmt"
	"math"

	"lattol/internal/queueing"
)

// Method identifies which solver produced a Result.
type Method string

const (
	// MethodExact marks results of the exact MVA recursion.
	MethodExact Method = "exact-mva"
	// MethodApprox marks results of the Bard–Schweitzer approximate MVA.
	MethodApprox Method = "bard-schweitzer"
)

// Result holds the steady-state solution of a closed network.
type Result struct {
	// Throughput[c] is the class-c throughput λ_c measured at the class's
	// reference station (visits are relative to it).
	Throughput []float64
	// Wait[c][m] is the mean residence time (queueing + service) per visit of
	// class c at station m.
	Wait [][]float64
	// QueueLen[c][m] is the mean number of class-c customers at station m.
	QueueLen [][]float64
	// CycleTime[c] = Σ_m visits[c][m]·Wait[c][m] is the mean time for a
	// class-c customer to complete one cycle.
	CycleTime []float64
	// Iterations is the number of fixed-point iterations used (0 for exact
	// solvers).
	Iterations int
	// Method reports which solver produced this result — set by
	// ExactSingleClass, ExactMultiClass and ApproxMultiClass, so callers of
	// the automatic Solve can tell which algorithm it chose.
	Method Method
}

// Utilization returns the utilization of station m by class c:
// λ_c · visits · service time.
func (r *Result) Utilization(n *queueing.Network, c, m int) float64 {
	return r.Throughput[c] * n.Demand(c, m)
}

// TotalUtilization returns the utilization of station m summed over classes.
func (r *Result) TotalUtilization(n *queueing.Network, m int) float64 {
	var u float64
	for c := range n.Classes {
		u += r.Utilization(n, c, m)
	}
	return u
}

// TotalQueueLen returns the mean number of customers at station m over all
// classes.
func (r *Result) TotalQueueLen(m int) float64 {
	var q float64
	for c := range r.QueueLen {
		q += r.QueueLen[c][m]
	}
	return q
}

// CheckLittle verifies Little's law per class (population = λ·cycle time)
// within tol and returns the first violation found, if any. It is a
// consistency guard for solver output.
func (r *Result) CheckLittle(n *queueing.Network, tol float64) error {
	for c, cl := range n.Classes {
		if cl.Population == 0 {
			continue
		}
		got := r.Throughput[c] * r.CycleTime[c]
		if math.Abs(got-float64(cl.Population)) > tol {
			return fmt.Errorf("mva: class %d (%s) violates Little's law: λ·T = %v, population %d",
				c, cl.Name, got, cl.Population)
		}
	}
	return nil
}

func newResult(nClasses, nStations int) *Result {
	r := &Result{
		Throughput: make([]float64, nClasses),
		Wait:       make([][]float64, nClasses),
		QueueLen:   make([][]float64, nClasses),
		CycleTime:  make([]float64, nClasses),
	}
	for c := 0; c < nClasses; c++ {
		r.Wait[c] = make([]float64, nStations)
		r.QueueLen[c] = make([]float64, nStations)
	}
	return r
}
