package mva

import (
	"fmt"
	"math"

	"lattol/internal/queueing"
	"lattol/internal/validate"
)

// Accel selects a fixed-point acceleration scheme layered over the
// Bard–Schweitzer iteration. Every scheme converges to the same fixed point
// as the plain iteration — the convergence test is always the raw residual
// ‖G(n) − n‖∞ < Tolerance — it only changes how many iterations are needed
// to get there.
type Accel int

const (
	// AccelNone runs the plain (optionally damped) Bard–Schweitzer
	// successive substitution of the paper's Figure 3. Default.
	AccelNone Accel = iota
	// AccelAitken applies componentwise Aitken Δ² extrapolation every other
	// iteration (vector Steffensen): two plain steps produce the triple
	// (n, G(n), G(G(n))) and each component is extrapolated through its own
	// geometric-convergence model. Components whose denominator is
	// ill-conditioned, or whose extrapolated value leaves [0, ΣN], fall back
	// to the plain update.
	AccelAitken
	// AccelAnderson runs depth-m Anderson mixing: the next iterate combines
	// the last m residuals through a least-squares step. When the LS system
	// is ill-conditioned or the mixed iterate leaves the feasible region
	// (negative or non-finite queue lengths), the step falls back to the
	// plain damped iteration and the history restarts.
	AccelAnderson
)

func (a Accel) String() string {
	switch a {
	case AccelNone:
		return "none"
	case AccelAitken:
		return "aitken"
	case AccelAnderson:
		return "anderson"
	default:
		return fmt.Sprintf("Accel(%d)", int(a))
	}
}

// ParseAccel maps the CLI/wire name of an acceleration scheme to its Accel
// value; the empty string selects AccelNone.
func ParseAccel(name string) (Accel, error) {
	switch name {
	case "", "none":
		return AccelNone, nil
	case "aitken":
		return AccelAitken, nil
	case "anderson":
		return AccelAnderson, nil
	default:
		return 0, validate.Fieldf("mva.AMVAOptions", "Accel", "= %q, want none, aitken or anderson", name)
	}
}

// AMVAOptions tunes the approximate solver. The zero value selects sensible
// defaults.
type AMVAOptions struct {
	// Tolerance is the convergence threshold on the largest absolute change
	// of any per-class per-station queue length between successive
	// iterations. Default 1e-10. Negative values are rejected by Validate;
	// zero selects the default.
	Tolerance float64
	// MaxIterations bounds the fixed-point loop. Default 100000.
	MaxIterations int
	// Damping in [0,1) blends each new queue-length estimate with the
	// previous one: n ← (1-d)·n_new + d·n_old. 0 (default) reproduces the
	// plain Bard–Schweitzer iteration of the paper's Figure 3. Values
	// outside [0,1) are rejected by ApproxMultiClass: d = 1 would freeze
	// the iterate (the first iteration sees no change and "converges" to
	// the uniform initial guess), and d > 1 or d < 0 extrapolates instead
	// of damping.
	Damping float64
	// Accel selects a fixed-point acceleration scheme. All schemes converge
	// to the same fixed point (the convergence test is the raw residual);
	// they differ only in iteration count. Default AccelNone.
	Accel Accel
	// AndersonDepth is the mixing depth m of AccelAnderson (how many recent
	// residual differences enter the least-squares step). 0 selects the
	// default of 3; negative values are rejected.
	AndersonDepth int
	// WarmStart seeds the queue-length iterate from the workspace's previous
	// converged solution instead of the uniform initial spread. The seed is
	// shape-checked: when the workspace's last converged solve had a
	// different class or station count (or did not converge), the solver
	// falls back to the uniform guess. Warm starting never changes the fixed
	// point — only the starting guess — so adjacent solves of a continuation
	// sweep converge in a fraction of the cold iteration count.
	WarmStart bool
}

// Validate reports the first invalid option as a field-named error
// (*validate.FieldError). Zero values are valid: they select the defaults.
func (o AMVAOptions) Validate() error {
	if math.IsNaN(o.Tolerance) || math.IsInf(o.Tolerance, 0) || o.Tolerance < 0 {
		return validate.Fieldf("mva.AMVAOptions", "Tolerance", "= %v, want finite >= 0", o.Tolerance)
	}
	if d := o.Damping; math.IsNaN(d) || d < 0 || d >= 1 {
		return validate.Fieldf("mva.AMVAOptions", "Damping", "= %v, want in [0,1)", d)
	}
	switch o.Accel {
	case AccelNone, AccelAitken, AccelAnderson:
	default:
		return validate.Fieldf("mva.AMVAOptions", "Accel", "= %d, want AccelNone, AccelAitken or AccelAnderson", int(o.Accel))
	}
	if o.AndersonDepth < 0 {
		return validate.Fieldf("mva.AMVAOptions", "AndersonDepth", "= %d, want >= 0", o.AndersonDepth)
	}
	return nil
}

// Defaults selected by zero-valued AMVAOptions fields. Exported so layers
// above (metrics bucketing, documentation) can reference the real caps
// instead of restating them.
const (
	// DefaultTolerance is the convergence threshold on the raw residual
	// ‖G(n) − n‖∞ selected by a zero Tolerance.
	DefaultTolerance = 1e-10
	// DefaultMaxIterations is the fixed-point iteration budget selected by a
	// zero MaxIterations.
	DefaultMaxIterations = 100000
)

func (o AMVAOptions) withDefaults() AMVAOptions {
	if o.Tolerance <= 0 {
		o.Tolerance = DefaultTolerance
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = DefaultMaxIterations
	}
	if o.AndersonDepth <= 0 {
		o.AndersonDepth = 3
	}
	return o
}

// NonConvergenceError reports that the Bard–Schweitzer fixed point did not
// stabilize within the iteration budget, with the diagnostics of the last
// iteration: how many iterations ran and how far from the tolerance the
// iterate still was.
type NonConvergenceError struct {
	// Iterations is the number of fixed-point iterations performed.
	Iterations int
	// MaxDelta is the largest absolute queue-length change observed in the
	// final iteration (the quantity compared against Tolerance).
	MaxDelta float64
	// Tolerance is the convergence threshold that was not reached.
	Tolerance float64
}

func (e *NonConvergenceError) Error() string {
	return fmt.Sprintf("mva: Bard–Schweitzer did not converge within %d iterations (tol %g, last max delta %g)",
		e.Iterations, e.Tolerance, e.MaxDelta)
}

// ApproxMultiClass solves a closed multiclass network with the
// Bard–Schweitzer approximate MVA — the algorithm of the paper's Figure 3.
//
// The fixed point iterates, for every class i and station m:
//
//	n_m(N-1_i) ≈ (N_i-1)/N_i · n_{i,m}(N) + Σ_{j≠i} n_{j,m}(N)   (step 2a)
//	w_{i,m}    = s_m · (1 + n_m(N-1_i))   [FCFS; w = s_m at delay] (step 2b)
//	λ_i        = N_i / Σ_m e_{i,m}·w_{i,m}                        (step 3)
//	n_{i,m}    = λ_i·e_{i,m}·w_{i,m}                              (step 4)
//
// until queue lengths stabilize (step 5). On non-convergence the returned
// error is a *NonConvergenceError carrying the last iteration's diagnostics.
//
// The returned Result is freshly allocated and owned by the caller. For
// repeated solves that should reuse buffers (and warm-start from the previous
// solution), use (*Workspace).ApproxMultiClass.
func ApproxMultiClass(net *queueing.Network, opts AMVAOptions) (*Result, error) {
	var ws Workspace
	return ws.ApproxMultiClass(net, opts)
}

// ApproxMultiClass runs the Bard–Schweitzer solver using the workspace's
// buffers. The returned Result aliases the workspace and is valid until the
// next solve on it; see the Workspace reuse contract. With
// AMVAOptions.WarmStart the iterate is seeded from the workspace's previous
// converged solution when its shape (class and station counts) matches.
func (ws *Workspace) ApproxMultiClass(net *queueing.Network, opts AMVAOptions) (*Result, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	nc := len(net.Classes)
	nm := len(net.Stations)
	warm := opts.WarmStart && ws.warmOK && ws.warmNC == nc && ws.warmNM == nm
	r := ws.ensure(nc, nm, warm)
	// The iterate is in flux until this solve converges; a failed or
	// interrupted solve must not seed the next warm start.
	ws.warmOK = false
	q := ws.q

	if warm {
		// q already holds the previous converged solution. Classes the
		// iteration skips (zero population) must read as zero: stale mass in
		// a skipped row would never be updated and would shift the fixed
		// point through the column sums.
		for c, cl := range net.Classes {
			if cl.Population == 0 {
				row := q[c*nm : (c+1)*nm]
				for i := range row {
					row[i] = 0
				}
			}
		}
	} else {
		// Step 1: spread each class's population evenly over the stations it
		// visits.
		for c, cl := range net.Classes {
			if cl.Population == 0 {
				continue
			}
			visited := 0
			for m := range net.Stations {
				if cl.Visits[m] > 0 {
					visited++
				}
			}
			for m := range net.Stations {
				if cl.Visits[m] > 0 {
					q[c*nm+m] = float64(cl.Population) / float64(visited)
				}
			}
		}
	}

	var err error
	if opts.Accel == AccelNone {
		err = ws.iteratePlain(net, opts, r)
	} else {
		err = ws.iterateAccel(net, opts, r)
	}
	if err != nil {
		return nil, err
	}
	r.Method = MethodApprox
	for c := 0; c < nc; c++ {
		copy(r.QueueLen[c], q[c*nm:(c+1)*nm])
	}
	ws.warmOK, ws.warmNC, ws.warmNM = true, nc, nm
	return r, nil
}

// iteratePlain is the plain (optionally damped) Bard–Schweitzer successive
// substitution, updating ws.q in place until the queue lengths stabilize.
func (ws *Workspace) iteratePlain(net *queueing.Network, opts AMVAOptions, r *Result) error {
	nc := len(net.Classes)
	nm := len(net.Stations)
	q := ws.q
	colSum := ws.colSum

	maxDelta := 0.0
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		for m := 0; m < nm; m++ {
			colSum[m] = 0
			for c := 0; c < nc; c++ {
				colSum[m] += q[c*nm+m]
			}
		}
		maxDelta = 0
		for c, cl := range net.Classes {
			if cl.Population == 0 {
				continue
			}
			row := q[c*nm : (c+1)*nm]
			ni := float64(cl.Population)
			var cycle float64
			for m := 0; m < nm; m++ {
				// Queue seen by an arriving class-c customer (arrival
				// theorem approximation).
				seen := colSum[m] - row[m]/ni
				r.Wait[c][m] = residence(net.Stations[m], seen)
				cycle += cl.Visits[m] * r.Wait[c][m]
			}
			if cycle == 0 {
				return fmt.Errorf("mva: class %q has zero total demand", cl.Name)
			}
			r.Throughput[c] = ni / cycle
			r.CycleTime[c] = cycle
			for m := 0; m < nm; m++ {
				nNew := r.Throughput[c] * cl.Visits[m] * r.Wait[c][m]
				if opts.Damping > 0 {
					nNew = (1-opts.Damping)*nNew + opts.Damping*row[m]
				}
				if d := math.Abs(nNew - row[m]); d > maxDelta {
					maxDelta = d
				}
				row[m] = nNew
			}
		}
		if maxDelta < opts.Tolerance {
			r.Iterations = iter
			return nil
		}
	}
	return &NonConvergenceError{
		Iterations: opts.MaxIterations,
		MaxDelta:   maxDelta,
		Tolerance:  opts.Tolerance,
	}
}

// Solve picks a solver automatically: exact MVA when the population lattice
// is small (≤ exactLimit states, default 1<<16), approximate MVA otherwise.
// The chosen solver is reported in Result.Method.
func Solve(net *queueing.Network, exactLimit int) (*Result, error) {
	if exactLimit <= 0 {
		exactLimit = 1 << 16
	}
	states := 1
	exact := true
	for _, cl := range net.Classes {
		if states > exactLimit/(cl.Population+1) {
			exact = false
			break
		}
		states *= cl.Population + 1
	}
	if exact {
		return ExactMultiClass(net, exactLimit)
	}
	return ApproxMultiClass(net, AMVAOptions{})
}
