package mva

import (
	"fmt"

	"lattol/internal/queueing"
)

// Convolution solves a single-class closed product-form network by Buzen's
// normalization-constant algorithm and returns the class throughput. It is
// an independent solution method used to cross-check the MVA recursion
// (the two must agree to machine precision on single-server networks).
//
// G(n) is built by convolving stations one at a time:
//
//	FCFS (single server):  G'(k) = G(k) + D·G'(k-1)
//	Delay:                 G'(k) = Σ_j G(k-j)·D^j/j!
//
// Throughput X(N) = G(N-1)/G(N). Multi-server FCFS stations use the
// load-dependent factor Π_{j=1..k} D/α(j) with α(j) = min(j, m).
func Convolution(net *queueing.Network) (float64, error) {
	if err := net.Validate(); err != nil {
		return 0, err
	}
	if len(net.Classes) != 1 {
		return 0, fmt.Errorf("mva: Convolution on network with %d classes", len(net.Classes))
	}
	n := net.Classes[0].Population
	if n == 0 {
		return 0, nil
	}
	g := make([]float64, n+1)
	g[0] = 1
	for m, st := range net.Stations {
		d := net.Classes[0].Visits[m] * st.ServiceTime
		if d == 0 {
			continue
		}
		switch {
		case st.Kind == queueing.Delay:
			convolveDelay(g, d)
		case st.ServerCount() == 1:
			// In-place ascending accumulation implements the geometric
			// station factor.
			for k := 1; k <= n; k++ {
				g[k] += d * g[k-1]
			}
		default:
			convolveMultiServer(g, d, st.ServerCount())
		}
	}
	if g[n] == 0 {
		return 0, fmt.Errorf("mva: zero normalization constant")
	}
	return g[n-1] / g[n], nil
}

// convolveDelay convolves the running normalization vector with the delay
// station factor D^j/j!.
func convolveDelay(g []float64, d float64) {
	n := len(g) - 1
	out := make([]float64, n+1)
	// factor[j] = D^j / j!
	factor := make([]float64, n+1)
	factor[0] = 1
	for j := 1; j <= n; j++ {
		factor[j] = factor[j-1] * d / float64(j)
	}
	for k := 0; k <= n; k++ {
		var sum float64
		for j := 0; j <= k; j++ {
			sum += g[k-j] * factor[j]
		}
		out[k] = sum
	}
	copy(g, out)
}

// convolveMultiServer convolves with an m-server FCFS station factor
// f(j) = D^j / Π_{i=1..j} min(i, m).
func convolveMultiServer(g []float64, d float64, m int) {
	n := len(g) - 1
	factor := make([]float64, n+1)
	factor[0] = 1
	for j := 1; j <= n; j++ {
		alpha := j
		if alpha > m {
			alpha = m
		}
		factor[j] = factor[j-1] * d / float64(alpha)
	}
	out := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		var sum float64
		for j := 0; j <= k; j++ {
			sum += g[k-j] * factor[j]
		}
		out[k] = sum
	}
	copy(g, out)
}
