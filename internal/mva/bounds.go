package mva

import (
	"fmt"

	"lattol/internal/queueing"
)

// Bounds holds asymptotic (bottleneck) bounds on a class's throughput and
// cycle time, used to sanity-check solver output and to explain performance
// regimes the way the paper's "simple bottleneck analysis" does.
type Bounds struct {
	// ThroughputUpper = min(N/D_total, 1/D_max): the class cannot run faster
	// than its zero-contention cycle allows, nor faster than its bottleneck
	// station serves.
	ThroughputUpper float64
	// ThroughputLower = N/(D_total + (N-1)·D_total) is the pessimistic
	// single-class asymptotic lower bound (all other customers queued ahead
	// at every visit).
	ThroughputLower float64
	// CycleLower = max(D_total, N·D_max): dual of ThroughputUpper.
	CycleLower float64
	// Bottleneck is the station index with the largest FCFS demand (-1 if
	// none).
	Bottleneck int
	// SaturationPopulation N* = D_total/D_max: beyond roughly this population
	// the bottleneck saturates and throughput flattens.
	SaturationPopulation float64
}

// AsymptoticBounds computes single-class asymptotic bounds for class c,
// treating the other classes as absent. For the symmetric SPMD workloads of
// the paper, every class sees statistically identical contention, so these
// per-class bounds still locate the knees of the real curves.
func AsymptoticBounds(net *queueing.Network, c int) (Bounds, error) {
	if err := net.Validate(); err != nil {
		return Bounds{}, err
	}
	if c < 0 || c >= len(net.Classes) {
		return Bounds{}, fmt.Errorf("mva: class index %d out of range", c)
	}
	n := float64(net.Classes[c].Population)
	dTotal := net.TotalDemand(c)
	dMax, arg := net.MaxDemand(c)
	if dTotal == 0 {
		return Bounds{}, fmt.Errorf("mva: class %q has zero total demand", net.Classes[c].Name)
	}
	b := Bounds{Bottleneck: arg}
	b.ThroughputUpper = n / dTotal
	if dMax > 0 && 1/dMax < b.ThroughputUpper {
		b.ThroughputUpper = 1 / dMax
	}
	if n > 0 {
		b.ThroughputLower = n / (float64(net.TotalPopulation()-1)*dTotal + dTotal)
	}
	b.CycleLower = dTotal
	if dMax > 0 && n*dMax > b.CycleLower {
		b.CycleLower = n * dMax
	}
	if dMax > 0 {
		b.SaturationPopulation = dTotal / dMax
	}
	return b, nil
}
