package mva

import (
	"fmt"
	"math"

	"lattol/internal/fixpoint"
	"lattol/internal/queueing"
)

// This file implements the accelerated fixed-point drivers behind
// AMVAOptions.Accel. Both schemes wrap the same map evaluation evalG — one
// full (optionally damped) Bard–Schweitzer sweep — so a converged
// accelerated solve satisfies exactly the same stopping criterion as the
// plain iteration: ‖G(n) − n‖∞ < Tolerance on the raw sweep. Acceleration
// only changes the point the next sweep is evaluated at (see
// internal/fixpoint), never the map or the convergence test, so the fixed
// point is unchanged.

// evalG evaluates one Bard–Schweitzer sweep at the iterate x, writing the
// updated queue lengths into g (x is not modified) and filling the result's
// Wait, Throughput and CycleTime from this sweep. It returns the residual
// ‖g − x‖∞, the quantity the convergence test compares against Tolerance.
// Rows of zero-population classes are zeroed in g: the sweep skips them, and
// all iterates must keep them at zero so they never contribute to the column
// sums.
func (ws *Workspace) evalG(net *queueing.Network, opts AMVAOptions, x, g []float64, r *Result) (float64, error) {
	nc := len(net.Classes)
	nm := len(net.Stations)
	colSum := ws.colSum
	for m := 0; m < nm; m++ {
		colSum[m] = 0
		for c := 0; c < nc; c++ {
			colSum[m] += x[c*nm+m]
		}
	}
	maxResid := 0.0
	for c, cl := range net.Classes {
		row := x[c*nm : (c+1)*nm]
		out := g[c*nm : (c+1)*nm]
		if cl.Population == 0 {
			for i := range out {
				out[i] = 0
			}
			continue
		}
		ni := float64(cl.Population)
		var cycle float64
		for m := 0; m < nm; m++ {
			seen := colSum[m] - row[m]/ni
			r.Wait[c][m] = residence(net.Stations[m], seen)
			cycle += cl.Visits[m] * r.Wait[c][m]
		}
		if cycle == 0 {
			return 0, fmt.Errorf("mva: class %q has zero total demand", cl.Name)
		}
		r.Throughput[c] = ni / cycle
		r.CycleTime[c] = cycle
		for m := 0; m < nm; m++ {
			nNew := r.Throughput[c] * cl.Visits[m] * r.Wait[c][m]
			if opts.Damping > 0 {
				nNew = (1-opts.Damping)*nNew + opts.Damping*row[m]
			}
			if d := math.Abs(nNew - row[m]); d > maxResid {
				maxResid = d
			}
			out[m] = nNew
		}
	}
	return maxResid, nil
}

// iterateAccel runs the accelerated fixed-point loop for opts.Accel. Every
// evalG sweep counts as one iteration, so Result.Iterations is directly
// comparable across acceleration modes.
func (ws *Workspace) iterateAccel(net *queueing.Network, opts AMVAOptions, r *Result) error {
	nc := len(net.Classes)
	nm := len(net.Stations)
	n := nc * nm
	ws.g = resizeZero(ws.g, n)
	ws.upper = resizeF(ws.upper, n)
	for c, cl := range net.Classes {
		// Feasibility bound: class c can never queue more than its own
		// population anywhere.
		bound := float64(cl.Population)
		row := ws.upper[c*nm : (c+1)*nm]
		for i := range row {
			row[i] = bound
		}
	}
	var scheme fixpoint.Scheme
	switch opts.Accel {
	case AccelAitken:
		scheme = fixpoint.Aitken
	case AccelAnderson:
		scheme = fixpoint.Anderson
	default:
		scheme = fixpoint.None
	}
	ws.accel.Reset(scheme, opts.AndersonDepth, n)

	x, g := ws.q, ws.g
	resid := 0.0
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		var err error
		resid, err = ws.evalG(net, opts, x, g, r)
		if err != nil {
			return err
		}
		if resid < opts.Tolerance {
			copy(x, g)
			r.Iterations = iter
			return nil
		}
		ws.accel.Advance(x, g, ws.upper)
	}
	return &NonConvergenceError{
		Iterations: opts.MaxIterations,
		MaxDelta:   resid,
		Tolerance:  opts.Tolerance,
	}
}
