package mva

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lattol/internal/queueing"
)

func singleClassNet(pop int, visits, service []float64) *queueing.Network {
	st := make([]queueing.Station, len(service))
	for i, s := range service {
		st[i] = queueing.Station{Name: "s", Kind: queueing.FCFS, ServiceTime: s}
	}
	return &queueing.Network{
		Stations: st,
		Classes:  []queueing.Class{{Name: "c", Population: pop, Visits: visits}},
	}
}

func TestExactSingleClassHandComputed(t *testing.T) {
	// Stations A(s=1), B(s=2), visits 1 each, N=2:
	// k=1: w=(1,2), λ=1/3, q=(1/3,2/3)
	// k=2: w=(4/3,10/3), cycle=14/3, λ=3/7, q=(4/7,10/7)
	net := singleClassNet(2, []float64{1, 1}, []float64{1, 2})
	r, err := ExactSingleClass(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput[0]-3.0/7.0) > 1e-12 {
		t.Errorf("λ = %v, want 3/7", r.Throughput[0])
	}
	if math.Abs(r.Wait[0][0]-4.0/3.0) > 1e-12 || math.Abs(r.Wait[0][1]-10.0/3.0) > 1e-12 {
		t.Errorf("w = %v, want (4/3, 10/3)", r.Wait[0])
	}
	if math.Abs(r.QueueLen[0][0]-4.0/7.0) > 1e-12 || math.Abs(r.QueueLen[0][1]-10.0/7.0) > 1e-12 {
		t.Errorf("q = %v, want (4/7, 10/7)", r.QueueLen[0])
	}
	if err := r.CheckLittle(net, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestExactSingleClassBalancedClosedForm(t *testing.T) {
	// Balanced network theorem: M identical FCFS stations of demand D give
	// λ(N) = N / (D·(M+N-1)).
	for _, m := range []int{1, 2, 5} {
		for _, n := range []int{1, 3, 10} {
			visits := make([]float64, m)
			service := make([]float64, m)
			for i := range visits {
				visits[i] = 1
				service[i] = 2.5
			}
			net := singleClassNet(n, visits, service)
			r, err := ExactSingleClass(net)
			if err != nil {
				t.Fatal(err)
			}
			want := float64(n) / (2.5 * float64(m+n-1))
			if math.Abs(r.Throughput[0]-want) > 1e-12 {
				t.Errorf("M=%d N=%d: λ = %v, want %v", m, n, r.Throughput[0], want)
			}
		}
	}
}

func TestExactSingleClassDelayStation(t *testing.T) {
	// Machine repairman: N clients thinking (delay Z) then queueing at one
	// FCFS server. Check against direct recursion values for N=2, Z=10, s=1:
	// k=1: w=(10,1), λ=1/11, q_srv=1/11
	// k=2: w=(10, 1+1/11=12/11), cycle=122/11, λ=22/122=11/61
	net := &queueing.Network{
		Stations: []queueing.Station{
			{Name: "think", Kind: queueing.Delay, ServiceTime: 10},
			{Name: "srv", Kind: queueing.FCFS, ServiceTime: 1},
		},
		Classes: []queueing.Class{{Name: "c", Population: 2, Visits: []float64{1, 1}}},
	}
	r, err := ExactSingleClass(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput[0]-11.0/61.0) > 1e-12 {
		t.Errorf("λ = %v, want 11/61", r.Throughput[0])
	}
}

func TestExactSingleClassZeroPopulation(t *testing.T) {
	net := singleClassNet(0, []float64{1}, []float64{1})
	r, err := ExactSingleClass(net)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput[0] != 0 {
		t.Errorf("λ = %v, want 0", r.Throughput[0])
	}
}

func TestExactSingleClassRejectsMulti(t *testing.T) {
	net := singleClassNet(1, []float64{1}, []float64{1})
	net.Classes = append(net.Classes, queueing.Class{Name: "d", Population: 1, Visits: []float64{1}})
	if _, err := ExactSingleClass(net); err == nil {
		t.Error("want error for multiclass input")
	}
}

func TestExactMultiMatchesSingle(t *testing.T) {
	// One class through the multiclass lattice must equal the single-class
	// recursion.
	net := singleClassNet(6, []float64{1, 0.4, 2}, []float64{3, 7, 0.5})
	rs, err := ExactSingleClass(net)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := ExactMultiClass(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs.Throughput[0]-rm.Throughput[0]) > 1e-12 {
		t.Errorf("λ single %v != multi %v", rs.Throughput[0], rm.Throughput[0])
	}
	for m := range net.Stations {
		if math.Abs(rs.Wait[0][m]-rm.Wait[0][m]) > 1e-12 {
			t.Errorf("w[%d] single %v != multi %v", m, rs.Wait[0][m], rm.Wait[0][m])
		}
	}
}

func twoClassNet() *queueing.Network {
	return &queueing.Network{
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.FCFS, ServiceTime: 1},
			{Name: "disk", Kind: queueing.FCFS, ServiceTime: 2},
			{Name: "net", Kind: queueing.FCFS, ServiceTime: 0.5},
		},
		Classes: []queueing.Class{
			{Name: "a", Population: 3, Visits: []float64{1, 0.5, 0.2}},
			{Name: "b", Population: 2, Visits: []float64{1, 0.1, 1.5}},
		},
	}
}

func TestExactMultiClassLittle(t *testing.T) {
	net := twoClassNet()
	r, err := ExactMultiClass(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckLittle(net, 1e-9); err != nil {
		t.Error(err)
	}
	// Total population must be conserved across stations.
	var total float64
	for m := range net.Stations {
		total += r.TotalQueueLen(m)
	}
	if math.Abs(total-5) > 1e-9 {
		t.Errorf("total queue %v, want 5", total)
	}
}

func TestExactMultiClassZeroPopulationClass(t *testing.T) {
	net := twoClassNet()
	net.Classes[1].Population = 0
	r, err := ExactMultiClass(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput[1] != 0 {
		t.Errorf("zero-pop class throughput %v", r.Throughput[1])
	}
	// Must match single-class solution of class a alone.
	alone := singleClassNet(3, net.Classes[0].Visits, []float64{1, 2, 0.5})
	rs, err := ExactSingleClass(alone)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput[0]-rs.Throughput[0]) > 1e-12 {
		t.Errorf("λ %v, want %v", r.Throughput[0], rs.Throughput[0])
	}
}

func TestExactMultiClassStateLimit(t *testing.T) {
	net := twoClassNet()
	net.Classes[0].Population = 1000
	net.Classes[1].Population = 1000
	if _, err := ExactMultiClass(net, 1<<16); err == nil {
		t.Error("want state-space error")
	}
}

func TestAMVAExactForSinglePopulationOne(t *testing.T) {
	// With N=1 the arrival theorem is exact and Bard–Schweitzer converges to
	// the exact solution: an alone customer sees empty queues.
	net := singleClassNet(1, []float64{1, 1}, []float64{1, 2})
	r, err := ApproxMultiClass(net, AMVAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput[0]-1.0/3.0) > 1e-9 {
		t.Errorf("λ = %v, want 1/3", r.Throughput[0])
	}
}

func TestAMVACloseToExact(t *testing.T) {
	// Bard–Schweitzer is typically within a few percent of exact MVA.
	net := twoClassNet()
	exact, err := ExactMultiClass(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ApproxMultiClass(net, AMVAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range net.Classes {
		rel := math.Abs(approx.Throughput[c]-exact.Throughput[c]) / exact.Throughput[c]
		if rel > 0.08 {
			t.Errorf("class %d: AMVA λ %v vs exact %v (rel err %.3f)", c, approx.Throughput[c], exact.Throughput[c], rel)
		}
	}
	if err := approx.CheckLittle(net, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestAMVAZeroServiceStation(t *testing.T) {
	// A zero-delay station (ideal subsystem) must contribute nothing.
	net := singleClassNet(4, []float64{1, 1}, []float64{2, 0})
	r, err := ApproxMultiClass(net, AMVAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Wait[0][1] != 0 {
		t.Errorf("wait at zero-delay station = %v", r.Wait[0][1])
	}
	// Equivalent to a single-station network: λ = min(N/D, 1/D) = 1/2.
	if math.Abs(r.Throughput[0]-0.5) > 1e-6 {
		t.Errorf("λ = %v, want 0.5", r.Throughput[0])
	}
}

func TestAMVADamping(t *testing.T) {
	net := twoClassNet()
	plain, err := ApproxMultiClass(net, AMVAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	damped, err := ApproxMultiClass(net, AMVAOptions{Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for c := range net.Classes {
		if math.Abs(plain.Throughput[c]-damped.Throughput[c]) > 1e-6 {
			t.Errorf("class %d: damped fixed point differs: %v vs %v", c, plain.Throughput[c], damped.Throughput[c])
		}
	}
}

func TestAMVARejectsInvalidDamping(t *testing.T) {
	// Regression: Damping >= 1 used to freeze the iterate — every blended
	// update equalled the previous value, so maxDelta was 0 on iteration 1
	// and the solver "converged" instantly, silently returning the uniform
	// initial spread as the answer. Negative damping extrapolates instead
	// of damping. Both are now rejected up front.
	net := twoClassNet()
	for _, d := range []float64{1, 1.5, -0.25} {
		if _, err := ApproxMultiClass(net, AMVAOptions{Damping: d}); err == nil {
			t.Errorf("Damping = %g accepted; want error", d)
		}
	}
	// Near the upper boundary the damped fixed point still matches the
	// undamped one — the invalid range starts exactly at 1.
	plain, err := ApproxMultiClass(net, AMVAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := ApproxMultiClass(net, AMVAOptions{Damping: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	for c := range net.Classes {
		if math.Abs(plain.Throughput[c]-heavy.Throughput[c]) > 1e-6 {
			t.Errorf("class %d: Damping=0.95 fixed point %v differs from plain %v",
				c, heavy.Throughput[c], plain.Throughput[c])
		}
	}
}

func TestAMVAIterationLimit(t *testing.T) {
	net := twoClassNet()
	if _, err := ApproxMultiClass(net, AMVAOptions{MaxIterations: 1}); err == nil {
		t.Error("want non-convergence error")
	}
}

func TestSolvePicksExactForSmall(t *testing.T) {
	net := twoClassNet()
	r, err := Solve(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMultiClass(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput[0]-exact.Throughput[0]) > 1e-12 {
		t.Error("Solve did not use exact MVA for a small lattice")
	}
	if r.Iterations != 0 {
		t.Errorf("exact result reports %d iterations", r.Iterations)
	}
}

func TestSolvePicksApproxForLarge(t *testing.T) {
	net := twoClassNet()
	net.Classes[0].Population = 400
	net.Classes[1].Population = 400
	r, err := Solve(net, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations == 0 {
		t.Error("Solve did not use AMVA for a large lattice")
	}
}

func TestBounds(t *testing.T) {
	net := singleClassNet(5, []float64{1, 1}, []float64{1, 3})
	r, err := ExactSingleClass(net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AsymptoticBounds(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bottleneck != 1 {
		t.Errorf("bottleneck %d, want 1", b.Bottleneck)
	}
	if r.Throughput[0] > b.ThroughputUpper+1e-12 {
		t.Errorf("λ %v exceeds upper bound %v", r.Throughput[0], b.ThroughputUpper)
	}
	if r.Throughput[0] < b.ThroughputLower-1e-12 {
		t.Errorf("λ %v below lower bound %v", r.Throughput[0], b.ThroughputLower)
	}
	if math.Abs(b.SaturationPopulation-4.0/3.0) > 1e-12 {
		t.Errorf("N* = %v, want 4/3", b.SaturationPopulation)
	}
	if _, err := AsymptoticBounds(net, 3); err == nil {
		t.Error("want class-range error")
	}
}

func TestThroughputMonotoneInPopulation(t *testing.T) {
	// Property: for a fixed single-class network, exact throughput is
	// nondecreasing in population.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		visits := make([]float64, m)
		service := make([]float64, m)
		for i := range visits {
			visits[i] = 0.1 + rng.Float64()
			service[i] = 0.1 + 5*rng.Float64()
		}
		prev := 0.0
		for n := 1; n <= 8; n++ {
			r, err := ExactSingleClass(singleClassNet(n, visits, service))
			if err != nil {
				return false
			}
			if r.Throughput[0] < prev-1e-12 {
				return false
			}
			prev = r.Throughput[0]
		}
		return true
	}
	cfgQ := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(4242))}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Error(err)
	}
}

func TestAMVANearExactRandomNets(t *testing.T) {
	// Property: on random 2-class networks with small populations, AMVA
	// throughput stays within 15% of exact (Bard-Schweitzer worst cases sit
	// at tiny populations; typical error is a few percent). Fixed generator
	// seed keeps the property deterministic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		st := make([]queueing.Station, m)
		for i := range st {
			st[i] = queueing.Station{Name: "s", Kind: queueing.FCFS, ServiceTime: 0.2 + 3*rng.Float64()}
		}
		mkVisits := func() []float64 {
			v := make([]float64, m)
			for i := range v {
				v[i] = 0.1 + rng.Float64()
			}
			return v
		}
		net := &queueing.Network{
			Stations: st,
			Classes: []queueing.Class{
				{Name: "a", Population: 1 + rng.Intn(5), Visits: mkVisits()},
				{Name: "b", Population: 1 + rng.Intn(5), Visits: mkVisits()},
			},
		}
		exact, err := ExactMultiClass(net, 0)
		if err != nil {
			return false
		}
		approx, err := ApproxMultiClass(net, AMVAOptions{})
		if err != nil {
			return false
		}
		for c := range net.Classes {
			if math.Abs(approx.Throughput[c]-exact.Throughput[c])/exact.Throughput[c] > 0.15 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(12345))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUtilizationConsistency(t *testing.T) {
	net := twoClassNet()
	r, err := ExactMultiClass(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	for m := range net.Stations {
		u := r.TotalUtilization(net, m)
		if u < 0 || u > 1+1e-9 {
			t.Errorf("station %d utilization %v out of [0,1]", m, u)
		}
	}
}
