package mva

import "lattol/internal/fixpoint"

// Workspace holds the scratch buffers and result storage of the solvers, so
// repeated solves (parameter sweeps, fixed-point refinements) reuse one
// allocation set instead of re-allocating per call.
//
// Reuse contract:
//
//   - A Workspace may be used by one goroutine at a time. For concurrent
//     sweeps give each worker its own Workspace (see sweep.RunWithWorker).
//   - The *Result returned by (*Workspace).ApproxMultiClass and
//     (*Workspace).ExactMultiClass aliases the workspace's storage: it is
//     valid until the next solve on the same workspace, which overwrites it
//     in place. Callers that retain results across solves must copy what
//     they need first.
//   - ensure zeroes every buffer it hands out (except the fixed-point
//     iterate when warm-starting), so a reused workspace computes
//     bit-identical results to a fresh one: classes the solver skips (zero
//     population) read as zero exactly as in a newly allocated Result.
//   - Warm-start state: after a converged ApproxMultiClass the workspace
//     remembers the solution shape; a later solve with
//     AMVAOptions.WarmStart reuses the converged iterate as its initial
//     guess when the shape still matches. Any other solve on the workspace
//     (exact MVA, a failed solve) invalidates the seed.
//
// The zero value is ready to use; buffers grow on first solve and are
// reused (or regrown) on subsequent solves.
type Workspace struct {
	// q is the fixed-point iterate n_{c,m}, flattened row-major: q[c*nm+m].
	q []float64
	// colSum is Σ_c q[c][m], refreshed each iteration.
	colSum []float64
	// res is the reusable result returned to the caller. Its Wait and
	// QueueLen rows are slice headers into flat backing arrays (waitBuf,
	// qlenBuf), so a solve touches a handful of long-lived allocations.
	res     Result
	waitBuf []float64
	qlenBuf []float64

	// Warm-start state: q holds a converged warmNC×warmNM solution iff
	// warmOK.
	warmOK bool
	warmNC int
	warmNM int

	// Acceleration scratch (iterateAccel): g is the evaluated map G(x),
	// upper the per-component feasibility bounds, accel the scheme state.
	g     []float64
	upper []float64
	accel fixpoint.Accelerator

	// Exact-MVA scratch: lattice is the queue-length table over the
	// population lattice (states×nm); pop / radix / stride are the
	// mixed-radix odometer state; resA and resC are the per-station
	// residence coefficients (w = a·(1+q) + c); va / vac / base are the
	// per-class visit-weighted coefficient rows and constant cycle terms.
	lattice []float64
	pop     []int
	radix   []int
	stride  []int
	resA    []float64
	resC    []float64
	va      []float64
	vac     []float64
	base    []float64
}

// ensure sizes (and zeroes) every buffer for an nc-class, nm-station solve
// and returns the workspace's result, wired to the flat backing arrays.
// With keepIterate the fixed-point iterate q is preserved (warm start);
// callers must only set it when the previous solve had the same shape.
func (ws *Workspace) ensure(nc, nm int, keepIterate bool) *Result {
	if keepIterate {
		ws.q = ws.q[:nc*nm]
	} else {
		ws.q = resizeZero(ws.q, nc*nm)
	}
	ws.colSum = resizeZero(ws.colSum, nm)
	ws.waitBuf = resizeZero(ws.waitBuf, nc*nm)
	ws.qlenBuf = resizeZero(ws.qlenBuf, nc*nm)
	ws.res.Throughput = resizeZero(ws.res.Throughput, nc)
	ws.res.CycleTime = resizeZero(ws.res.CycleTime, nc)
	ws.res.Iterations = 0
	ws.res.Method = ""
	if len(ws.res.Wait) != nc {
		ws.res.Wait = make([][]float64, nc)
		ws.res.QueueLen = make([][]float64, nc)
	}
	for c := 0; c < nc; c++ {
		ws.res.Wait[c] = ws.waitBuf[c*nm : (c+1)*nm : (c+1)*nm]
		ws.res.QueueLen[c] = ws.qlenBuf[c*nm : (c+1)*nm : (c+1)*nm]
	}
	return &ws.res
}

// resizeZero returns a zeroed slice of length n, reusing buf's backing array
// when it is large enough.
func resizeZero(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// resizeF returns a slice of length n reusing buf's backing array when large
// enough, without zeroing: callers overwrite every element.
func resizeF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// resizeInt is resizeF for int slices.
func resizeInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
