package mva

// Workspace holds the scratch buffers and result storage of the approximate
// solver, so repeated solves (parameter sweeps, fixed-point refinements)
// reuse one allocation set instead of re-allocating per call.
//
// Reuse contract:
//
//   - A Workspace may be used by one goroutine at a time. For concurrent
//     sweeps give each worker its own Workspace (see sweep.RunWithWorker).
//   - The *Result returned by (*Workspace).ApproxMultiClass aliases the
//     workspace's storage: it is valid until the next solve on the same
//     workspace, which overwrites it in place. Callers that retain results
//     across solves must copy what they need first.
//   - ensure zeroes every buffer it hands out, so a reused workspace
//     computes bit-identical results to a fresh one: classes the solver
//     skips (zero population) read as zero exactly as in a newly allocated
//     Result.
//
// The zero value is ready to use; buffers grow on first solve and are
// reused (or regrown) on subsequent solves.
type Workspace struct {
	// q is the fixed-point iterate n_{c,m}, flattened row-major: q[c*nm+m].
	q []float64
	// colSum is Σ_c q[c][m], refreshed each iteration.
	colSum []float64
	// res is the reusable result returned to the caller. Its Wait and
	// QueueLen rows are slice headers into flat backing arrays (waitBuf,
	// qlenBuf), so a solve touches a handful of long-lived allocations.
	res     Result
	waitBuf []float64
	qlenBuf []float64
}

// ensure sizes (and zeroes) every buffer for an nc-class, nm-station solve
// and returns the workspace's result, wired to the flat backing arrays.
func (ws *Workspace) ensure(nc, nm int) *Result {
	ws.q = resizeZero(ws.q, nc*nm)
	ws.colSum = resizeZero(ws.colSum, nm)
	ws.waitBuf = resizeZero(ws.waitBuf, nc*nm)
	ws.qlenBuf = resizeZero(ws.qlenBuf, nc*nm)
	ws.res.Throughput = resizeZero(ws.res.Throughput, nc)
	ws.res.CycleTime = resizeZero(ws.res.CycleTime, nc)
	ws.res.Iterations = 0
	ws.res.Method = ""
	if len(ws.res.Wait) != nc {
		ws.res.Wait = make([][]float64, nc)
		ws.res.QueueLen = make([][]float64, nc)
	}
	for c := 0; c < nc; c++ {
		ws.res.Wait[c] = ws.waitBuf[c*nm : (c+1)*nm : (c+1)*nm]
		ws.res.QueueLen[c] = ws.qlenBuf[c*nm : (c+1)*nm : (c+1)*nm]
	}
	return &ws.res
}

// resizeZero returns a zeroed slice of length n, reusing buf's backing array
// when it is large enough.
func resizeZero(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
