// Package tolerance implements the paper's primary contribution: the
// tolerance index, which quantifies how close a multithreaded system's
// processor utilization comes to that of an ideal system in which one
// subsystem (memory or interconnection network) is ideal.
//
// Definition 4.3: tol_subsystem = U_p(subsystem) / U_p(ideal subsystem).
//
// The paper discusses two ways to obtain the ideal system's performance and
// both are provided:
//
//   - ZeroDelay ("modify system parameters"): set the subsystem's delay to
//     zero (S = 0 for the network, L = 0 for memory). This matches
//     Definition 4.1 of an ideal subsystem.
//   - ZeroRemote ("modify application parameters", network only): set
//     p_remote = 0 so no access touches the network. The paper prefers this
//     for the network because it is applicable to measurements of real
//     machines such as EARTH.
package tolerance

import (
	"fmt"

	"lattol/internal/mms"
)

// Subsystem identifies whose latency is being judged.
type Subsystem int

const (
	// Network judges the interconnection-network latency S_obs.
	Network Subsystem = iota
	// Memory judges the memory latency L_obs.
	Memory
)

func (s Subsystem) String() string {
	switch s {
	case Network:
		return "network"
	case Memory:
		return "memory"
	default:
		return fmt.Sprintf("Subsystem(%d)", int(s))
	}
}

// IdealMode selects how the ideal system is derived from the real one.
type IdealMode int

const (
	// ZeroDelay zeroes the subsystem's service time (S=0 or L=0).
	ZeroDelay IdealMode = iota
	// ZeroRemote zeroes p_remote; only meaningful for the Network subsystem.
	ZeroRemote
)

func (m IdealMode) String() string {
	switch m {
	case ZeroDelay:
		return "zero-delay"
	case ZeroRemote:
		return "zero-remote"
	default:
		return fmt.Sprintf("IdealMode(%d)", int(m))
	}
}

// Zone is the paper's three-way classification of the tolerance index.
type Zone int

const (
	// Tolerated: tol >= 0.8 — the latency is tolerated.
	Tolerated Zone = iota
	// PartiallyTolerated: 0.5 <= tol < 0.8.
	PartiallyTolerated
	// NotTolerated: tol < 0.5.
	NotTolerated
)

func (z Zone) String() string {
	switch z {
	case Tolerated:
		return "tolerated"
	case PartiallyTolerated:
		return "partially tolerated"
	case NotTolerated:
		return "not tolerated"
	default:
		return fmt.Sprintf("Zone(%d)", int(z))
	}
}

// Paper Section 4 thresholds.
const (
	ToleratedThreshold = 0.8
	PartialThreshold   = 0.5
)

// Classify maps a tolerance index to its zone.
func Classify(tol float64) Zone {
	switch {
	case tol >= ToleratedThreshold:
		return Tolerated
	case tol >= PartialThreshold:
		return PartiallyTolerated
	default:
		return NotTolerated
	}
}

// Index is the result of a tolerance evaluation.
type Index struct {
	Subsystem Subsystem
	Mode      IdealMode
	// Tol is the tolerance index U_p / U_p,ideal. Values slightly above 1 are
	// possible (paper Section 7: a finite network can relieve memory
	// contention relative to an ideal network).
	Tol float64
	// Real and Ideal are the full metric sets of both systems.
	Real, Ideal mms.Metrics
}

// Zone classifies the index.
func (i Index) Zone() Zone { return Classify(i.Tol) }

// IdealConfig derives the ideal system's configuration for a subsystem and
// mode.
func IdealConfig(cfg mms.Config, sub Subsystem, mode IdealMode) (mms.Config, error) {
	switch mode {
	case ZeroDelay:
		switch sub {
		case Network:
			cfg.SwitchTime = 0
		case Memory:
			cfg.MemoryTime = 0
		default:
			return cfg, fmt.Errorf("tolerance: unknown subsystem %d", int(sub))
		}
	case ZeroRemote:
		if sub != Network {
			return cfg, fmt.Errorf("tolerance: ZeroRemote ideal is only defined for the network subsystem")
		}
		cfg.PRemote = 0
	default:
		return cfg, fmt.Errorf("tolerance: unknown ideal mode %d", int(mode))
	}
	return cfg, nil
}

// Ratio forms the tolerance index from the two processor utilizations
// (Definition 4.3), with the degenerate zero-thread case defined as fully
// tolerated. Shared by Compute and callers that solve the two systems
// themselves (the serve layer's batch path).
func Ratio(realUp, idealUp float64) float64 {
	if idealUp > 0 {
		return realUp / idealUp
	}
	if realUp == 0 {
		return 1 // zero threads: degenerate, define as fully tolerated
	}
	return 0
}

// Compute evaluates the tolerance index of a subsystem for the given
// configuration, solving both the real and the ideal system.
func Compute(cfg mms.Config, sub Subsystem, mode IdealMode, opts mms.SolveOptions) (Index, error) {
	idealCfg, err := IdealConfig(cfg, sub, mode)
	if err != nil {
		return Index{}, err
	}
	realModel, err := mms.Build(cfg)
	if err != nil {
		return Index{}, err
	}
	real, err := realModel.Solve(opts)
	if err != nil {
		return Index{}, fmt.Errorf("tolerance: solving real system: %w", err)
	}
	idealModel, err := mms.Build(idealCfg)
	if err != nil {
		return Index{}, err
	}
	ideal, err := idealModel.Solve(opts)
	if err != nil {
		return Index{}, fmt.Errorf("tolerance: solving ideal system: %w", err)
	}
	idx := Index{Subsystem: sub, Mode: mode, Real: real, Ideal: ideal}
	idx.Tol = Ratio(real.Up, ideal.Up)
	return idx, nil
}

// NetworkIndex computes tol_network with the paper's preferred ZeroRemote
// ideal (Section 4: "modify application parameters").
func NetworkIndex(cfg mms.Config) (Index, error) {
	return Compute(cfg, Network, ZeroRemote, mms.SolveOptions{})
}

// MemoryIndex computes tol_memory with the ZeroDelay ideal (L = 0), the only
// mode that isolates the memory subsystem.
func MemoryIndex(cfg mms.Config) (Index, error) {
	return Compute(cfg, Memory, ZeroDelay, mms.SolveOptions{})
}
