package tolerance

import (
	"math"
	"testing"

	"lattol/internal/mms"
)

func TestClassifyZones(t *testing.T) {
	cases := []struct {
		tol  float64
		want Zone
	}{
		{1.0, Tolerated}, {0.8, Tolerated}, {0.93, Tolerated}, {1.05, Tolerated},
		{0.79, PartiallyTolerated}, {0.5, PartiallyTolerated}, {0.65, PartiallyTolerated},
		{0.49, NotTolerated}, {0, NotTolerated}, {0.1, NotTolerated},
	}
	for _, c := range cases {
		if got := Classify(c.tol); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.tol, got, c.want)
		}
	}
}

func TestIdealConfig(t *testing.T) {
	cfg := mms.DefaultConfig()
	netIdeal, err := IdealConfig(cfg, Network, ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if netIdeal.SwitchTime != 0 || netIdeal.MemoryTime != cfg.MemoryTime {
		t.Errorf("network zero-delay ideal: %+v", netIdeal)
	}
	memIdeal, err := IdealConfig(cfg, Memory, ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	if memIdeal.MemoryTime != 0 || memIdeal.SwitchTime != cfg.SwitchTime {
		t.Errorf("memory zero-delay ideal: %+v", memIdeal)
	}
	zr, err := IdealConfig(cfg, Network, ZeroRemote)
	if err != nil {
		t.Fatal(err)
	}
	if zr.PRemote != 0 {
		t.Errorf("zero-remote ideal keeps p_remote = %v", zr.PRemote)
	}
	if _, err := IdealConfig(cfg, Memory, ZeroRemote); err == nil {
		t.Error("ZeroRemote for memory: want error")
	}
	if _, err := IdealConfig(cfg, Subsystem(9), ZeroDelay); err == nil {
		t.Error("unknown subsystem: want error")
	}
	if _, err := IdealConfig(cfg, Network, IdealMode(9)); err == nil {
		t.Error("unknown mode: want error")
	}
}

func TestPaperTolNetworkOperatingPoint(t *testing.T) {
	// Paper Section 5: "at p_remote = 0.2, n_t = 8 yields tol_network =
	// 0.929" (R = 10). Our model should land within a few percent.
	idx, err := NetworkIndex(mms.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tol < 0.89 || idx.Tol > 0.96 {
		t.Errorf("tol_network = %v, want ≈0.93", idx.Tol)
	}
	if idx.Zone() != Tolerated {
		t.Errorf("zone = %v, want tolerated", idx.Zone())
	}
}

func TestTolNetworkDropsWithPRemote(t *testing.T) {
	cfg := mms.DefaultConfig()
	prev := math.Inf(1)
	for _, p := range []float64{0.05, 0.2, 0.4, 0.6, 0.9} {
		cfg.PRemote = p
		idx, err := NetworkIndex(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Tol > prev+1e-9 {
			t.Errorf("p=%v: tol %v rose above %v", p, idx.Tol, prev)
		}
		prev = idx.Tol
	}
	// At heavy remote traffic the network latency is not tolerated.
	cfg.PRemote = 0.9
	cfg.Threads = 8
	idx, err := NetworkIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Zone() == Tolerated {
		t.Errorf("p=0.9: tol %v should not be tolerated", idx.Tol)
	}
}

func TestHigherRunlengthImprovesTolerance(t *testing.T) {
	// Paper: increasing R improves tol_network (and raises the critical
	// p_remote).
	cfg := mms.DefaultConfig()
	cfg.PRemote = 0.4
	cfg.Runlength = 10
	r10, err := NetworkIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Runlength = 20
	r20, err := NetworkIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r20.Tol <= r10.Tol {
		t.Errorf("tol at R=20 (%v) not above R=10 (%v)", r20.Tol, r10.Tol)
	}
}

func TestMemoryToleranceSaturatesAtHighR(t *testing.T) {
	// Paper Section 6: for R >= 2L and n_t <= 6, tol_memory saturates near 1.
	cfg := mms.DefaultConfig()
	cfg.Runlength = 40
	cfg.Threads = 4
	idx, err := MemoryIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tol < 0.9 {
		t.Errorf("tol_memory = %v, want > 0.9 at R=40", idx.Tol)
	}
}

func TestMemoryToleranceDropsWithL(t *testing.T) {
	cfg := mms.DefaultConfig()
	cfg.MemoryTime = 10
	l10, err := MemoryIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MemoryTime = 20
	l20, err := MemoryIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l20.Tol >= l10.Tol {
		t.Errorf("tol_memory at L=20 (%v) not below L=10 (%v)", l20.Tol, l10.Tol)
	}
}

func TestBothModesAgreeQualitatively(t *testing.T) {
	// ZeroDelay and ZeroRemote ideals give close tol_network values in
	// moderate-traffic regimes (paper Section 4 presents them as
	// alternatives).
	cfg := mms.DefaultConfig()
	zd, err := Compute(cfg, Network, ZeroDelay, mms.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	zr, err := Compute(cfg, Network, ZeroRemote, mms.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zd.Tol-zr.Tol) > 0.05 {
		t.Errorf("modes diverge: zero-delay %v vs zero-remote %v", zd.Tol, zr.Tol)
	}
}

func TestZeroThreadsDegenerate(t *testing.T) {
	cfg := mms.DefaultConfig()
	cfg.Threads = 0
	idx, err := NetworkIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tol != 1 {
		t.Errorf("zero-thread tol = %v, want 1", idx.Tol)
	}
}

func TestComputeRejectsBadConfig(t *testing.T) {
	cfg := mms.DefaultConfig()
	cfg.K = 0
	if _, err := NetworkIndex(cfg); err == nil {
		t.Error("want error for invalid config")
	}
}

func TestStringers(t *testing.T) {
	if Network.String() != "network" || Memory.String() != "memory" ||
		Subsystem(9).String() != "Subsystem(9)" {
		t.Error("subsystem strings")
	}
	if ZeroDelay.String() != "zero-delay" || ZeroRemote.String() != "zero-remote" ||
		IdealMode(9).String() != "IdealMode(9)" {
		t.Error("mode strings")
	}
	if Tolerated.String() != "tolerated" || PartiallyTolerated.String() != "partially tolerated" ||
		NotTolerated.String() != "not tolerated" || Zone(9).String() != "Zone(9)" {
		t.Error("zone strings")
	}
}

func TestTolNetworkRisesWithThreads(t *testing.T) {
	// Paper: with more threads there is more work to overlap, tol_network
	// rises (until saturation).
	cfg := mms.DefaultConfig()
	cfg.PRemote = 0.2
	prev := 0.0
	for _, nt := range []int{1, 2, 4, 8} {
		cfg.Threads = nt
		idx, err := NetworkIndex(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Tol < prev-0.02 {
			t.Errorf("n_t=%d: tol %v fell well below previous %v", nt, idx.Tol, prev)
		}
		prev = idx.Tol
	}
}
