package tolerance_test

import (
	"fmt"

	"lattol/internal/mms"
	"lattol/internal/tolerance"
)

// Quantify whether the default system tolerates its network and memory
// latencies.
func ExampleNetworkIndex() {
	cfg := mms.DefaultConfig()
	net, err := tolerance.NetworkIndex(cfg)
	if err != nil {
		panic(err)
	}
	mem, err := tolerance.MemoryIndex(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tol_network = %.3f (%s)\n", net.Tol, net.Zone())
	fmt.Printf("tol_memory  = %.3f (%s)\n", mem.Tol, mem.Zone())
	// Output:
	// tol_network = 0.922 (tolerated)
	// tol_memory  = 0.865 (tolerated)
}

// The zone classification implements the paper's 0.8 / 0.5 thresholds.
func ExampleClassify() {
	for _, tol := range []float64{0.95, 0.65, 0.30} {
		fmt.Println(tolerance.Classify(tol))
	}
	// Output:
	// tolerated
	// partially tolerated
	// not tolerated
}
