package mms

import (
	"fmt"

	"lattol/internal/mva"
	"lattol/internal/validate"
)

// BatchItem is one operating point of a batch solve.
type BatchItem struct {
	// Config describes the point; it is elaborated with Build unless Model
	// is set.
	Config Config
	// Model, when non-nil, is the prebuilt model solved for this item and
	// Config is ignored. Passing prebuilt models keeps repeated batches
	// allocation-free.
	Model *Model
	// Solver selects the solution procedure for this item. SymmetricAMVA
	// items (the default) ride the lockstep batch kernel; FullAMVA and
	// ExactMVA items fall back to scalar solves on the same workspace.
	Solver Solver
}

// BatchResult is the positional outcome of one batch item.
type BatchResult struct {
	Metrics Metrics
	Err     error
}

// SolveBatch solves many operating points as one batch and reports each
// outcome positionally: a failing item (invalid configuration, non-converged
// lane) never affects its neighbors. Symmetric-AMVA items of equal station
// shape are iterated in lockstep by the mva batch kernel — with warm-start
// continuation between the points and across successive batches on the same
// workspace — and land on the same fixed point as item-by-item Model.Solve
// calls (same raw-residual stopping rule and tolerance).
//
// opts supplies Tolerance, MaxIterations and the Workspace; opts.Solver is
// ignored (each item carries its own) and Accel/WarmStart apply only to the
// scalar-fallback items, since the kernel's continuation seeding subsumes
// them.
func SolveBatch(items []BatchItem, opts SolveOptions) []BatchResult {
	out := make([]BatchResult, len(items))
	SolveBatchInto(out, items, opts)
	return out
}

// SolveBatchInto is SolveBatch writing into caller-provided storage, so
// steady-state callers (benchmarks, the serve layer's worker loop) can keep
// the solve path allocation-free. len(dst) must equal len(items).
func SolveBatchInto(dst []BatchResult, items []BatchItem, opts SolveOptions) {
	if len(dst) != len(items) {
		panic(fmt.Sprintf("mms: SolveBatchInto: len(dst) = %d, want len(items) = %d", len(dst), len(items)))
	}
	if len(items) == 0 {
		return
	}
	if err := opts.Validate(); err != nil {
		for i := range dst {
			dst[i] = BatchResult{Err: err}
		}
		return
	}
	opts = opts.withDefaults()
	ws := opts.Workspace
	if ws == nil {
		ws = getWorkspace()
		defer putWorkspace(ws)
		opts.Workspace = ws
	}
	models := resizeModels(ws.batchModels, len(items))
	ws.batchModels = models
	done := resizeBool(ws.batchDone, len(items))
	ws.batchDone = done

	// Pass 1: elaborate models, dispatch scalar-only items, resolve the
	// trivial ones. Whatever remains is symmetric-AMVA work for the kernel.
	for i := range items {
		dst[i] = BatchResult{}
		done[i] = false
		m := items[i].Model
		if m == nil {
			var err error
			if m, err = Build(items[i].Config); err != nil {
				dst[i].Err = err
				done[i] = true
				models[i] = nil
				continue
			}
		}
		models[i] = m
		switch items[i].Solver {
		case SymmetricAMVA:
			if m.cfg.Threads == 0 {
				done[i] = true // zero-valued Metrics, as in Model.Solve
			}
		case FullAMVA, ExactMVA:
			sopts := opts
			sopts.Solver = items[i].Solver
			dst[i].Metrics, dst[i].Err = m.Solve(sopts)
			done[i] = true
		default:
			dst[i].Err = validate.Fieldf("mms.BatchItem", "Solver",
				"= %d, want SymmetricAMVA, FullAMVA or ExactMVA", int(items[i].Solver))
			done[i] = true
		}
	}

	// Pass 2: partition the kernel work by merged station shape and run each
	// shape as one batch, preserving the caller's item order within a shape
	// so the kernel's cascade seeding walks the points in submission order.
	shapes := resizeShapes(ws.batchShapes, len(items))
	ws.batchShapes = shapes
	for i := range items {
		if !done[i] {
			shapes[i] = batchShapeOf(models[i])
		}
	}
	for i := range items {
		if done[i] {
			continue
		}
		idx := ws.batchIdx[:0]
		for j := i; j < len(items); j++ {
			if !done[j] && shapes[j] == shapes[i] {
				idx = append(idx, j)
				done[j] = true
			}
		}
		ws.batchIdx = idx
		solveSymmetricBatch(ws, models, idx, shapes[i], opts, dst)
	}
}

// batchShape is the merged station signature of one lane: how many distinct
// (visit ratio) values each role carries once zero-visit stations are
// dropped. The symmetric MMS topology makes most stations of a role
// identical — on the class-0 chain, stations of one role share service time
// and server count, so stations with equal visit ratios are exact copies of
// each other and hold identical queue lengths at every Bard–Schweitzer
// iterate. Each distinct value becomes ONE kernel row whose physical
// multiplicity (mva.BatchWorkspace.SetWeight) is the copy count, shrinking
// the lockstep loops by the dedup factor (a 4×4 torus under the default
// distance-decay pattern: 49 physical stations → 22 rows). Lanes may only
// share a lockstep batch when their row/group layout agrees, hence the
// partition on this signature.
type batchShape struct {
	mem, out, in int
}

// rows returns the kernel station count of the merged layout (processor +
// distinct rows per role).
func (sh batchShape) rows() int { return 1 + sh.mem + sh.out + sh.in }

// distinctVisits compacts vis into (value, physical count) pairs, dropping
// zero visits, first-seen order. vals/counts are reused scratch.
func distinctVisits(vis, vals, counts []float64) ([]float64, []float64) {
	vals, counts = vals[:0], counts[:0]
	for _, x := range vis {
		if x == 0 {
			continue
		}
		found := false
		for k := range vals {
			if vals[k] == x {
				counts[k]++
				found = true
				break
			}
		}
		if !found {
			vals = append(vals, x)
			counts = append(counts, 1)
		}
	}
	return vals, counts
}

// batchShapeOf reads a model's merged station signature off the row lists
// cached at Build.
func batchShapeOf(m *Model) batchShape {
	return batchShape{
		mem: len(m.mergeVals[0]),
		out: len(m.mergeVals[1]),
		in:  len(m.mergeVals[2]),
	}
}

// solveSymmetricBatch loads one merged shape's items into the SoA kernel —
// the symmetric solver's class-0 layout (0 = processor, then memory,
// outbound, inbound role groups) with each role collapsed to its distinct
// visit values as weighted representative rows — and assembles each lane's
// metrics exactly as solveSymmetric does, the role sums weighted by the
// physical station counts.
func solveSymmetricBatch(ws *Workspace, models []*Model, idx []int, sh batchShape, opts SolveOptions, dst []BatchResult) {
	bw := &ws.batch
	bw.Reset(len(idx), sh.rows(), 4)
	bw.SetGroup(0, int(Processor))
	for r := 0; r < sh.mem; r++ {
		bw.SetGroup(1+r, int(Memory))
	}
	for r := 0; r < sh.out; r++ {
		bw.SetGroup(1+sh.mem+r, int(Outbound))
	}
	for r := 0; r < sh.in; r++ {
		bw.SetGroup(1+sh.mem+sh.out+r, int(Inbound))
	}
	// Per-lane role parameters, hoisted so the row-major load below reads
	// four floats per lane instead of re-deriving them from the Config per
	// element.
	role := resizeF(ws.batchRole, 4*len(idx))
	ws.batchRole = role
	for b, it := range idx {
		cfg := &models[it].cfg
		bw.SetPopulation(b, float64(cfg.Threads))
		bw.Set(0, b, 1, cfg.processorService(), 1)
		role[4*b] = cfg.MemoryTime
		role[4*b+1] = float64(cfg.memoryPorts())
		role[4*b+2] = cfg.SwitchTime
		role[4*b+3] = float64(cfg.switchPorts())
	}
	// Role rows load row-major — the kernel's buffers are station-major, so
	// walking the lanes innermost writes each row contiguously instead of
	// striding a cache line per store.
	rolesOf := [3]int{sh.mem, sh.out, sh.in}
	row := 1
	for r := 0; r < 3; r++ {
		off := 2
		if r == 0 {
			off = 0
		}
		for k := 0; k < rolesOf[r]; k++ {
			for b, it := range idx {
				m := models[it]
				bw.Set(row, b, m.mergeVals[r][k], role[4*b+off], role[4*b+off+1])
				bw.SetWeight(row, b, m.mergeCounts[r][k])
			}
			row++
		}
	}
	bw.Run(mva.BatchOptions{Tolerance: opts.Tolerance, MaxIterations: opts.MaxIterations})
	for b, it := range idx {
		if err := bw.Err(b); err != nil {
			dst[it].Err = fmt.Errorf("mms: batch item %d: %w", it, err)
			continue
		}
		lambda := bw.Lambda(b)
		var lObs, sObsSum float64
		for r := 1; r <= sh.mem; r++ {
			lObs += bw.Weight(r, b) * bw.Visit(r, b) * bw.Residence(r, b)
		}
		for r := 1 + sh.mem; r < sh.rows(); r++ {
			sObsSum += bw.Weight(r, b) * bw.Visit(r, b) * bw.Residence(r, b)
		}
		met := models[it].assembleMetrics(lambda, lObs, sObsSum)
		met.Iterations = bw.Iterations(b)
		dst[it].Metrics = met
	}
}

func resizeModels(buf []*Model, n int) []*Model {
	if cap(buf) < n {
		return make([]*Model, n)
	}
	return buf[:n]
}

func resizeBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func resizeShapes(buf []batchShape, n int) []batchShape {
	if cap(buf) < n {
		return make([]batchShape, n)
	}
	return buf[:n]
}
