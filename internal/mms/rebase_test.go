package mms

import (
	"testing"
)

// TestRebaseMatchesBuild verifies a rebased model solves bit-for-bit like a
// freshly built one across every visit-preserving knob.
func TestRebaseMatchesBuild(t *testing.T) {
	base, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	muts := []struct {
		name string
		mut  func(*Config)
	}{
		{"threads", func(c *Config) { c.Threads = 3 }},
		{"runlength", func(c *Config) { c.Runlength = 25 }},
		{"memtime", func(c *Config) { c.MemoryTime = 4 }},
		{"swtime", func(c *Config) { c.SwitchTime = 7 }},
		{"ctxswitch", func(c *Config) { c.ContextSwitch = 2 }},
		{"memports", func(c *Config) { c.MemoryPorts = 2 }},
		{"swports", func(c *Config) { c.SwitchPorts = 2 }},
	}
	for _, tc := range muts {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			rebased, ok := base.Rebase(cfg)
			if !ok {
				t.Fatalf("Rebase(%+v) refused", cfg)
			}
			fresh, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rebased.Solve(SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Solve(SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("rebased solve %+v != fresh solve %+v", got, want)
			}
		})
	}
}

// TestRebaseRefusals verifies Rebase refuses visit-changing or invalid
// configurations.
func TestRebaseRefusals(t *testing.T) {
	base, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	muts := []struct {
		name string
		mut  func(*Config)
	}{
		{"k", func(c *Config) { c.K = 2 }},
		{"premote", func(c *Config) { c.PRemote = 0.5 }},
		{"psw", func(c *Config) { c.Psw = 0.9 }},
		{"invalid", func(c *Config) { c.Threads = -1 }},
	}
	for _, tc := range muts {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			if _, ok := base.Rebase(cfg); ok {
				t.Errorf("Rebase(%+v) accepted", cfg)
			}
		})
	}
}
