package mms

import (
	"math"
	"testing"

	"lattol/internal/topology"
)

func TestHeteroBalancedMatchesSymmetric(t *testing.T) {
	cfg := DefaultConfig()
	threads := make([]int, 16)
	for i := range threads {
		threads[i] = cfg.Threads
	}
	h, err := BuildHeterogeneous(cfg, threads)
	if err != nil {
		t.Fatal(err)
	}
	met, err := h.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met.MeanUp-base.Up) > 1e-6 {
		t.Errorf("balanced hetero mean U_p %v != symmetric %v", met.MeanUp, base.Up)
	}
	if met.MaxUp-met.MinUp > 1e-6 {
		t.Errorf("balanced hetero spread %v", met.MaxUp-met.MinUp)
	}
}

func TestHeteroImbalanceCostsThroughput(t *testing.T) {
	// U_p is concave in n_t, so moving threads from starved PEs to loaded
	// ones loses total throughput (quantifying the paper's even-load
	// assumption).
	cfg := DefaultConfig()
	tor := topology.MustTorus(cfg.K)
	prev := math.Inf(1)
	for _, spread := range []int{0, 2, 4, 6} {
		threads, err := Imbalance(tor, 16*8, spread)
		if err != nil {
			t.Fatal(err)
		}
		h, err := BuildHeterogeneous(cfg, threads)
		if err != nil {
			t.Fatal(err)
		}
		met, err := h.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if met.TotalThroughput > prev+1e-9 {
			t.Errorf("spread %d: throughput %v rose above %v", spread, met.TotalThroughput, prev)
		}
		prev = met.TotalThroughput
		if spread > 0 && met.MaxUp-met.MinUp < 0.01 {
			t.Errorf("spread %d: expected per-PE spread, got %v", spread, met.MaxUp-met.MinUp)
		}
	}
}

func TestHeteroZeroThreadPE(t *testing.T) {
	cfg := DefaultConfig()
	threads := make([]int, 16)
	for i := range threads {
		threads[i] = 8
	}
	threads[3] = 0 // one idle PE
	h, err := BuildHeterogeneous(cfg, threads)
	if err != nil {
		t.Fatal(err)
	}
	met, err := h.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.PerClassUp[3] != 0 {
		t.Errorf("idle PE has U_p %v", met.PerClassUp[3])
	}
	if met.MinUp != 0 {
		t.Errorf("MinUp %v", met.MinUp)
	}
	// The other PEs keep working.
	if met.PerClassUp[0] < 0.5 {
		t.Errorf("active PE U_p %v", met.PerClassUp[0])
	}
}

func TestHeteroAllIdle(t *testing.T) {
	cfg := DefaultConfig()
	h, err := BuildHeterogeneous(cfg, make([]int, 16))
	if err != nil {
		t.Fatal(err)
	}
	met, err := h.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.MeanUp != 0 || met.TotalThroughput != 0 {
		t.Errorf("all-idle system: %+v", met)
	}
}

func TestHeteroValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := BuildHeterogeneous(cfg, []int{1, 2}); err == nil {
		t.Error("want length error")
	}
	bad := make([]int, 16)
	bad[0] = -1
	if _, err := BuildHeterogeneous(cfg, bad); err == nil {
		t.Error("want negative error")
	}
	cfg.K = 0
	if _, err := BuildHeterogeneous(cfg, nil); err == nil {
		t.Error("want config error")
	}
}

func TestImbalanceGenerator(t *testing.T) {
	tor := topology.MustTorus(4)
	threads, err := Imbalance(tor, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	high, low := 0, 0
	for _, nt := range threads {
		total += nt
		switch nt {
		case 11:
			high++
		case 5:
			low++
		default:
			t.Fatalf("unexpected count %d", nt)
		}
	}
	if total != 128 || high != 8 || low != 8 {
		t.Errorf("total %d, high %d, low %d", total, high, low)
	}
	if _, err := Imbalance(tor, 127, 0); err == nil {
		t.Error("want divisibility error")
	}
	if _, err := Imbalance(tor, 128, 9); err == nil {
		t.Error("want spread range error")
	}
	if _, err := Imbalance(topology.MustTorus(3), 9, 1); err == nil {
		t.Error("want even-PE error")
	}
}
