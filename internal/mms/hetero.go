package mms

import (
	"fmt"
	"math"

	"lattol/internal/mva"
	"lattol/internal/queueing"
	"lattol/internal/topology"
)

// HeteroModel is an MMS with per-PE thread counts. The paper assumes an
// evenly loaded SPMD workload; this variant quantifies what load imbalance
// costs by giving each processor its own population while keeping the
// per-thread behaviour (R, p_remote, pattern) identical. It is solved with
// the general multiclass AMVA because translation symmetry no longer holds
// across populations.
type HeteroModel struct {
	base    *Model
	threads []int
}

// HeteroMetrics reports per-PE utilizations for a heterogeneous system.
type HeteroMetrics struct {
	// PerClassUp[i] is U_p of PE i.
	PerClassUp []float64
	// MinUp, MaxUp, MeanUp aggregate PerClassUp.
	MinUp, MaxUp, MeanUp float64
	// TotalThroughput is Σ_i λ_i·R — the machine-wide rate of useful cycles
	// relative to runlength (equals P·U_p when balanced).
	TotalThroughput float64
	// Iterations is the AMVA iteration count.
	Iterations int
}

// BuildHeterogeneous builds an MMS whose PE i runs threads[i] threads. The
// Threads field of cfg is ignored; len(threads) must equal K².
func BuildHeterogeneous(cfg Config, threads []int) (*HeteroModel, error) {
	probe := cfg
	probe.Threads = 1 // validate the remaining fields
	base, err := Build(probe)
	if err != nil {
		return nil, err
	}
	if len(threads) != base.Torus().Nodes() {
		return nil, fmt.Errorf("mms: %d thread counts for %d PEs", len(threads), base.Torus().Nodes())
	}
	for i, nt := range threads {
		if nt < 0 {
			return nil, fmt.Errorf("mms: PE %d has %d threads", i, nt)
		}
	}
	return &HeteroModel{base: base, threads: append([]int(nil), threads...)}, nil
}

// Network builds the multiclass network with per-class populations.
func (h *HeteroModel) Network() *queueing.Network {
	net := h.base.Network()
	for c := range net.Classes {
		net.Classes[c].Population = h.threads[c]
		if h.threads[c] == 0 {
			// A PE with no threads visits nothing.
			for m := range net.Classes[c].Visits {
				net.Classes[c].Visits[m] = 0
			}
		}
	}
	return net
}

// Solve runs the general multiclass AMVA and aggregates per-PE metrics.
func (h *HeteroModel) Solve(opts SolveOptions) (HeteroMetrics, error) {
	opts = opts.withDefaults()
	net := h.Network()
	out := HeteroMetrics{
		PerClassUp: make([]float64, len(h.threads)),
		MinUp:      math.Inf(1),
		MaxUp:      math.Inf(-1),
	}
	if net.TotalPopulation() == 0 {
		out.MinUp, out.MaxUp = 0, 0
		return out, nil
	}
	ws := opts.Workspace
	if ws == nil {
		ws = getWorkspace()
		defer putWorkspace(ws)
	}
	// res aliases the workspace; it is consumed before the workspace is
	// released.
	res, err := ws.mvaWS.ApproxMultiClass(net, mva.AMVAOptions{
		Tolerance:     opts.Tolerance,
		MaxIterations: opts.MaxIterations,
		Accel:         opts.Accel,
		WarmStart:     opts.WarmStart,
	})
	if err != nil {
		return HeteroMetrics{}, err
	}
	out.Iterations = res.Iterations
	r := h.base.cfg.processorService()
	var sum float64
	for c := range out.PerClassUp {
		up := res.Throughput[c] * r
		out.PerClassUp[c] = up
		sum += up
		out.MinUp = math.Min(out.MinUp, up)
		out.MaxUp = math.Max(out.MaxUp, up)
	}
	out.MeanUp = sum / float64(len(out.PerClassUp))
	out.TotalThroughput = sum
	return out, nil
}

// Imbalance distributes `total` threads over P PEs with the given spread:
// half the PEs (round-robin by parity of a diagonal index) get extra threads
// and the other half lose the same number, preserving the total. spread = 0
// is the balanced SPMD workload. It is a convenience generator for imbalance
// studies.
func Imbalance(t *topology.Torus, total, spread int) ([]int, error) {
	p := t.Nodes()
	if total < 0 || total%p != 0 {
		return nil, fmt.Errorf("mms: total threads %d not divisible by %d PEs", total, p)
	}
	per := total / p
	if spread < 0 || spread > per {
		return nil, fmt.Errorf("mms: spread %d out of range [0, %d]", spread, per)
	}
	if p%2 != 0 && spread != 0 {
		return nil, fmt.Errorf("mms: imbalance needs an even number of PEs, got %d", p)
	}
	out := make([]int, p)
	for i := range out {
		x, y := t.Coord(topology.Node(i))
		if (x+y)%2 == 0 {
			out[i] = per + spread
		} else {
			out[i] = per - spread
		}
	}
	return out, nil
}
