package mms

import (
	"math"
	"strings"

	"lattol/internal/sweep"
	"lattol/internal/validate"
)

// Param identifies one sweepable model parameter. It is the shared registry
// behind "how does X move when I turn knob Y" sweeps: cmd/lattolsweep and
// the /v1/sweep HTTP endpoint both resolve knob names through ParseParam and
// apply values through Apply, so the set of sweepable knobs (and their
// integer-rounding rules) is defined exactly once.
type Param struct {
	name    string
	integer bool
	apply   func(*Config, float64)
}

var params = []Param{
	{"nt", true, func(c *Config, v float64) { c.Threads = int(math.Round(v)) }},
	{"r", false, func(c *Config, v float64) { c.Runlength = v }},
	{"l", false, func(c *Config, v float64) { c.MemoryTime = v }},
	{"s", false, func(c *Config, v float64) { c.SwitchTime = v }},
	{"c", false, func(c *Config, v float64) { c.ContextSwitch = v }},
	{"premote", false, func(c *Config, v float64) { c.PRemote = v }},
	{"psw", false, func(c *Config, v float64) { c.Psw = v }},
	{"k", true, func(c *Config, v float64) { c.K = int(math.Round(v)) }},
	{"memports", true, func(c *Config, v float64) { c.MemoryPorts = int(math.Round(v)) }},
	{"swports", true, func(c *Config, v float64) { c.SwitchPorts = int(math.Round(v)) }},
}

// ParseParam resolves a sweepable parameter by name. Unknown names yield a
// field-named error listing the valid knobs.
func ParseParam(name string) (Param, error) {
	for _, p := range params {
		if p.name == name {
			return p, nil
		}
	}
	return Param{}, validate.Fieldf("mms.Param", "Name", "= %q, want one of %s", name, strings.Join(ParamNames(), ", "))
}

// ParamNames lists every sweepable parameter name, in registry order.
func ParamNames() []string {
	names := make([]string, len(params))
	for i, p := range params {
		names[i] = p.name
	}
	return names
}

// String returns the parameter's registry name.
func (p Param) String() string { return p.name }

// Integer reports whether the parameter is integral: swept values are
// rounded and deduplicated.
func (p Param) Integer() bool { return p.integer }

// Apply sets the parameter on cfg. The resulting configuration is not
// validated here — callers validate after applying, so a swept value that
// leaves the legal range is reported against the Config field it set.
func (p Param) Apply(cfg *Config, v float64) { p.apply(cfg, v) }

// Grid returns the swept values: steps points evenly spaced over [from, to],
// rounded to unique integers (order-preserving) for integral parameters.
func (p Param) Grid(from, to float64, steps int) []float64 {
	values := sweep.Linspace(from, to, steps)
	if !p.integer {
		return values
	}
	seen := make(map[int]bool, len(values))
	out := values[:0]
	for _, v := range values {
		i := int(math.Round(v))
		if !seen[i] {
			seen[i] = true
			out = append(out, float64(i))
		}
	}
	return out
}
