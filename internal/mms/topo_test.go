package mms

import (
	"math"
	"testing"

	"lattol/internal/topology"
)

func TestTopoModelOnTorusMatchesSymmetric(t *testing.T) {
	// Running the general-topology builder on a torus must reproduce the
	// symmetric model's solution (it solves the identical network with the
	// full AMVA).
	cfg := DefaultConfig()
	tm, err := BuildOnTopology(cfg, topology.MustTorus(cfg.K))
	if err != nil {
		t.Fatal(err)
	}
	met, err := tm.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met.MeanUp-base.Up) > 1e-6 {
		t.Errorf("torus TopoModel U_p %v != symmetric %v", met.MeanUp, base.Up)
	}
	if math.Abs(met.MeanSObs-base.SObs) > 1e-3 {
		t.Errorf("torus TopoModel S_obs %v != symmetric %v", met.MeanSObs, base.SObs)
	}
	if math.Abs(met.MeanLObs-base.LObs) > 1e-3 {
		t.Errorf("torus TopoModel L_obs %v != symmetric %v", met.MeanLObs, base.LObs)
	}
	if met.MaxUp-met.MinUp > 1e-6 {
		t.Errorf("torus should be symmetric, spread %v", met.MaxUp-met.MinUp)
	}
}

func TestMeshWorseThanTorus(t *testing.T) {
	// Without wraparound links the mesh has longer routes and concentrated
	// center traffic: d_avg and S_obs rise, U_p falls.
	cfg := DefaultConfig()
	cfg.PRemote = 0.4
	torus, err := BuildOnTopology(cfg, topology.MustTorus(4))
	if err != nil {
		t.Fatal(err)
	}
	tMet, err := torus.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := BuildOnTopology(cfg, topology.MustMesh(4))
	if err != nil {
		t.Fatal(err)
	}
	mMet, err := mesh.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mMet.MeanUp >= tMet.MeanUp {
		t.Errorf("mesh U_p %v not below torus %v", mMet.MeanUp, tMet.MeanUp)
	}
	if mMet.MeanSObs <= tMet.MeanSObs {
		t.Errorf("mesh S_obs %v not above torus %v", mMet.MeanSObs, tMet.MeanSObs)
	}
}

func TestMeshPerPESpread(t *testing.T) {
	// On a mesh the PEs are not equivalent: expect a visible spread in U_p
	// between corner and center nodes.
	cfg := DefaultConfig()
	cfg.PRemote = 0.4
	mesh, err := BuildOnTopology(cfg, topology.MustMesh(4))
	if err != nil {
		t.Fatal(err)
	}
	met, err := mesh.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.MaxUp-met.MinUp < 0.005 {
		t.Errorf("mesh per-PE spread %v, want visible asymmetry", met.MaxUp-met.MinUp)
	}
}

func TestTopoModelLocalOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PRemote = 0
	mesh, err := BuildOnTopology(cfg, topology.MustMesh(3))
	if err != nil {
		t.Fatal(err)
	}
	met, err := mesh.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.Threads) / float64(cfg.Threads+1)
	if math.Abs(met.MeanUp-want) > 1e-6 {
		t.Errorf("local-only mesh U_p %v, want %v", met.MeanUp, want)
	}
	if met.MeanSObs != 0 {
		t.Errorf("local-only S_obs %v", met.MeanSObs)
	}
}

func TestTopoModelZeroThreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 0
	mesh, err := BuildOnTopology(cfg, topology.MustMesh(3))
	if err != nil {
		t.Fatal(err)
	}
	met, err := mesh.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.MeanUp != 0 {
		t.Errorf("zero-thread mesh: %+v", met)
	}
}

func TestTopoModelValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runlength = -1
	if _, err := BuildOnTopology(cfg, topology.MustMesh(3)); err == nil {
		t.Error("want error for invalid config")
	}
	cfg = DefaultConfig()
	cfg.PRemote = 0.2
	if _, err := BuildOnTopology(cfg, topology.MustMesh(1)); err == nil {
		t.Error("want error for 1-node network with remote traffic")
	}
	cfg.PRemote = math.NaN()
	if _, err := BuildOnTopology(cfg, topology.MustMesh(3)); err == nil {
		t.Error("want error for NaN PRemote")
	}
}

func TestTopoModelVisitConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PRemote = 0.3
	mesh, err := BuildOnTopology(cfg, topology.MustMesh(4))
	if err != nil {
		t.Fatal(err)
	}
	net := mesh.Network()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	for c := range mesh.mem {
		var sumMem, sumOut float64
		for j := range mesh.mem[c] {
			sumMem += mesh.mem[c][j]
			sumOut += mesh.out[c][j]
		}
		if math.Abs(sumMem-1) > 1e-9 {
			t.Errorf("class %d: Σem = %v", c, sumMem)
		}
		if math.Abs(sumOut-2*cfg.PRemote) > 1e-9 {
			t.Errorf("class %d: Σeo = %v, want %v", c, sumOut, 2*cfg.PRemote)
		}
	}
}
