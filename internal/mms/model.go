package mms

import (
	"fmt"
	"sync"

	"lattol/internal/access"
	"lattol/internal/queueing"
	"lattol/internal/topology"
)

// StationRole identifies the subsystem a station models.
type StationRole int

const (
	// Processor is the multithreaded processor of a PE.
	Processor StationRole = iota
	// Memory is the distributed-shared-memory module of a PE.
	Memory
	// Outbound is the switch through which a PE injects messages into the IN
	// and through which memory responses leave their home node.
	Outbound
	// Inbound is the switch that accepts messages from the IN at each hop and
	// delivers them at the destination.
	Inbound
)

func (r StationRole) String() string {
	switch r {
	case Processor:
		return "processor"
	case Memory:
		return "memory"
	case Outbound:
		return "outbound"
	case Inbound:
		return "inbound"
	default:
		return fmt.Sprintf("StationRole(%d)", int(r))
	}
}

// Model is a fully elaborated MMS instance: topology, access pattern and the
// per-class visit ratios of the closed queueing network of the paper's
// Figure 2.
type Model struct {
	cfg     Config
	torus   *topology.Torus
	pattern access.Pattern // nil when PRemote == 0 or K == 1

	// Class-0 visit ratios per PE index; other classes are torus
	// translations of these (the workload is SPMD-symmetric).
	visitMem []float64 // em[0][j]
	visitOut []float64 // eo[0][j]
	visitIn  []float64 // ei[0][j]

	// Merged batch-kernel rows, one (visit value, physical count) list per
	// role (memory, outbound, inbound) with zero-visit stations dropped —
	// computed once at Build so SolveBatch's per-item kernel load reads
	// plain cached slices (see batchShapeOf, solveSymmetricBatch).
	mergeVals   [3][]float64
	mergeCounts [3][]float64

	// netOnce/net cache the network for the internal read-only solver path;
	// see network().
	netOnce sync.Once
	net     *queueing.Network
}

// Build elaborates a configuration into a model.
func Build(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	torus, err := topology.NewTorus(cfg.K)
	if err != nil {
		return nil, err
	}
	pat, err := cfg.pattern(torus)
	if err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, torus: torus, pattern: pat}
	m.computeVisits()
	return m, nil
}

// computeVisits fills the class-0 visit ratios per thread cycle:
//
//	memory_j:   (1-p) for j = 0, p·Prob(0,j) otherwise
//	outbound_0: p              (every remote request is injected here)
//	outbound_j: em[0][j], j≠0  (every response leaves its home node here)
//	inbound_j:  forward- plus return-route traversals through node j
func (m *Model) computeVisits() {
	var q func(topology.Node) float64
	if m.pattern != nil {
		q = func(dst topology.Node) float64 { return m.pattern.Prob(0, dst) }
	}
	m.visitMem, m.visitOut, m.visitIn = visitsFrom(m.torus, 0, m.cfg.PRemote, q)
	for r, vis := range [3][]float64{m.visitMem, m.visitOut, m.visitIn} {
		m.mergeVals[r], m.mergeCounts[r] = distinctVisits(vis, nil, nil)
	}
}

// visitsFrom computes the per-cycle visit ratios of the class anchored at
// `home`, indexed by absolute node: the thread accesses its local memory
// with probability 1-p and the remote module dst with probability
// p·q(dst); requests enter the network through outbound[home], traverse the
// inbound switch of every node on the dimension-order route (destination
// included), and responses return through outbound[dst] and the reverse
// route. q must sum to 1 over dst ≠ home (it is ignored when p == 0).
func visitsFrom(t topology.Network, home topology.Node, p float64, q func(topology.Node) float64) (mem, out, in []float64) {
	n := t.Nodes()
	mem = make([]float64, n)
	out = make([]float64, n)
	in = make([]float64, n)
	mem[home] = 1 - p
	if p == 0 || q == nil {
		return mem, out, in
	}
	out[home] = p
	for j := 0; j < n; j++ {
		dst := topology.Node(j)
		if dst == home {
			continue
		}
		em := p * q(dst)
		mem[j] = em
		out[j] += em
		if em == 0 {
			continue
		}
		for _, hop := range t.Route(home, dst) {
			in[hop] += em
		}
		for _, hop := range t.Route(dst, home) {
			in[hop] += em
		}
	}
	return mem, out, in
}

// Config returns the configuration the model was built from.
func (m *Model) Config() Config { return m.cfg }

// Rebase returns a model for cfg that reuses this model's elaborated
// topology and visit ratios. It succeeds only when cfg differs from the
// model's configuration in fields the visits do not depend on (thread count,
// service times, ports): a probe sequence turning one such knob — the common
// case for inverse solves — re-elaborates nothing. The shared slices are
// read-only in both models. cfg.Pattern must be nil or a comparable
// implementation (the same contract as configuration equality elsewhere).
func (m *Model) Rebase(cfg Config) (*Model, bool) {
	old := m.cfg
	if cfg.K != old.K || cfg.PRemote != old.PRemote || cfg.Psw != old.Psw ||
		cfg.GeometricMode != old.GeometricMode || cfg.Pattern != old.Pattern {
		return nil, false
	}
	if err := cfg.Validate(); err != nil {
		return nil, false
	}
	n := &Model{cfg: cfg, torus: m.torus, pattern: m.pattern,
		visitMem: m.visitMem, visitOut: m.visitOut, visitIn: m.visitIn,
		mergeVals: m.mergeVals, mergeCounts: m.mergeCounts}
	return n, true
}

// Torus returns the model's topology.
func (m *Model) Torus() *topology.Torus { return m.torus }

// Pattern returns the resolved remote access pattern (nil when remote
// accesses are impossible).
func (m *Model) Pattern() access.Pattern { return m.pattern }

// MeanDistance returns d_avg under the resolved pattern (0 when there are no
// remote accesses).
func (m *Model) MeanDistance() float64 {
	if m.pattern == nil {
		return 0
	}
	return m.pattern.MeanDistance()
}

// UnloadedNetworkLatency returns the one-way network latency without
// queueing: (d_avg + 1)·S — d_avg inbound hops plus the outbound injection.
func (m *Model) UnloadedNetworkLatency() float64 {
	if m.pattern == nil {
		return 0
	}
	return (m.MeanDistance() + 1) * m.cfg.SwitchTime
}

// Stations per node: Processor, Memory, Outbound, Inbound — in this order,
// grouped by role: station(role, node) = int(role)*P + node.
func (m *Model) stationIndex(role StationRole, node topology.Node) int {
	return int(role)*m.torus.Nodes() + int(node)
}

// StationCount returns the total number of stations (4 per PE).
func (m *Model) StationCount() int { return 4 * m.torus.Nodes() }

// serviceTime returns the mean service time of a station role.
func (m *Model) serviceTime(role StationRole) float64 {
	switch role {
	case Processor:
		return m.cfg.processorService()
	case Memory:
		return m.cfg.MemoryTime
	default:
		return m.cfg.SwitchTime
	}
}

// serverCount returns the number of parallel servers of a station role.
func (m *Model) serverCount(role StationRole) int {
	switch role {
	case Memory:
		return m.cfg.memoryPorts()
	case Outbound, Inbound:
		return m.cfg.switchPorts()
	default:
		return 1
	}
}

// ClassVisits returns the visit-ratio vector of the class anchored at PE
// `home` over all 4P stations, by torus translation of the class-0 ratios.
func (m *Model) ClassVisits(home topology.Node) []float64 {
	n := m.torus.Nodes()
	v := make([]float64, m.StationCount())
	hx, hy := m.torus.Coord(home)
	v[m.stationIndex(Processor, home)] = 1
	for j := 0; j < n; j++ {
		jx, jy := m.torus.Coord(topology.Node(j))
		dst := m.torus.NodeAt(jx+hx, jy+hy)
		v[m.stationIndex(Memory, dst)] = m.visitMem[j]
		v[m.stationIndex(Outbound, dst)] = m.visitOut[j]
		v[m.stationIndex(Inbound, dst)] = m.visitIn[j]
	}
	return v
}

// Network builds the full multiclass closed queueing network: one class per
// PE with population n_t, 4P FCFS stations.
func (m *Model) Network() *queueing.Network {
	nNodes := m.torus.Nodes()
	net := &queueing.Network{
		Stations: make([]queueing.Station, m.StationCount()),
		Classes:  make([]queueing.Class, nNodes),
	}
	for _, role := range []StationRole{Processor, Memory, Outbound, Inbound} {
		for j := 0; j < nNodes; j++ {
			net.Stations[m.stationIndex(role, topology.Node(j))] = queueing.Station{
				Name:        fmt.Sprintf("%s[%d]", role, j),
				Kind:        queueing.FCFS,
				ServiceTime: m.serviceTime(role),
				Servers:     m.serverCount(role),
			}
		}
	}
	for j := 0; j < nNodes; j++ {
		net.Classes[j] = queueing.Class{
			Name:       fmt.Sprintf("pe%d", j),
			Population: m.cfg.Threads,
			Visits:     m.ClassVisits(topology.Node(j)),
		}
	}
	return net
}

// network returns a lazily built network shared by every solve of this
// model, so repeated full/exact solves (sweeps, the conformance harness)
// do not rebuild stations and visit vectors per call. The cached network is
// strictly read-only: callers that modify the returned value (e.g.
// HeteroModel overwriting populations) must use Network(), which always
// builds a fresh one.
func (m *Model) network() *queueing.Network {
	m.netOnce.Do(func() { m.net = m.Network() })
	return m.net
}
