// Package mms builds and solves the paper's model of a multithreaded
// multiprocessor system: k×k processing elements on a 2-D torus, each with a
// multithreaded processor, a distributed-shared-memory module and an
// inbound/outbound switch pair, modeled as a closed multiclass queueing
// network (one class per processor, population n_t) and solved with mean
// value analysis.
//
// The package exposes the paper's performance measures: processor utilization
// U_p (Eq. 3), message rate to the network λ_net (Eq. 2), observed one-way
// network latency S_obs (Eq. 1) and observed memory latency L_obs.
package mms

import (
	"math"

	"lattol/internal/access"
	"lattol/internal/topology"
	"lattol/internal/validate"
)

// Config collects the paper's workload and architecture parameters
// (Tables 1 and 5).
type Config struct {
	// K is the number of processing elements per torus dimension (P = K²).
	K int
	// Threads is n_t, the number of threads per processor.
	Threads int
	// Runlength is R, the mean computation time of a thread between memory
	// accesses (includes issuing the access).
	Runlength float64
	// ContextSwitch is C, the context-switch overhead added to each processor
	// service. The paper folds it into R; the default is 0.
	ContextSwitch float64
	// MemoryTime is L, the memory access (service) time without queueing.
	MemoryTime float64
	// SwitchTime is S, the routing time at each switch without queueing.
	SwitchTime float64
	// PRemote is the probability that a memory access targets a remote node.
	PRemote float64
	// Pattern chooses the remote access pattern. If nil, a geometric pattern
	// with parameters Psw and GeometricMode is used (the paper's default).
	// Ignored when PRemote == 0 or K == 1.
	Pattern access.Pattern
	// Psw is the locality parameter of the default geometric pattern.
	Psw float64
	// GeometricMode selects the geometric normalization (default
	// access.PerDistance, the paper's formulation).
	GeometricMode access.GeometricMode
	// MemoryPorts is the number of parallel ports per memory module; 0
	// means 1. Section 7 of the paper suggests multiporting/pipelining
	// memory for systems with fast networks; this implements that
	// extension.
	MemoryPorts int
	// SwitchPorts is the number of parallel routing engines per switch; 0
	// means 1 (the paper's non-pipelined switch assumption). Larger values
	// model pipelined switches.
	SwitchPorts int
}

// DefaultConfig returns the paper's Table 1 defaults: a 4×4 torus, n_t = 8,
// R = 10, L = 10, S = 10, p_remote = 0.2, geometric pattern with p_sw = 0.5
// (d_avg = 1.733).
func DefaultConfig() Config {
	return Config{
		K:          4,
		Threads:    8,
		Runlength:  10,
		MemoryTime: 10,
		SwitchTime: 10,
		PRemote:    0.2,
		Psw:        0.5,
	}
}

// Validate reports the first invalid parameter as a field-named error
// (*validate.FieldError), so both the CLIs and the HTTP serving layer can
// point at the offending field.
func (c Config) Validate() error {
	if c.K < 1 {
		return validate.Fieldf("mms.Config", "K", "= %d, want >= 1", c.K)
	}
	if c.Threads < 0 {
		return validate.Fieldf("mms.Config", "Threads", "= %d, want >= 0", c.Threads)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Runlength", c.Runlength},
		{"ContextSwitch", c.ContextSwitch},
		{"MemoryTime", c.MemoryTime},
		{"SwitchTime", c.SwitchTime},
	} {
		if p.v < 0 || math.IsNaN(p.v) || math.IsInf(p.v, 0) {
			return validate.Fieldf("mms.Config", p.name, "= %v, want finite >= 0", p.v)
		}
	}
	if sum := c.Runlength + c.ContextSwitch; sum <= 0 || math.IsInf(sum, 0) {
		return validate.Fieldf("mms.Config", "Runlength", "+ ContextSwitch = %v, want finite > 0", sum)
	}
	if c.PRemote < 0 || c.PRemote > 1 || math.IsNaN(c.PRemote) {
		return validate.Fieldf("mms.Config", "PRemote", "= %v, want in [0,1]", c.PRemote)
	}
	if c.K == 1 && c.PRemote > 0 {
		return validate.Fieldf("mms.Config", "PRemote", "= %v on a single-node system (K=1), want 0", c.PRemote)
	}
	if c.Pattern == nil && c.PRemote > 0 {
		if c.Psw <= 0 || c.Psw > 1 || math.IsNaN(c.Psw) {
			return validate.Fieldf("mms.Config", "Psw", "= %v, want in (0,1]", c.Psw)
		}
	}
	if c.MemoryPorts < 0 {
		return validate.Fieldf("mms.Config", "MemoryPorts", "= %d, want >= 0", c.MemoryPorts)
	}
	if c.SwitchPorts < 0 {
		return validate.Fieldf("mms.Config", "SwitchPorts", "= %d, want >= 0", c.SwitchPorts)
	}
	return nil
}

// memoryPorts returns the effective memory port count (at least 1).
func (c Config) memoryPorts() int {
	if c.MemoryPorts < 1 {
		return 1
	}
	return c.MemoryPorts
}

// switchPorts returns the effective switch port count (at least 1).
func (c Config) switchPorts() int {
	if c.SwitchPorts < 1 {
		return 1
	}
	return c.SwitchPorts
}

// pattern resolves the configured access pattern (nil when remote accesses
// are impossible).
func (c Config) pattern(t *topology.Torus) (access.Pattern, error) {
	if c.PRemote == 0 || t.Nodes() == 1 {
		return nil, nil
	}
	if c.Pattern != nil {
		return c.Pattern, nil
	}
	return access.NewGeometric(t, c.Psw, c.GeometricMode)
}

// processorService returns the mean processor service time per thread
// activation (R + C).
func (c Config) processorService() float64 { return c.Runlength + c.ContextSwitch }
