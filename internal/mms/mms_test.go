package mms

import (
	"math"
	"testing"

	"lattol/internal/access"
	"lattol/internal/topology"
)

func TestDefaultConfigMatchesPaperTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.K != 4 || cfg.Threads != 8 || cfg.Runlength != 10 ||
		cfg.MemoryTime != 10 || cfg.SwitchTime != 10 || cfg.PRemote != 0.2 || cfg.Psw != 0.5 {
		t.Errorf("defaults drifted from Table 1: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad K", func(c *Config) { c.K = 0 }},
		{"negative threads", func(c *Config) { c.Threads = -1 }},
		{"negative R", func(c *Config) { c.Runlength = -1 }},
		{"zero R", func(c *Config) { c.Runlength = 0 }},
		{"nan L", func(c *Config) { c.MemoryTime = math.NaN() }},
		{"inf S", func(c *Config) { c.SwitchTime = math.Inf(1) }},
		{"negative C", func(c *Config) { c.ContextSwitch = -1 }},
		{"p out of range", func(c *Config) { c.PRemote = 1.5 }},
		{"nan p", func(c *Config) { c.PRemote = math.NaN() }},
		{"k=1 with remote", func(c *Config) { c.K = 1; c.PRemote = 0.2 }},
		{"bad psw", func(c *Config) { c.Psw = 0 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestZeroRunlengthWithContextSwitchIsValid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runlength = 0
	cfg.ContextSwitch = 5
	if err := cfg.Validate(); err != nil {
		t.Errorf("R=0 with C>0 should validate: %v", err)
	}
}

func TestMeanDistanceMatchesPaper(t *testing.T) {
	m, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := m.MeanDistance(); math.Abs(d-1.7333333333333334) > 1e-12 {
		t.Errorf("d_avg = %v, want 1.733", d)
	}
	if u := m.UnloadedNetworkLatency(); math.Abs(u-27.333333333333336) > 1e-9 {
		t.Errorf("unloaded S_obs = %v, want 27.33", u)
	}
}

func TestVisitRatioInvariants(t *testing.T) {
	// Per thread cycle of class 0: Σ em = 1, Σ eo = 2·p_remote,
	// Σ ei = 2·p_remote·d_avg.
	for _, cfg := range []Config{
		DefaultConfig(),
		{K: 6, Threads: 4, Runlength: 20, MemoryTime: 5, SwitchTime: 2, PRemote: 0.7, Psw: 0.3},
		{K: 3, Threads: 2, Runlength: 1, MemoryTime: 1, SwitchTime: 1, PRemote: 1, Psw: 0.9},
	} {
		m, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sumMem, sumOut, sumIn float64
		for j := range m.visitMem {
			sumMem += m.visitMem[j]
			sumOut += m.visitOut[j]
			sumIn += m.visitIn[j]
		}
		if math.Abs(sumMem-1) > 1e-9 {
			t.Errorf("cfg %+v: Σem = %v, want 1", cfg, sumMem)
		}
		if math.Abs(sumOut-2*cfg.PRemote) > 1e-9 {
			t.Errorf("cfg %+v: Σeo = %v, want %v", cfg, sumOut, 2*cfg.PRemote)
		}
		if math.Abs(sumIn-2*cfg.PRemote*m.MeanDistance()) > 1e-9 {
			t.Errorf("cfg %+v: Σei = %v, want %v", cfg, sumIn, 2*cfg.PRemote*m.MeanDistance())
		}
	}
}

func TestLocalOnlyWorkload(t *testing.T) {
	// p_remote = 0 degenerates to a two-station (processor + local memory)
	// closed network with the balanced-network closed form
	// U_p = λ·R, λ = n/(D·(M+n-1)) when R == L.
	cfg := DefaultConfig()
	cfg.PRemote = 0
	met, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.Threads) / float64(cfg.Threads+1) // n/(n+1) for R=L
	if math.Abs(met.Up-want) > 1e-6 {
		t.Errorf("U_p = %v, want %v", met.Up, want)
	}
	if met.SObs != 0 || met.LambdaNet != 0 {
		t.Errorf("local-only workload has SObs=%v λnet=%v", met.SObs, met.LambdaNet)
	}
}

func TestSingleNodeSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 1
	cfg.PRemote = 0
	met, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.Up <= 0 || met.Up > 1 {
		t.Errorf("U_p = %v", met.Up)
	}
}

func TestZeroThreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 0
	met, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.Up != 0 || met.LambdaProc != 0 {
		t.Errorf("zero threads: %+v", met)
	}
}

func TestSymmetricMatchesFullAMVA(t *testing.T) {
	// The symmetric fast path must compute the same fixed point as the
	// general multiclass iteration.
	for _, cfg := range []Config{
		DefaultConfig(),
		{K: 2, Threads: 3, Runlength: 5, MemoryTime: 10, SwitchTime: 4, PRemote: 0.5, Psw: 0.5},
		{K: 3, Threads: 2, Runlength: 10, MemoryTime: 10, SwitchTime: 10, PRemote: 0.9, Psw: 0.8},
	} {
		m, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sym, err := m.Solve(SolveOptions{Solver: SymmetricAMVA})
		if err != nil {
			t.Fatal(err)
		}
		full, err := m.Solve(SolveOptions{Solver: FullAMVA})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sym.Up-full.Up) > 1e-7 || math.Abs(sym.SObs-full.SObs) > 1e-5 ||
			math.Abs(sym.LObs-full.LObs) > 1e-5 {
			t.Errorf("cfg %+v: symmetric %+v != full %+v", cfg, sym, full)
		}
	}
}

func TestSymmetricCloseToExactMVA(t *testing.T) {
	// On a tiny system (k=2, n_t=2: 3^4 = 81 lattice points... actually
	// (2+1)^4) the exact multiclass recursion is feasible; AMVA should be
	// within a few percent.
	cfg := Config{K: 2, Threads: 2, Runlength: 10, MemoryTime: 10, SwitchTime: 10, PRemote: 0.4, Psw: 0.5}
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := m.Solve(SolveOptions{Solver: SymmetricAMVA})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := m.Solve(SolveOptions{Solver: ExactMVA})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(approx.Up-exact.Up) / exact.Up; rel > 0.05 {
		t.Errorf("U_p approx %v vs exact %v (rel %v)", approx.Up, exact.Up, rel)
	}
}

func TestPaperOperatingPoint(t *testing.T) {
	// Paper Table 2, row R=10, n_t=8, p_remote=0.2 reports S_obs = 53 and
	// U_p ≈ 0.82; our model must land close (the paper's own rounding is
	// coarse).
	met, err := Solve(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if met.SObs < 48 || met.SObs > 58 {
		t.Errorf("S_obs = %v, want ≈53", met.SObs)
	}
	if met.Up < 0.78 || met.Up > 0.87 {
		t.Errorf("U_p = %v, want ≈0.82", met.Up)
	}
}

func TestLambdaNetBelowSaturation(t *testing.T) {
	// λ_net can never exceed the paper's Eq. 4 saturation rate
	// 1/(2·d_avg·S).
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		cfg := DefaultConfig()
		cfg.PRemote = p
		cfg.Threads = 10
		m, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		met, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sat := 1 / (2 * m.MeanDistance() * cfg.SwitchTime)
		if met.LambdaNet > sat*1.0001 {
			t.Errorf("p=%v: λ_net = %v exceeds saturation %v", p, met.LambdaNet, sat)
		}
	}
}

func TestUpMonotoneInThreads(t *testing.T) {
	// More threads never hurt U_p in this model (latency hiding).
	cfg := DefaultConfig()
	prev := 0.0
	for nt := 1; nt <= 12; nt++ {
		cfg.Threads = nt
		met, err := Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if met.Up < prev-1e-9 {
			t.Errorf("n_t=%d: U_p %v < previous %v", nt, met.Up, prev)
		}
		prev = met.Up
	}
}

func TestUpDecreasingInPRemote(t *testing.T) {
	// Past the critical point, more remote traffic lowers U_p; across the
	// whole range U_p must be nonincreasing for S, L >= R.
	cfg := DefaultConfig()
	prev := math.Inf(1)
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
		cfg.PRemote = p
		met, err := Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if met.Up > prev+1e-9 {
			t.Errorf("p=%v: U_p %v > previous %v", p, met.Up, prev)
		}
		prev = met.Up
	}
}

func TestUtilizationsInRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PRemote = 0.6
	met, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, u := range map[string]float64{
		"Up": met.Up, "mem": met.MemUtilization,
		"out": met.OutUtilization, "in": met.InUtilization,
	} {
		if u < 0 || u > 1+1e-9 {
			t.Errorf("%s utilization %v out of [0,1]", name, u)
		}
	}
}

func TestUniformVsGeometricLargeSystem(t *testing.T) {
	// Paper Section 7: geometric beats uniform markedly on large systems.
	cfg := DefaultConfig()
	cfg.K = 10
	geo, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = access.MustUniform(topology.MustTorus(10))
	uni, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if geo.Up < 1.5*uni.Up {
		t.Errorf("geometric U_p %v not markedly above uniform %v", geo.Up, uni.Up)
	}
	if uni.SObs < 3*geo.SObs {
		t.Errorf("uniform S_obs %v not much larger than geometric %v", uni.SObs, geo.SObs)
	}
}

func TestThroughputHelper(t *testing.T) {
	met := Metrics{Up: 0.5}
	if got := met.Throughput(16); got != 8 {
		t.Errorf("Throughput(16) = %v, want 8", got)
	}
}

func TestCustomPatternRoundTrip(t *testing.T) {
	// A custom pattern equal to the default geometric must give identical
	// metrics.
	tor := topology.MustTorus(4)
	g := access.MustGeometric(tor, 0.5, access.PerDistance)
	row := make([]float64, tor.Nodes())
	for j := 1; j < tor.Nodes(); j++ {
		row[j] = g.Prob(0, topology.Node(j))
	}
	custom, err := access.NewCustom(tor, "geo-copy", row)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	base, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = custom
	got, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.Up-got.Up) > 1e-9 || math.Abs(base.SObs-got.SObs) > 1e-6 {
		t.Errorf("custom copy differs: %+v vs %+v", got, base)
	}
}

func TestContextSwitchOverheadLowersThroughput(t *testing.T) {
	cfg := DefaultConfig()
	base, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ContextSwitch = 5
	slow, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.LambdaProc >= base.LambdaProc {
		t.Errorf("λ with C=5 (%v) not below C=0 (%v)", slow.LambdaProc, base.LambdaProc)
	}
}

func TestStationRoleString(t *testing.T) {
	want := map[StationRole]string{Processor: "processor", Memory: "memory", Outbound: "outbound", Inbound: "inbound"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if StationRole(9).String() != "StationRole(9)" {
		t.Error("unknown role string")
	}
}

func TestNetworkValidates(t *testing.T) {
	m, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	net := m.Network()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(net.Stations) != 64 || len(net.Classes) != 16 {
		t.Errorf("network has %d stations, %d classes; want 64, 16", len(net.Stations), len(net.Classes))
	}
}

func TestUnknownSolver(t *testing.T) {
	m, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(SolveOptions{Solver: Solver(9)}); err == nil {
		t.Error("want unknown-solver error")
	}
}

func TestSolverString(t *testing.T) {
	if SymmetricAMVA.String() != "symmetric-amva" || FullAMVA.String() != "full-amva" ||
		ExactMVA.String() != "exact-mva" || Solver(7).String() != "Solver(7)" {
		t.Error("solver strings")
	}
}
