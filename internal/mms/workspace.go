package mms

import (
	"sync"

	"lattol/internal/fixpoint"
	"lattol/internal/mva"
)

// Workspace holds the reusable scratch buffers of the model solvers: the
// flattened class-0 station vectors of the symmetric AMVA and an mva.Workspace
// for the multiclass solvers. Sweeps that solve many configurations reuse one
// workspace per worker (see sweep.RunWithWorker) so the steady-state solve
// loop performs no per-call allocations.
//
// Reuse contract: a Workspace may be used by one goroutine at a time. Every
// solve overwrites the buffers in place; the Metrics returned by Model.Solve
// is a plain value and never aliases the workspace. The zero value is ready
// to use.
type Workspace struct {
	// Symmetric-AMVA vectors, one entry per class-0 station
	// (1 processor + 3 per node): visit ratios, service times, server
	// counts, the queue-length iterate and residence times.
	e, s, srv, q, w []float64
	role            []StationRole
	// Accelerated-path scratch: g is the evaluated sweep, upper the
	// feasibility bounds, accel the scheme state (see internal/fixpoint).
	g, upper []float64
	accel    fixpoint.Accelerator
	// mvaWS backs the FullAMVA multiclass solver and the extension solvers
	// (topology comparison, heterogeneous and hot-spot workloads).
	mvaWS mva.Workspace
	// Symmetric-solver warm-start state: q holds a converged symWarmN-station
	// solution iff symWarmOK. With SolveOptions.WarmStart a later symmetric
	// solve of the same station count seeds its iterate from it.
	symWarmOK bool
	symWarmN  int

	// Batch-solve scratch: the SoA lockstep kernel plus the grouping
	// bookkeeping of SolveBatch (lane→item indices, per-item models, shape
	// partition flags). Disjoint from the scalar buffers above, so batch and
	// scalar solves can interleave on one workspace.
	batch       mva.BatchWorkspace
	batchIdx    []int
	batchModels []*Model
	batchDone   []bool
	// Station-dedup scratch: the per-item merged shapes of the current
	// batch (the row lists themselves are cached on each Model at Build)
	// and the hoisted per-lane role parameters of the kernel load.
	batchShapes []batchShape
	batchRole   []float64
}

// ensureSym sizes the symmetric-solver vectors for n stations. Contents are
// not zeroed — solveSymmetric overwrites every entry before reading it.
func (ws *Workspace) ensureSym(n int) {
	ws.e = resizeF(ws.e, n)
	ws.s = resizeF(ws.s, n)
	ws.srv = resizeF(ws.srv, n)
	ws.q = resizeF(ws.q, n)
	ws.w = resizeF(ws.w, n)
	if cap(ws.role) < n {
		ws.role = make([]StationRole, n)
	}
	ws.role = ws.role[:n]
}

func resizeF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// wsPool supplies workspaces to solves that were not handed one explicitly
// (SolveOptions.Workspace == nil), so even one-off Model.Solve calls reuse
// buffers across the process instead of re-allocating per call.
var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

func getWorkspace() *Workspace   { return wsPool.Get().(*Workspace) }
func putWorkspace(ws *Workspace) { wsPool.Put(ws) }
