package mms

import (
	"fmt"
	"math"

	"lattol/internal/mva"
	"lattol/internal/queueing"
	"lattol/internal/topology"
)

// HotSpotModel extends the MMS with hot-spot traffic: every class redirects
// a fraction of its remote accesses to one designated memory module. This
// breaks the SPMD translation symmetry the paper assumes, so the model is
// solved with the general multiclass AMVA; it quantifies how concentrated
// sharing (a lock, a reduction variable, a master data structure) erodes
// latency tolerance — the contention concern behind the paper's Section 7
// discussion of memory response.
type HotSpotModel struct {
	cfg   Config
	torus *topology.Torus
	hot   topology.Node
	frac  float64

	// per-class visit ratio arrays, indexed [class][node]
	mem [][]float64
	out [][]float64
	in  [][]float64
}

// HotSpotMetrics reports per-PE processor utilization plus system aggregates.
type HotSpotMetrics struct {
	// PerClassUp[i] is U_p of PE i. The hot node itself usually fares
	// *worst*: its local memory is the saturated module, so its own threads
	// queue behind the whole machine's hot traffic.
	PerClassUp []float64
	// MinUp, MaxUp, MeanUp aggregate PerClassUp.
	MinUp, MaxUp, MeanUp float64
	// HotMemUtilization is the utilization of the hot memory module.
	HotMemUtilization float64
	// Iterations is the AMVA iteration count.
	Iterations int
}

// BuildHotSpot builds a hot-spot variant of cfg: each class sends fraction
// frac of its remote accesses to memory module hot (its own pattern covers
// the rest). For the hot node's own class the redirected fraction stays
// local. frac must lie in [0, 1].
func BuildHotSpot(cfg Config, hot topology.Node, frac float64) (*HotSpotModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		return nil, fmt.Errorf("mms: hot-spot fraction %v, want in [0,1]", frac)
	}
	base, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	t := base.Torus()
	if int(hot) < 0 || int(hot) >= t.Nodes() {
		return nil, fmt.Errorf("mms: hot node %d out of range [0,%d)", hot, t.Nodes())
	}
	h := &HotSpotModel{cfg: cfg, torus: t, hot: hot, frac: frac}
	pat := base.Pattern()
	for c := 0; c < t.Nodes(); c++ {
		home := topology.Node(c)
		var q func(topology.Node) float64
		p := cfg.PRemote
		if pat != nil {
			if home == hot {
				// The redirected fraction is local for the hot node's own
				// threads: shrink its remote probability instead.
				p = cfg.PRemote * (1 - frac)
				q = func(dst topology.Node) float64 { return pat.Prob(home, dst) }
			} else {
				q = func(dst topology.Node) float64 {
					v := (1 - frac) * pat.Prob(home, dst)
					if dst == hot {
						v += frac
					}
					return v
				}
			}
		}
		mem, out, in := visitsFrom(t, home, p, q)
		h.mem = append(h.mem, mem)
		h.out = append(h.out, out)
		h.in = append(h.in, in)
	}
	return h, nil
}

// Network builds the full multiclass queueing network of the hot-spot system.
func (h *HotSpotModel) Network() *queueing.Network {
	// Reuse the base model only for station layout metadata.
	base := &Model{cfg: h.cfg, torus: h.torus}
	nNodes := h.torus.Nodes()
	net := &queueing.Network{
		Stations: make([]queueing.Station, base.StationCount()),
		Classes:  make([]queueing.Class, nNodes),
	}
	for _, role := range []StationRole{Processor, Memory, Outbound, Inbound} {
		for j := 0; j < nNodes; j++ {
			net.Stations[base.stationIndex(role, topology.Node(j))] = queueing.Station{
				Name:        fmt.Sprintf("%s[%d]", role, j),
				Kind:        queueing.FCFS,
				ServiceTime: base.serviceTime(role),
				Servers:     base.serverCount(role),
			}
		}
	}
	for c := 0; c < nNodes; c++ {
		v := make([]float64, base.StationCount())
		v[base.stationIndex(Processor, topology.Node(c))] = 1
		for j := 0; j < nNodes; j++ {
			v[base.stationIndex(Memory, topology.Node(j))] = h.mem[c][j]
			v[base.stationIndex(Outbound, topology.Node(j))] = h.out[c][j]
			v[base.stationIndex(Inbound, topology.Node(j))] = h.in[c][j]
		}
		net.Classes[c] = queueing.Class{
			Name:       fmt.Sprintf("pe%d", c),
			Population: h.cfg.Threads,
			Visits:     v,
		}
	}
	return net
}

// Solve runs the general multiclass AMVA and assembles per-PE metrics.
func (h *HotSpotModel) Solve(opts SolveOptions) (HotSpotMetrics, error) {
	opts = opts.withDefaults()
	if h.cfg.Threads == 0 {
		return HotSpotMetrics{}, nil
	}
	net := h.Network()
	ws := opts.Workspace
	if ws == nil {
		ws = getWorkspace()
		defer putWorkspace(ws)
	}
	// res aliases the workspace; it is consumed before the workspace is
	// released.
	res, err := ws.mvaWS.ApproxMultiClass(net, mva.AMVAOptions{
		Tolerance:     opts.Tolerance,
		MaxIterations: opts.MaxIterations,
	})
	if err != nil {
		return HotSpotMetrics{}, err
	}
	base := &Model{cfg: h.cfg, torus: h.torus}
	out := HotSpotMetrics{
		PerClassUp: make([]float64, h.torus.Nodes()),
		MinUp:      math.Inf(1),
		MaxUp:      math.Inf(-1),
		Iterations: res.Iterations,
	}
	r := h.cfg.processorService()
	var sum float64
	for c := range out.PerClassUp {
		up := res.Throughput[c] * r
		out.PerClassUp[c] = up
		sum += up
		out.MinUp = math.Min(out.MinUp, up)
		out.MaxUp = math.Max(out.MaxUp, up)
	}
	out.MeanUp = sum / float64(len(out.PerClassUp))
	hotStation := base.stationIndex(Memory, h.hot)
	out.HotMemUtilization = res.TotalUtilization(net, hotStation)
	return out, nil
}
