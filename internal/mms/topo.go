package mms

import (
	"fmt"
	"math"

	"lattol/internal/access"
	"lattol/internal/mva"
	"lattol/internal/queueing"
	"lattol/internal/topology"
)

// TopoModel is an MMS on an arbitrary topology.Network (e.g. a mesh without
// wraparound links). General networks are not vertex-transitive, so every
// class gets its own visit-ratio vector and the system is solved with the
// full multiclass AMVA; metrics are reported per PE and aggregated.
type TopoModel struct {
	cfg     Config
	net     topology.Network
	pattern access.Pattern

	// per-class visit arrays indexed [class][node]
	mem [][]float64
	out [][]float64
	in  [][]float64
}

// TopoMetrics aggregates per-PE measures for a general-topology system.
type TopoMetrics struct {
	// PerClassUp[i] is U_p of PE i (corners vs centers differ on a mesh).
	PerClassUp []float64
	// MinUp, MaxUp, MeanUp aggregate PerClassUp.
	MinUp, MaxUp, MeanUp float64
	// MeanSObs and MeanLObs average the observed latencies over PEs.
	MeanSObs float64
	MeanLObs float64
	// MeanDistance is d_avg under the resolved pattern.
	MeanDistance float64
	// Iterations is the AMVA iteration count.
	Iterations int
}

// BuildOnTopology elaborates cfg on the given network. cfg.K is ignored (the
// network defines the size); cfg.Pattern, if nil, defaults to the
// per-origin geometric pattern with cfg.Psw. PRemote > 0 requires >= 2
// nodes.
func BuildOnTopology(cfg Config, net topology.Network) (*TopoModel, error) {
	probe := cfg
	probe.K = 1
	probe.PRemote = 0 // K/pattern are validated separately below
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if cfg.PRemote < 0 || cfg.PRemote > 1 || math.IsNaN(cfg.PRemote) {
		return nil, fmt.Errorf("mms: PRemote = %v, want in [0,1]", cfg.PRemote)
	}
	if net.Nodes() < 2 && cfg.PRemote > 0 {
		return nil, fmt.Errorf("mms: single-node network cannot have PRemote > 0")
	}
	m := &TopoModel{cfg: cfg, net: net}
	if cfg.PRemote > 0 {
		if cfg.Pattern != nil {
			m.pattern = cfg.Pattern
		} else {
			pat, err := access.NewGeometricOn(net, cfg.Psw, cfg.GeometricMode)
			if err != nil {
				return nil, err
			}
			m.pattern = pat
		}
	}
	for c := 0; c < net.Nodes(); c++ {
		home := topology.Node(c)
		var q func(topology.Node) float64
		if m.pattern != nil {
			q = func(dst topology.Node) float64 { return m.pattern.Prob(home, dst) }
		}
		mem, out, in := visitsFrom(net, home, cfg.PRemote, q)
		m.mem = append(m.mem, mem)
		m.out = append(m.out, out)
		m.in = append(m.in, in)
	}
	return m, nil
}

// Topology returns the model's network.
func (m *TopoModel) Topology() topology.Network { return m.net }

// Pattern returns the resolved access pattern (nil when PRemote == 0).
func (m *TopoModel) Pattern() access.Pattern { return m.pattern }

func (m *TopoModel) stationIndex(role StationRole, node topology.Node) int {
	return int(role)*m.net.Nodes() + int(node)
}

// Network builds the full multiclass queueing network.
func (m *TopoModel) Network() *queueing.Network {
	nNodes := m.net.Nodes()
	layout := &Model{cfg: m.cfg} // for serviceTime/serverCount only
	net := &queueing.Network{
		Stations: make([]queueing.Station, 4*nNodes),
		Classes:  make([]queueing.Class, nNodes),
	}
	for _, role := range []StationRole{Processor, Memory, Outbound, Inbound} {
		for j := 0; j < nNodes; j++ {
			net.Stations[m.stationIndex(role, topology.Node(j))] = queueing.Station{
				Name:        fmt.Sprintf("%s[%d]", role, j),
				Kind:        queueing.FCFS,
				ServiceTime: layout.serviceTime(role),
				Servers:     layout.serverCount(role),
			}
		}
	}
	for c := 0; c < nNodes; c++ {
		v := make([]float64, 4*nNodes)
		v[m.stationIndex(Processor, topology.Node(c))] = 1
		for j := 0; j < nNodes; j++ {
			v[m.stationIndex(Memory, topology.Node(j))] = m.mem[c][j]
			v[m.stationIndex(Outbound, topology.Node(j))] = m.out[c][j]
			v[m.stationIndex(Inbound, topology.Node(j))] = m.in[c][j]
		}
		net.Classes[c] = queueing.Class{
			Name:       fmt.Sprintf("pe%d", c),
			Population: m.cfg.Threads,
			Visits:     v,
		}
	}
	return net
}

// Solve runs the full multiclass AMVA and aggregates the paper's measures.
func (m *TopoModel) Solve(opts SolveOptions) (TopoMetrics, error) {
	opts = opts.withDefaults()
	nNodes := m.net.Nodes()
	out := TopoMetrics{PerClassUp: make([]float64, nNodes)}
	if m.pattern != nil {
		out.MeanDistance = m.pattern.MeanDistance()
	}
	if m.cfg.Threads == 0 {
		return out, nil
	}
	net := m.Network()
	ws := opts.Workspace
	if ws == nil {
		ws = getWorkspace()
		defer putWorkspace(ws)
	}
	// res aliases the workspace; it is consumed before the workspace is
	// released.
	res, err := ws.mvaWS.ApproxMultiClass(net, mva.AMVAOptions{
		Tolerance:     opts.Tolerance,
		MaxIterations: opts.MaxIterations,
	})
	if err != nil {
		return TopoMetrics{}, err
	}
	out.Iterations = res.Iterations
	out.MinUp = math.Inf(1)
	out.MaxUp = math.Inf(-1)
	r := m.cfg.processorService()
	var upSum, sObsSum, lObsSum float64
	for c := 0; c < nNodes; c++ {
		up := res.Throughput[c] * r
		out.PerClassUp[c] = up
		upSum += up
		out.MinUp = math.Min(out.MinUp, up)
		out.MaxUp = math.Max(out.MaxUp, up)
		var lObs, sObs float64
		for j := 0; j < nNodes; j++ {
			lObs += m.mem[c][j] * res.Wait[c][m.stationIndex(Memory, topology.Node(j))]
			sObs += m.out[c][j]*res.Wait[c][m.stationIndex(Outbound, topology.Node(j))] +
				m.in[c][j]*res.Wait[c][m.stationIndex(Inbound, topology.Node(j))]
		}
		lObsSum += lObs
		if m.cfg.PRemote > 0 {
			sObsSum += sObs / (2 * m.cfg.PRemote)
		}
	}
	out.MeanUp = upSum / float64(nNodes)
	out.MeanLObs = lObsSum / float64(nNodes)
	out.MeanSObs = sObsSum / float64(nNodes)
	return out, nil
}
