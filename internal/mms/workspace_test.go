package mms

import (
	"context"
	"testing"

	"lattol/internal/sweep"
)

// stressConfigs is a varied pile of model shapes so pooled workspaces get
// resized up and down as they are reused across goroutines.
func stressConfigs() []Config {
	var cfgs []Config
	for _, k := range []int{2, 4, 6} {
		for _, nt := range []int{1, 4, 8, 16} {
			for _, p := range []float64{0.1, 0.2, 0.5, 0.8} {
				cfg := DefaultConfig()
				cfg.K = k
				cfg.Threads = nt
				cfg.PRemote = p
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}

// TestWorkspaceConcurrentSolves hammers the workspace pool and per-worker
// workspaces from many goroutines at once (run under -race in CI) and checks
// every concurrent result is bit-identical to a fresh sequential solve.
func TestWorkspaceConcurrentSolves(t *testing.T) {
	cfgs := stressConfigs()
	for _, solver := range []Solver{SymmetricAMVA, FullAMVA} {
		// Baseline: sequential, fresh workspace semantics (nil → pool, but
		// single-goroutine, and the contract zeroes/overwrites everything).
		want := make([]Metrics, len(cfgs))
		for i, cfg := range cfgs {
			model, err := Build(cfg)
			if err != nil {
				t.Fatalf("%v: Build(%+v): %v", solver, cfg, err)
			}
			want[i], err = model.Solve(SolveOptions{Solver: solver})
			if err != nil {
				t.Fatalf("%v: Solve(%+v): %v", solver, cfg, err)
			}
		}

		solve := func(ws *Workspace, cfg Config) (Metrics, error) {
			model, err := Build(cfg)
			if err != nil {
				return Metrics{}, err
			}
			return model.Solve(SolveOptions{Solver: solver, Workspace: ws})
		}
		opts := sweep.Options{Workers: 8}

		// Parallel path 1: one explicit workspace per sweep worker.
		got, err := sweep.RunWithWorker(context.Background(), cfgs, opts,
			func() *Workspace { return new(Workspace) }, solve)
		if err != nil {
			t.Fatalf("%v: RunWithWorker: %v", solver, err)
		}
		for i := range cfgs {
			if got[i] != want[i] {
				t.Errorf("%v: per-worker workspace solve diverged for %+v:\n got %+v\nwant %+v",
					solver, cfgs[i], got[i], want[i])
			}
		}

		// Parallel path 2: nil workspace, so every point borrows from the
		// process-wide sync.Pool concurrently.
		got, err = sweep.Run(context.Background(), cfgs, opts, func(cfg Config) (Metrics, error) {
			return solve(nil, cfg)
		})
		if err != nil {
			t.Fatalf("%v: pooled Run: %v", solver, err)
		}
		for i := range cfgs {
			if got[i] != want[i] {
				t.Errorf("%v: pooled workspace solve diverged for %+v:\n got %+v\nwant %+v",
					solver, cfgs[i], got[i], want[i])
			}
		}
	}
}

// TestWorkspaceReuseMatchesFresh solves a shrinking, then growing, sequence of
// models on one workspace and checks each against a fresh solve — catching any
// stale state left in oversized reused buffers.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	ws := new(Workspace)
	order := []int{10, 6, 4, 1, 8, 2, 16, 1}
	for _, nt := range order {
		cfg := DefaultConfig()
		cfg.Threads = nt
		model, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := model.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		reused, err := model.Solve(SolveOptions{Workspace: ws})
		if err != nil {
			t.Fatal(err)
		}
		if reused != fresh {
			t.Errorf("nt=%d: reused workspace diverged:\n got %+v\nwant %+v", nt, reused, fresh)
		}
	}
}
