package mms_test

import (
	"fmt"

	"lattol/internal/mms"
)

// Solve the paper's default system and read the headline measures.
func ExampleSolve() {
	met, err := mms.Solve(mms.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("U_p = %.3f\n", met.Up)
	fmt.Printf("S_obs = %.1f cycles\n", met.SObs)
	fmt.Printf("lambda_net = %.4f msgs/cycle\n", met.LambdaNet)
	// Output:
	// U_p = 0.819
	// S_obs = 53.9 cycles
	// lambda_net = 0.0164 msgs/cycle
}

// Concentrate 30% of remote traffic on one module and observe the collapse.
func ExampleBuildHotSpot() {
	cfg := mms.DefaultConfig()
	cfg.PRemote = 0.4
	h, err := mms.BuildHotSpot(cfg, 0, 0.3)
	if err != nil {
		panic(err)
	}
	met, err := h.Solve(mms.SolveOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean U_p = %.3f (balanced would be 0.598)\n", met.MeanUp)
	fmt.Printf("hot module utilization = %.2f\n", met.HotMemUtilization)
	// Output:
	// mean U_p = 0.372 (balanced would be 0.598)
	// hot module utilization = 0.95
}
