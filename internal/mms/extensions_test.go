package mms

import (
	"math"
	"testing"

	"lattol/internal/mva"
)

func TestMemoryPortsImproveUtilization(t *testing.T) {
	cfg := DefaultConfig()
	base, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MemoryPorts = 2
	two, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if two.Up <= base.Up {
		t.Errorf("2-port U_p %v not above 1-port %v", two.Up, base.Up)
	}
	if two.LObs >= base.LObs {
		t.Errorf("2-port L_obs %v not below 1-port %v", two.LObs, base.LObs)
	}
	if math.Abs(two.MemUtilization-two.LambdaProc*cfg.MemoryTime/2) > 1e-9 {
		t.Errorf("per-port memory utilization %v inconsistent", two.MemUtilization)
	}
}

func TestSwitchPortsRelieveSaturation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PRemote = 0.6 // network saturated at 1 port
	base, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SwitchPorts = 4
	piped, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if piped.Up < 1.3*base.Up {
		t.Errorf("4-port switches U_p %v, want well above %v", piped.Up, base.Up)
	}
	if piped.SObs >= base.SObs {
		t.Errorf("4-port S_obs %v not below %v", piped.SObs, base.SObs)
	}
}

func TestPortsSymmetricMatchesFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryPorts = 2
	cfg.SwitchPorts = 3
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := m.Solve(SolveOptions{Solver: SymmetricAMVA})
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Solve(SolveOptions{Solver: FullAMVA})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sym.Up-full.Up) > 1e-7 {
		t.Errorf("symmetric %v != full %v with ports", sym.Up, full.Up)
	}
}

func TestManyPortsApproachIdealSubsystem(t *testing.T) {
	// With very many memory ports, the memory behaves like a pure delay of
	// L: U_p must land between the single-port and L=0 systems, close to a
	// delay-only variant.
	cfg := DefaultConfig()
	cfg.MemoryPorts = 64
	many, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MemoryPorts = 1
	one, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MemoryTime = 0
	zero, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if many.Up <= one.Up || many.Up >= zero.Up {
		t.Errorf("64-port U_p %v not in (%v, %v)", many.Up, one.Up, zero.Up)
	}
	// Residual L_obs approaches the raw service time L.
	if many.LObs > 1.05*cfg.SwitchTime+10 { // L = 10
		t.Errorf("64-port L_obs %v, want ~10", many.LObs)
	}
}

func TestPortValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryPorts = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative MemoryPorts should fail validation")
	}
	cfg = DefaultConfig()
	cfg.SwitchPorts = -2
	if err := cfg.Validate(); err == nil {
		t.Error("negative SwitchPorts should fail validation")
	}
}

func TestHotSpotZeroFractionMatchesSymmetric(t *testing.T) {
	cfg := DefaultConfig()
	h, err := BuildHotSpot(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	met, err := h.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met.MeanUp-base.Up) > 1e-6 {
		t.Errorf("hot fraction 0: mean U_p %v != symmetric %v", met.MeanUp, base.Up)
	}
	if met.MaxUp-met.MinUp > 1e-6 {
		t.Errorf("hot fraction 0 should be symmetric: spread %v", met.MaxUp-met.MinUp)
	}
}

func TestHotSpotDegradesVictims(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PRemote = 0.4
	h, err := BuildHotSpot(cfg, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	met, err := h.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.MinUp >= base.Up {
		t.Errorf("hot-spot min U_p %v not below symmetric %v", met.MinUp, base.Up)
	}
	if met.HotMemUtilization < 0.85 {
		t.Errorf("hot module utilization %v, want near saturation", met.HotMemUtilization)
	}
	if met.MaxUp <= met.MinUp {
		t.Error("expected per-PE spread under hot-spot traffic")
	}
}

func TestHotSpotVisitConservation(t *testing.T) {
	// Every class still issues exactly one memory access per cycle and the
	// network visit identities hold per class.
	cfg := DefaultConfig()
	cfg.PRemote = 0.4
	h, err := BuildHotSpot(cfg, 5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	net := h.Network()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := mva.ApproxMultiClass(net, mva.AMVAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckLittle(net, 1e-6); err != nil {
		t.Error(err)
	}
	for c := range h.mem {
		var sum float64
		for _, v := range h.mem[c] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("class %d: Σem = %v, want 1", c, sum)
		}
	}
}

func TestHotSpotValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := BuildHotSpot(cfg, 0, -0.1); err == nil {
		t.Error("negative fraction should fail")
	}
	if _, err := BuildHotSpot(cfg, 0, 1.1); err == nil {
		t.Error("fraction > 1 should fail")
	}
	if _, err := BuildHotSpot(cfg, 99, 0.2); err == nil {
		t.Error("out-of-range hot node should fail")
	}
	cfg.K = 0
	if _, err := BuildHotSpot(cfg, 0, 0.2); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestHotSpotZeroThreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threads = 0
	h, err := BuildHotSpot(cfg, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	met, err := h.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.MeanUp != 0 {
		t.Errorf("zero threads: %+v", met)
	}
}

func TestHotSpotOwnNodeSuffersMost(t *testing.T) {
	// The hot node's own threads queue behind the whole machine's hot
	// traffic at their local memory, so the hot node holds the *lowest*
	// U_p — even though its hot-fraction accesses avoid the network.
	cfg := DefaultConfig()
	cfg.PRemote = 0.4
	h, err := BuildHotSpot(cfg, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	met, err := h.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.PerClassUp[3] > met.MinUp+1e-9 {
		t.Errorf("hot node's own U_p %v is not the minimum %v", met.PerClassUp[3], met.MinUp)
	}
}
