package mms

import (
	"fmt"
	"math"

	"lattol/internal/fixpoint"
	"lattol/internal/mva"
	"lattol/internal/topology"
	"lattol/internal/validate"
)

// Solver selects how the queueing network is solved.
type Solver int

const (
	// SymmetricAMVA exploits the SPMD symmetry of the workload: every class
	// is a torus translation of class 0, so the Bard–Schweitzer fixed point
	// can be iterated on class 0 alone with total queue lengths obtained by
	// symmetry. It computes the same fixed point as FullAMVA at 1/P the work
	// per iteration, and is the default.
	SymmetricAMVA Solver = iota
	// FullAMVA runs the general multiclass Bard–Schweitzer iteration on all
	// P classes and 4P stations (the paper's Figure 3, verbatim).
	FullAMVA
	// ExactMVA runs the exact multiclass recursion; only feasible for very
	// small systems (it is exponential in P·n_t) and used to gauge AMVA
	// accuracy.
	ExactMVA
)

func (s Solver) String() string {
	switch s {
	case SymmetricAMVA:
		return "symmetric-amva"
	case FullAMVA:
		return "full-amva"
	case ExactMVA:
		return "exact-mva"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// ParseSolver maps the CLI/wire name of a solver to its Solver value. The
// short names ("symmetric", "full", "exact") and the String() renderings
// ("symmetric-amva", ...) are both accepted; the empty string selects the
// default SymmetricAMVA. Unknown names yield a field-named error.
func ParseSolver(name string) (Solver, error) {
	switch name {
	case "", "symmetric", "symmetric-amva":
		return SymmetricAMVA, nil
	case "full", "full-amva":
		return FullAMVA, nil
	case "exact", "exact-mva":
		return ExactMVA, nil
	default:
		return 0, validate.Fieldf("mms.SolveOptions", "Solver", "= %q, want symmetric, full or exact", name)
	}
}

// SolveOptions tunes the solution procedure. The zero value is the default:
// symmetric AMVA with tolerance 1e-10.
type SolveOptions struct {
	Solver        Solver
	Tolerance     float64 // convergence threshold on queue lengths (default 1e-10)
	MaxIterations int     // default 200000
	// Accel selects a fixed-point acceleration scheme for the AMVA solvers
	// (ignored by ExactMVA). Same fixed point, fewer iterations; see
	// mva.Accel.
	Accel mva.Accel
	// WarmStart seeds the AMVA iterate from the workspace's previous
	// converged solution when the network shape matches (ignored by
	// ExactMVA). Effective only with an explicit Workspace reused across
	// solves — pool-borrowed workspaces give no locality guarantee.
	WarmStart bool
	// Workspace, when non-nil, supplies reusable solver scratch buffers;
	// sweeps hand each worker its own so repeated solves allocate nothing.
	// When nil, a workspace is borrowed from a process-wide pool for the
	// duration of the call. See the Workspace reuse contract.
	Workspace *Workspace
}

// Validate reports the first invalid option as a field-named error
// (*validate.FieldError). Zero values are valid: they select the defaults.
func (o SolveOptions) Validate() error {
	switch o.Solver {
	case SymmetricAMVA, FullAMVA, ExactMVA:
	default:
		return validate.Fieldf("mms.SolveOptions", "Solver", "= %d, want SymmetricAMVA, FullAMVA or ExactMVA", int(o.Solver))
	}
	if o.Tolerance < 0 || math.IsNaN(o.Tolerance) || math.IsInf(o.Tolerance, 0) {
		return validate.Fieldf("mms.SolveOptions", "Tolerance", "= %v, want finite >= 0", o.Tolerance)
	}
	switch o.Accel {
	case mva.AccelNone, mva.AccelAitken, mva.AccelAnderson:
	default:
		return validate.Fieldf("mms.SolveOptions", "Accel", "= %d, want AccelNone, AccelAitken or AccelAnderson", int(o.Accel))
	}
	return nil
}

// DefaultMaxIterations is the iteration budget selected by a zero
// SolveOptions.MaxIterations. It is deliberately above mva.DefaultMaxIterations:
// the service layer solves through this package, so observability bucketing
// must cover this cap.
const DefaultMaxIterations = 200000

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-10
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = DefaultMaxIterations
	}
	return o
}

// Metrics holds the paper's performance measures for one (any) processor —
// the workload is SPMD-symmetric so every PE reports the same values.
type Metrics struct {
	// Up is the processor utilization U_p = λ·R in [0,1] (paper Eq. 3).
	Up float64
	// LambdaProc is λ_i: the rate at which the processor issues memory
	// accesses.
	LambdaProc float64
	// LambdaNet is λ_net = λ_i·p_remote: the message rate to the network
	// (paper Eq. 2).
	LambdaNet float64
	// SObs is the observed one-way network latency per remote access,
	// including queueing (paper Eq. 1, normalized per remote access per
	// direction). Zero when there are no remote accesses.
	SObs float64
	// LObs is the observed memory latency per access, including queueing.
	LObs float64
	// CycleTime is the mean time for a thread to complete one
	// compute-access-resume cycle.
	CycleTime float64
	// MemUtilization, OutUtilization, InUtilization are the utilizations of a
	// memory module, an outbound switch and an inbound switch.
	MemUtilization float64
	OutUtilization float64
	InUtilization  float64
	// Iterations is the number of solver iterations (0 for exact MVA).
	Iterations int
}

// Throughput returns the system throughput P·U_p (paper Figure 10a plots
// this against P).
func (m Metrics) Throughput(p int) float64 { return float64(p) * m.Up }

// Solve builds the model for cfg and solves it with default options.
func Solve(cfg Config) (Metrics, error) {
	model, err := Build(cfg)
	if err != nil {
		return Metrics{}, err
	}
	return model.Solve(SolveOptions{})
}

// Solve computes the steady-state performance measures.
func (m *Model) Solve(opts SolveOptions) (Metrics, error) {
	if err := opts.Validate(); err != nil {
		return Metrics{}, err
	}
	opts = opts.withDefaults()
	if m.cfg.Threads == 0 {
		return Metrics{}, nil
	}
	ws := opts.Workspace
	if ws == nil {
		ws = getWorkspace()
		defer putWorkspace(ws)
	}
	if opts.Solver == SymmetricAMVA {
		return m.solveSymmetric(opts, ws)
	}
	return m.solveFull(opts, ws)
}

// solveSymmetric iterates the Bard–Schweitzer fixed point on class 0 only.
// Station layout (class-0 view): index 0 = own processor, then per node j:
// memory_j, outbound_j, inbound_j. Total queue lengths at stations follow
// from translation symmetry:
//
//	Σ_i n_i[proc_0] = n_0[proc_0]          (only class 0 visits it)
//	Σ_i n_i[mem_j]  = Σ_d n_0[mem_d]       (independent of j)
//
// and likewise for switches.
func (m *Model) solveSymmetric(opts SolveOptions, ws *Workspace) (Metrics, error) {
	nNodes := m.torus.Nodes()
	nt := float64(m.cfg.Threads)

	// Flatten class-0 stations: 0 = processor, then [1, 1+n) memories,
	// [1+n, 1+2n) outbound, [1+2n, 1+3n) inbound.
	nStations := 1 + 3*nNodes
	warm := opts.WarmStart && ws.symWarmOK && ws.symWarmN == nStations
	ws.ensureSym(nStations)
	// The iterate is in flux until this solve converges; a failed solve must
	// not seed the next warm start.
	ws.symWarmOK = false
	e, s, role, srv := ws.e, ws.s, ws.role, ws.srv
	e[0], s[0], role[0] = 1, m.cfg.processorService(), Processor
	for j := 0; j < nNodes; j++ {
		e[1+j], s[1+j], role[1+j] = m.visitMem[j], m.cfg.MemoryTime, Memory
		e[1+nNodes+j], s[1+nNodes+j], role[1+nNodes+j] = m.visitOut[j], m.cfg.SwitchTime, Outbound
		e[1+2*nNodes+j], s[1+2*nNodes+j], role[1+2*nNodes+j] = m.visitIn[j], m.cfg.SwitchTime, Inbound
	}
	for i := range srv {
		srv[i] = float64(m.serverCount(role[i]))
	}

	q := ws.q
	if warm {
		// q holds the previous converged solution of a same-shape solve —
		// the continuation guess. Stations this configuration does not visit
		// must read as zero (their update is identically zero, so stale mass
		// would only survive iteration 1, but zeroing keeps the first
		// residence times sane).
		for i, ev := range e {
			if ev == 0 {
				q[i] = 0
			}
		}
	} else {
		// Initialize: spread the class population over visited stations.
		visited := 0
		for _, ev := range e {
			if ev > 0 {
				visited++
			}
		}
		for i, ev := range e {
			if ev > 0 {
				q[i] = nt / float64(visited)
			} else {
				q[i] = 0
			}
		}
	}

	var scheme fixpoint.Scheme
	switch opts.Accel {
	case mva.AccelAitken:
		scheme = fixpoint.Aitken
	case mva.AccelAnderson:
		scheme = fixpoint.Anderson
	default:
		scheme = fixpoint.None
	}
	if scheme != fixpoint.None {
		ws.g = resizeF(ws.g, nStations)
		ws.upper = resizeF(ws.upper, nStations)
		for i := range ws.upper {
			ws.upper[i] = nt
		}
		ws.accel.Reset(scheme, 0, nStations)
	}

	w := ws.w
	var lambda float64
	var iterations int
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		// Role totals Σ_d n_0[station_d] give the symmetric column sums.
		var roleTotal [4]float64
		for i, role := range role {
			roleTotal[role] += q[i]
		}
		var cycle float64
		for i := range w {
			if e[i] == 0 {
				w[i] = 0
				continue
			}
			// Shadow-server residence: exact at one server, a pure delay
			// as the port count grows (matches mva.residence).
			seen := roleTotal[role[i]] - q[i]/nt
			w[i] = s[i]/srv[i]*(1+seen) + s[i]*(srv[i]-1)/srv[i]
			cycle += e[i] * w[i]
		}
		if cycle <= 0 {
			return Metrics{}, fmt.Errorf("mms: degenerate zero cycle time")
		}
		lambda = nt / cycle
		maxDelta := 0.0
		if scheme == fixpoint.None {
			for i := range q {
				nNew := lambda * e[i] * w[i]
				if d := math.Abs(nNew - q[i]); d > maxDelta {
					maxDelta = d
				}
				q[i] = nNew
			}
		} else {
			// Accelerated path: evaluate the sweep into g, converge on the
			// raw residual (same test as the plain path), then let the
			// accelerator pick the next iterate.
			g := ws.g
			for i := range q {
				g[i] = lambda * e[i] * w[i]
				if d := math.Abs(g[i] - q[i]); d > maxDelta {
					maxDelta = d
				}
			}
			if maxDelta < opts.Tolerance {
				copy(q, g)
			} else {
				ws.accel.Advance(q, g, ws.upper)
			}
		}
		if maxDelta < opts.Tolerance {
			iterations = iter
			break
		}
		if iter == opts.MaxIterations {
			return Metrics{}, fmt.Errorf("mms: symmetric AMVA did not converge within %d iterations", opts.MaxIterations)
		}
	}
	ws.symWarmOK, ws.symWarmN = true, nStations

	// Class-0 latency sums, read directly off the flat residence vector —
	// no per-solve closure.
	var lObs, sObsSum float64
	for j := 0; j < nNodes; j++ {
		lObs += m.visitMem[j] * w[1+j]
		sObsSum += m.visitOut[j]*w[1+nNodes+j] + m.visitIn[j]*w[1+2*nNodes+j]
	}
	met := m.assembleMetrics(lambda, lObs, sObsSum)
	met.Iterations = iterations
	return met, nil
}

// solveFull solves the complete multiclass network and reads class 0's
// measures off the result.
func (m *Model) solveFull(opts SolveOptions, ws *Workspace) (Metrics, error) {
	net := m.network()
	var res *mva.Result
	var err error
	if opts.Solver == ExactMVA {
		res, err = ws.mvaWS.ExactMultiClass(net, 0)
	} else {
		res, err = ws.mvaWS.ApproxMultiClass(net, mva.AMVAOptions{
			Tolerance:     opts.Tolerance,
			MaxIterations: opts.MaxIterations,
			Accel:         opts.Accel,
			WarmStart:     opts.WarmStart,
		})
	}
	if err != nil {
		return Metrics{}, err
	}
	nNodes := m.torus.Nodes()
	var lObs, sObsSum float64
	for j := 0; j < nNodes; j++ {
		node := topology.Node(j)
		lObs += m.visitMem[j] * res.Wait[0][m.stationIndex(Memory, node)]
		sObsSum += m.visitOut[j]*res.Wait[0][m.stationIndex(Outbound, node)] +
			m.visitIn[j]*res.Wait[0][m.stationIndex(Inbound, node)]
	}
	met := m.assembleMetrics(res.Throughput[0], lObs, sObsSum)
	met.Iterations = res.Iterations
	return met, nil
}

// assembleMetrics builds the paper's measures from class-0 throughput λ and
// the visit-weighted latency sums Σ e_m·w_m (memory) and Σ e·w (switches).
func (m *Model) assembleMetrics(lambda, lObs, sObsSum float64) Metrics {
	cfg := m.cfg
	met := Metrics{
		LambdaProc: lambda,
		LambdaNet:  lambda * cfg.PRemote,
		Up:         lambda * cfg.processorService(),
	}
	met.LObs = lObs
	if cfg.PRemote > 0 {
		met.SObs = sObsSum / (2 * cfg.PRemote)
	}
	if lambda > 0 {
		met.CycleTime = float64(cfg.Threads) / lambda
	}
	// Subsystem utilizations follow from visit totals and symmetry: each
	// memory serves one full access stream (Σ_d em = 1), each outbound switch
	// 2·p_remote visits per cycle, each inbound switch 2·p_remote·d_avg;
	// multi-port stations divide the load across their servers.
	met.MemUtilization = lambda * cfg.MemoryTime / float64(cfg.memoryPorts())
	met.OutUtilization = lambda * cfg.SwitchTime * 2 * cfg.PRemote / float64(cfg.switchPorts())
	met.InUtilization = lambda * cfg.SwitchTime * 2 * cfg.PRemote * m.MeanDistance() / float64(cfg.switchPorts())
	return met
}
