package mms

import (
	"math"
	"testing"

	"lattol/internal/validate"
)

// batchCompareMetrics asserts two metric sets agree within relTol on every
// measure (|a-b| / max(|a|,|b|,1)).
func batchCompareMetrics(t *testing.T, label string, got, want Metrics, relTol float64) {
	t.Helper()
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"Up", got.Up, want.Up},
		{"LambdaProc", got.LambdaProc, want.LambdaProc},
		{"LambdaNet", got.LambdaNet, want.LambdaNet},
		{"SObs", got.SObs, want.SObs},
		{"LObs", got.LObs, want.LObs},
		{"CycleTime", got.CycleTime, want.CycleTime},
		{"MemUtilization", got.MemUtilization, want.MemUtilization},
		{"OutUtilization", got.OutUtilization, want.OutUtilization},
		{"InUtilization", got.InUtilization, want.InUtilization},
	} {
		scale := math.Max(math.Max(math.Abs(c.got), math.Abs(c.want)), 1)
		if math.Abs(c.got-c.want)/scale > relTol {
			t.Errorf("%s: %s = %v, want %v (rel %g)", label, c.name, c.got, c.want,
				math.Abs(c.got-c.want)/scale)
		}
	}
}

// TestSolveBatchMatchesSolve pins SolveBatch to item-by-item Model.Solve over
// a mixed batch: two station shapes (K=2 and K=4), varying thread counts and
// remote fractions, a multiported point, and scalar-fallback items (FullAMVA
// and ExactMVA). Both sides iterate to a 1e-12 residual and must agree at
// 1e-9.
func TestSolveBatchMatchesSolve(t *testing.T) {
	mk := func(k, nt int, p float64) Config {
		cfg := DefaultConfig()
		cfg.K = k
		cfg.Threads = nt
		cfg.PRemote = p
		return cfg
	}
	multi := mk(4, 6, 0.5)
	multi.MemoryPorts = 2
	multi.SwitchPorts = 2
	items := []BatchItem{
		{Config: mk(4, 8, 0.2)},
		{Config: mk(2, 3, 0.4)},
		{Config: mk(4, 1, 0.05)},
		{Config: mk(2, 1, 0.9), Solver: ExactMVA},
		{Config: mk(4, 10, 0.7)},
		{Config: mk(2, 5, 0.2), Solver: FullAMVA},
		{Config: multi},
		{Config: mk(4, 8, 0)}, // no remote accesses at all
	}
	opts := SolveOptions{Tolerance: 1e-12}
	results := SolveBatch(items, opts)
	if len(results) != len(items) {
		t.Fatalf("results = %d, want %d", len(results), len(items))
	}
	for i, it := range items {
		if results[i].Err != nil {
			t.Fatalf("item %d: %v", i, results[i].Err)
		}
		model, err := Build(it.Config)
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.Solve(SolveOptions{Solver: it.Solver, Tolerance: 1e-12})
		if err != nil {
			t.Fatalf("scalar item %d: %v", i, err)
		}
		batchCompareMetrics(t, "item", results[i].Metrics, want, 1e-9)
		if it.Solver != ExactMVA && results[i].Metrics.Iterations <= 0 {
			t.Errorf("item %d: Iterations = %d, want > 0", i, results[i].Metrics.Iterations)
		}
	}
}

// TestSolveBatchPositionalErrors mixes an invalid configuration and a
// zero-thread point into a healthy batch: errors land on their own index and
// nowhere else.
func TestSolveBatchPositionalErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.K = -1
	zero := DefaultConfig()
	zero.Threads = 0
	items := []BatchItem{
		{Config: DefaultConfig()},
		{Config: bad},
		{Config: zero},
		{Config: DefaultConfig(), Solver: Solver(99)},
		{Config: DefaultConfig()},
	}
	results := SolveBatch(items, SolveOptions{})
	if results[0].Err != nil || results[4].Err != nil {
		t.Errorf("healthy items failed: [0]=%v [4]=%v", results[0].Err, results[4].Err)
	}
	if validate.Field(results[1].Err) != "K" {
		t.Errorf("invalid config: field = %q (err %v), want K", validate.Field(results[1].Err), results[1].Err)
	}
	if results[2].Err != nil || results[2].Metrics != (Metrics{}) {
		t.Errorf("zero threads: metrics %+v err %v, want zero metrics and nil", results[2].Metrics, results[2].Err)
	}
	if validate.Field(results[3].Err) != "Solver" {
		t.Errorf("bad solver: field = %q (err %v), want Solver", validate.Field(results[3].Err), results[3].Err)
	}
	if results[0].Metrics.Up <= 0 || results[4].Metrics.Up <= 0 {
		t.Errorf("healthy U_p = %v, %v, want > 0", results[0].Metrics.Up, results[4].Metrics.Up)
	}
}

// TestSolveBatchIntoAllocates0 pins the steady-state contract: with prebuilt
// models, a reused workspace and caller-provided result storage, a batch
// solve allocates nothing.
func TestSolveBatchIntoAllocates0(t *testing.T) {
	items := make([]BatchItem, 12)
	for i := range items {
		cfg := DefaultConfig()
		cfg.Threads = 1 + i
		model, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = BatchItem{Model: model}
	}
	ws := new(Workspace)
	dst := make([]BatchResult, len(items))
	opts := SolveOptions{Workspace: ws}
	SolveBatchInto(dst, items, opts)
	allocs := testing.AllocsPerRun(50, func() {
		SolveBatchInto(dst, items, opts)
		if dst[0].Err != nil {
			t.Fatal(dst[0].Err)
		}
	})
	if allocs != 0 {
		t.Errorf("batch solve allocates %v allocs/op, want 0", allocs)
	}
}

// TestSolveBatchIntoLengthMismatch documents the misuse panic.
func TestSolveBatchIntoLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on dst/items length mismatch")
		}
	}()
	SolveBatchInto(make([]BatchResult, 1), make([]BatchItem, 2), SolveOptions{})
}
