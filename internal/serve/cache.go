package serve

import (
	"sync"

	"lattol/internal/mms"
)

// result is the cached outcome of one evaluation. For opSolve only real is
// populated; for opTolerance real/ideal are the two solved systems and tol
// their utilization ratio. It is a flat value: copying it out of the cache
// allocates nothing.
type result struct {
	real, ideal mms.Metrics
	tol         float64
}

// cacheState classifies how a request was satisfied.
type cacheState uint8

const (
	// stateHit: the result was already cached.
	stateHit cacheState = iota
	// stateWait: an identical evaluation was in flight; the request
	// coalesced onto it.
	stateWait
	// stateLead: the request is the leader — it must compute and complete
	// the entry.
	stateLead
	// stateSurrogate: the answer was interpolated from a precomputed grid
	// within the client's stated error bound; no solver ran and nothing was
	// cached (the LRU holds exact results only).
	stateSurrogate
)

func (s cacheState) String() string {
	switch s {
	case stateHit:
		return "hit"
	case stateWait:
		return "coalesced"
	case stateSurrogate:
		return "surrogate"
	default:
		return "miss"
	}
}

// entry is one cache slot. Lifecycle: created pending by the leader
// (done open), then completed exactly once — successful results join the
// shard's LRU list, failures are removed from the map so a later request
// retries. res and err are written before done is closed and never after,
// so waiters may read them without the shard lock once done is closed.
type entry struct {
	key  Key
	done chan struct{}
	res  result
	err  error

	// Intrusive LRU links, guarded by the shard lock. Only completed
	// successful entries are linked.
	prev, next *entry
}

// cacheShard is one lock domain of the cache: a map for lookup plus an
// intrusive doubly-linked LRU list (most recent at head) for eviction.
type cacheShard struct {
	mu         sync.Mutex
	m          map[Key]*entry
	head, tail *entry
	linked     int // entries on the LRU list (completed successes)
	capacity   int
}

func (s *cacheShard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	s.linked--
}

func (s *cacheShard) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
	s.linked++
}

// cache is the sharded result cache. Sharding keeps lock hold times short
// under concurrent load; each shard evicts independently in LRU order.
type cache struct {
	shards []cacheShard
	mask   uint64
}

// newCache sizes a cache for about `entries` completed results across
// `shards` shards (rounded up to a power of two).
func newCache(entries, shards int) *cache {
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (entries + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &cache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*entry)
		c.shards[i].capacity = perShard
	}
	return c
}

func (c *cache) shardFor(k *Key) *cacheShard {
	return &c.shards[k.hash()&c.mask]
}

// getOrStart returns the entry for k and the caller's role. On stateHit the
// entry is complete and successful (its result may be read immediately); on
// stateWait the caller must wait on entry.done; on stateLead the caller owns
// the computation and must eventually call complete exactly once.
func (c *cache) getOrStart(k Key) (*entry, cacheState) {
	s := c.shardFor(&k)
	s.mu.Lock()
	if e := s.m[k]; e != nil {
		select {
		case <-e.done:
			// Completed entries in the map are always successes (failures
			// are removed on completion).
			s.unlink(e)
			s.pushFront(e)
			s.mu.Unlock()
			return e, stateHit
		default:
			s.mu.Unlock()
			return e, stateWait
		}
	}
	e := &entry{key: k, done: make(chan struct{})}
	s.m[k] = e
	s.mu.Unlock()
	return e, stateLead
}

// complete finishes a leader's entry, waking every coalesced waiter.
// Successful results join the LRU (evicting the least recently used result
// beyond capacity); failures are forgotten so the next identical request
// recomputes. Returns the number of evicted entries.
func (c *cache) complete(e *entry, res result, err error) (evicted int) {
	s := c.shardFor(&e.key)
	s.mu.Lock()
	e.res, e.err = res, err
	if err != nil {
		delete(s.m, e.key)
	} else {
		s.pushFront(e)
		for s.linked > s.capacity {
			lru := s.tail
			s.unlink(lru)
			delete(s.m, lru.key)
			evicted++
		}
	}
	close(e.done)
	s.mu.Unlock()
	return evicted
}

// peek returns k's completed result without taking leadership: a miss stays
// a miss, no pending entry is created. The surrogate-eligible solve path
// peeks first (a cached exact result always beats interpolation) and only
// falls through to the interpolated tier — and from there to getOrStart —
// when nothing is cached. A hit refreshes the entry's LRU position.
func (c *cache) peek(k *Key) (result, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	if e := s.m[*k]; e != nil {
		select {
		case <-e.done:
			s.unlink(e)
			s.pushFront(e)
			s.mu.Unlock()
			return e.res, true
		default:
		}
	}
	s.mu.Unlock()
	return result{}, false
}

// insert adds a completed successful result (snapshot restore). An existing
// entry for the key — completed or in flight — wins; live state is never
// overwritten by a restore.
func (c *cache) insert(k Key, res result) bool {
	s := c.shardFor(&k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[k] != nil {
		return false
	}
	e := &entry{key: k, done: make(chan struct{}), res: res}
	close(e.done)
	s.m[k] = e
	s.pushFront(e)
	for s.linked > s.capacity {
		lru := s.tail
		s.unlink(lru)
		delete(s.m, lru.key)
	}
	return true
}

// dump visits every completed successful entry, least recently used first
// within each shard, so replaying the dump through insert (which pushes to
// the front) reproduces each shard's recency order.
func (c *cache) dump(visit func(Key, result)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.tail; e != nil; e = e.prev {
			visit(e.key, e.res)
		}
		s.mu.Unlock()
	}
}

// len returns the number of completed entries currently cached.
func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.linked
		s.mu.Unlock()
	}
	return n
}
