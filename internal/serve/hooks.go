package serve

import "lattol/internal/mms"

// This file exports the canonicalization pipeline in a form the conformance
// layer can exercise from outside the package: internal/conformance fuzzes
// the request→Key mapping (FuzzServeKeyCanonical) and needs to build keys,
// re-canonicalize them and recover the solver configuration a key denotes.
// The handlers themselves keep using the unexported path.

// SolveKey validates a solve request and returns its canonical cache Key —
// exactly the key POST /v1/solve would look up. Two requests with equal keys
// are served the same cached result, so SolveKey is the surface on which
// "equal keys ⇒ identical answers" must hold; the conformance fuzz target
// asserts it.
func SolveKey(r ModelRequest) (Key, error) {
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		return Key{}, err
	}
	if err := validateConfig(cfg, pat); err != nil {
		return Key{}, err
	}
	return canonicalKey(cfg, pat, geo, solver, opSolve, 0, 0), nil
}

// ToleranceKey validates a tolerance request and returns its canonical cache
// Key — exactly the key POST /v1/tolerance would look up.
func ToleranceKey(r ToleranceRequest) (Key, error) {
	sub, err := parseSubsystem(r.Subsystem)
	if err != nil {
		return Key{}, err
	}
	mode, err := parseMode(r.Mode, sub)
	if err != nil {
		return Key{}, err
	}
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		return Key{}, err
	}
	if err := validateConfig(cfg, pat); err != nil {
		return Key{}, err
	}
	return canonicalKey(cfg, pat, geo, solver, opTolerance, sub, mode), nil
}

// ModelConfig rebuilds the solver configuration the key denotes (defaults
// applied, irrelevant fields zeroed) — the configuration a cache miss would
// actually solve.
func (k Key) ModelConfig() mms.Config { return k.config() }

// Hash returns the key's canonical 64-bit hash — the value the cluster ring
// routes on and the cache shards by. Conformance and cluster tests use it to
// predict which node owns a request.
func (k Key) Hash() uint64 { return k.hash() }

// SolverChoice returns the solver the key selects.
func (k Key) SolverChoice() mms.Solver { return k.solver }

// Recanonicalized pushes the key's own fields back through canonicalization.
// Canonicalization must be idempotent — a cached key re-canonicalizes to
// itself — or two requests for the same evaluation could land on different
// cache lines; the conformance fuzz target asserts Recanonicalized() == k
// for every reachable key.
func (k Key) Recanonicalized() Key {
	cfg := k.config()
	cfg.Pattern = nil // canonicalKey takes the pattern as a separate operand
	return canonicalKey(cfg, k.pattern, k.geoMode, k.solver, k.op, k.sub, k.mode)
}
