package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestServer wires a Server over a small evaluator and returns both with
// an httptest listener. The caller owns shutdown via the returned close func.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decoding response body: %v", err)
	}
}

const validBody = `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"p_remote":0.2,"psw":0.5}`

func TestServerSolveOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/solve", validBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Lattold-Cache"); got != "miss" {
		t.Errorf("X-Lattold-Cache = %q, want miss", got)
	}
	var out SolveResponse
	decodeBody(t, resp, &out)
	if out.Metrics.Up <= 0 || out.Metrics.Up > 1 {
		t.Errorf("u_p = %v, want in (0,1]", out.Metrics.Up)
	}
	if out.Metrics.CycleTime <= 0 {
		t.Errorf("cycle_time = %v, want > 0", out.Metrics.CycleTime)
	}

	// The identical request is a cache hit.
	resp2 := postJSON(t, ts.URL+"/v1/solve", validBody)
	if got := resp2.Header.Get("X-Lattold-Cache"); got != "hit" {
		t.Errorf("repeat X-Lattold-Cache = %q, want hit", got)
	}
	var out2 SolveResponse
	decodeBody(t, resp2, &out2)
	if out2 != out {
		t.Errorf("cached body %+v differs from first %+v", out2, out)
	}
}

func TestServerToleranceOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/tolerance", validBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out ToleranceResponse
	decodeBody(t, resp, &out)
	if out.Subsystem != "network" || out.Mode != "zero-remote" {
		t.Errorf("defaults = %s/%s, want network/zero-remote", out.Subsystem, out.Mode)
	}
	if out.Tol <= 0 || out.Tol > 1.2 {
		t.Errorf("tol = %v, want in (0,1.2]", out.Tol)
	}
	if out.Zone == "" {
		t.Error("zone missing")
	}
	if out.Ideal.Up < out.Real.Up-1e-9 {
		t.Errorf("ideal u_p %v below real u_p %v", out.Ideal.Up, out.Real.Up)
	}
}

func TestServerSweepOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"p_remote":0.2,"psw":0.5,"param":"nt","from":2,"to":8,"steps":4}`
	resp := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out SweepResponse
	decodeBody(t, resp, &out)
	if out.Param != "nt" || len(out.Points) != 4 {
		t.Fatalf("param %q with %d points, want nt with 4", out.Param, len(out.Points))
	}
	for _, p := range out.Points {
		if p.TolNetwork <= 0 || p.TolMemory <= 0 {
			t.Errorf("nt=%v: tol_network=%v tol_memory=%v", p.Value, p.TolNetwork, p.TolMemory)
		}
	}
}

// TestServerGolden400s pins the error contract: malformed bodies and invalid
// fields produce 400 with a message and (for validation) the wire field name.
func TestServerGolden400s(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name      string
		path      string
		body      string
		wantField string
	}{
		{"malformed JSON", "/v1/solve", `{"k":4,`, ""},
		{"trailing data", "/v1/solve", validBody + `{"k":2}`, ""},
		{"unknown field", "/v1/solve", `{"k":4,"bogus":1}`, ""},
		{"wrong type", "/v1/solve", `{"k":"four"}`, ""},
		{"zero k", "/v1/solve", `{"k":0,"threads":8,"runlength":10,"memory_time":10,"switch_time":10}`, "k"},
		{"bad p_remote", "/v1/solve", `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"p_remote":1.5}`, "p_remote"},
		{"bad solver", "/v1/solve", `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"solver":"bogus"}`, "solver"},
		{"bad subsystem", "/v1/tolerance", `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"subsystem":"disk"}`, "subsystem"},
		{"memory with zero-remote", "/v1/tolerance", `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"subsystem":"memory","mode":"zero-remote"}`, "mode"},
		{"bad sweep param", "/v1/sweep", `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"param":"bogus","from":1,"to":2,"steps":2}`, "param"},
		{"zero sweep steps", "/v1/sweep", `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"param":"nt","from":1,"to":2,"steps":0}`, "steps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var out ErrorResponse
			decodeBody(t, resp, &out)
			if out.Error.Status != http.StatusBadRequest {
				t.Errorf("error.status = %d, want 400", out.Error.Status)
			}
			if out.Error.Message == "" {
				t.Error("error.message empty")
			}
			if out.Error.Field != tc.wantField {
				t.Errorf("error.field = %q, want %q (message: %s)", out.Error.Field, tc.wantField, out.Error.Message)
			}
		})
	}
}

func TestServerMethodAndBodyLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve status = %d, want 405", resp.StatusCode)
	}

	huge := `{"k":4,"threads":8` + strings.Repeat(" ", maxBodyBytes) + `}`
	resp = postJSON(t, ts.URL+"/v1/solve", huge)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body status = %d, want 400", resp.StatusCode)
	}
}

// TestServerSheds429 gates the only worker, fills the single queue slot, and
// expects the next distinct request to come back 429 with Retry-After.
func TestServerSheds429(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	var solves atomic.Int32
	gate := make(chan struct{})
	srv.Evaluator().solveHook = func(Key) {
		solves.Add(1)
		<-gate
	}
	defer close(gate)

	body := func(nt int) string {
		return fmt.Sprintf(`{"k":4,"threads":%d,"runlength":10,"memory_time":10,"switch_time":10,"p_remote":0.2,"psw":0.5}`, nt)
	}
	go func() { r := postJSON(t, ts.URL+"/v1/solve", body(1)); r.Body.Close() }()
	waitUntil(t, "worker occupied", func() bool { return solves.Load() == 1 })
	go func() { r := postJSON(t, ts.URL+"/v1/solve", body(2)); r.Body.Close() }()
	waitUntil(t, "queue slot filled", func() bool { return len(srv.Evaluator().tasks) == 1 })

	resp := postJSON(t, ts.URL+"/v1/solve", body(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var out ErrorResponse
	decodeBody(t, resp, &out)
	if !strings.Contains(out.Error.Message, "queue full") {
		t.Errorf("error.message = %q, want a queue-full explanation", out.Error.Message)
	}
}

// TestServerGracefulShutdown verifies the drain ordering: a gated in-flight
// request completes with 200 while http.Server.Shutdown waits, then the pool
// closes.
func TestServerGracefulShutdown(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Start()

	var solves atomic.Int32
	gate := make(chan struct{})
	srv.Evaluator().solveHook = func(Key) {
		solves.Add(1)
		<-gate
	}

	type reply struct {
		code  int
		cache string
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(validBody))
		if err != nil {
			replies <- reply{-1, err.Error()}
			return
		}
		defer resp.Body.Close()
		replies <- reply{resp.StatusCode, resp.Header.Get("X-Lattold-Cache")}
	}()
	waitUntil(t, "solve in flight", func() bool { return solves.Load() == 1 })

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- ts.Config.Shutdown(context.Background()) }()
	// Shutdown must wait for the in-flight handler.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	got := <-replies
	if got.code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d (%s), want 200", got.code, got.cache)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	srv.Close()
	if !srv.Evaluator().Draining() {
		t.Error("evaluator not draining after Close")
	}
}

func TestServerHealthz(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var h HealthResponse
	decodeBody(t, resp, &h)
	if h.Status != "ok" || h.UptimeSeconds < 0 {
		t.Errorf("health = %+v", h)
	}

	srv.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining status = %d, want 503", resp.StatusCode)
	}
	var h2 HealthResponse
	decodeBody(t, resp, &h2)
	if h2.Status != "draining" {
		t.Errorf("draining body status = %q", h2.Status)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Generate some traffic first: a miss, a hit, and a 400.
	postJSON(t, ts.URL+"/v1/solve", validBody).Body.Close()
	postJSON(t, ts.URL+"/v1/solve", validBody).Body.Close()
	postJSON(t, ts.URL+"/v1/solve", `{"k":0}`).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"lattold_requests_total{endpoint=\"solve\"} 3",
		"lattold_cache_hits_total 1",
		"lattold_cache_misses_total 1",
		"lattold_responses_total{class=\"2xx\"}",
		"lattold_responses_total{class=\"4xx\"}",
		"lattold_solve_seconds_bucket",
		"lattold_queue_wait_seconds_sum",
		"lattold_inflight_solves",
		"lattold_cache_hit_ratio",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestServerMetricsSolveIterations: a successful solve must land in the
// iteration-count histogram — every decade bucket renders and the count is
// positive (the solvers report their AMVA iteration counts).
func TestServerMetricsSolveIterations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/solve", validBody).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`lattold_solve_iterations_bucket{le="1"}`,
		`lattold_solve_iterations_bucket{le="10"}`,
		`lattold_solve_iterations_bucket{le="100"}`,
		`lattold_solve_iterations_bucket{le="1000"}`,
		`lattold_solve_iterations_bucket{le="10000"}`,
		`lattold_solve_iterations_bucket{le="100000"}`,
		`lattold_solve_iterations_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	count := -1
	sum := -1
	for _, line := range strings.Split(text, "\n") {
		if _, err := fmt.Sscanf(line, "lattold_solve_iterations_count %d", &count); err == nil {
			continue
		}
		fmt.Sscanf(line, "lattold_solve_iterations_sum %d", &sum)
	}
	if count <= 0 {
		t.Errorf("lattold_solve_iterations_count = %d after a successful solve, want > 0", count)
	}
	if sum <= 0 {
		t.Errorf("lattold_solve_iterations_sum = %d after a successful solve, want > 0", sum)
	}
}

// TestServerBatch exercises POST /v1/batch end to end: a mixed item list
// returns a 200 envelope with positional outcomes — solve metrics, a
// tolerance judgment and a field-named 400 for the invalid item — and the
// batch counters land in /metrics.
func TestServerBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	tolItem := `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"p_remote":0.2,"psw":0.5,"op":"tolerance"}`
	body := `{"items":[` + validBody + `,` + tolItem + `,{"k":0}]}`
	resp := postJSON(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out BatchResponse
	decodeBody(t, resp, &out)
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}

	if r := out.Results[0]; r.Solve == nil || r.Error != nil || r.Tolerance != nil {
		t.Fatalf("item 0 = %+v, want a solve result", r)
	} else {
		if r.Cache != "miss" {
			t.Errorf("item 0 cache = %q, want miss", r.Cache)
		}
		if up := r.Solve.Metrics.Up; up <= 0 || up > 1 {
			t.Errorf("item 0 U_p = %v, want in (0,1]", up)
		}
	}
	if r := out.Results[1]; r.Tolerance == nil || r.Error != nil {
		t.Fatalf("item 1 = %+v, want a tolerance result", r)
	} else {
		if r.Tolerance.Subsystem != "network" || r.Tolerance.Mode != "zero-remote" {
			t.Errorf("item 1 defaults = %s/%s, want network/zero-remote", r.Tolerance.Subsystem, r.Tolerance.Mode)
		}
		if r.Tolerance.Zone == "" || r.Tolerance.Tol <= 0 {
			t.Errorf("item 1 tol = %v zone = %q", r.Tolerance.Tol, r.Tolerance.Zone)
		}
	}
	if r := out.Results[2]; r.Error == nil {
		t.Fatalf("item 2 = %+v, want an error", r)
	} else if r.Error.Status != http.StatusBadRequest || r.Error.Field != "k" {
		t.Errorf("item 2 error = %+v, want status 400 field k", r.Error)
	}

	// The batch shares cache lines with the single-request endpoints.
	solveResp := postJSON(t, ts.URL+"/v1/solve", validBody)
	if got := solveResp.Header.Get("X-Lattold-Cache"); got != "hit" {
		t.Errorf("follow-up solve cache = %q, want hit", got)
	}
	solveResp.Body.Close()

	metResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metResp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(metResp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lattold_requests_total{endpoint="batch"} 1`,
		"lattold_batch_items_total 3",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestServerBatchEnvelopeErrors: a malformed batch as a whole (no items) is a
// 400 on the envelope, not a 200 with positional errors.
func TestServerBatchEnvelopeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/batch", `{"items":[]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var out ErrorResponse
	decodeBody(t, resp, &out)
	if out.Error.Field != "items" {
		t.Errorf("field = %q, want items", out.Error.Field)
	}
}
