package serve

import (
	"encoding/json"
	"net/http"
	"time"

	lattolclient "lattol/internal/client"
	"lattol/internal/cluster"
)

// This file is the routing policy over internal/cluster's transport
// mechanics: which requests consult the ring, when a non-owner forwards vs.
// solves locally, and how forwarded answers are relayed. The invariants:
//
//   - A request bearing the forward header is served locally, always — the
//     origin's ring said we own it, and re-forwarding on a disagreeing ring
//     would loop. A departing node answers forwards with 503 instead, which
//     flips the origin to its local-solve fallback.
//   - Forward failures (transport error, peer overloaded or draining) fall
//     back to a local solve: the cluster degrades to N independent caches,
//     never to an outage.
//   - Forwarded bodies and relayed responses are verbatim bytes, so the
//     answer a client sees is bit-identical whichever node it entered
//     through once the owner has it cached.

// PeerHeader names the node that actually answered a relayed response.
const PeerHeader = "X-Lattold-Peer"

// SetCluster installs the node's cluster state; nil (or never calling it)
// keeps the server single-node. Install before serving traffic: the handlers
// read it without synchronization.
func (s *Server) SetCluster(c *cluster.Cluster) {
	s.cl = c
	if c != nil {
		s.eval.met.ringSize = func() int { return c.Size() }
		s.eval.met.ringDeparting = func() bool { return c.Departing() }
	}
}

// Cluster returns the installed cluster state (nil when single-node).
func (s *Server) Cluster() *cluster.Cluster { return s.cl }

// incomingForward classifies a peer-forwarded request. For a forward it
// counts the receipt and, when this node is departing, answers 503 so the
// origin falls back to its local solver (done=true means the response was
// written).
func (s *Server) incomingForward(w http.ResponseWriter, r *http.Request) (fwd, done bool) {
	if r.Header.Get(cluster.ForwardHeader) == "" {
		return false, false
	}
	s.eval.met.peerReceived.Add(1)
	if s.cl.Departing() {
		s.writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return true, true
	}
	return true, false
}

// routeKeyed consults the ring for a single-key request (solve, tolerance,
// plan): when another node owns the key's hash, the raw body is forwarded
// there and the answer relayed verbatim. A true return means the response
// was written; false means the caller serves locally — because this node
// owns the key, the request is an incoming forward, there is no cluster, or
// the forward failed and local solving is the fallback.
func (s *Server) routeKeyed(w http.ResponseWriter, r *http.Request, h uint64, body []byte) bool {
	if s.cl == nil {
		return false
	}
	if fwd, done := s.incomingForward(w, r); fwd {
		return done
	}
	owner, self := s.cl.Owner(h)
	if self {
		return false
	}
	start := time.Now()
	resp, err := s.cl.Forward(r.Context(), owner, r.URL.Path, body)
	if err != nil || resp.Status == http.StatusTooManyRequests || resp.Status == http.StatusServiceUnavailable {
		// The owner is unreachable, overloaded or draining; solve locally.
		// Other statuses (400, 422, ...) are properties of the request itself
		// — a local attempt would fail identically, so they relay below.
		s.eval.met.peerFallback.Add(1)
		return false
	}
	s.eval.met.peerForwarded.Add(1)
	s.eval.met.forwardLatency.observe(time.Since(start))
	s.relay(w, owner, resp)
	return true
}

// relay writes a peer's response verbatim, naming the answering node.
func (s *Server) relay(w http.ResponseWriter, owner string, resp *lattolclient.RawResponse) {
	s.eval.met.countStatus(resp.Status)
	for _, h := range []string{"Content-Type", "X-Lattold-Cache", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(PeerHeader, owner)
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
}

// routeBatch consults the ring for a batch: items are partitioned by owner,
// each remote part travels to its owner as one sub-batch, and the positional
// results are scattered back into place. Items this node owns — plus any
// whose forward failed — are evaluated locally. A true return means the
// response was written.
func (s *Server) routeBatch(w http.ResponseWriter, r *http.Request, req BatchRequest) bool {
	if s.cl == nil {
		return false
	}
	if fwd, done := s.incomingForward(w, r); fwd {
		return done
	}
	if len(req.Items) == 0 || len(req.Items) > s.eval.cfg.MaxBatchItems {
		return false // the local path reports the envelope error
	}
	// Partition by owner. Invalid items (key error) stay local so their
	// positional validation errors are produced by the usual path.
	type part struct {
		idx   []int
		items []BatchItemRequest
	}
	var parts map[string]*part
	remote := 0
	for i := range req.Items {
		k, err := req.Items[i].key()
		if err != nil {
			continue
		}
		owner, self := s.cl.Owner(k.hash())
		if self {
			continue
		}
		if parts == nil {
			parts = make(map[string]*part)
		}
		p := parts[owner]
		if p == nil {
			p = &part{}
			parts[owner] = p
		}
		p.idx = append(p.idx, i)
		p.items = append(p.items, req.Items[i])
		remote++
	}
	if remote == 0 {
		return false
	}
	results := make([]*BatchItemResponse, len(req.Items))
	for owner, p := range parts {
		sub, err := json.Marshal(BatchRequest{Items: p.items})
		if err != nil {
			continue // items stay local
		}
		start := time.Now()
		resp, ferr := s.cl.Forward(r.Context(), owner, "/v1/batch", sub)
		if ferr != nil || resp.Status != http.StatusOK {
			s.eval.met.peerFallback.Add(1)
			continue
		}
		var br BatchResponse
		if json.Unmarshal(resp.Body, &br) != nil || len(br.Results) != len(p.items) {
			s.eval.met.peerFallback.Add(1)
			continue
		}
		s.eval.met.peerForwarded.Add(1)
		s.eval.met.forwardLatency.observe(time.Since(start))
		for j := range p.idx {
			res := br.Results[j]
			results[p.idx[j]] = &res
		}
	}
	// Evaluate everything not answered by a peer as one local sub-batch.
	var localIdx []int
	var localItems []BatchItemRequest
	for i := range req.Items {
		if results[i] == nil {
			localIdx = append(localIdx, i)
			localItems = append(localItems, req.Items[i])
		}
	}
	if len(localItems) > 0 {
		ctx, cancel := s.reqContext(r)
		defer cancel()
		out := make([]BatchOutcome, len(localItems))
		if err := s.eval.Batch(ctx, localItems, out); err != nil {
			s.writeError(w, statusFor(err), err)
			return true
		}
		for j, i := range localIdx {
			res := batchItemResponse(localItems[j], out[j])
			results[i] = &res
		}
	}
	resp := BatchResponse{Results: make([]BatchItemResponse, len(req.Items))}
	for i := range results {
		resp.Results[i] = *results[i]
	}
	s.writeJSON(w, http.StatusOK, resp)
	return true
}
