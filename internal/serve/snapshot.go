package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math"

	"lattol/internal/access"
	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/surrogate"
	"lattol/internal/tolerance"
)

// LRU snapshot: the result cache persisted through the surrogate package's
// content-addressed store, so a restarted daemon reopens warm. Format (all
// little-endian, floats as IEEE bits):
//
//	magic "LSNP" | u32 version | str solver version (mva.SolverVersion)
//	u64 record count | records
//	record: key (6×u8 enums, 4×i64 ints, 6×f64) |
//	        real metrics (9×f64, i64 iterations) | ideal | f64 tol
//
// Records are dumped least recently used first per shard, so replaying them
// through cache.insert reproduces the recency order. A snapshot written by a
// different solver version is discarded at restore — cached numbers must
// always match what a fresh solve would produce today.

const (
	snapMagic = "LSNP"
	// snapVersion is the snapshot layout version; bump on any change.
	snapVersion = 1
	// SnapshotRefName is the store ref the latest LRU snapshot hangs off.
	SnapshotRefName = "lru-snapshot"
)

func snapU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func snapI64(b []byte, v int) []byte    { return binary.LittleEndian.AppendUint64(b, uint64(int64(v))) }
func snapF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func snapMetrics(b []byte, m mms.Metrics) []byte {
	for _, v := range [...]float64{m.Up, m.LambdaProc, m.LambdaNet, m.SObs, m.LObs,
		m.CycleTime, m.MemUtilization, m.OutUtilization, m.InUtilization} {
		b = snapF64(b, v)
	}
	return snapI64(b, m.Iterations)
}

func snapRecord(b []byte, k Key, res result) []byte {
	b = append(b, byte(k.op), byte(k.sub), byte(k.mode), byte(k.solver), byte(k.pattern), byte(k.geoMode))
	for _, v := range [...]int{k.k, k.threads, k.memPorts, k.swPorts} {
		b = snapI64(b, v)
	}
	for _, v := range [...]float64{k.runlength, k.contextSwitch, k.memoryTime, k.switchTime, k.pRemote, k.psw} {
		b = snapF64(b, v)
	}
	b = snapMetrics(b, res.real)
	b = snapMetrics(b, res.ideal)
	return snapF64(b, res.tol)
}

// SnapshotCache persists the current result cache into the store under
// SnapshotRefName and returns the number of entries written. Meant to run
// after Close has drained the pool (the daemon's shutdown path), but safe —
// merely racy about very fresh entries — at any time.
func (e *Evaluator) SnapshotCache(s *surrogate.Store) (int, error) {
	b := []byte(snapMagic)
	b = snapU32(b, snapVersion)
	b = snapU32(b, uint32(len(mva.SolverVersion)))
	b = append(b, mva.SolverVersion...)
	countAt := len(b)
	b = snapI64(b, 0) // patched below
	n := 0
	e.cache.dump(func(k Key, res result) {
		b = snapRecord(b, k, res)
		n++
	})
	binary.LittleEndian.PutUint64(b[countAt:], uint64(n))
	h, err := s.Put(b)
	if err != nil {
		return 0, err
	}
	if err := s.Link(SnapshotRefName, h); err != nil {
		return 0, err
	}
	return n, nil
}

// snapReader mirrors the surrogate codec's latched-error cursor.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("%w: truncated at offset %d", surrogate.ErrCorrupt, r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *snapReader) u8() byte {
	if s := r.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (r *snapReader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *snapReader) i64() int {
	if s := r.take(8); s != nil {
		return int(int64(binary.LittleEndian.Uint64(s)))
	}
	return 0
}

func (r *snapReader) f64() float64 {
	if s := r.take(8); s != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(s))
	}
	return 0
}

func (r *snapReader) metrics() mms.Metrics {
	return mms.Metrics{
		Up: r.f64(), LambdaProc: r.f64(), LambdaNet: r.f64(), SObs: r.f64(), LObs: r.f64(),
		CycleTime: r.f64(), MemUtilization: r.f64(), OutUtilization: r.f64(), InUtilization: r.f64(),
		Iterations: r.i64(),
	}
}

// RestoreCache loads the persisted LRU snapshot into the cache, returning how
// many entries it restored. Restore is strictly best-effort: a missing
// snapshot is a silent cold start, and a corrupt, truncated or
// version-mismatched one is reported through logf (nil discards) and
// discarded — the daemon always comes up, at worst cold. Every restored key
// must survive re-canonicalization bit-for-bit; records that don't are
// dropped, because a key the current code would canonicalize differently
// could serve a wrong cache line.
func (e *Evaluator) RestoreCache(s *surrogate.Store, logf func(format string, args ...any)) int {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	h, err := s.Resolve(SnapshotRefName)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			logf("serve: cache snapshot unusable, starting cold: %v", err)
		}
		return 0
	}
	data, err := s.Get(h)
	if err != nil {
		logf("serve: cache snapshot unusable, starting cold: %v", err)
		return 0
	}
	r := &snapReader{b: data}
	if string(r.take(len(snapMagic))) != snapMagic {
		logf("serve: cache snapshot unusable, starting cold: %v: bad magic", surrogate.ErrCorrupt)
		return 0
	}
	if v := r.u32(); r.err == nil && v != snapVersion {
		logf("serve: cache snapshot unusable, starting cold: %v: snapshot v%d, this build reads v%d",
			surrogate.ErrVersion, v, snapVersion)
		return 0
	}
	nameLen := r.u32()
	if r.err == nil && nameLen > 1<<10 {
		logf("serve: cache snapshot unusable, starting cold: %v: solver tag length %d", surrogate.ErrCorrupt, nameLen)
		return 0
	}
	if sv := string(r.take(int(nameLen))); r.err == nil && sv != mva.SolverVersion {
		logf("serve: cache snapshot from solver version %q, this build is %q; starting cold", sv, mva.SolverVersion)
		return 0
	}
	count := r.i64()
	if r.err == nil && (count < 0 || count > 1<<24) {
		logf("serve: cache snapshot unusable, starting cold: %v: record count %d", surrogate.ErrCorrupt, count)
		return 0
	}
	// Parse the whole snapshot before touching the cache, so a malformed
	// tail never leaves a half-restored state behind.
	type record struct {
		k   Key
		res result
	}
	records := make([]record, 0, count)
	dropped := 0
	for i := 0; i < count && r.err == nil; i++ {
		var k Key
		k.op = opKind(r.u8())
		k.sub = tolerance.Subsystem(r.u8())
		k.mode = tolerance.IdealMode(r.u8())
		k.solver = mms.Solver(r.u8())
		k.pattern = patternKind(r.u8())
		k.geoMode = access.GeometricMode(r.u8())
		k.k, k.threads, k.memPorts, k.swPorts = r.i64(), r.i64(), r.i64(), r.i64()
		k.runlength, k.contextSwitch = r.f64(), r.f64()
		k.memoryTime, k.switchTime = r.f64(), r.f64()
		k.pRemote, k.psw = r.f64(), r.f64()
		res := result{real: r.metrics(), ideal: r.metrics(), tol: r.f64()}
		if r.err != nil {
			break
		}
		if (k.op != opSolve && k.op != opTolerance) || k.Recanonicalized() != k {
			dropped++
			continue
		}
		records = append(records, record{k, res})
	}
	if r.err != nil {
		logf("serve: cache snapshot unusable, starting cold: %v", r.err)
		return 0
	}
	if r.off != len(data) {
		logf("serve: cache snapshot unusable, starting cold: %v: %d trailing bytes", surrogate.ErrCorrupt, len(data)-r.off)
		return 0
	}
	if dropped > 0 {
		logf("serve: cache snapshot: dropped %d records that no longer re-canonicalize", dropped)
	}
	restored := 0
	for _, rec := range records {
		if e.cache.insert(rec.k, rec.res) {
			restored++
		}
	}
	e.met.snapshotRestored.Add(uint64(restored))
	return restored
}
