package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// planBody is the default-model plan: threads needed for network tolerance
// ≥ 0.95 — the README's quickstart question.
const planBody = `{"k":4,"threads":8,"runlength":10,"memory_time":10,"switch_time":10,"p_remote":0.2,"psw":0.5,` +
	`"knob":"nt","metric":"tol_network","target":0.95,"trace":true}`

func TestServerPlanOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/plan", planBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out PlanResponse
	decodeBody(t, resp, &out)
	if out.Knob != "nt" || out.Metric != "tol_network" || out.Relation != ">=" {
		t.Errorf("echo = %s/%s/%s, want nt/tol_network/>=", out.Knob, out.Metric, out.Relation)
	}
	if out.Value != 12 {
		t.Errorf("value = %v, want 12 (threads for tol_network >= 0.95 on the default model)", out.Value)
	}
	if out.Binding != "interior" || out.Objective != "min" {
		t.Errorf("binding/objective = %s/%s, want interior/min", out.Binding, out.Objective)
	}
	if out.Achieved < 0.95 {
		t.Errorf("achieved = %v, want >= target 0.95", out.Achieved)
	}
	if out.TolNetwork == nil || *out.TolNetwork != out.Achieved {
		t.Errorf("tol_network = %v, want the achieved value %v", out.TolNetwork, out.Achieved)
	}
	if out.Probes < 2 || len(out.Trace) != out.Probes {
		t.Errorf("probes = %d with %d trace entries, want a full trace", out.Probes, len(out.Trace))
	}
	if out.Solves == 0 {
		t.Error("solves = 0 on a cold cache, want > 0")
	}
	if out.Metrics.Up <= 0 || out.Metrics.Up > 1 {
		t.Errorf("metrics.u_p = %v, want in (0,1]", out.Metrics.Up)
	}
}

// TestServerPlanCacheParticipation verifies plan probes live in the shared
// LRU: repeating a plan re-probes entirely from cache (zero solves), and the
// probe values match exactly.
func TestServerPlanCacheParticipation(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/plan", planBody)
	var cold PlanResponse
	decodeBody(t, resp, &cold)

	hits := srv.Evaluator().Metrics().cacheHits.Load()
	resp = postJSON(t, ts.URL+"/v1/plan", planBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d, want 200", resp.StatusCode)
	}
	var warm PlanResponse
	decodeBody(t, resp, &warm)
	if warm.Solves != 0 {
		t.Errorf("repeat plan solves = %d, want 0 (every probe cached)", warm.Solves)
	}
	if warm.Value != cold.Value || warm.Achieved != cold.Achieved || warm.Probes != cold.Probes {
		t.Errorf("repeat plan = (%v, %v, %d probes), want identical to cold (%v, %v, %d probes)",
			warm.Value, warm.Achieved, warm.Probes, cold.Value, cold.Achieved, cold.Probes)
	}
	if got := srv.Evaluator().Metrics().cacheHits.Load(); got == hits {
		t.Error("repeat plan recorded no cache hits")
	}
}

func TestServerPlanInfeasible422(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := strings.Replace(planBody, `"target":0.95`, `"target":1.01`, 1)
	resp := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	var out ErrorResponse
	decodeBody(t, resp, &out)
	if !strings.Contains(out.Error.Message, "no nt in") {
		t.Errorf("error.message = %q, want an infeasibility explanation naming the knob", out.Error.Message)
	}
}

func TestServerPlanValidation400s(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name, body, field string
	}{
		{"unknown knob", strings.Replace(planBody, `"knob":"nt"`, `"knob":"warp"`, 1), "knob"},
		{"unknown metric", strings.Replace(planBody, `"metric":"tol_network"`, `"metric":"vibes"`, 1), "metric"},
		{"bad relation", strings.Replace(planBody, `"target":0.95`, `"target":0.95,"relation":"~="`, 1), "relation"},
		{"max_error on a plan", strings.Replace(planBody, `"target":0.95`, `"target":0.95,"max_error":0.01`, 1), "max_error"},
		{"inverted bounds", strings.Replace(planBody, `"target":0.95`, `"target":0.95,"knob_min":8,"knob_max":2`, 1), "knob_min"},
		{"negative probes", strings.Replace(planBody, `"target":0.95`, `"target":0.95,"max_probes":-1`, 1), "max_probes"},
		{"bad model", strings.Replace(planBody, `"threads":8`, `"threads":-8`, 1), "threads"},
		{"frontier missing param", strings.Replace(planBody, `"target":0.95`, `"target":0.95,"frontier":{"param":"","from":0.1,"to":0.2,"steps":2}`, 1), "frontier.param"},
		{"frontier equals knob", strings.Replace(planBody, `"target":0.95`, `"target":0.95,"frontier":{"param":"nt","from":1,"to":2,"steps":2}`, 1), "frontier.param"},
		{"frontier zero steps", strings.Replace(planBody, `"target":0.95`, `"target":0.95,"frontier":{"param":"premote","from":0.1,"to":0.2,"steps":0}`, 1), "frontier.steps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/plan", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var out ErrorResponse
			decodeBody(t, resp, &out)
			if out.Error.Field != tc.field {
				t.Errorf("error.field = %q (%s), want %q", out.Error.Field, out.Error.Message, tc.field)
			}
		})
	}
}

// TestServerPlanFrontier sweeps p_remote below the Eq. 5 saturation point and
// expects the per-point thread requirement to be non-decreasing (more remote
// traffic needs more latency hiding), matching scalar plans point for point.
func TestServerPlanFrontier(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := strings.Replace(planBody, `"target":0.95`,
		`"target":0.9,"frontier":{"param":"premote","from":0.05,"to":0.2,"steps":4}`, 1)
	resp := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out PlanFrontierResponse
	decodeBody(t, resp, &out)
	if out.Param != "premote" || out.Knob != "nt" {
		t.Errorf("envelope = %s/%s, want premote/nt", out.Param, out.Knob)
	}
	if len(out.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(out.Points))
	}
	prev := 0.0
	for i, pt := range out.Points {
		if pt.Error != nil {
			t.Fatalf("point %d (premote=%v): %s", i, pt.Sweep, pt.Error.Message)
		}
		if pt.Plan.Value < prev {
			t.Errorf("point %d: nt = %v after %v; want non-decreasing in premote", i, pt.Plan.Value, prev)
		}
		prev = pt.Plan.Value

		// Cross-check against the scalar endpoint at the same premote.
		sb := strings.Replace(planBody, `"p_remote":0.2`, fmt.Sprintf(`"p_remote":%v`, pt.Sweep), 1)
		sb = strings.Replace(sb, `"target":0.95`, `"target":0.9`, 1)
		sresp := postJSON(t, ts.URL+"/v1/plan", sb)
		var scalar PlanResponse
		decodeBody(t, sresp, &scalar)
		if scalar.Value != pt.Plan.Value {
			t.Errorf("point %d: frontier nt = %v, scalar nt = %v", i, pt.Plan.Value, scalar.Value)
		}
	}
}

// TestServerPlanFrontierMixed verifies per-point failure isolation: sweep
// values beyond the saturation p_remote answer 422-style point errors while
// feasible neighbors still answer.
func TestServerPlanFrontierMixed(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := strings.Replace(planBody, `"target":0.95`,
		`"target":0.9,"frontier":{"param":"premote","from":0.1,"to":0.9,"steps":3}`, 1)
	resp := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (point failures are positional)", resp.StatusCode)
	}
	var out PlanFrontierResponse
	decodeBody(t, resp, &out)
	var ok, failed int
	for _, pt := range out.Points {
		switch {
		case pt.Error != nil:
			if pt.Error.Status != http.StatusUnprocessableEntity {
				t.Errorf("point premote=%v: status %d, want 422", pt.Sweep, pt.Error.Status)
			}
			failed++
		default:
			ok++
		}
	}
	if ok == 0 || failed == 0 {
		t.Errorf("ok=%d failed=%d, want a mix of answered and infeasible points", ok, failed)
	}
}

// TestServerPlanMetrics verifies the plan-specific observability surface:
// the endpoint counter, the outcome counters and the probe histogram.
func TestServerPlanMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	postJSON(t, ts.URL+"/v1/plan", planBody).Body.Close()
	infeasible := strings.Replace(planBody, `"target":0.95`, `"target":1.01`, 1)
	postJSON(t, ts.URL+"/v1/plan", infeasible).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text := readAll(t, resp.Body)
	for _, want := range []string{
		`lattold_requests_total{endpoint="plan"} 2`,
		`lattold_plans_total{outcome="solved"} 1`,
		`lattold_plans_total{outcome="infeasible"} 1`,
		`lattold_plan_probes_count 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestServerSheds503DrainingRetryAfter is the load-shed regression test for
// the drain path: once the evaluator refuses new work, uncached requests
// come back 503 with a Retry-After hint, mirroring the 429 path.
func TestServerSheds503DrainingRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	srv.Evaluator().Close()

	for _, ep := range []string{"/v1/solve", "/v1/plan"} {
		body := validBody
		if ep == "/v1/plan" {
			body = planBody
		}
		resp := postJSON(t, ts.URL+ep, body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s during drain: status = %d, want 503", ep, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s during drain: 503 without Retry-After", ep)
		}
		resp.Body.Close()
	}
}

// readAll drains a reader into a string (tiny local helper to keep the
// metrics assertions readable).
func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
