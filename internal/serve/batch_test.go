package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lattol/internal/validate"
)

// TestEvaluatorBatch drives a mixed batch — solves, a tolerance item, a
// duplicate key and three invalid items — and checks that every outcome is
// positional, matches the single-request endpoints exactly, and lands in the
// shared cache.
func TestEvaluatorBatch(t *testing.T) {
	e := NewEvaluator(Config{})
	defer e.Close()
	ctx := context.Background()

	bad := baseRequest()
	bad.K = 0
	items := []BatchItemRequest{
		{ModelRequest: baseRequest()},
		{ModelRequest: baseRequest(), Op: "tolerance"},
		{ModelRequest: bad},
		{ModelRequest: baseRequest()}, // same key as item 0
		{ModelRequest: baseRequest(), Op: "tolerance", Subsystem: "memory", Mode: "zero-remote"},
		{ModelRequest: uniqueRequest(3), Op: "bogus"},
	}
	out := make([]BatchOutcome, len(items))
	if err := e.Batch(ctx, items, out); err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil || out[1].Err != nil || out[3].Err != nil {
		t.Fatalf("healthy items failed: [0]=%v [1]=%v [3]=%v", out[0].Err, out[1].Err, out[3].Err)
	}
	if validate.Field(out[2].Err) != "K" {
		t.Errorf("invalid config: field = %q (err %v), want K", validate.Field(out[2].Err), out[2].Err)
	}
	if validate.Field(out[4].Err) != "mode" {
		t.Errorf("memory+zero-remote: field = %q (err %v), want mode", validate.Field(out[4].Err), out[4].Err)
	}
	if validate.Field(out[5].Err) != "op" {
		t.Errorf("bad op: field = %q (err %v), want op", validate.Field(out[5].Err), out[5].Err)
	}
	if out[0].Cache != stateLead {
		t.Errorf("item 0 cache = %v, want miss", out[0].Cache)
	}
	if out[3].Cache != stateWait {
		t.Errorf("duplicate item cache = %v, want coalesced", out[3].Cache)
	}

	// Positional results match the single-request endpoints — which are now
	// pure cache hits on the very entries the batch populated.
	met, st, err := e.Solve(ctx, baseRequest())
	if err != nil || st != stateHit {
		t.Fatalf("follow-up solve: state %v err %v, want hit", st, err)
	}
	if out[0].Metrics != met || out[3].Metrics != met {
		t.Errorf("batch metrics differ from solve: [0]=%+v [3]=%+v want %+v", out[0].Metrics, out[3].Metrics, met)
	}
	tol, st, err := e.Tolerance(ctx, ToleranceRequest{ModelRequest: baseRequest()})
	if err != nil || st != stateHit {
		t.Fatalf("follow-up tolerance: state %v err %v, want hit", st, err)
	}
	if out[1].Tolerance != tol {
		t.Errorf("batch tolerance %+v differs from endpoint %+v", out[1].Tolerance, tol)
	}

	// A repeated batch is served from cache: every valid position hits and no
	// further solver runs happen.
	before := e.Metrics().solves.Load()
	out2 := make([]BatchOutcome, len(items))
	if err := e.Batch(ctx, items, out2); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3} {
		if out2[i].Cache != stateHit || out2[i].Err != nil {
			t.Errorf("repeat item %d: cache %v err %v, want hit", i, out2[i].Cache, out2[i].Err)
		}
	}
	if after := e.Metrics().solves.Load(); after != before {
		t.Errorf("repeated batch ran %d extra solves", after-before)
	}
}

// TestEvaluatorBatchMissesSolveAsOneTask pins the batching contract: all
// cache misses of one Batch call are submitted as a single worker task, so
// the solve-latency histogram records one observation while the solve counter
// records one run per item.
func TestEvaluatorBatchMissesSolveAsOneTask(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1})
	defer e.Close()

	items := []BatchItemRequest{
		{ModelRequest: uniqueRequest(1)},
		{ModelRequest: uniqueRequest(2)},
		{ModelRequest: uniqueRequest(3), Op: "tolerance"},
	}
	out := make([]BatchOutcome, len(items))
	if err := e.Batch(context.Background(), items, out); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("item %d: %v", i, out[i].Err)
		}
		if out[i].Cache != stateLead {
			t.Errorf("item %d cache = %v, want miss", i, out[i].Cache)
		}
	}
	if s := e.Metrics().solves.Load(); s != 3 {
		t.Errorf("solves = %d, want 3", s)
	}
	var buf bytes.Buffer
	e.Metrics().WriteText(&buf)
	if !strings.Contains(buf.String(), "lattold_solve_seconds_count 1\n") {
		t.Errorf("batch misses did not run as one worker task:\n%s", buf.String())
	}
}

// TestEvaluatorBatchEnvelope checks the envelope errors (empty and oversized
// batches) and the misuse panic on mismatched output storage.
func TestEvaluatorBatchEnvelope(t *testing.T) {
	e := NewEvaluator(Config{MaxBatchItems: 2})
	defer e.Close()
	ctx := context.Background()

	if err := e.Batch(ctx, nil, nil); validate.Field(err) != "items" {
		t.Errorf("empty batch: field = %q (err %v), want items", validate.Field(err), err)
	}
	three := []BatchItemRequest{
		{ModelRequest: baseRequest()}, {ModelRequest: baseRequest()}, {ModelRequest: baseRequest()},
	}
	if err := e.Batch(ctx, three, make([]BatchOutcome, 3)); validate.Field(err) != "items" {
		t.Errorf("oversized batch: field = %q (err %v), want items", validate.Field(err), err)
	}

	defer func() {
		if recover() == nil {
			t.Error("no panic on items/out length mismatch")
		}
	}()
	_ = e.Batch(ctx, three[:1], nil)
}

// TestEvaluatorBatchSheds fills the worker and the queue, then expects a
// batch's misses to shed as a whole: the envelope succeeds and every miss
// position reports ErrQueueFull.
func TestEvaluatorBatchSheds(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1, QueueDepth: 1})
	var solves atomic.Int32
	gate := make(chan struct{})
	e.solveHook = func(Key) {
		if solves.Add(1) == 1 {
			<-gate
		}
	}
	defer e.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _, _ = e.Solve(ctx, uniqueRequest(1)) }()
	waitUntil(t, "worker occupied", func() bool { return solves.Load() == 1 })
	wg.Add(1)
	go func() { defer wg.Done(); _, _, _ = e.Solve(ctx, uniqueRequest(2)) }()
	waitUntil(t, "queue slot filled", func() bool { return len(e.tasks) == 1 })

	items := []BatchItemRequest{{ModelRequest: uniqueRequest(3)}, {ModelRequest: uniqueRequest(4)}}
	out := make([]BatchOutcome, len(items))
	if err := e.Batch(ctx, items, out); err != nil {
		t.Fatalf("envelope error: %v", err)
	}
	for i := range out {
		if !errors.Is(out[i].Err, ErrQueueFull) {
			t.Errorf("item %d error = %v, want ErrQueueFull", i, out[i].Err)
		}
	}
	close(gate)
	wg.Wait()
}

// TestEvaluatorWaiterRetriesOnForeignCancel is the regression test for the
// coalesced-waiter inheritance bug: a request with a live context coalesces
// onto a leader whose context is cancelled before a worker picks its task up.
// The worker completes the entry with the leader's context error; that error
// belongs to the leader's request, not to the key, so the waiter must retry
// its own admission and obtain a result — never surface a stranger's
// context.Canceled.
func TestEvaluatorWaiterRetriesOnForeignCancel(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1, QueueDepth: 4})
	var solves atomic.Int32
	gate := make(chan struct{})
	e.solveHook = func(Key) {
		if solves.Add(1) == 1 {
			<-gate
		}
	}
	defer e.Close()

	// Occupy the only worker so the leader's task stays queued.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _, _ = e.Solve(context.Background(), uniqueRequest(1)) }()
	waitUntil(t, "worker occupied", func() bool { return solves.Load() == 1 })

	// The leader submits its task and then its context dies while queued.
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	var leaderErr error
	wg.Add(1)
	go func() { defer wg.Done(); _, _, leaderErr = e.Solve(leaderCtx, uniqueRequest(2)) }()
	waitUntil(t, "leader task queued", func() bool { return len(e.tasks) == 1 })

	// A second request with a live context coalesces onto the leader's entry.
	var waiterUp float64
	var waiterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		met, _, err := e.Solve(context.Background(), uniqueRequest(2))
		waiterUp, waiterErr = met.Up, err
	}()
	waitUntil(t, "waiter coalesced", func() bool { return e.Metrics().cacheCoalesced.Load() == 1 })

	// Kill the leader's context, then release the worker: it picks the task
	// up dead and completes the entry with context.Canceled.
	cancelLeader()
	close(gate)
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Errorf("leader error = %v, want context.Canceled", leaderErr)
	}
	if waiterErr != nil {
		t.Fatalf("waiter inherited a foreign error: %v", waiterErr)
	}
	if waiterUp <= 0 {
		t.Errorf("waiter U_p = %v, want > 0", waiterUp)
	}
}

// TestEvaluatorEvictionWithWaitersPending hammers a capacity-1 single-shard
// cache with distinct keys solving and coalescing concurrently. Pending
// entries are never on the LRU list, so eviction pressure from completing
// neighbors must not disturb them: every request gets a result. Run with
// -race this exercises complete/trim against getOrStart.
func TestEvaluatorEvictionWithWaitersPending(t *testing.T) {
	e := NewEvaluator(Config{Workers: 2, QueueDepth: 64, CacheEntries: 1, CacheShards: 1})
	defer e.Close()
	ctx := context.Background()

	const keys, dup = 6, 3
	errs := make([]error, keys*dup)
	var wg sync.WaitGroup
	for i := 0; i < keys; i++ {
		for j := 0; j < dup; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				_, _, errs[i*dup+j] = e.Solve(ctx, uniqueRequest(i))
			}(i, j)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if ev := e.Metrics().cacheEvictions.Load(); ev < keys-1 {
		t.Errorf("evictions = %d, want >= %d on a capacity-1 cache", ev, keys-1)
	}
	if n := e.cache.len(); n != 1 {
		t.Errorf("cached entries = %d, want 1", n)
	}
}
