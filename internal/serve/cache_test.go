package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// testKey builds a distinct valid-looking key for cache unit tests.
func testKey(i int) Key {
	return Key{op: opSolve, k: 4, threads: i + 1, memPorts: 1, swPorts: 1, runlength: 10}
}

func TestCacheHitMissEviction(t *testing.T) {
	c := newCache(2, 1)
	if len(c.shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(c.shards))
	}

	complete := func(k Key, tol float64) {
		e, st := c.getOrStart(k)
		if st != stateLead {
			t.Fatalf("getOrStart(%v) = %v, want lead", k, st)
		}
		c.complete(e, result{tol: tol}, nil)
	}

	complete(testKey(1), 1)
	complete(testKey(2), 2)

	// Touch key 1 so key 2 becomes the LRU victim.
	if e, st := c.getOrStart(testKey(1)); st != stateHit || e.res.tol != 1 {
		t.Fatalf("key 1: state %v tol %v, want hit 1", st, e.res.tol)
	}
	complete(testKey(3), 3)

	if _, st := c.getOrStart(testKey(2)); st != stateLead {
		t.Errorf("key 2 should have been evicted; state = %v", st)
	}
	if e, st := c.getOrStart(testKey(1)); st != stateHit || e.res.tol != 1 {
		t.Errorf("key 1: state %v tol %v, want hit 1", st, e.res.tol)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := newCache(4, 1)
	k := testKey(1)
	e, st := c.getOrStart(k)
	if st != stateLead {
		t.Fatalf("state = %v, want lead", st)
	}
	boom := errors.New("boom")
	c.complete(e, result{}, boom)
	select {
	case <-e.done:
	default:
		t.Fatal("complete did not close done")
	}
	if e.err != boom {
		t.Fatalf("err = %v, want boom", e.err)
	}
	if _, st := c.getOrStart(k); st != stateLead {
		t.Errorf("after a failure, state = %v, want lead (retry)", st)
	}
	if got := c.len(); got != 0 {
		t.Errorf("cache len = %d, want 0", got)
	}
}

// TestCacheCoalescing drives many goroutines at one key: exactly one may
// lead, everyone else waits and reads the leader's result. Run with -race.
func TestCacheCoalescing(t *testing.T) {
	c := newCache(16, 4)
	k := testKey(7)
	const n = 64

	var leaders atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e, st := c.getOrStart(k)
			if st == stateLead {
				leaders.Add(1)
				c.complete(e, result{tol: 0.75}, nil)
				return
			}
			<-e.done
			if e.err != nil || e.res.tol != 0.75 {
				t.Errorf("waiter got tol %v err %v", e.res.tol, e.err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := leaders.Load(); got != 1 {
		t.Errorf("leaders = %d, want 1", got)
	}
	if e, st := c.getOrStart(k); st != stateHit || e.res.tol != 0.75 {
		t.Errorf("after coalesced run: state %v tol %v, want hit 0.75", st, e.res.tol)
	}
}

func TestCacheShardingSpread(t *testing.T) {
	c := newCache(1024, 16)
	for i := 0; i < 256; i++ {
		e, st := c.getOrStart(testKey(i))
		if st != stateLead {
			t.Fatalf("key %d: state %v", i, st)
		}
		c.complete(e, result{}, nil)
	}
	populated := 0
	for i := range c.shards {
		if c.shards[i].linked > 0 {
			populated++
		}
	}
	if populated < 8 {
		t.Errorf("only %d of 16 shards populated by 256 distinct keys", populated)
	}
	if got := c.len(); got != 256 {
		t.Errorf("len = %d, want 256", got)
	}
}
