package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lattol/internal/access"
	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/surrogate"
	"lattol/internal/tolerance"
	"lattol/internal/validate"
)

// Shedding errors. They are returned the moment admission fails — no
// request waits on a queue it will never clear.
var (
	// ErrQueueFull reports that the pending-solve queue is at capacity
	// (HTTP 429: back off and retry).
	ErrQueueFull = errors.New("serve: solve queue full")
	// ErrDraining reports that the evaluator is shutting down and refuses
	// new work (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting new work")
)

// Config sizes the evaluator. The zero value selects sensible defaults.
type Config struct {
	// Workers bounds concurrent solver invocations; each worker owns one
	// reusable mms.Workspace. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds pending (admitted, not yet solving) evaluations;
	// submissions beyond it are shed with ErrQueueFull. Default 8×Workers.
	QueueDepth int
	// CacheEntries bounds completed results kept for reuse. Default 4096.
	CacheEntries int
	// CacheShards is the cache's lock-domain count, rounded up to a power
	// of two. Default 16.
	CacheShards int
	// SolveTimeout is the per-request evaluation budget applied by the HTTP
	// handlers. Default 10s.
	SolveTimeout time.Duration
	// MaxSweepPoints bounds the grid of one /v1/sweep request. Default 1024.
	MaxSweepPoints int
	// MaxBatchItems bounds the item list of one /v1/batch request. Default
	// 1024.
	MaxBatchItems int
	// RateLimit, when positive, enables per-client token-bucket admission on
	// the POST endpoints: sustained requests per second allowed per client
	// identity (X-Lattold-Client header, else remote host). 0 disables.
	RateLimit float64
	// RateBurst is the bucket capacity (instantaneous burst allowance) when
	// RateLimit is set. Default 2×RateLimit, at least 1.
	RateBurst float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 10 * time.Second
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 1024
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 1024
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = math.Max(1, 2*c.RateLimit)
	}
	return c
}

// task is one admitted evaluation waiting for a worker: either a single
// entry (ent) or the cache-missing entries of one batch request (ents),
// solved together as one lockstep batch.
type task struct {
	ent  *entry
	ents []*entry
	ctx  context.Context
	enq  time.Time
}

// Evaluator is the concurrent model-evaluation engine: canonicalized
// requests flow through the result cache (hit or coalesce) and, on a miss,
// through the bounded worker pool. It is safe for concurrent use.
type Evaluator struct {
	cfg   Config
	cache *cache
	met   *Metrics

	mu       sync.Mutex // guards draining and sends on tasks
	draining bool
	tasks    chan task
	wg       sync.WaitGroup

	// solveHook, when non-nil, runs in the worker immediately before each
	// solver invocation. Tests use it to count and gate solves.
	solveHook func(Key)

	// surr is the optional middle tier of the three-level lookup
	// (LRU → surrogate → solver), installed with SetSurrogate. Atomic so a
	// grid can be installed after the evaluator already serves traffic.
	surr atomic.Pointer[surrogateTier]
}

// surrogateTier pairs a loaded grid with its background refiner.
type surrogateTier struct {
	grid *surrogate.Grid
	ref  *surrogate.Refiner
}

// query maps a canonical key onto the grid's query space. Only keys matching
// everything the grid holds fixed qualify: plain symmetric-AMVA solves under
// the default geometric/per-distance pattern, no context-switch overhead,
// single-ported stations, and the grid's memory and switch times. Whether
// the remaining coordinates fall inside the lattice is the grid's own call
// (Lookup reports Ineligible).
func (t *surrogateTier) query(k *Key) (surrogate.Query, bool) {
	spec := t.grid.Spec()
	if k.op != opSolve || k.solver != mms.SymmetricAMVA ||
		k.pattern != patternGeometric || k.geoMode != access.PerDistance ||
		k.contextSwitch != 0 || k.memPorts != 1 || k.swPorts != 1 ||
		k.memoryTime != spec.MemoryTime || k.switchTime != spec.SwitchTime {
		return surrogate.Query{}, false
	}
	return surrogate.Query{K: k.k, NT: k.threads, R: k.runlength, PRemote: k.pRemote, Psw: k.psw}, true
}

// NewEvaluator starts the worker pool and returns a ready evaluator. Call
// Close to drain it.
func NewEvaluator(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	e := &Evaluator{
		cfg:   cfg,
		cache: newCache(cfg.CacheEntries, cfg.CacheShards),
		met:   newMetrics(),
		tasks: make(chan task, cfg.QueueDepth),
	}
	e.met.queueDepth = func() int { return len(e.tasks) }
	e.met.cachedEntries = e.cache.len
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Metrics returns the evaluator's live counters.
func (e *Evaluator) Metrics() *Metrics { return e.met }

// SetSurrogate installs (or, with nil, removes) the interpolated answer tier
// and starts a background refiner for it. Requests that state a max_error
// and miss the LRU consult the grid before falling back to the solver pool.
// Safe to call while serving; Close stops the refiner.
func (e *Evaluator) SetSurrogate(g *surrogate.Grid) {
	var t *surrogateTier
	if g != nil {
		t = &surrogateTier{grid: g, ref: surrogate.NewRefiner(g, surrogate.BuildOptions{})}
	}
	if old := e.surr.Swap(t); old != nil && old.ref != nil {
		old.ref.Close()
	}
}

// surrogateLookup tries the interpolated tier for a canonical key. It
// returns ok only when the grid certifies the answer within maxErr; every
// other outcome (no grid, ineligible key, bound too wide) is a recorded
// fall-through to the exact path. A bound-exceeded cell is handed to the
// background refiner so later identical traffic can hit.
func (e *Evaluator) surrogateLookup(k *Key, maxErr float64) (mms.Metrics, float64, bool) {
	t := e.surr.Load()
	if t == nil {
		return mms.Metrics{}, 0, false
	}
	q, ok := t.query(k)
	if !ok {
		e.met.surrogateIneligible.Add(1)
		return mms.Metrics{}, 0, false
	}
	start := time.Now()
	met, bound, st := t.grid.Lookup(q, maxErr)
	switch st {
	case surrogate.Hit:
		e.met.surrogateLatency.observe(time.Since(start))
		e.met.surrogateHits.Add(1)
		return met, bound, true
	case surrogate.BoundExceeded:
		e.met.surrogateBoundExceeded.Add(1)
		if t.ref != nil && t.ref.Request(q) {
			e.met.surrogateRefines.Add(1)
		}
	default:
		e.met.surrogateIneligible.Add(1)
	}
	return mms.Metrics{}, 0, false
}

// Draining reports whether Close has begun.
func (e *Evaluator) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Close drains the evaluator: new submissions are refused with ErrDraining,
// queued and in-flight evaluations finish, and Close returns when every
// worker has exited. Safe to call more than once.
func (e *Evaluator) Close() {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.tasks)
	}
	e.mu.Unlock()
	e.wg.Wait()
	if t := e.surr.Swap(nil); t != nil && t.ref != nil {
		t.ref.Close()
	}
}

// submit admits a task or sheds it. It never blocks: a full queue is an
// immediate ErrQueueFull, a draining evaluator an immediate ErrDraining.
func (e *Evaluator) submit(t task) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		e.met.shedDraining.Add(1)
		return ErrDraining
	}
	select {
	case e.tasks <- t:
		return nil
	default:
		e.met.shedQueueFull.Add(1)
		return ErrQueueFull
	}
}

// worker is the pool loop: one reusable solver workspace per worker (the
// sweep runner's per-worker pattern), so steady-state solves allocate
// nothing beyond model construction.
func (e *Evaluator) worker() {
	defer e.wg.Done()
	ws := new(mms.Workspace)
	for t := range e.tasks {
		e.met.queueWait.observe(time.Since(t.enq))
		if t.ents != nil {
			e.runBatch(ws, t)
			continue
		}
		if err := t.ctx.Err(); err != nil {
			// The submitter's context is the only one the task carries, so the
			// completion error is its context error. Coalesced waiters whose
			// own contexts are live treat that as foreign and retry (evalKey).
			e.cache.complete(t.ent, result{}, err)
			continue
		}
		e.met.inFlight.Add(1)
		if e.solveHook != nil {
			e.solveHook(t.ent.key)
		}
		start := time.Now()
		res, err := computeKey(ws, t.ent.key)
		e.met.solveLatency.observe(time.Since(start))
		e.met.inFlight.Add(-1)
		e.recordSolve(res, err)
		if n := e.cache.complete(t.ent, res, err); n > 0 {
			e.met.cacheEvictions.Add(uint64(n))
		}
	}
}

// recordSolve updates the solve counters for one completed evaluation.
// Tolerance evaluations solve two systems (real + ideal); both iteration
// counts are recorded so the histogram reflects every solver run, not every
// request.
func (e *Evaluator) recordSolve(res result, err error) {
	e.met.solves.Add(1)
	if err != nil {
		e.met.solveErrors.Add(1)
		return
	}
	if n := res.real.Iterations; n > 0 {
		e.met.solveIterations.observe(uint64(n))
	}
	if n := res.ideal.Iterations; n > 0 {
		e.met.solveIterations.observe(uint64(n))
	}
}

// runBatch solves the cache-missing entries of one batch request as a single
// mms batch on this worker's workspace, completing each entry positionally.
func (e *Evaluator) runBatch(ws *mms.Workspace, t task) {
	if err := t.ctx.Err(); err != nil {
		// The batch submitter is gone; complete every entry with its context
		// error. Waiters that coalesced onto these entries from other
		// requests see a foreign context error and retry.
		for _, ent := range t.ents {
			e.cache.complete(ent, result{}, err)
		}
		return
	}
	e.met.inFlight.Add(1)
	if e.solveHook != nil {
		for _, ent := range t.ents {
			e.solveHook(ent.key)
		}
	}
	start := time.Now()
	e.computeBatch(ws, t.ents)
	e.met.solveLatency.observe(time.Since(start))
	e.met.inFlight.Add(-1)
}

// computeBatch translates entries into mms batch items — one per solve key,
// two per tolerance key (real system, then ideal) — runs them as one lockstep
// batch and completes each entry from its span of the positional results.
func (e *Evaluator) computeBatch(ws *mms.Workspace, ents []*entry) {
	items := make([]mms.BatchItem, 0, 2*len(ents))
	for _, ent := range ents {
		k := ent.key
		cfg := k.config()
		items = append(items, mms.BatchItem{Config: cfg, Solver: k.solver})
		if k.op == opTolerance {
			ideal, err := tolerance.IdealConfig(cfg, k.sub, k.mode)
			if err != nil {
				// Canonical keys carry validated subsystem/mode pairs, so this
				// is unreachable; keep the span aligned and report it below.
				ideal = cfg
			}
			items = append(items, mms.BatchItem{Config: ideal, Solver: k.solver})
		}
	}
	results := mms.SolveBatch(items, mms.SolveOptions{Workspace: ws, WarmStart: true, Accel: mva.AccelAnderson})
	pos := 0
	for _, ent := range ents {
		k := ent.key
		var res result
		var err error
		switch k.op {
		case opTolerance:
			re, id := results[pos], results[pos+1]
			pos += 2
			switch {
			case re.Err != nil:
				err = re.Err
			case id.Err != nil:
				err = id.Err
			default:
				if _, ierr := tolerance.IdealConfig(k.config(), k.sub, k.mode); ierr != nil {
					err = ierr
					break
				}
				res = result{real: re.Metrics, ideal: id.Metrics, tol: tolerance.Ratio(re.Metrics.Up, id.Metrics.Up)}
			}
		default: // opSolve
			re := results[pos]
			pos++
			res.real, err = re.Metrics, re.Err
		}
		e.recordSolve(res, err)
		if n := e.cache.complete(ent, res, err); n > 0 {
			e.met.cacheEvictions.Add(uint64(n))
		}
	}
}

// computeKey runs the evaluation a key denotes on the worker's workspace.
// Warm starting and Anderson mixing are always on: each worker's workspace
// carries its previous converged solution forward, so runs of same-shape
// requests (sweeps fanned over the pool, repeated nearby configurations)
// converge from a continuation guess instead of from scratch, and the
// remaining iterations are accelerated (same fixed point; see mva.Accel).
func computeKey(ws *mms.Workspace, k Key) (result, error) {
	cfg := k.config()
	opts := mms.SolveOptions{Solver: k.solver, Workspace: ws, WarmStart: true, Accel: mva.AccelAnderson}
	switch k.op {
	case opSolve:
		model, err := mms.Build(cfg)
		if err != nil {
			return result{}, err
		}
		met, err := model.Solve(opts)
		if err != nil {
			return result{}, err
		}
		return result{real: met}, nil
	case opTolerance:
		idx, err := tolerance.Compute(cfg, k.sub, k.mode, opts)
		if err != nil {
			return result{}, err
		}
		return result{real: idx.Real, ideal: idx.Ideal, tol: idx.Tol}, nil
	default:
		return result{}, fmt.Errorf("serve: unknown operation %d", k.op)
	}
}

// retryableCompletion reports whether an entry's completion error belongs to
// the leader's request rather than to the key itself: the leader's context
// expired before a worker picked the task up, or its submission was shed.
// Nothing about the key is wrong in those cases, so a coalesced waiter whose
// own context is live must not inherit the error — it retries getOrStart.
// Solver and validation errors are properties of the key and surface to every
// waiter.
func retryableCompletion(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrQueueFull) ||
		errors.Is(err, ErrDraining)
}

// evalKey satisfies one canonical evaluation: cache hit, coalesce onto an
// identical in-flight evaluation, or lead a new one through the pool. When
// the caller's context expires while leading, the solve itself keeps running
// and its result still lands in the cache for later requests. A waiter that
// coalesced onto a leader whose context died (or whose submission was shed)
// retries with its own admission rather than inheriting the foreign error.
func (e *Evaluator) evalKey(ctx context.Context, k Key) (result, cacheState, error) {
	for {
		ent, st := e.cache.getOrStart(k)
		switch st {
		case stateHit:
			e.met.cacheHits.Add(1)
			return ent.res, st, nil
		case stateWait:
			e.met.cacheCoalesced.Add(1)
			select {
			case <-ent.done:
				if retryableCompletion(ent.err) && ctx.Err() == nil {
					continue
				}
				return ent.res, st, ent.err
			case <-ctx.Done():
				return result{}, st, ctx.Err()
			}
		default: // stateLead
			e.met.cacheMisses.Add(1)
			if err := e.submit(task{ent: ent, ctx: ctx, enq: time.Now()}); err != nil {
				// Wake any waiter that coalesced onto us in the meantime; our
				// admission error is foreign to them, so they retry. Nothing
				// is cached.
				e.cache.complete(ent, result{}, err)
				return result{}, st, err
			}
			select {
			case <-ent.done:
				return ent.res, st, ent.err
			case <-ctx.Done():
				return result{}, st, ctx.Err()
			}
		}
	}
}

// keyOutcome is the per-position product of evalKeyBatch.
type keyOutcome struct {
	res result
	st  cacheState
	err error
}

// evalKeyBatch satisfies a positional list of canonical keys. Cache hits are
// extracted inline before any solver runs; keys already in flight elsewhere
// are coalesced; every remaining miss is submitted as ONE batch task, so a
// single worker iterates all of them in lockstep with continuation seeding
// between the points. Positions whose key is the zero Key (op 0) are skipped —
// the caller has already resolved them. out must have len(keys).
func (e *Evaluator) evalKeyBatch(ctx context.Context, keys []Key, out []keyOutcome) {
	var pending []*entry // index-aligned with keys; nil on the all-hit fast path
	var leads []*entry
	for i := range keys {
		if keys[i].op == 0 {
			continue
		}
		ent, st := e.cache.getOrStart(keys[i])
		out[i].st = st
		switch st {
		case stateHit:
			e.met.cacheHits.Add(1)
			out[i].res = ent.res
		case stateWait:
			e.met.cacheCoalesced.Add(1)
			if pending == nil {
				pending = make([]*entry, len(keys))
			}
			pending[i] = ent
		default: // stateLead
			e.met.cacheMisses.Add(1)
			if pending == nil {
				pending = make([]*entry, len(keys))
			}
			pending[i] = ent
			leads = append(leads, ent)
		}
	}
	if pending == nil {
		return
	}
	if len(leads) > 0 {
		if err := e.submit(task{ents: leads, ctx: ctx, enq: time.Now()}); err != nil {
			// Admission failed for the whole batch. Complete our entries so
			// strangers coalesced onto them retry; our own positions surface
			// the admission error through the wait loop below.
			for _, ent := range leads {
				e.cache.complete(ent, result{}, err)
			}
		}
	}
	for i := range keys {
		ent := pending[i]
		if ent == nil {
			continue
		}
		if out[i].st != stateWait {
			// Our own lead: its completion error — solver, admission or our
			// context — is ours to surface. No retry.
			select {
			case <-ent.done:
				out[i].res, out[i].err = ent.res, ent.err
			case <-ctx.Done():
				out[i].err = ctx.Err()
			}
			continue
		}
		// Coalesced onto a stranger's in-flight evaluation: retry on foreign
		// completion errors, exactly as the single-key path does.
		select {
		case <-ent.done:
			if retryableCompletion(ent.err) && ctx.Err() == nil {
				out[i].res, out[i].st, out[i].err = e.evalKey(ctx, keys[i])
			} else {
				out[i].res, out[i].err = ent.res, ent.err
			}
		case <-ctx.Done():
			out[i].err = ctx.Err()
		}
	}
}

// Solve evaluates one model configuration, reporting how the cache satisfied
// the request alongside the metrics.
func (e *Evaluator) Solve(ctx context.Context, r ModelRequest) (mms.Metrics, cacheState, error) {
	met, _, st, err := e.SolveBounded(ctx, r)
	return met, st, err
}

// SolveBounded is Solve through the three-level lookup, additionally
// reporting the certified relative error bound of the answer. When the
// request states a MaxError, the tiers are consulted in order — LRU (exact,
// bound 0), surrogate grid (interpolated, bound ≤ MaxError), solver pool
// (exact, bound 0) — and the first to answer wins. Without a MaxError the
// request takes the exact path unchanged. The LRU and surrogate tiers run
// inline and allocation-free.
func (e *Evaluator) SolveBounded(ctx context.Context, r ModelRequest) (mms.Metrics, float64, cacheState, error) {
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		return mms.Metrics{}, 0, stateLead, err
	}
	if err := validateConfig(cfg, pat); err != nil {
		return mms.Metrics{}, 0, stateLead, err
	}
	k := canonicalKey(cfg, pat, geo, solver, opSolve, 0, 0)
	if r.MaxError > 0 {
		if res, ok := e.cache.peek(&k); ok {
			e.met.cacheHits.Add(1)
			return res.real, 0, stateHit, nil
		}
		if met, bound, ok := e.surrogateLookup(&k, r.MaxError); ok {
			return met, bound, stateSurrogate, nil
		}
	}
	res, st, err := e.evalKey(ctx, k)
	return res.real, 0, st, err
}

// ToleranceOutcome is the resolved product of one tolerance evaluation.
type ToleranceOutcome struct {
	Subsystem tolerance.Subsystem
	Mode      tolerance.IdealMode
	Tol       float64
	Real      mms.Metrics
	Ideal     mms.Metrics
}

// Zone classifies the outcome's tolerance index.
func (o ToleranceOutcome) Zone() tolerance.Zone { return tolerance.Classify(o.Tol) }

// Tolerance evaluates a tolerance index (real and ideal system solves share
// one cache entry under the request's canonical key).
func (e *Evaluator) Tolerance(ctx context.Context, r ToleranceRequest) (ToleranceOutcome, cacheState, error) {
	sub, err := parseSubsystem(r.Subsystem)
	if err != nil {
		return ToleranceOutcome{}, stateLead, err
	}
	mode, err := parseMode(r.Mode, sub)
	if err != nil {
		return ToleranceOutcome{}, stateLead, err
	}
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		return ToleranceOutcome{}, stateLead, err
	}
	if err := validateConfig(cfg, pat); err != nil {
		return ToleranceOutcome{}, stateLead, err
	}
	k := canonicalKey(cfg, pat, geo, solver, opTolerance, sub, mode)
	res, st, err := e.evalKey(ctx, k)
	if err != nil {
		return ToleranceOutcome{}, st, err
	}
	return ToleranceOutcome{Subsystem: sub, Mode: mode, Tol: res.tol, Real: res.real, Ideal: res.ideal}, st, nil
}

// BatchOutcome is the positional product of one batch item. Err covers the
// item's own failure — validation, admission, context or solver — and leaves
// its neighbors untouched. Exactly one of Metrics (op "solve") and Tolerance
// (op "tolerance") is meaningful, matching the item's operation.
type BatchOutcome struct {
	Cache     cacheState
	Err       error
	Metrics   mms.Metrics
	Tolerance ToleranceOutcome
	// Bound is the certified relative error bound of an interpolated answer
	// (Cache == stateSurrogate); 0 for exact results.
	Bound float64
}

// Batch evaluates a positional list of items. Each item's canonical key flows
// through the cache first — hits and in-flight coalescing are resolved before
// any solver runs — and all remaining misses are solved as one lockstep batch
// on a single worker, with continuation seeding between the points. out must
// have len(items). The returned error is an envelope error (malformed batch
// as a whole); per-item failures are positional in out.
func (e *Evaluator) Batch(ctx context.Context, items []BatchItemRequest, out []BatchOutcome) error {
	if len(out) != len(items) {
		panic(fmt.Sprintf("serve: Batch: len(out) = %d, want len(items) = %d", len(out), len(items)))
	}
	if len(items) == 0 || len(items) > e.cfg.MaxBatchItems {
		return validate.Fieldf("serve.BatchRequest", "items", "has %d items, want in [1,%d]",
			len(items), e.cfg.MaxBatchItems)
	}
	e.met.batchItems.Add(uint64(len(items)))
	keys := make([]Key, len(items))
	outcomes := make([]keyOutcome, len(items))
	var preResolved []bool
	var bounds []float64
	for i := range items {
		k, err := items[i].key()
		if err != nil {
			out[i] = BatchOutcome{Err: err}
			continue // keys[i] stays the zero Key; evalKeyBatch skips it
		}
		keys[i] = k
		// Per-item three-level lookup: a solve item stating a MaxError tries
		// the LRU (without taking leadership) and then the surrogate grid
		// before joining the lockstep solver batch.
		if k.op != opSolve || items[i].MaxError <= 0 {
			continue
		}
		if res, ok := e.cache.peek(&k); ok {
			e.met.cacheHits.Add(1)
			outcomes[i] = keyOutcome{res: res, st: stateHit}
		} else if met, bound, ok := e.surrogateLookup(&k, items[i].MaxError); ok {
			outcomes[i] = keyOutcome{res: result{real: met}, st: stateSurrogate}
			if bounds == nil {
				bounds = make([]float64, len(items))
			}
			bounds[i] = bound
		} else {
			continue
		}
		if preResolved == nil {
			preResolved = make([]bool, len(items))
		}
		preResolved[i] = true
		keys[i] = Key{} // resolved; evalKeyBatch skips it
	}
	e.evalKeyBatch(ctx, keys, outcomes)
	for i := range items {
		if preResolved != nil && preResolved[i] {
			out[i] = BatchOutcome{Cache: outcomes[i].st, Metrics: outcomes[i].res.real}
			if bounds != nil {
				out[i].Bound = bounds[i]
			}
			continue
		}
		if keys[i].op == 0 {
			continue
		}
		o := outcomes[i]
		out[i] = BatchOutcome{Cache: o.st, Err: o.err}
		if o.err != nil {
			continue
		}
		if keys[i].op == opTolerance {
			out[i].Tolerance = ToleranceOutcome{
				Subsystem: keys[i].sub,
				Mode:      keys[i].mode,
				Tol:       o.res.tol,
				Real:      o.res.real,
				Ideal:     o.res.ideal,
			}
		} else {
			out[i].Metrics = o.res.real
		}
	}
	return nil
}

// SweepPoint is one evaluated point of a sweep: the paper's measures plus
// both tolerance indices at that knob setting.
type SweepPoint struct {
	Value      float64     `json:"value"`
	Metrics    MetricsBody `json:"metrics"`
	TolNetwork float64     `json:"tol_network"`
	TolMemory  float64     `json:"tol_memory"`
}

// Sweep evaluates tolerance indices over a knob range. The grid is routed
// over the batch path: per-point cache hits are extracted up front, and every
// remaining point (two tolerance keys each: network and memory) is solved as
// one lockstep batch on a single worker, so the kernel's continuation seeding
// walks the grid in order. Repeated sweeps hit the cache; under overload the
// batch is shed as a whole and the sweep fails fast.
func (e *Evaluator) Sweep(ctx context.Context, r SweepRequest) ([]SweepPoint, error) {
	knob, err := mms.ParseParam(r.Param)
	if err != nil {
		return nil, validate.Fieldf("serve.SweepRequest", "param", "= %q, want one of %s",
			r.Param, strings.Join(mms.ParamNames(), ", "))
	}
	if r.Steps < 1 || r.Steps > e.cfg.MaxSweepPoints {
		return nil, validate.Fieldf("serve.SweepRequest", "steps", "= %d, want in [1,%d]", r.Steps, e.cfg.MaxSweepPoints)
	}
	if math.IsNaN(r.From) || math.IsInf(r.From, 0) {
		return nil, validate.Fieldf("serve.SweepRequest", "from", "= %v, want finite", r.From)
	}
	if math.IsNaN(r.To) || math.IsInf(r.To, 0) {
		return nil, validate.Fieldf("serve.SweepRequest", "to", "= %v, want finite", r.To)
	}
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		return nil, err
	}
	// The base configuration is validated per point, after the knob is
	// applied: the base value of the swept field is irrelevant (it is
	// overwritten), and an out-of-range swept value is reported against the
	// point that produced it.
	values := knob.Grid(r.From, r.To, r.Steps)
	keys := make([]Key, 2*len(values))
	for i, v := range values {
		pcfg := cfg
		knob.Apply(&pcfg, v)
		if err := validateConfig(pcfg, pat); err != nil {
			return nil, err
		}
		keys[2*i] = canonicalKey(pcfg, pat, geo, solver, opTolerance, tolerance.Network, tolerance.ZeroRemote)
		keys[2*i+1] = canonicalKey(pcfg, pat, geo, solver, opTolerance, tolerance.Memory, tolerance.ZeroDelay)
	}
	out := make([]keyOutcome, len(keys))
	e.evalKeyBatch(ctx, keys, out)
	points := make([]SweepPoint, len(values))
	for i, v := range values {
		net, mem := out[2*i], out[2*i+1]
		if net.err != nil {
			return nil, net.err
		}
		if mem.err != nil {
			return nil, mem.err
		}
		points[i] = SweepPoint{
			Value:      v,
			Metrics:    metricsBody(net.res.real),
			TolNetwork: net.res.tol,
			TolMemory:  mem.res.tol,
		}
	}
	return points, nil
}
