package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/sweep"
	"lattol/internal/tolerance"
	"lattol/internal/validate"
)

// Shedding errors. They are returned the moment admission fails — no
// request waits on a queue it will never clear.
var (
	// ErrQueueFull reports that the pending-solve queue is at capacity
	// (HTTP 429: back off and retry).
	ErrQueueFull = errors.New("serve: solve queue full")
	// ErrDraining reports that the evaluator is shutting down and refuses
	// new work (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting new work")
)

// Config sizes the evaluator. The zero value selects sensible defaults.
type Config struct {
	// Workers bounds concurrent solver invocations; each worker owns one
	// reusable mms.Workspace. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds pending (admitted, not yet solving) evaluations;
	// submissions beyond it are shed with ErrQueueFull. Default 8×Workers.
	QueueDepth int
	// CacheEntries bounds completed results kept for reuse. Default 4096.
	CacheEntries int
	// CacheShards is the cache's lock-domain count, rounded up to a power
	// of two. Default 16.
	CacheShards int
	// SolveTimeout is the per-request evaluation budget applied by the HTTP
	// handlers. Default 10s.
	SolveTimeout time.Duration
	// MaxSweepPoints bounds the grid of one /v1/sweep request. Default 1024.
	MaxSweepPoints int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 10 * time.Second
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 1024
	}
	return c
}

// task is one admitted evaluation waiting for a worker.
type task struct {
	ent *entry
	ctx context.Context
	enq time.Time
}

// Evaluator is the concurrent model-evaluation engine: canonicalized
// requests flow through the result cache (hit or coalesce) and, on a miss,
// through the bounded worker pool. It is safe for concurrent use.
type Evaluator struct {
	cfg   Config
	cache *cache
	met   *Metrics

	mu       sync.Mutex // guards draining and sends on tasks
	draining bool
	tasks    chan task
	wg       sync.WaitGroup

	// solveHook, when non-nil, runs in the worker immediately before each
	// solver invocation. Tests use it to count and gate solves.
	solveHook func(Key)
}

// NewEvaluator starts the worker pool and returns a ready evaluator. Call
// Close to drain it.
func NewEvaluator(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	e := &Evaluator{
		cfg:   cfg,
		cache: newCache(cfg.CacheEntries, cfg.CacheShards),
		met:   newMetrics(),
		tasks: make(chan task, cfg.QueueDepth),
	}
	e.met.queueDepth = func() int { return len(e.tasks) }
	e.met.cachedEntries = e.cache.len
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Metrics returns the evaluator's live counters.
func (e *Evaluator) Metrics() *Metrics { return e.met }

// Draining reports whether Close has begun.
func (e *Evaluator) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Close drains the evaluator: new submissions are refused with ErrDraining,
// queued and in-flight evaluations finish, and Close returns when every
// worker has exited. Safe to call more than once.
func (e *Evaluator) Close() {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.tasks)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// submit admits a task or sheds it. It never blocks: a full queue is an
// immediate ErrQueueFull, a draining evaluator an immediate ErrDraining.
func (e *Evaluator) submit(t task) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		e.met.shedDraining.Add(1)
		return ErrDraining
	}
	select {
	case e.tasks <- t:
		return nil
	default:
		e.met.shedQueueFull.Add(1)
		return ErrQueueFull
	}
}

// worker is the pool loop: one reusable solver workspace per worker (the
// sweep runner's per-worker pattern), so steady-state solves allocate
// nothing beyond model construction.
func (e *Evaluator) worker() {
	defer e.wg.Done()
	ws := new(mms.Workspace)
	for t := range e.tasks {
		e.met.queueWait.observe(time.Since(t.enq))
		if err := t.ctx.Err(); err != nil {
			// The leader (and every coalesced waiter) is already gone or
			// about to observe the same context error; don't burn a solve.
			e.cache.complete(t.ent, result{}, err)
			continue
		}
		e.met.inFlight.Add(1)
		if e.solveHook != nil {
			e.solveHook(t.ent.key)
		}
		start := time.Now()
		res, err := computeKey(ws, t.ent.key)
		e.met.solveLatency.observe(time.Since(start))
		e.met.inFlight.Add(-1)
		e.met.solves.Add(1)
		if err != nil {
			e.met.solveErrors.Add(1)
		} else {
			// Tolerance evaluations solve two systems (real + ideal); record
			// both iteration counts so the histogram reflects every solver
			// run, not every request.
			if n := res.real.Iterations; n > 0 {
				e.met.solveIterations.observe(uint64(n))
			}
			if n := res.ideal.Iterations; n > 0 {
				e.met.solveIterations.observe(uint64(n))
			}
		}
		if n := e.cache.complete(t.ent, res, err); n > 0 {
			e.met.cacheEvictions.Add(uint64(n))
		}
	}
}

// computeKey runs the evaluation a key denotes on the worker's workspace.
// Warm starting and Anderson mixing are always on: each worker's workspace
// carries its previous converged solution forward, so runs of same-shape
// requests (sweeps fanned over the pool, repeated nearby configurations)
// converge from a continuation guess instead of from scratch, and the
// remaining iterations are accelerated (same fixed point; see mva.Accel).
func computeKey(ws *mms.Workspace, k Key) (result, error) {
	cfg := k.config()
	opts := mms.SolveOptions{Solver: k.solver, Workspace: ws, WarmStart: true, Accel: mva.AccelAnderson}
	switch k.op {
	case opSolve:
		model, err := mms.Build(cfg)
		if err != nil {
			return result{}, err
		}
		met, err := model.Solve(opts)
		if err != nil {
			return result{}, err
		}
		return result{real: met}, nil
	case opTolerance:
		idx, err := tolerance.Compute(cfg, k.sub, k.mode, opts)
		if err != nil {
			return result{}, err
		}
		return result{real: idx.Real, ideal: idx.Ideal, tol: idx.Tol}, nil
	default:
		return result{}, fmt.Errorf("serve: unknown operation %d", k.op)
	}
}

// evalKey satisfies one canonical evaluation: cache hit, coalesce onto an
// identical in-flight evaluation, or lead a new one through the pool. When
// the caller's context expires while leading, the solve itself keeps running
// and its result still lands in the cache for later requests.
func (e *Evaluator) evalKey(ctx context.Context, k Key) (result, cacheState, error) {
	ent, st := e.cache.getOrStart(k)
	switch st {
	case stateHit:
		e.met.cacheHits.Add(1)
		return ent.res, st, nil
	case stateWait:
		e.met.cacheCoalesced.Add(1)
		select {
		case <-ent.done:
			return ent.res, st, ent.err
		case <-ctx.Done():
			return result{}, st, ctx.Err()
		}
	}
	e.met.cacheMisses.Add(1)
	if err := e.submit(task{ent: ent, ctx: ctx, enq: time.Now()}); err != nil {
		// Wake any waiter that coalesced onto us in the meantime; nothing
		// is cached, so the next identical request retries admission.
		e.cache.complete(ent, result{}, err)
		return result{}, st, err
	}
	select {
	case <-ent.done:
		return ent.res, st, ent.err
	case <-ctx.Done():
		return result{}, st, ctx.Err()
	}
}

// Solve evaluates one model configuration, reporting how the cache satisfied
// the request alongside the metrics.
func (e *Evaluator) Solve(ctx context.Context, r ModelRequest) (mms.Metrics, cacheState, error) {
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		return mms.Metrics{}, stateLead, err
	}
	if err := validateConfig(cfg, pat); err != nil {
		return mms.Metrics{}, stateLead, err
	}
	k := canonicalKey(cfg, pat, geo, solver, opSolve, 0, 0)
	res, st, err := e.evalKey(ctx, k)
	return res.real, st, err
}

// ToleranceOutcome is the resolved product of one tolerance evaluation.
type ToleranceOutcome struct {
	Subsystem tolerance.Subsystem
	Mode      tolerance.IdealMode
	Tol       float64
	Real      mms.Metrics
	Ideal     mms.Metrics
}

// Zone classifies the outcome's tolerance index.
func (o ToleranceOutcome) Zone() tolerance.Zone { return tolerance.Classify(o.Tol) }

// Tolerance evaluates a tolerance index (real and ideal system solves share
// one cache entry under the request's canonical key).
func (e *Evaluator) Tolerance(ctx context.Context, r ToleranceRequest) (ToleranceOutcome, cacheState, error) {
	sub, err := parseSubsystem(r.Subsystem)
	if err != nil {
		return ToleranceOutcome{}, stateLead, err
	}
	mode, err := parseMode(r.Mode, sub)
	if err != nil {
		return ToleranceOutcome{}, stateLead, err
	}
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		return ToleranceOutcome{}, stateLead, err
	}
	if err := validateConfig(cfg, pat); err != nil {
		return ToleranceOutcome{}, stateLead, err
	}
	k := canonicalKey(cfg, pat, geo, solver, opTolerance, sub, mode)
	res, st, err := e.evalKey(ctx, k)
	if err != nil {
		return ToleranceOutcome{}, st, err
	}
	return ToleranceOutcome{Subsystem: sub, Mode: mode, Tol: res.tol, Real: res.real, Ideal: res.ideal}, st, nil
}

// SweepPoint is one evaluated point of a sweep: the paper's measures plus
// both tolerance indices at that knob setting.
type SweepPoint struct {
	Value      float64     `json:"value"`
	Metrics    MetricsBody `json:"metrics"`
	TolNetwork float64     `json:"tol_network"`
	TolMemory  float64     `json:"tol_memory"`
}

// Sweep evaluates tolerance indices over a knob range. Points fan out on the
// sweep runner and flow point-by-point through the same cache and worker
// pool as single requests, so repeated sweeps hit the cache and a sweep
// competes fairly with interactive traffic for the bounded workers; under
// overload individual points are shed and the sweep fails fast.
func (e *Evaluator) Sweep(ctx context.Context, r SweepRequest) ([]SweepPoint, error) {
	knob, err := mms.ParseParam(r.Param)
	if err != nil {
		return nil, validate.Fieldf("serve.SweepRequest", "param", "= %q, want one of %s",
			r.Param, strings.Join(mms.ParamNames(), ", "))
	}
	if r.Steps < 1 || r.Steps > e.cfg.MaxSweepPoints {
		return nil, validate.Fieldf("serve.SweepRequest", "steps", "= %d, want in [1,%d]", r.Steps, e.cfg.MaxSweepPoints)
	}
	if math.IsNaN(r.From) || math.IsInf(r.From, 0) {
		return nil, validate.Fieldf("serve.SweepRequest", "from", "= %v, want finite", r.From)
	}
	if math.IsNaN(r.To) || math.IsInf(r.To, 0) {
		return nil, validate.Fieldf("serve.SweepRequest", "to", "= %v, want finite", r.To)
	}
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		return nil, err
	}
	// The base configuration is validated per point, after the knob is
	// applied: the base value of the swept field is irrelevant (it is
	// overwritten), and an out-of-range swept value is reported against the
	// point that produced it.
	values := knob.Grid(r.From, r.To, r.Steps)
	points, err := sweep.Run(ctx, values, sweep.Options{Workers: e.cfg.Workers, FailFast: true},
		func(v float64) (SweepPoint, error) {
			pcfg := cfg
			knob.Apply(&pcfg, v)
			if err := validateConfig(pcfg, pat); err != nil {
				return SweepPoint{}, err
			}
			net, _, err := e.evalKey(ctx, canonicalKey(pcfg, pat, geo, solver, opTolerance, tolerance.Network, tolerance.ZeroRemote))
			if err != nil {
				return SweepPoint{}, err
			}
			mem, _, err := e.evalKey(ctx, canonicalKey(pcfg, pat, geo, solver, opTolerance, tolerance.Memory, tolerance.ZeroDelay))
			if err != nil {
				return SweepPoint{}, err
			}
			return SweepPoint{
				Value:      v,
				Metrics:    metricsBody(net.real),
				TolNetwork: net.tol,
				TolMemory:  mem.tol,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return points, nil
}
