package serve_test

// The client library (internal/client) duplicates serve's wire types instead
// of importing them: serve imports cluster imports client, so a client→serve
// import would cycle. This test is the lock on that duplication — the two
// packages' wire structs must describe the identical JSON shape, field for
// field, tag for tag. An external test package may import both sides without
// entering the import graph.

import (
	"reflect"
	"strings"
	"testing"

	lattolclient "lattol/internal/client"
	"lattol/internal/serve"
)

// wireShape reduces a wire type to its JSON structure: structs become
// tag→shape maps (embedded structs inlined, `json:"-"` fields dropped, as
// encoding/json does), pointers and slices unwrap to their element, numbers
// collapse by kind family.
func wireShape(t *testing.T, typ reflect.Type) any {
	switch typ.Kind() {
	case reflect.Pointer, reflect.Slice:
		return []any{typ.Kind().String(), wireShape(t, typ.Elem())}
	case reflect.Struct:
		shape := map[string]any{}
		var walk func(reflect.Type)
		walk = func(st reflect.Type) {
			for i := 0; i < st.NumField(); i++ {
				f := st.Field(i)
				tag := f.Tag.Get("json")
				if tag == "-" {
					continue
				}
				if f.Anonymous && tag == "" {
					walk(f.Type)
					continue
				}
				name, opts, _ := strings.Cut(tag, ",")
				if name == "" {
					name = f.Name
				}
				key := name
				if strings.Contains(opts, "omitempty") {
					key += ",omitempty"
				}
				if _, dup := shape[key]; dup {
					t.Fatalf("%s: duplicate wire field %q", st, key)
				}
				shape[key] = wireShape(t, f.Type)
			}
		}
		walk(typ)
		return shape
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return "int"
	case reflect.Float32, reflect.Float64:
		return "float"
	default:
		return typ.Kind().String()
	}
}

func TestWireParity(t *testing.T) {
	pairs := []struct {
		name         string
		server, wire any
	}{
		{"ModelRequest", serve.ModelRequest{}, lattolclient.ModelRequest{}},
		{"ToleranceRequest", serve.ToleranceRequest{}, lattolclient.ToleranceRequest{}},
		{"BatchItemRequest", serve.BatchItemRequest{}, lattolclient.BatchItemRequest{}},
		{"BatchRequest", serve.BatchRequest{}, lattolclient.BatchRequest{}},
		{"PlanFrontierRequest", serve.PlanFrontierRequest{}, lattolclient.PlanFrontierRequest{}},
		{"PlanRequest", serve.PlanRequest{}, lattolclient.PlanRequest{}},
		{"MetricsBody", serve.MetricsBody{}, lattolclient.MetricsBody{}},
		{"SolveResponse", serve.SolveResponse{}, lattolclient.SolveResponse{}},
		{"ToleranceResponse", serve.ToleranceResponse{}, lattolclient.ToleranceResponse{}},
		{"BatchItemResponse", serve.BatchItemResponse{}, lattolclient.BatchItemResponse{}},
		{"BatchResponse", serve.BatchResponse{}, lattolclient.BatchResponse{}},
		{"PlanProbe", serve.PlanProbe{}, lattolclient.PlanProbe{}},
		{"PlanResponse", serve.PlanResponse{}, lattolclient.PlanResponse{}},
		{"HealthResponse", serve.HealthResponse{}, lattolclient.HealthResponse{}},
		{"ErrorBody", serve.ErrorBody{}, lattolclient.ErrorBody{}},
		{"ErrorResponse", serve.ErrorResponse{}, lattolclient.ErrorResponse{}},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			ss := wireShape(t, reflect.TypeOf(p.server))
			cs := wireShape(t, reflect.TypeOf(p.wire))
			if !reflect.DeepEqual(ss, cs) {
				t.Errorf("wire shape diverged:\nserve:  %v\nclient: %v", ss, cs)
			}
		})
	}
}
