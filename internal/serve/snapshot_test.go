package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"lattol/internal/surrogate"
)

func newSnapStore(t *testing.T) *surrogate.Store {
	t.Helper()
	s, err := surrogate.NewStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

// primeEvaluator runs a few distinct exact evaluations so the cache has
// content worth snapshotting.
func primeEvaluator(t *testing.T, e *Evaluator) int {
	t.Helper()
	n := 0
	for _, threads := range []int{2, 4, 8} {
		req := baseRequest()
		req.Threads = threads
		if _, _, err := e.Solve(context.Background(), req); err != nil {
			t.Fatalf("prime solve (threads=%d): %v", threads, err)
		}
		n++
	}
	tr := ToleranceRequest{ModelRequest: baseRequest()}
	if _, _, err := e.Tolerance(context.Background(), tr); err != nil {
		t.Fatalf("prime tolerance: %v", err)
	}
	return n + 1
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	store := newSnapStore(t)

	a := NewEvaluator(Config{Workers: 2})
	want := primeEvaluator(t, a)
	n, err := a.SnapshotCache(store)
	a.Close()
	if err != nil {
		t.Fatalf("SnapshotCache: %v", err)
	}
	if n != want {
		t.Fatalf("snapshot wrote %d entries, want %d", n, want)
	}

	b := NewEvaluator(Config{Workers: 2})
	defer b.Close()
	var solves atomic.Int64
	b.solveHook = func(Key) { solves.Add(1) }
	var logs []string
	if got := b.RestoreCache(store, func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }); got != n {
		t.Fatalf("restored %d entries, want %d (logs: %q)", got, n, logs)
	}
	if len(logs) != 0 {
		t.Errorf("clean restore warned: %q", logs)
	}

	// Every primed request is now a cache hit on the restarted evaluator —
	// no solver runs.
	for _, threads := range []int{2, 4, 8} {
		req := baseRequest()
		req.Threads = threads
		met, st, err := b.Solve(context.Background(), req)
		if err != nil || st != stateHit {
			t.Fatalf("restored solve (threads=%d): st=%v err=%v", threads, st, err)
		}
		if met.Up <= 0 {
			t.Errorf("restored Up = %v", met.Up)
		}
	}
	if out, st, err := b.Tolerance(context.Background(), ToleranceRequest{ModelRequest: baseRequest()}); err != nil || st != stateHit || out.Tol <= 0 {
		t.Fatalf("restored tolerance: st=%v tol=%v err=%v", st, out.Tol, err)
	}
	if solves.Load() != 0 {
		t.Errorf("%d solver runs after restore, want 0", solves.Load())
	}
	if got := b.Metrics().snapshotRestored.Load(); got != uint64(n) {
		t.Errorf("snapshotRestored metric = %d, want %d", got, n)
	}
}

func TestRestoreMissingSnapshotIsSilentColdStart(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1})
	defer e.Close()
	var logs []string
	if n := e.RestoreCache(newSnapStore(t), func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }); n != 0 {
		t.Errorf("restored %d from an empty store, want 0", n)
	}
	if len(logs) != 0 {
		t.Errorf("cold start warned: %q", logs)
	}
}

// relinkMutated rewrites the current snapshot blob through mutate and points
// the snapshot ref at the mutated copy (keeping the store self-consistent,
// since blobs are content-addressed).
func relinkMutated(t *testing.T, store *surrogate.Store, mutate func([]byte) []byte) {
	t.Helper()
	h, err := store.Resolve(SnapshotRefName)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	data, err := store.Get(h)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	h2, err := store.Put(mutate(append([]byte(nil), data...)))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := store.Link(SnapshotRefName, h2); err != nil {
		t.Fatalf("Link: %v", err)
	}
}

// snapshotThen returns a store holding a snapshot of a primed evaluator,
// mutated by mutate, plus a fresh evaluator to restore into.
func snapshotThen(t *testing.T, mutate func(*surrogate.Store)) (*Evaluator, *surrogate.Store, *[]string) {
	t.Helper()
	store := newSnapStore(t)
	a := NewEvaluator(Config{Workers: 2})
	primeEvaluator(t, a)
	if _, err := a.SnapshotCache(store); err != nil {
		t.Fatalf("SnapshotCache: %v", err)
	}
	a.Close()
	mutate(store)
	b := NewEvaluator(Config{Workers: 1})
	t.Cleanup(b.Close)
	logs := new([]string)
	n := b.RestoreCache(store, func(f string, a ...any) { *logs = append(*logs, fmt.Sprintf(f, a...)) })
	if n != 0 {
		t.Fatalf("restored %d entries from a damaged snapshot, want 0", n)
	}
	return b, store, logs
}

// assertWarnedAndServes checks the damaged-snapshot contract: a warning was
// logged, and the evaluator still answers exact requests correctly.
func assertWarnedAndServes(t *testing.T, e *Evaluator, logs *[]string, wantSubstr string) {
	t.Helper()
	found := false
	for _, l := range *logs {
		if strings.Contains(l, wantSubstr) {
			found = true
		}
	}
	if !found {
		t.Errorf("no warning containing %q, got %q", wantSubstr, *logs)
	}
	met, st, err := e.Solve(context.Background(), baseRequest())
	if err != nil || st != stateLead || met.Up <= 0 {
		t.Errorf("post-recovery solve: st=%v up=%v err=%v, want clean miss", st, met.Up, err)
	}
}

func TestRestoreCorruptSnapshotWarnsAndStartsCold(t *testing.T) {
	e, _, logs := snapshotThen(t, func(store *surrogate.Store) {
		// Corrupt the blob in place: Get's checksum catches it.
		h, err := store.Resolve(SnapshotRefName)
		if err != nil {
			t.Fatalf("Resolve: %v", err)
		}
		path := filepath.Join(store.Dir(), "blobs", h)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	})
	assertWarnedAndServes(t, e, logs, "starting cold")
}

func TestRestoreTruncatedSnapshotWarnsAndStartsCold(t *testing.T) {
	e, _, logs := snapshotThen(t, func(store *surrogate.Store) {
		relinkMutated(t, store, func(b []byte) []byte { return b[:len(b)/2] })
	})
	assertWarnedAndServes(t, e, logs, "starting cold")
}

func TestRestoreFormatVersionMismatchWarnsAndStartsCold(t *testing.T) {
	e, _, logs := snapshotThen(t, func(store *surrogate.Store) {
		relinkMutated(t, store, func(b []byte) []byte {
			b[len(snapMagic)] = 99 // the u32 layout version follows the magic
			return b
		})
	})
	assertWarnedAndServes(t, e, logs, "starting cold")
}

func TestRestoreSolverVersionMismatchWarnsAndStartsCold(t *testing.T) {
	e, _, logs := snapshotThen(t, func(store *surrogate.Store) {
		relinkMutated(t, store, func(b []byte) []byte {
			// The solver tag string follows magic + version + length; flip
			// its first character. Same length, so the layout stays intact.
			b[len(snapMagic)+8] ^= 0x20
			return b
		})
	})
	assertWarnedAndServes(t, e, logs, "solver version")
}

func TestRestartAgainstPersistedGridServesFirstRequestFromSurrogate(t *testing.T) {
	// The acceptance scenario: one process builds and persists the grid;
	// a restarted process loads it from disk and answers its very first
	// max_error request from the surrogate tier, no solver warm-up.
	store := newSnapStore(t)
	if _, err := surrogate.SaveGrid(store, buildTestGrid(t)); err != nil {
		t.Fatalf("SaveGrid: %v", err)
	}

	// "Restart": a fresh evaluator whose grid comes purely from disk.
	g, err := surrogate.LoadGrid(store, testGridSpec())
	if err != nil {
		t.Fatalf("LoadGrid: %v", err)
	}
	e := NewEvaluator(Config{Workers: 1})
	defer e.Close()
	var solves atomic.Int64
	e.solveHook = func(Key) { solves.Add(1) }
	e.SetSurrogate(g)

	req := midCellRequest()
	req.MaxError = 0.9
	met, bound, st, err := e.SolveBounded(context.Background(), req)
	if err != nil {
		t.Fatalf("first request: %v", err)
	}
	if st != stateSurrogate {
		t.Fatalf("first request state = %v, want surrogate", st)
	}
	if solves.Load() != 0 {
		t.Errorf("first request ran %d solves, want 0", solves.Load())
	}
	if !(bound > 0) || met.Up <= 0 {
		t.Errorf("first request (bound %v, Up %v)", bound, met.Up)
	}
}
