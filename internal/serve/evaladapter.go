package serve

import (
	"context"

	"lattol/internal/eval"
	"lattol/internal/tolerance"
)

// planEvaluator adapts the serving Evaluator onto eval.Evaluator (and
// eval.BatchEvaluator), so an inverse plan's probes flow through the exact
// same machinery as /v1/solve and /v1/tolerance traffic: canonical keys, the
// sharded LRU, in-flight coalescing and the bounded worker pool. Two plans
// against the same model share probe results with each other and with plain
// forward requests — repeating a plan costs zero solves.
//
// The pattern kind is fixed per request (it is not part of mms.Config);
// everything else of the canonical key derives from the probe configuration.
// Probes are always exact: the surrogate tier is never consulted, so every
// answer a plan is built from carries bound 0.
type planEvaluator struct {
	e   *Evaluator
	pat patternKind

	// Batch scratch, reused across lockstep frontier rounds.
	keys []Key
	outs []keyOutcome
}

// solveCost converts a cache outcome into the number of model solves the
// probe actually ran: cache hits and coalesced waits cost nothing; only a
// lead ran the solver (once for a solve key, real+ideal for a tolerance key).
func solveCost(st cacheState, solves int) int {
	if st == stateLead {
		return solves
	}
	return 0
}

// keysFor appends the canonical keys one probe needs: a solve key when no
// ideal system is requested, else one tolerance key per requested subsystem
// (each of which co-solves the real system).
func (pe *planEvaluator) keysFor(keys []Key, cfg eval.Config, opts eval.Options) []Key {
	m := cfg.Model
	if !opts.TolNetwork && !opts.TolMemory {
		return append(keys, canonicalKey(m, pe.pat, m.GeometricMode, cfg.Solver, opSolve, 0, 0))
	}
	if opts.TolNetwork {
		keys = append(keys, canonicalKey(m, pe.pat, m.GeometricMode, cfg.Solver, opTolerance, tolerance.Network, tolerance.ZeroRemote))
	}
	if opts.TolMemory {
		keys = append(keys, canonicalKey(m, pe.pat, m.GeometricMode, cfg.Solver, opTolerance, tolerance.Memory, tolerance.ZeroDelay))
	}
	return keys
}

// assemble folds the per-key outcomes of one probe into its metrics. The
// first key always carries the real-system metrics (tolerance evaluations
// co-solve the real system).
func assemble(opts eval.Options, outs []keyOutcome) (eval.Metrics, error) {
	var met eval.Metrics
	for i := range outs {
		if outs[i].err != nil {
			return eval.Metrics{}, outs[i].err
		}
	}
	met.Metrics = outs[0].res.real
	if !opts.TolNetwork && !opts.TolMemory {
		met.Solves = solveCost(outs[0].st, 1)
		return met, nil
	}
	i := 0
	if opts.TolNetwork {
		met.TolNetwork = outs[i].res.tol
		met.Solves += solveCost(outs[i].st, 2)
		i++
	}
	if opts.TolMemory {
		met.TolMemory = outs[i].res.tol
		met.Solves += solveCost(outs[i].st, 2)
	}
	return met, nil
}

// Evaluate satisfies eval.Evaluator: one probe through the cache.
func (pe *planEvaluator) Evaluate(ctx context.Context, cfg eval.Config, opts eval.Options) (eval.Metrics, error) {
	pe.keys = pe.keysFor(pe.keys[:0], cfg, opts)
	if cap(pe.outs) < len(pe.keys) {
		pe.outs = make([]keyOutcome, len(pe.keys))
	}
	outs := pe.outs[:len(pe.keys)]
	for i := range outs {
		res, st, err := pe.e.evalKey(ctx, pe.keys[i])
		outs[i] = keyOutcome{res: res, st: st, err: err}
	}
	return assemble(opts, outs)
}

// EvaluateBatch satisfies eval.BatchEvaluator: one lockstep frontier round
// through the cache. Hits resolve inline; all remaining misses are submitted
// as one batch task, exactly like /v1/batch items. out must have len(cfgs).
func (pe *planEvaluator) EvaluateBatch(ctx context.Context, cfgs []eval.Config, opts eval.Options, out []eval.Outcome) {
	if len(out) != len(cfgs) {
		panic("serve: planEvaluator.EvaluateBatch: len(out) != len(cfgs)")
	}
	keys := pe.keys[:0]
	for i := range cfgs {
		keys = pe.keysFor(keys, cfgs[i], opts)
	}
	pe.keys = keys
	perCfg := len(keys) / max(len(cfgs), 1)
	if cap(pe.outs) < len(keys) {
		pe.outs = make([]keyOutcome, len(keys))
	}
	outs := pe.outs[:len(keys)]
	for i := range outs {
		outs[i] = keyOutcome{}
	}
	pe.e.evalKeyBatch(ctx, keys, outs)
	for i := range cfgs {
		met, err := assemble(opts, outs[i*perCfg:(i+1)*perCfg])
		out[i] = eval.Outcome{Metrics: met, Err: err}
	}
}
