package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"lattol/internal/cluster"
	"lattol/internal/inverse"
	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/validate"
)

// MetricsBody is the wire form of the paper's performance measures.
type MetricsBody struct {
	Up             float64 `json:"u_p"`
	LambdaProc     float64 `json:"lambda"`
	LambdaNet      float64 `json:"lambda_net"`
	SObs           float64 `json:"s_obs"`
	LObs           float64 `json:"l_obs"`
	CycleTime      float64 `json:"cycle_time"`
	MemUtilization float64 `json:"mem_utilization"`
	OutUtilization float64 `json:"out_utilization"`
	InUtilization  float64 `json:"in_utilization"`
	Iterations     int     `json:"iterations"`
}

func metricsBody(m mms.Metrics) MetricsBody {
	return MetricsBody{
		Up:             m.Up,
		LambdaProc:     m.LambdaProc,
		LambdaNet:      m.LambdaNet,
		SObs:           m.SObs,
		LObs:           m.LObs,
		CycleTime:      m.CycleTime,
		MemUtilization: m.MemUtilization,
		OutUtilization: m.OutUtilization,
		InUtilization:  m.InUtilization,
		Iterations:     m.Iterations,
	}
}

// SolveResponse is the body of a successful POST /v1/solve. ErrorBound is
// present on interpolated (surrogate-tier) answers: the certified relative
// error bound of every reported metric, at most the request's max_error.
// Exact answers omit it.
type SolveResponse struct {
	Metrics    MetricsBody `json:"metrics"`
	ErrorBound float64     `json:"error_bound,omitempty"`
}

// ToleranceResponse is the body of a successful POST /v1/tolerance.
type ToleranceResponse struct {
	Subsystem string      `json:"subsystem"`
	Mode      string      `json:"mode"`
	Tol       float64     `json:"tol"`
	Zone      string      `json:"zone"`
	Real      MetricsBody `json:"real"`
	Ideal     MetricsBody `json:"ideal"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	Param  string       `json:"param"`
	Points []SweepPoint `json:"points"`
}

// BatchItemResponse is the positional outcome of one batch item. Exactly one
// of Error, Solve and Tolerance is set; Cache accompanies the successful
// outcomes.
type BatchItemResponse struct {
	Error     *ErrorBody         `json:"error,omitempty"`
	Cache     string             `json:"cache,omitempty"`
	Solve     *SolveResponse     `json:"solve,omitempty"`
	Tolerance *ToleranceResponse `json:"tolerance,omitempty"`
}

// BatchResponse is the body of POST /v1/batch. The envelope is 200 whenever
// the batch itself was well-formed; item failures are reported positionally
// with the same status codes their single-request endpoints would return.
type BatchResponse struct {
	Results []BatchItemResponse `json:"results"`
}

// ErrorBody names what went wrong; Field is present for validation failures
// and holds the wire name of the offending request field.
type ErrorBody struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status        string  `json:"status"` // "ok" or "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// goToWireField maps Go field names of the validated structs to their wire
// names, so a 400 points at the JSON field the client actually sent.
var goToWireField = map[string]string{
	"K":             "k",
	"Threads":       "threads",
	"Runlength":     "runlength",
	"ContextSwitch": "context_switch",
	"MemoryTime":    "memory_time",
	"SwitchTime":    "switch_time",
	"PRemote":       "p_remote",
	"Psw":           "psw",
	"MemoryPorts":   "memory_ports",
	"SwitchPorts":   "switch_ports",
	"Solver":        "solver",
	"MaxError":      "max_error",
	"Tolerance":     "tolerance",
	"Damping":       "damping",
	// inverse.Spec / inverse.FrontierSpec fields → PlanRequest wire names.
	"Knob":      "knob",
	"Metric":    "metric",
	"Target":    "target",
	"Relation":  "relation",
	"Lo":        "knob_min",
	"Hi":        "knob_max",
	"KnobTol":   "knob_tol",
	"MaxProbes": "max_probes",
	"Sweep":     "frontier.param",
	"From":      "frontier.from",
	"To":        "frontier.to",
	"Steps":     "frontier.steps",
}

func wireField(goName string) string {
	if w, ok := goToWireField[goName]; ok {
		return w
	}
	return goName
}

// Server is the HTTP facade over an Evaluator, optionally one node of a
// consistent-hash cluster (SetCluster) and optionally rate-limited per
// client (Config.RateLimit).
type Server struct {
	eval  *Evaluator
	mux   *http.ServeMux
	cl    *cluster.Cluster
	limit *rateLimiter
}

// NewServer builds a server (and its evaluator) for the configuration.
// Call Close after shutting down the HTTP listener to drain the pool.
func NewServer(cfg Config) *Server {
	return NewServerWith(NewEvaluator(cfg))
}

// NewServerWith wraps an existing evaluator.
func NewServerWith(eval *Evaluator) *Server {
	s := &Server{eval: eval, mux: http.NewServeMux()}
	if eval.cfg.RateLimit > 0 {
		s.limit = newRateLimiter(eval.cfg.RateLimit, eval.cfg.RateBurst)
		eval.met.rateClients = s.limit.clients
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/tolerance", s.handleTolerance)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler serving the v1 API, with per-client rate
// limiting in front when Config.RateLimit is set. The limiter admits POSTs
// only — GETs (health probes, metrics scrapes) are free — and exempts peer
// forwards: a forward already spent the origin node's budget for that
// client, and answering 429 to a peer would just bounce the work back as a
// local solve there.
func (s *Server) Handler() http.Handler {
	if s.limit == nil {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.Header.Get(cluster.ForwardHeader) == "" {
			if ok, retryAfter := s.limit.allow(clientID(r)); !ok {
				s.eval.met.shedRateLimited.Add(1)
				secs := int(retryAfter / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				s.writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("serve: client %q over the request rate limit", clientID(r)))
				return
			}
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Evaluator returns the underlying evaluation engine.
func (s *Server) Evaluator() *Evaluator { return s.eval }

// Close drains the evaluator. Call it after the HTTP server has stopped
// accepting requests (e.g. after http.Server.Shutdown returns), so in-flight
// handlers finish their evaluations first.
func (s *Server) Close() { s.eval.Close() }

// maxBodyBytes bounds a request body; the largest legitimate request is a
// few hundred bytes.
const maxBodyBytes = 1 << 20

// readBody reads the bounded request body. The raw bytes are kept because
// the cluster layer forwards them verbatim — re-encoding a decoded request
// would have to prove it round-trips exactly; relaying bytes doesn't.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("invalid request body: %w", err)
	}
	return body, nil
}

// decodeStrict decodes one JSON object from raw bytes: unknown fields and
// trailing data are errors.
func decodeStrict(body []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid JSON body: trailing data after the request object")
	}
	return nil
}

// decodeJSON strictly decodes one JSON object straight off the request.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	body, err := readBody(w, r)
	if err != nil {
		return err
	}
	return decodeStrict(body, dst)
}

// statusFor maps an evaluation error to its HTTP status.
func statusFor(err error) int {
	var fe *validate.FieldError
	var nce *mva.NonConvergenceError
	var inf *inverse.InfeasibleError
	switch {
	case errors.As(err, &fe):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.As(err, &nce):
		// The model is well-formed but its fixed point did not stabilize:
		// the request cannot be served as posed.
		return http.StatusUnprocessableEntity
	case errors.As(err, &inf):
		// The plan is well-formed but no knob value in the search interval
		// reaches the target: the question has no answer as posed.
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, body any) {
	s.eval.met.countStatus(code)
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		// Keep a more specific hint (the rate limiter's refill time, a relayed
		// peer's own header) when one is already set.
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, ErrorResponse{Error: ErrorBody{
		Status:  code,
		Message: err.Error(),
		Field:   wireField(validate.Field(err)),
	}})
}

// reqContext applies the per-request evaluation budget.
func (s *Server) reqContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.eval.cfg.SolveTimeout)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.eval.met.requestsSolve.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var req ModelRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if k, err := SolveKey(req); err == nil && s.routeKeyed(w, r, k.hash(), body) {
		return
	}
	ctx, cancel := s.reqContext(r)
	defer cancel()
	met, bound, st, err := s.eval.SolveBounded(ctx, req)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("X-Lattold-Cache", st.String())
	s.writeJSON(w, http.StatusOK, SolveResponse{Metrics: metricsBody(met), ErrorBound: bound})
}

func (s *Server) handleTolerance(w http.ResponseWriter, r *http.Request) {
	s.eval.met.requestsTolerance.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var req ToleranceRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if k, err := ToleranceKey(req); err == nil && s.routeKeyed(w, r, k.hash(), body) {
		return
	}
	ctx, cancel := s.reqContext(r)
	defer cancel()
	out, st, err := s.eval.Tolerance(ctx, req)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("X-Lattold-Cache", st.String())
	s.writeJSON(w, http.StatusOK, ToleranceResponse{
		Subsystem: out.Subsystem.String(),
		Mode:      out.Mode.String(),
		Tol:       out.Tol,
		Zone:      out.Zone().String(),
		Real:      metricsBody(out.Real),
		Ideal:     metricsBody(out.Ideal),
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.eval.met.requestsSweep.Add(1)
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.reqContext(r)
	defer cancel()
	points, err := s.eval.Sweep(ctx, req)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, SweepResponse{Param: req.Param, Points: points})
}

// batchItemResponse renders one positional batch outcome onto the wire.
func batchItemResponse(item BatchItemRequest, o BatchOutcome) BatchItemResponse {
	var resp BatchItemResponse
	if err := o.Err; err != nil {
		resp.Error = &ErrorBody{
			Status:  statusFor(err),
			Message: err.Error(),
			Field:   wireField(validate.Field(err)),
		}
		return resp
	}
	resp.Cache = o.Cache.String()
	if item.Op == "tolerance" {
		t := o.Tolerance
		resp.Tolerance = &ToleranceResponse{
			Subsystem: t.Subsystem.String(),
			Mode:      t.Mode.String(),
			Tol:       t.Tol,
			Zone:      t.Zone().String(),
			Real:      metricsBody(t.Real),
			Ideal:     metricsBody(t.Ideal),
		}
	} else {
		resp.Solve = &SolveResponse{Metrics: metricsBody(o.Metrics), ErrorBound: o.Bound}
	}
	return resp
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.eval.met.requestsBatch.Add(1)
	var req BatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.routeBatch(w, r, req) {
		return
	}
	ctx, cancel := s.reqContext(r)
	defer cancel()
	out := make([]BatchOutcome, len(req.Items))
	if err := s.eval.Batch(ctx, req.Items, out); err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	resp := BatchResponse{Results: make([]BatchItemResponse, len(out))}
	for i := range out {
		resp.Results[i] = batchItemResponse(req.Items[i], out[i])
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.eval.met.requestsHealth.Add(1)
	status, code := "ok", http.StatusOK
	if s.eval.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, HealthResponse{
		Status:        status,
		UptimeSeconds: time.Since(s.eval.met.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.eval.met.requestsMetrics.Add(1)
	s.eval.met.countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.eval.met.WriteText(w)
}
