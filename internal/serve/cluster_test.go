package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	lattolclient "lattol/internal/client"
	"lattol/internal/cluster"
)

// newClusterPair boots two clustered servers on httptest listeners. Returned
// in boot order; each node's ring knows both URLs.
func newClusterPair(t *testing.T, cfg Config) (srvs [2]*Server, urls [2]string) {
	t.Helper()
	var ts [2]*httptest.Server
	for i := range srvs {
		srvs[i] = NewServer(cfg)
		ts[i] = httptest.NewServer(srvs[i].Handler())
		urls[i] = ts[i].URL
		i := i
		t.Cleanup(func() { ts[i].Close(); srvs[i].Close() })
	}
	for i := range srvs {
		cl, err := cluster.New(urls[i], []string{urls[1-i]}, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i].SetCluster(cl)
	}
	return srvs, urls
}

// bodyOwnedBy probes thread counts until it finds a solve body whose
// canonical key the given node owns.
func bodyOwnedBy(t *testing.T, cl *cluster.Cluster, owner string) string {
	t.Helper()
	for threads := 1; threads <= 64; threads++ {
		body := fmt.Sprintf(`{"k":2,"threads":%d,"runlength":10,"memory_time":8,"switch_time":2,"p_remote":0.2,"psw":0.5}`, threads)
		var req ModelRequest
		if err := decodeStrict([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		k, err := SolveKey(req)
		if err != nil {
			t.Fatal(err)
		}
		if cl.Ring().Owner(k.hash()) == owner {
			return body
		}
	}
	t.Fatalf("no probed key owned by %s — ring badly unbalanced?", owner)
	return ""
}

func TestServerClusterForwardAndRelay(t *testing.T) {
	srvs, urls := newClusterPair(t, Config{Workers: 1})
	body := bodyOwnedBy(t, srvs[0].Cluster(), urls[1])

	// Entering through the NON-owner must forward: the relay names the owner
	// and the owner's cache accounting (not ours) records the solve.
	resp := postJSON(t, urls[0]+"/v1/solve", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if peer := resp.Header.Get(PeerHeader); peer != urls[1] {
		t.Errorf("X-Lattold-Peer = %q, want the owner %q", peer, urls[1])
	}
	if st := resp.Header.Get("X-Lattold-Cache"); st != "miss" {
		t.Errorf("first pass X-Lattold-Cache = %q, want miss (relayed from the owner)", st)
	}
	if got := srvs[0].eval.met.solves.Load(); got != 0 {
		t.Errorf("non-owner ran %d solves, want 0", got)
	}
	if got := srvs[1].eval.met.solves.Load(); got != 1 {
		t.Errorf("owner ran %d solves, want 1", got)
	}
	if got := srvs[0].eval.met.peerForwarded.Load(); got != 1 {
		t.Errorf("origin peerForwarded = %d, want 1", got)
	}
	if got := srvs[1].eval.met.peerReceived.Load(); got != 1 {
		t.Errorf("owner peerReceived = %d, want 1", got)
	}

	// Repeat through the same entry node: still forwarded, now a cache hit,
	// and no further solve anywhere.
	resp2 := postJSON(t, urls[0]+"/v1/solve", body)
	defer resp2.Body.Close()
	if st := resp2.Header.Get("X-Lattold-Cache"); st != "hit" {
		t.Errorf("repeat X-Lattold-Cache = %q, want hit", st)
	}
	if a, b := srvs[0].eval.met.solves.Load(), srvs[1].eval.met.solves.Load(); a != 0 || b != 1 {
		t.Errorf("repeat changed solve counts to (%d, %d), want (0, 1)", a, b)
	}
}

func TestServerOwnedKeyServedLocally(t *testing.T) {
	srvs, urls := newClusterPair(t, Config{Workers: 1})
	body := bodyOwnedBy(t, srvs[0].Cluster(), urls[0])

	resp := postJSON(t, urls[0]+"/v1/solve", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if peer := resp.Header.Get(PeerHeader); peer != "" {
		t.Errorf("X-Lattold-Peer = %q on a locally-owned key, want absent", peer)
	}
	if got := srvs[0].eval.met.solves.Load(); got != 1 {
		t.Errorf("owner ran %d solves, want 1", got)
	}
}

// TestServerForwardNeverReforwarded: a request already marked as a forward is
// served locally even when this node's ring disagrees about ownership —
// membership disagreement must degrade to an extra solve, never a loop.
func TestServerForwardNeverReforwarded(t *testing.T) {
	srvs, urls := newClusterPair(t, Config{Workers: 1})
	body := bodyOwnedBy(t, srvs[0].Cluster(), urls[1])

	req, err := http.NewRequest(http.MethodPost, urls[0]+"/v1/solve", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardHeader, "http://some-origin:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (served locally)", resp.StatusCode)
	}
	if got := srvs[0].eval.met.solves.Load(); got != 1 {
		t.Errorf("marked forward ran %d local solves, want 1 (no re-forward)", got)
	}
	if got := srvs[1].eval.met.peerReceived.Load(); got != 0 {
		t.Errorf("ring owner received %d forwards, want 0", got)
	}
}

// TestServerDepartingFallsBackLocal: once the owner leaves the ring, its 503
// on incoming forwards must flip the origin to a local solve — the answer
// still arrives, served by the non-owner.
func TestServerDepartingFallsBackLocal(t *testing.T) {
	srvs, urls := newClusterPair(t, Config{Workers: 1})
	body := bodyOwnedBy(t, srvs[0].Cluster(), urls[1])

	srvs[1].Cluster().Leave()
	resp := postJSON(t, urls[0]+"/v1/solve", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 via local fallback", resp.StatusCode)
	}
	if peer := resp.Header.Get(PeerHeader); peer != "" {
		t.Errorf("X-Lattold-Peer = %q, want absent (local fallback)", peer)
	}
	if got := srvs[0].eval.met.solves.Load(); got != 1 {
		t.Errorf("origin ran %d solves, want 1 (fallback)", got)
	}
	if got := srvs[0].eval.met.peerFallback.Load(); got != 1 {
		t.Errorf("origin peerFallback = %d, want 1", got)
	}
	if got := srvs[1].eval.met.solves.Load(); got != 0 {
		t.Errorf("departed owner ran %d solves, want 0", got)
	}
}

func TestServerClusterBatchPartition(t *testing.T) {
	srvs, urls := newClusterPair(t, Config{Workers: 1})
	local := bodyOwnedBy(t, srvs[0].Cluster(), urls[0])
	remote := bodyOwnedBy(t, srvs[0].Cluster(), urls[1])

	batch := fmt.Sprintf(`{"items":[%s,%s,{"k":0,"threads":1,"runlength":1,"memory_time":1,"switch_time":1,"p_remote":0}]}`,
		local, remote)
	resp := postJSON(t, urls[0]+"/v1/batch", batch)
	var out BatchResponse
	decodeBody(t, resp, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
	if out.Results[0].Solve == nil || out.Results[1].Solve == nil {
		t.Fatalf("valid items missing solve payloads: %+v", out.Results)
	}
	if out.Results[2].Error == nil || out.Results[2].Error.Field != "k" {
		t.Errorf("invalid item error = %+v, want field-named k validation error", out.Results[2].Error)
	}
	if a, b := srvs[0].eval.met.solves.Load(), srvs[1].eval.met.solves.Load(); a != 1 || b != 1 {
		t.Errorf("solve split = (%d, %d), want (1, 1): each owner solves its own item", a, b)
	}
}

func TestServerRateLimit(t *testing.T) {
	srv := NewServer(Config{Workers: 1, RateLimit: 1e-9, RateBurst: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	do := func(hdr map[string]string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(validBody))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	id := map[string]string{"X-Lattold-Client": "limited"}
	for i := 0; i < 2; i++ {
		if resp := do(id); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status = %d, want 200 (burst admits it)", i, resp.StatusCode)
		}
	}
	resp := do(id)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	var eresp ErrorResponse
	decodeBody(t, resp, &eresp)
	if !strings.Contains(eresp.Error.Message, "limited") {
		t.Errorf("429 message %q does not name the client identity", eresp.Error.Message)
	}
	if got := srv.eval.met.shedRateLimited.Load(); got != 1 {
		t.Errorf("shedRateLimited = %d, want 1", got)
	}

	// Another identity has its own bucket.
	if resp := do(map[string]string{"X-Lattold-Client": "fresh"}); resp.StatusCode != http.StatusOK {
		t.Errorf("fresh client status = %d, want 200", resp.StatusCode)
	}
	// Peer forwards are exempt: same exhausted identity, forward header set.
	if resp := do(map[string]string{"X-Lattold-Client": "limited", cluster.ForwardHeader: "http://peer:1"}); resp.StatusCode != http.StatusOK {
		t.Errorf("forwarded request status = %d, want 200 (exempt from rate limiting)", resp.StatusCode)
	}
	// GETs are exempt.
	if resp, err := http.Get(ts.URL + "/metrics"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("GET /metrics = %v, %v, want 200 (exempt)", resp, err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestServerClusterMetricsExposed asserts the ring gauges and peer counters
// render on /metrics.
func TestServerClusterMetricsExposed(t *testing.T) {
	srvs, urls := newClusterPair(t, Config{Workers: 1})
	body := bodyOwnedBy(t, srvs[0].Cluster(), urls[1])
	postJSON(t, urls[0]+"/v1/solve", body).Body.Close()

	resp, err := http.Get(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"lattold_ring_nodes 2",
		"lattold_ring_departing 0",
		`lattold_peer_requests_total{outcome="forwarded"} 1`,
		`lattold_peer_requests_total{outcome="fallback_local"} 0`,
		`lattold_peer_requests_total{outcome="received"} 0`,
		"lattold_forward_seconds_count 1",
		`lattold_shed_total{reason="rate_limited"} 0`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestClientAgainstCluster drives the typed client end to end through a
// non-owner node: the decoded answer and cache annotations must be the
// owner's.
func TestClientAgainstCluster(t *testing.T) {
	srvs, urls := newClusterPair(t, Config{Workers: 1})
	body := bodyOwnedBy(t, srvs[0].Cluster(), urls[1])
	var req lattolclient.ModelRequest
	if err := decodeStrict([]byte(body), &req); err != nil {
		t.Fatal(err)
	}

	c := lattolclient.New(urls[0], lattolclient.Options{Retries: -1})
	out, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Up <= 0 || out.Metrics.Up > 1 {
		t.Errorf("U_p = %v, want in (0,1]", out.Metrics.Up)
	}
	if out.Cache != "miss" {
		t.Errorf("Cache = %q, want miss", out.Cache)
	}
	out2, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Cache != "hit" {
		t.Errorf("repeat Cache = %q, want hit", out2.Cache)
	}
}
