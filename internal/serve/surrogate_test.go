package serve

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"lattol/internal/mva"
	"lattol/internal/surrogate"
)

// testGridSpec covers the base request's neighborhood: K=4, the default
// memory/switch times, a thread axis containing 8, runlengths around 10 and
// a p_remote band around 0.2, with the locality axis pinned at 0.5.
func testGridSpec() surrogate.Spec {
	return surrogate.Spec{
		Solver:     mva.SolverVersion,
		MemoryTime: 10,
		SwitchTime: 10,
		K:          []int{4},
		NT:         []int{2, 4, 8},
		R:          []float64{10, 15, 20},
		PRemote:    []float64{0.1, 0.2, 0.3, 0.4},
		Psw:        []float64{0.5},
	}
}

func buildTestGrid(t testing.TB) *surrogate.Grid {
	t.Helper()
	g, err := surrogate.Build(testGridSpec(), surrogate.BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// newSurrogateEvaluator returns an evaluator with the test grid installed
// and a counter of actual solver invocations.
func newSurrogateEvaluator(t testing.TB) (*Evaluator, *atomic.Int64) {
	t.Helper()
	e := NewEvaluator(Config{Workers: 2})
	t.Cleanup(e.Close)
	var solves atomic.Int64
	e.solveHook = func(Key) { solves.Add(1) }
	e.SetSurrogate(buildTestGrid(t))
	return e, &solves
}

// midCellRequest sits strictly inside a grid cell on every interpolation
// axis, so only the surrogate tier (or a solver) can answer it.
func midCellRequest() ModelRequest {
	r := baseRequest()
	r.Threads = 4 // the NT=4 plane certifies a mid-cell bound ≈0.33; NT=8 exceeds 0.9
	r.Runlength = 12.5
	r.PRemote = 0.25
	return r
}

func TestSolveBoundedServesFromSurrogate(t *testing.T) {
	e, solves := newSurrogateEvaluator(t)
	req := midCellRequest()
	req.MaxError = 0.9 // far above any cell bound of the smooth test grid

	met, bound, st, err := e.SolveBounded(context.Background(), req)
	if err != nil {
		t.Fatalf("SolveBounded: %v", err)
	}
	if st != stateSurrogate {
		t.Fatalf("state = %v, want surrogate", st)
	}
	if !(bound > 0 && bound <= req.MaxError) {
		t.Errorf("bound = %v, want in (0, %v]", bound, req.MaxError)
	}
	if solves.Load() != 0 {
		t.Errorf("%d solver runs, want 0", solves.Load())
	}
	if met.Up <= 0 || met.Up > 1 {
		t.Errorf("interpolated Up = %v, want in (0,1]", met.Up)
	}
	if met.Iterations != 0 {
		t.Errorf("interpolated Iterations = %d, want 0", met.Iterations)
	}

	// The interpolated answer is within its own certified bound of the
	// exact solve (which now runs, since MaxError 0 demands exactness).
	exact, _, st2, err := e.SolveBounded(context.Background(), midCellRequest())
	if err != nil || st2 == stateSurrogate {
		t.Fatalf("exact solve: st=%v err=%v", st2, err)
	}
	if rel := math.Abs(met.Up-exact.Up) / exact.Up; rel > bound {
		t.Errorf("interpolated Up off by %.3g, certified %.3g", rel, bound)
	}
	if m := e.Metrics(); m.surrogateHits.Load() != 1 {
		t.Errorf("surrogateHits = %d, want 1", m.surrogateHits.Load())
	}
}

func TestSolveBoundedPrefersCachedExactResult(t *testing.T) {
	e, solves := newSurrogateEvaluator(t)
	req := midCellRequest()

	// Prime the LRU with the exact result.
	if _, _, err := e.Solve(context.Background(), req); err != nil {
		t.Fatalf("priming solve: %v", err)
	}
	before := solves.Load()

	req.MaxError = 0.9
	_, bound, st, err := e.SolveBounded(context.Background(), req)
	if err != nil {
		t.Fatalf("SolveBounded: %v", err)
	}
	if st != stateHit {
		t.Errorf("state = %v, want hit (LRU outranks surrogate)", st)
	}
	if bound != 0 {
		t.Errorf("bound = %v, want 0 for an exact cached result", bound)
	}
	if solves.Load() != before {
		t.Errorf("solver ran %d more times, want 0", solves.Load()-before)
	}
}

func TestSolveBoundedFallsBackWhenBoundExceeded(t *testing.T) {
	e, solves := newSurrogateEvaluator(t)
	req := midCellRequest()
	req.MaxError = 1e-12 // tighter than any mid-cell bound can certify

	_, bound, st, err := e.SolveBounded(context.Background(), req)
	if err != nil {
		t.Fatalf("SolveBounded: %v", err)
	}
	if st != stateLead {
		t.Errorf("state = %v, want miss (solver answered)", st)
	}
	if bound != 0 {
		t.Errorf("bound = %v, want 0 for an exact solve", bound)
	}
	if solves.Load() != 1 {
		t.Errorf("%d solver runs, want 1", solves.Load())
	}
	m := e.Metrics()
	if m.surrogateBoundExceeded.Load() != 1 {
		t.Errorf("surrogateBoundExceeded = %d, want 1", m.surrogateBoundExceeded.Load())
	}
	if m.surrogateRefines.Load() != 1 {
		t.Errorf("surrogateRefines = %d, want 1 (cell handed to the refiner)", m.surrogateRefines.Load())
	}
}

func TestSolveBoundedIneligibleRequestsSolve(t *testing.T) {
	e, solves := newSurrogateEvaluator(t)
	cases := map[string]ModelRequest{}

	r := midCellRequest()
	r.Pattern = "uniform"
	r.Psw = 0
	cases["uniform pattern"] = r

	r = midCellRequest()
	r.K = 2 // off the grid's K axis
	cases["off-lattice k"] = r

	r = midCellRequest()
	r.MemoryTime = 20 // grid pinned L=10
	cases["different memory time"] = r

	for name, req := range cases {
		req.MaxError = 0.9
		before := solves.Load()
		_, bound, st, err := e.SolveBounded(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st == stateSurrogate {
			t.Errorf("%s: served from surrogate, want exact path", name)
		}
		if bound != 0 {
			t.Errorf("%s: bound = %v, want 0", name, bound)
		}
		if solves.Load() != before+1 {
			t.Errorf("%s: solver runs %d, want %d", name, solves.Load(), before+1)
		}
	}
	if n := e.Metrics().surrogateIneligible.Load(); n != uint64(len(cases)) {
		t.Errorf("surrogateIneligible = %d, want %d", n, len(cases))
	}
}

func TestSolveWithoutMaxErrorNeverConsultsSurrogate(t *testing.T) {
	e, solves := newSurrogateEvaluator(t)
	met, st, err := e.Solve(context.Background(), midCellRequest())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if st != stateLead {
		t.Errorf("state = %v, want miss", st)
	}
	if solves.Load() != 1 {
		t.Errorf("%d solver runs, want 1", solves.Load())
	}
	if met.Iterations == 0 {
		t.Error("exact solve reported 0 iterations")
	}
	if n := e.Metrics().surrogateHits.Load(); n != 0 {
		t.Errorf("surrogateHits = %d, want 0", n)
	}
}

func TestSolveBoundedWithoutGridSolves(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1})
	defer e.Close()
	req := midCellRequest()
	req.MaxError = 0.9
	_, bound, st, err := e.SolveBounded(context.Background(), req)
	if err != nil {
		t.Fatalf("SolveBounded: %v", err)
	}
	if st == stateSurrogate || bound != 0 {
		t.Errorf("(st, bound) = (%v, %v), want exact path with no grid installed", st, bound)
	}
}

func TestMaxErrorValidation(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1})
	defer e.Close()
	for _, bad := range []float64{-0.1, 1, 1.5, math.NaN(), math.Inf(1)} {
		req := baseRequest()
		req.MaxError = bad
		_, _, _, err := e.SolveBounded(context.Background(), req)
		if err == nil {
			t.Errorf("MaxError = %v accepted, want rejection", bad)
		}
	}
}

func TestBatchSurrogateExtraction(t *testing.T) {
	e, solves := newSurrogateEvaluator(t)

	mid := midCellRequest()
	mid.MaxError = 0.9
	exact := midCellRequest()
	bad := baseRequest()
	bad.K = -1

	items := []BatchItemRequest{
		{ModelRequest: mid},
		{ModelRequest: exact},
		{ModelRequest: bad},
	}
	out := make([]BatchOutcome, len(items))
	if err := e.Batch(context.Background(), items, out); err != nil {
		t.Fatalf("Batch: %v", err)
	}

	if out[0].Err != nil || out[0].Cache != stateSurrogate {
		t.Errorf("item 0 = (cache %v, err %v), want surrogate hit", out[0].Cache, out[0].Err)
	}
	if !(out[0].Bound > 0 && out[0].Bound <= mid.MaxError) {
		t.Errorf("item 0 bound = %v, want in (0, %v]", out[0].Bound, mid.MaxError)
	}
	if out[1].Err != nil || out[1].Cache == stateSurrogate || out[1].Bound != 0 {
		t.Errorf("item 1 = (cache %v, bound %v, err %v), want exact solve", out[1].Cache, out[1].Bound, out[1].Err)
	}
	if out[2].Err == nil {
		t.Error("item 2 accepted an invalid configuration")
	}
	if rel := math.Abs(out[0].Metrics.Up-out[1].Metrics.Up) / out[1].Metrics.Up; rel > out[0].Bound {
		t.Errorf("batch surrogate Up off by %.3g, certified %.3g", rel, out[0].Bound)
	}
	if solves.Load() != 1 {
		t.Errorf("%d solver runs, want 1 (only the exact item)", solves.Load())
	}
}

func TestSurrogateHitPathZeroAllocs(t *testing.T) {
	e, _ := newSurrogateEvaluator(t)
	req := midCellRequest()
	req.MaxError = 0.9
	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		if _, _, st, err := e.SolveBounded(ctx, req); err != nil || st != stateSurrogate {
			t.Fatalf("SolveBounded: st=%v err=%v", st, err)
		}
	}); n != 0 {
		t.Errorf("surrogate hit path allocates %v per request, want 0", n)
	}
}
