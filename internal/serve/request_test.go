package serve

import (
	"math"
	"testing"

	"lattol/internal/validate"
)

// baseRequest is a valid default request (the paper's Table 1 system).
func baseRequest() ModelRequest {
	return ModelRequest{
		K: 4, Threads: 8, Runlength: 10, MemoryTime: 10, SwitchTime: 10,
		PRemote: 0.2, Psw: 0.5,
	}
}

// mustKey canonicalizes a request for the solve op, failing the test on any
// validation error.
func mustKey(t *testing.T, r ModelRequest) Key {
	t.Helper()
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		t.Fatalf("components(%+v): %v", r, err)
	}
	if err := validateConfig(cfg, pat); err != nil {
		t.Fatalf("validate(%+v): %v", r, err)
	}
	return canonicalKey(cfg, pat, geo, solver, opSolve, 0, 0)
}

func TestCanonicalKeyEquivalences(t *testing.T) {
	base := mustKey(t, baseRequest())

	t.Run("solver name aliases", func(t *testing.T) {
		for _, name := range []string{"symmetric", "symmetric-amva"} {
			r := baseRequest()
			r.Solver = name
			if got := mustKey(t, r); got != base {
				t.Errorf("solver %q: key %+v != default key", name, got)
			}
		}
		r := baseRequest()
		r.Solver = "full"
		if got := mustKey(t, r); got == base {
			t.Error("solver full collapsed onto the symmetric key")
		}
	})

	t.Run("default ports", func(t *testing.T) {
		r := baseRequest()
		r.MemoryPorts, r.SwitchPorts = 1, 1
		if got := mustKey(t, r); got != base {
			t.Errorf("explicit single ports: key %+v != default key", got)
		}
	})

	t.Run("pattern irrelevant without remote accesses", func(t *testing.T) {
		a, b := baseRequest(), baseRequest()
		a.PRemote, a.Psw = 0, 0.3
		b.PRemote, b.Psw, b.Pattern = 0, 0.9, "uniform"
		if mustKey(t, a) != mustKey(t, b) {
			t.Error("p_remote=0 requests with different pattern parameters got different keys")
		}
	})

	t.Run("uniform pattern has no psw", func(t *testing.T) {
		a, b := baseRequest(), baseRequest()
		a.Pattern, a.Psw = "uniform", 0.3
		b.Pattern, b.Psw = "uniform", 0.9
		if mustKey(t, a) != mustKey(t, b) {
			t.Error("uniform-pattern requests with different psw got different keys")
		}
		c := baseRequest()
		c.Psw = 0.3
		if mustKey(t, a) == mustKey(t, c) {
			t.Error("uniform and geometric patterns share a key")
		}
	})

	t.Run("geometric psw is significant", func(t *testing.T) {
		a := baseRequest()
		a.Psw = 0.3
		if mustKey(t, a) == base {
			t.Error("different psw collapsed onto one key")
		}
	})

	t.Run("negative zero", func(t *testing.T) {
		a := baseRequest()
		a.ContextSwitch = math.Copysign(0, -1)
		if mustKey(t, a) != base {
			t.Error("-0.0 context switch got a different key than 0.0")
		}
	})

	t.Run("solve and tolerance ops are disjoint", func(t *testing.T) {
		cfg, pat, geo, solver, _ := baseRequest().components()
		s := canonicalKey(cfg, pat, geo, solver, opSolve, 0, 0)
		tol := canonicalKey(cfg, pat, geo, solver, opTolerance, 0, 0)
		if s == tol {
			t.Error("solve and tolerance keys collide")
		}
	})
}

func TestRequestValidateFieldNames(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ModelRequest)
		field  string
	}{
		{"zero k", func(r *ModelRequest) { r.K = 0 }, "K"},
		{"negative threads", func(r *ModelRequest) { r.Threads = -1 }, "Threads"},
		{"p_remote out of range", func(r *ModelRequest) { r.PRemote = 1.5 }, "PRemote"},
		{"NaN runlength", func(r *ModelRequest) { r.Runlength = math.NaN() }, "Runlength"},
		{"bad psw", func(r *ModelRequest) { r.Psw = 0 }, "Psw"},
		{"bad pattern", func(r *ModelRequest) { r.Pattern = "bogus" }, "pattern"},
		{"bad geometric mode", func(r *ModelRequest) { r.GeometricMode = "bogus" }, "geometric_mode"},
		{"bad solver", func(r *ModelRequest) { r.Solver = "bogus" }, "Solver"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := baseRequest()
			tc.mutate(&r)
			err := r.Validate()
			if err == nil {
				t.Fatal("invalid request validated")
			}
			if got := validate.Field(err); got != tc.field {
				t.Errorf("field = %q, want %q (err: %v)", got, tc.field, err)
			}
		})
	}
}

func TestUniformPatternValidatesWithoutPsw(t *testing.T) {
	r := baseRequest()
	r.Pattern, r.Psw = "uniform", 0
	if err := r.Validate(); err != nil {
		t.Errorf("uniform request without psw rejected: %v", err)
	}
}

func TestKeyConfigRoundTrip(t *testing.T) {
	r := baseRequest()
	r.Pattern = "uniform"
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		t.Fatal(err)
	}
	k := canonicalKey(cfg, pat, geo, solver, opSolve, 0, 0)
	back := k.config()
	if back.Pattern == nil {
		t.Fatal("uniform pattern lost in key round trip")
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped config invalid: %v", err)
	}
	if back.K != 4 || back.Threads != 8 || back.MemoryPorts != 1 {
		t.Errorf("round-tripped config = %+v", back)
	}
}
