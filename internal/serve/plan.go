package serve

import (
	"context"
	"net/http"
	"strings"

	"lattol/internal/inverse"
	"lattol/internal/mms"
	"lattol/internal/validate"
)

// PlanFrontierRequest selects frontier mode on a plan: re-solve the inverse
// problem at every value of a second swept parameter, tracing the
// feasibility frontier (e.g. "threads needed for tolerance ≥ 0.95, as
// p_remote grows").
type PlanFrontierRequest struct {
	Param string  `json:"param"`
	From  float64 `json:"from"`
	To    float64 `json:"to"`
	Steps int     `json:"steps"`
}

// PlanRequest is the body of POST /v1/plan: a base model plus the inverse
// question "find the extremal knob value such that metric relation target".
// The embedded model is the configuration every probe starts from; the knob
// overwrites one of its fields per probe. Probes run through the same cache
// and worker pool as forward requests, so plans share results with solve and
// tolerance traffic (and with each other).
type PlanRequest struct {
	ModelRequest
	// Knob is the parameter solved for: nt, r, l, s, c, premote, psw, k,
	// memports or swports.
	Knob string `json:"knob"`
	// Metric is the targeted measure: u_p, tol_network, tol_memory, s_obs,
	// l_obs, lambda_net or cycle_time.
	Metric string `json:"metric"`
	// Target is the metric value to reach.
	Target float64 `json:"target"`
	// Relation compares metric to target: ">=" (default) or "<=".
	Relation string `json:"relation,omitempty"`
	// KnobMin, KnobMax bound the search; both zero selects the knob's
	// default domain.
	KnobMin float64 `json:"knob_min,omitempty"`
	KnobMax float64 `json:"knob_max,omitempty"`
	// KnobTol is the relative bracket width at which a continuous knob is
	// converged (default 1e-6; integer knobs converge at width 1).
	KnobTol float64 `json:"knob_tol,omitempty"`
	// MaxProbes caps evaluator calls per plan (default 64).
	MaxProbes int `json:"max_probes,omitempty"`
	// Trace requests the probe-by-probe trace in the response.
	Trace bool `json:"trace,omitempty"`
	// Frontier, when present, selects frontier mode.
	Frontier *PlanFrontierRequest `json:"frontier,omitempty"`
}

// spec canonicalizes the request into an inverse.Spec plus the serving
// pattern kind. Validation errors are field-named against the wire fields.
func (r PlanRequest) spec() (inverse.Spec, patternKind, error) {
	cfg, pat, _, solver, err := r.components()
	if err != nil {
		return inverse.Spec{}, 0, err
	}
	if r.MaxError != 0 {
		// Plan probes must be exact: a bracketed root-find over interpolated
		// answers could bracket the interpolation error instead of the root.
		return inverse.Spec{}, 0, validate.Fieldf("serve.PlanRequest", "max_error",
			"= %v; plans probe exactly, max_error must be omitted", r.MaxError)
	}
	if err := validateConfig(cfg, pat); err != nil {
		return inverse.Spec{}, 0, err
	}
	if pat == patternUniform {
		// The uniform pattern has no locality parameter: a placeholder
		// satisfies configuration validation and canonicalization zeroes it
		// out of every probe key.
		cfg.Psw = 1
	}
	knob, err := mms.ParseParam(r.Knob)
	if err != nil {
		return inverse.Spec{}, 0, validate.Fieldf("serve.PlanRequest", "knob", "= %q, want one of %s",
			r.Knob, strings.Join(mms.ParamNames(), ", "))
	}
	if pat == patternUniform && knob.String() == "psw" {
		return inverse.Spec{}, 0, validate.Fieldf("serve.PlanRequest", "knob",
			"= psw under the uniform pattern; psw has no effect there")
	}
	metric, err := inverse.ParseMetric(r.Metric)
	if err != nil {
		return inverse.Spec{}, 0, validate.Fieldf("serve.PlanRequest", "metric", "= %q, want one of %s",
			r.Metric, strings.Join(inverse.MetricNames(), ", "))
	}
	rel, err := inverse.ParseRelation(r.Relation)
	if err != nil {
		return inverse.Spec{}, 0, validate.Fieldf("serve.PlanRequest", "relation", "= %q, want >= or <=", r.Relation)
	}
	return inverse.Spec{
		Base:      cfg,
		Solver:    solver,
		Knob:      knob,
		Metric:    metric,
		Target:    r.Target,
		Relation:  rel,
		Lo:        r.KnobMin,
		Hi:        r.KnobMax,
		KnobTol:   r.KnobTol,
		MaxProbes: r.MaxProbes,
	}, pat, nil
}

// frontierSpec extends spec with the swept second parameter.
func (r PlanRequest) frontierSpec() (inverse.FrontierSpec, patternKind, error) {
	sp, pat, err := r.spec()
	if err != nil {
		return inverse.FrontierSpec{}, 0, err
	}
	f := r.Frontier
	fs := inverse.FrontierSpec{Spec: sp, From: f.From, To: f.To, Steps: f.Steps}
	if f.Param == "" {
		return inverse.FrontierSpec{}, 0, validate.Fieldf("serve.PlanRequest", "frontier.param",
			"required, want one of %s", strings.Join(mms.ParamNames(), ", "))
	}
	sweep, err := mms.ParseParam(f.Param)
	if err != nil {
		return inverse.FrontierSpec{}, 0, validate.Fieldf("serve.PlanRequest", "frontier.param",
			"= %q, want one of %s", f.Param, strings.Join(mms.ParamNames(), ", "))
	}
	fs.Sweep = sweep
	if pat == patternUniform && sweep.String() == "psw" {
		return inverse.FrontierSpec{}, 0, validate.Fieldf("serve.PlanRequest", "frontier.param",
			"= psw under the uniform pattern; psw has no effect there")
	}
	return fs, pat, nil
}

// maxPlanFrontierSteps bounds one frontier request; the same cap the sweep
// endpoint applies comes from Config.MaxSweepPoints at call time.
func (e *Evaluator) maxPlanFrontierSteps() int { return e.cfg.MaxSweepPoints }

// Plan answers one inverse question through the cache and worker pool. The
// per-plan probe count is recorded in the metrics' probe histogram.
func (e *Evaluator) Plan(ctx context.Context, r PlanRequest) (inverse.Result, error) {
	sp, pat, err := r.spec()
	if err != nil {
		return inverse.Result{}, err
	}
	res, err := inverse.Solve(ctx, &planEvaluator{e: e, pat: pat}, sp)
	if err != nil {
		if _, ok := err.(*inverse.InfeasibleError); ok {
			e.met.plansInfeasible.Add(1)
		}
		return inverse.Result{}, err
	}
	e.met.plansSolved.Add(1)
	e.met.planProbes.observe(uint64(res.Probes))
	return res, nil
}

// PlanFrontier answers the two-knob version: the plan re-solved at every
// swept value, with each lockstep round of probes batched through the worker
// pool. Points fail independently (e.g. an infeasible sweep value carries
// *inverse.InfeasibleError); the returned error is an envelope error.
func (e *Evaluator) PlanFrontier(ctx context.Context, r PlanRequest) ([]inverse.FrontierPoint, error) {
	fs, pat, err := r.frontierSpec()
	if err != nil {
		return nil, err
	}
	if fs.Steps < 1 || fs.Steps > e.maxPlanFrontierSteps() {
		return nil, validate.Fieldf("serve.PlanRequest", "frontier.steps",
			"= %d, want in [1,%d]", fs.Steps, e.maxPlanFrontierSteps())
	}
	pts, err := inverse.Frontier(ctx, &planEvaluator{e: e, pat: pat}, fs)
	if err != nil {
		return nil, err
	}
	for i := range pts {
		switch {
		case pts[i].Err == nil:
			e.met.plansSolved.Add(1)
			e.met.planProbes.observe(uint64(pts[i].Result.Probes))
		default:
			if _, ok := pts[i].Err.(*inverse.InfeasibleError); ok {
				e.met.plansInfeasible.Add(1)
			}
		}
	}
	return pts, nil
}

// PlanProbe is the wire form of one probe-trace entry.
type PlanProbe struct {
	Knob     float64 `json:"knob"`
	Value    float64 `json:"value"`
	Feasible bool    `json:"feasible"`
	Solves   int     `json:"solves"`
}

// PlanResponse is the body of a successful POST /v1/plan (scalar mode) and
// the per-point payload of frontier mode. Value is the answer; Achieved is
// the metric observed there; Probes counts evaluator calls and Solves the
// model solves they actually ran (0 when every probe hit the cache).
type PlanResponse struct {
	Knob       string      `json:"knob"`
	Metric     string      `json:"metric"`
	Relation   string      `json:"relation"`
	Target     float64     `json:"target"`
	Value      float64     `json:"value"`
	Achieved   float64     `json:"achieved"`
	Objective  string      `json:"objective"`
	Binding    string      `json:"binding"`
	BracketLo  float64     `json:"bracket_lo"`
	BracketHi  float64     `json:"bracket_hi"`
	Probes     int         `json:"probes"`
	Solves     int         `json:"solves"`
	Metrics    MetricsBody `json:"metrics"`
	TolNetwork *float64    `json:"tol_network,omitempty"`
	TolMemory  *float64    `json:"tol_memory,omitempty"`
	Trace      []PlanProbe `json:"trace,omitempty"`
}

// PlanFrontierPoint is one swept point of a frontier response. Exactly one
// of Error and Plan is set.
type PlanFrontierPoint struct {
	Sweep float64       `json:"sweep"`
	Error *ErrorBody    `json:"error,omitempty"`
	Plan  *PlanResponse `json:"plan,omitempty"`
}

// PlanFrontierResponse is the body of POST /v1/plan in frontier mode.
type PlanFrontierResponse struct {
	Param  string              `json:"param"`
	Knob   string              `json:"knob"`
	Points []PlanFrontierPoint `json:"points"`
}

// planResponse renders one inverse result.
func planResponse(r PlanRequest, res inverse.Result, withTrace bool) *PlanResponse {
	rel, _ := inverse.ParseRelation(r.Relation)
	resp := &PlanResponse{
		Knob:      r.Knob,
		Metric:    r.Metric,
		Relation:  rel.String(),
		Target:    r.Target,
		Value:     res.Knob,
		Achieved:  res.Achieved,
		Objective: res.Objective.String(),
		Binding:   res.Binding.String(),
		BracketLo: res.Lo,
		BracketHi: res.Hi,
		Probes:    res.Probes,
		Solves:    res.Solves,
		Metrics:   metricsBody(res.Metrics.Metrics),
	}
	if res.Metrics.TolNetwork != 0 || r.Metric == "tol_network" {
		v := res.Metrics.TolNetwork
		resp.TolNetwork = &v
	}
	if res.Metrics.TolMemory != 0 || r.Metric == "tol_memory" {
		v := res.Metrics.TolMemory
		resp.TolMemory = &v
	}
	if withTrace {
		resp.Trace = make([]PlanProbe, len(res.Trace))
		for i, p := range res.Trace {
			resp.Trace[i] = PlanProbe{Knob: p.Knob, Value: p.Value, Feasible: p.Feasible, Solves: p.Solves}
		}
	}
	return resp
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.eval.met.requestsPlan.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var req PlanRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// A plan routes on its base model's solve key: every probe perturbs that
	// configuration, so the owner of the base is the node whose cache the
	// probes will revisit. (Probe keys themselves may hash elsewhere; routing
	// the plan wholesale keeps one plan = one node = one warm workspace.)
	if k, err := SolveKey(req.ModelRequest); err == nil && s.routeKeyed(w, r, k.hash(), body) {
		return
	}
	ctx, cancel := s.reqContext(r)
	defer cancel()
	if req.Frontier != nil {
		pts, err := s.eval.PlanFrontier(ctx, req)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		resp := PlanFrontierResponse{Param: req.Frontier.Param, Knob: req.Knob,
			Points: make([]PlanFrontierPoint, len(pts))}
		for i := range pts {
			resp.Points[i].Sweep = pts[i].Sweep
			if err := pts[i].Err; err != nil {
				resp.Points[i].Error = &ErrorBody{
					Status:  statusFor(err),
					Message: err.Error(),
					Field:   wireField(validate.Field(err)),
				}
				continue
			}
			resp.Points[i].Plan = planResponse(req, pts[i].Result, req.Trace)
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	res, err := s.eval.Plan(ctx, req)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, planResponse(req, res, req.Trace))
}
