package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lattol/internal/validate"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func uniqueRequest(i int) ModelRequest {
	r := baseRequest()
	r.Threads = 1 + i
	return r
}

func TestEvaluatorSolveAndCache(t *testing.T) {
	e := NewEvaluator(Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()

	met, st, err := e.Solve(ctx, baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st != stateLead {
		t.Errorf("first request state = %v, want miss", st)
	}
	if met.Up <= 0 || met.Up > 1 {
		t.Errorf("U_p = %v, want in (0,1]", met.Up)
	}
	if met.LObs < 10 {
		t.Errorf("L_obs = %v, want >= service time 10", met.LObs)
	}

	met2, st2, err := e.Solve(ctx, baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st2 != stateHit {
		t.Errorf("second request state = %v, want hit", st2)
	}
	if met2 != met {
		t.Errorf("cached metrics %+v differ from computed %+v", met2, met)
	}
	if hits := e.Metrics().cacheHits.Load(); hits != 1 {
		t.Errorf("cacheHits = %d, want 1", hits)
	}
}

// TestEvaluatorCoalescing fires many identical concurrent requests while the
// single worker is gated: exactly one solver invocation must serve them all.
func TestEvaluatorCoalescing(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1, QueueDepth: 4})
	var solves atomic.Int32
	gate := make(chan struct{})
	e.solveHook = func(Key) {
		solves.Add(1)
		<-gate
	}
	defer e.Close()
	ctx := context.Background()

	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = e.Solve(ctx, baseRequest())
		}(i)
	}
	// One request leads and reaches the (gated) solver; the other n-1
	// coalesce onto its entry.
	waitUntil(t, "leader in solver", func() bool { return solves.Load() == 1 })
	waitUntil(t, "followers coalesced", func() bool { return e.Metrics().cacheCoalesced.Load() == n-1 })
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if got := solves.Load(); got != 1 {
		t.Errorf("solver invocations = %d for %d identical requests, want 1", got, n)
	}
	// And the result is now cached: one more request is a pure hit.
	if _, st, err := e.Solve(ctx, baseRequest()); err != nil || st != stateHit {
		t.Errorf("follow-up request: state %v err %v, want hit", st, err)
	}
	if got := solves.Load(); got != 1 {
		t.Errorf("solver ran again for a cached request (%d invocations)", got)
	}
}

// TestEvaluatorShedsWhenQueueFull occupies the only worker and the only
// queue slot, then expects the next distinct request to shed immediately.
func TestEvaluatorShedsWhenQueueFull(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1, QueueDepth: 1})
	var solves atomic.Int32
	gate := make(chan struct{})
	e.solveHook = func(Key) {
		solves.Add(1)
		<-gate
	}
	defer e.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(1)
	go func() { defer wg.Done(); _, _, errA = e.Solve(ctx, uniqueRequest(1)) }()
	waitUntil(t, "worker occupied", func() bool { return solves.Load() == 1 })
	wg.Add(1)
	go func() { defer wg.Done(); _, _, errB = e.Solve(ctx, uniqueRequest(2)) }()
	waitUntil(t, "queue slot filled", func() bool { return len(e.tasks) == 1 })

	_, _, errC := e.Solve(ctx, uniqueRequest(3))
	if !errors.Is(errC, ErrQueueFull) {
		t.Errorf("third request error = %v, want ErrQueueFull", errC)
	}
	if shed := e.Metrics().shedQueueFull.Load(); shed != 1 {
		t.Errorf("shedQueueFull = %d, want 1", shed)
	}

	close(gate)
	wg.Wait()
	if errA != nil || errB != nil {
		t.Errorf("admitted requests failed: A=%v B=%v", errA, errB)
	}
}

// TestEvaluatorGracefulDrain gates an in-flight solve, starts Close, and
// checks that Close waits for it, new work is refused, and the in-flight
// request completes successfully.
func TestEvaluatorGracefulDrain(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1, QueueDepth: 2})
	var solves atomic.Int32
	gate := make(chan struct{})
	e.solveHook = func(Key) {
		solves.Add(1)
		<-gate
	}
	ctx := context.Background()

	var inflightErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _, inflightErr = e.Solve(ctx, baseRequest()) }()
	waitUntil(t, "solve in flight", func() bool { return solves.Load() == 1 })

	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()
	waitUntil(t, "draining flag", e.Draining)

	select {
	case <-closed:
		t.Fatal("Close returned while a solve was in flight")
	default:
	}
	if _, _, err := e.Solve(ctx, uniqueRequest(9)); !errors.Is(err, ErrDraining) {
		t.Errorf("request during drain: %v, want ErrDraining", err)
	}

	close(gate)
	wg.Wait()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the in-flight solve finished")
	}
	if inflightErr != nil {
		t.Errorf("in-flight solve failed during drain: %v", inflightErr)
	}
}

// TestEvaluatorCachedSolveAllocates0 pins the acceptance criterion: the
// cache-hit path performs zero allocations per request.
func TestEvaluatorCachedSolveAllocates0(t *testing.T) {
	e := NewEvaluator(Config{})
	defer e.Close()
	ctx := context.Background()
	req := baseRequest()
	if _, _, err := e.Solve(ctx, req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_, st, err := e.Solve(ctx, req)
		if err != nil || st != stateHit {
			t.Fatalf("state %v err %v, want hit", st, err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached solve allocates %v allocs/op, want 0", allocs)
	}
}

func TestEvaluatorTolerance(t *testing.T) {
	e := NewEvaluator(Config{})
	defer e.Close()
	ctx := context.Background()

	out, _, err := e.Tolerance(ctx, ToleranceRequest{ModelRequest: baseRequest()})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tol <= 0 || out.Tol > 1.2 {
		t.Errorf("tol_network = %v, want in (0,1.2]", out.Tol)
	}
	if out.Real.Up > out.Ideal.Up*1.01 {
		t.Errorf("real U_p %v exceeds ideal U_p %v", out.Real.Up, out.Ideal.Up)
	}
	if out.Zone().String() == "" {
		t.Error("empty zone")
	}

	// Memory subsystem with the network-only mode must be rejected.
	_, _, err = e.Tolerance(ctx, ToleranceRequest{
		ModelRequest: baseRequest(), Subsystem: "memory", Mode: "zero-remote",
	})
	if validate.Field(err) != "mode" {
		t.Errorf("memory+zero-remote: field = %q (err %v), want mode", validate.Field(err), err)
	}
}

func TestEvaluatorSweep(t *testing.T) {
	e := NewEvaluator(Config{})
	defer e.Close()
	ctx := context.Background()

	req := SweepRequest{ModelRequest: baseRequest(), Param: "nt", From: 2, To: 8, Steps: 4}
	points, err := e.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	for _, p := range points {
		if p.Metrics.Up <= 0 || p.Metrics.Up > 1 {
			t.Errorf("nt=%v: U_p = %v", p.Value, p.Metrics.Up)
		}
		if p.TolNetwork <= 0 || p.TolMemory <= 0 {
			t.Errorf("nt=%v: tol_net=%v tol_mem=%v", p.Value, p.TolNetwork, p.TolMemory)
		}
	}
	// More threads give the processor more latency to hide behind work, so
	// utilization must not decrease along the sweep.
	for i := 1; i < len(points); i++ {
		if points[i].Metrics.Up < points[i-1].Metrics.Up-1e-9 {
			t.Errorf("U_p decreased along nt sweep: %v -> %v", points[i-1].Metrics.Up, points[i].Metrics.Up)
		}
	}

	// A repeated sweep is served from cache: no further solver runs.
	before := e.Metrics().solves.Load()
	if _, err := e.Sweep(ctx, req); err != nil {
		t.Fatal(err)
	}
	if after := e.Metrics().solves.Load(); after != before {
		t.Errorf("repeated sweep ran %d extra solves", after-before)
	}

	// Field-named errors for the sweep envelope.
	if _, err := e.Sweep(ctx, SweepRequest{ModelRequest: baseRequest(), Param: "bogus", From: 1, To: 2, Steps: 2}); validate.Field(err) != "param" {
		t.Errorf("bad param: field = %q (err %v)", validate.Field(err), err)
	}
	if _, err := e.Sweep(ctx, SweepRequest{ModelRequest: baseRequest(), Param: "nt", From: 1, To: 2, Steps: 0}); validate.Field(err) != "steps" {
		t.Errorf("bad steps: field = %q (err %v)", validate.Field(err), err)
	}
	// An out-of-range swept value surfaces the Config field it violated.
	_, err = e.Sweep(ctx, SweepRequest{ModelRequest: baseRequest(), Param: "premote", From: 0.5, To: 1.5, Steps: 3})
	if validate.Field(err) != "PRemote" {
		t.Errorf("out-of-range sweep: field = %q (err %v)", validate.Field(err), err)
	}
}

func TestEvaluatorTimeout(t *testing.T) {
	e := NewEvaluator(Config{Workers: 1})
	gate := make(chan struct{})
	var solves atomic.Int32
	e.solveHook = func(Key) {
		if solves.Add(1) == 1 {
			<-gate
		}
	}
	defer e.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _, _ = e.Solve(context.Background(), uniqueRequest(1)) }()
	waitUntil(t, "worker occupied", func() bool { return solves.Load() == 1 })

	// The queued request's context expires while it waits for the worker.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := e.Solve(ctx, uniqueRequest(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued request error = %v, want DeadlineExceeded", err)
	}
	close(gate)
	wg.Wait()
}
