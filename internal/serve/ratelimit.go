package serve

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// rateLimiter is per-client token-bucket admission for the POST endpoints.
// Each client identity (the X-Lattold-Client header when present, the remote
// host otherwise) owns one bucket refilled continuously at `rate` tokens per
// second up to `burst`; a request costs one token, and a dry bucket answers
// 429 with a Retry-After naming the time until the next token. Buckets are
// created on first sight and swept lazily: once the table exceeds
// maxClients, every bucket idle long enough to have refilled completely is
// dropped — such a bucket is indistinguishable from a fresh one, so
// forgetting it changes nothing for its client.
type rateLimiter struct {
	rate, burst float64

	mu         sync.Mutex
	buckets    map[string]*tokenBucket
	maxClients int
	now        func() time.Time // injectable for tests
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate, burst float64) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:       rate,
		burst:      burst,
		buckets:    make(map[string]*tokenBucket),
		maxClients: 4096,
		now:        time.Now,
	}
}

// allow spends one token of id's bucket. Denials report how long until a
// full token has refilled.
func (l *rateLimiter) allow(id string) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[id]
	if b == nil {
		if len(l.buckets) >= l.maxClients {
			l.sweep(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[id] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(math.Ceil(need)) * time.Second
}

// sweep drops buckets idle long enough to have fully refilled. Called with
// the lock held.
func (l *rateLimiter) sweep(now time.Time) {
	refill := time.Duration(l.burst / l.rate * float64(time.Second))
	for id, b := range l.buckets {
		if now.Sub(b.last) >= refill {
			delete(l.buckets, id)
		}
	}
}

// clients returns the tracked-bucket count (a /metrics gauge).
func (l *rateLimiter) clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// clientID names the requester for rate-limiting purposes.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Lattold-Client"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
