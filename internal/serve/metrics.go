package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds, in seconds (decade
// buckets from 1µs to 10s, plus +Inf).
var latencyBounds = [...]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// histogram is a fixed-bucket latency histogram updated with atomics only,
// so the hot paths never contend on a lock to record an observation.
type histogram struct {
	buckets  [len(latencyBounds) + 1]atomic.Uint64
	sumNanos atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// writeTo renders the histogram in Prometheus exposition style: cumulative
// _bucket{le=...} counts, _sum (seconds) and _count. _count is the cumulative
// sum of the buckets — Prometheus requires _count == the +Inf bucket, and a
// separately incremented counter could be observed out of step with the
// bucket it accompanies under concurrent updates.
func (h *histogram) writeTo(w io.Writer, name string) {
	var cum uint64
	for i, le := range latencyBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum)
	}
	cum += h.buckets[len(latencyBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, time.Duration(h.sumNanos.Load()).Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// iterBounds are the iteration-count histogram bucket upper bounds (decade
// buckets from 1 to 1e6, plus +Inf). The largest finite bucket must cover
// the solvers' iteration caps — mva.DefaultMaxIterations (1e5) and
// mms.DefaultMaxIterations (2e5) — so capped runs don't vanish into +Inf
// (asserted by TestIterBoundsCoverSolverCaps).
var iterBounds = [...]uint64{1, 10, 100, 1000, 10000, 100000, 1000000}

// countHistogram is histogram for dimensionless counts: decade buckets,
// integer sum.
type countHistogram struct {
	buckets [len(iterBounds) + 1]atomic.Uint64
	sum     atomic.Uint64
}

func (h *countHistogram) observe(n uint64) {
	i := 0
	for i < len(iterBounds) && n > iterBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(n)
}

// writeTo renders the count histogram; as with histogram.writeTo, _count is
// derived from the cumulative bucket sum so the exposition is internally
// consistent.
func (h *countHistogram) writeTo(w io.Writer, name string) {
	var cum uint64
	for i, le := range iterBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum)
	}
	cum += h.buckets[len(iterBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// Metrics is the service's observability surface: plain atomics incremented
// on the request paths, rendered on demand by the /metrics endpoint. The
// daemon thereby reports the same queueing quantities the underlying model
// computes for the machine it describes — utilization of the compute
// resource (in-flight gauge vs. workers), queueing delay (queue-wait
// histogram) and service latency (solve histogram).
type Metrics struct {
	start time.Time

	requestsSolve     atomic.Uint64
	requestsTolerance atomic.Uint64
	requestsSweep     atomic.Uint64
	requestsBatch     atomic.Uint64
	requestsPlan      atomic.Uint64
	requestsHealth    atomic.Uint64
	requestsMetrics   atomic.Uint64

	// plansSolved counts inverse plans answered (frontier points count
	// individually); plansInfeasible counts plans whose target no knob value
	// could reach. planProbes distributes evaluator probes per answered plan
	// — the continuation-efficiency claim ("a root-find costs a handful of
	// probes") made visible in production traffic.
	plansSolved     atomic.Uint64
	plansInfeasible atomic.Uint64
	planProbes      countHistogram

	// batchItems counts individual items across all /v1/batch requests (the
	// requestsBatch counter counts envelopes).
	batchItems atomic.Uint64

	// responsesByClass counts responses by status class (index code/100;
	// 2 → 2xx, 4 → 4xx, 5 → 5xx).
	responsesByClass [6]atomic.Uint64

	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	cacheCoalesced atomic.Uint64
	cacheEvictions atomic.Uint64

	shedQueueFull   atomic.Uint64
	shedDraining    atomic.Uint64
	shedRateLimited atomic.Uint64

	// Cluster accounting. peerForwarded counts requests this node routed to
	// their ring owner and relayed; peerFallback counts forwards that failed
	// (unreachable, overloaded or draining owner) and fell back to a local
	// solve; peerReceived counts forwards arriving from peers.
	// forwardLatency distributes the forward round trips that succeeded.
	peerForwarded  atomic.Uint64
	peerFallback   atomic.Uint64
	peerReceived   atomic.Uint64
	forwardLatency histogram
	ringSize       func() int  // wired to the cluster membership
	ringDeparting  func() bool // wired to the cluster departure flag
	rateClients    func() int  // wired to the rate limiter's bucket table

	// Surrogate-tier outcomes for requests that stated a max_error:
	// surrogateHits answered by interpolation; surrogateBoundExceeded and
	// surrogateIneligible fell through to the exact solver (cell bound too
	// wide, resp. query outside the grid or no grid loaded);
	// surrogateRefines counts background cell refinements enqueued.
	surrogateHits          atomic.Uint64
	surrogateBoundExceeded atomic.Uint64
	surrogateIneligible    atomic.Uint64
	surrogateRefines       atomic.Uint64
	// surrogateLatency distributes interpolated-answer lookup times,
	// alongside solveLatency for the tier it replaces.
	surrogateLatency histogram

	// snapshotRestored counts cache entries restored from a persisted LRU
	// snapshot at boot.
	snapshotRestored atomic.Uint64

	solves       atomic.Uint64
	solveErrors  atomic.Uint64
	inFlight     atomic.Int64
	queueWait    histogram
	solveLatency histogram
	// solveIterations distributes the AMVA iteration counts of successful
	// solver runs (real and ideal systems separately), making the
	// warm-start/acceleration win visible in production traffic.
	solveIterations countHistogram
	queueDepth      func() int // wired to the evaluator's pending queue
	cachedEntries   func() int // wired to the cache
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

func (m *Metrics) countStatus(code int) {
	if class := code / 100; class >= 0 && class < len(m.responsesByClass) {
		m.responsesByClass[class].Add(1)
	}
}

// HitRatio returns cache hits (including coalesced waits, which also avoided
// a solver run) over all cache lookups, or 0 before any lookup.
func (m *Metrics) HitRatio() float64 {
	h := m.cacheHits.Load() + m.cacheCoalesced.Load()
	total := h + m.cacheMisses.Load()
	if total == 0 {
		return 0
	}
	return float64(h) / float64(total)
}

// WriteText renders every metric in Prometheus plaintext exposition style.
func (m *Metrics) WriteText(w io.Writer) {
	fmt.Fprintf(w, "lattold_uptime_seconds %g\n", time.Since(m.start).Seconds())
	for _, c := range []struct {
		endpoint string
		v        *atomic.Uint64
	}{
		{"solve", &m.requestsSolve},
		{"tolerance", &m.requestsTolerance},
		{"sweep", &m.requestsSweep},
		{"batch", &m.requestsBatch},
		{"plan", &m.requestsPlan},
		{"healthz", &m.requestsHealth},
		{"metrics", &m.requestsMetrics},
	} {
		fmt.Fprintf(w, "lattold_requests_total{endpoint=%q} %d\n", c.endpoint, c.v.Load())
	}
	fmt.Fprintf(w, "lattold_batch_items_total %d\n", m.batchItems.Load())
	for class := 2; class <= 5; class++ {
		fmt.Fprintf(w, "lattold_responses_total{class=\"%dxx\"} %d\n", class, m.responsesByClass[class].Load())
	}
	fmt.Fprintf(w, "lattold_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "lattold_cache_coalesced_total %d\n", m.cacheCoalesced.Load())
	fmt.Fprintf(w, "lattold_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(w, "lattold_cache_evictions_total %d\n", m.cacheEvictions.Load())
	fmt.Fprintf(w, "lattold_cache_hit_ratio %g\n", m.HitRatio())
	if m.cachedEntries != nil {
		fmt.Fprintf(w, "lattold_cache_entries %d\n", m.cachedEntries())
	}
	fmt.Fprintf(w, "lattold_surrogate_hits_total %d\n", m.surrogateHits.Load())
	fmt.Fprintf(w, "lattold_surrogate_fallbacks_total{reason=\"bound_exceeded\"} %d\n", m.surrogateBoundExceeded.Load())
	fmt.Fprintf(w, "lattold_surrogate_fallbacks_total{reason=\"ineligible\"} %d\n", m.surrogateIneligible.Load())
	fmt.Fprintf(w, "lattold_surrogate_refines_total %d\n", m.surrogateRefines.Load())
	// Per-tier serve counts of the three-level lookup, derived from the
	// counters above: every request lands in exactly one tier.
	fmt.Fprintf(w, "lattold_tier_served_total{tier=\"lru\"} %d\n", m.cacheHits.Load()+m.cacheCoalesced.Load())
	fmt.Fprintf(w, "lattold_tier_served_total{tier=\"surrogate\"} %d\n", m.surrogateHits.Load())
	fmt.Fprintf(w, "lattold_tier_served_total{tier=\"solver\"} %d\n", m.cacheMisses.Load())
	fmt.Fprintf(w, "lattold_snapshot_restored_entries %d\n", m.snapshotRestored.Load())
	fmt.Fprintf(w, "lattold_shed_total{reason=\"queue_full\"} %d\n", m.shedQueueFull.Load())
	fmt.Fprintf(w, "lattold_shed_total{reason=\"draining\"} %d\n", m.shedDraining.Load())
	fmt.Fprintf(w, "lattold_shed_total{reason=\"rate_limited\"} %d\n", m.shedRateLimited.Load())
	fmt.Fprintf(w, "lattold_peer_requests_total{outcome=\"forwarded\"} %d\n", m.peerForwarded.Load())
	fmt.Fprintf(w, "lattold_peer_requests_total{outcome=\"fallback_local\"} %d\n", m.peerFallback.Load())
	fmt.Fprintf(w, "lattold_peer_requests_total{outcome=\"received\"} %d\n", m.peerReceived.Load())
	m.forwardLatency.writeTo(w, "lattold_forward_seconds")
	if m.ringSize != nil {
		fmt.Fprintf(w, "lattold_ring_nodes %d\n", m.ringSize())
		departing := 0
		if m.ringDeparting() {
			departing = 1
		}
		fmt.Fprintf(w, "lattold_ring_departing %d\n", departing)
	}
	if m.rateClients != nil {
		fmt.Fprintf(w, "lattold_ratelimit_clients %d\n", m.rateClients())
	}
	fmt.Fprintf(w, "lattold_solves_total %d\n", m.solves.Load())
	fmt.Fprintf(w, "lattold_solve_errors_total %d\n", m.solveErrors.Load())
	fmt.Fprintf(w, "lattold_inflight_solves %d\n", m.inFlight.Load())
	if m.queueDepth != nil {
		fmt.Fprintf(w, "lattold_queue_depth %d\n", m.queueDepth())
	}
	fmt.Fprintf(w, "lattold_plans_total{outcome=\"solved\"} %d\n", m.plansSolved.Load())
	fmt.Fprintf(w, "lattold_plans_total{outcome=\"infeasible\"} %d\n", m.plansInfeasible.Load())
	m.planProbes.writeTo(w, "lattold_plan_probes")
	m.queueWait.writeTo(w, "lattold_queue_wait_seconds")
	m.solveLatency.writeTo(w, "lattold_solve_seconds")
	m.surrogateLatency.writeTo(w, "lattold_surrogate_seconds")
	m.solveIterations.writeTo(w, "lattold_solve_iterations")
}
