// Package serve is the concurrent model-evaluation service: an HTTP/JSON
// layer over the analytical solvers (mva, mms, tolerance) built to sustain
// heavy concurrent load.
//
// Three mechanisms sit between a request and a solver invocation:
//
//   - Result caching with request coalescing: every request canonicalizes to
//     a Key; a sharded LRU holds finished results, and identical in-flight
//     requests share one solver invocation (singleflight) instead of
//     recomputing.
//   - Admission control: solves run on a bounded worker pool (one reusable
//     mms.Workspace per worker, so the steady state allocates nothing); the
//     pending queue is bounded, and requests beyond it are shed immediately
//     with ErrQueueFull (HTTP 429) rather than queued without bound. On
//     shutdown the pool drains: in-flight solves finish, new work is refused
//     with ErrDraining (HTTP 503).
//   - Observability: atomic counters and latency histograms (requests, cache
//     hit ratio, queue wait, solve latency, in-flight gauge) are exposed as a
//     plaintext /metrics endpoint — the daemon reports its own utilization
//     and latency the same way the paper reports U_p and round-trip latency.
package serve

import (
	"math"

	"lattol/internal/access"
	"lattol/internal/mms"
	"lattol/internal/tolerance"
	"lattol/internal/topology"
	"lattol/internal/validate"
)

// ModelRequest is the wire form of one model configuration plus solver
// choice — the body of POST /v1/solve and the base of the tolerance and
// sweep requests. Fields mirror mms.Config; zero values of the optional
// fields select the usual defaults (geometric pattern, per-distance
// normalization, single ports, symmetric AMVA).
type ModelRequest struct {
	K             int     `json:"k"`
	Threads       int     `json:"threads"`
	Runlength     float64 `json:"runlength"`
	ContextSwitch float64 `json:"context_switch,omitempty"`
	MemoryTime    float64 `json:"memory_time"`
	SwitchTime    float64 `json:"switch_time"`
	PRemote       float64 `json:"p_remote"`
	Psw           float64 `json:"psw,omitempty"`
	Pattern       string  `json:"pattern,omitempty"`        // "", "geometric" or "uniform"
	GeometricMode string  `json:"geometric_mode,omitempty"` // "", "per-distance" or "per-node"
	MemoryPorts   int     `json:"memory_ports,omitempty"`
	SwitchPorts   int     `json:"switch_ports,omitempty"`
	Solver        string  `json:"solver,omitempty"` // "", "symmetric", "full" or "exact"

	// MaxError, when positive, states the relative error the client will
	// accept on each reported metric and opts the request into the surrogate
	// tier: if a precomputed grid certifies an interpolated answer within
	// MaxError, that answer is served in sub-µs instead of running a solver.
	// Zero (the default) demands exact solves only. Cached exact results are
	// always preferred over interpolation. Applies to solve operations;
	// tolerance evaluations ignore it.
	MaxError float64 `json:"max_error,omitempty"`
}

// ToleranceRequest is the body of POST /v1/tolerance: a model plus the
// subsystem whose latency is judged and how the ideal system is derived.
type ToleranceRequest struct {
	ModelRequest
	Subsystem string `json:"subsystem,omitempty"` // "network" (default) or "memory"
	Mode      string `json:"mode,omitempty"`      // "", "zero-remote" or "zero-delay"
}

// SweepRequest is the body of POST /v1/sweep: a base model, the knob to
// sweep and the range. Every point is evaluated like one /v1/tolerance
// request per subsystem, through the same cache and worker pool.
type SweepRequest struct {
	ModelRequest
	Param string  `json:"param"`
	From  float64 `json:"from"`
	To    float64 `json:"to"`
	Steps int     `json:"steps"`
}

// BatchItemRequest is one element of POST /v1/batch's items: a model plus the
// operation to perform on it. Subsystem and mode apply to tolerance items
// only.
type BatchItemRequest struct {
	ModelRequest
	Op        string `json:"op,omitempty"`        // "" or "solve" (default), or "tolerance"
	Subsystem string `json:"subsystem,omitempty"` // as in ToleranceRequest
	Mode      string `json:"mode,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: a positional list of
// independent evaluations answered in one round trip. Item failures are
// positional — they never fail the batch.
type BatchRequest struct {
	Items []BatchItemRequest `json:"items"`
}

// key canonicalizes one batch item: operation parse, component parse and
// configuration validation, yielding the same Key the single-request
// endpoints would, so batch items share cache lines with /v1/solve and
// /v1/tolerance traffic.
func (r BatchItemRequest) key() (Key, error) {
	var op opKind
	switch r.Op {
	case "", "solve":
		op = opSolve
	case "tolerance":
		op = opTolerance
	default:
		return Key{}, validate.Fieldf("serve.BatchItemRequest", "op", "= %q, want solve or tolerance", r.Op)
	}
	var sub tolerance.Subsystem
	var mode tolerance.IdealMode
	if op == opTolerance {
		var err error
		if sub, err = parseSubsystem(r.Subsystem); err != nil {
			return Key{}, err
		}
		if mode, err = parseMode(r.Mode, sub); err != nil {
			return Key{}, err
		}
	} else if r.Subsystem != "" || r.Mode != "" {
		return Key{}, validate.Fieldf("serve.BatchItemRequest", "op",
			"= %q with subsystem/mode set; only tolerance items judge a subsystem", r.Op)
	}
	cfg, pat, geo, solver, err := r.components()
	if err != nil {
		return Key{}, err
	}
	if err := validateConfig(cfg, pat); err != nil {
		return Key{}, err
	}
	return canonicalKey(cfg, pat, geo, solver, op, sub, mode), nil
}

// patternKind is the canonical encoding of ModelRequest.Pattern.
type patternKind uint8

const (
	patternGeometric patternKind = iota // the paper's default
	patternUniform
)

// opKind distinguishes the cached operation families. Solve and tolerance
// results live in one cache but under disjoint keys.
type opKind uint8

const (
	opSolve opKind = 1 + iota
	opTolerance
)

// Key is the canonical, comparable identity of one evaluation: two requests
// that must yield the same result map to the same Key. Canonicalization
// applies defaults (ports, solver) and zeroes fields the evaluation cannot
// depend on (pattern parameters when no access is remote, psw under the
// uniform pattern, subsystem/mode for plain solves), so equivalent requests
// coalesce and hit the same cache line. All fields are scalars: building and
// comparing a Key allocates nothing, which keeps the cache-hit path at zero
// allocations per request.
type Key struct {
	op      opKind
	sub     tolerance.Subsystem
	mode    tolerance.IdealMode
	solver  mms.Solver
	pattern patternKind
	geoMode access.GeometricMode

	k, threads, memPorts, swPorts int

	runlength, contextSwitch, memoryTime, switchTime, pRemote, psw float64
}

// canonicalKey builds the Key of one evaluation from validated components.
func canonicalKey(cfg mms.Config, pat patternKind, geo access.GeometricMode, solver mms.Solver, op opKind, sub tolerance.Subsystem, mode tolerance.IdealMode) Key {
	key := Key{
		op:      op,
		sub:     sub,
		mode:    mode,
		solver:  solver,
		pattern: pat,
		geoMode: geo,
		k:       cfg.K,
		threads: cfg.Threads,
		// +0 folds IEEE negative zero into positive zero so -0.0 and 0.0
		// requests share a key.
		runlength:     cfg.Runlength + 0,
		contextSwitch: cfg.ContextSwitch + 0,
		memoryTime:    cfg.MemoryTime + 0,
		switchTime:    cfg.SwitchTime + 0,
		pRemote:       cfg.PRemote + 0,
		psw:           cfg.Psw + 0,
		memPorts:      cfg.MemoryPorts,
		swPorts:       cfg.SwitchPorts,
	}
	if key.memPorts < 1 {
		key.memPorts = 1
	}
	if key.swPorts < 1 {
		key.swPorts = 1
	}
	if key.pRemote == 0 || key.k == 1 {
		// No access ever touches the network: the pattern is irrelevant.
		key.pattern, key.geoMode, key.psw = 0, 0, 0
	} else if key.pattern == patternUniform {
		// The uniform pattern has no locality parameter.
		key.geoMode, key.psw = 0, 0
	}
	if op == opSolve {
		key.sub, key.mode = 0, 0
	}
	return key
}

// hash mixes the key's fields into a shard selector: word-at-a-time FNV-1a
// (whole uint64 per xor/multiply step, not per byte — the byte-wise variant
// costs ~120 serial multiplies and dominated the cache-hit profile) with a
// murmur3-style finalizer so the low bits the shard mask reads are fully
// avalanched despite the multiply-last word mixing.
func (k *Key) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h = (h ^ v) * prime64
	}
	mix(uint64(k.op) | uint64(k.sub)<<8 | uint64(k.mode)<<16 | uint64(k.solver)<<24 |
		uint64(k.pattern)<<32 | uint64(k.geoMode)<<40)
	mix(uint64(k.k))
	mix(uint64(k.threads))
	mix(uint64(k.memPorts))
	mix(uint64(k.swPorts))
	mix(math.Float64bits(k.runlength))
	mix(math.Float64bits(k.contextSwitch))
	mix(math.Float64bits(k.memoryTime))
	mix(math.Float64bits(k.switchTime))
	mix(math.Float64bits(k.pRemote))
	mix(math.Float64bits(k.psw))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// config rebuilds the solver configuration the key denotes. Called on the
// compute path only (cache misses), so constructing the pattern may
// allocate.
func (k Key) config() mms.Config {
	cfg := mms.Config{
		K:             k.k,
		Threads:       k.threads,
		Runlength:     k.runlength,
		ContextSwitch: k.contextSwitch,
		MemoryTime:    k.memoryTime,
		SwitchTime:    k.switchTime,
		PRemote:       k.pRemote,
		Psw:           k.psw,
		GeometricMode: k.geoMode,
		MemoryPorts:   k.memPorts,
		SwitchPorts:   k.swPorts,
	}
	if k.pattern == patternUniform && k.pRemote > 0 && k.k > 1 {
		cfg.Pattern = access.MustUniform(topology.MustTorus(k.k))
	}
	return cfg
}

// parsePattern resolves the wire pattern name.
func parsePattern(name string) (patternKind, error) {
	switch name {
	case "", "geometric":
		return patternGeometric, nil
	case "uniform":
		return patternUniform, nil
	default:
		return 0, validate.Fieldf("serve.ModelRequest", "pattern", "= %q, want geometric or uniform", name)
	}
}

// parseGeometricMode resolves the wire geometric-normalization name.
func parseGeometricMode(name string) (access.GeometricMode, error) {
	switch name {
	case "", "per-distance":
		return access.PerDistance, nil
	case "per-node":
		return access.PerNode, nil
	default:
		return 0, validate.Fieldf("serve.ModelRequest", "geometric_mode", "= %q, want per-distance or per-node", name)
	}
}

// parseSubsystem resolves the wire subsystem name (default: network).
func parseSubsystem(name string) (tolerance.Subsystem, error) {
	switch name {
	case "", "network":
		return tolerance.Network, nil
	case "memory":
		return tolerance.Memory, nil
	default:
		return 0, validate.Fieldf("serve.ToleranceRequest", "subsystem", "= %q, want network or memory", name)
	}
}

// parseMode resolves the wire ideal-mode name. The empty string selects the
// paper's preferred mode for the subsystem: zero-remote for the network
// ("modify application parameters"), zero-delay for memory.
func parseMode(name string, sub tolerance.Subsystem) (tolerance.IdealMode, error) {
	switch name {
	case "":
		if sub == tolerance.Network {
			return tolerance.ZeroRemote, nil
		}
		return tolerance.ZeroDelay, nil
	case "zero-delay":
		return tolerance.ZeroDelay, nil
	case "zero-remote":
		if sub != tolerance.Network {
			return 0, validate.Fieldf("serve.ToleranceRequest", "mode", "= %q, only defined for the network subsystem", name)
		}
		return tolerance.ZeroRemote, nil
	default:
		return 0, validate.Fieldf("serve.ToleranceRequest", "mode", "= %q, want zero-delay or zero-remote", name)
	}
}

// components parses the request's enum fields and assembles the (not yet
// validated) solver configuration.
func (r ModelRequest) components() (cfg mms.Config, pat patternKind, geo access.GeometricMode, solver mms.Solver, err error) {
	// MaxError is not part of the canonical Key (it selects how a result may
	// be produced, not which result), but it is still client input.
	if math.IsNaN(r.MaxError) || r.MaxError < 0 || r.MaxError >= 1 {
		err = validate.Fieldf("serve.ModelRequest", "MaxError", "= %v, want in [0,1)", r.MaxError)
		return
	}
	if pat, err = parsePattern(r.Pattern); err != nil {
		return
	}
	if geo, err = parseGeometricMode(r.GeometricMode); err != nil {
		return
	}
	if solver, err = mms.ParseSolver(r.Solver); err != nil {
		return
	}
	cfg = mms.Config{
		K:             r.K,
		Threads:       r.Threads,
		Runlength:     r.Runlength,
		ContextSwitch: r.ContextSwitch,
		MemoryTime:    r.MemoryTime,
		SwitchTime:    r.SwitchTime,
		PRemote:       r.PRemote,
		Psw:           r.Psw,
		GeometricMode: geo,
		MemoryPorts:   r.MemoryPorts,
		SwitchPorts:   r.SwitchPorts,
	}
	return
}

// validateConfig checks a configuration without constructing its access
// pattern. The uniform pattern has no locality parameter, so Psw is checked
// only when the geometric pattern would actually be built; a placeholder
// value stands in during validation (Key canonicalization zeroes psw for
// uniform requests, so the placeholder never leaks into a cache key).
func validateConfig(cfg mms.Config, pat patternKind) error {
	if pat == patternUniform {
		cfg.Psw = 1
	}
	return cfg.Validate()
}

// Validate reports the first invalid field of the request as a field-named
// error. It allocates nothing on the success path, keeping cache hits
// allocation-free end to end.
func (r ModelRequest) Validate() error {
	cfg, pat, _, _, err := r.components()
	if err != nil {
		return err
	}
	return validateConfig(cfg, pat)
}
