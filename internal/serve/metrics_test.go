package serve

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lattol/internal/mms"
	"lattol/internal/mva"
)

// parseHistogram extracts the rendered +Inf bucket and _count of one
// histogram from exposition text. Returns -1 for lines it cannot find.
func parseHistogram(text, name string) (inf, count int) {
	inf, count = -1, -1
	for _, line := range strings.Split(text, "\n") {
		if n := -1; strings.HasPrefix(line, name+`_bucket{le="+Inf"} `) {
			fmt.Sscanf(line, name+`_bucket{le="+Inf"} %d`, &n)
			inf = n
		}
		if n := -1; strings.HasPrefix(line, name+"_count ") {
			fmt.Sscanf(line, name+"_count %d", &n)
			count = n
		}
	}
	return inf, count
}

// TestHistogramCountMatchesBuckets pins the exposition invariant Prometheus
// requires: _count equals the cumulative +Inf bucket, for both histogram
// flavors, including observations beyond the largest finite bound.
func TestHistogramCountMatchesBuckets(t *testing.T) {
	var h histogram
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, time.Second, 20 * time.Second} {
		h.observe(d)
	}
	var buf bytes.Buffer
	h.writeTo(&buf, "x")
	if inf, count := parseHistogram(buf.String(), "x"); inf != 4 || count != 4 {
		t.Errorf("latency histogram: +Inf bucket %d, _count %d, want 4 and 4\n%s", inf, count, buf.String())
	}

	var ch countHistogram
	for _, n := range []uint64{1, 5, 50000, 5000000} {
		ch.observe(n)
	}
	buf.Reset()
	ch.writeTo(&buf, "y")
	if inf, count := parseHistogram(buf.String(), "y"); inf != 4 || count != 4 {
		t.Errorf("count histogram: +Inf bucket %d, _count %d, want 4 and 4\n%s", inf, count, buf.String())
	}
}

// TestHistogramCountConsistentUnderConcurrentObserve is the regression test
// for the internally inconsistent rendering: with _count kept in a separate
// atomic, a render racing concurrent observers could report _count out of
// step with the +Inf bucket. Deriving _count from the cumulative bucket sum
// makes every snapshot consistent by construction; this hammers renders
// against writers and asserts the invariant on each one.
func TestHistogramCountConsistentUnderConcurrentObserve(t *testing.T) {
	var h histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.observe(time.Millisecond)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		h.writeTo(&buf, "x")
		if inf, count := parseHistogram(buf.String(), "x"); inf != count {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot %d: +Inf bucket %d != _count %d", i, inf, count)
		}
	}
	close(stop)
	wg.Wait()
}

// TestIterBoundsCoverSolverCaps asserts the largest finite iteration bucket
// covers both solvers' default iteration caps, so a run that hits its cap is
// still distinguishable from a runaway in the histogram instead of vanishing
// into +Inf.
func TestIterBoundsCoverSolverCaps(t *testing.T) {
	largest := iterBounds[len(iterBounds)-1]
	if largest < uint64(mva.DefaultMaxIterations) {
		t.Errorf("largest finite iteration bucket %d < mva.DefaultMaxIterations %d", largest, mva.DefaultMaxIterations)
	}
	if largest < uint64(mms.DefaultMaxIterations) {
		t.Errorf("largest finite iteration bucket %d < mms.DefaultMaxIterations %d", largest, mms.DefaultMaxIterations)
	}
}
