// Package cluster turns N lattold processes into one consistent-hash serving
// ring. Each canonical request Key (internal/serve) hashes to a single owner
// node; the owner solves and caches, every other node forwards the raw
// request bytes to it and relays the answer verbatim. Two properties follow:
//
//   - Cluster-wide singleflight: a key is solved once across the fleet, no
//     matter which node the traffic enters through — the owner's LRU and
//     request coalescing are the cluster's, because every path to a key goes
//     through its owner.
//   - Minimal reshuffling: consistent hashing with virtual nodes means a
//     membership change remaps only ~1/N of the key space, so a node joining
//     or draining does not flush the other nodes' working sets.
//
// The package is transport-mechanics only: Ring answers "who owns hash h",
// Cluster holds one lattolclient per peer and forwards bodies. Routing
// policy — when to forward, when to fall back to a local solve, how to
// account it — lives in internal/serve, next to the cache it protects.
package cluster

import (
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual-node count. 64 points per
// node keeps the expected ownership imbalance of a small ring within a few
// percent (TestRingBalance pins it) at negligible lookup cost.
const DefaultVirtualNodes = 64

// ringPoint is one virtual node: a position on the hash circle and the
// member that owns the arc ending there.
type ringPoint struct {
	h    uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of member names
// (advertise URLs). Lookups are read-only and safe for concurrent use;
// membership changes build a new Ring.
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring over members (deduplicated; order-insensitive —
// every node building a ring from the same member set, however listed, gets
// the identical ring, which is what makes independent nodes agree on
// ownership without a coordinator). vnodes ≤ 0 selects DefaultVirtualNodes.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: pointHash(m, i), node: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// A 64-bit collision between virtual nodes is vanishingly rare, but
		// the tiebreak must still be deterministic across nodes.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the member owning hash h: the first virtual node clockwise
// from h (wrapping). Empty ring returns "".
func (r *Ring) Owner(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// pointHash positions virtual node i of a member on the circle: FNV-1a over
// "member#i" with a murmur3-style finalizer, the same avalanche the serving
// layer applies to its key hashes, so low-entropy member names (sequential
// ports) still spread over the full 64-bit circle.
func pointHash(member string, i int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for j := 0; j < len(member); j++ {
		h = (h ^ uint64(member[j])) * prime64
	}
	h = (h ^ '#') * prime64
	for _, b := range strconv.AppendInt(nil, int64(i), 10) {
		h = (h ^ uint64(b)) * prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
