package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	lattolclient "lattol/internal/client"
)

// ForwardHeader marks a node-to-node forwarded request and carries the
// origin node's advertise URL. A request bearing it is never forwarded
// again — whatever the receiver's own ring says — so a membership
// disagreement during churn degrades to one extra local solve, never to a
// forwarding loop.
const ForwardHeader = "X-Lattold-Forward"

// Transport is the one-hop peer call the cluster needs: POST raw bytes,
// return the raw response. Satisfied by *lattolclient.Client; tests plug in
// fakes.
type Transport interface {
	PostRaw(ctx context.Context, path string, body []byte, hdr http.Header) (*lattolclient.RawResponse, error)
}

// Options configures a Cluster. The zero value selects sensible defaults.
type Options struct {
	// VirtualNodes per member; ≤ 0 selects DefaultVirtualNodes.
	VirtualNodes int
	// ForwardTimeout bounds one peer forward (on top of the caller's
	// context). A forward that cannot beat the local solver's worst case is
	// not worth waiting for — the serving layer falls back to a local solve.
	// Default 5s.
	ForwardTimeout time.Duration
	// NewTransport builds the per-peer transport; nil selects a
	// lattolclient.Client with retries and hedging disabled (the serving
	// layer's local-solve fallback is the retry policy for forwards).
	NewTransport func(peer string) Transport
}

func (o Options) withDefaults(self string) Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = DefaultVirtualNodes
	}
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 5 * time.Second
	}
	if o.NewTransport == nil {
		o.NewTransport = func(peer string) Transport {
			return lattolclient.New(peer, lattolclient.Options{
				Retries:  -1,
				ClientID: "peer:" + self,
			})
		}
	}
	return o
}

// Cluster is one node's view of the ring: its own identity, the membership,
// and a transport per peer. Safe for concurrent use; membership updates
// (SetMembers) swap the ring atomically under readers.
type Cluster struct {
	self string
	opts Options

	ring atomic.Pointer[Ring]

	mu         sync.Mutex
	transports map[string]Transport

	departing atomic.Bool
}

// New builds a node's cluster state. self is this node's advertise URL;
// peers are the other members' advertise URLs (self is added implicitly, so
// every node can be configured with the same peer list minus itself, or
// sloppily with itself included — duplicates are folded).
func New(self string, peers []string, opts Options) (*Cluster, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: empty self advertise URL")
	}
	opts = opts.withDefaults(self)
	c := &Cluster{
		self:       self,
		opts:       opts,
		transports: make(map[string]Transport),
	}
	members := append([]string{self}, peers...)
	c.ring.Store(NewRing(members, opts.VirtualNodes))
	return c, nil
}

// Self returns this node's advertise URL.
func (c *Cluster) Self() string { return c.self }

// Ring returns the current ring (immutable snapshot).
func (c *Cluster) Ring() *Ring { return c.ring.Load() }

// Members returns the current membership, sorted.
func (c *Cluster) Members() []string { return c.ring.Load().Members() }

// Size returns the current member count.
func (c *Cluster) Size() int { return c.ring.Load().Size() }

// SetMembers replaces the membership. Self is folded in — except on a
// departing node, where it is filtered out even if the caller lists it (a
// stale membership push must not resurrect a node that already left its own
// ring). In-flight Owner lookups keep the ring they started with.
func (c *Cluster) SetMembers(members []string) {
	if c.departing.Load() {
		kept := make([]string, 0, len(members))
		for _, m := range members {
			if m != c.self {
				kept = append(kept, m)
			}
		}
		members = kept
	} else {
		members = append([]string{c.self}, members...)
	}
	c.ring.Store(NewRing(members, c.opts.VirtualNodes))
}

// Owner resolves hash h to its owning node under the current ring and
// reports whether that is this node. A departing node no longer claims
// ownership of anything new, and an empty ring degenerates to local serving
// (self true), so callers need no special cases.
func (c *Cluster) Owner(h uint64) (node string, self bool) {
	node = c.ring.Load().Owner(h)
	if node == "" || node == c.self {
		return c.self, true
	}
	return node, false
}

// Departing reports whether Leave has been called.
func (c *Cluster) Departing() bool { return c.departing.Load() }

// Leave marks this node as departing: it removes itself from its own ring
// (new local traffic routes to the surviving owners) and the serving layer
// starts refusing incoming forwards with 503, which flips the origins to
// their local-solve fallback. Peers' rings still name this node until their
// next membership update; the 503-and-fallback path covers the gap — that is
// the graceful-departure half of the drain, the HTTP listener's shutdown is
// the other.
func (c *Cluster) Leave() {
	if c.departing.CompareAndSwap(false, true) {
		members := c.ring.Load().Members()
		kept := members[:0]
		for _, m := range members {
			if m != c.self {
				kept = append(kept, m)
			}
		}
		c.ring.Store(NewRing(kept, c.opts.VirtualNodes))
	}
}

// transport returns (building on demand) the transport for a peer.
func (c *Cluster) transport(peer string) Transport {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.transports[peer]
	if t == nil {
		t = c.opts.NewTransport(peer)
		c.transports[peer] = t
	}
	return t
}

// Forward sends raw request bytes to a peer, marked with ForwardHeader so
// the receiver serves it locally instead of re-forwarding. The response is
// returned verbatim for the caller to relay; any error (transport failure or
// deadline) means the caller should fall back to a local solve.
func (c *Cluster) Forward(ctx context.Context, peer, path string, body []byte) (*lattolclient.RawResponse, error) {
	if peer == c.self {
		return nil, fmt.Errorf("cluster: forward to self (%s)", peer)
	}
	ctx, cancel := context.WithTimeout(ctx, c.opts.ForwardTimeout)
	defer cancel()
	hdr := http.Header{ForwardHeader: []string{c.self}}
	return c.transport(peer).PostRaw(ctx, path, body, hdr)
}
