package cluster_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"testing"

	lattolclient "lattol/internal/client"
	"lattol/internal/cluster"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingDeterminism: every node must compute the identical ring from the
// same member set, however that set is listed — this is what lets
// independently configured nodes agree on ownership without a coordinator.
func TestRingDeterminism(t *testing.T) {
	m := members(5)
	shuffled := append([]string(nil), m...)
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	withDups := append(append([]string(nil), m...), m[0], m[3], "")

	a := cluster.NewRing(m, 0)
	b := cluster.NewRing(shuffled, 0)
	c := cluster.NewRing(withDups, 0)
	for i := 0; i < 10000; i++ {
		h := rng.Uint64()
		if a.Owner(h) != b.Owner(h) || a.Owner(h) != c.Owner(h) {
			t.Fatalf("owner of %#x differs across equivalent rings: %q, %q, %q",
				h, a.Owner(h), b.Owner(h), c.Owner(h))
		}
	}
}

// TestRingBalance pins the ownership spread of the default virtual-node
// count: on a 4-member ring no member may own more than ~1.6x or less than
// ~0.5x its fair share.
func TestRingBalance(t *testing.T) {
	m := members(4)
	r := cluster.NewRing(m, 0)
	counts := make(map[string]int)
	rng := rand.New(rand.NewSource(7))
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[r.Owner(rng.Uint64())]++
	}
	fair := float64(samples) / float64(len(m))
	for _, node := range m {
		share := float64(counts[node]) / fair
		if share < 0.5 || share > 1.6 {
			t.Errorf("node %s owns %.2fx its fair share (counts %v)", node, share, counts)
		}
	}
}

// TestRingReshuffle: removing one member must remap ONLY the keys that
// member owned — everything else keeps its owner. This is the property that
// makes a node departure leave the survivors' caches intact.
func TestRingReshuffle(t *testing.T) {
	m := members(4)
	before := cluster.NewRing(m, 0)
	after := cluster.NewRing(m[:3], 0) // drop the last member
	rng := rand.New(rand.NewSource(11))
	moved := 0
	const samples = 50000
	for i := 0; i < samples; i++ {
		h := rng.Uint64()
		was, is := before.Owner(h), after.Owner(h)
		if was == m[3] {
			moved++
			continue // had to move; any surviving owner is right
		}
		if was != is {
			t.Fatalf("hash %#x moved %q → %q though its owner survived", h, was, is)
		}
	}
	if frac := float64(moved) / samples; frac < 0.10 || frac > 0.45 {
		t.Errorf("departed member owned %.1f%% of the key space, want roughly a quarter", 100*frac)
	}
}

// fakeTransport records forwards and answers with a canned response.
type fakeTransport struct {
	mu    sync.Mutex
	calls []string
	resp  *lattolclient.RawResponse
	err   error
}

func (f *fakeTransport) PostRaw(ctx context.Context, path string, body []byte, hdr http.Header) (*lattolclient.RawResponse, error) {
	f.mu.Lock()
	f.calls = append(f.calls, path+" fwd="+hdr.Get(cluster.ForwardHeader))
	f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	return f.resp, nil
}

func newTestCluster(t *testing.T, self string, peers []string, ft *fakeTransport) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(self, peers, cluster.Options{
		NewTransport: func(peer string) cluster.Transport { return ft },
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestForwardMarksAndRefusesSelf(t *testing.T) {
	m := members(3)
	ft := &fakeTransport{resp: &lattolclient.RawResponse{Status: 200, Header: http.Header{}, Body: []byte("{}")}}
	c := newTestCluster(t, m[0], m[1:], ft)

	if _, err := c.Forward(context.Background(), m[0], "/v1/solve", nil); err == nil {
		t.Error("Forward to self succeeded, want error")
	}
	resp, err := c.Forward(context.Background(), m[1], "/v1/solve", []byte("{}"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("Forward = %v, %v", resp, err)
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if len(ft.calls) != 1 || ft.calls[0] != "/v1/solve fwd="+m[0] {
		t.Errorf("transport saw %q, want one forward marked with self", ft.calls)
	}
}

// TestLeave: a departing node drops out of its own ring (it claims no new
// ownership) and stays out even across later membership updates.
func TestLeave(t *testing.T) {
	m := members(3)
	c := newTestCluster(t, m[0], m[1:], &fakeTransport{})
	if !c.Ring().Has(m[0]) {
		t.Fatal("self not on own ring before Leave")
	}
	c.Leave()
	if !c.Departing() {
		t.Error("Departing() = false after Leave")
	}
	if c.Ring().Has(m[0]) {
		t.Error("self still on own ring after Leave")
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 1000; i++ {
		if node, self := c.Owner(rng.Uint64()); self {
			t.Fatalf("departing node claimed ownership of a key (owner %q)", node)
		}
	}
	c.SetMembers(m) // a stale membership push listing self must not resurrect it
	if c.Ring().Has(m[0]) {
		t.Error("SetMembers re-added a departing node to its own ring")
	}
}

// TestOwnerEmptyRingDegeneratesToSelf: with nobody left (everyone departed),
// routing degenerates to local serving rather than erroring.
func TestOwnerEmptyRingDegeneratesToSelf(t *testing.T) {
	c := newTestCluster(t, "http://solo:1", nil, &fakeTransport{})
	c.Leave()
	if node, self := c.Owner(42); !self || node != "http://solo:1" {
		t.Errorf("Owner on empty ring = (%q, %v), want self", node, self)
	}
}

// TestStressChurn races Owner lookups and Forwards against continuous
// membership churn — the ring-swap path under the race detector.
// LATTOL_STRESS_OPS raises the budget in CI and nightly runs.
func TestStressChurn(t *testing.T) {
	ops := envInt("LATTOL_STRESS_OPS", 200)
	m := members(6)
	ft := &fakeTransport{resp: &lattolclient.RawResponse{Status: 200, Header: http.Header{}, Body: []byte("{}")}}
	c := newTestCluster(t, m[0], m[1:], ft)

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // membership churn: grow and shrink the ring continuously
		defer wg.Done()
		for i := 0; i < ops; i++ {
			c.SetMembers(m[1 : 2+i%(len(m)-1)])
		}
	}()
	go func() { // reader: owner lookups must always land on a current member
		defer wg.Done()
		rng := rand.New(rand.NewSource(23))
		for i := 0; i < ops*10; i++ {
			node, self := c.Owner(rng.Uint64())
			if node == "" {
				t.Error("Owner returned an empty node on a non-empty ring")
				return
			}
			_ = self
		}
	}()
	go func() { // forwarder
		defer wg.Done()
		for i := 0; i < ops; i++ {
			peer := m[1+i%(len(m)-1)]
			if _, err := c.Forward(context.Background(), peer, "/v1/solve", nil); err != nil {
				t.Errorf("Forward(%s): %v", peer, err)
				return
			}
		}
	}()
	wg.Wait()
}
