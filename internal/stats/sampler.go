package stats

// Sampler is a Dist compiled into a branch-switch value type. The simulators
// draw one service time per event through their station's distribution; an
// interface call there defeats inlining and costs a dynamic dispatch per
// event. A Sampler flattens the four known distributions into a tag plus
// parameters so the hot path is a predictable switch over inlined RNG calls.
// Unknown Dist implementations fall back to the interface.
type Sampler struct {
	kind uint8
	k    int     // Erlang stages
	a, b float64 // kind-specific parameters
	dist Dist    // fallback for kinds not known here
}

const (
	sampZero    uint8 = iota // nil Dist: always 0
	sampConst                // a
	sampExp                  // a · Exp(1)
	sampUniform              // a + b·U
	sampErlang               // sum of k draws of a·Exp(1)
	sampDist                 // dist.Sample
)

// MakeSampler compiles d. A nil d samples as 0.
func MakeSampler(d Dist) Sampler {
	switch v := d.(type) {
	case nil:
		return Sampler{kind: sampZero}
	case Deterministic:
		return Sampler{kind: sampConst, a: v.V}
	case Exponential:
		if v.M == 0 {
			return Sampler{kind: sampZero}
		}
		return Sampler{kind: sampExp, a: v.M}
	case Uniform:
		return Sampler{kind: sampUniform, a: v.Lo, b: v.Hi - v.Lo}
	case Erlang:
		if v.K <= 0 || v.M == 0 {
			return Sampler{kind: sampZero}
		}
		return Sampler{kind: sampErlang, k: v.K, a: v.M / float64(v.K)}
	default:
		return Sampler{kind: sampDist, dist: d}
	}
}

// Sample draws one variate. It matches the compiled Dist's Sample exactly:
// the same RNG consumption, the same values.
func (s *Sampler) Sample(rng *RNG) float64 {
	switch s.kind {
	case sampExp:
		return rng.ExpFloat64() * s.a
	case sampConst:
		return s.a
	case sampUniform:
		return s.a + s.b*rng.Float64()
	case sampErlang:
		var sum float64
		for i := 0; i < s.k; i++ {
			sum += rng.ExpFloat64() * s.a
		}
		return sum
	case sampDist:
		return s.dist.Sample(rng)
	default:
		return 0
	}
}
