package stats

import (
	"fmt"
	"math"
)

// Summary accumulates a streaming mean and variance (Welford's algorithm).
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for fewer than 2
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 with none).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with none).
func (s *Summary) Max() float64 { return s.max }

// TimeWeighted accumulates a time-average of a piecewise-constant signal,
// e.g. a queue length or a busy indicator.
//
// The accumulator expects a non-decreasing clock: segments whose timestamps
// run backwards contribute nothing (they are dropped rather than producing
// negative durations). Before the first Set the signal is undefined — Reset
// is then a no-op on the (already empty) accumulators, and MeanAt returns 0.
type TimeWeighted struct {
	lastT    float64
	lastV    float64
	area     float64
	duration float64
	started  bool
}

// Set records that the signal takes value v from time t onward. A t at or
// before the previous timestamp discards the open segment (no negative
// duration is ever accumulated) and restarts the signal at t.
func (w *TimeWeighted) Set(t, v float64) {
	if w.started {
		dt := t - w.lastT
		if dt > 0 {
			w.area += w.lastV * dt
			w.duration += dt
		}
	}
	w.lastT, w.lastV, w.started = t, v, true
}

// Reset discards accumulated area but keeps the current value, so
// measurement can start after a warm-up period. Called before any Set it
// only clears the (already empty) accumulators; the signal stays unset
// until the first Set.
func (w *TimeWeighted) Reset(t float64) {
	if w.started {
		w.lastT = t
	}
	w.area, w.duration = 0, 0
}

// MeanAt returns the time-average over the observed span, closing the last
// segment at time t. With nothing observed — no Set yet, a span of zero
// length, or a closing time at or before the segment start (e.g. a clock
// reset moved lastT past t) — it returns 0, never a negative-duration
// artifact.
func (w *TimeWeighted) MeanAt(t float64) float64 {
	area, dur := w.area, w.duration
	if w.started && t > w.lastT {
		area += w.lastV * (t - w.lastT)
		dur += t - w.lastT
	}
	if dur <= 0 {
		return 0
	}
	return area / dur
}

// BatchMeans estimates a steady-state mean with a confidence interval by the
// method of nonoverlapping batch means. The observations are split into
// `batches` equal batches (discarding a remainder); the batch averages are
// treated as approximately independent normal samples.
type BatchMeans struct {
	Mean     float64
	HalfCI   float64 // 95% half-width
	Batches  int
	PerBatch int
	// Degenerate is set when the series was too short to give every batch at
	// least 2 observations (len(series) < 2*batches). Each "batch mean" is
	// then a single raw observation, so HalfCI reflects observation noise —
	// typically far wider than true batch-mean noise and unusable as a
	// steady-state precision claim. Callers should treat a degenerate CI as
	// "not converged", never as evidence of precision.
	Degenerate bool
}

// NewBatchMeans computes batch-means statistics from a series. It needs at
// least 2 batches with at least 1 observation each; series shorter than
// 2*batches produce a result flagged Degenerate (see BatchMeans.Degenerate).
func NewBatchMeans(series []float64, batches int) (BatchMeans, error) {
	if batches < 2 {
		return BatchMeans{}, fmt.Errorf("stats: need >= 2 batches, got %d", batches)
	}
	per := len(series) / batches
	if per < 1 {
		return BatchMeans{}, fmt.Errorf("stats: %d observations cannot fill %d batches", len(series), batches)
	}
	means := make([]float64, batches)
	for b := 0; b < batches; b++ {
		var sum float64
		for i := b * per; i < (b+1)*per; i++ {
			sum += series[i]
		}
		means[b] = sum / float64(per)
	}
	var s Summary
	for _, m := range means {
		s.Add(m)
	}
	bm := BatchMeans{Mean: s.Mean(), Batches: batches, PerBatch: per, Degenerate: per < 2}
	// 95% half-width with a normal critical value; with >= 10 batches the
	// t-correction is under 10% and irrelevant to shape comparisons.
	bm.HalfCI = 1.96 * s.StdDev() / math.Sqrt(float64(batches))
	return bm, nil
}

// Mean accumulates a streaming mean as a plain (count, sum) pair. It is the
// cheap little sibling of Summary for hot paths that never read a variance
// or extremes: Add is two additions with no division or branches, which
// matters when it runs once per simulation event.
type Mean struct {
	n   int64
	sum float64
}

// Add records one observation.
func (m *Mean) Add(x float64) {
	m.n++
	m.sum += x
}

// Count returns the number of observations.
func (m *Mean) Count() int64 { return m.n }

// Mean returns the sample mean (0 with no observations).
func (m *Mean) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}
