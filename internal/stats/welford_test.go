package stats

import (
	"math"
	"testing"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("count %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean %v", w.Mean())
	}
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance %v", w.Variance())
	}
	if w.HalfCI(0.95) <= 0 {
		t.Errorf("half CI %v, want > 0", w.HalfCI(0.95))
	}
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.HalfCI(0.95) != 0 {
		t.Error("reset did not clear")
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.HalfCI(0.95) != 0 {
		t.Error("empty accumulator not zero")
	}
	w.Add(3)
	if w.Variance() != 0 || w.HalfCI(0.95) != 0 {
		t.Error("single observation must have zero variance and CI")
	}
	w.Add(4)
	if !math.IsInf(w.HalfCI(1), 1) {
		t.Error("confidence 1 should give +Inf half-width")
	}
	if w.HalfCI(0) != 0 || w.HalfCI(-1) != 0 {
		t.Error("nonpositive confidence should give 0")
	}
}

// TestWelfordMergeExact: merging partials must equal sequential accumulation
// to floating-point noise, for every split point.
func TestWelfordMergeExact(t *testing.T) {
	rng := NewRNG(21)
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	for split := 0; split <= len(xs); split += 16 {
		var a, b Welford
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.Count() != whole.Count() {
			t.Fatalf("split %d: count %d != %d", split, a.Count(), whole.Count())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
			t.Fatalf("split %d: mean %v != %v", split, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Variance()-whole.Variance()) > 1e-6*(1+whole.Variance()) {
			t.Fatalf("split %d: variance %v != %v", split, a.Variance(), whole.Variance())
		}
	}
	// Merging into an empty accumulator adopts the other side verbatim.
	var empty Welford
	empty.Merge(whole)
	if empty != whole {
		t.Error("merge into empty is not identity")
	}
	// Merging an empty accumulator is a no-op.
	before := whole
	whole.Merge(Welford{})
	if whole != before {
		t.Error("merge of empty changed state")
	}
}

// TestTInv pins the Student-t quantile against published table values.
func TestTInv(t *testing.T) {
	cases := []struct {
		p    float64
		df   int
		want float64
		tol  float64
	}{
		{0.975, 1, 12.7062, 1e-3},
		{0.975, 2, 4.30265, 1e-4},
		{0.975, 3, 3.18245, 5e-3},
		{0.975, 5, 2.57058, 2e-3},
		{0.975, 10, 2.22814, 1e-3},
		{0.975, 30, 2.04227, 1e-3},
		{0.975, 100, 1.98397, 1e-3},
		{0.95, 5, 2.01505, 2e-3},
		{0.995, 10, 3.16927, 5e-3},
		{0.5, 7, 0, 0},
	}
	for _, c := range cases {
		got := TInv(c.p, c.df)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("TInv(%v, %d) = %v, want %v ± %v", c.p, c.df, got, c.want, c.tol)
		}
		// Symmetry.
		if c.p != 0.5 {
			if lo := TInv(1-c.p, c.df); math.Abs(lo+got) > 1e-9 {
				t.Errorf("TInv(%v, %d) = %v, want -TInv(%v) = %v", 1-c.p, c.df, lo, c.p, -got)
			}
		}
	}
	if !math.IsInf(TInv(1, 5), 1) || !math.IsInf(TInv(0, 5), -1) {
		t.Error("p ∈ {0,1} must give ±Inf")
	}
	if !math.IsNaN(TInv(0.9, 0)) {
		t.Error("df < 1 must give NaN")
	}
}

// TestWelfordHalfCICoverage: the 95% CI from n=8 exponential replications
// should cover the true mean roughly 95% of the time. A loose band (90–99%)
// over 2000 trials catches gross errors in TInv or the s/√n plumbing.
func TestWelfordHalfCICoverage(t *testing.T) {
	rng := NewRNG(31)
	const trials = 2000
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var w Welford
		for i := 0; i < 8; i++ {
			w.Add(rng.ExpFloat64())
		}
		h := w.HalfCI(0.95)
		if math.Abs(w.Mean()-1) <= h {
			covered++
		}
	}
	frac := float64(covered) / trials
	// Exponential at n=8 is skewed, so nominal coverage runs a little under
	// 95%; anything in [0.88, 0.99] says the machinery is sound.
	if frac < 0.88 || frac > 0.99 {
		t.Errorf("CI coverage %v, want ≈0.95", frac)
	}
}
