package stats

import "math"

// Welford is a streaming moment accumulator (count / mean / M2) in Welford's
// numerically stable form, with mergeable state (Chan, Golub & LeVeque's
// pairwise update). The replication runner keeps one per metric: workers
// accumulate privately and the coordinator folds them in deterministic order,
// so the aggregate is bit-identical at any worker count.
//
// Unlike Summary it tracks no min/max (two fewer branches in hot loops) and
// it can Merge; unlike BatchMeans it needs no fixed horizon up front.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds other into w, as if every observation of other had been Added
// to w. Merging is associative up to floating-point rounding; callers that
// need bit-reproducibility must merge in a deterministic order.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n1, n2 := float64(w.n), float64(other.n)
	d := other.mean - w.mean
	n := n1 + n2
	w.mean += d * n2 / n
	w.m2 += other.m2 + d*d*n1*n2/n
	w.n += other.n
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// HalfCI returns the half-width of the confidence interval on the mean at the
// given two-sided confidence level (e.g. 0.95), using the Student-t quantile
// with n-1 degrees of freedom: t · s/√n. It returns 0 with fewer than two
// observations (no variance estimate exists) and +Inf for confidence ≥ 1.
func (w *Welford) HalfCI(confidence float64) float64 {
	if w.n < 2 {
		return 0
	}
	if confidence >= 1 {
		return math.Inf(1)
	}
	if confidence <= 0 {
		return 0
	}
	t := TInv(1-(1-confidence)/2, int(w.n-1))
	return t * w.StdDev() / math.Sqrt(float64(w.n))
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// TInv returns the one-sided Student-t quantile: the value x such that a t
// distribution with df degrees of freedom has P(T ≤ x) = p, for p in (0, 1).
// df=1 and df=2 use the closed forms; larger df inverts the Cornish–Fisher
// expansion of the t distribution around the normal quantile (Hill's
// approximation, as used in AS 396), accurate to ~1e-6 for df ≥ 3 — far
// below the Monte-Carlo noise the replication CIs carry.
func TInv(p float64, df int) float64 {
	if df < 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -TInv(1-p, df)
	}
	switch df {
	case 1: // Cauchy
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		a := 2*p - 1
		return a * math.Sqrt(2/(1-a*a))
	}
	z := normInv(p)
	n := float64(df)
	g1 := (z*z*z + z) / 4
	g2 := (5*math.Pow(z, 5) + 16*z*z*z + 3*z) / 96
	g3 := (3*math.Pow(z, 7) + 19*math.Pow(z, 5) + 17*z*z*z - 15*z) / 384
	g4 := (79*math.Pow(z, 9) + 776*math.Pow(z, 7) + 1482*math.Pow(z, 5) - 1920*z*z*z - 945*z) / 92160
	return z + g1/n + g2/(n*n) + g3/(n*n*n) + g4/(n*n*n*n)
}

// normInv is the standard normal quantile (Acklam's rational approximation,
// |relative error| < 1.2e-9 over (0,1)).
func normInv(p float64) float64 {
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
