package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExponentialMoments(t *testing.T) {
	rng := NewRNG(1)
	d := Exponential{M: 10}
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(d.Sample(&rng))
	}
	if math.Abs(s.Mean()-10) > 0.15 {
		t.Errorf("mean %v, want ~10", s.Mean())
	}
	// Exponential: stddev == mean.
	if math.Abs(s.StdDev()-10) > 0.3 {
		t.Errorf("stddev %v, want ~10", s.StdDev())
	}
}

func TestExponentialZeroMean(t *testing.T) {
	rng := NewRNG(1)
	if v := (Exponential{M: 0}).Sample(&rng); v != 0 {
		t.Errorf("exp(0) sample %v", v)
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{V: 3.5}
	if d.Sample(nil) != 3.5 || d.Mean() != 3.5 {
		t.Error("deterministic")
	}
}

func TestUniform(t *testing.T) {
	rng := NewRNG(2)
	d := Uniform{Lo: 2, Hi: 6}
	var s Summary
	for i := 0; i < 100000; i++ {
		v := d.Sample(&rng)
		if v < 2 || v > 6 {
			t.Fatalf("sample %v out of range", v)
		}
		s.Add(v)
	}
	if math.Abs(s.Mean()-4) > 0.05 {
		t.Errorf("mean %v, want ~4", s.Mean())
	}
	if d.Mean() != 4 {
		t.Errorf("Mean() = %v", d.Mean())
	}
}

func TestErlangVarianceShrinks(t *testing.T) {
	rng := NewRNG(3)
	var s1, s8 Summary
	for i := 0; i < 100000; i++ {
		s1.Add(Erlang{K: 1, M: 10}.Sample(&rng))
		s8.Add(Erlang{K: 8, M: 10}.Sample(&rng))
	}
	if math.Abs(s1.Mean()-10) > 0.3 || math.Abs(s8.Mean()-10) > 0.3 {
		t.Errorf("means %v, %v, want ~10", s1.Mean(), s8.Mean())
	}
	// CV of Erlang-8 is 1/sqrt(8): variance should be ~8x smaller.
	if s8.Variance() > s1.Variance()/4 {
		t.Errorf("Erlang-8 variance %v not well below exponential %v", s8.Variance(), s1.Variance())
	}
}

func TestErlangDegenerate(t *testing.T) {
	rng := NewRNG(1)
	if v := (Erlang{K: 0, M: 5}).Sample(&rng); v != 0 {
		t.Errorf("erlang(0) sample %v", v)
	}
}

func TestDistStrings(t *testing.T) {
	cases := map[string]Dist{
		"exp(10)":      Exponential{M: 10},
		"det(3)":       Deterministic{V: 3},
		"uniform(1,2)": Uniform{Lo: 1, Hi: 2},
		"erlang(4,10)": Erlang{K: 4, M: 10},
	}
	for want, d := range cases {
		if d.String() != want {
			t.Errorf("%T String = %q, want %q", d, d.String(), want)
		}
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Errorf("count %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean %v", s.Mean())
	}
	// Unbiased variance of this classic set is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 {
		t.Error("empty summary not zero")
	}
	s.Add(7)
	if s.Variance() != 0 || s.Mean() != 7 {
		t.Error("single observation")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if len(xs) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Variance()-wantVar) < 1e-4*(1+wantVar)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 1) // busy from t=0
	w.Set(4, 0) // idle from t=4
	w.Set(6, 1)
	if got := w.MeanAt(10); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("time average %v, want 0.8", got)
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 5)
	w.Set(10, 1)
	w.Reset(10) // warm-up discard
	if got := w.MeanAt(20); math.Abs(got-1) > 1e-12 {
		t.Errorf("post-reset average %v, want 1", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.MeanAt(5) != 0 {
		t.Error("empty time average not 0")
	}
}

func TestTimeWeightedResetBeforeSet(t *testing.T) {
	// Reset before the signal ever starts only clears the (already empty)
	// accumulators; the signal starts at the first Set, not at the Reset
	// time.
	var w TimeWeighted
	w.Reset(100)
	if got := w.MeanAt(200); got != 0 {
		t.Errorf("reset-before-set average %v, want 0", got)
	}
	w.Set(200, 3)
	if got := w.MeanAt(300); math.Abs(got-3) > 1e-12 {
		t.Errorf("post-start average %v, want 3", got)
	}
}

func TestTimeWeightedMeanBeforeSegmentStart(t *testing.T) {
	// MeanAt with t at or before the open segment's start must not
	// fabricate a negative duration — with nothing accumulated it is 0.
	var w TimeWeighted
	w.Set(50, 7)
	if got := w.MeanAt(10); got != 0 {
		t.Errorf("average before segment start %v, want 0", got)
	}
	if got := w.MeanAt(50); got != 0 {
		t.Errorf("zero-length average %v, want 0", got)
	}
	// After a warm-up Reset moved the clock past t, the same guard holds.
	w.Set(60, 7)
	w.Reset(80)
	if got := w.MeanAt(70); got != 0 {
		t.Errorf("average before reset point %v, want 0", got)
	}
	// And the accumulator still works forward from the reset.
	if got := w.MeanAt(90); math.Abs(got-7) > 1e-12 {
		t.Errorf("post-reset average %v, want 7", got)
	}
}

func TestTimeWeightedBackwardsClockIgnored(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 2)
	w.Set(10, 4) // area 20 over [0,10]
	w.Set(5, 6)  // clock ran backwards: open segment dropped, restart at 5
	if got := w.MeanAt(15); math.Abs(got-(20+60)/20.0) > 1e-12 {
		t.Errorf("average with backwards clock %v, want 4", got)
	}
}

func TestBatchMeans(t *testing.T) {
	series := make([]float64, 1000)
	rng := rand.New(rand.NewSource(4))
	for i := range series {
		series[i] = 5 + rng.NormFloat64()
	}
	bm, err := NewBatchMeans(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bm.Mean-5) > 0.2 {
		t.Errorf("mean %v, want ~5", bm.Mean)
	}
	if bm.HalfCI <= 0 || bm.HalfCI > 0.5 {
		t.Errorf("half CI %v", bm.HalfCI)
	}
	if bm.PerBatch != 100 {
		t.Errorf("per batch %d", bm.PerBatch)
	}
}

func TestBatchMeansErrors(t *testing.T) {
	if _, err := NewBatchMeans([]float64{1, 2, 3}, 1); err == nil {
		t.Error("want error for 1 batch")
	}
	if _, err := NewBatchMeans([]float64{1}, 2); err == nil {
		t.Error("want error for too few observations")
	}
}

func TestBatchMeansShortSeries(t *testing.T) {
	// With len(series) < 2*batches each batch degenerates to a single
	// observation and the remainder is discarded — valid, but the half-CI
	// then reflects raw observation noise, not batch-mean noise.
	series := []float64{1, 2, 3, 4, 5, 6, 7} // 7 obs, 4 batches -> per = 1, 3 dropped
	bm, err := NewBatchMeans(series, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bm.PerBatch != 1 || bm.Batches != 4 {
		t.Fatalf("per=%d batches=%d, want 1 and 4", bm.PerBatch, bm.Batches)
	}
	if !bm.Degenerate {
		t.Error("single-observation batches not flagged Degenerate")
	}
	if math.Abs(bm.Mean-2.5) > 1e-12 { // mean of the first 4 observations
		t.Errorf("mean %v, want 2.5", bm.Mean)
	}
	if bm.HalfCI <= 0 {
		t.Errorf("half CI %v, want > 0", bm.HalfCI)
	}
	// Exactly at the boundary: 8 obs in 4 batches of 2, nothing dropped.
	bm, err = NewBatchMeans([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bm.PerBatch != 2 || math.Abs(bm.Mean-4.5) > 1e-12 {
		t.Errorf("per=%d mean=%v, want 2 and 4.5", bm.PerBatch, bm.Mean)
	}
	if bm.Degenerate {
		t.Error("2-observation batches wrongly flagged Degenerate")
	}
}

func TestDiscreteChooserFrequencies(t *testing.T) {
	weights := []float64{1, 2, 3, 0, 4}
	c, err := NewDiscreteChooser(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(5)
	counts := make([]int, len(weights))
	const n = 500000
	for i := 0; i < n; i++ {
		counts[c.Choose(&rng)]++
	}
	if counts[3] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[3])
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.005 {
			t.Errorf("index %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestDiscreteChooserErrors(t *testing.T) {
	if _, err := NewDiscreteChooser(nil); err == nil {
		t.Error("want error for empty weights")
	}
	if _, err := NewDiscreteChooser([]float64{0, 0}); err == nil {
		t.Error("want error for all-zero weights")
	}
	if _, err := NewDiscreteChooser([]float64{1, -1}); err == nil {
		t.Error("want error for negative weight")
	}
	if _, err := NewDiscreteChooser([]float64{1, math.NaN()}); err == nil {
		t.Error("want error for NaN weight")
	}
}

func TestDiscreteChooserSingle(t *testing.T) {
	c, err := NewDiscreteChooser([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(1)
	for i := 0; i < 100; i++ {
		if c.Choose(&rng) != 0 {
			t.Fatal("single-weight chooser returned nonzero")
		}
	}
}
