package stats

import (
	"math"
	"testing"
)

// TestRNGGoldenStream pins the raw xoshiro256** output for a fixed seed.
// These values are load-bearing: every simulation result in the golden
// corpus and the conformance baselines depends on this exact stream, so a
// change here is a change to every replicated number in the repo.
func TestRNGGoldenStream(t *testing.T) {
	rng := NewRNG(42)
	var got [8]uint64
	for i := range got {
		got[i] = rng.Uint64()
	}
	fresh := NewRNG(42)
	for i := range got {
		if v := fresh.Uint64(); v != got[i] {
			t.Fatalf("stream not reproducible at %d: %d vs %d", i, v, got[i])
		}
	}
	// Distinct seeds must give distinct streams (SplitMix64 decorrelation),
	// including the all-zero raw seed.
	zero := NewRNG(0)
	if zero == (RNG{}) {
		t.Fatal("seed 0 left the state all-zero")
	}
	other := NewRNG(43)
	if a, b := zero.Uint64(), other.Uint64(); a == b {
		t.Fatalf("seeds 0 and 43 collide on first output: %d", a)
	}
	if a, b := NewRNG(42), NewRNG(43); a == b {
		t.Fatal("adjacent seeds produced identical state")
	}
}

// TestRNGSeedReset checks Seed rewinds to the exact same stream.
func TestRNGSeedReset(t *testing.T) {
	rng := NewRNG(7)
	var first [16]uint64
	for i := range first {
		first[i] = rng.Uint64()
	}
	rng.Seed(7)
	for i := range first {
		if v := rng.Uint64(); v != first[i] {
			t.Fatalf("post-Seed stream diverges at %d", i)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(9)
	var s Summary
	for i := 0; i < 200000; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		s.Add(v)
	}
	if math.Abs(s.Mean()-0.5) > 0.005 {
		t.Errorf("uniform mean %v, want ~0.5", s.Mean())
	}
	// Var of U(0,1) is 1/12.
	if math.Abs(s.Variance()-1.0/12) > 0.003 {
		t.Errorf("uniform variance %v, want ~%v", s.Variance(), 1.0/12)
	}
}

// TestRNGExpMoments is the statistical sanity gate on the ziggurat sampler:
// mean, variance, and a few tail quantiles of Exp(1).
func TestRNGExpMoments(t *testing.T) {
	rng := NewRNG(11)
	const n = 1_000_000
	var s Summary
	tail1, tail4, tail8 := 0, 0, 0 // P(X>1)=e^-1, P(X>4)=e^-4, P(X>8)=e^-8
	for i := 0; i < n; i++ {
		v := rng.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		s.Add(v)
		if v > 1 {
			tail1++
		}
		if v > 4 {
			tail4++
		}
		if v > 8 {
			tail8++
		}
	}
	if math.Abs(s.Mean()-1) > 0.005 {
		t.Errorf("exp mean %v, want ~1", s.Mean())
	}
	if math.Abs(s.Variance()-1) > 0.02 {
		t.Errorf("exp variance %v, want ~1", s.Variance())
	}
	check := func(name string, count int, p float64) {
		t.Helper()
		got := float64(count) / n
		// 5 sigma of the binomial proportion.
		slack := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > slack {
			t.Errorf("%s frequency %v, want %v ± %v", name, got, p, slack)
		}
	}
	check("P(X>1)", tail1, math.Exp(-1))
	check("P(X>4)", tail4, math.Exp(-4))
	check("P(X>8)", tail8, math.Exp(-8)) // exercises the beyond-zigR tail path
}

// TestZigguratTablesClose verifies the layer recurrence closes: the topmost
// layer edge must land at x≈0, f≈1, or the table constants are wrong.
func TestZigguratTablesClose(t *testing.T) {
	// One more recurrence step past the last computed layer must reach the
	// curve's peak: f(x_255) + v/x_255 = f(0) = 1.
	if top := zigF[zigLayers-1] + zigV/zigX[zigLayers-1]; math.Abs(top-1) > 1e-6 {
		t.Errorf("recurrence closes at %v, want 1", top)
	}
	if zigX[zigLayers] != 0 || zigF[zigLayers] != 1 {
		t.Errorf("apex entry (%v, %v), want (0, 1)", zigX[zigLayers], zigF[zigLayers])
	}
	for i := 1; i < zigLayers; i++ {
		if zigX[i] <= zigX[i+1] {
			t.Fatalf("layer edges not strictly decreasing at %d: %v <= %v", i, zigX[i], zigX[i+1])
		}
	}
}

func TestRNGIntn(t *testing.T) {
	rng := NewRNG(13)
	counts := make([]int, 7)
	const n = 700000
	for i := 0; i < n; i++ {
		v := rng.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-1.0/7) > 0.004 {
			t.Errorf("Intn(7) frequency[%d] = %v, want ~%v", i, got, 1.0/7)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	rng.Intn(0)
}

func TestSamplerMatchesDist(t *testing.T) {
	dists := []Dist{
		nil,
		Deterministic{V: 2.5},
		Exponential{M: 3},
		Exponential{M: 0},
		Uniform{Lo: 1, Hi: 4},
		Erlang{K: 4, M: 8},
		Erlang{K: 0, M: 8},
	}
	for _, d := range dists {
		s := MakeSampler(d)
		a, b := NewRNG(77), NewRNG(77)
		for i := 0; i < 1000; i++ {
			want := 0.0
			if d != nil {
				want = d.Sample(&a)
			}
			if got := s.Sample(&b); got != want {
				t.Fatalf("%v: sampler %v != dist %v at draw %d", d, got, want, i)
			}
		}
	}
}

// fallbackDist exercises the generic Sampler path.
type fallbackDist struct{}

func (fallbackDist) Sample(rng *RNG) float64 { return 1 + rng.Float64() }
func (fallbackDist) Mean() float64           { return 1.5 }
func (fallbackDist) String() string          { return "fallback" }

func TestSamplerFallback(t *testing.T) {
	s := MakeSampler(fallbackDist{})
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if got, want := s.Sample(&a), (fallbackDist{}).Sample(&b); got != want {
			t.Fatalf("fallback sampler %v != %v", got, want)
		}
	}
}
