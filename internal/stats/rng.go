package stats

import "math"

// RNG is the simulators' random source: xoshiro256** seeded through
// SplitMix64. It is a plain value type — embedding it in an engine struct
// costs no pointer chase, and every method call is direct (math/rand.Rand
// reaches its source through an interface on every variate, which the
// simulation hot loop pays per event).
//
// The generator passes BigCrush (Blackman & Vigna 2018); the SplitMix64
// seeding decorrelates the 256-bit state from the raw seed and guarantees a
// nonzero state for every seed, including 0. Independent replication streams
// are derived with sweep.DeriveSeed, not by jumping.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// NewRNG returns a generator seeded from seed.
func NewRNG(seed int64) RNG {
	var r RNG
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream of seed: the four state words are
// consecutive SplitMix64 outputs, which are never all zero.
func (r *RNG) Seed(seed int64) {
	z := uint64(seed)
	r.s0, z = splitmix64(z)
	r.s1, z = splitmix64(z)
	r.s2, z = splitmix64(z)
	r.s3, _ = splitmix64(z)
}

// splitmix64 advances the SplitMix64 state and returns (output, next state).
func splitmix64(z uint64) (uint64, uint64) {
	z += 0x9e3779b97f4a7c15
	x := z
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31), z
}

// Uint64 returns the next 64 uniform random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	x := s1 * 5
	res := ((x << 7) | (x >> 57)) * 9
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = (s3 << 45) | (s3 >> 19)
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
	return res
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform int in [0, n). It panics when n <= 0. The fixed-point
// multiply maps 64 random bits onto the range (Lemire's method without the
// rejection step: the bias is below n·2⁻⁶⁴, orders of magnitude under the
// simulators' statistical resolution).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo). Written out by
// hand (rather than math/bits.Mul64) keeps this file dependency-light; the
// compiler recognizes the pattern and emits a single MUL.
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Exponential ziggurat (Marsaglia & Tsang 2000, in the Doornik float-table
// formulation): 256 equal-area layers under e^-x. zigX[i] is the right edge
// of layer i (zigX[0] is the base layer's pseudo-width v/f(r), zigX[1] the
// tail boundary r), zigF[i] = e^-zigX[i]. The common case — one Uint64, one
// table compare, one multiply — needs no transcendental call; exp/log run
// only on the ~2% of draws that land on a layer boundary or the tail.
const (
	zigLayers = 256
	// zigR is the tail boundary and zigV the common layer area, the standard
	// constants for a 256-layer exponential ziggurat.
	zigR = 7.69711747013104972
	zigV = 0.0039496598225815571993
)

var (
	zigX [zigLayers + 1]float64
	zigF [zigLayers + 1]float64
)

func init() {
	zigX[0] = zigV * math.Exp(zigR) // base pseudo-width v/f(r)
	zigX[1] = zigR
	zigF[1] = math.Exp(-zigR)
	for i := 2; i < zigLayers; i++ {
		// Layer i-1 spans [f(x_{i-1}), f(x_i)] at width x_{i-1}; equal areas
		// give f(x_i) = f(x_{i-1}) + v/x_{i-1}.
		zigF[i] = zigF[i-1] + zigV/zigX[i-1]
		zigX[i] = -math.Log(zigF[i])
	}
	zigX[zigLayers] = 0
	zigF[zigLayers] = 1
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Uint64()
		i := u & (zigLayers - 1)
		x := float64(u>>11) * 0x1p-53 * zigX[i]
		if x < zigX[i+1] {
			return x
		}
		if i == 0 {
			// Tail beyond zigR: the exponential is memoryless, so the tail
			// sample is the boundary plus a fresh exponential.
			return zigR - math.Log(1-r.Float64())
		}
		if zigF[i]+r.Float64()*(zigF[i+1]-zigF[i]) < math.Exp(-x) {
			return x
		}
	}
}
