// Package stats provides the random-variate distributions and output
// statistics used by the simulators: exponential and deterministic service
// times (the paper's Section 8 studies both), streaming summaries, and
// batch-means confidence intervals for steady-state estimates.
package stats

import (
	"fmt"
	"math"
)

// Dist is a nonnegative random-variate distribution.
type Dist interface {
	// Sample draws one variate using the provided source.
	Sample(rng *RNG) float64
	// Mean returns the distribution mean.
	Mean() float64
	// String describes the distribution.
	String() string
}

// Exponential has the given mean (the paper's default service distribution).
type Exponential struct{ M float64 }

// Sample implements Dist.
func (e Exponential) Sample(rng *RNG) float64 {
	if e.M == 0 {
		return 0
	}
	return rng.ExpFloat64() * e.M
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.M }

func (e Exponential) String() string { return fmt.Sprintf("exp(%g)", e.M) }

// Deterministic always returns V (Section 8 tests deterministic memory
// service).
type Deterministic struct{ V float64 }

// Sample implements Dist.
func (d Deterministic) Sample(*RNG) float64 { return d.V }

// Mean implements Dist.
func (d Deterministic) Mean() float64 { return d.V }

func (d Deterministic) String() string { return fmt.Sprintf("det(%g)", d.V) }

// Uniform is uniform on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(rng *RNG) float64 {
	return u.Lo + (u.Hi-u.Lo)*rng.Float64()
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }

// Erlang is the sum of K exponential stages with total mean M (coefficient of
// variation 1/sqrt(K)); it interpolates between Exponential (K=1) and
// Deterministic (K→∞) for service-distribution sensitivity studies.
type Erlang struct {
	K int
	M float64
}

// Sample implements Dist.
func (e Erlang) Sample(rng *RNG) float64 {
	if e.K <= 0 || e.M == 0 {
		return 0
	}
	stage := e.M / float64(e.K)
	var sum float64
	for i := 0; i < e.K; i++ {
		sum += rng.ExpFloat64() * stage
	}
	return sum
}

// Mean implements Dist.
func (e Erlang) Mean() float64 { return e.M }

func (e Erlang) String() string { return fmt.Sprintf("erlang(%d,%g)", e.K, e.M) }

// DiscreteChooser draws an index from a fixed discrete distribution in O(1)
// per draw after O(n) setup (Walker's alias method). The simulators use it
// to pick remote destinations under the geometric pattern.
type DiscreteChooser struct {
	prob  []float64
	alias []int
}

// NewDiscreteChooser builds a chooser over weights (nonnegative, not all
// zero). Weights need not be normalized.
func NewDiscreteChooser(weights []float64) (*DiscreteChooser, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stats: no weights")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("stats: weight[%d] = %v", i, w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("stats: all weights are zero")
	}
	c := &DiscreteChooser{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		c.prob[s] = scaled[s]
		c.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range append(small, large...) {
		c.prob[i] = 1
		c.alias[i] = i
	}
	return c, nil
}

// Choose draws one index.
func (c *DiscreteChooser) Choose(rng *RNG) int {
	i := rng.Intn(len(c.prob))
	if rng.Float64() < c.prob[i] {
		return i
	}
	return c.alias[i]
}
