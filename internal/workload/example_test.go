package workload_test

import (
	"fmt"

	"lattol/internal/mms"
	"lattol/internal/workload"
)

// Choose a thread partitioning for a do-all loop: 40 iterations of 3 cycles
// per processor on the paper's default machine.
func ExampleDoAll_Best() {
	loop := workload.DoAll{
		Iterations:         40,
		CyclesPerIteration: 3,
		Machine:            mms.DefaultConfig(),
	}
	best, err := loop.Best(workload.MinThreads)
	if err != nil {
		panic(err)
	}
	fmt.Printf("coalesce %d iterations per thread\n", best.Grouping)
	fmt.Printf("n_t = %d threads of R = %g cycles\n", best.Threads, best.Runlength)
	fmt.Printf("U_p = %.3f, tol_network = %.3f\n", best.Metrics.Up, best.TolNetwork)
	// Output:
	// coalesce 10 iterations per thread
	// n_t = 4 threads of R = 30 cycles
	// U_p = 0.938, tol_network = 0.966
}
