// Package workload maps the paper's program model — a do-all loop whose
// iterations become threads — onto model configurations, and searches for
// the best thread partitioning. Section 5 of the paper evaluates exactly
// this compiler decision: given a fixed amount of exposed computation per
// processor (n_t·R = const), how many threads should the loop be split into?
package workload

import (
	"fmt"
	"math"

	"lattol/internal/mms"
	"lattol/internal/tolerance"
)

// DoAll describes one processor's share of a do-all loop.
type DoAll struct {
	// Iterations is the number of loop iterations assigned to each
	// processor.
	Iterations int
	// CyclesPerIteration is the computation per iteration, in processor
	// cycles; grouping g iterations into one thread gives runlength
	// R = g·CyclesPerIteration.
	CyclesPerIteration float64
	// Machine carries the architecture and locality parameters; its Threads
	// and Runlength fields are overwritten by each candidate partitioning.
	Machine mms.Config
}

// Validate reports the first invalid field.
func (d DoAll) Validate() error {
	if d.Iterations < 1 {
		return fmt.Errorf("workload: Iterations = %d, want >= 1", d.Iterations)
	}
	if d.CyclesPerIteration <= 0 || math.IsNaN(d.CyclesPerIteration) || math.IsInf(d.CyclesPerIteration, 0) {
		return fmt.Errorf("workload: CyclesPerIteration = %v, want > 0", d.CyclesPerIteration)
	}
	return nil
}

// Partition is one candidate split of the loop into threads.
type Partition struct {
	// Grouping is the number of iterations coalesced into each thread.
	Grouping int
	// Threads and Runlength are the resulting workload parameters.
	Threads   int
	Runlength float64
	// Metrics is the solved performance of this partitioning.
	Metrics mms.Metrics
	// TolNetwork and TolMemory are the tolerance indices.
	TolNetwork float64
	TolMemory  float64
}

// Config returns the model configuration of this partitioning given the
// machine description.
func (d DoAll) config(grouping int) mms.Config {
	cfg := d.Machine
	cfg.Threads = (d.Iterations + grouping - 1) / grouping
	cfg.Runlength = float64(grouping) * d.CyclesPerIteration
	return cfg
}

// Partitions evaluates every grouping that divides the iteration count
// evenly (plus the fully-coalesced single thread), in increasing grouping
// order.
func (d DoAll) Partitions() ([]Partition, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var out []Partition
	for g := 1; g <= d.Iterations; g++ {
		if d.Iterations%g != 0 {
			continue
		}
		cfg := d.config(g)
		met, err := mms.Solve(cfg)
		if err != nil {
			return nil, err
		}
		netIdx, err := tolerance.NetworkIndex(cfg)
		if err != nil {
			return nil, err
		}
		memIdx, err := tolerance.MemoryIndex(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Partition{
			Grouping:   g,
			Threads:    cfg.Threads,
			Runlength:  cfg.Runlength,
			Metrics:    met,
			TolNetwork: netIdx.Tol,
			TolMemory:  memIdx.Tol,
		})
	}
	return out, nil
}

// Objective ranks partitionings.
type Objective int

const (
	// MaxUtilization picks the partitioning with the highest U_p.
	MaxUtilization Objective = iota
	// MaxNetworkTolerance picks the highest tol_network.
	MaxNetworkTolerance
	// MinThreads picks the fewest threads that stay within 2% of the best
	// U_p — the paper's recommendation (coalesce once tolerance saturates;
	// fewer threads mean less state and smaller memory footprint).
	MinThreads
)

func (o Objective) String() string {
	switch o {
	case MaxUtilization:
		return "max-utilization"
	case MaxNetworkTolerance:
		return "max-network-tolerance"
	case MinThreads:
		return "min-threads"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Best evaluates all partitionings and returns the winner under the
// objective.
func (d DoAll) Best(obj Objective) (Partition, error) {
	parts, err := d.Partitions()
	if err != nil {
		return Partition{}, err
	}
	switch obj {
	case MaxUtilization:
		best := parts[0]
		for _, p := range parts[1:] {
			if p.Metrics.Up > best.Metrics.Up {
				best = p
			}
		}
		return best, nil
	case MaxNetworkTolerance:
		best := parts[0]
		for _, p := range parts[1:] {
			if p.TolNetwork > best.TolNetwork {
				best = p
			}
		}
		return best, nil
	case MinThreads:
		bestUp := 0.0
		for _, p := range parts {
			if p.Metrics.Up > bestUp {
				bestUp = p.Metrics.Up
			}
		}
		// parts are in increasing grouping order = decreasing thread count;
		// take the last (fewest threads) within 2% of the best.
		var pick *Partition
		for i := range parts {
			if parts[i].Metrics.Up >= 0.98*bestUp {
				pick = &parts[i]
			}
		}
		return *pick, nil
	default:
		return Partition{}, fmt.Errorf("workload: unknown objective %d", int(obj))
	}
}
