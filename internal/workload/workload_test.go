package workload

import (
	"math"
	"testing"

	"lattol/internal/mms"
)

func loop() DoAll {
	return DoAll{
		Iterations:         40,
		CyclesPerIteration: 2,
		Machine:            mms.DefaultConfig(),
	}
}

func TestValidate(t *testing.T) {
	d := loop()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.Iterations = 0
	if err := d.Validate(); err == nil {
		t.Error("want error for zero iterations")
	}
	d = loop()
	d.CyclesPerIteration = 0
	if err := d.Validate(); err == nil {
		t.Error("want error for zero cycle count")
	}
	d.CyclesPerIteration = math.NaN()
	if err := d.Validate(); err == nil {
		t.Error("want error for NaN cycle count")
	}
}

func TestPartitionsEnumerateDivisors(t *testing.T) {
	parts, err := loop().Partitions()
	if err != nil {
		t.Fatal(err)
	}
	// Divisors of 40: 1,2,4,5,8,10,20,40.
	if len(parts) != 8 {
		t.Fatalf("%d partitions, want 8", len(parts))
	}
	for _, p := range parts {
		if p.Threads*p.Grouping != 40 {
			t.Errorf("grouping %d gives %d threads", p.Grouping, p.Threads)
		}
		if p.Runlength != float64(p.Grouping)*2 {
			t.Errorf("grouping %d: R = %v", p.Grouping, p.Runlength)
		}
		if p.Metrics.Up <= 0 || p.Metrics.Up > 1 {
			t.Errorf("grouping %d: U_p = %v", p.Grouping, p.Metrics.Up)
		}
	}
	// Work exposure is constant: n_t·R = Iterations·CyclesPerIteration.
	for _, p := range parts {
		if w := float64(p.Threads) * p.Runlength; math.Abs(w-80) > 1e-12 {
			t.Errorf("grouping %d: n_t·R = %v, want 80", p.Grouping, w)
		}
	}
}

func TestBestObjectives(t *testing.T) {
	d := loop()
	maxUp, err := d.Best(MaxUtilization)
	if err != nil {
		t.Fatal(err)
	}
	maxTol, err := d.Best(MaxNetworkTolerance)
	if err != nil {
		t.Fatal(err)
	}
	minThreads, err := d.Best(MinThreads)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p.Metrics.Up > maxUp.Metrics.Up+1e-12 {
			t.Errorf("MaxUtilization missed a better partition: %v > %v", p.Metrics.Up, maxUp.Metrics.Up)
		}
		if p.TolNetwork > maxTol.TolNetwork+1e-12 {
			t.Errorf("MaxNetworkTolerance missed a better partition")
		}
	}
	// MinThreads stays within 2% of the best and never uses more threads
	// than the utilization winner.
	if minThreads.Metrics.Up < 0.98*maxUp.Metrics.Up {
		t.Errorf("MinThreads U_p %v too far below best %v", minThreads.Metrics.Up, maxUp.Metrics.Up)
	}
	if minThreads.Threads > maxUp.Threads {
		t.Errorf("MinThreads picked more threads (%d) than MaxUtilization (%d)", minThreads.Threads, maxUp.Threads)
	}
}

func TestBestRejectsUnknownObjective(t *testing.T) {
	if _, err := loop().Best(Objective(9)); err == nil {
		t.Error("want error")
	}
}

func TestPartitionsPropagateConfigErrors(t *testing.T) {
	d := loop()
	d.Machine.K = -1
	if _, err := d.Partitions(); err == nil {
		t.Error("want error for invalid machine config")
	}
}

func TestObjectiveStrings(t *testing.T) {
	if MaxUtilization.String() != "max-utilization" ||
		MaxNetworkTolerance.String() != "max-network-tolerance" ||
		MinThreads.String() != "min-threads" ||
		Objective(9).String() != "Objective(9)" {
		t.Error("objective strings")
	}
}

func TestPaperGuidanceHolds(t *testing.T) {
	// With remote-heavy traffic the recommended partitioning keeps at least
	// 2 threads but far fewer than the iteration count (coalesce, don't
	// shred).
	d := loop()
	d.Machine.PRemote = 0.4
	best, err := d.Best(MinThreads)
	if err != nil {
		t.Fatal(err)
	}
	if best.Threads < 2 {
		t.Errorf("recommended %d threads; full coalescing loses overlap", best.Threads)
	}
	if best.Threads > 10 {
		t.Errorf("recommended %d threads; expected coalescing well below 40", best.Threads)
	}
}
