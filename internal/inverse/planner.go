package inverse

import (
	"fmt"
	"math"

	"lattol/internal/bottleneck"
	"lattol/internal/eval"
)

// planner is the resumable decision core of a plan: it emits the next probe
// knob value and folds each observation back in, so the scalar Solve loop and
// the lockstep Frontier rounds share every bracketing, seeding, and
// convergence decision. One planner is one plan; it never evaluates anything
// itself.
//
// Two search modes share the refinement machinery:
//
//   - Directed (the metric's monotone direction in the knob is proven): probe
//     the least-feasible endpoint first — if it satisfies the target the whole
//     interval does and the plan ends in one probe — then march toward the
//     other end through the closed-form seeds and a geometric ladder until
//     the first feasible point brackets the answer. Every probe stays near
//     the previous one, so warm-started evaluators pay a few iterations per
//     probe.
//   - Undirected (direction unproven): probe both endpoints, infer the
//     direction from them, and bisect the straddling bracket.
type planner struct {
	spec   Spec
	lo, hi float64 // resolved search interval
	want   int     // +1: need metric >= target, -1: <=
	dir    int     // monotone direction of metric in knob (0 until known)

	phase phase
	pend  float64   // knob value of the outstanding probe
	seeds []float64 // closed-form interior seeds, unprobed

	// Directed-mode march: e0 is the least-feasible endpoint, e1 the most
	// feasible one, sgn the direction of travel from e0 to e1.
	e0, e1, sgn  float64
	e0Val, e1Val float64

	// Undirected-mode endpoint observations.
	loVal, hiVal   float64
	loMet, hiMet   eval.Metrics
	loFeas, hiFeas bool

	// Refinement bracket: a is the infeasible end (ga < 0), b the feasible
	// end (gb >= 0), where g = want·(value - target). feasVal/feasMet are
	// the observation at b. lastMoved drives the Illinois halving.
	a, b      float64
	ga, gb    float64
	feasVal   float64
	feasMet   eval.Metrics
	lastMoved int

	probes, solves int
	trace          []Probe

	finished bool
	res      Result
	err      error
}

type phase int

const (
	phaseNear phase = iota // directed: least-feasible endpoint
	phaseExpand            // directed: seeds + geometric ladder toward e1
	phaseLo                // undirected: low endpoint
	phaseHi                // undirected: high endpoint
	phaseSeed              // undirected: seeds inside the bracket
	phaseRefine            // both: false position / bisection
)

// newPlanner validates the spec and primes the first probe.
func newPlanner(spec Spec) (*planner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &planner{spec: spec, want: +1, dir: direction(spec.Metric, spec.Knob)}
	if spec.Relation == AtMost {
		p.want = -1
	}
	p.lo, p.hi = spec.bracket()
	p.seeds = seedPoints(spec)
	if p.dir != 0 {
		// Feasibility is monotone along the knob: it is lowest at lo when it
		// grows with the knob (dir·want > 0), at hi otherwise.
		if p.dir*p.want > 0 {
			p.e0, p.e1, p.sgn = p.lo, p.hi, +1
		} else {
			p.e0, p.e1, p.sgn = p.hi, p.lo, -1
		}
		sortTowards(p.seeds, p.sgn)
		p.phase = phaseNear
		p.pend = p.e0
	} else {
		p.phase = phaseLo
		p.pend = p.lo
	}
	return p, nil
}

// sortTowards orders seeds in the direction of travel (ascending when sgn is
// +1, descending otherwise); the lists are tiny, insertion sort suffices.
func sortTowards(xs []float64, sgn float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && (xs[j]-xs[j-1])*sgn < 0; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// config is the probe configuration the planner is waiting on.
func (p *planner) config() eval.Config { return p.spec.configAt(p.pend) }

// opts are the evaluation options every probe uses.
func (p *planner) opts() eval.Options { return p.spec.Metric.Options() }

// done reports whether the plan has concluded (successfully or not).
func (p *planner) done() bool { return p.finished }

// finish returns the plan's outcome; valid once done.
func (p *planner) finish() (Result, error) {
	if !p.finished {
		panic("inverse: finish before done")
	}
	return p.res, p.err
}

// observe folds the outstanding probe's outcome in and advances to the next
// probe or to completion.
func (p *planner) observe(m eval.Metrics, err error) {
	if p.finished {
		panic("inverse: observe after done")
	}
	if err != nil {
		p.fail(fmt.Errorf("inverse: probing %s = %v: %w", p.spec.Knob, p.pend, err))
		return
	}
	v := p.spec.Metric.Read(m)
	g := float64(p.want) * (v - p.spec.Target)
	p.probes++
	p.solves += m.Solves
	p.trace = append(p.trace, Probe{Knob: p.pend, Value: v, Feasible: g >= 0, Solves: m.Solves})
	switch p.phase {
	case phaseNear:
		p.e0Val = v
		if g >= 0 {
			// The least feasible point satisfies the target: the whole
			// interval does, and e0 is also the objective's extremum.
			bind := AtLo
			if p.e0 == p.hi {
				bind = AtHi
			}
			p.conclude(p.e0, v, m, p.objective(), bind)
			return
		}
		p.a, p.ga = p.e0, g
		p.phase = phaseExpand
		p.advanceExpand()
	case phaseExpand:
		if g >= 0 {
			p.b, p.gb, p.feasVal, p.feasMet = p.pend, g, v, m
			p.phase = phaseRefine
			p.advance()
			return
		}
		p.a, p.ga = p.pend, g
		if p.pend == p.e1 {
			p.e1Val = v
			p.failInfeasible()
			return
		}
		p.advanceExpand()
	case phaseLo:
		p.loVal, p.loMet, p.loFeas = v, m, g >= 0
		p.phase = phaseHi
		p.issue(p.hi)
	case phaseHi:
		p.hiVal, p.hiMet, p.hiFeas = v, m, g >= 0
		p.afterEndpoints()
	case phaseSeed, phaseRefine:
		p.update(p.pend, v, g, m)
	}
}

// issue stakes the next probe, enforcing the budget.
func (p *planner) issue(knob float64) {
	if p.probes >= p.spec.maxProbes() {
		p.fail(fmt.Errorf("inverse: probe budget %d exhausted searching %s in [%v, %v]; raise MaxProbes or loosen KnobTol",
			p.spec.maxProbes(), p.spec.Knob, p.lo, p.hi))
		return
	}
	p.pend = knob
}

// advanceExpand picks the next march point toward e1: the nearest unprobed
// seed still ahead of the infeasible frontier, then a geometric ladder.
func (p *planner) advanceExpand() {
	for len(p.seeds) > 0 {
		s := p.seeds[0]
		p.seeds = p.seeds[1:]
		if p.spec.Knob.Integer() {
			s = math.Round(s)
		}
		if (s-p.a)*p.sgn > 0 && (p.e1-s)*p.sgn > 0 {
			p.issue(s)
			return
		}
	}
	p.issue(p.ladderNext())
}

// ladderNext doubles (or halves) the infeasible frontier toward e1, snapping
// to e1 once the step would pass or crowd it. A zero frontier falls back to
// bisection toward e1.
func (p *planner) ladderNext() float64 {
	x := p.a * 2
	if p.sgn < 0 {
		x = p.a / 2
	}
	if p.a == 0 {
		x = (p.a + p.e1) / 2
	}
	if p.spec.Knob.Integer() {
		x = math.Round(x)
		if x == p.a {
			x = p.a + p.sgn
		}
	} else if math.Abs(x-p.e1) <= p.tolAbs() || math.Abs(p.a-p.e1) <= 2*p.tolAbs() {
		x = p.e1
	}
	if (x-p.e1)*p.sgn >= 0 {
		x = p.e1
	}
	return x
}

// tolAbs is the absolute convergence width of the bracket.
func (p *planner) tolAbs() float64 {
	return p.spec.knobTol() * math.Max(1, math.Max(math.Abs(p.lo), math.Abs(p.hi)))
}

// afterEndpoints classifies the interval once both ends are observed
// (undirected mode): fully feasible (constraint not binding), fully
// infeasible (no answer), or straddling (refine the bracket).
func (p *planner) afterEndpoints() {
	if p.dir == 0 {
		switch {
		case p.hiVal > p.loVal:
			p.dir = +1
		case p.hiVal < p.loVal:
			p.dir = -1
		}
	}
	switch {
	case p.loFeas && p.hiFeas:
		if p.objective() == Maximize {
			p.conclude(p.hi, p.hiVal, p.hiMet, Maximize, AtHi)
		} else {
			p.conclude(p.lo, p.loVal, p.loMet, Minimize, AtLo)
		}
	case !p.loFeas && !p.hiFeas:
		p.e0Val, p.e1Val = p.loVal, p.hiVal
		p.e0, p.e1 = p.lo, p.hi
		p.failInfeasible()
	default:
		gLo := float64(p.want) * (p.loVal - p.spec.Target)
		gHi := float64(p.want) * (p.hiVal - p.spec.Target)
		if p.loFeas {
			p.b, p.gb, p.feasVal, p.feasMet = p.lo, gLo, p.loVal, p.loMet
			p.a, p.ga = p.hi, gHi
		} else {
			p.b, p.gb, p.feasVal, p.feasMet = p.hi, gHi, p.hiVal, p.hiMet
			p.a, p.ga = p.lo, gLo
		}
		p.phase = phaseSeed
		p.advance()
	}
}

// update narrows the bracket with an interior observation. A feasible probe
// replaces the feasible end, an infeasible one the infeasible end; either way
// the bracket shrinks and keeps straddling the target.
func (p *planner) update(x, v, g float64, m eval.Metrics) {
	if g >= 0 {
		p.b, p.gb, p.feasVal, p.feasMet = x, g, v, m
		if p.lastMoved == +1 {
			p.ga *= 0.5 // Illinois: stop the infeasible end from stagnating
		}
		p.lastMoved = +1
	} else {
		p.a, p.ga = x, g
		if p.lastMoved == -1 {
			p.gb *= 0.5
		}
		p.lastMoved = -1
	}
	p.advance()
}

// advance picks the next interior probe: first any closed-form seed still
// strictly inside the bracket, then false-position/bisection until the
// bracket is converged.
func (p *planner) advance() {
	if p.converged() {
		p.conclude(p.b, p.feasVal, p.feasMet, p.objective(), Interior)
		return
	}
	inLo, inHi := math.Min(p.a, p.b), math.Max(p.a, p.b)
	for p.phase == phaseSeed {
		if len(p.seeds) == 0 {
			p.phase = phaseRefine
			break
		}
		s := p.seeds[0]
		p.seeds = p.seeds[1:]
		if p.spec.Knob.Integer() {
			s = math.Round(s)
		}
		if s > inLo && s < inHi {
			p.issue(s)
			return
		}
	}
	p.phase = phaseRefine
	p.issue(p.nextProbe())
}

// converged reports whether the bracket is tight enough to answer.
func (p *planner) converged() bool {
	w := math.Abs(p.b - p.a)
	if p.spec.Knob.Integer() {
		return w <= 1
	}
	return w <= p.tolAbs()
}

// nextProbe is the Illinois false-position point, falling back to bisection
// whenever the secant step leaves the open bracket.
func (p *planner) nextProbe() float64 {
	if p.spec.Knob.Integer() {
		return math.Round((p.a + p.b) / 2)
	}
	inLo, inHi := math.Min(p.a, p.b), math.Max(p.a, p.b)
	x := (p.a*p.gb - p.b*p.ga) / (p.gb - p.ga)
	if !(x > inLo && x < inHi) || math.IsNaN(x) {
		x = (p.a + p.b) / 2
	}
	return x
}

// objective derives the optimization sense from the (known or inferred)
// monotone direction: feasibility growing with the knob means the boundary
// is a minimum.
func (p *planner) objective() Objective {
	if p.dir*p.want < 0 {
		return Maximize
	}
	return Minimize
}

// conclude finalizes a successful plan.
func (p *planner) conclude(knob, val float64, m eval.Metrics, obj Objective, bind Binding) {
	lo, hi := math.Min(p.a, p.b), math.Max(p.a, p.b)
	if bind != Interior {
		lo, hi = p.lo, p.hi
	}
	p.res = Result{
		Knob: knob, Metrics: m, Achieved: val,
		Objective: obj, Binding: bind,
		Lo: lo, Hi: hi,
		Probes: p.probes, Solves: p.solves,
		Trace: p.trace,
	}
	p.finished = true
}

// failInfeasible finalizes with the endpoint diagnosis. e0/e1 and their
// values are set by both search modes before calling.
func (p *planner) failInfeasible() {
	loVal, hiVal := p.e0Val, p.e1Val
	if p.e0 > p.e1 {
		loVal, hiVal = p.e1Val, p.e0Val
	}
	p.fail(&InfeasibleError{
		Knob: p.spec.Knob.String(), Metric: p.spec.Metric.String(),
		Relation: p.spec.Relation, Target: p.spec.Target,
		Lo: p.lo, Hi: p.hi, LoValue: loVal, HiValue: hiVal,
	})
}

// fail finalizes an unsuccessful plan.
func (p *planner) fail(err error) {
	p.err = err
	p.finished = true
}

// seedPoints derives closed-form first guesses for the knob from the Eq. 4/5
// bottleneck analysis, so bracketing starts near the answer instead of
// marching blind:
//
//   - nt: the latency-hiding thread count — one no-contention cycle
//     (R + C + L + p·round-trip) divided by the busy time per cycle — and
//     its double, bracketing the knee from both sides.
//   - premote: the critical and saturation values of Eq. 5, the knees of
//     U_p(p_remote).
//   - r: the runlength at which the network round trip is fully hidden
//     (critical condition of Eq. 5 solved for R).
//
// Seeds are best-effort: out-of-bracket or duplicate values are skipped at
// plan time, and an analysis failure just means no seeds.
func seedPoints(spec Spec) []float64 {
	cfg := spec.Base
	if spec.Knob.String() == "premote" && cfg.PRemote == 0 {
		cfg.PRemote = 0.5 // open the p>0 gates of the analysis
	}
	an, err := bottleneck.Analyze(cfg)
	if err != nil {
		return nil
	}
	busy := cfg.Runlength + cfg.ContextSwitch
	switch spec.Knob.String() {
	case "nt":
		cycle := busy + cfg.MemoryTime + cfg.PRemote*an.RoundTripSwitchTime
		n := math.Ceil(cycle / busy)
		return []float64{n, 2 * n}
	case "premote":
		return []float64{an.CriticalPRemote, an.SaturationPRemote}
	case "r":
		return []float64{cfg.PRemote * an.RoundTripSwitchTime}
	}
	return nil
}
