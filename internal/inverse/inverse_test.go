package inverse

import (
	"context"
	"errors"
	"math"
	"testing"

	"lattol/internal/eval"
	"lattol/internal/mms"
	"lattol/internal/validate"
)

func defaultSpec() Spec {
	knob, err := mms.ParseParam("nt")
	if err != nil {
		panic(err)
	}
	metric, err := ParseMetric("tol_network")
	if err != nil {
		panic(err)
	}
	return Spec{Base: mms.DefaultConfig(), Knob: knob, Metric: metric, Target: 0.95, Relation: AtLeast}
}

func mustParam(t *testing.T, name string) mms.Param {
	t.Helper()
	p, err := mms.ParseParam(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustMetric(t *testing.T, name string) Metric {
	t.Helper()
	m, err := ParseMetric(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// forward evaluates the spec's metric at one knob value, independently of
// the planner.
func forward(t *testing.T, spec Spec, knob float64) float64 {
	t.Helper()
	m, err := eval.NewSolver().Evaluate(context.Background(), spec.configAt(knob), spec.Metric.Options())
	if err != nil {
		t.Fatalf("forward solve at %s=%v: %v", spec.Knob, knob, err)
	}
	return spec.Metric.Read(m)
}

// TestSolveThreadsForTolerance is the headline plan: the minimum thread
// count reaching network tolerance 0.95 on the default system. The answer is
// verified against forward solves on both sides of the boundary.
func TestSolveThreadsForTolerance(t *testing.T) {
	spec := defaultSpec()
	res, err := Solve(context.Background(), eval.NewSolver(), spec)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Binding != Interior {
		t.Fatalf("Binding = %v, want interior", res.Binding)
	}
	if res.Objective != Minimize {
		t.Errorf("Objective = %v, want min (tolerance grows with threads)", res.Objective)
	}
	nt := res.Knob
	if nt != math.Trunc(nt) || nt < 2 {
		t.Fatalf("Knob = %v, want an integer >= 2", nt)
	}
	if at := forward(t, spec, nt); at < spec.Target {
		t.Errorf("metric(%v) = %v, want >= %v", nt, at, spec.Target)
	}
	if below := forward(t, spec, nt-1); below >= spec.Target {
		t.Errorf("metric(%v) = %v, want < %v (answer not minimal)", nt-1, below, spec.Target)
	}
	if fwd := forward(t, spec, nt); math.Abs(res.Achieved-fwd) > 1e-9*math.Abs(fwd) {
		t.Errorf("Achieved = %v, forward = %v", res.Achieved, fwd)
	}
	if res.Probes != len(res.Trace) || res.Probes < 2 {
		t.Errorf("Probes = %d, len(Trace) = %d", res.Probes, len(res.Trace))
	}
	if res.Hi-res.Lo != 1 {
		t.Errorf("final bracket [%v, %v], want width 1", res.Lo, res.Hi)
	}
	t.Logf("answer nt=%v after %d probes (%d solves)", nt, res.Probes, res.Solves)
}

// TestSolveCriticalPRemote finds the maximum p_remote keeping U_p at 0.8 —
// the paper's critical-p_remote question — and cross-checks the continuous
// bracket against forward solves just outside it.
func TestSolveCriticalPRemote(t *testing.T) {
	spec := defaultSpec()
	spec.Knob = mustParam(t, "premote")
	spec.Metric = mustMetric(t, "u_p")
	spec.Target = 0.8
	res, err := Solve(context.Background(), eval.NewSolver(), spec)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Binding != Interior {
		t.Fatalf("Binding = %v, want interior", res.Binding)
	}
	if res.Objective != Maximize {
		t.Errorf("Objective = %v, want max (U_p falls with p_remote)", res.Objective)
	}
	if res.Knob <= 0 || res.Knob >= 1 {
		t.Fatalf("Knob = %v, want in (0,1)", res.Knob)
	}
	if at := forward(t, spec, res.Knob); at < spec.Target {
		t.Errorf("u_p(%v) = %v, want >= %v", res.Knob, at, spec.Target)
	}
	eps := 1e-4
	if beyond := forward(t, spec, res.Knob+eps); beyond >= spec.Target {
		t.Errorf("u_p(%v) = %v, want < %v (answer not maximal)", res.Knob+eps, beyond, spec.Target)
	}
	if w := res.Hi - res.Lo; w > 2e-6 {
		t.Errorf("final bracket width %v, want <= KnobTol scale", w)
	}
}

// TestSolveAtMost exercises the AtMost relation with an inferred (unproven)
// direction: the maximum thread count keeping observed network latency at
// most a bound.
func TestSolveAtMost(t *testing.T) {
	spec := defaultSpec()
	spec.Metric = mustMetric(t, "s_obs")
	spec.Relation = AtMost
	base := forward(t, spec, 1)
	limit := forward(t, spec, 64)
	if base >= limit {
		t.Skipf("s_obs not increasing on this range (%v -> %v)", base, limit)
	}
	spec.Target = (base + limit) / 2
	res, err := Solve(context.Background(), eval.NewSolver(), spec)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Objective != Maximize {
		t.Errorf("Objective = %v, want max (s_obs grows with threads, relation <=)", res.Objective)
	}
	if at := forward(t, spec, res.Knob); at > spec.Target {
		t.Errorf("s_obs(%v) = %v, want <= %v", res.Knob, at, spec.Target)
	}
	if beyond := forward(t, spec, res.Knob+1); beyond <= spec.Target {
		t.Errorf("s_obs(%v) = %v, want > %v (answer not maximal)", res.Knob+1, beyond, spec.Target)
	}
}

// TestSolveNotBinding verifies the degenerate cases where the whole interval
// satisfies the target: the answer is the objective's endpoint.
func TestSolveNotBinding(t *testing.T) {
	spec := defaultSpec()
	spec.Target = 0 // tolerance >= 0 holds everywhere
	res, err := Solve(context.Background(), eval.NewSolver(), spec)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Binding != AtLo || res.Knob != 1 {
		t.Errorf("Binding = %v, Knob = %v; want at-lo at 1", res.Binding, res.Knob)
	}
	if res.Probes != 1 {
		t.Errorf("Probes = %d, want 1 (the proven direction makes one endpoint decisive)", res.Probes)
	}

	// Maximize side: u_p >= 0 along premote holds everywhere; the max
	// feasible premote is the high endpoint.
	spec = defaultSpec()
	spec.Knob = mustParam(t, "premote")
	spec.Metric = mustMetric(t, "u_p")
	spec.Target = 0
	res, err = Solve(context.Background(), eval.NewSolver(), spec)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Binding != AtHi || res.Knob != 1 {
		t.Errorf("Binding = %v, Knob = %v; want at-hi at 1", res.Binding, res.Knob)
	}
}

// TestSolveInfeasible verifies the infeasible diagnosis: network tolerance
// cannot exceed 1.
func TestSolveInfeasible(t *testing.T) {
	spec := defaultSpec()
	spec.Target = 1.01
	_, err := Solve(context.Background(), eval.NewSolver(), spec)
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want *InfeasibleError", err)
	}
	if inf.Knob != "nt" || inf.Metric != "tol_network" || inf.Target != 1.01 {
		t.Errorf("error fields: %+v", inf)
	}
}

// TestSolveProbeBudget verifies the budget is a hard stop.
func TestSolveProbeBudget(t *testing.T) {
	spec := defaultSpec()
	spec.MaxProbes = 3
	spec.Lo, spec.Hi = 1, 16384
	if _, err := Solve(context.Background(), eval.NewSolver(), spec); err == nil {
		t.Fatal("Solve with 3-probe budget succeeded")
	}
}

// TestSolveSeedEfficiency pins the continuation claim deterministically: the
// seeded, warm-started headline plan answers in few probes, and its total
// fixed-point iterations stay within 5x a cold tolerance solve's.
func TestSolveSeedEfficiency(t *testing.T) {
	spec := defaultSpec()
	ev := eval.NewSolver()
	res, err := Solve(context.Background(), ev, spec)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Probes > 12 {
		t.Errorf("Probes = %d, want <= 12 for the seeded default plan", res.Probes)
	}
	cold, err := eval.NewSolver().Evaluate(context.Background(), spec.configAt(float64(spec.Base.Threads)), spec.Metric.Options())
	if err != nil {
		t.Fatal(err)
	}
	// Iterations of the real-system solves along the plan, from a replay on
	// a fresh warm-started evaluator (the trace does not carry iterations).
	var planIters int
	replay := eval.NewSolver()
	for _, pr := range res.Trace {
		m, err := replay.Evaluate(context.Background(), spec.configAt(pr.Knob), spec.Metric.Options())
		if err != nil {
			t.Fatal(err)
		}
		planIters += m.Iterations
	}
	if cold.Iterations > 0 && planIters > 10*cold.Iterations {
		t.Errorf("plan iterations %d exceed 10x one cold solve's (%d)", planIters, cold.Iterations)
	}
	t.Logf("plan: %d probes, %d replay iterations; cold solve: %d iterations", res.Probes, planIters, cold.Iterations)
}

// TestSolveValidation verifies the field-named errors.
func TestSolveValidation(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Spec)
		field string
	}{
		{"missing-knob", func(s *Spec) { s.Knob = mms.Param{} }, "Knob"},
		{"missing-metric", func(s *Spec) { s.Metric = Metric{} }, "Metric"},
		{"nan-target", func(s *Spec) { s.Target = math.NaN() }, "Target"},
		{"bad-relation", func(s *Spec) { s.Relation = Relation(7) }, "Relation"},
		{"inverted-bracket", func(s *Spec) { s.Lo, s.Hi = 8, 2 }, "Lo"},
		{"out-of-domain", func(s *Spec) { s.Lo, s.Hi = 1, 1e9 }, "Lo"},
		{"neg-tol", func(s *Spec) { s.KnobTol = -1 }, "KnobTol"},
		{"neg-budget", func(s *Spec) { s.MaxProbes = -1 }, "MaxProbes"},
		{"premote-k1", func(s *Spec) {
			s.Base.K = 1
			s.Base.PRemote = 0
			s.Knob = mustParamPanic("premote")
		}, "Knob"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := defaultSpec()
			tc.mut(&spec)
			_, err := Solve(context.Background(), eval.NewSolver(), spec)
			if f := validate.Field(err); f != tc.field {
				t.Errorf("err = %v, field %q, want field %q", err, f, tc.field)
			}
		})
	}
}

func mustParamPanic(name string) mms.Param {
	p, err := mms.ParseParam(name)
	if err != nil {
		panic(err)
	}
	return p
}

// TestFrontier maps "threads needed for tolerance >= 0.9 as p_remote grows"
// and checks each point against an independent scalar solve plus the
// paper-level expectation that the required thread count never falls as the
// remote fraction rises.
func TestFrontier(t *testing.T) {
	// Sweep within the processor-busy/latency-limited regimes: beyond the
	// Eq. 5 saturation p_remote (0.25 at R=10) no thread count reaches 0.9.
	fs := FrontierSpec{Spec: defaultSpec(), Sweep: mustParam(t, "premote"), From: 0.05, To: 0.2, Steps: 4}
	fs.Target = 0.9
	pts, err := Frontier(context.Background(), eval.NewSolver(), fs)
	if err != nil {
		t.Fatalf("Frontier: %v", err)
	}
	if len(pts) != 4 {
		t.Fatalf("len(points) = %d, want 4", len(pts))
	}
	prev := 0.0
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatalf("point %v: %v", pt.Sweep, pt.Err)
		}
		sp := fs.Spec
		fs.Sweep.Apply(&sp.Base, pt.Sweep)
		scalar, err := Solve(context.Background(), eval.NewSolver(), sp)
		if err != nil {
			t.Fatalf("scalar solve at %v: %v", pt.Sweep, err)
		}
		if scalar.Knob != pt.Result.Knob {
			t.Errorf("point %v: frontier %v != scalar %v", pt.Sweep, pt.Result.Knob, scalar.Knob)
		}
		if pt.Result.Knob < prev {
			t.Errorf("frontier not monotone: nt(%v) = %v after %v", pt.Sweep, pt.Result.Knob, prev)
		}
		prev = pt.Result.Knob
	}
}

// scalarOnly hides the batch fast path.
type scalarOnly struct{ ev eval.Evaluator }

func (s scalarOnly) Evaluate(ctx context.Context, cfg eval.Config, opts eval.Options) (eval.Metrics, error) {
	return s.ev.Evaluate(ctx, cfg, opts)
}

// TestFrontierScalarFallback verifies the non-batch path gives identical
// answers.
func TestFrontierScalarFallback(t *testing.T) {
	fs := FrontierSpec{Spec: defaultSpec(), Sweep: mustParam(t, "premote"), From: 0.1, To: 0.3, Steps: 3}
	fs.Target = 0.9
	batch, err := Frontier(context.Background(), eval.NewSolver(), fs)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := Frontier(context.Background(), scalarOnly{eval.NewSolver()}, fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if batch[i].Result.Knob != scalar[i].Result.Knob {
			t.Errorf("point %d: batch %v != scalar %v", i, batch[i].Result.Knob, scalar[i].Result.Knob)
		}
	}
}

// TestFrontierPointErrors verifies a per-point infeasibility doesn't fail
// its neighbors: at high p_remote a very high tolerance target is
// unreachable even with many threads.
func TestFrontierPointErrors(t *testing.T) {
	fs := FrontierSpec{Spec: defaultSpec(), Sweep: mustParam(t, "premote"), From: 0.05, To: 0.95, Steps: 4}
	fs.Target = 0.999
	pts, err := Frontier(context.Background(), eval.NewSolver(), fs)
	if err != nil {
		t.Fatalf("Frontier: %v", err)
	}
	var ok, infeasible int
	for _, pt := range pts {
		switch {
		case pt.Err == nil:
			ok++
		default:
			var inf *InfeasibleError
			if errors.As(pt.Err, &inf) {
				infeasible++
			} else {
				t.Errorf("point %v: unexpected error %v", pt.Sweep, pt.Err)
			}
		}
	}
	if ok == 0 {
		t.Error("no feasible points (expected low p_remote to succeed)")
	}
	t.Logf("%d feasible, %d infeasible points", ok, infeasible)
}

// TestFrontierValidation verifies the frontier-specific field errors.
func TestFrontierValidation(t *testing.T) {
	base := FrontierSpec{Spec: defaultSpec(), Sweep: mustParamPanic("premote"), From: 0.1, To: 0.4, Steps: 4}
	cases := []struct {
		name  string
		mut   func(*FrontierSpec)
		field string
	}{
		{"missing-sweep", func(f *FrontierSpec) { f.Sweep = mms.Param{} }, "Sweep"},
		{"sweep-is-knob", func(f *FrontierSpec) { f.Sweep = mustParamPanic("nt") }, "Sweep"},
		{"zero-steps", func(f *FrontierSpec) { f.Steps = 0 }, "Steps"},
		{"nan-from", func(f *FrontierSpec) { f.From = math.NaN() }, "From"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := base
			tc.mut(&fs)
			_, err := Frontier(context.Background(), eval.NewSolver(), fs)
			if f := validate.Field(err); f != tc.field {
				t.Errorf("err = %v, field %q, want %q", err, f, tc.field)
			}
		})
	}
}

// BenchmarkPlanThreadsForTolerance measures the headline inverse solve with
// warm-started continuation; probes/op and solves/op are reported so the
// "a root-find costs a few cold solves" claim stays measurable against
// BenchmarkColdToleranceSolve.
func BenchmarkPlanThreadsForTolerance(b *testing.B) {
	spec := defaultSpec()
	ev := eval.NewSolver()
	ctx := context.Background()
	var probes, solves int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(ctx, ev, spec)
		if err != nil {
			b.Fatal(err)
		}
		probes, solves = res.Probes, res.Solves
	}
	b.ReportMetric(float64(probes), "probes/op")
	b.ReportMetric(float64(solves), "solves/op")
}

// BenchmarkColdToleranceSolve is the comparator: one tolerance evaluation on
// a fresh evaluator (no warm start to inherit).
func BenchmarkColdToleranceSolve(b *testing.B) {
	spec := defaultSpec()
	cfg := spec.configAt(float64(spec.Base.Threads))
	opts := spec.Metric.Options()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.NewSolver().Evaluate(ctx, cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontier measures the lockstep frontier path.
func BenchmarkFrontier(b *testing.B) {
	fs := FrontierSpec{Spec: defaultSpec(), Sweep: mustParamPanic("premote"), From: 0.1, To: 0.4, Steps: 8}
	fs.Target = 0.9
	ev := eval.NewSolver()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Frontier(ctx, ev, fs); err != nil {
			b.Fatal(err)
		}
	}
}
