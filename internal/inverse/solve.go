package inverse

import (
	"context"
	"math"

	"lattol/internal/eval"
	"lattol/internal/mms"
	"lattol/internal/validate"
)

// Solve runs one inverse plan over ev. Probes are issued one at a time, so a
// warm-starting evaluator (eval.Solver, or the serving layer's cached
// evaluator) continues each probe from the previous fixed point.
//
// Infeasible targets return *InfeasibleError; invalid specs return
// field-named errors (*validate.FieldError).
func Solve(ctx context.Context, ev eval.Evaluator, spec Spec) (Result, error) {
	p, err := newPlanner(spec)
	if err != nil {
		return Result{}, err
	}
	for !p.done() {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		m, err := ev.Evaluate(ctx, p.config(), p.opts())
		p.observe(m, err)
	}
	return p.finish()
}

// FrontierSpec is the two-knob version of a plan: re-solve the Spec at every
// value of a second swept parameter. The result traces the feasibility
// frontier — e.g. "threads needed for tolerance ≥ 0.95, as p_remote grows".
type FrontierSpec struct {
	Spec
	// Sweep is the second parameter (required; must differ from Knob).
	Sweep mms.Param
	// From, To, Steps define the swept grid (see mms.Param.Grid).
	From, To float64
	Steps    int
}

// maxFrontierSteps bounds a single frontier request.
const maxFrontierSteps = 4096

// Validate reports the first invalid field as a field-named error.
func (fs FrontierSpec) Validate() error {
	if fs.Sweep.String() == "" {
		return validate.Fieldf("inverse.FrontierSpec", "Sweep", "required, want one of %s", paramNameList())
	}
	if fs.Sweep.String() == fs.Knob.String() {
		return validate.Fieldf("inverse.FrontierSpec", "Sweep", "= %q, must differ from Knob", fs.Sweep)
	}
	if fs.Steps < 1 || fs.Steps > maxFrontierSteps {
		return validate.Fieldf("inverse.FrontierSpec", "Steps", "= %d, want in [1, %d]", fs.Steps, maxFrontierSteps)
	}
	if math.IsNaN(fs.From) || math.IsInf(fs.From, 0) {
		return validate.Fieldf("inverse.FrontierSpec", "From", "= %v, want finite", fs.From)
	}
	if math.IsNaN(fs.To) || math.IsInf(fs.To, 0) {
		return validate.Fieldf("inverse.FrontierSpec", "To", "= %v, want finite", fs.To)
	}
	return fs.Spec.Validate()
}

// FrontierPoint is one swept point of a frontier. Points fail independently:
// a sweep value whose plan is infeasible (or invalid) carries its error
// without affecting its neighbors.
type FrontierPoint struct {
	// Sweep is the swept parameter's value at this point.
	Sweep float64
	// Result is the plan's answer at this point; valid when Err is nil.
	Result Result
	// Err is the per-point failure (e.g. *InfeasibleError).
	Err error
}

// Frontier solves the inverse plan at every swept value. When ev implements
// eval.BatchEvaluator the points advance in lockstep rounds — each round
// gathers every unfinished point's next probe into one batch-kernel call
// (mms.SolveBatch over mva.BatchWorkspace) — so a frontier costs rounds, not
// points × probes, of kernel dispatches.
func Frontier(ctx context.Context, ev eval.Evaluator, fs FrontierSpec) ([]FrontierPoint, error) {
	if err := fs.Validate(); err != nil {
		return nil, err
	}
	values := fs.Sweep.Grid(fs.From, fs.To, fs.Steps)
	pts := make([]FrontierPoint, len(values))
	planners := make([]*planner, len(values))
	for i, v := range values {
		pts[i].Sweep = v
		sp := fs.Spec
		fs.Sweep.Apply(&sp.Base, v)
		p, err := newPlanner(sp)
		if err != nil {
			pts[i].Err = err
			continue
		}
		planners[i] = p
	}
	be, batch := ev.(eval.BatchEvaluator)
	var (
		idx  []int
		cfgs []eval.Config
		out  []eval.Outcome
	)
	opts := fs.Spec.Metric.Options()
	for {
		idx, cfgs = idx[:0], cfgs[:0]
		for i, p := range planners {
			if p != nil && !p.done() {
				idx = append(idx, i)
				cfgs = append(cfgs, p.config())
			}
		}
		if len(idx) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if batch {
			if cap(out) < len(cfgs) {
				out = make([]eval.Outcome, len(cfgs))
			}
			out = out[:len(cfgs)]
			be.EvaluateBatch(ctx, cfgs, opts, out)
			for j, i := range idx {
				planners[i].observe(out[j].Metrics, out[j].Err)
			}
		} else {
			for j, i := range idx {
				m, err := ev.Evaluate(ctx, cfgs[j], opts)
				planners[i].observe(m, err)
			}
		}
	}
	for i, p := range planners {
		if p != nil {
			pts[i].Result, pts[i].Err = p.finish()
		}
	}
	return pts, nil
}

// paramNameList joins the sweepable parameter names for error messages.
func paramNameList() string {
	names := mms.ParamNames()
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
