// Package inverse turns the forward model ("given a configuration, what is
// the performance?") into the paper's decision questions: "how many threads
// until the latency tolerance reaches 0.95?" (Sec. 6), "what is the critical
// p_remote before the network saturates?" (Sec. 5, Eqs. 4/5).
//
// A Spec names one knob (any sweepable mms.Param), one metric, and a target
// relation; Solve finds the extremal knob value satisfying it by bracketed
// root finding over any eval.Evaluator — the planner neither knows nor cares
// whether a probe is a fresh AMVA solve, a cache hit, or a certified
// interpolation. The search exploits three structural facts:
//
//   - Monotonicity. The conformance suite proves U_p and the network
//     tolerance monotone in n_t, R and p_remote, so a single [infeasible,
//     feasible] bracket contains exactly the answer and bisection /
//     false-position is sound. Unproven metric/knob pairs fall back to
//     directions inferred from the bracket endpoints.
//   - Closed-form seeds. The Eq. 4/5 bottleneck predictions (critical and
//     saturation p_remote, the latency-hiding thread count) land the first
//     interior probes near the answer, collapsing the bracket in O(1) probes
//     instead of O(log range).
//   - Continuation. Evaluators warm-start each probe from the last fixed
//     point, so a whole root-find costs a few cold-solve equivalents; Result
//     reports the probe and solve counts to keep that claim measurable.
//
// Frontier answers the two-knob version — re-solving the inverse problem at
// every value of a second swept parameter — in lockstep rounds over a
// BatchEvaluator, so each round of probes is one batch-kernel call.
package inverse

import (
	"fmt"
	"math"
	"strings"

	"lattol/internal/eval"
	"lattol/internal/mms"
	"lattol/internal/validate"
)

// Relation is the target comparison of a plan: metric ≥ target or ≤ target.
type Relation int

const (
	// AtLeast requires metric ≥ target.
	AtLeast Relation = iota
	// AtMost requires metric ≤ target.
	AtMost
)

// String returns the wire spelling (">=" or "<=").
func (r Relation) String() string {
	if r == AtMost {
		return "<="
	}
	return ">="
}

// ParseRelation resolves a relation from its wire spelling. The empty string
// defaults to ">=". Unknown spellings yield a field-named error.
func ParseRelation(s string) (Relation, error) {
	switch s {
	case "", ">=", "ge":
		return AtLeast, nil
	case "<=", "le":
		return AtMost, nil
	}
	return 0, validate.Fieldf("inverse.Spec", "Relation", "= %q, want >= or <=", s)
}

// Metric identifies one plannable performance measure. Like mms.Param it is
// a registry value: the CLI and the HTTP layer resolve names through
// ParseMetric, so the plannable set is defined exactly once.
type Metric struct {
	name             string
	needNet, needMem bool
	read             func(eval.Metrics) float64
}

var metricRegistry = []Metric{
	{"u_p", false, false, func(m eval.Metrics) float64 { return m.Up }},
	{"tol_network", true, false, func(m eval.Metrics) float64 { return m.TolNetwork }},
	{"tol_memory", false, true, func(m eval.Metrics) float64 { return m.TolMemory }},
	{"s_obs", false, false, func(m eval.Metrics) float64 { return m.SObs }},
	{"l_obs", false, false, func(m eval.Metrics) float64 { return m.LObs }},
	{"lambda_net", false, false, func(m eval.Metrics) float64 { return m.LambdaNet }},
	{"cycle_time", false, false, func(m eval.Metrics) float64 { return m.CycleTime }},
}

// ParseMetric resolves a plannable metric by name. Unknown names yield a
// field-named error listing the valid metrics.
func ParseMetric(name string) (Metric, error) {
	for _, m := range metricRegistry {
		if m.name == name {
			return m, nil
		}
	}
	return Metric{}, validate.Fieldf("inverse.Spec", "Metric", "= %q, want one of %s", name, strings.Join(MetricNames(), ", "))
}

// MetricNames lists every plannable metric name, in registry order.
func MetricNames() []string {
	names := make([]string, len(metricRegistry))
	for i, m := range metricRegistry {
		names[i] = m.name
	}
	return names
}

// String returns the metric's registry name.
func (m Metric) String() string { return m.name }

// Read extracts the metric's value from an evaluation.
func (m Metric) Read(em eval.Metrics) float64 { return m.read(em) }

// Options returns the evaluation options the metric requires (which ideal
// systems must be co-solved).
func (m Metric) Options() eval.Options {
	return eval.Options{TolNetwork: m.needNet, TolMemory: m.needMem}
}

// direction returns the proven monotone direction of metric in knob: +1
// non-decreasing, -1 non-increasing, 0 unproven. The table mirrors exactly
// what the conformance invariants assert (U_p and tol_network non-decreasing
// in n_t and R, non-increasing in p_remote); everything else is inferred
// from the bracket endpoints at plan time.
func direction(m Metric, k mms.Param) int {
	switch m.name {
	case "u_p", "tol_network":
		switch k.String() {
		case "nt", "r":
			return +1
		case "premote":
			return -1
		}
	}
	return 0
}

// Objective is the derived optimization sense of a plan: for a monotone
// metric the feasible knob set is a half-interval, so "the" answer is its
// boundary — the minimum knob when feasibility grows with the knob, the
// maximum when it shrinks.
type Objective int

const (
	// Minimize: the answer is the smallest feasible knob value.
	Minimize Objective = iota
	// Maximize: the answer is the largest feasible knob value.
	Maximize
)

func (o Objective) String() string {
	if o == Maximize {
		return "max"
	}
	return "min"
}

// Binding reports where the answer landed relative to the search interval.
type Binding int

const (
	// Interior: the target constraint is active; the final bracket straddles
	// it and the answer is the feasible end.
	Interior Binding = iota
	// AtLo: the whole interval is feasible and the objective is Minimize (or
	// the metric is flat) — the answer is the interval's low end.
	AtLo
	// AtHi: the whole interval is feasible and the objective is Maximize —
	// the answer is the interval's high end.
	AtHi
)

func (b Binding) String() string {
	switch b {
	case AtLo:
		return "at-lo"
	case AtHi:
		return "at-hi"
	default:
		return "interior"
	}
}

// Spec is one inverse problem: find the extremal Knob value on [Lo, Hi] such
// that Metric Relation Target holds in the model derived from Base.
type Spec struct {
	// Base is the configuration every probe starts from; the knob overwrites
	// one of its fields per probe.
	Base mms.Config
	// Solver selects the solution procedure for probes (default
	// SymmetricAMVA).
	Solver mms.Solver
	// Knob is the parameter being solved for (required).
	Knob mms.Param
	// Metric is the measure being targeted (required).
	Metric Metric
	// Target is the metric value to reach.
	Target float64
	// Relation compares metric to target (default AtLeast).
	Relation Relation
	// Lo, Hi bound the search. Both zero selects the knob's default domain
	// (see domain); otherwise both are used as given and must satisfy
	// Lo < Hi inside the domain.
	Lo, Hi float64
	// KnobTol is the relative width at which a continuous bracket is
	// considered converged (default 1e-6). Integer knobs converge at width 1.
	KnobTol float64
	// MaxProbes caps evaluator calls (default 64). Exhausting it is an
	// error: the answer would not be trustworthy.
	MaxProbes int
}

const (
	defaultKnobTol   = 1e-6
	defaultMaxProbes = 64
)

// domain returns the default search interval of a knob: wide enough to
// contain every answer of practical interest, tight enough that endpoint
// probes stay cheap and valid.
func domain(p mms.Param) (lo, hi float64) {
	switch p.String() {
	case "nt":
		return 1, 16384
	case "k":
		return 1, 32
	case "premote":
		return 0, 1
	case "psw":
		return 1e-3, 1
	case "r":
		return 1e-3, 1e6
	case "l", "s", "c":
		return 0, 1e6
	case "memports", "swports":
		return 1, 1024
	}
	return 0, 0
}

// bracket resolves the effective search interval, normalized to integers for
// integral knobs.
func (s Spec) bracket() (lo, hi float64) {
	lo, hi = s.Lo, s.Hi
	if lo == 0 && hi == 0 {
		lo, hi = domain(s.Knob)
	}
	if s.Knob.Integer() {
		lo, hi = math.Ceil(lo), math.Floor(hi)
	}
	return lo, hi
}

// Bracket returns the effective search interval: Lo, Hi as given when set,
// the knob's default domain otherwise, normalized to integers for integral
// knobs. Convergence is judged relative to this interval's scale, so
// external verifiers (the conformance plan checker) can reproduce the
// planner's own width criterion.
func (s Spec) Bracket() (lo, hi float64) { return s.bracket() }

// knobTol returns the effective convergence tolerance.
func (s Spec) knobTol() float64 {
	if s.KnobTol == 0 {
		return defaultKnobTol
	}
	return s.KnobTol
}

// maxProbes returns the effective probe budget.
func (s Spec) maxProbes() int {
	if s.MaxProbes == 0 {
		return defaultMaxProbes
	}
	return s.MaxProbes
}

// configAt is the probe configuration at one knob value.
func (s Spec) configAt(v float64) eval.Config {
	cfg := s.Base
	s.Knob.Apply(&cfg, v)
	return eval.Config{Model: cfg, Solver: s.Solver}
}

// Validate reports the first invalid field as a field-named error
// (*validate.FieldError).
func (s Spec) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if s.Knob.String() == "" {
		return validate.Fieldf("inverse.Spec", "Knob", "required, want one of %s", strings.Join(mms.ParamNames(), ", "))
	}
	if s.Metric.name == "" {
		return validate.Fieldf("inverse.Spec", "Metric", "required, want one of %s", strings.Join(MetricNames(), ", "))
	}
	if s.Knob.String() == "premote" && s.Base.K == 1 {
		return validate.Fieldf("inverse.Spec", "Knob", "= premote on a single-node system (K=1); remote accesses are impossible")
	}
	if math.IsNaN(s.Target) || math.IsInf(s.Target, 0) {
		return validate.Fieldf("inverse.Spec", "Target", "= %v, want finite", s.Target)
	}
	if s.Relation != AtLeast && s.Relation != AtMost {
		return validate.Fieldf("inverse.Spec", "Relation", "= %d, want AtLeast or AtMost", int(s.Relation))
	}
	dlo, dhi := domain(s.Knob)
	if !(s.Lo == 0 && s.Hi == 0) {
		if math.IsNaN(s.Lo) || math.IsNaN(s.Hi) || s.Lo < dlo || s.Hi > dhi {
			return validate.Fieldf("inverse.Spec", "Lo", "/Hi = [%v, %v], want within the %s domain [%v, %v]", s.Lo, s.Hi, s.Knob, dlo, dhi)
		}
	}
	lo, hi := s.bracket()
	if !(lo < hi) {
		return validate.Fieldf("inverse.Spec", "Lo", "/Hi = [%v, %v] after rounding, want Lo < Hi", lo, hi)
	}
	if s.KnobTol < 0 || math.IsNaN(s.KnobTol) {
		return validate.Fieldf("inverse.Spec", "KnobTol", "= %v, want >= 0", s.KnobTol)
	}
	if s.MaxProbes < 0 {
		return validate.Fieldf("inverse.Spec", "MaxProbes", "= %d, want >= 0", s.MaxProbes)
	}
	return nil
}

// Probe is one entry of a plan's probe trace.
type Probe struct {
	// Knob is the probed knob value.
	Knob float64
	// Value is the metric observed there.
	Value float64
	// Feasible reports whether Value satisfies the target relation.
	Feasible bool
	// Solves is the number of model solves the probe actually ran (0 when
	// the evaluator answered from a cache or an interpolation tier).
	Solves int
}

// Result is a completed plan.
type Result struct {
	// Knob is the answer: the extremal knob value satisfying the target.
	Knob float64
	// Metrics is the full evaluation at Knob.
	Metrics eval.Metrics
	// Achieved is the metric value at Knob.
	Achieved float64
	// Objective is the derived optimization sense (see Objective).
	Objective Objective
	// Binding reports whether the target constraint is active at the answer.
	Binding Binding
	// Lo, Hi is the final bracket: for an Interior answer one end is Knob
	// (feasible) and the other is the nearest probed infeasible knob value.
	Lo, Hi float64
	// Probes counts evaluator calls; Solves counts the model solves they
	// actually ran. Warm-started continuation should keep Solves' total cost
	// within a few cold solves.
	Probes, Solves int
	// Trace lists every probe in order.
	Trace []Probe
}

// InfeasibleError reports that no knob value in the search interval
// satisfies the target: the metric misses it at both endpoints.
type InfeasibleError struct {
	Knob     string
	Metric   string
	Relation Relation
	Target   float64
	Lo, Hi   float64
	// LoValue, HiValue are the metric values observed at the endpoints.
	LoValue, HiValue float64
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("inverse: no %s in [%v, %v] achieves %s %s %v (%s(%v) = %v, %s(%v) = %v)",
		e.Knob, e.Lo, e.Hi, e.Metric, e.Relation, e.Target,
		e.Metric, e.Lo, e.LoValue, e.Metric, e.Hi, e.HiValue)
}
