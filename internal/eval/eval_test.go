package eval

import (
	"context"
	"math"
	"testing"

	"lattol/internal/mms"
	"lattol/internal/tolerance"
)

func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	scale := math.Max(math.Abs(got), math.Abs(want))
	if scale == 0 {
		return 0
	}
	return math.Abs(got-want) / scale
}

// testConfigs spans the operating range: the Table 1 default plus corners of
// the Figure 4–5 axes.
func testConfigs() []mms.Config {
	cfgs := []mms.Config{mms.DefaultConfig()}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		for _, nt := range []int{1, 4, 10} {
			cfg := mms.DefaultConfig()
			cfg.PRemote = p
			cfg.Threads = nt
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// TestSolverMatchesDirectSolve pins the Solver adapter to the underlying
// packages: the metrics must equal a plain mms solve and the tolerance
// indices must equal tolerance.Compute, at the golden corpus tolerance.
func TestSolverMatchesDirectSolve(t *testing.T) {
	s := NewSolver()
	ctx := context.Background()
	for _, cfg := range testConfigs() {
		got, err := s.Evaluate(ctx, Config{Model: cfg}, Options{TolNetwork: true, TolMemory: true})
		if err != nil {
			t.Fatalf("Evaluate(%+v): %v", cfg, err)
		}
		want, err := mms.Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(got.Up, want.Up) > 1e-9 || relErr(got.SObs, want.SObs) > 1e-9 {
			t.Errorf("cfg %+v: metrics diverge: got Up=%v SObs=%v, want Up=%v SObs=%v",
				cfg, got.Up, got.SObs, want.Up, want.SObs)
		}
		netIdx, err := tolerance.Compute(cfg, tolerance.Network, tolerance.ZeroRemote, mms.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		memIdx, err := tolerance.Compute(cfg, tolerance.Memory, tolerance.ZeroDelay, mms.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if relErr(got.TolNetwork, netIdx.Tol) > 1e-9 || relErr(got.TolMemory, memIdx.Tol) > 1e-9 {
			t.Errorf("cfg %+v: tolerance diverges: got (%v, %v), want (%v, %v)",
				cfg, got.TolNetwork, got.TolMemory, netIdx.Tol, memIdx.Tol)
		}
		if got.Bound != 0 {
			t.Errorf("cfg %+v: exact solver reported bound %v", cfg, got.Bound)
		}
	}
}

// TestSolverIdealMemo verifies the ideal-system memo: probing along p_remote
// under the ZeroRemote network ideal leaves the ideal configuration
// unchanged, so only the first evaluation pays for it.
func TestSolverIdealMemo(t *testing.T) {
	s := NewSolver()
	ctx := context.Background()
	for i, p := range []float64{0.1, 0.2, 0.3, 0.4} {
		cfg := mms.DefaultConfig()
		cfg.PRemote = p
		got, err := s.Evaluate(ctx, Config{Model: cfg}, Options{TolNetwork: true})
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if i == 0 {
			want = 2
		}
		if got.Solves != want {
			t.Errorf("p=%v: Solves = %d, want %d (ideal memoized after the first probe)", p, got.Solves, want)
		}
	}
	// A thread-count change invalidates the memo: the ideal depends on n_t.
	cfg := mms.DefaultConfig()
	cfg.Threads = 4
	got, err := s.Evaluate(ctx, Config{Model: cfg}, Options{TolNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Solves != 2 {
		t.Errorf("after n_t change: Solves = %d, want 2", got.Solves)
	}
}

// TestEvaluateBatchMatchesScalar pins the lockstep batch path to the scalar
// path at the corpus tolerance, including the tolerance indices.
func TestEvaluateBatchMatchesScalar(t *testing.T) {
	ctx := context.Background()
	cfgs := make([]Config, 0, len(testConfigs()))
	for _, cfg := range testConfigs() {
		cfgs = append(cfgs, Config{Model: cfg})
	}
	opts := Options{TolNetwork: true, TolMemory: true}
	out := make([]Outcome, len(cfgs))
	NewSolver().EvaluateBatch(ctx, cfgs, opts, out)
	scalar := NewSolver()
	for i, cfg := range cfgs {
		if out[i].Err != nil {
			t.Fatalf("batch element %d: %v", i, out[i].Err)
		}
		want, err := scalar.Evaluate(ctx, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := out[i].Metrics
		for _, f := range []struct {
			name      string
			got, want float64
		}{
			{"Up", got.Up, want.Up},
			{"SObs", got.SObs, want.SObs},
			{"LObs", got.LObs, want.LObs},
			{"TolNetwork", got.TolNetwork, want.TolNetwork},
			{"TolMemory", got.TolMemory, want.TolMemory},
		} {
			if relErr(f.got, f.want) > 1e-9 {
				t.Errorf("element %d: %s batch %v, scalar %v", i, f.name, f.got, f.want)
			}
		}
	}
}

// TestEvaluateBatchPositionalErrors verifies that one invalid element does
// not poison its neighbors.
func TestEvaluateBatchPositionalErrors(t *testing.T) {
	good := mms.DefaultConfig()
	bad := mms.DefaultConfig()
	bad.PRemote = 2
	out := make([]Outcome, 3)
	NewSolver().EvaluateBatch(context.Background(), []Config{{Model: good}, {Model: bad}, {Model: good}}, Options{}, out)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("good elements failed: %v, %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil {
		t.Fatal("invalid element did not fail")
	}
	if out[0].Metrics.Up <= 0 {
		t.Fatal("good element has no metrics")
	}
}

// TestEvaluateCanceledContext verifies that an expired context is honored
// before any solve runs.
func TestEvaluateCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSolver().Evaluate(ctx, Config{Model: mms.DefaultConfig()}, Options{}); err == nil {
		t.Fatal("Evaluate with canceled context succeeded")
	}
	out := make([]Outcome, 1)
	NewSolver().EvaluateBatch(ctx, []Config{{Model: mms.DefaultConfig()}}, Options{}, out)
	if out[0].Err == nil {
		t.Fatal("EvaluateBatch with canceled context succeeded")
	}
}
