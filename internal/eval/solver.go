package eval

import (
	"context"

	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/tolerance"
)

// Solver is the direct, in-process Evaluator over the analytical solvers.
// It keeps one reusable workspace per solve stream (real system, ZeroRemote
// ideal, ZeroDelay ideal) with warm starting and Anderson acceleration always
// on, so a run of nearby evaluations — exactly what an inverse solve's probe
// sequence is — converges from continuation guesses instead of from scratch.
// Ideal-system answers are memoized on their full configuration: when a probe
// sequence varies a knob the ideal system does not depend on (e.g. p_remote
// under the ZeroRemote ideal), the ideal side costs one solve total.
//
// A Solver may be used by one goroutine at a time (the workspace contract).
// MaxError is ignored: every answer is exact (Bound 0).
type Solver struct {
	real, idealNet, idealMem stream

	// Ideal-result memos, one per stream: valid when ok and the stream's
	// last ideal configuration equals the one requested.
	memoNetCfg, memoMemCfg Config
	memoNet, memoMem       mms.Metrics
	memoNetOK, memoMemOK   bool

	// Batch scratch (EvaluateBatch), reused across calls.
	items []mms.BatchItem
	res   []mms.BatchResult
}

// NewSolver returns a ready Solver. The zero value is also ready.
func NewSolver() *Solver { return &Solver{} }

// stream is one continuation chain: a reusable workspace plus the last
// elaborated model, rebased (mms.Model.Rebase) instead of rebuilt when
// consecutive configurations differ only in a visit-preserving knob.
type stream struct {
	ws    mms.Workspace
	model *mms.Model
}

// solveOpts are the per-stream solve options: warm-started, accelerated —
// the same fixed point as a plain solve (see mva.Accel).
func solveOpts(ws *mms.Workspace, solver mms.Solver) mms.SolveOptions {
	return mms.SolveOptions{Solver: solver, Workspace: ws, WarmStart: true, Accel: mva.AccelAnderson}
}

// solve elaborates (or rebases) and solves one configuration on the stream.
func (st *stream) solve(cfg mms.Config, solver mms.Solver) (mms.Metrics, error) {
	if st.model != nil {
		if m, ok := st.model.Rebase(cfg); ok {
			st.model = m
			return m.Solve(solveOpts(&st.ws, solver))
		}
	}
	model, err := mms.Build(cfg)
	if err != nil {
		return mms.Metrics{}, err
	}
	st.model = model
	return model.Solve(solveOpts(&st.ws, solver))
}

// Evaluate solves the real system and any requested ideal systems.
func (s *Solver) Evaluate(ctx context.Context, cfg Config, opts Options) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	real, err := s.real.solve(cfg.Model, cfg.Solver)
	if err != nil {
		return Metrics{}, err
	}
	out := Metrics{Metrics: real, Solves: 1}
	if opts.TolNetwork {
		ideal, err := s.idealFor(ctx, cfg, tolerance.Network, tolerance.ZeroRemote, &out)
		if err != nil {
			return Metrics{}, err
		}
		out.TolNetwork = tolerance.Ratio(real.Up, ideal.Up)
	}
	if opts.TolMemory {
		ideal, err := s.idealFor(ctx, cfg, tolerance.Memory, tolerance.ZeroDelay, &out)
		if err != nil {
			return Metrics{}, err
		}
		out.TolMemory = tolerance.Ratio(real.Up, ideal.Up)
	}
	return out, nil
}

// idealFor returns the ideal-system metrics for one subsystem, from the memo
// when the ideal configuration is unchanged since the stream's last solve.
func (s *Solver) idealFor(ctx context.Context, cfg Config, sub tolerance.Subsystem, mode tolerance.IdealMode, out *Metrics) (mms.Metrics, error) {
	idealModel, err := tolerance.IdealConfig(cfg.Model, sub, mode)
	if err != nil {
		return mms.Metrics{}, err
	}
	ideal := Config{Model: idealModel, Solver: cfg.Solver}
	ws, memoCfg, memo, memoOK := &s.idealNet, &s.memoNetCfg, &s.memoNet, &s.memoNetOK
	if sub == tolerance.Memory {
		ws, memoCfg, memo, memoOK = &s.idealMem, &s.memoMemCfg, &s.memoMem, &s.memoMemOK
	}
	if *memoOK && *memoCfg == ideal {
		return *memo, nil
	}
	if err := ctx.Err(); err != nil {
		return mms.Metrics{}, err
	}
	met, err := ws.solve(idealModel, cfg.Solver)
	if err != nil {
		return mms.Metrics{}, err
	}
	*memoCfg, *memo, *memoOK = ideal, met, true
	out.Solves++
	return met, nil
}

// EvaluateBatch solves every element as one lockstep batch: per element a
// real-system item plus one item per requested ideal system, all handed to
// mms.SolveBatch, whose kernel iterates equal-shape lanes in lockstep with
// continuation seeding between them. out must have len(cfgs).
func (s *Solver) EvaluateBatch(ctx context.Context, cfgs []Config, opts Options, out []Outcome) {
	if len(out) != len(cfgs) {
		panic("eval: EvaluateBatch: len(out) != len(cfgs)")
	}
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i] = Outcome{Err: err}
		}
		return
	}
	perCfg := 1
	if opts.TolNetwork {
		perCfg++
	}
	if opts.TolMemory {
		perCfg++
	}
	if cap(s.items) < perCfg*len(cfgs) {
		s.items = make([]mms.BatchItem, perCfg*len(cfgs))
		s.res = make([]mms.BatchResult, perCfg*len(cfgs))
	}
	items, res := s.items[:0], s.res[:perCfg*len(cfgs)]
	for i := range cfgs {
		items = append(items, mms.BatchItem{Config: cfgs[i].Model, Solver: cfgs[i].Solver})
		if opts.TolNetwork {
			items = append(items, idealItem(cfgs[i], tolerance.Network, tolerance.ZeroRemote))
		}
		if opts.TolMemory {
			items = append(items, idealItem(cfgs[i], tolerance.Memory, tolerance.ZeroDelay))
		}
	}
	s.items = items
	mms.SolveBatchInto(res, items, mms.SolveOptions{Workspace: &s.real.ws})
	pos := 0
	for i := range cfgs {
		real := res[pos]
		pos++
		o := Outcome{Metrics: Metrics{Metrics: real.Metrics, Solves: 1}, Err: real.Err}
		if opts.TolNetwork {
			ideal := res[pos]
			pos++
			o.Metrics.Solves++
			if o.Err == nil {
				if ideal.Err != nil {
					o.Err = ideal.Err
				} else {
					o.Metrics.TolNetwork = tolerance.Ratio(real.Metrics.Up, ideal.Metrics.Up)
				}
			}
		}
		if opts.TolMemory {
			ideal := res[pos]
			pos++
			o.Metrics.Solves++
			if o.Err == nil {
				if ideal.Err != nil {
					o.Err = ideal.Err
				} else {
					o.Metrics.TolMemory = tolerance.Ratio(real.Metrics.Up, ideal.Metrics.Up)
				}
			}
		}
		if o.Err != nil {
			o.Metrics = Metrics{}
		}
		out[i] = o
	}
}

// idealItem derives the batch item of one ideal system. An invalid
// subsystem/mode pair cannot occur for the fixed pairs used here, so the
// fallback (real config in place of the ideal) is unreachable.
func idealItem(cfg Config, sub tolerance.Subsystem, mode tolerance.IdealMode) mms.BatchItem {
	ideal, err := tolerance.IdealConfig(cfg.Model, sub, mode)
	if err != nil {
		ideal = cfg.Model
	}
	return mms.BatchItem{Config: ideal, Solver: cfg.Solver}
}
