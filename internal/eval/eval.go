// Package eval defines the uniform model-evaluation abstraction: one
// operating point in, one set of performance measures out, behind a single
// Evaluator interface.
//
// Everything that can answer "what does the model do at this configuration?"
// implements it — the in-process analytical solvers (Solver, with
// warm-started continuation between calls), the serving layer's cached
// evaluator (LRU → surrogate → worker pool), and the surrogate grid itself —
// so higher layers compose them freely. The inverse (capacity-planning)
// subsystem is the forcing function: a root-finder probes an Evaluator many
// times and neither knows nor cares whether each probe is a fresh AMVA solve,
// a cache hit, or a certified interpolation.
package eval

import (
	"context"

	"lattol/internal/mms"
)

// Config is one operating point: the model configuration plus the solution
// procedure. It is a plain comparable value (provided cfg.Model.Pattern is
// nil or a comparable implementation), so evaluators may memoize on it.
type Config struct {
	// Model is the workload/architecture configuration to evaluate.
	Model mms.Config
	// Solver selects the solution procedure (default SymmetricAMVA).
	Solver mms.Solver
}

// Options tunes one evaluation. The zero value requests the plain
// performance measures of the real system, exactly.
type Options struct {
	// TolNetwork requests the network tolerance index (one extra solve of
	// the ZeroRemote ideal system).
	TolNetwork bool
	// TolMemory requests the memory tolerance index (one extra solve of the
	// ZeroDelay ideal system).
	TolMemory bool
	// MaxError, when positive, permits certified-approximate answers: an
	// evaluator with an interpolation tier may serve any answer whose
	// relative error it can bound by MaxError. Zero demands exact solves.
	MaxError float64
}

// Metrics is the uniform evaluation result: the paper's measures plus the
// tolerance indices that were requested.
type Metrics struct {
	mms.Metrics

	// TolNetwork and TolMemory are the tolerance indices; valid only when
	// the corresponding Options flag was set.
	TolNetwork float64
	TolMemory  float64

	// Solves counts the model solves this evaluation actually ran (0 when
	// every answer came from a cache or an interpolation tier). Inverse
	// solvers surface it for probe accounting.
	Solves int
	// Bound is the certified relative error bound of the answer: 0 for
	// exact results, at most Options.MaxError for interpolated ones.
	Bound float64
}

// Evaluator answers one operating point. Implementations must be safe for
// the concurrency they document: Solver is single-goroutine, the serving
// layer's evaluator is fully concurrent.
type Evaluator interface {
	Evaluate(ctx context.Context, cfg Config, opts Options) (Metrics, error)
}

// Outcome is the positional product of one batch element.
type Outcome struct {
	Metrics Metrics
	Err     error
}

// BatchEvaluator evaluates many operating points in one call. Implementations
// back it with the lockstep batch kernel (mms.SolveBatch over
// mva.BatchWorkspace), so a frontier sweep's per-round probe fan-out costs
// far less than len(cfgs) scalar solves. A failing element never affects its
// neighbors; out must have len(cfgs).
type BatchEvaluator interface {
	Evaluator
	EvaluateBatch(ctx context.Context, cfgs []Config, opts Options, out []Outcome)
}
