package queueing

import (
	"math"
	"testing"
)

func twoStationNet() *Network {
	return &Network{
		Stations: []Station{
			{Name: "cpu", Kind: FCFS, ServiceTime: 10},
			{Name: "mem", Kind: FCFS, ServiceTime: 5},
		},
		Classes: []Class{
			{Name: "a", Population: 3, Visits: []float64{1, 0.5}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := twoStationNet().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Network)
	}{
		{"no stations", func(n *Network) { n.Stations = nil }},
		{"no classes", func(n *Network) { n.Classes = nil }},
		{"negative service", func(n *Network) { n.Stations[0].ServiceTime = -1 }},
		{"nan service", func(n *Network) { n.Stations[0].ServiceTime = math.NaN() }},
		{"inf service", func(n *Network) { n.Stations[0].ServiceTime = math.Inf(1) }},
		{"bad kind", func(n *Network) { n.Stations[1].Kind = StationKind(7) }},
		{"negative population", func(n *Network) { n.Classes[0].Population = -2 }},
		{"visit length", func(n *Network) { n.Classes[0].Visits = []float64{1} }},
		{"negative visit", func(n *Network) { n.Classes[0].Visits[1] = -0.1 }},
		{"nan visit", func(n *Network) { n.Classes[0].Visits[0] = math.NaN() }},
		{"no visits", func(n *Network) { n.Classes[0].Visits = []float64{0, 0} }},
	}
	for _, c := range cases {
		n := twoStationNet()
		c.mutate(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestZeroPopulationClassIsValid(t *testing.T) {
	n := twoStationNet()
	n.Classes[0].Population = 0
	n.Classes[0].Visits = []float64{0, 0}
	if err := n.Validate(); err != nil {
		t.Errorf("zero-population class with no visits should validate: %v", err)
	}
}

func TestDemands(t *testing.T) {
	n := twoStationNet()
	if d := n.Demand(0, 0); d != 10 {
		t.Errorf("Demand(0,0) = %v, want 10", d)
	}
	if d := n.Demand(0, 1); d != 2.5 {
		t.Errorf("Demand(0,1) = %v, want 2.5", d)
	}
	if d := n.TotalDemand(0); d != 12.5 {
		t.Errorf("TotalDemand = %v, want 12.5", d)
	}
	d, m := n.MaxDemand(0)
	if d != 10 || m != 0 {
		t.Errorf("MaxDemand = (%v, %d), want (10, 0)", d, m)
	}
}

func TestMaxDemandSkipsDelayStations(t *testing.T) {
	n := twoStationNet()
	n.Stations[0].Kind = Delay
	d, m := n.MaxDemand(0)
	if d != 2.5 || m != 1 {
		t.Errorf("MaxDemand = (%v, %d), want (2.5, 1)", d, m)
	}
}

func TestMaxDemandAllDelay(t *testing.T) {
	n := twoStationNet()
	n.Stations[0].Kind = Delay
	n.Stations[1].Kind = Delay
	if d, m := n.MaxDemand(0); d != 0 || m != -1 {
		t.Errorf("MaxDemand = (%v, %d), want (0, -1)", d, m)
	}
}

func TestTotalPopulation(t *testing.T) {
	n := twoStationNet()
	n.Classes = append(n.Classes, Class{Name: "b", Population: 4, Visits: []float64{1, 1}})
	if p := n.TotalPopulation(); p != 7 {
		t.Errorf("TotalPopulation = %d, want 7", p)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := twoStationNet()
	c := n.Clone()
	c.Stations[0].ServiceTime = 99
	c.Classes[0].Visits[1] = 99
	c.Classes[0].Population = 99
	if n.Stations[0].ServiceTime != 10 || n.Classes[0].Visits[1] != 0.5 || n.Classes[0].Population != 3 {
		t.Error("Clone shares state with the original")
	}
}

func TestStationKindString(t *testing.T) {
	if FCFS.String() != "FCFS" || Delay.String() != "delay" {
		t.Error("kind strings")
	}
	if StationKind(9).String() != "StationKind(9)" {
		t.Error("unknown kind string")
	}
}
