// Package queueing defines closed multiclass queueing networks of the kind
// the paper uses to model a multithreaded multiprocessor system: a fixed
// population of customers per class (threads per processor) circulating among
// single-server FCFS stations (processor, memory modules, network switches)
// with exponential service times and class-dependent visit ratios.
//
// The package only describes networks and validates them; solvers live in
// package mva.
package queueing

import (
	"fmt"
	"math"
)

// StationKind distinguishes queueing disciplines.
type StationKind int

const (
	// FCFS is a single-server first-come-first-served queue with
	// exponentially distributed service times (the paper's stations).
	FCFS StationKind = iota
	// Delay is an infinite-server (pure delay) station: customers never
	// queue, they are simply held for the service time.
	Delay
)

func (k StationKind) String() string {
	switch k {
	case FCFS:
		return "FCFS"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("StationKind(%d)", int(k))
	}
}

// Station is a service center of the network.
type Station struct {
	Name string
	Kind StationKind
	// ServiceTime is the mean service time per visit, identical for all
	// classes (required for product form at FCFS stations). A zero service
	// time models an ideal (zero-delay) subsystem.
	ServiceTime float64
	// Servers is the number of parallel servers at an FCFS station; 0 means
	// 1. Multi-server stations model multiported memories and pipelined
	// switches (the paper's Section 7 implications). Solvers use the
	// shadow-server approximation: an m-server station behaves like a
	// single server of rate m·μ in series with a fixed delay of
	// s·(m-1)/m, which is exact at m = 1 and approaches a pure delay as
	// m → ∞. Ignored at Delay stations.
	Servers int
}

// ServerCount returns the effective number of servers (at least 1).
func (s Station) ServerCount() int {
	if s.Servers < 1 {
		return 1
	}
	return s.Servers
}

// Class is a closed chain of customers.
type Class struct {
	Name string
	// Population is the number of customers of this class (threads n_t).
	Population int
	// Visits[m] is the visit ratio of this class to station m: the mean
	// number of visits to m between two consecutive visits to the class's
	// reference station. Entries may be zero for stations the class never
	// uses.
	Visits []float64
}

// Network is a closed multiclass queueing network.
type Network struct {
	Stations []Station
	Classes  []Class
}

// Validate checks structural and numerical sanity. Solvers call it before
// running.
func (n *Network) Validate() error {
	if len(n.Stations) == 0 {
		return fmt.Errorf("queueing: network has no stations")
	}
	if len(n.Classes) == 0 {
		return fmt.Errorf("queueing: network has no classes")
	}
	for m, s := range n.Stations {
		if s.ServiceTime < 0 || math.IsNaN(s.ServiceTime) || math.IsInf(s.ServiceTime, 0) {
			return fmt.Errorf("queueing: station %d (%s) service time %v", m, s.Name, s.ServiceTime)
		}
		if s.Kind != FCFS && s.Kind != Delay {
			return fmt.Errorf("queueing: station %d (%s) has unknown kind %d", m, s.Name, int(s.Kind))
		}
		if s.Servers < 0 {
			return fmt.Errorf("queueing: station %d (%s) has %d servers", m, s.Name, s.Servers)
		}
	}
	for c, cl := range n.Classes {
		if cl.Population < 0 {
			return fmt.Errorf("queueing: class %d (%s) population %d", c, cl.Name, cl.Population)
		}
		if len(cl.Visits) != len(n.Stations) {
			return fmt.Errorf("queueing: class %d (%s) has %d visit ratios, network has %d stations",
				c, cl.Name, len(cl.Visits), len(n.Stations))
		}
		var total float64
		for m, v := range cl.Visits {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("queueing: class %d (%s) visit ratio to station %d is %v", c, cl.Name, m, v)
			}
			total += v
		}
		if cl.Population > 0 && total == 0 {
			return fmt.Errorf("queueing: class %d (%s) has positive population but visits no station", c, cl.Name)
		}
	}
	return nil
}

// Demand returns the service demand D = visits × service time of class c at
// station m.
func (n *Network) Demand(c, m int) float64 {
	return n.Classes[c].Visits[m] * n.Stations[m].ServiceTime
}

// TotalDemand returns the sum of demands of class c over all stations: the
// zero-contention cycle time of the class.
func (n *Network) TotalDemand(c int) float64 {
	var d float64
	for m := range n.Stations {
		d += n.Demand(c, m)
	}
	return d
}

// MaxDemand returns the largest per-station effective FCFS demand of class c
// (demand divided by the station's server count) and the station index
// attaining it (-1 if the class has no FCFS demand). The bottleneck station
// bounds the class's asymptotic throughput at 1/MaxDemand.
func (n *Network) MaxDemand(c int) (float64, int) {
	best, arg := 0.0, -1
	for m := range n.Stations {
		if n.Stations[m].Kind != FCFS {
			continue
		}
		if d := n.Demand(c, m) / float64(n.Stations[m].ServerCount()); d > best {
			best, arg = d, m
		}
	}
	return best, arg
}

// TotalPopulation returns the number of customers over all classes.
func (n *Network) TotalPopulation() int {
	total := 0
	for _, c := range n.Classes {
		total += c.Population
	}
	return total
}

// Clone returns a deep copy of the network; mutating the copy (for example,
// zeroing a subsystem's service time to build the ideal system) leaves the
// original untouched.
func (n *Network) Clone() *Network {
	out := &Network{
		Stations: append([]Station(nil), n.Stations...),
		Classes:  make([]Class, len(n.Classes)),
	}
	for i, c := range n.Classes {
		out.Classes[i] = Class{
			Name:       c.Name,
			Population: c.Population,
			Visits:     append([]float64(nil), c.Visits...),
		}
	}
	return out
}
