package conformance

import (
	"context"
	"testing"

	"lattol/internal/eval"
	"lattol/internal/inverse"
	"lattol/internal/mms"
	"lattol/internal/replicate"
	"lattol/internal/simmms"
)

// TestReplicationHarness is the PR-path replication gate: randomized
// configurations replicated on both engines, checked for worker-count
// invariance and analytic bracketing. The nightly workflow widens the budget
// through LATTOL_REPLICATE_TRIALS and LATTOL_REPLICATE_REPS.
func TestReplicationHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("replication harness runs many simulations; skipped in -short mode")
	}
	opts := ReplicationOptions{
		Trials: envInt("LATTOL_REPLICATE_TRIALS", 3),
		Seed:   int64(envInt("LATTOL_CONFORMANCE_SEED", 1)),
		Reps:   envInt("LATTOL_REPLICATE_REPS", 6),
	}
	if err := RunReplicationDiff(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
}

// simBackend builds one replication-backed evaluator for the plan test; each
// call returns an independent instance, so CheckPlanOn's fresh-evaluator
// certification is meaningful.
func simBackend() eval.Evaluator {
	return replicate.NewEvaluator(replicate.Options{
		Sim:     simmms.Options{Engine: simmms.Direct, Seed: 1, Warmup: 2000, Duration: 20000},
		MinReps: 4,
		MaxReps: 16,
	})
}

// TestPlanOnSimBackend certifies capacity plans solved against the simulated
// backend: CheckPlanOn re-verifies the planner's answer with forward
// evaluations on a fresh evaluator, which must reproduce the plan's
// replicated estimates bit for bit (the per-configuration seed derivation
// makes Evaluate a pure function). The tight default band therefore applies
// to the simulated backend exactly as to the analytical one.
func TestPlanOnSimBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("plans on the simulated backend replicate per probe; skipped in -short mode")
	}
	metric, err := inverse.ParseMetric("u_p")
	if err != nil {
		t.Fatal(err)
	}
	knob, err := mms.ParseParam("nt")
	if err != nil {
		t.Fatal(err)
	}
	spec := inverse.Spec{
		Base:     mms.Config{K: 2, Threads: 4, Runlength: 10, MemoryTime: 10, SwitchTime: 10, PRemote: 0.2, Psw: 0.5},
		Knob:     knob,
		Metric:   metric,
		Target:   0.5,
		Relation: inverse.AtLeast,
	}
	if err := CheckPlanOn(context.Background(), simBackend(), simBackend(), spec, 0); err != nil {
		t.Fatal(err)
	}
}
