package conformance

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"

	"lattol/internal/mms"
	"lattol/internal/replicate"
	"lattol/internal/simmms"
	"lattol/internal/sweep"
)

// ReplicationOptions configures the replication-engine conformance run:
// randomized configurations replicated on both simulation substrates, with
// the estimates checked against the analytical model and against the
// runner's worker-count-invariance contract.
type ReplicationOptions struct {
	// Trials is the number of randomized configurations. Default 3.
	Trials int
	// Seed is the base seed; each trial derives its own RNG and simulation
	// seeds via sweep.DeriveSeed so one failure line reproduces locally.
	// Default 1.
	Seed int64
	// Reps is the replication count per estimate. Default 6.
	Reps int
	// Warmup and Duration set the per-replication horizon (defaults 3000 and
	// 20000 — short, because each trial pays Reps× for every engine).
	Warmup, Duration float64
	// UpBand and LatencyBand are the relative modeling-error bands granted
	// on top of the statistical interval when comparing replicated means to
	// the analytical solution (defaults 0.12 and 0.30, the diff harness's
	// single-run bands; both widened 2.5× on multi-port configurations, where
	// the shadow-server approximation is deliberately pessimistic).
	UpBand, LatencyBand float64
}

func (o ReplicationOptions) withDefaults() ReplicationOptions {
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Reps <= 0 {
		o.Reps = 6
	}
	if o.Warmup <= 0 {
		o.Warmup = 3000
	}
	if o.Duration <= 0 {
		o.Duration = 20000
	}
	if o.UpBand <= 0 {
		o.UpBand = 0.12
	}
	if o.LatencyBand <= 0 {
		o.LatencyBand = 0.30
	}
	return o
}

// checkBracket verifies that a replicated estimate is consistent with the
// analytical value: the distance from the mean must be covered by the
// statistical interval (3× the t half-width, so a 95% interval is not asked
// to succeed hundreds of times in a row) plus the relative modeling band the
// analytical approximation is granted against single simulation runs.
func checkBracket(kind, metric string, m replicate.Metric, analytic, band float64) error {
	slack := 3*m.HalfCI + band*math.Abs(analytic)
	if diff := math.Abs(m.Mean - analytic); diff > slack {
		return violatef("replicate-vs-"+kind, "%s: replicated %v ± %v (n=%d), analytical %v: |diff| %v > %v",
			metric, m.Mean, m.HalfCI, m.N, analytic, diff, slack)
	}
	return nil
}

// CheckReplication replicates one configuration on both engines and checks:
//
//  1. worker-count invariance: the aggregated Result is bit-identical when
//     computed with 1 worker, 4 workers, and runtime.NumCPU() workers;
//  2. analytic bracketing: the replicated U_p, λ_net, S_obs and L_obs means
//     agree with the analytical model within the statistical interval plus
//     the modeling band.
func CheckReplication(ctx context.Context, cfg mms.Config, seed int64, opts ReplicationOptions) error {
	opts = opts.withDefaults()
	model, err := mms.Build(cfg)
	if err != nil {
		return fmt.Errorf("conformance: building model: %w", err)
	}
	analytic, err := model.Solve(mms.SolveOptions{})
	if err != nil {
		return fmt.Errorf("conformance: analytical solve: %w", err)
	}
	upBand, latBand := opts.UpBand, opts.LatencyBand
	if cfg.MemoryPorts > 1 || cfg.SwitchPorts > 1 {
		upBand *= 2.5
		latBand *= 2.5
	}

	for _, engine := range []simmms.EngineKind{simmms.Direct, simmms.STPN} {
		ropts := replicate.Options{
			Sim: simmms.Options{
				Engine:   engine,
				Seed:     seed,
				Warmup:   opts.Warmup,
				Duration: opts.Duration,
			},
			MinReps: opts.Reps,
			Workers: 1,
		}
		base, err := replicate.Run(ctx, cfg, ropts)
		if err != nil {
			return fmt.Errorf("conformance: replicating on %s: %w", engine, err)
		}
		for _, workers := range []int{4, runtime.NumCPU()} {
			ropts.Workers = workers
			res, err := replicate.Run(ctx, cfg, ropts)
			if err != nil {
				return fmt.Errorf("conformance: replicating on %s with %d workers: %w", engine, workers, err)
			}
			if !reflect.DeepEqual(res, base) {
				return violatef("replicate-invariance", "%s: %d workers changed the estimates:\n got %+v\nwant %+v",
					engine, workers, res, base)
			}
		}
		checks := []struct {
			metric   string
			m        replicate.Metric
			analytic float64
			band     float64
		}{
			{"U_p", base.Up, analytic.Up, upBand},
			{"λ_net", base.LambdaNet, analytic.LambdaNet, upBand},
			{"S_obs", base.SObs, analytic.SObs, latBand},
			{"L_obs", base.LObs, analytic.LObs, latBand},
		}
		for _, c := range checks {
			if err := checkBracket(engine.String(), c.metric, c.m, c.analytic, c.band); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReplicationFailure reports one failed replication trial with the seed
// coordinates that reproduce it.
type ReplicationFailure struct {
	Seed  int64
	Trial int
	Cfg   mms.Config
	Err   error
}

func (f *ReplicationFailure) Error() string {
	return fmt.Sprintf("conformance: replication trial %d (seed %d) failed on %+v: %v",
		f.Trial, f.Seed, f.Cfg, f.Err)
}

func (f *ReplicationFailure) Unwrap() error { return f.Err }

// RunReplicationDiff runs the replication conformance harness: opts.Trials
// randomized configurations, each checked with CheckReplication. Trials run
// sequentially — the replication runner parallelizes internally, and nesting
// pools would oversubscribe the host and blur any timing-sensitive failure.
func RunReplicationDiff(ctx context.Context, opts ReplicationOptions) error {
	opts = opts.withDefaults()
	for trial := 0; trial < opts.Trials; trial++ {
		rng := rand.New(rand.NewSource(sweep.DeriveSeed(opts.Seed, int64(trial), 91)))
		cfg := RandomConfig(rng)
		simSeed := sweep.DeriveSeed(opts.Seed, int64(trial), 92)
		if err := CheckReplication(ctx, cfg, simSeed, opts); err != nil {
			return &ReplicationFailure{Seed: opts.Seed, Trial: trial, Cfg: cfg, Err: err}
		}
	}
	return nil
}
