package conformance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lattol/internal/eval"
	"lattol/internal/inverse"
	"lattol/internal/mms"
	"lattol/internal/sweep"
)

// PlanDiffOptions configures a plan-consistency run: randomized inverse
// problems whose answers are re-verified against independent forward solves.
type PlanDiffOptions struct {
	// Trials is the number of randomized plans. Default 500.
	Trials int
	// Seed is the base seed; each trial derives its own RNG via
	// sweep.DeriveSeed, so one failure line reproduces locally. Default 1.
	Seed int64
	// Band is the relative agreement band between the plan's reported values
	// and the fresh forward solves. Default 1e-6.
	Band float64
}

func (o PlanDiffOptions) withDefaults() PlanDiffOptions {
	if o.Trials <= 0 {
		o.Trials = 500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Band <= 0 {
		o.Band = 1e-6
	}
	return o
}

// planMargin returns how far a metric value is inside the target relation:
// positive satisfies, negative violates, in absolute metric units.
func planMargin(spec inverse.Spec, v float64) float64 {
	if spec.Relation == inverse.AtMost {
		return spec.Target - v
	}
	return v - spec.Target
}

// planForward evaluates the spec's metric at one knob value on ev.
func planForward(ctx context.Context, ev eval.Evaluator, spec inverse.Spec, knob float64) (float64, error) {
	cfg := spec.Base
	spec.Knob.Apply(&cfg, knob)
	m, err := ev.Evaluate(ctx, eval.Config{Model: cfg, Solver: spec.Solver}, spec.Metric.Options())
	if err != nil {
		return 0, fmt.Errorf("forward solve at %s=%v: %w", spec.Knob, knob, err)
	}
	return spec.Metric.Read(m), nil
}

// CheckPlan solves one inverse problem and certifies the answer against
// independent forward solves on a fresh evaluator (so the plan's warm-started
// continuation path cannot vouch for itself):
//
//   - An answered plan's knob value must be feasible: the fresh metric value
//     there satisfies the relation within band, and agrees with the reported
//     Achieved within band.
//   - An Interior answer must be extremal: the final bracket's other end —
//     the nearest probed knob value on the infeasible side, within the
//     convergence width of the answer — must NOT satisfy the relation by
//     more than band. The bracket width itself must be within the
//     convergence tolerance (1 for integer knobs).
//   - AtLo/AtHi answers must sit exactly on the search endpoint.
//   - An *inverse.InfeasibleError must be truthful: fresh solves at both
//     endpoints must miss the target (within band), and the endpoint values
//     it reports must match them.
//
// The scale of every band comparison is max(1, |target|): the plannable
// metrics are O(1) ratios or latencies in cycle units, and an absolute floor
// keeps targets near zero checkable.
func CheckPlan(ctx context.Context, spec inverse.Spec, band float64) error {
	return CheckPlanOn(ctx, eval.NewSolver(), eval.NewSolver(), spec, band)
}

// CheckPlanOn is CheckPlan parameterized by the evaluation backend: the plan
// is solved on planEv and certified against forward evaluations on fresh —
// which must be an independent instance of the same backend, so the plan's
// warm-started or memoized state cannot vouch for itself. Any deterministic
// backend works: the analytical solvers (CheckPlan), or a replication-backed
// simulated evaluator, whose per-configuration seed derivation makes a fresh
// instance reproduce the plan's evaluations bit for bit.
func CheckPlanOn(ctx context.Context, planEv, fresh eval.Evaluator, spec inverse.Spec, band float64) error {
	if band <= 0 {
		band = 1e-6
	}
	scale := math.Max(1, math.Abs(spec.Target))
	tol := band * scale

	res, err := inverse.Solve(ctx, planEv, spec)
	var inf *inverse.InfeasibleError
	if errors.As(err, &inf) {
		for _, end := range []struct {
			knob, reported float64
		}{{inf.Lo, inf.LoValue}, {inf.Hi, inf.HiValue}} {
			v, ferr := planForward(ctx, fresh, spec, end.knob)
			if ferr != nil {
				return ferr
			}
			if relErr(v, end.reported) > band {
				return violatef("plan-infeasible", "endpoint %s=%v: reported %v, fresh forward solve %v",
					spec.Knob, end.knob, end.reported, v)
			}
			if planMargin(spec, v) > tol {
				return violatef("plan-infeasible", "reported infeasible, but %s=%v satisfies %s %s %v (fresh value %v)",
					spec.Knob, end.knob, spec.Metric, spec.Relation, spec.Target, v)
			}
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}

	v, ferr := planForward(ctx, fresh, spec, res.Knob)
	if ferr != nil {
		return ferr
	}
	if relErr(v, res.Achieved) > band {
		return violatef("plan-answer", "achieved %v at %s=%v, fresh forward solve %v",
			res.Achieved, spec.Knob, res.Knob, v)
	}
	if planMargin(spec, v) < -tol {
		return violatef("plan-answer", "answer %s=%v misses %s %s %v: fresh value %v",
			spec.Knob, res.Knob, spec.Metric, spec.Relation, spec.Target, v)
	}

	switch res.Binding {
	case inverse.Interior:
		width := res.Hi - res.Lo
		maxWidth := spec.KnobTol
		if maxWidth == 0 {
			maxWidth = 1e-6
		}
		// The planner judges convergence relative to the search interval's
		// scale (see Spec.Bracket), not the final bracket's.
		slo, shi := spec.Bracket()
		maxWidth *= math.Max(1, math.Max(math.Abs(slo), math.Abs(shi)))
		if spec.Knob.Integer() {
			maxWidth = 1
		}
		if width > maxWidth*(1+1e-12) {
			return violatef("plan-bracket", "final bracket [%v, %v] wider than the convergence tolerance %v",
				res.Lo, res.Hi, maxWidth)
		}
		// The bracket end that is not the answer is the nearest probed knob
		// value on the infeasible side: the answer is extremal only if the
		// target genuinely fails there.
		other := res.Lo
		if other == res.Knob {
			other = res.Hi
		}
		ov, ferr := planForward(ctx, fresh, spec, other)
		if ferr != nil {
			return ferr
		}
		if planMargin(spec, ov) > tol {
			return violatef("plan-extremal", "answer %s=%v is not extremal: %s=%v also satisfies %s %s %v (fresh value %v)",
				spec.Knob, res.Knob, spec.Knob, other, spec.Metric, spec.Relation, spec.Target, ov)
		}
	case inverse.AtLo:
		if res.Knob != res.Lo {
			return violatef("plan-binding", "binding at-lo but answer %v != lo %v", res.Knob, res.Lo)
		}
	case inverse.AtHi:
		if res.Knob != res.Hi {
			return violatef("plan-binding", "binding at-hi but answer %v != hi %v", res.Knob, res.Hi)
		}
	}
	return nil
}

// RandomPlanSpec draws one randomized inverse problem over the conformance
// configuration domain: a RandomConfig base, a knob/metric pair with a proven
// monotone direction (the pairs /v1/plan traffic actually uses), either
// relation, and a target spanning feasible, boundary and infeasible regimes.
func RandomPlanSpec(rng *rand.Rand) inverse.Spec {
	cfg := RandomConfig(rng)
	knobs := []string{"nt", "r"}
	if cfg.K > 1 {
		knobs = append(knobs, "premote")
	}
	knob, err := mms.ParseParam(knobs[rng.Intn(len(knobs))])
	if err != nil {
		panic(err)
	}
	spec := inverse.Spec{Base: cfg, Knob: knob}
	if rng.Intn(2) == 0 {
		spec.Metric, _ = inverse.ParseMetric("u_p")
		// U_p spans (0, 1]; the band [0.05, 1.02] covers easy targets, tight
		// ones, and impossible ones (> 1).
		spec.Target = 0.05 + 0.97*rng.Float64()
	} else {
		spec.Metric, _ = inverse.ParseMetric("tol_network")
		spec.Target = 0.3 + 0.75*rng.Float64()
	}
	if rng.Intn(4) == 0 {
		spec.Relation = inverse.AtMost
	}
	return spec
}

// PlanFailure reports one failed plan-consistency trial with the seed
// coordinates that reproduce it.
type PlanFailure struct {
	Seed  int64
	Trial int
	Spec  inverse.Spec
	Err   error
}

func (f *PlanFailure) Error() string {
	return fmt.Sprintf("conformance: plan trial %d (seed %d) failed on {base %+v, %s for %s %s %v}: %v",
		f.Trial, f.Seed, f.Spec.Base, f.Spec.Knob, f.Spec.Metric, f.Spec.Relation, f.Spec.Target, f.Err)
}

func (f *PlanFailure) Unwrap() error { return f.Err }

// RunPlanDiff runs the plan-consistency harness: opts.Trials randomized
// inverse problems fanned out over the sweep runner, each certified with
// CheckPlan. Failures are reported as *PlanFailure (joined when several
// trials fail).
func RunPlanDiff(ctx context.Context, opts PlanDiffOptions) error {
	opts = opts.withDefaults()
	trials := make([]int, opts.Trials)
	for i := range trials {
		trials[i] = i
	}
	_, err := sweep.Run(ctx, trials, sweep.Options{}, func(trial int) (struct{}, error) {
		rng := rand.New(rand.NewSource(sweep.DeriveSeed(opts.Seed, int64(trial), 77)))
		spec := RandomPlanSpec(rng)
		if err := CheckPlan(ctx, spec, opts.Band); err != nil {
			return struct{}{}, &PlanFailure{Seed: opts.Seed, Trial: trial, Spec: spec, Err: err}
		}
		return struct{}{}, nil
	})
	return err
}
