package conformance

import (
	"context"
	"math/rand"
	"testing"

	"lattol/internal/eval"
	"lattol/internal/inverse"
	"lattol/internal/mms"
)

// TestPlanConsistencyGolden runs one inverse problem per golden corpus
// operating point: "the minimum thread count reaching the network tolerance
// this very point achieves". Monotonicity in n_t makes the answer well
// defined and at most the point's own thread count, and targeting a value
// the model attains exactly stresses the boundary case of the bracket
// refinement. Every answer is certified by CheckPlan's independent forward
// solves at the 1e-6 band.
func TestPlanConsistencyGolden(t *testing.T) {
	ctx := context.Background()
	ev := eval.NewSolver()
	metric, err := inverse.ParseMetric("tol_network")
	if err != nil {
		t.Fatal(err)
	}
	knob, err := mms.ParseParam("nt")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := GoldenConfigs()
	if len(cfgs) != 51 {
		t.Fatalf("golden corpus has %d points, want 51", len(cfgs))
	}
	for _, cfg := range cfgs {
		m, err := ev.Evaluate(ctx, eval.Config{Model: cfg}, metric.Options())
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		// Target a hair below the attained value: the point's own thread
		// count must then be feasible regardless of the ~1e-13 path
		// difference between warm-started and cold solves, while the target
		// still sits essentially on the boundary.
		spec := inverse.Spec{Base: cfg, Knob: knob, Metric: metric, Target: metric.Read(m) * (1 - 1e-9)}
		if err := CheckPlan(ctx, spec, 1e-6); err != nil {
			t.Errorf("%+v: %v", cfg, err)
			continue
		}
		res, err := inverse.Solve(ctx, eval.NewSolver(), spec)
		if err != nil {
			t.Errorf("%+v: %v", cfg, err)
			continue
		}
		if res.Knob > float64(cfg.Threads) {
			t.Errorf("%+v: minimal nt for its own tolerance = %v, want <= %d", cfg, res.Knob, cfg.Threads)
		}
	}
}

// TestPlanConsistencyRandom is the seeded plan-consistency harness: 500
// randomized inverse problems (knob, metric, relation, target) certified
// against independent forward solves at the 1e-6 band. The nightly workflow
// widens the budget through LATTOL_CONFORMANCE_PLAN_TRIALS.
func TestPlanConsistencyRandom(t *testing.T) {
	opts := PlanDiffOptions{
		Trials: envInt("LATTOL_CONFORMANCE_PLAN_TRIALS", 500),
		Seed:   int64(envInt("LATTOL_CONFORMANCE_SEED", 1)),
	}
	if err := RunPlanDiff(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
}

// TestCheckPlanRejectsWrongAnswers drives CheckPlan's own failure detection:
// a doctored evaluator that misreports the answer must be caught. (A checker
// that cannot fail certifies nothing.)
func TestCheckPlanCatchesInconsistency(t *testing.T) {
	ctx := context.Background()
	spec := inverse.Spec{Base: mms.DefaultConfig()}
	var err error
	if spec.Knob, err = mms.ParseParam("nt"); err != nil {
		t.Fatal(err)
	}
	if spec.Metric, err = inverse.ParseMetric("tol_network"); err != nil {
		t.Fatal(err)
	}
	spec.Target = 0.95

	// Sanity: the honest plan passes.
	if err := CheckPlan(ctx, spec, 1e-6); err != nil {
		t.Fatalf("honest plan failed consistency: %v", err)
	}

	// A hand-built "result" one thread short of the true answer must trip
	// the feasibility check when re-derived through the same margin logic.
	res, err := inverse.Solve(ctx, eval.NewSolver(), spec)
	if err != nil {
		t.Fatal(err)
	}
	fresh := eval.NewSolver()
	v, err := planForward(ctx, fresh, spec, res.Knob-1)
	if err != nil {
		t.Fatal(err)
	}
	if planMargin(spec, v) >= 0 {
		t.Errorf("metric at answer-1 = %v still satisfies target %v; the plan answer %v was not minimal",
			v, spec.Target, res.Knob)
	}
}

// TestRandomPlanSpecAlwaysValid mirrors TestRandomConfigAlwaysValid for the
// plan domain: every drawn spec must validate.
func TestRandomPlanSpecAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		spec := RandomPlanSpec(rng)
		if err := spec.Validate(); err != nil {
			t.Fatalf("draw %d: RandomPlanSpec produced invalid spec %+v: %v", i, spec, err)
		}
	}
}
