package conformance

import (
	"errors"
	"testing"

	"lattol/internal/mva"
	"lattol/internal/surrogate"
)

// TestSurrogateGridRespectsCertifiedBounds is the acceptance audit for the
// surrogate tier: over every golden-corpus point the production grid covers
// (including the off-lattice mid-cell points) and 1000 seeded random in-grid
// queries, the interpolated answer must sit within the certified per-cell
// bound of a fresh exact solve on every metric field.
func TestSurrogateGridRespectsCertifiedBounds(t *testing.T) {
	g, err := surrogate.Build(surrogate.DefaultSpec(), surrogate.BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := CheckSurrogateGrid(g, 1000, 1); err != nil {
		t.Fatal(err)
	}
}

// TestCheckSurrogateGridRequiresCorpusCoverage: a grid that covers none of
// the golden corpus cannot be meaningfully audited, and the checker says so
// rather than passing vacuously.
func TestCheckSurrogateGridRequiresCorpusCoverage(t *testing.T) {
	spec := surrogate.Spec{
		Solver:     mva.SolverVersion,
		MemoryTime: 10,
		SwitchTime: 10,
		K:          []int{4},
		NT:         []int{2, 4},
		R:          []float64{10, 20},
		PRemote:    []float64{0.1, 0.4},
		Psw:        []float64{0.2}, // corpus is pinned at p_sw = 0.5: no coverage
	}
	g, err := surrogate.Build(spec, surrogate.BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	err = CheckSurrogateGrid(g, 0, 1)
	var v *Violation
	if !errors.As(err, &v) || v.Check != "surrogate" {
		t.Fatalf("zero-coverage grid not flagged: %v", err)
	}
}
