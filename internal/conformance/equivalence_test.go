package conformance

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"lattol/internal/mms"
	"lattol/internal/mva"
)

// equivalenceOptions enumerates every solver configuration that must land on
// the same fixed point as the plain Bard–Schweitzer iteration.
func equivalenceOptions() map[string]mms.SolveOptions {
	return map[string]mms.SolveOptions{
		"aitken":        {Accel: mva.AccelAitken},
		"anderson":      {Accel: mva.AccelAnderson},
		"warm":          {WarmStart: true},
		"warm-aitken":   {WarmStart: true, Accel: mva.AccelAitken},
		"warm-anderson": {WarmStart: true, Accel: mva.AccelAnderson},
	}
}

// TestGoldenCorpusUnderAccel re-derives every committed golden point under
// each acceleration scheme and with warm-started continuation (one shared
// workspace across the whole corpus) and demands agreement with the
// committed numbers within GoldenRelTol. This is the proof that acceleration
// changes iteration counts, never answers.
func TestGoldenCorpusUnderAccel(t *testing.T) {
	data, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatalf("golden corpus missing (generate with `go run ./scripts/goldens -update`): %v", err)
	}
	committed, err := UnmarshalGoldenCorpus(data)
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range equivalenceOptions() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			// One workspace across the whole corpus: with WarmStart set, every
			// point continues from the previous point's converged solution, so
			// this path also certifies cross-config warm starting.
			var ws mms.Workspace
			opts.Workspace = &ws
			for _, want := range committed {
				got, err := ComputeGoldenWith(want.Config(), opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := CompareGolden(got, want); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestRandomConfigsEquivalence draws seeded random configurations from the
// certified operating range and checks that every accelerated / warm-started
// solve agrees with the plain solve on all metrics within 1e-9 relative.
// Both sides solve to 1e-12 so the comparison is not dominated by the
// distance each iterate stops short of the true fixed point.
func TestRandomConfigsEquivalence(t *testing.T) {
	const trials = 30
	rng := rand.New(rand.NewSource(1))
	cfgs := make([]mms.Config, trials)
	for i := range cfgs {
		cfgs[i] = RandomConfig(rng)
	}

	plain := make([]mms.Metrics, trials)
	for i, cfg := range cfgs {
		model, err := mms.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plain[i], err = model.Solve(mms.SolveOptions{Tolerance: 1e-12}); err != nil {
			t.Fatalf("trial %d: plain: %v", i, err)
		}
	}

	for name, opts := range equivalenceOptions() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			var ws mms.Workspace
			opts.Tolerance = 1e-12
			opts.Workspace = &ws
			for i, cfg := range cfgs {
				model, err := mms.Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				met, err := model.Solve(opts)
				if err != nil {
					t.Fatalf("trial %d (%+v): %v", i, cfg, err)
				}
				compareMetrics(t, name, i, met, plain[i])
			}
		})
	}
}

// TestFullSolverEquivalenceUnderAccel runs the heterogeneous full-network
// solver (which exercises the multiclass AMVA path) under each acceleration
// scheme on a few golden configs and checks agreement with its plain run.
func TestFullSolverEquivalenceUnderAccel(t *testing.T) {
	cfgs := GoldenConfigs()[:8]
	for _, cfg := range cfgs {
		model, err := mms.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := model.Solve(mms.SolveOptions{Solver: mms.FullAMVA, Tolerance: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		for _, accel := range []mva.Accel{mva.AccelAitken, mva.AccelAnderson} {
			met, err := model.Solve(mms.SolveOptions{Solver: mms.FullAMVA, Tolerance: 1e-12, Accel: accel})
			if err != nil {
				t.Fatalf("%s: %v", accel, err)
			}
			compareMetrics(t, "full/"+accel.String(), 0, met, plain)
		}
	}
}

func compareMetrics(t *testing.T, label string, trial int, got, want mms.Metrics) {
	t.Helper()
	for _, f := range []struct {
		name      string
		got, want float64
	}{
		{"Up", got.Up, want.Up},
		{"LambdaProc", got.LambdaProc, want.LambdaProc},
		{"LambdaNet", got.LambdaNet, want.LambdaNet},
		{"SObs", got.SObs, want.SObs},
		{"LObs", got.LObs, want.LObs},
		{"CycleTime", got.CycleTime, want.CycleTime},
		{"MemUtilization", got.MemUtilization, want.MemUtilization},
		{"OutUtilization", got.OutUtilization, want.OutUtilization},
		{"InUtilization", got.InUtilization, want.InUtilization},
	} {
		if math.IsNaN(f.got) || relErr(f.got, f.want) > 1e-9 {
			t.Errorf("%s trial %d: %s = %.17g, plain gives %.17g (rel %.3g)",
				label, trial, f.name, f.got, f.want, relErr(f.got, f.want))
		}
	}
}
