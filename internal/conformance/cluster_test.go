package conformance

import (
	"context"
	"testing"
	"time"
)

// TestCheckCluster runs the multi-node conformance gate: a seeded in-process
// 3-node ring must be indistinguishable from a single node in its answers
// and do cluster-wide singleflight in its accounting. The nightly workflow
// raises LATTOL_CONFORMANCE_CLUSTER_TRIALS for a deeper run.
func TestCheckCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster conformance run skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	opts := ClusterOptions{
		Trials: envInt("LATTOL_CONFORMANCE_CLUSTER_TRIALS", 24),
		Seed:   int64(envInt("LATTOL_CONFORMANCE_SEED", 1)),
	}
	if err := CheckCluster(ctx, opts); err != nil {
		t.Fatal(err)
	}
}

// TestCheckClusterFiveNodes varies the ring size: the invariants are
// membership-count independent.
func TestCheckClusterFiveNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster conformance run skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := CheckCluster(ctx, ClusterOptions{Nodes: 5, Trials: 12, Seed: 7}); err != nil {
		t.Fatal(err)
	}
}
