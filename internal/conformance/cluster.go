package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"

	lattolclient "lattol/internal/client"
	"lattol/internal/cluster"
	"lattol/internal/serve"
	"lattol/internal/sweep"
)

// ClusterNode is one running node of an in-process test cluster: a real HTTP
// listener on a loopback port, a serve.Server behind it, and (when clustered)
// its ring state.
type ClusterNode struct {
	URL string
	Srv *serve.Server
	Cl  *cluster.Cluster

	lis net.Listener
	hs  *http.Server
}

// TestCluster is an in-process ring of lattold nodes for conformance and
// benchmark use: real listeners, real forwards, one process.
type TestCluster struct {
	Nodes []*ClusterNode
}

// StartCluster boots n nodes on loopback ports, each configured with the
// full membership (a single node, n == 1, runs unclustered — the reference
// configuration). Callers must Close.
func StartCluster(n int, cfg serve.Config) (*TestCluster, error) {
	tc := &TestCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tc.Close()
			return nil, fmt.Errorf("cluster harness: listen: %w", err)
		}
		urls[i] = "http://" + lis.Addr().String()
		tc.Nodes = append(tc.Nodes, &ClusterNode{URL: urls[i], lis: lis})
	}
	for i, node := range tc.Nodes {
		node.Srv = serve.NewServer(cfg)
		if n > 1 {
			var peers []string
			for j, u := range urls {
				if j != i {
					peers = append(peers, u)
				}
			}
			cl, err := cluster.New(node.URL, peers, cluster.Options{})
			if err != nil {
				tc.Close()
				return nil, err
			}
			node.Cl = cl
			node.Srv.SetCluster(cl)
		}
		node.hs = &http.Server{Handler: node.Srv.Handler()}
		go func(hs *http.Server, lis net.Listener) { _ = hs.Serve(lis) }(node.hs, node.lis)
	}
	return tc, nil
}

// Close stops every node: listeners first, then the evaluator pools.
func (tc *TestCluster) Close() {
	for _, node := range tc.Nodes {
		if node.hs != nil {
			_ = node.hs.Close()
		} else if node.lis != nil {
			_ = node.lis.Close()
		}
	}
	for _, node := range tc.Nodes {
		if node.Srv != nil {
			node.Srv.Close()
		}
	}
}

// URLs returns the nodes' base URLs in boot order.
func (tc *TestCluster) URLs() []string {
	out := make([]string, len(tc.Nodes))
	for i, node := range tc.Nodes {
		out[i] = node.URL
	}
	return out
}

// ScrapeCounter reads one plaintext counter (exact line prefix match,
// including any label set) from a node's /metrics.
func ScrapeCounter(url, name string) (uint64, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, err
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		return strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
	}
	return 0, fmt.Errorf("metric %q not found at %s", name, url)
}

// sumCounter sums one counter across every node of the cluster.
func (tc *TestCluster) sumCounter(name string) (uint64, error) {
	var sum uint64
	for _, node := range tc.Nodes {
		v, err := ScrapeCounter(node.URL, name)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// ClusterOptions configures CheckCluster. The zero value selects the
// defaults.
type ClusterOptions struct {
	// Nodes is the ring size. Default 3.
	Nodes int
	// Trials is the number of randomized requests driven through the ring.
	// Default 24.
	Trials int
	// Seed is the base seed; each trial derives its own RNG. Default 1.
	Seed int64
	// Band is the relative agreement band between the cluster's first-pass
	// answers and the single reference node's (iteration counts excluded —
	// they are warm-start history, not model output). Default 1e-9.
	Band float64
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Trials <= 0 {
		o.Trials = 24
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Band <= 0 {
		o.Band = 1e-9
	}
	return o
}

// clusterTrial is one request of a CheckCluster run: the wire body and the
// path it posts to, plus the first-pass answer for the repeat comparison.
type clusterTrial struct {
	path string
	body []byte

	firstBody []byte
}

// randomClusterTrial draws one randomized request over the conformance
// configuration domain: mostly solves, every third trial a tolerance
// evaluation, so both routed operation families are exercised.
func randomClusterTrial(rng *rand.Rand, trial int) (clusterTrial, error) {
	cfg := RandomConfig(rng)
	model := serve.ModelRequest{
		K:             cfg.K,
		Threads:       cfg.Threads,
		Runlength:     cfg.Runlength,
		ContextSwitch: cfg.ContextSwitch,
		MemoryTime:    cfg.MemoryTime,
		SwitchTime:    cfg.SwitchTime,
		PRemote:       cfg.PRemote,
		Psw:           cfg.Psw,
		MemoryPorts:   cfg.MemoryPorts,
		SwitchPorts:   cfg.SwitchPorts,
	}
	var req any = model
	path := "/v1/solve"
	if trial%3 == 2 {
		path = "/v1/tolerance"
		sub := "network"
		if rng.Intn(2) == 0 {
			sub = "memory"
		}
		req = serve.ToleranceRequest{ModelRequest: model, Subsystem: sub}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return clusterTrial{}, err
	}
	return clusterTrial{path: path, body: body}, nil
}

// compareJSON walks two decoded JSON values and demands agreement: numbers
// within band relative (except any field named "iterations" — iteration
// counts are a function of warm-start history, which legitimately differs
// between a cluster node and the reference), everything else exactly.
func compareJSON(path string, a, b any, band float64) error {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return violatef("cluster-answer", "%s: object shape differs: %v vs %v", path, a, b)
		}
		for k, v := range av {
			if k == "iterations" {
				continue
			}
			if err := compareJSON(path+"."+k, v, bv[k], band); err != nil {
				return err
			}
		}
		return nil
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return violatef("cluster-answer", "%s: array shape differs", path)
		}
		for i := range av {
			if err := compareJSON(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], band); err != nil {
				return err
			}
		}
		return nil
	case float64:
		bv, ok := b.(float64)
		if !ok || relErr(av, bv) > band {
			return violatef("cluster-answer", "%s: %v vs reference %v (band %g)", path, a, b, band)
		}
		return nil
	default:
		if a != b {
			return violatef("cluster-answer", "%s: %v vs reference %v", path, a, b)
		}
		return nil
	}
}

// violateCount asserts an exact counter value.
func violateCount(check, what string, got, want uint64) error {
	if got != want {
		return violatef(check, "%s: %d, want %d", what, got, want)
	}
	return nil
}

// CheckCluster boots an opts.Nodes-node ring next to a single unclustered
// reference node and certifies that clustering is invisible in the answers
// and does the promised work-sharing in the accounting:
//
//   - First pass: every randomized request enters the ring through a
//     round-robin node; the answer must agree with the reference node's
//     field-wise within Band (iteration counts excluded — warm-start
//     history).
//   - Cluster-wide singleflight: after the first pass, the SUM of
//     lattold_solves_total over the ring equals the reference node's count —
//     each canonical key was solved exactly once somewhere, never once per
//     node.
//   - Repeat pass: each request re-enters through a DIFFERENT node. The
//     response body must be byte-identical to the first pass (the owner
//     serves both from one cache entry) and carry X-Lattold-Cache: hit.
//   - Zero-solve repeats: after the repeat pass, the cluster-wide solve sum
//     is unchanged — repeated traffic reports solves:0 regardless of entry
//     node.
func CheckCluster(ctx context.Context, opts ClusterOptions) error {
	opts = opts.withDefaults()
	cfg := serve.Config{Workers: 2}

	ref, err := StartCluster(1, cfg)
	if err != nil {
		return err
	}
	defer ref.Close()
	clu, err := StartCluster(opts.Nodes, cfg)
	if err != nil {
		return err
	}
	defer clu.Close()

	refClient := lattolclient.New(ref.Nodes[0].URL, lattolclient.Options{Retries: -1})
	clients := make([]*lattolclient.Client, opts.Nodes)
	for i, node := range clu.Nodes {
		clients[i] = lattolclient.New(node.URL, lattolclient.Options{Retries: -1, ClientID: "conformance"})
	}

	trials := make([]clusterTrial, opts.Trials)
	for i := range trials {
		rng := rand.New(rand.NewSource(sweep.DeriveSeed(opts.Seed, int64(i), 93)))
		if trials[i], err = randomClusterTrial(rng, i); err != nil {
			return err
		}
	}

	// First pass: round-robin entry, field-wise agreement with the reference.
	for i := range trials {
		t := &trials[i]
		resp, err := clients[i%opts.Nodes].PostRaw(ctx, t.path, t.body, nil)
		if err != nil {
			return fmt.Errorf("cluster trial %d: %w", i, err)
		}
		refResp, err := refClient.PostRaw(ctx, t.path, t.body, nil)
		if err != nil {
			return fmt.Errorf("cluster trial %d (reference): %w", i, err)
		}
		if resp.Status != http.StatusOK || refResp.Status != http.StatusOK {
			return violatef("cluster-status", "trial %d: cluster %d, reference %d on %s %s",
				i, resp.Status, refResp.Status, t.path, t.body)
		}
		var got, want any
		if err := json.Unmarshal(resp.Body, &got); err != nil {
			return fmt.Errorf("cluster trial %d: malformed body: %w", i, err)
		}
		if err := json.Unmarshal(refResp.Body, &want); err != nil {
			return fmt.Errorf("cluster trial %d: malformed reference body: %w", i, err)
		}
		if err := compareJSON(t.path, got, want, opts.Band); err != nil {
			return fmt.Errorf("trial %d (entry node %d): %w", i, i%opts.Nodes, err)
		}
		t.firstBody = resp.Body
	}

	// Cluster-wide singleflight: the ring as a whole solved exactly what the
	// single node solved.
	refSolves, err := ScrapeCounter(ref.Nodes[0].URL, "lattold_solves_total")
	if err != nil {
		return err
	}
	cluSolves, err := clu.sumCounter("lattold_solves_total")
	if err != nil {
		return err
	}
	if err := violateCount("cluster-singleflight", "cluster-wide lattold_solves_total after first pass", cluSolves, refSolves); err != nil {
		return err
	}

	// Repeat pass through different entry nodes: byte-identical cache hits.
	for i := range trials {
		t := &trials[i]
		entry := (i + 1) % opts.Nodes
		resp, err := clients[entry].PostRaw(ctx, t.path, t.body, nil)
		if err != nil {
			return fmt.Errorf("cluster repeat %d: %w", i, err)
		}
		if resp.Status != http.StatusOK {
			return violatef("cluster-repeat", "trial %d repeat: status %d", i, resp.Status)
		}
		if st := resp.Header.Get("X-Lattold-Cache"); st != "hit" {
			return violatef("cluster-repeat", "trial %d repeat via node %d: X-Lattold-Cache %q, want hit", i, entry, st)
		}
		if !bytes.Equal(resp.Body, t.firstBody) {
			return violatef("cluster-repeat", "trial %d repeat via node %d: body differs from first pass:\n%s\nvs\n%s",
				i, entry, resp.Body, t.firstBody)
		}
	}

	// Zero-solve repeats: no node solved anything in the repeat pass.
	cluAfter, err := clu.sumCounter("lattold_solves_total")
	if err != nil {
		return err
	}
	return violateCount("cluster-repeat-solves", "cluster-wide lattold_solves_total after repeat pass", cluAfter, cluSolves)
}
