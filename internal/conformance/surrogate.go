package conformance

import (
	"math"
	"math/rand"

	"lattol/internal/mms"
	"lattol/internal/surrogate"
)

// surrogateFields names the metric fields a surrogate lookup certifies; the
// grid's cell bound is the maximum over exactly these.
var surrogateFields = [...]string{
	"up", "lambda", "lambda_net", "s_obs", "l_obs",
	"cycle_time", "mem_utilization", "out_utilization", "in_utilization",
}

func surrogateValues(m mms.Metrics) [9]float64 {
	return [9]float64{m.Up, m.LambdaProc, m.LambdaNet, m.SObs, m.LObs,
		m.CycleTime, m.MemUtilization, m.OutUtilization, m.InUtilization}
}

// surrogateBoundSlack absorbs floating-point noise when the measured relative
// error is compared against the certified bound: the bound derivation is exact
// in real arithmetic, but both sides of the comparison are computed in
// float64, and an exact-node hit (bound 0) compares a batch-kernel solve
// against an independent fresh solve, which agree to solver tolerance rather
// than bit-for-bit.
const surrogateBoundSlack = 1e-8

// checkSurrogatePoint looks one query up in the grid and solves it fresh,
// demanding the interpolated answer sit within the certified bound of the
// exact one on every field. A BoundExceeded outcome (a cell the grid refuses
// to serve at any finite tolerance) is skipped, not a failure — the contract
// under audit is only ever about answers the grid would actually serve.
func checkSurrogatePoint(g *surrogate.Grid, q surrogate.Query) error {
	got, bound, st := g.Lookup(q, math.MaxFloat64)
	switch st {
	case surrogate.Ineligible:
		return violatef("surrogate", "query %+v inside the spec ranges was ruled ineligible", q)
	case surrogate.BoundExceeded:
		return nil
	}
	spec := g.Spec()
	model, err := mms.Build(mms.Config{
		K: q.K, Threads: q.NT, Runlength: q.R,
		MemoryTime: spec.MemoryTime, SwitchTime: spec.SwitchTime,
		PRemote: q.PRemote, Psw: q.Psw,
	})
	if err != nil {
		return violatef("surrogate", "query %+v: building exact model: %v", q, err)
	}
	want, err := model.Solve(mms.SolveOptions{})
	if err != nil {
		return violatef("surrogate", "query %+v: exact solve: %v", q, err)
	}
	gv, wv := surrogateValues(got), surrogateValues(want)
	for i, name := range surrogateFields {
		if rel := relErr(gv[i], wv[i]); rel > bound*(1+surrogateBoundSlack)+surrogateBoundSlack {
			return violatef("surrogate", "query %+v: %s interpolated %.17g, solved %.17g: rel error %.3g exceeds certified bound %.3g",
				q, name, gv[i], wv[i], rel, bound)
		}
	}
	return nil
}

// inGrid reports whether a golden operating point lies on the grid's exact
// axes (K, NT, memory/switch time) and inside its continuous ranges.
func inGrid(spec surrogate.Spec, cfg mms.Config) (surrogate.Query, bool) {
	q := surrogate.Query{K: cfg.K, NT: cfg.Threads, R: cfg.Runlength, PRemote: cfg.PRemote, Psw: cfg.Psw}
	if cfg.MemoryTime != spec.MemoryTime || cfg.SwitchTime != spec.SwitchTime ||
		cfg.Pattern != nil || cfg.GeometricMode != 0 || cfg.ContextSwitch != 0 ||
		cfg.MemoryPorts > 1 || cfg.SwitchPorts > 1 {
		return q, false
	}
	found := func(vs []int, v int) bool {
		for _, x := range vs {
			if x == v {
				return true
			}
		}
		return false
	}
	within := func(axis []float64, v float64) bool {
		return v >= axis[0] && v <= axis[len(axis)-1]
	}
	return q, found(spec.K, q.K) && found(spec.NT, q.NT) &&
		within(spec.R, q.R) && within(spec.PRemote, q.PRemote) && within(spec.Psw, q.Psw)
}

// CheckSurrogateGrid audits a grid's central promise — every answer it serves
// is within its certified relative error bound of a fresh exact solve — on
// two query populations: each golden-corpus operating point the grid covers
// (including the deliberately off-lattice mid-cell points), and n seeded
// pseudo-random queries drawn uniformly from the grid's continuous ranges.
// The first violation is returned.
func CheckSurrogateGrid(g *surrogate.Grid, n int, seed int64) error {
	spec := g.Spec()
	covered := 0
	for _, cfg := range GoldenConfigs() {
		if q, ok := inGrid(spec, cfg); ok {
			covered++
			if err := checkSurrogatePoint(g, q); err != nil {
				return err
			}
		}
	}
	if covered == 0 {
		return violatef("surrogate", "grid %s covers no golden corpus point; the audit needs at least one", spec.RefName())
	}
	rng := rand.New(rand.NewSource(seed))
	span := func(axis []float64) func() float64 {
		lo, hi := axis[0], axis[len(axis)-1]
		return func() float64 { return lo + rng.Float64()*(hi-lo) }
	}
	rR, rP, rS := span(spec.R), span(spec.PRemote), span(spec.Psw)
	for i := 0; i < n; i++ {
		q := surrogate.Query{
			K:  spec.K[rng.Intn(len(spec.K))],
			NT: spec.NT[rng.Intn(len(spec.NT))],
			R:  rR(), PRemote: rP(), Psw: rS(),
		}
		if err := checkSurrogatePoint(g, q); err != nil {
			return err
		}
	}
	return nil
}
