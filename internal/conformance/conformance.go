// Package conformance is the correctness-tooling layer of the repository:
// the cheap laws every queueing-model solution must satisfy (Little's law,
// the utilization law, flow balance, asymptotic throughput bounds, the
// tolerance-index range) packaged as reusable checkers, a differential
// harness that drives randomized model configurations through every solver
// and both simulation substrates and demands pairwise agreement, and a
// golden numeric corpus pinning the paper-figure operating points.
//
// The motivation is Hill's observation (see PAPERS.md) that operational laws
// are exactly the invariants an analytical model can be audited against
// without re-deriving it: they hold for any observation window, so any
// solver output that violates them is wrong regardless of which
// approximation produced it. After several PRs of aggressive hot-path
// rewrites, these checks — not the rewritten code — are what stands between
// the next refactor and a silently bent number.
//
// Three layers:
//
//   - Invariant checkers (invariants.go): pure functions over a solved
//     queueing.Network/mva.Result pair or an mms.Metrics value. Each returns
//     a *Violation (an error) naming the broken law and the offending
//     quantity; Check composites run them all and errors.Join the failures.
//   - Differential harness (diff.go): seeded randomized mms.Config instances
//     pushed through symmetric AMVA, full AMVA, exact MVA (when the state
//     space is small), the direct discrete-event simulator and the stochastic
//     Petri net, with pairwise agreement asserted within the documented
//     bands. A failing configuration is shrunk to a minimal reproducer and
//     reported together with the seed that generated it.
//   - Golden corpus (golden.go): exact numeric snapshots of the paper's
//     Figure 4/5 operating points, regenerated with
//     `go run ./scripts/goldens -update`.
//
// The fuzz targets in this package (FuzzAMVASolve, FuzzMMSConfigValidate,
// FuzzServeKeyCanonical) reuse the same checkers, so `go test -fuzz` explores
// the configuration space with the full invariant set armed.
package conformance

import "fmt"

// Violation is one broken invariant: the name of the law and what was
// observed. It is comparable with errors.As, so callers can tell a
// conformance failure from a solver error.
type Violation struct {
	// Check names the invariant, e.g. "little", "utilization-law".
	Check string
	// Detail describes the observed violation with the numbers involved.
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("conformance/%s: %s", v.Check, v.Detail)
}

// violatef builds a *Violation with a formatted detail message.
func violatef(check, format string, args ...any) *Violation {
	return &Violation{Check: check, Detail: fmt.Sprintf(format, args...)}
}
