package conformance

import (
	"errors"
	"math"

	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/queueing"
	"lattol/internal/tolerance"
)

// Bands collects the tolerance bands of the invariant and differential
// checks. The zero value selects the documented defaults (DESIGN.md §11);
// fields are only ever widened explicitly, never implicitly.
type Bands struct {
	// Identity bounds the relative residual of exact operational identities
	// (Little's law, flow balance, U = X·D consistency). These hold to
	// floating-point accuracy for exact MVA and to the convergence tolerance
	// for AMVA. Default 1e-6.
	Identity float64
	// FixedPoint bounds the relative residual when a converged AMVA waiting
	// time is re-derived from the reported queue lengths through
	// mva.StationResidence. Default 1e-6.
	FixedPoint float64
	// BoundsSlack is the relative slack allowed on the asymptotic
	// (bottleneck) throughput bounds and on utilization ≤ 1. Default 0.01.
	BoundsSlack float64
	// TolExcess is ε in the tolerance-index range check 0 < tol ≤ 1+ε.
	// The paper's Section 7 shows indices slightly above 1 are legitimate (a
	// finite network can relieve memory contention relative to an ideal
	// one), so ε is not zero. Default 0.2, matching the daemon smoke bound.
	TolExcess float64
	// AMVAvsExact bounds the relative throughput divergence between
	// Bard–Schweitzer AMVA and the exact MVA recursion on single-server
	// networks. Default 0.16 (the Bard–Schweitzer error envelope observed
	// across the random-cycle corpus).
	AMVAvsExact float64
	// AMVAvsExactMulti is the same bound when the network contains
	// multi-server FCFS stations, where the shadow-server approximation adds
	// a pessimistic error of its own. Default 0.35.
	AMVAvsExactMulti float64
	// Monotone is the relative slack of monotonicity checks on metric
	// series, scaled by the largest magnitude in the series. Default 1e-6.
	Monotone float64
}

// DefaultBands returns the documented default tolerance bands (DESIGN.md
// §11), for callers that want to reference a band value directly rather
// than pass a zero Bands through a checker.
func DefaultBands() Bands { return Bands{}.withDefaults() }

// withDefaults fills in the documented default bands.
func (b Bands) withDefaults() Bands {
	if b.Identity <= 0 {
		b.Identity = 1e-6
	}
	if b.FixedPoint <= 0 {
		b.FixedPoint = 1e-6
	}
	if b.BoundsSlack <= 0 {
		b.BoundsSlack = 0.01
	}
	if b.TolExcess <= 0 {
		b.TolExcess = 0.2
	}
	if b.AMVAvsExact <= 0 {
		b.AMVAvsExact = 0.16
	}
	if b.AMVAvsExactMulti <= 0 {
		b.AMVAvsExactMulti = 0.35
	}
	if b.Monotone <= 0 {
		b.Monotone = 1e-6
	}
	return b
}

// relErr is the relative residual of got against want, guarded against a
// zero reference.
func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if scale := math.Abs(want); scale > 0 {
		return d / scale
	}
	return d
}

// CheckFinite reports the first non-finite number in a solver result.
func CheckFinite(res *mva.Result) error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	for c := range res.Throughput {
		if bad(res.Throughput[c]) || bad(res.CycleTime[c]) {
			return violatef("finite", "class %d: throughput %v, cycle time %v", c, res.Throughput[c], res.CycleTime[c])
		}
		for m := range res.Wait[c] {
			if bad(res.Wait[c][m]) || bad(res.QueueLen[c][m]) {
				return violatef("finite", "class %d station %d: wait %v, queue %v", c, m, res.Wait[c][m], res.QueueLen[c][m])
			}
		}
	}
	return nil
}

// CheckLittle verifies Little's law per class: λ_c · T_c = N_c within the
// Identity band (relative to the population).
func CheckLittle(net *queueing.Network, res *mva.Result, b Bands) error {
	b = b.withDefaults()
	for c, cl := range net.Classes {
		if cl.Population == 0 {
			continue
		}
		got := res.Throughput[c] * res.CycleTime[c]
		if relErr(got, float64(cl.Population)) > b.Identity {
			return violatef("little", "class %d (%s): λ·T = %v, population %d",
				c, cl.Name, got, cl.Population)
		}
	}
	return nil
}

// CheckFlowBalance verifies population conservation: the class-c queue
// lengths over all stations sum to the class population, and every queue
// length is non-negative.
func CheckFlowBalance(net *queueing.Network, res *mva.Result, b Bands) error {
	b = b.withDefaults()
	for c, cl := range net.Classes {
		var total float64
		for m, q := range res.QueueLen[c] {
			if q < 0 {
				return violatef("flow-balance", "class %d station %d: negative queue length %v", c, m, q)
			}
			total += q
		}
		if cl.Population == 0 {
			if total != 0 {
				return violatef("flow-balance", "class %d (%s): empty class holds %v customers", c, cl.Name, total)
			}
			continue
		}
		if relErr(total, float64(cl.Population)) > b.Identity {
			return violatef("flow-balance", "class %d (%s): Σ_m n_cm = %v, population %d",
				c, cl.Name, total, cl.Population)
		}
	}
	return nil
}

// CheckUtilizationLaw verifies the utilization law U = X·D at every FCFS
// station: per-server utilization must lie in [0, 1+slack], and the
// station's mean queue length must be at least its utilization (customers in
// service are queued customers).
func CheckUtilizationLaw(net *queueing.Network, res *mva.Result, b Bands) error {
	b = b.withDefaults()
	for m, st := range net.Stations {
		if st.Kind != queueing.FCFS {
			continue
		}
		var u float64
		for c := range net.Classes {
			cu := res.Throughput[c] * net.Demand(c, m)
			if cu < 0 {
				return violatef("utilization-law", "station %d (%s) class %d: negative utilization %v", m, st.Name, c, cu)
			}
			u += cu
		}
		u /= float64(st.ServerCount())
		if u > 1+b.BoundsSlack {
			return violatef("utilization-law", "station %d (%s): per-server utilization %v > 1", m, st.Name, u)
		}
		// U is the expected number of busy servers per server; the mean
		// queue length counts customers in service too, so Q ≥ U·servers
		// must hold up to the identity band.
		if q := res.TotalQueueLen(m); q < u*float64(st.ServerCount())*(1-b.BoundsSlack)-b.Identity {
			return violatef("utilization-law", "station %d (%s): queue length %v < busy servers %v",
				m, st.Name, q, u*float64(st.ServerCount()))
		}
	}
	return nil
}

// CheckThroughputBounds verifies each class's throughput against its
// single-class asymptotic (bottleneck) bounds: the class cannot beat its
// bottleneck station or its zero-contention cycle, and cannot do worse than
// the fully-serialized pessimistic bound.
func CheckThroughputBounds(net *queueing.Network, res *mva.Result, b Bands) error {
	b = b.withDefaults()
	for c, cl := range net.Classes {
		if cl.Population == 0 {
			continue
		}
		bounds, err := mva.AsymptoticBounds(net, c)
		if err != nil {
			return err
		}
		x := res.Throughput[c]
		if x > bounds.ThroughputUpper*(1+b.BoundsSlack) {
			return violatef("throughput-bounds", "class %d (%s): λ = %v beats asymptotic upper bound %v (bottleneck station %d)",
				c, cl.Name, x, bounds.ThroughputUpper, bounds.Bottleneck)
		}
		if x < bounds.ThroughputLower*(1-b.BoundsSlack) {
			return violatef("throughput-bounds", "class %d (%s): λ = %v below pessimistic lower bound %v",
				c, cl.Name, x, bounds.ThroughputLower)
		}
	}
	return nil
}

// CheckFixedPoint re-derives every waiting time of a converged
// Bard–Schweitzer solution from its reported queue lengths (the arrival
// theorem estimate n_m(N−1_c) = Σ_j n_jm − n_cm/N_c pushed back through
// mva.StationResidence) and compares against the reported waiting times.
// This is the check a mutated waiting-time term cannot survive: Little's law
// and flow balance hold for AMVA output by construction, but the fixed-point
// relation ties the output to the actual residence formula. Results from
// exact solvers are skipped — the relation is specific to the approximation.
func CheckFixedPoint(net *queueing.Network, res *mva.Result, b Bands) error {
	if res.Method != mva.MethodApprox {
		return nil
	}
	b = b.withDefaults()
	nm := len(net.Stations)
	colSum := make([]float64, nm)
	for m := 0; m < nm; m++ {
		for c := range net.Classes {
			colSum[m] += res.QueueLen[c][m]
		}
	}
	for c, cl := range net.Classes {
		if cl.Population == 0 {
			continue
		}
		ni := float64(cl.Population)
		for m := 0; m < nm; m++ {
			if cl.Visits[m] == 0 {
				continue
			}
			seen := colSum[m] - res.QueueLen[c][m]/ni
			want := mva.StationResidence(net.Stations[m], seen)
			if relErr(res.Wait[c][m], want) > b.FixedPoint {
				return violatef("fixed-point", "class %d station %d: wait %v, residence of reported queues %v",
					c, m, res.Wait[c][m], want)
			}
		}
	}
	return nil
}

// CheckResult runs every solver-output invariant against a solved network:
// finiteness, Little's law, flow balance, the utilization law, asymptotic
// throughput bounds and (for approximate results) fixed-point consistency.
// All violations are reported, joined.
func CheckResult(net *queueing.Network, res *mva.Result, b Bands) error {
	if err := CheckFinite(res); err != nil {
		return err // everything else would just re-report the NaN
	}
	return errors.Join(
		CheckLittle(net, res, b),
		CheckFlowBalance(net, res, b),
		CheckUtilizationLaw(net, res, b),
		CheckThroughputBounds(net, res, b),
		CheckFixedPoint(net, res, b),
	)
}

// CheckMetrics verifies the operational laws on an mms solution: the
// identities the metrics assembly promises (U_p = λ·(R+C), λ_net = λ·p,
// Little's law on the thread cycle), the physical ranges (utilizations in
// [0, 1+slack]) and the latency floors (observed latencies cannot undercut
// the unloaded service times).
func CheckMetrics(model *mms.Model, met mms.Metrics, b Bands) error {
	b = b.withDefaults()
	cfg := model.Config()
	if cfg.Threads == 0 {
		return nil // degenerate: all-zero metrics are the defined answer
	}
	for _, v := range []struct {
		name string
		v    float64
	}{
		{"Up", met.Up}, {"LambdaProc", met.LambdaProc}, {"LambdaNet", met.LambdaNet},
		{"SObs", met.SObs}, {"LObs", met.LObs}, {"CycleTime", met.CycleTime},
		{"MemUtilization", met.MemUtilization}, {"OutUtilization", met.OutUtilization},
		{"InUtilization", met.InUtilization},
	} {
		if math.IsNaN(v.v) || math.IsInf(v.v, 0) || v.v < 0 {
			return violatef("metrics-finite", "%s = %v", v.name, v.v)
		}
	}
	service := cfg.Runlength + cfg.ContextSwitch
	if relErr(met.Up, met.LambdaProc*service) > b.Identity {
		return violatef("utilization-law", "U_p = %v, λ·(R+C) = %v", met.Up, met.LambdaProc*service)
	}
	if relErr(met.LambdaNet, met.LambdaProc*cfg.PRemote) > b.Identity {
		return violatef("metrics-identity", "λ_net = %v, λ·p_remote = %v", met.LambdaNet, met.LambdaProc*cfg.PRemote)
	}
	if got := met.LambdaProc * met.CycleTime; relErr(got, float64(cfg.Threads)) > b.Identity {
		return violatef("little", "λ·CycleTime = %v, n_t = %d", got, cfg.Threads)
	}
	for _, u := range []struct {
		name string
		v    float64
	}{
		{"U_p", met.Up}, {"U_mem", met.MemUtilization},
		{"U_out", met.OutUtilization}, {"U_in", met.InUtilization},
	} {
		if u.v > 1+b.BoundsSlack {
			return violatef("utilization-law", "%s = %v > 1", u.name, u.v)
		}
	}
	if met.LObs < cfg.MemoryTime*(1-b.Identity) {
		return violatef("latency-floor", "L_obs = %v < unloaded memory time %v", met.LObs, cfg.MemoryTime)
	}
	if unloaded := model.UnloadedNetworkLatency(); met.SObs < unloaded*(1-b.Identity) {
		return violatef("latency-floor", "S_obs = %v < unloaded network latency %v", met.SObs, unloaded)
	}
	return nil
}

// CheckToleranceIndex verifies the tolerance-index range: for a system with
// work to do, 0 < tol ≤ 1+ε, and the index must equal the U_p ratio it is
// defined as.
func CheckToleranceIndex(idx tolerance.Index, b Bands) error {
	b = b.withDefaults()
	if math.IsNaN(idx.Tol) || math.IsInf(idx.Tol, 0) {
		return violatef("tolerance-range", "tol = %v", idx.Tol)
	}
	if idx.Tol <= 0 {
		return violatef("tolerance-range", "tol = %v, want > 0", idx.Tol)
	}
	if idx.Tol > 1+b.TolExcess {
		return violatef("tolerance-range", "tol = %v > 1+ε (ε = %v)", idx.Tol, b.TolExcess)
	}
	if idx.Ideal.Up > 0 {
		if want := idx.Real.Up / idx.Ideal.Up; relErr(idx.Tol, want) > b.Identity {
			return violatef("tolerance-range", "tol = %v, U_p ratio %v", idx.Tol, want)
		}
	}
	return nil
}

// Direction orients a monotonicity check.
type Direction int

const (
	// NonDecreasing requires y[i+1] ≥ y[i] up to the Monotone slack.
	NonDecreasing Direction = iota
	// NonIncreasing requires y[i+1] ≤ y[i] up to the Monotone slack.
	NonIncreasing
)

func (d Direction) String() string {
	if d == NonIncreasing {
		return "non-increasing"
	}
	return "non-decreasing"
}

// CheckMonotone verifies that the series ys (sampled at the strictly ordered
// knob values xs) moves in the given direction, allowing a relative slack
// scaled by the largest magnitude in the series. The paper's qualitative
// claims — utilization grows with n_t and R, shrinks with p_remote; the
// network-tolerance index grows with n_t — become machine-checkable this way.
func CheckMonotone(name string, xs, ys []float64, dir Direction, b Bands) error {
	b = b.withDefaults()
	if len(xs) != len(ys) {
		return violatef("monotone", "%s: %d knob values, %d samples", name, len(xs), len(ys))
	}
	var scale float64
	for _, y := range ys {
		if a := math.Abs(y); a > scale {
			scale = a
		}
	}
	slack := b.Monotone * scale
	for i := 1; i < len(ys); i++ {
		delta := ys[i] - ys[i-1]
		if dir == NonIncreasing {
			delta = -delta
		}
		if delta < -slack {
			return violatef("monotone", "%s: not %v at x = %v: y goes %v -> %v",
				name, dir, xs[i], ys[i-1], ys[i])
		}
	}
	return nil
}

// CheckAMVAVsExact solves the network with both the Bard–Schweitzer AMVA and
// the exact MVA recursion and verifies the per-class throughput divergence
// stays within the documented band (the wider multi-server band applies as
// soon as any FCFS station has more than one server). maxStates bounds the
// exact recursion; 0 selects its default.
func CheckAMVAVsExact(net *queueing.Network, maxStates int, b Bands) error {
	b = b.withDefaults()
	band := b.AMVAvsExact
	for _, st := range net.Stations {
		if st.Kind == queueing.FCFS && st.ServerCount() > 1 {
			band = b.AMVAvsExactMulti
			break
		}
	}
	exact, err := mva.ExactMultiClass(net, maxStates)
	if err != nil {
		return err
	}
	approx, err := mva.ApproxMultiClass(net, mva.AMVAOptions{})
	if err != nil {
		return err
	}
	for c, cl := range net.Classes {
		if cl.Population == 0 {
			continue
		}
		if rel := relErr(approx.Throughput[c], exact.Throughput[c]); rel > band {
			return violatef("amva-vs-exact", "class %d (%s): AMVA λ = %v vs exact %v (rel %.4f > %.4f)",
				c, cl.Name, approx.Throughput[c], exact.Throughput[c], rel, band)
		}
	}
	return nil
}
