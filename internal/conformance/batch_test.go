package conformance

import (
	"math/rand"
	"os"
	"testing"

	"lattol/internal/mms"
	"lattol/internal/tolerance"
)

// TestGoldenCorpusBatch re-derives every committed golden point through the
// batched SoA solve path: each point contributes three batch items (the real
// system plus the zero-remote and zero-delay ideals) and the whole corpus is
// solved as one lockstep batch. The assembled measures and tolerance indices
// must agree with the committed numbers within GoldenRelTol — the proof that
// the batch kernel lands on the same fixed point as the scalar path the
// corpus was generated with.
func TestGoldenCorpusBatch(t *testing.T) {
	data, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatalf("golden corpus missing (generate with `go run ./scripts/goldens -update`): %v", err)
	}
	committed, err := UnmarshalGoldenCorpus(data)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]mms.BatchItem, 0, 3*len(committed))
	for _, want := range committed {
		cfg := want.Config()
		netIdeal, err := tolerance.IdealConfig(cfg, tolerance.Network, tolerance.ZeroRemote)
		if err != nil {
			t.Fatal(err)
		}
		memIdeal, err := tolerance.IdealConfig(cfg, tolerance.Memory, tolerance.ZeroDelay)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items,
			mms.BatchItem{Config: cfg},
			mms.BatchItem{Config: netIdeal},
			mms.BatchItem{Config: memIdeal})
	}
	results := mms.SolveBatch(items, mms.SolveOptions{})
	for i, want := range committed {
		real, netIdeal, memIdeal := results[3*i], results[3*i+1], results[3*i+2]
		for j, r := range []mms.BatchResult{real, netIdeal, memIdeal} {
			if r.Err != nil {
				t.Fatalf("%s: batch item %d: %v", want.Name, 3*i+j, r.Err)
			}
		}
		got := GoldenPoint{
			Name:       want.Name,
			Up:         real.Metrics.Up,
			SObs:       real.Metrics.SObs,
			LObs:       real.Metrics.LObs,
			LambdaNet:  real.Metrics.LambdaNet,
			TolNetwork: tolerance.Ratio(real.Metrics.Up, netIdeal.Metrics.Up),
			TolMemory:  tolerance.Ratio(real.Metrics.Up, memIdeal.Metrics.Up),
		}
		if err := CompareGolden(got, want); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRandomConfigsBatchEquivalence draws seeded random configurations from
// the certified operating range (mixed torus sizes, so the batch partitions
// into several station shapes) and demands that one batched solve agrees with
// item-by-item scalar solves on every metric within 1e-9 relative. Both sides
// iterate to a 1e-12 residual so the comparison is not dominated by the
// distance each stops short of the true fixed point.
func TestRandomConfigsBatchEquivalence(t *testing.T) {
	const trials = 40
	rng := rand.New(rand.NewSource(7))
	items := make([]mms.BatchItem, trials)
	plain := make([]mms.Metrics, trials)
	for i := range items {
		cfg := RandomConfig(rng)
		items[i] = mms.BatchItem{Config: cfg}
		model, err := mms.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plain[i], err = model.Solve(mms.SolveOptions{Tolerance: 1e-12}); err != nil {
			t.Fatalf("trial %d: plain: %v", i, err)
		}
	}
	results := mms.SolveBatch(items, mms.SolveOptions{Tolerance: 1e-12})
	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("trial %d: batch: %v", i, results[i].Err)
		}
		compareMetrics(t, "batch", i, results[i].Metrics, plain[i])
	}
}
