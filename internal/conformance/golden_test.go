package conformance

import (
	"errors"
	"os"
	"testing"
)

// TestGoldenCorpus recomputes every paper-figure operating point and
// compares against the committed corpus. A legitimate numeric change must
// regenerate the corpus with `go run ./scripts/goldens -update` and explain
// itself in the PR; anything else failing here is a solver regression.
func TestGoldenCorpus(t *testing.T) {
	data, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatalf("golden corpus missing (generate with `go run ./scripts/goldens -update`): %v", err)
	}
	if err := VerifyGoldenCorpus(data); err != nil {
		t.Fatal(err)
	}
}

// TestCompareGoldenFires proves the corpus comparison detects drift well
// below anything a solver change could plausibly produce.
func TestCompareGoldenFires(t *testing.T) {
	pts, err := ComputeGoldenCorpus()
	if err != nil {
		t.Fatal(err)
	}
	got := pts[0]
	got.Up *= 1 + 1e-7
	err = CompareGolden(got, pts[0])
	var v *Violation
	if !errors.As(err, &v) || v.Check != "golden" {
		t.Fatalf("1e-7 drift not flagged: %v", err)
	}
	if err := CompareGolden(pts[0], pts[0]); err != nil {
		t.Fatalf("identical point flagged: %v", err)
	}
}

// TestGoldenRoundTrip checks the corpus file format survives a
// marshal/unmarshal cycle bit-for-bit on every measure.
func TestGoldenRoundTrip(t *testing.T) {
	pts, err := ComputeGoldenCorpus()
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalGoldenCorpus(pts)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGoldenCorpus(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pts) {
		t.Fatalf("round trip changed point count: %d -> %d", len(pts), len(back))
	}
	for i := range pts {
		if err := CompareGolden(back[i], pts[i]); err != nil {
			t.Fatalf("round trip drifted: %v", err)
		}
	}
}
