package conformance

import (
	"errors"
	"math"
	"strings"
	"testing"

	"lattol/internal/mms"
	"lattol/internal/mva"
	"lattol/internal/queueing"
	"lattol/internal/tolerance"
)

// testNetwork is a small contended network with a delay station and a
// multi-server station, solved fresh for each perturbation fixture.
func testNetwork() *queueing.Network {
	return &queueing.Network{
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.FCFS, ServiceTime: 2},
			{Name: "disk", Kind: queueing.FCFS, ServiceTime: 3, Servers: 2},
			{Name: "think", Kind: queueing.Delay, ServiceTime: 5},
		},
		Classes: []queueing.Class{
			{Name: "a", Population: 4, Visits: []float64{1, 1, 1}},
			{Name: "b", Population: 2, Visits: []float64{1, 2, 0}},
		},
	}
}

func solveTestNetwork(t *testing.T) (*queueing.Network, *mva.Result) {
	t.Helper()
	net := testNetwork()
	res, err := mva.ApproxMultiClass(net, mva.AMVAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return net, res
}

// cloneResult deep-copies a result so fixtures can perturb it freely.
func cloneResult(r *mva.Result) *mva.Result {
	out := &mva.Result{
		Throughput: append([]float64(nil), r.Throughput...),
		CycleTime:  append([]float64(nil), r.CycleTime...),
		Iterations: r.Iterations,
		Method:     r.Method,
	}
	for c := range r.Wait {
		out.Wait = append(out.Wait, append([]float64(nil), r.Wait[c]...))
		out.QueueLen = append(out.QueueLen, append([]float64(nil), r.QueueLen[c]...))
	}
	return out
}

func TestCheckResultPassesOnSolverOutput(t *testing.T) {
	net, res := solveTestNetwork(t)
	if err := CheckResult(net, res, Bands{}); err != nil {
		t.Fatalf("clean AMVA solution flagged: %v", err)
	}
	exact, err := mva.ExactMultiClass(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckResult(net, exact, Bands{}); err != nil {
		t.Fatalf("clean exact solution flagged: %v", err)
	}
}

// TestInvariantCheckersFire proves each checker actually detects the
// violation it is named for: every fixture perturbs a clean solution in a
// way that breaks exactly one law and must be reported under that check's
// name.
func TestInvariantCheckersFire(t *testing.T) {
	cases := []struct {
		name    string
		check   string // expected Violation.Check
		perturb func(*queueing.Network, *mva.Result)
	}{
		{
			name:    "nan throughput",
			check:   "finite",
			perturb: func(_ *queueing.Network, r *mva.Result) { r.Throughput[0] = math.NaN() },
		},
		{
			name:    "little violated by throughput scale",
			check:   "little",
			perturb: func(_ *queueing.Network, r *mva.Result) { r.Throughput[0] *= 1.01 },
		},
		{
			name:  "flow balance violated by leaked customer",
			check: "flow-balance",
			perturb: func(_ *queueing.Network, r *mva.Result) {
				r.QueueLen[1][1] += 0.5
			},
		},
		{
			name:  "negative queue length",
			check: "flow-balance",
			perturb: func(_ *queueing.Network, r *mva.Result) {
				r.QueueLen[0][0], r.QueueLen[0][1] = -r.QueueLen[0][0], r.QueueLen[0][1]+2*r.QueueLen[0][0]
			},
		},
		{
			name:  "utilization above one",
			check: "utilization-law",
			perturb: func(n *queueing.Network, r *mva.Result) {
				// A service-time inflation the result does not reflect:
				// perturbed utilization exceeds the server capacity.
				n.Stations[0].ServiceTime *= 10
			},
		},
		{
			name:  "throughput beats bottleneck",
			check: "throughput-bounds",
			perturb: func(n *queueing.Network, r *mva.Result) {
				// Keep Little's law and flow balance intact by scaling the
				// whole class-0 solution consistently: λ up, waits down,
				// queues fixed — the bottleneck bound still catches it.
				scale := 3.0
				r.Throughput[0] *= scale
				r.CycleTime[0] /= scale
				for m := range r.Wait[0] {
					r.Wait[0][m] /= scale
				}
			},
		},
		{
			name:  "waiting-time term mutated",
			check: "fixed-point",
			perturb: func(n *queueing.Network, r *mva.Result) {
				// The sign-flip mutation of DESIGN.md §11: w = s·(1−q)
				// instead of s·(1+q) at one station, queue lengths left
				// as reported.
				seen := r.QueueLen[0][0] + r.QueueLen[1][0] - r.QueueLen[0][0]/4
				r.Wait[0][0] = n.Stations[0].ServiceTime * (1 - seen)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, res := solveTestNetwork(t)
			res = cloneResult(res)
			tc.perturb(net, res)
			err := CheckResult(net, res, Bands{})
			if err == nil {
				t.Fatalf("perturbed solution passed all checks")
			}
			var v *Violation
			found := false
			for _, e := range flatten(err) {
				if errors.As(e, &v) && v.Check == tc.check {
					found = true
				}
			}
			if !found {
				t.Fatalf("expected a %q violation, got: %v", tc.check, err)
			}
		})
	}
}

// flatten unwraps errors.Join trees into a flat list.
func flatten(err error) []error {
	if err == nil {
		return nil
	}
	if j, ok := err.(interface{ Unwrap() []error }); ok {
		var out []error
		for _, e := range j.Unwrap() {
			out = append(out, flatten(e)...)
		}
		return out
	}
	return []error{err}
}

func solveDefaultMetrics(t *testing.T) (*mms.Model, mms.Metrics) {
	t.Helper()
	model, err := mms.Build(mms.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	met, err := model.Solve(mms.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return model, met
}

func TestCheckMetricsFixtures(t *testing.T) {
	model, clean := solveDefaultMetrics(t)
	if err := CheckMetrics(model, clean, Bands{}); err != nil {
		t.Fatalf("clean metrics flagged: %v", err)
	}
	cases := []struct {
		name    string
		check   string
		perturb func(*mms.Metrics)
	}{
		{"perturbed utilization", "utilization-law", func(m *mms.Metrics) { m.Up *= 1.02 }},
		{"utilization above one", "utilization-law", func(m *mms.Metrics) {
			scale := 1.2 / m.Up
			m.Up = 1.2
			m.LambdaProc *= scale
			m.LambdaNet *= scale
			m.CycleTime /= scale
		}},
		{"rate identity broken", "metrics-identity", func(m *mms.Metrics) { m.LambdaNet *= 0.5 }},
		{"little violated", "little", func(m *mms.Metrics) { m.CycleTime *= 1.01 }},
		{"latency below service floor", "latency-floor", func(m *mms.Metrics) { m.LObs = 9 }},
		{"network latency below unloaded floor", "latency-floor", func(m *mms.Metrics) { m.SObs = 1 }},
		{"nan metric", "metrics-finite", func(m *mms.Metrics) { m.SObs = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			met := clean
			tc.perturb(&met)
			err := CheckMetrics(model, met, Bands{})
			var v *Violation
			if !errors.As(err, &v) {
				t.Fatalf("perturbed metrics passed: %v", err)
			}
			if v.Check != tc.check {
				t.Fatalf("expected %q violation, got %q: %v", tc.check, v.Check, v)
			}
		})
	}
}

func TestCheckToleranceIndex(t *testing.T) {
	idx, err := tolerance.NetworkIndex(mms.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckToleranceIndex(idx, Bands{}); err != nil {
		t.Fatalf("clean index flagged: %v", err)
	}
	for _, tc := range []struct {
		name string
		tol  float64
	}{
		{"zero", 0}, {"negative", -0.2}, {"above range", 1.5}, {"nan", math.NaN()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bad := idx
			bad.Tol = tc.tol
			err := CheckToleranceIndex(bad, Bands{})
			var v *Violation
			if !errors.As(err, &v) || v.Check != "tolerance-range" {
				t.Fatalf("tol = %v not flagged as tolerance-range: %v", tc.tol, err)
			}
		})
	}
	// The ratio consistency arm: a tol value inconsistent with the U_p
	// ratio it is defined as must fire even when in range.
	bad := idx
	bad.Tol = math.Min(1, bad.Tol*1.01)
	if bad.Tol == idx.Tol {
		bad.Tol *= 0.99
	}
	var v *Violation
	if err := CheckToleranceIndex(bad, Bands{}); !errors.As(err, &v) || v.Check != "tolerance-range" {
		t.Fatalf("inconsistent tol/U_p ratio not flagged: %v", err)
	}
}

func TestCheckMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	up := []float64{0.1, 0.5, 0.8, 0.9}
	down := []float64{0.9, 0.8, 0.5, 0.1}
	noisyFlat := []float64{1, 1 - 1e-9, 1, 1 - 1e-9}
	if err := CheckMonotone("up", xs, up, NonDecreasing, Bands{}); err != nil {
		t.Errorf("increasing series flagged: %v", err)
	}
	if err := CheckMonotone("down", xs, down, NonIncreasing, Bands{}); err != nil {
		t.Errorf("decreasing series flagged: %v", err)
	}
	if err := CheckMonotone("flat", xs, noisyFlat, NonDecreasing, Bands{}); err != nil {
		t.Errorf("within-slack jitter flagged: %v", err)
	}
	var v *Violation
	if err := CheckMonotone("up", xs, down, NonDecreasing, Bands{}); !errors.As(err, &v) || v.Check != "monotone" {
		t.Errorf("non-monotone series passed: %v", err)
	}
	if err := CheckMonotone("mismatch", xs, up[:3], NonDecreasing, Bands{}); err == nil {
		t.Error("length mismatch passed")
	}
}

// TestPaperMonotonicity pins the paper's qualitative claims as invariants:
// utilization and the network-tolerance index grow with thread count and
// runlength and shrink with the remote-access fraction.
func TestPaperMonotonicity(t *testing.T) {
	eval := func(cfg mms.Config) (up, tol float64) {
		t.Helper()
		met, err := mms.Solve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := tolerance.Compute(cfg, tolerance.Network, tolerance.ZeroRemote, mms.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return met.Up, idx.Tol
	}
	t.Run("threads", func(t *testing.T) {
		var xs, ups, tols []float64
		for nt := 1; nt <= 10; nt++ {
			cfg := mms.DefaultConfig()
			cfg.Threads = nt
			up, tol := eval(cfg)
			xs, ups, tols = append(xs, float64(nt)), append(ups, up), append(tols, tol)
		}
		if err := errors.Join(
			CheckMonotone("U_p(n_t)", xs, ups, NonDecreasing, Bands{}),
			CheckMonotone("tol_net(n_t)", xs, tols, NonDecreasing, Bands{}),
		); err != nil {
			t.Error(err)
		}
	})
	t.Run("runlength", func(t *testing.T) {
		var xs, ups, tols []float64
		for _, r := range []float64{5, 10, 20, 40, 80} {
			cfg := mms.DefaultConfig()
			cfg.Runlength = r
			up, tol := eval(cfg)
			xs, ups, tols = append(xs, r), append(ups, up), append(tols, tol)
		}
		if err := errors.Join(
			CheckMonotone("U_p(R)", xs, ups, NonDecreasing, Bands{}),
			CheckMonotone("tol_net(R)", xs, tols, NonDecreasing, Bands{}),
		); err != nil {
			t.Error(err)
		}
	})
	t.Run("premote", func(t *testing.T) {
		var xs, ups, tols []float64
		for p := 0.05; p <= 0.9; p += 0.05 {
			cfg := mms.DefaultConfig()
			cfg.PRemote = p
			up, tol := eval(cfg)
			xs, ups, tols = append(xs, p), append(ups, up), append(tols, tol)
		}
		if err := errors.Join(
			CheckMonotone("U_p(p_remote)", xs, ups, NonIncreasing, Bands{}),
			CheckMonotone("tol_net(p_remote)", xs, tols, NonIncreasing, Bands{}),
		); err != nil {
			t.Error(err)
		}
	})
}

func TestCheckAMVAVsExact(t *testing.T) {
	net := testNetwork()
	if err := CheckAMVAVsExact(net, 0, Bands{}); err != nil {
		t.Fatalf("AMVA outside documented band on test network: %v", err)
	}
	// With an absurdly tight band the same comparison must fire — proof the
	// check has teeth.
	err := CheckAMVAVsExact(net, 0, Bands{AMVAvsExact: 1e-12, AMVAvsExactMulti: 1e-12})
	var v *Violation
	if !errors.As(err, &v) || v.Check != "amva-vs-exact" {
		t.Fatalf("tight-band comparison did not fire: %v", err)
	}
	if !strings.Contains(v.Detail, "rel") {
		t.Errorf("divergence detail missing relative error: %v", v)
	}
}
